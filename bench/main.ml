(* Benchmark harness: one Bechamel micro-benchmark per experiment
   (E1..E13) measuring its core computational kernel, plus codec
   microbenchmarks, followed by a full regeneration of every
   experiment table (the paper's figures). *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Benchmarked kernels                                                 *)

(* Representative unit of work per experiment; scenarios are prepared
   up front so only the policy-engine / codec work is measured. *)
let experiment_tests () =
  let fir = Experiments.Util.scenario "fir" in
  let dijkstra = Experiments.Util.scenario "dijkstra" in
  let fsm = Experiments.Util.scenario "fsm" in
  let matmul = Experiments.Util.scenario "matmul" in
  let profile_fsm = Core.Scenario.profile fsm in
  let profile_dijkstra = Core.Scenario.profile dijkstra in
  let run sc policy () = ignore (Core.Scenario.run sc policy) in
  [
    Test.make ~name:"E1/fig1-kedge"
      (Staged.stage (fun () -> ignore (Experiments.Fig1.holds ())));
    Test.make ~name:"E2/fig2-predecompress"
      (Staged.stage (fun () -> ignore (Experiments.Fig2.holds ())));
    Test.make ~name:"E3/fig3-design-space"
      (Staged.stage (fun () -> ignore (Experiments.Fig3.pre_all_set ())));
    Test.make ~name:"E4/fig4-three-threads"
      (Staged.stage (fun () -> ignore (Experiments.Fig4.holds ())));
    Test.make ~name:"E5/fig5-memory-image"
      (Staged.stage (fun () -> ignore (Experiments.Fig5.holds ())));
    Test.make ~name:"E6/kedge-sweep-unit"
      (Staged.stage (run fir (Core.Policy.on_demand ~k:8)));
    Test.make ~name:"E7/strategy-unit"
      (Staged.stage
         (run fsm
            (Core.Policy.pre_single ~k:8 ~lookahead:2
               ~predictor:(Core.Predictor.By_profile profile_fsm))));
    Test.make ~name:"E8/predecomp-unit"
      (Staged.stage (run dijkstra (Core.Policy.pre_all ~k:8 ~lookahead:4)));
    Test.make ~name:"E9/recompress-unit"
      (Staged.stage
         (run matmul
            (Core.Policy.make ~mode:Core.Policy.Recompress ~compress_k:4 ())));
    Test.make ~name:"E10/budget-unit"
      (Staged.stage
         (run fsm (Core.Policy.make ~compress_k:8 ~budget:64 ())));
    Test.make ~name:"E11/procedure-granularity-unit"
      (Staged.stage (fun () ->
           ignore
             (Baselines.Granularity.run dijkstra
                (Baselines.Granularity.whole_program
                   dijkstra.Core.Scenario.graph)
                (Core.Policy.on_demand ~k:8))));
    Test.make ~name:"E12/codec-unit"
      (Staged.stage (fun () ->
           ignore (Experiments.Codecs_exp.codecs_for fir)));
    Test.make ~name:"E13/predictor-unit"
      (Staged.stage
         (run dijkstra
            (Core.Policy.pre_single ~k:8 ~lookahead:2
               ~predictor:(Core.Predictor.By_profile profile_dijkstra))));
    Test.make ~name:"E14/adaptive-k-unit"
      (Staged.stage
         (run fsm
            (Core.Policy.make ~compress_k:4
               ~adaptive_k:
                 (Core.Adaptive.reuse_aware fsm.Core.Scenario.graph
                    fsm.Core.Scenario.trace)
               ())));
    Test.make ~name:"E15/coresidence-unit"
      (Staged.stage (run matmul (Core.Policy.on_demand ~k:4)));
    (let prog =
       Eris.Asm.assemble_exn
         (Workloads.Suite.find_exn "dijkstra").Workloads.Common.source
     in
     Test.make ~name:"E16/runtime-unit"
       (Staged.stage (fun () -> ignore (Runtime.run ~k:4 prog))));
  ]

let toolchain_tests () =
  let sieve_src =
    "int sieve[100]; int main() { int c = 0; for (int i = 2; i < 100; i = i \
     + 1) { if (sieve[i] == 0) { c = c + 1; for (int j = i + i; j < 100; j \
     = j + i) { sieve[j] = 1; } } } return c; }"
  in
  let prog =
    match Minic.Compile.to_program sieve_src with
    | Ok p -> p
    | Error _ -> failwith "bench: sieve failed to compile"
  in
  [
    Test.make ~name:"toolchain/minic-compile"
      (Staged.stage (fun () -> ignore (Minic.Compile.to_assembly sieve_src)));
    Test.make ~name:"toolchain/minic-compile-O"
      (Staged.stage (fun () ->
           ignore (Minic.Compile.to_assembly ~optimize:true sieve_src)));
    Test.make ~name:"toolchain/assemble"
      (Staged.stage
         (let asm =
            match Minic.Compile.to_assembly sieve_src with
            | Ok a -> a
            | Error _ -> assert false
          in
          fun () -> ignore (Eris.Asm.assemble asm)));
    Test.make ~name:"toolchain/interpret"
      (Staged.stage (fun () ->
           let m = Eris.Machine.create prog in
           ignore (Eris.Machine.run_to_halt m)));
    Test.make ~name:"toolchain/cfg-build"
      (Staged.stage (fun () -> ignore (Cfg.Build.of_program prog)));
  ]

let codec_tests () =
  let payload =
    Core.Scenario.synthetic_block_bytes ~id:7 ~size:4096
  in
  List.concat_map
    (fun codec ->
      let compressed = codec.Compress.Codec.compress payload in
      [
        Test.make
          ~name:(Printf.sprintf "codec/%s/compress" codec.Compress.Codec.name)
          (Staged.stage (fun () ->
               ignore (codec.Compress.Codec.compress payload)));
        Test.make
          ~name:
            (Printf.sprintf "codec/%s/decompress" codec.Compress.Codec.name)
          (Staged.stage (fun () ->
               ignore (codec.Compress.Codec.decompress compressed)));
      ])
    (Compress.Registry.all ())

(* ------------------------------------------------------------------ *)
(* Codec throughput phase                                              *)

(* Wall-clock compress/decompress throughput for every registry codec
   over the workload suite's assembled program images — KB-scale
   blocks, the thing the residency layer actually stores. The bechamel
   rows above give ns/call on one synthetic block; these are the MiB/s
   figures comparable to the paper's decompression-overhead numbers.
   BENCH.json carries them as codec/<name>/{comp,dec}-MBps, in both
   full and --smoke modes. *)

let workload_images () =
  List.map
    (fun name ->
      let w = Workloads.Suite.find_exn name in
      (Eris.Asm.assemble_exn w.Workloads.Common.source).Eris.Program.image)
    Workloads.Suite.names

let codec_throughput_phase ?min_time_s () =
  let blocks = workload_images () in
  let total = List.fold_left (fun a b -> a + Bytes.length b) 0 blocks in
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "codec throughput: %d workload images, %d bytes total (MiB/s of \
            uncompressed bytes)"
           (List.length blocks) total)
      ~columns:
        [
          ("codec", Report.Table.Left);
          ("comp MiB/s", Report.Table.Right);
          ("dec MiB/s", Report.Table.Right);
          ("ratio", Report.Table.Right);
        ]
  in
  let entries =
    List.concat_map
      (fun codec ->
        let tp = Compress.Stats.throughput ?min_time_s codec blocks in
        Report.Table.add_row t
          [
            tp.Compress.Stats.tp_codec_name;
            Report.Table.fmt_float ~decimals:1 tp.Compress.Stats.comp_mbps;
            Report.Table.fmt_float ~decimals:1 tp.Compress.Stats.dec_mbps;
            Report.Table.fmt_float ~decimals:3 tp.Compress.Stats.tp_ratio;
          ];
        [
          ( Printf.sprintf "codec/%s/comp-MBps" tp.Compress.Stats.tp_codec_name,
            tp.Compress.Stats.comp_mbps );
          ( Printf.sprintf "codec/%s/dec-MBps" tp.Compress.Stats.tp_codec_name,
            tp.Compress.Stats.dec_mbps );
        ])
      (Compress.Registry.all ())
  in
  Report.Table.print t;
  entries

(* ------------------------------------------------------------------ *)
(* Binary trace codec phase                                            *)

(* Encode/decode throughput of the binary trace format over the
   streaming workload's 10⁶-step trace, in MB/s of in-memory trace
   data (8 bytes per id). BENCH.json carries the plain-binary figures
   as trace/{encode,decode}-MBps (guarded by check.sh) plus the
   LZSS-framed variants; the round trip is asserted byte-exact. *)
let trace_codec_phase () =
  let graph, _ =
    Trace.Synthetic.hot_cold ~hot_blocks:6 ~cold_blocks:24 ~hot_iters:4
      ~cold_visit_every:16 ()
  in
  let ids = Trace.Synthetic.markov ~seed:42 graph ~length:1_000_000 in
  let mb = float_of_int (8 * Array.length ids) /. 1e6 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let measure ~lzss =
    let enc, enc_dt = time (fun () -> Trace.Binary.encode ~lzss ids) in
    let dec, dec_dt = time (fun () -> Trace.Binary.decode enc) in
    (match dec with
    | Ok ids' when ids' = ids -> ()
    | Ok _ -> failwith "trace codec phase: lossy round trip"
    | Error e -> failwith ("trace codec phase: " ^ e));
    (String.length enc, mb /. enc_dt, mb /. dec_dt)
  in
  let plain_bytes, plain_enc, plain_dec = measure ~lzss:false in
  let lzss_bytes, lzss_enc, lzss_dec = measure ~lzss:true in
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "binary trace codec: %d ids (%.0f MB in memory, %d bytes as text)"
           (Array.length ids) mb
           (String.length (Trace.Io.to_string ids)))
      ~columns:
        [
          ("framing", Report.Table.Left);
          ("bytes", Report.Table.Right);
          ("bytes/id", Report.Table.Right);
          ("enc MB/s", Report.Table.Right);
          ("dec MB/s", Report.Table.Right);
        ]
  in
  let row name bytes enc dec =
    Report.Table.add_row t
      [
        name;
        string_of_int bytes;
        Report.Table.fmt_float ~decimals:2
          (float_of_int bytes /. float_of_int (Array.length ids));
        Report.Table.fmt_float ~decimals:1 enc;
        Report.Table.fmt_float ~decimals:1 dec;
      ]
  in
  row "varint-delta" plain_bytes plain_enc plain_dec;
  row "varint-delta+lzss" lzss_bytes lzss_enc lzss_dec;
  Report.Table.print t;
  [
    ("trace/encode-MBps", plain_enc);
    ("trace/decode-MBps", plain_dec);
    ("trace/lzss-encode-MBps", lzss_enc);
    ("trace/lzss-decode-MBps", lzss_dec);
  ]

(* ------------------------------------------------------------------ *)
(* Energy accounting phase                                             *)

(* One deterministic engine run per device profile: the per-dimension
   totals BENCH.json carries as energy/<profile>/* keys, so a change
   to any profile's coefficients (or to a charging site) shows up in
   the perf diff, and scripts/check.sh can gate on the keys existing.
   Cycle totals are profile-invariant by construction; that invariant
   is pinned here too. *)
let energy_phase () =
  let sc = Experiments.Util.scenario "fir" in
  let policy = Core.Policy.on_demand ~k:8 in
  let t =
    Report.Table.create
      ~title:"energy accounting: fir k=8 on-demand, per device profile"
      ~columns:
        [
          ("profile", Report.Table.Left);
          ("cycles", Report.Table.Right);
          ("total nJ", Report.Table.Right);
          ("dec nJ", Report.Table.Right);
          ("ram-static nJ", Report.Table.Right);
        ]
  in
  let runs =
    List.map
      (fun profile -> (profile, Core.Scenario.run ~profile sc policy))
      Sim.Cost.profile_names
  in
  (match runs with
  | (_, first) :: rest ->
    if
      List.exists
        (fun (_, (m : Core.Metrics.t)) ->
          m.total_cycles <> first.Core.Metrics.total_cycles)
        rest
    then failwith "energy phase: cycle totals vary across device profiles"
  | [] -> ());
  let entries =
    List.concat_map
      (fun (profile, (m : Core.Metrics.t)) ->
        Report.Table.add_row t
          [
            profile;
            string_of_int m.total_cycles;
            string_of_int m.energy_nj;
            string_of_int m.dec_energy_nj;
            string_of_int m.ram_static_energy_nj;
          ];
        [
          ( Printf.sprintf "energy/%s/fir-total-nj" profile,
            float_of_int m.energy_nj );
          ( Printf.sprintf "energy/%s/fir-ram-static-nj" profile,
            float_of_int m.ram_static_energy_nj );
        ])
      runs
  in
  Report.Table.print t;
  entries

(* ------------------------------------------------------------------ *)
(* Corpus generator phase                                              *)

(* A 100-program batch through Corpus.Gen.build — emission plus the
   calibration replays on the real machine. Generated-corpus
   experiments (E20) pay this cost once per program, so its throughput
   is a first-class figure; BENCH.json carries it as
   corpus/gen-programs-per-s in both full and --smoke modes. *)
let corpus_phase () =
  let n = 100 in
  let t0 = Unix.gettimeofday () in
  let visits = ref 0 in
  for seed = 1 to n do
    let spec = { Corpus.Spec.default with Corpus.Spec.seed } in
    let bt = Corpus.Gen.build spec in
    visits := !visits + Array.length bt.Corpus.Gen.trace
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let per_s = float_of_int n /. dt in
  Printf.printf
    "corpus generator: %d programs in %.2fs (%.1f programs/s, %d trace \
     visits)\n"
    n dt per_s !visits;
  [ ("corpus/gen-programs-per-s", per_s) ]

(* ------------------------------------------------------------------ *)
(* Streaming event-bus benchmark                                       *)

(* A million-step Markov walk streamed through a counting sink: the
   engine keeps no event list, so heap growth across the run should be
   (near) zero no matter the trace length. Reported alongside the
   throughput so a regression to O(trace) buffering is immediately
   visible as a top-heap delta in the same order as the event count. *)
(* Returns the wall time so the machine-readable BENCH.json can track
   it across PRs alongside the per-kernel estimates. *)
let streaming_bench () =
  let graph, _ =
    Trace.Synthetic.hot_cold ~hot_blocks:6 ~cold_blocks:24 ~hot_iters:4
      ~cold_visit_every:16 ()
  in
  let length = 1_000_000 in
  let trace = Trace.Synthetic.markov ~seed:42 graph ~length in
  let sc = Core.Scenario.of_graph ~name:"streaming-1M" graph ~trace in
  let policy = Core.Policy.on_demand ~k:2 in
  ignore (Core.Scenario.run sc policy) (* warm-up: JIT nothing, GC lots *);
  let counters = Sim.Events.counters () in
  let sink = Sim.Events.counting counters in
  Gc.compact ();
  let heap_before = (Gc.stat ()).Gc.top_heap_words in
  let t0 = Sys.time () in
  let m = Core.Scenario.run ~sink sc policy in
  let dt = Sys.time () -. t0 in
  let heap_after = (Gc.stat ()).Gc.top_heap_words in
  let events = Sim.Events.total counters in
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "streaming event bus: %d-step walk, constant-memory counting sink"
           length)
      ~columns:[ ("measure", Report.Table.Left); ("value", Report.Table.Right) ]
  in
  let row k v = Report.Table.add_row t [ k; v ] in
  row "events streamed" (string_of_int events);
  row "events/sec"
    (Report.Table.fmt_float ~decimals:0 (float_of_int events /. dt));
  row "run wall time (s)" (Report.Table.fmt_float ~decimals:3 dt);
  row "top-heap growth (words)" (string_of_int (heap_after - heap_before));
  row "total cycles" (string_of_int m.Core.Metrics.total_cycles);
  Report.Table.print t;
  if events < length then
    failwith "streaming bench: fewer events than trace steps?";
  dt

(* The new scale the binary format and fused hot path buy: the same
   walk as streaming-1M but 21× longer — north of 10⁸ events through
   the constant-memory counting sink. Reported as events/second under
   its own key so the 1M figure keeps measuring the seed workload. *)
let streaming_100m_bench () =
  let graph, _ =
    Trace.Synthetic.hot_cold ~hot_blocks:6 ~cold_blocks:24 ~hot_iters:4
      ~cold_visit_every:16 ()
  in
  let length = 21_000_000 in
  let trace = Trace.Synthetic.markov ~seed:42 graph ~length in
  let sc = Core.Scenario.of_graph ~name:"streaming-100M" graph ~trace in
  let policy = Core.Policy.on_demand ~k:2 in
  let counters = Sim.Events.counters () in
  let sink = Sim.Events.counting counters in
  let t0 = Unix.gettimeofday () in
  ignore (Core.Scenario.run ~sink sc policy);
  let dt = Unix.gettimeofday () -. t0 in
  let events = Sim.Events.total counters in
  Printf.printf "streaming-100M: %d events in %.2f s (%.1fM events/s)\n" events
    dt
    (float_of_int events /. dt /. 1e6);
  if events < 100_000_000 then
    failwith "streaming-100M: expected at least 10^8 events";
  float_of_int events /. dt

(* ------------------------------------------------------------------ *)
(* Service round-trip probe                                             *)

(* An in-process daemon on a temp Unix socket answering health pings:
   the wire + socket + dispatch overhead a resident client pays per
   request, with no engine work in the way. Returns the median
   round-trip in milliseconds. *)
let service_probe () =
  let path = Filename.temp_file "ccomp-bench" ".sock" in
  Sys.remove path;
  let server =
    Service.Server.create
      {
        Service.Server.default_config with
        socket_path = Some path;
        jobs = 1;
      }
  in
  let runner = Thread.create Service.Server.run server in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let ping () =
    output_string oc "{\"op\":\"health\"}\n";
    flush oc;
    ignore (input_line ic)
  in
  for _ = 1 to 20 do
    ping () (* warm-up *)
  done;
  let n = 200 in
  let samples =
    Array.init n (fun _ ->
        let t0 = Unix.gettimeofday () in
        ping ();
        (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  Unix.close fd;
  Service.Server.stop server;
  Thread.join runner;
  if Sys.file_exists path then Sys.remove path;
  Array.sort compare samples;
  let p50 = samples.(n / 2) in
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf "service round trip: %d health pings, one connection"
           n)
      ~columns:[ ("measure", Report.Table.Left); ("value", Report.Table.Right) ]
  in
  Report.Table.add_row t
    [ "p50 (ms)"; Report.Table.fmt_float ~decimals:3 p50 ];
  Report.Table.add_row t
    [ "p90 (ms)"; Report.Table.fmt_float ~decimals:3 samples.(n * 9 / 10) ];
  Report.Table.add_row t
    [ "max (ms)"; Report.Table.fmt_float ~decimals:3 samples.(n - 1) ];
  Report.Table.print t;
  p50

(* ------------------------------------------------------------------ *)
(* Service load phase                                                  *)

(* The event loop under pipelined concurrent load (the regime the
   single-ping probe above cannot see): N generator domains, a window
   of requests in flight each, against an in-process daemon. BENCH.json
   carries service/{req-per-s,p50-ms,p99-ms} in both full and --smoke
   modes. *)
let serve_phase ~clients ~requests ~pipeline () =
  let r = Service.Bench.run_load ~clients ~requests ~pipeline () in
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "service load: %d clients x %d health requests, pipeline %d"
           clients requests pipeline)
      ~columns:[ ("measure", Report.Table.Left); ("value", Report.Table.Right) ]
  in
  Report.Table.add_row t
    [ "req/s"; Report.Table.fmt_float ~decimals:0 r.Service.Bench.req_per_s ];
  Report.Table.add_row t
    [ "p50 (ms)"; Report.Table.fmt_float ~decimals:3 r.Service.Bench.p50_ms ];
  Report.Table.add_row t
    [ "p99 (ms)"; Report.Table.fmt_float ~decimals:3 r.Service.Bench.p99_ms ];
  Report.Table.add_row t
    [ "max (ms)"; Report.Table.fmt_float ~decimals:3 r.Service.Bench.max_ms ];
  Report.Table.add_row t
    [ "errors"; string_of_int r.Service.Bench.errors ];
  Report.Table.print t;
  if r.Service.Bench.errors > 0 then
    failwith "service load phase: generator saw errors";
  [
    ("service/req-per-s", r.Service.Bench.req_per_s);
    ("service/p50-ms", r.Service.Bench.p50_ms);
    ("service/p99-ms", r.Service.Bench.p99_ms);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel driver                                                     *)

let benchmark tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.2) ~kde:None
      ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"ccomp" tests)
  in
  Analyze.all ols Instance.monotonic_clock raw

(* Renders the table and returns (name, ns/run) rows for BENCH.json. *)
let print_results results =
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
        (name, estimate, r2) :: acc)
      results []
    |> List.sort compare
  in
  let t =
    Report.Table.create ~title:"bechamel microbenchmarks (monotonic clock)"
      ~columns:
        [
          ("benchmark", Report.Table.Left);
          ("ns/run", Report.Table.Right);
          ("r²", Report.Table.Right);
        ]
  in
  List.iter
    (fun (name, estimate, r2) ->
      Report.Table.add_row t
        [
          name;
          Report.Table.fmt_float ~decimals:0 estimate;
          Report.Table.fmt_float ~decimals:3 r2;
        ])
    rows;
  Report.Table.print t;
  List.map (fun (name, estimate, _) -> (name, estimate)) rows

(* ------------------------------------------------------------------ *)
(* BENCH.json: the machine-readable twin of the human-readable output,
   so the perf trajectory is diffable across PRs. One flat object,
   kernel name -> wall-clock estimate (ns/run for bechamel rows,
   seconds for whole-phase timings). *)

let write_bench_json entries =
  let oc = open_out "BENCH.json" in
  output_string oc "{\n";
  let n = List.length entries in
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "  \"%s\": %s%s\n"
        (Report.Table.json_escape name)
        (if Float.is_nan v then "null" else Printf.sprintf "%.6g" v)
        (if i = n - 1 then "" else ","))
    entries;
  output_string oc "}\n";
  close_out oc;
  print_endline "(benchmark estimates written to BENCH.json)"

(* ------------------------------------------------------------------ *)

let () =
  (* --smoke: just the streaming-bus check (it has a built-in failure
     condition), fast enough for scripts/check.sh to gate on. *)
  if Array.exists (( = ) "--smoke") Sys.argv then begin
    print_endline
      "ccomp benchmark harness (smoke): streaming event bus + service \
       round trip.\n";
    let dt = streaming_bench () in
    print_newline ();
    let eps_100m = streaming_100m_bench () in
    print_newline ();
    let p50 = service_probe () in
    print_newline ();
    let serve_entries =
      serve_phase ~clients:2 ~requests:5_000 ~pipeline:32 ()
    in
    print_newline ();
    let codec_entries = codec_throughput_phase ~min_time_s:0.01 () in
    print_newline ();
    let trace_entries = trace_codec_phase () in
    print_newline ();
    let energy_entries = energy_phase () in
    print_newline ();
    let corpus_entries = corpus_phase () in
    write_bench_json
      (("streaming-1M/wall-s", dt)
      :: ("streaming-100M/events-per-s", eps_100m)
      :: ("service-roundtrip/p50-ms", p50)
      :: (serve_entries @ codec_entries @ trace_entries @ energy_entries
         @ corpus_entries))
  end
  else begin
    print_endline
      "ccomp benchmark harness: micro-benchmarks per experiment, then the \
       regenerated tables for every figure/table of the paper.\n";
    let tests = experiment_tests () @ codec_tests () @ toolchain_tests () in
    let estimates = print_results (benchmark tests) in
    print_newline ();
    let streaming_dt = streaming_bench () in
    print_newline ();
    let eps_100m = streaming_100m_bench () in
    print_newline ();
    let p50 = service_probe () in
    print_newline ();
    let serve_entries =
      serve_phase ~clients:4 ~requests:25_000 ~pipeline:32 ()
    in
    print_newline ();
    let codec_entries = codec_throughput_phase () in
    print_newline ();
    let trace_entries = trace_codec_phase () in
    print_newline ();
    let energy_entries = energy_phase () in
    print_newline ();
    let corpus_entries = corpus_phase () in
    print_newline ();
    (* Full-table regeneration runs through the fleet pool (cache off:
       a benchmark should measure engine work, not disk reads). The
       registry counts the jobs, so the phase reports fleet
       throughput, not just wall time. *)
    let fleet_registry = Sim.Metrics.create () in
    Experiments.Util.configure_fleet
      ~jobs:(max 2 (Domain.recommended_domain_count ()))
      ~registry:fleet_registry ();
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun ((e : Experiments.Registry.entry), table) ->
        Printf.printf "[%s / %s] (%s)\n%s\n" e.id e.slug e.paper_anchor
          (Report.Table.render table))
      (Experiments.Registry.run_all ());
    let tables_dt = Unix.gettimeofday () -. t0 in
    let fleet_jobs =
      Sim.Metrics.value
        (Sim.Metrics.counter fleet_registry "fleet_jobs_completed")
    in
    let jobs_per_sec = float_of_int fleet_jobs /. tables_dt in
    Printf.printf
      "fleet table phase: %d jobs in %.2fs (%.1f jobs/sec across the pool)\n"
      fleet_jobs tables_dt jobs_per_sec;
    write_bench_json
      (estimates
      @ serve_entries
      @ codec_entries
      @ trace_entries
      @ energy_entries
      @ corpus_entries
      @ [
          ("streaming-1M/wall-s", streaming_dt);
          ("streaming-100M/events-per-s", eps_100m);
          ("service-roundtrip/p50-ms", p50);
          ("experiment-tables/wall-s", tables_dt);
          ("experiment-tables/jobs-per-sec", jobs_per_sec);
        ])
  end
