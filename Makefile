.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Everything a reviewer should run before merging: the full build
# (library, CLI, examples, bench — compilation errors anywhere fail
# here) and the whole test suite.
check:
	dune build @all
	dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
