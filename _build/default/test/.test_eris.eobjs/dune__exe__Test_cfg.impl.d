test/test_cfg.ml: Alcotest Array Cfg Eris List Option Result String
