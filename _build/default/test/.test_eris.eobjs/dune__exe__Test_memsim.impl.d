test/test_memsim.ml: Alcotest Format List Memsim Option QCheck QCheck_alcotest Result String
