test/test_eris.mli:
