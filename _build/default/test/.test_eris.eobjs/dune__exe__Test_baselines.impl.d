test/test_baselines.ml: Alcotest Array Baselines Cfg Core List Option Workloads
