test/test_trace.ml: Alcotest Array Cfg Filename Format List QCheck QCheck_alcotest Result String Sys Trace
