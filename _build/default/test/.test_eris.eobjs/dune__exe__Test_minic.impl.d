test/test_minic.ml: Alcotest Cfg Core Eris List Minic Printf QCheck QCheck_alcotest Result Runtime
