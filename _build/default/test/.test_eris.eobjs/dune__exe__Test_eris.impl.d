test/test_eris.ml: Alcotest Array Bytes Cfg Char Eris Gen List Option QCheck QCheck_alcotest Random Result String
