test/test_workloads.ml: Alcotest Array Cfg Core List Workloads
