test/test_runtime.ml: Alcotest Cfg Compress Core Eris List Printf Runtime String Workloads
