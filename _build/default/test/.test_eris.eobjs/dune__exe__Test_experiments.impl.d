test/test_experiments.ml: Alcotest Array Baselines Bytes Cfg Compress Core Eris Experiments Float List Option Report String
