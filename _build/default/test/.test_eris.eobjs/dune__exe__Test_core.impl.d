test/test_core.ml: Alcotest Array Bytes Cfg Compress Core Hashtbl List QCheck QCheck_alcotest String Trace
