test/test_compress.ml: Alcotest Array Bytes Char Compress Core Float Format Gen List Printf QCheck QCheck_alcotest Random String
