(* Tests for the compression substrate: bit IO, every codec's
   roundtrip and corruption behavior, the Huffman model internals and
   the corpus statistics. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let bytes_eq = Alcotest.testable
    (fun ppf b -> Format.fprintf ppf "%S" (Bytes.to_string b))
    Bytes.equal

(* ------------------------------------------------------------------ *)
(* Bit IO                                                              *)

let test_bitio_roundtrip () =
  let w = Compress.Bitio.Writer.create () in
  Compress.Bitio.Writer.add_bits w ~value:0b101 ~bits:3;
  Compress.Bitio.Writer.add_bits w ~value:0xFF ~bits:8;
  Compress.Bitio.Writer.add_bit w false;
  Compress.Bitio.Writer.add_bits w ~value:0 ~bits:0;
  checki "bit length" 12 (Compress.Bitio.Writer.bit_length w);
  let r = Compress.Bitio.Reader.create (Compress.Bitio.Writer.contents w) in
  checki "read 3" 0b101 (Compress.Bitio.Reader.read_bits r 3);
  checki "read 8" 0xFF (Compress.Bitio.Reader.read_bits r 8);
  checkb "read bit" false (Compress.Bitio.Reader.read_bit r)

let test_bitio_msb_first () =
  let w = Compress.Bitio.Writer.create () in
  Compress.Bitio.Writer.add_bits w ~value:0b10000000 ~bits:8;
  checks "msb first byte" "\x80"
    (Bytes.to_string (Compress.Bitio.Writer.contents w))

let test_bitio_padding () =
  let w = Compress.Bitio.Writer.create () in
  Compress.Bitio.Writer.add_bit w true;
  checks "padded with zeros" "\x80"
    (Bytes.to_string (Compress.Bitio.Writer.contents w))

let test_bitio_out_of_bits () =
  let r = Compress.Bitio.Reader.create (Bytes.create 1) in
  ignore (Compress.Bitio.Reader.read_bits r 8);
  checkb "exhausted" true
    (match Compress.Bitio.Reader.read_bit r with
    | _ -> false
    | exception Compress.Codec.Corrupt _ -> true)

let test_bitio_rejects_wide_writes () =
  let w = Compress.Bitio.Writer.create () in
  Alcotest.check_raises "31 bits rejected"
    (Invalid_argument "Bitio.Writer.add_bits") (fun () ->
      Compress.Bitio.Writer.add_bits w ~value:0 ~bits:31)

(* ------------------------------------------------------------------ *)
(* Codec roundtrips                                                    *)

let corpus_cases =
  [
    ("empty", Bytes.create 0);
    ("single", Bytes.of_string "x");
    ("two", Bytes.of_string "ab");
    ("run", Bytes.of_string (String.make 300 'z'));
    ("alternating", Bytes.init 256 (fun i -> if i mod 2 = 0 then 'a' else 'b'));
    ("all-bytes", Bytes.init 256 Char.chr);
    ("code-like", Core.Scenario.synthetic_block_bytes ~id:3 ~size:512);
    ("periodic", Bytes.init 1024 (fun i -> Char.chr (i mod 7 + 65)));
    ( "random",
      let st = Random.State.make [| 17 |] in
      Bytes.init 4096 (fun _ -> Char.chr (Random.State.int st 256)) );
    ( "lzw-reset",
      let st = Random.State.make [| 23 |] in
      Bytes.init 60000 (fun _ -> Char.chr (Random.State.int st 16)) );
  ]

let roundtrip_tests codec =
  List.map
    (fun (case, payload) ->
      Alcotest.test_case
        (Printf.sprintf "%s roundtrip %s" codec.Compress.Codec.name case)
        `Quick
        (fun () ->
          Alcotest.check bytes_eq "roundtrip" payload
            (codec.Compress.Codec.decompress
               (codec.Compress.Codec.compress payload))))
    corpus_cases

let all_roundtrips =
  List.concat_map roundtrip_tests
    (Compress.Registry.all ()
    @ [
        Compress.Registry.shared_huffman
          ~corpus:(Core.Scenario.synthetic_block_bytes ~id:1 ~size:2048);
        Compress.Registry.code_codec
          ~corpus:(Core.Scenario.synthetic_block_bytes ~id:1 ~size:2048);
      ])

let prop_roundtrip codec =
  QCheck.Test.make ~count:300
    ~name:(Printf.sprintf "%s random roundtrip" codec.Compress.Codec.name)
    QCheck.(map Bytes.of_string (string_of_size Gen.(int_range 0 2000)))
    (fun payload -> Compress.Codec.roundtrip_ok codec payload)

let prop_never_expanding =
  QCheck.Test.make ~count:300 ~name:"never_expanding bound"
    QCheck.(map Bytes.of_string (string_of_size Gen.(int_range 0 1000)))
    (fun payload ->
      List.for_all
        (fun codec ->
          Bytes.length (codec.Compress.Codec.compress payload)
          <= Bytes.length payload + 1)
        (Compress.Registry.all ()))

(* ------------------------------------------------------------------ *)
(* Known vectors and corruption                                        *)

let test_rle_known () =
  let c = Compress.Rle.codec in
  (* 5 repeated bytes: control 0x80 + (5-2) then the byte. *)
  checks "run encoding" "\x83a"
    (Bytes.to_string (c.Compress.Codec.compress (Bytes.of_string "aaaaa")));
  (* 3 literals: control 2 then the bytes. *)
  checks "literal encoding" "\x02abc"
    (Bytes.to_string (c.Compress.Codec.compress (Bytes.of_string "abc")))

let expect_corrupt codec payload =
  match codec.Compress.Codec.decompress payload with
  | _ -> false
  | exception Compress.Codec.Corrupt _ -> true

let test_corrupt_inputs () =
  checkb "rle truncated literal" true
    (expect_corrupt Compress.Rle.codec (Bytes.of_string "\x05ab"));
  checkb "rle truncated run" true
    (expect_corrupt Compress.Rle.codec (Bytes.of_string "\x83"));
  checkb "lzss bad back-reference" true
    (expect_corrupt Compress.Lzss.codec (Bytes.of_string "\x00\xFF\xF0"));
  checkb "lzw truncated header" true
    (expect_corrupt Compress.Lzw.codec (Bytes.of_string "ab"));
  checkb "huffman truncated header" true
    (expect_corrupt Compress.Huffman.codec (Bytes.of_string "ab"));
  checkb "huffman truncated table" true
    (expect_corrupt Compress.Huffman.codec (Bytes.of_string "\x10\x00\x00\x00\x05"));
  checkb "never_expanding empty" true
    (expect_corrupt (Compress.Codec.never_expanding Compress.Null.codec)
       (Bytes.create 0));
  checkb "never_expanding bad tag" true
    (expect_corrupt (Compress.Codec.never_expanding Compress.Null.codec)
       (Bytes.of_string "\x07abc"))

let test_lzw_bad_code () =
  (* header says 4 bytes, payload starts with an out-of-range code *)
  let b = Bytes.of_string "\x04\x00\x00\x00\xFF\xF0" in
  checkb "lzw bad first code" true (expect_corrupt Compress.Lzw.codec b)

(* ------------------------------------------------------------------ *)
(* Huffman internals                                                   *)

let test_huffman_code_lengths () =
  let freqs = Array.make 256 0 in
  freqs.(0) <- 100;
  freqs.(1) <- 50;
  freqs.(2) <- 10;
  freqs.(3) <- 10;
  let lengths = Compress.Huffman.code_lengths freqs in
  checki "most frequent shortest" 1 lengths.(0);
  checkb "lengths ordered by frequency" true (lengths.(1) <= lengths.(2));
  checki "absent symbol" 0 lengths.(4);
  (* Kraft equality: sum 2^-l = 1 for a complete Huffman code. *)
  let kraft =
    Array.fold_left
      (fun acc l -> if l > 0 then acc +. (1.0 /. Float.of_int (1 lsl l)) else acc)
      0.0 lengths
  in
  Alcotest.check (Alcotest.float 1e-9) "kraft equality" 1.0 kraft

let test_huffman_single_symbol () =
  let freqs = Array.make 256 0 in
  freqs.(65) <- 42;
  let lengths = Compress.Huffman.code_lengths freqs in
  checki "single symbol gets length 1" 1 lengths.(65);
  let payload = Bytes.of_string (String.make 20 'A') in
  checkb "single-symbol roundtrip" true
    (Compress.Codec.roundtrip_ok Compress.Huffman.codec payload)

let test_huffman_canonical_codes () =
  let lengths = Array.make 256 0 in
  lengths.(10) <- 2;
  lengths.(20) <- 2;
  lengths.(30) <- 2;
  lengths.(40) <- 3;
  lengths.(50) <- 3;
  let codes = Compress.Huffman.canonical_codes lengths in
  checkb "codes increase within length" true (fst codes.(10) < fst codes.(20));
  checkb "length-2 codes are 2 bits" true (snd codes.(10) = 2);
  (* canonical: first length-3 code = (last length-2 code + 1) << 1 *)
  checki "canonical step" ((fst codes.(30) + 1) lsl 1) (fst codes.(40))

let prop_huffman_kraft =
  QCheck.Test.make ~count:300 ~name:"huffman kraft equality on random freqs"
    QCheck.(array_of_size (QCheck.Gen.return 256) (int_range 0 1000))
    (fun freqs ->
      let present = Array.exists (fun f -> f > 0) freqs in
      QCheck.assume present;
      let lengths = Compress.Huffman.code_lengths freqs in
      let nsyms = Array.fold_left (fun a f -> if f > 0 then a + 1 else a) 0 freqs in
      if nsyms = 1 then Array.fold_left max 0 lengths = 1
      else
        let kraft =
          Array.fold_left
            (fun acc l ->
              if l > 0 then acc +. (1.0 /. Float.of_int (1 lsl l)) else acc)
            0.0 lengths
        in
        Float.abs (kraft -. 1.0) < 1e-9)

let test_shared_decodes_only_same_model () =
  let c1 = Compress.Huffman.shared ~corpus:(Bytes.of_string "aaaabbbbcccc") in
  let payload = Bytes.of_string "abcabc" in
  let compressed = c1.Compress.Codec.compress payload in
  checkb "same model ok" true
    (Bytes.equal payload (c1.Compress.Codec.decompress compressed))

let test_positional_beats_global_on_code () =
  (* Word-structured data: positional models should win. *)
  let corpus = Core.Scenario.synthetic_block_bytes ~id:9 ~size:4096 in
  let global = Compress.Huffman.shared ~corpus in
  let positional = Compress.Huffman.shared_positional ~corpus in
  let payload = Core.Scenario.synthetic_block_bytes ~id:9 ~size:512 in
  checkb "positional smaller" true
    (Bytes.length (positional.Compress.Codec.compress payload)
    <= Bytes.length (global.Compress.Codec.compress payload))

let test_shared_rejects_large_blocks () =
  let c = Compress.Huffman.shared ~corpus:(Bytes.of_string "abc") in
  Alcotest.check_raises "64KiB limit"
    (Invalid_argument "Huffman shared codecs handle blocks under 64 KiB")
    (fun () -> ignore (c.Compress.Codec.compress (Bytes.create 70000)))

(* ------------------------------------------------------------------ *)
(* MTF                                                                 *)

let test_mtf_transform () =
  let payload = Bytes.of_string "aaabbbaaa" in
  let t = Compress.Mtf.transform payload in
  checkb "self-inverse" true
    (Bytes.equal payload (Compress.Mtf.untransform t));
  (* after the first 'a', repeats become rank 0 *)
  checki "repeat rank" 0 (Char.code (Bytes.get t 1))

(* ------------------------------------------------------------------ *)
(* Registry & stats                                                    *)

let test_registry () =
  checki "six built-ins" 6 (List.length (Compress.Registry.all ()));
  checkb "find lzss" true (Compress.Registry.find "lzss" <> None);
  checkb "find unknown" true (Compress.Registry.find "gzip" = None);
  checks "default is lzss" "lzss" Compress.Registry.default.Compress.Codec.name;
  Alcotest.check_raises "find_exn unknown"
    (Invalid_argument "Compress.Registry.find_exn: \"gzip\"") (fun () ->
      ignore (Compress.Registry.find_exn "gzip"))

let test_stats () =
  let blocks =
    [ Bytes.of_string (String.make 100 'a'); Bytes.of_string "xyz"; Bytes.create 0 ]
  in
  let s = Compress.Stats.measure (Compress.Registry.find_exn "rle") blocks in
  checki "nonempty blocks counted" 2 s.Compress.Stats.blocks;
  checki "original bytes" 103 s.Compress.Stats.original_bytes;
  checkb "ratio sane" true (s.Compress.Stats.ratio > 0.0);
  checkb "best <= worst" true
    (s.Compress.Stats.best_block_ratio <= s.Compress.Stats.worst_block_ratio)

let test_codec_helpers () =
  let c = Compress.Registry.find_exn "rle" in
  let payload = Bytes.of_string (String.make 64 'q') in
  checkb "ratio below 1 on runs" true (Compress.Codec.ratio c payload < 1.0);
  checki "compressed_size consistent"
    (Bytes.length (c.Compress.Codec.compress payload))
    (Compress.Codec.compressed_size c payload);
  checkb "roundtrip_ok" true (Compress.Codec.roundtrip_ok c payload)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run ~and_exit:false "compress"
    [
      ( "bitio",
        [
          Alcotest.test_case "roundtrip" `Quick test_bitio_roundtrip;
          Alcotest.test_case "msb first" `Quick test_bitio_msb_first;
          Alcotest.test_case "padding" `Quick test_bitio_padding;
          Alcotest.test_case "out of bits" `Quick test_bitio_out_of_bits;
          Alcotest.test_case "wide writes rejected" `Quick
            test_bitio_rejects_wide_writes;
        ] );
      ("roundtrips", all_roundtrips);
      ( "random-roundtrips",
        List.map (fun c -> qcheck (prop_roundtrip c)) (Compress.Registry.all ())
        @ [ qcheck prop_never_expanding ] );
      ( "corruption",
        [
          Alcotest.test_case "rle known vectors" `Quick test_rle_known;
          Alcotest.test_case "corrupt inputs" `Quick test_corrupt_inputs;
          Alcotest.test_case "lzw bad code" `Quick test_lzw_bad_code;
        ] );
      ( "huffman",
        [
          Alcotest.test_case "code lengths" `Quick test_huffman_code_lengths;
          Alcotest.test_case "single symbol" `Quick test_huffman_single_symbol;
          Alcotest.test_case "canonical codes" `Quick
            test_huffman_canonical_codes;
          Alcotest.test_case "shared model" `Quick
            test_shared_decodes_only_same_model;
          Alcotest.test_case "positional beats global on code" `Quick
            test_positional_beats_global_on_code;
          Alcotest.test_case "shared block size limit" `Quick
            test_shared_rejects_large_blocks;
          qcheck prop_huffman_kraft;
        ] );
      ("mtf", [ Alcotest.test_case "transform" `Quick test_mtf_transform ]);
      ( "registry",
        [
          Alcotest.test_case "lookup" `Quick test_registry;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "codec helpers" `Quick test_codec_helpers;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Instruction dictionary (appended suite)                             *)

let code_corpus = Core.Scenario.synthetic_block_bytes ~id:11 ~size:2048

let test_dict_roundtrip () =
  let c = Compress.Dict.shared ~corpus:code_corpus in
  List.iter
    (fun size ->
      let payload = Core.Scenario.synthetic_block_bytes ~id:11 ~size in
      checkb
        (Printf.sprintf "dict roundtrip %dB" size)
        true
        (Compress.Codec.roundtrip_ok c payload))
    [ 0; 4; 64; 512; 2048 ];
  (* non-word-aligned tail *)
  let odd = Bytes.of_string "abcdefg" in
  checkb "dict odd length" true (Compress.Codec.roundtrip_ok c odd)

let test_dict_compresses_repeats () =
  let c = Compress.Dict.shared ~corpus:code_corpus in
  let payload = Core.Scenario.synthetic_block_bytes ~id:11 ~size:512 in
  checkb "dict compresses its corpus" true
    (Compress.Codec.ratio c payload < 0.8)

let test_dict_dictionary () =
  let words = Compress.Dict.dictionary_words ~corpus:code_corpus in
  checkb "dictionary nonempty" true (words <> []);
  checkb "bounded" true (List.length words <= 254);
  checkb "unique" true
    (List.length (List.sort_uniq compare words) = List.length words)

let test_dict_corrupt () =
  let c = Compress.Dict.shared ~corpus:code_corpus in
  checkb "truncated header" true
    (expect_corrupt c (Bytes.of_string "a"));
  checkb "truncated body" true
    (expect_corrupt c (Bytes.of_string "\x08\x00\xFF"));
  (* index beyond table: dictionary of this corpus has < 250 entries *)
  let words = List.length (Compress.Dict.dictionary_words ~corpus:code_corpus) in
  if words < 250 then
    checkb "bad index" true (expect_corrupt c (Bytes.of_string "\x04\x00\xFA"))

let test_registry_shared_all () =
  checki "three shared codecs" 3
    (List.length (Compress.Registry.shared_all ~corpus:code_corpus));
  let d = Compress.Registry.dict_codec ~corpus:code_corpus in
  checks "dict name" "dict" d.Compress.Codec.name

let () =
  Alcotest.run ~and_exit:false "compress-dict"
    [
      ( "dict",
        [
          Alcotest.test_case "roundtrip" `Quick test_dict_roundtrip;
          Alcotest.test_case "compresses repeats" `Quick
            test_dict_compresses_repeats;
          Alcotest.test_case "dictionary contents" `Quick test_dict_dictionary;
          Alcotest.test_case "corruption" `Quick test_dict_corrupt;
          Alcotest.test_case "registry" `Quick test_registry_shared_all;
        ] );
    ]
