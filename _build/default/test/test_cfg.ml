(* Tests for the CFG library: construction from programs, graph
   utilities, dominators, loops, distances, profiles and DOT export. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let check_il = Alcotest.check Alcotest.(list int)

(* A program with a loop, an if/else diamond and a call. *)
let sample_source =
  {|
entry:
  li r1, 3
loop:
  subi r1, r1, 1
  beq r1, r0, after
  blt r1, r0, neg
  nop
  j loop
neg:
  nop
  j loop
after:
  call helper
  halt
helper:
  ret
|}

let sample () =
  let prog = Eris.Asm.assemble_exn sample_source in
  (prog, Cfg.Build.of_program prog)

(* ------------------------------------------------------------------ *)
(* Build                                                               *)

let test_leaders () =
  let prog, _ = sample () in
  let leaders = Cfg.Build.leaders prog in
  checkb "entry is a leader" true (List.mem 0 leaders);
  checkb "leaders sorted" true (List.sort compare leaders = leaders);
  let loop_addr = Option.get (Eris.Program.address_of_symbol prog "loop") in
  let after_addr = Option.get (Eris.Program.address_of_symbol prog "after") in
  let helper_addr = Option.get (Eris.Program.address_of_symbol prog "helper") in
  checkb "loop leader" true (List.mem loop_addr leaders);
  checkb "after leader" true (List.mem after_addr leaders);
  checkb "helper leader" true (List.mem helper_addr leaders)

let test_build_edges () =
  let prog, g = sample () in
  let total =
    Array.fold_left
      (fun a (b : Cfg.Graph.block) -> a + b.byte_size)
      0 (Cfg.Graph.blocks g)
  in
  checki "blocks tile program" (Eris.Program.byte_size prog) total;
  let loop_addr = Option.get (Eris.Program.address_of_symbol prog "loop") in
  let loop_block = Option.get (Cfg.Graph.block_of_leader g loop_addr) in
  let has_back_edge =
    List.exists
      (fun (src, dst, _) -> dst = loop_block && src > loop_block)
      (Cfg.Graph.edges g)
  in
  checkb "loop back edge" true has_back_edge;
  let is_branch_block (b : Cfg.Graph.block) =
    match Eris.Program.instr_at prog (b.addr + b.byte_size - 4) with
    | Eris.Types.Branch _ -> true
    | Eris.Types.Alu _ | Alui _ | Lui _ | Load _ | Store _ | Jal _ | Jalr _
    | Halt -> false
  in
  let branch_block =
    List.find is_branch_block (Array.to_list (Cfg.Graph.blocks g))
  in
  let kinds =
    List.map snd (Cfg.Graph.succs g branch_block.Cfg.Graph.id)
    |> List.sort compare
  in
  checkb "branch has taken+fallthrough" true
    (kinds = List.sort compare [ Cfg.Graph.Taken; Cfg.Graph.Fallthrough ])

let test_call_return_edges () =
  let prog, g = sample () in
  let helper_addr = Option.get (Eris.Program.address_of_symbol prog "helper") in
  let helper_block = Option.get (Cfg.Graph.block_of_leader g helper_addr) in
  let call_edges =
    List.filter (fun (_, _, k) -> k = Cfg.Graph.Call) (Cfg.Graph.edges g)
  in
  checkb "one call edge to helper" true
    (List.exists (fun (_, dst, _) -> dst = helper_block) call_edges);
  let return_edges =
    List.filter
      (fun (src, _, k) -> k = Cfg.Graph.Return && src = helper_block)
      (Cfg.Graph.edges g)
  in
  checkb "helper has a return edge" true (return_edges <> [])

let test_trace_of_run () =
  let prog = Eris.Asm.assemble_exn sample_source in
  let g, trace = Cfg.Build.trace_of_run prog in
  checkb "trace nonempty" true (Array.length trace > 0);
  checki "trace starts at entry" (Cfg.Graph.entry g) trace.(0);
  checkb "trace follows edges" true (Cfg.Graph.validate_trace g trace = Ok ())

(* ------------------------------------------------------------------ *)
(* Graph utilities                                                     *)

let diamond () = Cfg.Graph.synthetic 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_graph_accessors () =
  let g = diamond () in
  checki "blocks" 4 (Cfg.Graph.num_blocks g);
  checki "edges" 4 (Cfg.Graph.num_edges g);
  check_il "succ of 0" [ 1; 2 ] (Cfg.Graph.succ_ids g 0);
  check_il "preds of 3" [ 1; 2 ] (Cfg.Graph.pred_ids g 3);
  check_il "exits" [ 3 ] (Cfg.Graph.exits g);
  checkb "all reachable" true
    (Array.for_all (fun x -> x) (Cfg.Graph.reachable g))

let test_graph_validation () =
  Alcotest.check_raises "bad edge rejected"
    (Invalid_argument "Cfg.Graph.make: bad edge 0 -> 9") (fun () ->
      ignore (Cfg.Graph.synthetic 2 [ (0, 9) ]));
  Alcotest.check_raises "empty graph rejected"
    (Invalid_argument "Cfg.Graph.synthetic: n must be positive") (fun () ->
      ignore (Cfg.Graph.synthetic 0 []))

let test_block_at_addr () =
  let _, g = sample () in
  let b1 = Cfg.Graph.block g 1 in
  checkb "addr inside block" true
    (Cfg.Graph.block_at_addr g (b1.addr + 4) = Some 1 || b1.byte_size <= 4);
  checkb "leader lookup" true (Cfg.Graph.block_of_leader g b1.addr = Some 1);
  checkb "non-leader lookup fails" true
    (b1.byte_size <= 4 || Cfg.Graph.block_of_leader g (b1.addr + 4) = None);
  checkb "out of range" true (Cfg.Graph.block_at_addr g 100000 = None)

let test_validate_trace_errors () =
  let g = diamond () in
  checkb "ok trace" true (Cfg.Graph.validate_trace g [| 0; 1; 3 |] = Ok ());
  checkb "wrong entry" true
    (Result.is_error (Cfg.Graph.validate_trace g [| 1; 3 |]));
  checkb "non-edge" true
    (Result.is_error (Cfg.Graph.validate_trace g [| 0; 3 |]));
  checkb "empty ok" true (Cfg.Graph.validate_trace g [||] = Ok ())

let test_unreachable () =
  let g = Cfg.Graph.synthetic 3 [ (0, 1) ] in
  let r = Cfg.Graph.reachable g in
  checkb "2 unreachable" false r.(2);
  checkb "1 reachable" true r.(1)

(* ------------------------------------------------------------------ *)
(* Dominators                                                          *)

let test_dominators_diamond () =
  let g = diamond () in
  let d = Cfg.Dom.compute g in
  checkb "entry has no idom" true (Cfg.Dom.idom d 0 = None);
  checkb "idom 1 = 0" true (Cfg.Dom.idom d 1 = Some 0);
  checkb "idom 2 = 0" true (Cfg.Dom.idom d 2 = Some 0);
  checkb "idom 3 = 0" true (Cfg.Dom.idom d 3 = Some 0);
  checkb "0 dominates all" true
    (List.for_all (fun b -> Cfg.Dom.dominates d 0 b) [ 0; 1; 2; 3 ]);
  checkb "1 does not dominate 3" false (Cfg.Dom.dominates d 1 3);
  checkb "self domination" true (Cfg.Dom.dominates d 2 2);
  check_il "dominators of 3" [ 3; 0 ] (Cfg.Dom.dominators d 3)

let test_dominators_chain_and_loop () =
  let g = Cfg.Graph.synthetic 4 [ (0, 1); (1, 2); (2, 1); (2, 3) ] in
  let d = Cfg.Dom.compute g in
  checkb "idom 2 = 1" true (Cfg.Dom.idom d 2 = Some 1);
  checkb "idom 3 = 2" true (Cfg.Dom.idom d 3 = Some 2);
  check_il "dominators of 3" [ 3; 2; 1; 0 ] (Cfg.Dom.dominators d 3)

let test_dominators_unreachable () =
  let g = Cfg.Graph.synthetic 3 [ (0, 1) ] in
  let d = Cfg.Dom.compute g in
  checkb "unreachable has no idom" true (Cfg.Dom.idom d 2 = None);
  checkb "unreachable not dominated" false (Cfg.Dom.dominates d 0 2);
  check_il "unreachable dominators empty" [] (Cfg.Dom.dominators d 2)

let test_rpo () =
  let g = diamond () in
  let rpo = Array.to_list (Cfg.Dom.reverse_postorder g) in
  checkb "starts at entry" true (List.hd rpo = 0);
  checkb "ends at exit" true (List.nth rpo 3 = 3);
  checki "covers all" 4 (List.length rpo)

(* ------------------------------------------------------------------ *)
(* Loops                                                               *)

let test_loop_nest () =
  (* 0 -> 1 -> 2 <-> 3, 3 -> 4 -> 1 (outer back edge), 4 -> 5. *)
  let g =
    Cfg.Graph.synthetic 6
      [ (0, 1); (1, 2); (2, 3); (3, 2); (3, 4); (4, 1); (4, 5) ]
  in
  let loops = Cfg.Loop.detect g in
  checki "two loops" 2 (List.length loops);
  let headers = List.map (fun l -> l.Cfg.Loop.header) loops in
  check_il "headers" [ 1; 2 ] headers;
  let outer = List.find (fun l -> l.Cfg.Loop.header = 1) loops in
  check_il "outer body" [ 1; 2; 3; 4 ] outer.Cfg.Loop.body;
  let inner = List.find (fun l -> l.Cfg.Loop.header = 2) loops in
  check_il "inner body" [ 2; 3 ] inner.Cfg.Loop.body;
  let depth = Cfg.Loop.loop_depth g in
  checki "B3 depth 2" 2 depth.(3);
  checki "B0 depth 0" 0 depth.(0);
  let in_loop = Cfg.Loop.in_any_loop g in
  checkb "B4 in loop" true in_loop.(4);
  checkb "B5 not in loop" false in_loop.(5)

let test_irreducible_cycles_are_not_natural_loops () =
  (* The Figure 1 reconstruction has two cycles whose headers do not
     dominate their latches (both are entered from two sides), so
     natural-loop detection correctly reports none. *)
  let g =
    Cfg.Graph.synthetic 6
      [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4); (3, 5); (4, 1); (4, 5); (5, 2) ]
  in
  checkb "no natural loops" true (Cfg.Loop.detect g = [])

let test_no_loops () =
  checkb "diamond has no loops" true (Cfg.Loop.detect (diamond ()) = [])

let test_self_loop () =
  let g = Cfg.Graph.synthetic 2 [ (0, 1); (1, 1) ] in
  match Cfg.Loop.detect g with
  | [ l ] ->
    checki "self loop header" 1 l.Cfg.Loop.header;
    check_il "self loop body" [ 1 ] l.Cfg.Loop.body
  | other -> Alcotest.failf "expected one loop, got %d" (List.length other)

(* ------------------------------------------------------------------ *)
(* Distances                                                           *)

let fig2 () =
  Cfg.Graph.synthetic 10
    [
      (0, 1); (0, 2); (1, 3); (1, 4); (2, 4); (2, 5); (3, 6); (4, 6); (5, 6);
      (6, 7); (6, 8); (7, 9); (8, 9);
    ]

let test_dist_within () =
  let g = fig2 () in
  let w1 = Cfg.Dist.within g ~from:0 ~k:1 in
  checkb "k=1" true (List.sort compare w1 = [ (1, 1); (2, 1) ]);
  let w2 = List.sort compare (Cfg.Dist.within g ~from:0 ~k:2) in
  checkb "k=2" true (w2 = [ (1, 1); (2, 1); (3, 2); (4, 2); (5, 2) ]);
  checkb "bfs order nearest first" true
    (let ds = List.map snd (Cfg.Dist.within g ~from:0 ~k:3) in
     List.sort compare ds = ds)

let test_dist_distance () =
  let g = fig2 () in
  checkb "d(1 exit -> 7) = 3" true (Cfg.Dist.distance g ~src:1 ~dst:7 = Some 3);
  checkb "d(0 -> 9) = 5" true (Cfg.Dist.distance g ~src:0 ~dst:9 = Some 5);
  checkb "unreachable backwards" true (Cfg.Dist.distance g ~src:9 ~dst:0 = None);
  let loop = Cfg.Graph.synthetic 2 [ (0, 1); (1, 0) ] in
  checkb "cycle distance" true (Cfg.Dist.distance loop ~src:0 ~dst:0 = Some 2)

let test_dist_within_self_cycle () =
  let loop = Cfg.Graph.synthetic 2 [ (0, 1); (1, 0) ] in
  let w = List.sort compare (Cfg.Dist.within loop ~from:0 ~k:2) in
  checkb "includes self at cycle length" true (w = [ (0, 2); (1, 1) ])

let test_all_distances () =
  let g = fig2 () in
  let d = Cfg.Dist.all_distances g ~from:0 in
  checki "to 9" 5 d.(9);
  checki "to 6" 3 d.(6);
  checkb "from exit nothing reachable" true
    ((Cfg.Dist.all_distances g ~from:9).(0) = max_int)

(* ------------------------------------------------------------------ *)
(* Profiles                                                            *)

let test_profile_counts () =
  let g = diamond () in
  let trace = [| 0; 1; 3; 0; 2; 3; 0; 1; 3 |] in
  (* NB: 3 -> 0 is not an edge; those steps only count block visits. *)
  let p = Cfg.Profile.of_trace g trace in
  checki "block 0 visits" 3 (Cfg.Profile.block_count p 0);
  checki "block 3 visits" 3 (Cfg.Profile.block_count p 3);
  checki "edge 0->1" 2 (Cfg.Profile.edge_count p ~src:0 ~dst:1);
  checki "edge 0->2" 1 (Cfg.Profile.edge_count p ~src:0 ~dst:2);
  checki "non-edge not counted" 0 (Cfg.Profile.edge_count p ~src:3 ~dst:0)

let test_profile_probability () =
  let g = diamond () in
  let p = Cfg.Profile.of_trace g [| 0; 1; 3; 0; 1; 3; 0; 2 |] in
  Alcotest.check (Alcotest.float 1e-9) "p(0->1)" (2.0 /. 3.0)
    (Cfg.Profile.edge_probability p ~src:0 ~dst:1);
  Alcotest.check (Alcotest.float 1e-9) "p(0->2)" (1.0 /. 3.0)
    (Cfg.Profile.edge_probability p ~src:0 ~dst:2);
  Alcotest.check (Alcotest.float 1e-9) "non-edge" 0.0
    (Cfg.Profile.edge_probability p ~src:3 ~dst:0);
  let u = Cfg.Profile.uniform g in
  Alcotest.check (Alcotest.float 1e-9) "uniform" 0.5
    (Cfg.Profile.edge_probability u ~src:0 ~dst:1)

let test_hottest_successor () =
  let g = diamond () in
  let p = Cfg.Profile.of_trace g [| 0; 2; 3; 0; 2; 3; 0; 1 |] in
  checkb "hottest of 0 is 2" true (Cfg.Profile.hottest_successor p 0 = Some 2);
  checkb "exit has none" true (Cfg.Profile.hottest_successor p 3 = None);
  let p2 = Cfg.Profile.of_trace g [| 0; 1; 3; 0; 2 |] in
  checkb "tie -> lower id" true (Cfg.Profile.hottest_successor p2 0 = Some 1)

let test_hot_blocks () =
  let g = diamond () in
  let p = Cfg.Profile.of_trace g [| 0; 1; 3; 0; 1; 3; 0; 1; 3; 0; 2; 3 |] in
  let hot = Cfg.Profile.hot_blocks p ~fraction:0.6 in
  checkb "hot excludes cold 2" true (not (List.mem 2 hot));
  checkb "hot covers everything at 1.0" true
    (List.length (Cfg.Profile.hot_blocks p ~fraction:1.0) >= 3);
  checkb "empty at 0" true (Cfg.Profile.hot_blocks p ~fraction:0.0 = []);
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Cfg.Profile.hot_blocks: fraction must be in [0,1]")
    (fun () -> ignore (Cfg.Profile.hot_blocks p ~fraction:1.5))

(* ------------------------------------------------------------------ *)
(* DOT                                                                 *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_dot () =
  let g = diamond () in
  let dot = Cfg.Dot.to_string ~name:"test" ~highlight:[ 1 ] g in
  checkb "has header" true
    (String.length dot > 12 && String.sub dot 0 12 = "digraph test");
  checkb "has node b0" true (contains "b0 [" dot);
  checkb "has edge" true (contains "b0 -> b1" dot);
  checkb "highlight" true (contains "fillcolor" dot)

let () =
  Alcotest.run "cfg"
    [
      ( "build",
        [
          Alcotest.test_case "leaders" `Quick test_leaders;
          Alcotest.test_case "edges" `Quick test_build_edges;
          Alcotest.test_case "call/return edges" `Quick test_call_return_edges;
          Alcotest.test_case "trace of run" `Quick test_trace_of_run;
        ] );
      ( "graph",
        [
          Alcotest.test_case "accessors" `Quick test_graph_accessors;
          Alcotest.test_case "validation" `Quick test_graph_validation;
          Alcotest.test_case "address lookup" `Quick test_block_at_addr;
          Alcotest.test_case "trace validation" `Quick
            test_validate_trace_errors;
          Alcotest.test_case "unreachable blocks" `Quick test_unreachable;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "diamond" `Quick test_dominators_diamond;
          Alcotest.test_case "chain and loop" `Quick
            test_dominators_chain_and_loop;
          Alcotest.test_case "unreachable" `Quick test_dominators_unreachable;
          Alcotest.test_case "reverse postorder" `Quick test_rpo;
        ] );
      ( "loops",
        [
          Alcotest.test_case "loop nest" `Quick test_loop_nest;
          Alcotest.test_case "irreducible cycles" `Quick
            test_irreducible_cycles_are_not_natural_loops;
          Alcotest.test_case "acyclic" `Quick test_no_loops;
          Alcotest.test_case "self loop" `Quick test_self_loop;
        ] );
      ( "distances",
        [
          Alcotest.test_case "within" `Quick test_dist_within;
          Alcotest.test_case "distance" `Quick test_dist_distance;
          Alcotest.test_case "self via cycle" `Quick test_dist_within_self_cycle;
          Alcotest.test_case "all distances" `Quick test_all_distances;
        ] );
      ( "profile",
        [
          Alcotest.test_case "counts" `Quick test_profile_counts;
          Alcotest.test_case "probabilities" `Quick test_profile_probability;
          Alcotest.test_case "hottest successor" `Quick test_hottest_successor;
          Alcotest.test_case "hot blocks" `Quick test_hot_blocks;
        ] );
      ("dot", [ Alcotest.test_case "export" `Quick test_dot ]);
    ]
