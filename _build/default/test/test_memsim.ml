(* Tests for the memory simulator: first-fit heap, remember sets,
   time-weighted accounting, LRU and the §5 layout model. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)

let test_heap_basic () =
  let h = Memsim.Heap.create ~capacity:100 in
  checki "capacity" 100 (Memsim.Heap.capacity h);
  let a = Option.get (Memsim.Heap.alloc h 30) in
  let b = Option.get (Memsim.Heap.alloc h 30) in
  checki "first fit at 0" 0 a;
  checki "second after first" 30 b;
  checki "used" 60 (Memsim.Heap.used_bytes h);
  checki "free" 40 (Memsim.Heap.free_bytes h);
  checkb "no room for 50" true (Memsim.Heap.alloc h 50 = None);
  Memsim.Heap.free h a;
  checkb "freed space reusable" true (Memsim.Heap.alloc h 30 = Some 0)

let test_heap_coalescing () =
  let h = Memsim.Heap.create ~capacity:90 in
  let a = Option.get (Memsim.Heap.alloc h 30) in
  let b = Option.get (Memsim.Heap.alloc h 30) in
  let c = Option.get (Memsim.Heap.alloc h 30) in
  Memsim.Heap.free h a;
  Memsim.Heap.free h c;
  checki "largest hole before coalesce" 30 (Memsim.Heap.largest_free h);
  Memsim.Heap.free h b;
  checki "holes coalesce" 90 (Memsim.Heap.largest_free h);
  checkb "invariants" true (Memsim.Heap.check_invariants h = Ok ())

let test_heap_fragmentation_metric () =
  let h = Memsim.Heap.create ~capacity:100 in
  let a = Option.get (Memsim.Heap.alloc h 25) in
  let _b = Option.get (Memsim.Heap.alloc h 25) in
  let c = Option.get (Memsim.Heap.alloc h 25) in
  let _d = Option.get (Memsim.Heap.alloc h 25) in
  checkf "no free no frag" 0.0 (Memsim.Heap.external_fragmentation h);
  Memsim.Heap.free h a;
  Memsim.Heap.free h c;
  (* 50 free in two 25 holes: 1 - 25/50. *)
  checkf "two holes" 0.5 (Memsim.Heap.external_fragmentation h)

let test_heap_errors () =
  let h = Memsim.Heap.create ~capacity:10 in
  Alcotest.check_raises "free unallocated"
    (Invalid_argument "Memsim.Heap.free: offset 3 not live") (fun () ->
      Memsim.Heap.free h 3);
  Alcotest.check_raises "alloc zero"
    (Invalid_argument "Memsim.Heap.alloc: non-positive size") (fun () ->
      ignore (Memsim.Heap.alloc h 0));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Memsim.Heap.create") (fun () ->
      ignore (Memsim.Heap.create ~capacity:0))

let test_heap_size_of () =
  let h = Memsim.Heap.create ~capacity:50 in
  let a = Option.get (Memsim.Heap.alloc h 17) in
  checkb "size recorded" true (Memsim.Heap.size_of h a = Some 17);
  checkb "unknown offset" true (Memsim.Heap.size_of h 40 = None)

(* Random alloc/free sequences preserve the heap invariants. *)
let prop_heap_invariants =
  QCheck.Test.make ~count:300 ~name:"heap invariants under random ops"
    QCheck.(list (pair (int_range 1 40) bool))
    (fun ops ->
      let h = Memsim.Heap.create ~capacity:256 in
      let live = ref [] in
      List.iter
        (fun (size, do_free) ->
          if do_free && !live <> [] then begin
            match !live with
            | off :: rest ->
              Memsim.Heap.free h off;
              live := rest
            | [] -> ()
          end
          else
            match Memsim.Heap.alloc h size with
            | Some off -> live := !live @ [ off ]
            | None -> ())
        ops;
      Memsim.Heap.check_invariants h = Ok ()
      && Memsim.Heap.used_bytes h + Memsim.Heap.free_bytes h
         = Memsim.Heap.capacity h)

(* ------------------------------------------------------------------ *)
(* Remember sets                                                       *)

let test_remember () =
  let r = Memsim.Remember.create ~blocks:4 in
  checkb "new site" true (Memsim.Remember.record r ~target:1 ~site:0);
  checkb "duplicate site" false (Memsim.Remember.record r ~target:1 ~site:0);
  checkb "another site" true (Memsim.Remember.record r ~target:1 ~site:2);
  Alcotest.check Alcotest.(list int) "sites sorted" [ 0; 2 ]
    (Memsim.Remember.sites r ~target:1);
  checki "cardinal" 2 (Memsim.Remember.cardinal r ~target:1);
  checki "total" 2 (Memsim.Remember.total_sites r);
  checkb "remove present" true (Memsim.Remember.remove_site r ~target:1 ~site:0);
  checkb "remove absent" false (Memsim.Remember.remove_site r ~target:1 ~site:0);
  checki "flush returns count" 1 (Memsim.Remember.flush r ~target:1);
  checki "flush empties" 0 (Memsim.Remember.cardinal r ~target:1);
  checki "flush empty is 0" 0 (Memsim.Remember.flush r ~target:3)

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)

let test_accounting () =
  let a = Memsim.Accounting.create () in
  Memsim.Accounting.set_level a ~time:10 ~level:100;
  Memsim.Accounting.set_level a ~time:20 ~level:50;
  Memsim.Accounting.add a ~time:30 ~delta:(-50);
  checki "level" 0 (Memsim.Accounting.level a);
  checki "peak" 100 (Memsim.Accounting.peak a);
  (* integral: 0*10 + 100*10 + 50*10 = 1500 *)
  checki "integral" 1500 (Memsim.Accounting.integral a ~until:30);
  checkf "average over 30" 50.0 (Memsim.Accounting.average a ~until:30)

let test_accounting_same_time () =
  let a = Memsim.Accounting.create () in
  Memsim.Accounting.add a ~time:5 ~delta:10;
  Memsim.Accounting.add a ~time:5 ~delta:10;
  checki "same-time updates" 20 (Memsim.Accounting.level a);
  checki "integral zero before 5" 0 (Memsim.Accounting.integral a ~until:5)

let test_accounting_errors () =
  let a = Memsim.Accounting.create () in
  Memsim.Accounting.set_level a ~time:10 ~level:5;
  Alcotest.check_raises "time backwards"
    (Invalid_argument "Memsim.Accounting: time went backwards (5 < 10)")
    (fun () -> Memsim.Accounting.set_level a ~time:5 ~level:1);
  Alcotest.check_raises "negative level"
    (Invalid_argument "Memsim.Accounting.set_level: negative level") (fun () ->
      Memsim.Accounting.set_level a ~time:20 ~level:(-1))

let test_accounting_empty () =
  let a = Memsim.Accounting.create () in
  checkf "average of nothing" 0.0 (Memsim.Accounting.average a ~until:0);
  checki "peak of nothing" 0 (Memsim.Accounting.peak a)

(* ------------------------------------------------------------------ *)
(* LRU                                                                 *)

let test_lru () =
  let l = Memsim.Lru.create () in
  Memsim.Lru.touch l 1 ~time:10;
  Memsim.Lru.touch l 2 ~time:20;
  Memsim.Lru.touch l 3 ~time:30;
  checki "cardinal" 3 (Memsim.Lru.cardinal l);
  checkb "victim is oldest" true (Memsim.Lru.victim l () = Some 1);
  Memsim.Lru.touch l 1 ~time:40;
  checkb "touch refreshes" true (Memsim.Lru.victim l () = Some 2);
  checkb "exclusion works" true
    (Memsim.Lru.victim l ~exclude:(fun b -> b = 2) () = Some 3);
  Memsim.Lru.remove l 2;
  checkb "removed not offered" true (Memsim.Lru.victim l () = Some 3);
  checkb "membership" true (Memsim.Lru.mem l 3 && not (Memsim.Lru.mem l 2));
  Alcotest.check
    Alcotest.(list (pair int int))
    "lru order" [ (3, 30); (1, 40) ] (Memsim.Lru.to_list l)

let test_lru_tie_break () =
  let l = Memsim.Lru.create () in
  Memsim.Lru.touch l 5 ~time:10;
  Memsim.Lru.touch l 3 ~time:10;
  checkb "tie broken by id" true (Memsim.Lru.victim l () = Some 3)

let test_lru_empty () =
  let l = Memsim.Lru.create () in
  checkb "no victim" true (Memsim.Lru.victim l () = None);
  checkb "all excluded" true
    (Memsim.Lru.touch l 1 ~time:1;
     Memsim.Lru.victim l ~exclude:(fun _ -> true) () = None)

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)

let layout () =
  Memsim.Layout.create
    ~compressed_sizes:[| 10; 20; 30 |]
    ~uncompressed_sizes:[| 40; 50; 60 |]
    ()

let test_layout_basic () =
  let l = layout () in
  checki "blocks" 3 (Memsim.Layout.num_blocks l);
  checki "compressed area constant" 60 (Memsim.Layout.compressed_area_bytes l);
  checki "offsets back to back" 10 (Memsim.Layout.compressed_offset l 1);
  checki "third offset" 30 (Memsim.Layout.compressed_offset l 2);
  checki "initially empty" 0 (Memsim.Layout.decompressed_bytes l);
  checki "initial footprint" 60 (Memsim.Layout.footprint l);
  checkb "not resident" false (Memsim.Layout.resident l 0)

let test_layout_decompress_discard () =
  let l = layout () in
  (match Memsim.Layout.decompress l 0 with
  | Ok off -> checki "first at 0" 0 off
  | Error `No_space -> Alcotest.fail "unexpected no-space");
  checkb "resident now" true (Memsim.Layout.resident l 0);
  checki "bytes" 40 (Memsim.Layout.decompressed_bytes l);
  (* idempotent *)
  checkb "re-decompress is ok" true (Memsim.Layout.decompress l 0 = Ok 0);
  checki "no double alloc" 40 (Memsim.Layout.decompressed_bytes l);
  checkb "record branch" true (Memsim.Layout.record_branch l ~target:0 ~site:1);
  checki "discard patches back" 1 (Memsim.Layout.discard l 0);
  checkb "gone" false (Memsim.Layout.resident l 0);
  checki "compressed area untouched" 60 (Memsim.Layout.compressed_area_bytes l);
  Alcotest.check_raises "discard non-resident"
    (Invalid_argument "Memsim.Layout.discard: block 0 not resident") (fun () ->
      ignore (Memsim.Layout.discard l 0))

let test_layout_capacity () =
  let l =
    Memsim.Layout.create ~decompressed_capacity:50
      ~compressed_sizes:[| 10; 10 |] ~uncompressed_sizes:[| 40; 40 |] ()
  in
  checkb "first fits" true (Result.is_ok (Memsim.Layout.decompress l 0));
  checkb "second does not" true (Memsim.Layout.decompress l 1 = Error `No_space)

let test_layout_validation () =
  Alcotest.check_raises "mismatched arrays"
    (Invalid_argument "Memsim.Layout.create: size arrays empty or mismatched")
    (fun () ->
      ignore
        (Memsim.Layout.create ~compressed_sizes:[| 1 |]
           ~uncompressed_sizes:[| 1; 2 |] ()));
  Alcotest.check_raises "non-positive size"
    (Invalid_argument "Memsim.Layout.create: non-positive block size")
    (fun () ->
      ignore
        (Memsim.Layout.create ~compressed_sizes:[| 0 |]
           ~uncompressed_sizes:[| 4 |] ()))

let test_layout_snapshot () =
  let l = layout () in
  ignore (Memsim.Layout.decompress l 1);
  let s = Format.asprintf "%a" Memsim.Layout.pp_snapshot l in
  checkb "mentions compressed area" true
    (String.length s > 0
    &&
    let rec has i =
      i + 2 <= String.length s && (String.sub s i 2 = "B1" || has (i + 1))
    in
    has 0)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "memsim"
    [
      ( "heap",
        [
          Alcotest.test_case "basic alloc/free" `Quick test_heap_basic;
          Alcotest.test_case "coalescing" `Quick test_heap_coalescing;
          Alcotest.test_case "fragmentation metric" `Quick
            test_heap_fragmentation_metric;
          Alcotest.test_case "errors" `Quick test_heap_errors;
          Alcotest.test_case "size_of" `Quick test_heap_size_of;
          qcheck prop_heap_invariants;
        ] );
      ("remember", [ Alcotest.test_case "sets" `Quick test_remember ]);
      ( "accounting",
        [
          Alcotest.test_case "integrals" `Quick test_accounting;
          Alcotest.test_case "same-time updates" `Quick
            test_accounting_same_time;
          Alcotest.test_case "errors" `Quick test_accounting_errors;
          Alcotest.test_case "empty" `Quick test_accounting_empty;
        ] );
      ( "lru",
        [
          Alcotest.test_case "ordering" `Quick test_lru;
          Alcotest.test_case "tie break" `Quick test_lru_tie_break;
          Alcotest.test_case "empty" `Quick test_lru_empty;
        ] );
      ( "layout",
        [
          Alcotest.test_case "basic" `Quick test_layout_basic;
          Alcotest.test_case "decompress/discard" `Quick
            test_layout_decompress_discard;
          Alcotest.test_case "capacity" `Quick test_layout_capacity;
          Alcotest.test_case "validation" `Quick test_layout_validation;
          Alcotest.test_case "snapshot" `Quick test_layout_snapshot;
        ] );
    ]
