(* Tests for the MiniC compiler: lexer, parser, semantic checks, and —
   most importantly — execution semantics of compiled programs on the
   ERIS-32 machine, including through the compression runtime. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let run_main ?optimize src =
  match Minic.Compile.run_main ?optimize src with
  | Ok v -> v
  | Error e -> Alcotest.failf "compile/run failed: %a" Minic.Compile.pp_error e

let expect_error stage src =
  match Minic.Compile.to_program src with
  | Ok _ -> Alcotest.failf "expected a %s error" stage
  | Error e ->
    let got =
      match e.Minic.Compile.stage with
      | `Parse -> "parse"
      | `Codegen -> "codegen"
      | `Assemble -> "assemble"
    in
    Alcotest.check Alcotest.string "error stage" stage got

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let test_lexer_tokens () =
  match Minic.Lexer.tokenize "int x = 0x1F; // comment\n/* multi\nline */ <= >> &&" with
  | Error e -> Alcotest.failf "lex error: %a" Minic.Lexer.pp_error e
  | Ok toks ->
    let names = List.map (fun t -> Minic.Lexer.token_name t.Minic.Lexer.token) toks in
    checkb "token stream" true
      (names = [ "int"; "x"; "="; "31"; ";"; "<="; ">>"; "&&"; "<eof>" ])

let test_lexer_line_numbers () =
  match Minic.Lexer.tokenize "int\nx\n=\n$" with
  | Ok _ -> Alcotest.fail "expected lex error"
  | Error e -> checki "error on line 4" 4 e.Minic.Lexer.line

let test_lexer_unterminated_comment () =
  checkb "unterminated comment" true
    (Result.is_error (Minic.Lexer.tokenize "/* never closed"))

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let test_parser_precedence () =
  (* 1 + 2 * 3 == 7 && 1 must parse as ((1 + (2*3)) == 7) && 1 *)
  checki "precedence" 1 (run_main "int main() { return 1 + 2 * 3 == 7 && 1; }")

let test_parser_else_if () =
  let src =
    "int f(int x) { if (x == 0) { return 10; } else if (x == 1) { return 20; \
     } else { return 30; } } int main() { return f(0) + f(1) + f(2); }"
  in
  checki "else-if chain" 60 (run_main src)

let test_parser_errors () =
  expect_error "parse" "int main() { return 1 + ; }";
  expect_error "parse" "int main() { if 1 { return 0; } }";
  expect_error "parse" "int main() { return 0 }";
  expect_error "parse" "float main() { return 0; }";
  expect_error "parse" "int main() { int a[3]; return 0; }"
(* local arrays are not in the language *)

(* ------------------------------------------------------------------ *)
(* Semantic checks                                                     *)

let test_sema_errors () =
  expect_error "codegen" "int main() { return y; }";
  expect_error "codegen" "int main() { return f(1); }";
  expect_error "codegen" "int f(int a) { return a; } int main() { return f(); }";
  expect_error "codegen" "int x; int x; int main() { return 0; }";
  expect_error "codegen" "int f() { return 0; } int f() { return 1; } int main() { return 0; }";
  expect_error "codegen" "int main() { int a = 1; int a = 2; return a; }";
  (* shadowing in a nested scope is fine; redefinition in one scope is not *)
  expect_error "codegen" "int f(int a, int a) { return a; } int main() { return f(1,2); }";
  expect_error "codegen" "int a[4]; int main() { return a; }";
  expect_error "codegen" "int x; int main() { return x[0]; }";
  expect_error "codegen" "int f() { return 0; }";
  expect_error "codegen" "int main(int argc) { return 0; }";
  expect_error "codegen" "int a[0]; int main() { return 0; }";
  expect_error "codegen" "int a[2] = {1,2,3}; int main() { return 0; }"

(* ------------------------------------------------------------------ *)
(* Execution semantics                                                 *)

let test_arithmetic () =
  checki "add/sub/mul" 17 (run_main "int main() { return 2 * 10 - 6 / 2; }");
  checki "unary" 8 (run_main "int main() { return -(-7) + !(3) - ~0; }");
  checki "bitwise" ((6 land 12) lor (6 lxor 5))
    (run_main "int main() { return (6 & 12) | (6 ^ 5); }");
  checki "hex literals" 255 (run_main "int main() { return 0xFF; }")

let test_division_semantics () =
  (* C11: truncation toward zero; (a/b)*b + a%b == a *)
  List.iter
    (fun (a, b) ->
      let src =
        Printf.sprintf "int main() { return (%d / %d) * 1000 + (%d %% %d); }" a
          b a b
      in
      let q = if (a < 0) = (b < 0) then abs a / abs b else -(abs a / abs b) in
      let r = a - (q * b) in
      checki (Printf.sprintf "%d div %d" a b) ((q * 1000) + r) (run_main src))
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (0, 5); (100, 7); (-100, 7) ]

let test_loops () =
  checki "while" 55
    (run_main
       "int main() { int s = 0; int i = 1; while (i <= 10) { s = s + i; i = \
        i + 1; } return s; }");
  checki "for" 2520
    (run_main
       "int main() { int p = 1; for (int i = 2; i <= 7; i = i + 1) { p = p * \
        i; } return p / 2; }");
  checki "for without cond runs via return" 5
    (run_main
       "int main() { for (int i = 0; ; i = i + 1) { if (i == 5) { return i; \
        } } return 0; }");
  checki "nested" 100
    (run_main
       "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { for \
        (int j = 0; j < 10; j = j + 1) { s = s + 1; } } return s; }")

let test_recursion_and_calls () =
  checki "ackermann(2,3)" 9
    (run_main
       "int ack(int m, int n) { if (m == 0) { return n + 1; } if (n == 0) { \
        return ack(m - 1, 1); } return ack(m - 1, ack(m, n - 1)); } int \
        main() { return ack(2, 3); }");
  checki "call in expression" 30
    (run_main
       "int twice(int x) { return x + x; } int main() { return twice(5) + \
        twice(twice(5)); }")

let test_mutual_recursion () =
  (* no forward declarations: define callee first *)
  checki "even/odd" 10
    (run_main
       "int parity(int n, int bit) { if (n == 0) { return bit; } return \
        parity(n - 1, 1 - bit); } int main() { if (parity(10, 0) == 0) { \
        return 10; } return 20; }")

let test_globals_and_arrays () =
  checki "array write/read" 385
    (run_main
       "int sq[10]; int main() { int s = 0; for (int i = 1; i <= 10; i = i + \
        1) { sq[i - 1] = i * i; } for (int i = 0; i < 10; i = i + 1) { s = s \
        + sq[i]; } return s; }");
  checki "initialized globals" 6
    (run_main "int a[3] = {1, 2, 3}; int main() { return a[0] + a[1] + a[2]; }");
  checki "default zero globals" 0
    (run_main "int x; int a[4]; int main() { return x + a[3]; }");
  checki "global mutation across calls" 3
    (run_main
       "int n; int bump() { n = n + 1; return n; } int main() { bump(); \
        bump(); return bump(); }")

let test_default_return () =
  checki "falling off the end returns 0" 0
    (run_main "int f() { int x = 9; } int main() { return f(); }")

let test_comments_and_formatting () =
  checki "comments ignored" 7
    (run_main
       "// leading\nint main() { /* inline */ return 7; // trailing\n}")

(* ------------------------------------------------------------------ *)
(* Integration with the compression stack                              *)

let sieve_src =
  "int sieve[200]; int main() { int count = 0; for (int i = 2; i < 200; i = \
   i + 1) { if (sieve[i] == 0) { count = count + 1; for (int j = i + i; j < \
   200; j = j + i) { sieve[j] = 1; } } } return count; }"

let test_compiled_program_under_engine () =
  match Minic.Compile.to_program sieve_src with
  | Error e -> Alcotest.failf "compile failed: %a" Minic.Compile.pp_error e
  | Ok prog ->
    let sc = Core.Scenario.of_program ~name:"minic-sieve" prog in
    checkb "trace valid" true
      (Cfg.Graph.validate_trace sc.Core.Scenario.graph sc.Core.Scenario.trace
      = Ok ());
    let m = Core.Scenario.run sc (Core.Policy.on_demand ~k:8) in
    checkb "engine runs compiled code" true (m.Core.Metrics.total_cycles > 0);
    (* compiled code compresses like hand-written code *)
    checkb "image compresses" true
      (m.Core.Metrics.compressed_area_bytes < m.Core.Metrics.original_bytes)

let test_compiled_program_under_runtime () =
  match Minic.Compile.to_program sieve_src with
  | Error e -> Alcotest.failf "compile failed: %a" Minic.Compile.pp_error e
  | Ok prog -> (
    match Runtime.run ~k:4 prog with
    | Ok (machine, stats) ->
      checki "46 primes below 200" 46
        (Eris.Machine.read_word machine Minic.Codegen.result_addr);
      checkb "compressed execution really happened" true
        (stats.Runtime.decompressions > 0 && stats.Runtime.deletions > 0)
    | Error _ -> Alcotest.fail "runtime failed on compiled code")

let test_compiled_cfg_is_rich () =
  match Minic.Compile.to_program sieve_src with
  | Error e -> Alcotest.failf "compile failed: %a" Minic.Compile.pp_error e
  | Ok prog ->
    let g = Cfg.Build.of_program prog in
    checkb "many blocks" true (Cfg.Graph.num_blocks g > 10);
    checkb "has loops" true (Cfg.Loop.detect g <> [])

let () =
  Alcotest.run ~and_exit:false "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "line numbers" `Quick test_lexer_line_numbers;
          Alcotest.test_case "unterminated comment" `Quick
            test_lexer_unterminated_comment;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "else-if" `Quick test_parser_else_if;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ("sema", [ Alcotest.test_case "errors" `Quick test_sema_errors ]);
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "division" `Quick test_division_semantics;
          Alcotest.test_case "loops" `Quick test_loops;
          Alcotest.test_case "recursion" `Quick test_recursion_and_calls;
          Alcotest.test_case "mutual-style recursion" `Quick
            test_mutual_recursion;
          Alcotest.test_case "globals and arrays" `Quick
            test_globals_and_arrays;
          Alcotest.test_case "default return" `Quick test_default_return;
          Alcotest.test_case "comments" `Quick test_comments_and_formatting;
        ] );
      ( "integration",
        [
          Alcotest.test_case "engine" `Quick test_compiled_program_under_engine;
          Alcotest.test_case "runtime" `Quick
            test_compiled_program_under_runtime;
          Alcotest.test_case "rich cfg" `Quick test_compiled_cfg_is_rich;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Optimizer (appended suite)                                          *)

let fold_to_int src =
  match Minic.Parser.parse_expr src with
  | Error e -> Alcotest.failf "parse_expr failed: %a" Minic.Parser.pp_error e
  | Ok e -> Minic.Optim.eval_const e

let test_constant_folding () =
  checkb "arith" true (fold_to_int "1 + 2 * 3" = Some 7);
  checkb "division truncates" true (fold_to_int "(-7) / 2" = Some (-3));
  checkb "mod sign" true (fold_to_int "(-7) % 2" = Some (-1));
  checkb "division by zero unfolds" true (fold_to_int "1 / 0" = None);
  checkb "comparison" true (fold_to_int "3 < 5" = Some 1);
  checkb "logic" true (fold_to_int "0 || 2" = Some 1);
  checkb "bnot" true (fold_to_int "~0" = Some (-1));
  checkb "wrap 32-bit" true
    (fold_to_int "0x7FFFFFFF + 1" = Some (-2147483648))

let test_identities () =
  let folds src expected =
    match Minic.Parser.parse_expr src with
    | Error _ -> Alcotest.failf "parse failed for %s" src
    | Ok e -> checkb src true (Minic.Optim.fold_expr e = expected)
  in
  folds "x + 0" (Minic.Ast.Var "x");
  folds "0 + x" (Minic.Ast.Var "x");
  folds "x * 1" (Minic.Ast.Var "x");
  folds "x * 8" (Minic.Ast.Binary (Minic.Ast.Shl, Minic.Ast.Var "x", Minic.Ast.Int 3));
  folds "x * 0" (Minic.Ast.Int 0);
  folds "x | 0" (Minic.Ast.Var "x");
  (* impure operands survive *)
  checkb "call * 0 not dropped" true
    (match Minic.Parser.parse_expr "f() * 0" with
    | Ok e -> (
      match Minic.Optim.fold_expr e with
      | Minic.Ast.Binary (Minic.Ast.Mul, Minic.Ast.Call _, Minic.Ast.Int 0) ->
        true
      | _ -> false)
    | Error _ -> false)

let test_branch_pruning () =
  (* if (0) keeps only the else side; while (0) disappears entirely *)
  let src =
    "int g; int f() { g = g + 1; return 0; } int main() { if (0) { f(); } \
     else { g = 5; } while (0) { f(); } if (1) { g = g + 2; } return g; }"
  in
  checki "pruned program result" 7 (run_main ~optimize:true src);
  (* pruning really shrank the code *)
  let size opt =
    match Minic.Compile.to_program ~optimize:opt src with
    | Ok p -> Eris.Program.byte_size p
    | Error _ -> Alcotest.fail "compile failed"
  in
  checkb "optimized smaller" true (size true < size false)

let run_main_opt src = run_main ~optimize:true src

let test_optimized_workloads_agree () =
  List.iter
    (fun src ->
      checki "optimize preserves semantics" (run_main src) (run_main_opt src))
    [
      "int main() { int s = 0; for (int i = 0; i < 20; i = i + 1) { s = s + \
       i * 4 + 1; } return s; }";
      "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); \
       } int main() { return fib(12); }";
      "int main() { return (5 * 0) + (3 && 2) + (0 || 7 == 7); }";
    ]

(* Differential property: a random pure expression over fixed globals
   evaluates to the same value in a reference OCaml evaluator, in the
   unoptimized compiled program, and in the optimized one. *)
let globals = [ ("g0", 13); ("g1", -7); ("g2", 100); ("g3", 0) ]

let rec ocaml_eval (x : Minic.Ast.expr) =
  let open Minic.Ast in
  let w v =
    let m = v land 0xFFFFFFFF in
    if m land 0x80000000 <> 0 then m - 0x100000000 else m
  in
  match x with
  | Int v -> w v
  | Var name -> List.assoc name globals
  | Index _ | Call _ -> failwith "not generated"
  | Unary (Neg, a) -> w (-ocaml_eval a)
  | Unary (Lnot, a) -> if ocaml_eval a = 0 then 1 else 0
  | Unary (Bnot, a) -> w (lnot (ocaml_eval a))
  | Binary (op, a, b) -> (
    let va = ocaml_eval a in
    match op with
    | Land -> if va = 0 then 0 else if ocaml_eval b <> 0 then 1 else 0
    | Lor -> if va <> 0 then 1 else if ocaml_eval b <> 0 then 1 else 0
    | _ -> (
      let vb = ocaml_eval b in
      match op with
      | Add -> w (va + vb)
      | Sub -> w (va - vb)
      | Mul -> w (va * vb)
      | Div ->
        if (va < 0) = (vb < 0) then w (abs va / abs vb)
        else w (-(abs va / abs vb))
      | Mod ->
        let q =
          if (va < 0) = (vb < 0) then abs va / abs vb else -(abs va / abs vb)
        in
        w (va - (q * vb))
      | Eq -> if va = vb then 1 else 0
      | Ne -> if va <> vb then 1 else 0
      | Lt -> if va < vb then 1 else 0
      | Le -> if va <= vb then 1 else 0
      | Gt -> if va > vb then 1 else 0
      | Ge -> if va >= vb then 1 else 0
      | Band -> w ((va land 0xFFFFFFFF) land (vb land 0xFFFFFFFF))
      | Bor -> w ((va land 0xFFFFFFFF) lor (vb land 0xFFFFFFFF))
      | Bxor -> w ((va land 0xFFFFFFFF) lxor (vb land 0xFFFFFFFF))
      | Shl -> w (va lsl (vb land 31))
      | Shr -> w (w va asr (vb land 31))
      | Land | Lor -> assert false))

let rec expr_to_src (x : Minic.Ast.expr) =
  let open Minic.Ast in
  match x with
  | Int v -> if v < 0 then Printf.sprintf "(%d)" v else string_of_int v
  | Var n -> n
  | Index _ | Call _ -> failwith "not generated"
  | Unary (op, a) -> Printf.sprintf "(%s%s)" (unop_name op) (expr_to_src a)
  | Binary (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_src a) (binop_name op) (expr_to_src b)

let gen_expr_ast =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun v -> Minic.Ast.Int v) (int_range (-1000) 1000);
        map
          (fun i -> Minic.Ast.Var (fst (List.nth globals (i mod 4))))
          (int_range 0 3);
      ]
  in
  (* division/modulo only by nonzero constants, and operands kept small
     via the magnitude-limited leaves; shifts by small constants *)
  let safe_binops =
    [
      Minic.Ast.Add; Minic.Ast.Sub; Minic.Ast.Mul; Minic.Ast.Eq; Minic.Ast.Ne;
      Minic.Ast.Lt; Minic.Ast.Le; Minic.Ast.Gt; Minic.Ast.Ge; Minic.Ast.Land;
      Minic.Ast.Lor; Minic.Ast.Band; Minic.Ast.Bor; Minic.Ast.Bxor;
    ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 5,
            let* op = oneofl safe_binops in
            let* a = tree (depth - 1) in
            let* b = tree (depth - 1) in
            return (Minic.Ast.Binary (op, a, b)) );
          ( 1,
            let* op = oneofl [ Minic.Ast.Div; Minic.Ast.Mod ] in
            let* a = tree (depth - 1) in
            let* d = int_range 1 50 in
            return (Minic.Ast.Binary (op, a, Minic.Ast.Int d)) );
          ( 1,
            let* op = oneofl [ Minic.Ast.Shl; Minic.Ast.Shr ] in
            let* a = tree (depth - 1) in
            let* sh = int_range 0 8 in
            return (Minic.Ast.Binary (op, a, Minic.Ast.Int sh)) );
          ( 1,
            let* op =
              oneofl [ Minic.Ast.Neg; Minic.Ast.Lnot; Minic.Ast.Bnot ]
            in
            let* a = tree (depth - 1) in
            return (Minic.Ast.Unary (op, a)) );
        ]
  in
  tree 4

let prop_compiler_differential =
  QCheck.Test.make ~count:150 ~name:"compiled expressions match the evaluator"
    (QCheck.make ~print:expr_to_src gen_expr_ast)
    (fun ast ->
      (* multiplications of large subterms can overflow 32 bits — that
         is fine, both sides wrap identically *)
      let expected = ocaml_eval ast in
      let src =
        Printf.sprintf "int g0 = 13; int g1 = -7; int g2 = 100; int g3 = 0; \
                        int main() { return %s; }"
          (expr_to_src ast)
      in
      match
        (Minic.Compile.run_main src, Minic.Compile.run_main ~optimize:true src)
      with
      | Ok plain, Ok optimized -> plain = expected && optimized = expected
      | _ -> false)

let () =
  Alcotest.run "minic-optim"
    [
      ( "optim",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "identities" `Quick test_identities;
          Alcotest.test_case "branch pruning" `Quick test_branch_pruning;
          Alcotest.test_case "optimized semantics" `Quick
            test_optimized_workloads_agree;
          QCheck_alcotest.to_alcotest prop_compiler_differential;
        ] );
    ]
