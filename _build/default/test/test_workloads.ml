(* Tests for the benchmark suite: every kernel must compute the same
   result as its OCaml reference, and its extracted scenario must be a
   valid input for the policy engine. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let correctness_tests =
  List.map
    (fun w ->
      Alcotest.test_case (w.Workloads.Common.name ^ " matches reference")
        `Quick
        (fun () ->
          match Workloads.Common.check w with
          | Ok () -> ()
          | Error msg -> Alcotest.fail msg))
    Workloads.Suite.all

let scenario_tests =
  List.map
    (fun w ->
      Alcotest.test_case (w.Workloads.Common.name ^ " scenario is sound")
        `Quick
        (fun () ->
          let sc = Workloads.Common.scenario w in
          checkb "trace nonempty" true (Array.length sc.Core.Scenario.trace > 0);
          checkb "trace valid" true
            (Cfg.Graph.validate_trace sc.Core.Scenario.graph
               sc.Core.Scenario.trace
            = Ok ());
          checkb "block sizes positive" true
            (Array.for_all
               (fun (i : Core.Engine.block_info) ->
                 i.uncompressed_bytes > 0 && i.compressed_bytes > 0
                 && i.exec_cycles > 0)
               sc.Core.Scenario.info);
          (* codecs trained on the program: image must compress *)
          let original =
            Array.fold_left
              (fun a (i : Core.Engine.block_info) -> a + i.uncompressed_bytes)
              0 sc.Core.Scenario.info
          and compressed =
            Array.fold_left
              (fun a (i : Core.Engine.block_info) -> a + i.compressed_bytes)
              0 sc.Core.Scenario.info
          in
          checkb "image compresses" true (compressed < original)))
    Workloads.Suite.all

let test_suite_lookup () =
  checki "sixteen kernels" 16 (List.length Workloads.Suite.all);
  checkb "names unique" true
    (List.length (List.sort_uniq compare Workloads.Suite.names) = 16);
  checkb "find works" true (Workloads.Suite.find "crc32" <> None);
  checkb "find unknown" true (Workloads.Suite.find "quake" = None);
  Alcotest.check_raises "find_exn unknown"
    (Invalid_argument "Workloads.Suite.find_exn: \"quake\"") (fun () ->
      ignore (Workloads.Suite.find_exn "quake"))

let test_determinism () =
  (* Workloads are built deterministically at module init; checking
     twice must agree. *)
  let w = Workloads.Suite.find_exn "fir" in
  checkb "stable expected" true
    (Workloads.Common.check w = Ok () && Workloads.Common.check w = Ok ())

let test_helpers () =
  Alcotest.check
    Alcotest.(list int)
    "bytes_to_words packs LE"
    [ 0x04030201; 0x0605 ]
    (Workloads.Common.bytes_to_words [ 1; 2; 3; 4; 5; 6 ]);
  checki "mask32" 0 (Workloads.Common.mask32 0x100000000);
  checki "to_signed32" (-1) (Workloads.Common.to_signed32 0xFFFFFFFF);
  let st = ref 1 in
  let a = Workloads.Common.lcg st in
  let b = Workloads.Common.lcg st in
  checkb "lcg advances" true (a <> b && a >= 0 && b >= 0)

let test_cfg_shapes () =
  (* dct is the call-structured kernel: it must have call edges. *)
  let sc = Workloads.Common.scenario (Workloads.Suite.find_exn "dct") in
  let kinds =
    List.map (fun (_, _, k) -> k) (Cfg.Graph.edges sc.Core.Scenario.graph)
  in
  checkb "dct has call edges" true (List.mem Cfg.Graph.Call kinds);
  checkb "dct has return edges" true (List.mem Cfg.Graph.Return kinds);
  (* fsm has a genuinely cold error block: some block is visited far
     less than the hottest one. *)
  let fsm = Workloads.Common.scenario (Workloads.Suite.find_exn "fsm") in
  let p = Core.Scenario.profile fsm in
  let counts =
    List.init
      (Cfg.Graph.num_blocks fsm.Core.Scenario.graph)
      (Cfg.Profile.block_count p)
    |> List.filter (fun c -> c > 0)
  in
  let hottest = List.fold_left max 0 counts in
  let coldest = List.fold_left min max_int counts in
  checkb "fsm has cold code" true (coldest * 10 < hottest)

let () =
  Alcotest.run "workloads"
    [
      ("correctness", correctness_tests);
      ("scenarios", scenario_tests);
      ( "suite",
        [
          Alcotest.test_case "lookup" `Quick test_suite_lookup;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "helpers" `Quick test_helpers;
          Alcotest.test_case "cfg shapes" `Quick test_cfg_shapes;
        ] );
    ]
