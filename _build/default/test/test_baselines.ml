(* Tests for the comparison baselines: granularity regrouping,
   cold-code compression and the scheme comparison rows. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let dct () = Workloads.Common.scenario (Workloads.Suite.find_exn "dct")
let fir () = Workloads.Common.scenario (Workloads.Suite.find_exn "fir")

(* ------------------------------------------------------------------ *)
(* Granularity                                                         *)

let test_procedures_of_dct () =
  let sc = dct () in
  let prog = Option.get sc.Core.Scenario.program in
  let g = Baselines.Granularity.procedures_of_program prog sc.Core.Scenario.graph in
  checki "dct has two procedures" 2 g.Baselines.Granularity.num_units;
  checki "assignment covers all blocks"
    (Cfg.Graph.num_blocks sc.Core.Scenario.graph)
    (Array.length g.Baselines.Granularity.unit_of_block);
  (* unit ids dense and ordered by address *)
  checki "entry block in unit 0" 0 g.Baselines.Granularity.unit_of_block.(0);
  checkb "some block in unit 1" true
    (Array.exists (fun u -> u = 1) g.Baselines.Granularity.unit_of_block)

let test_procedures_of_leaf_program () =
  let sc = fir () in
  let prog = Option.get sc.Core.Scenario.program in
  let g = Baselines.Granularity.procedures_of_program prog sc.Core.Scenario.graph in
  checki "no calls means one unit" 1 g.Baselines.Granularity.num_units

let test_whole_program () =
  let sc = fir () in
  let g = Baselines.Granularity.whole_program sc.Core.Scenario.graph in
  checki "one unit" 1 g.Baselines.Granularity.num_units;
  checkb "all zero" true
    (Array.for_all (fun u -> u = 0) g.Baselines.Granularity.unit_of_block)

let test_regroup_conservation () =
  let sc = dct () in
  let prog = Option.get sc.Core.Scenario.program in
  let g = Baselines.Granularity.procedures_of_program prog sc.Core.Scenario.graph in
  let unit_graph, unit_info, unit_trace, step_cycles =
    Baselines.Granularity.regroup sc g
  in
  checki "unit graph size" g.Baselines.Granularity.num_units
    (Cfg.Graph.num_blocks unit_graph);
  (* Total uncompressed bytes are conserved. *)
  let block_bytes =
    Array.fold_left
      (fun a (i : Core.Engine.block_info) -> a + i.uncompressed_bytes)
      0 sc.Core.Scenario.info
  in
  let unit_bytes =
    Array.fold_left
      (fun a (i : Core.Engine.block_info) -> a + i.uncompressed_bytes)
      0 unit_info
  in
  checki "bytes conserved" block_bytes unit_bytes;
  (* Total execution cycles are conserved exactly via step_cycles. *)
  let block_cycles =
    Array.fold_left
      (fun a b -> a + sc.Core.Scenario.info.(b).Core.Engine.exec_cycles)
      0 sc.Core.Scenario.trace
  in
  let stay_cycles = Array.fold_left ( + ) 0 step_cycles in
  checki "cycles conserved" block_cycles stay_cycles;
  (* Stays collapse consecutive same-unit blocks. *)
  checkb "no adjacent duplicate units" true
    (let ok = ref true in
     Array.iteri
       (fun i u -> if i > 0 && unit_trace.(i - 1) = u then ok := false)
       unit_trace;
     !ok);
  checki "step_cycles matches trace" (Array.length unit_trace)
    (Array.length step_cycles)

let test_granularity_run () =
  let sc = dct () in
  let prog = Option.get sc.Core.Scenario.program in
  let grouping =
    Baselines.Granularity.procedures_of_program prog sc.Core.Scenario.graph
  in
  let m = Baselines.Granularity.run sc grouping (Core.Policy.on_demand ~k:8) in
  let block_m = Core.Scenario.run sc (Core.Policy.on_demand ~k:8) in
  checki "same baseline cycles" block_m.Core.Metrics.baseline_cycles
    m.Core.Metrics.baseline_cycles;
  (* The paper's §6 claim: block granularity keeps the average
     footprint lower than procedure granularity. *)
  checkb "block granularity saves more on average" true
    (block_m.Core.Metrics.avg_footprint_bytes
    < m.Core.Metrics.avg_footprint_bytes)

(* ------------------------------------------------------------------ *)
(* Cold code                                                           *)

let test_cold_code () =
  let sc = Workloads.Common.scenario (Workloads.Suite.find_exn "fsm") in
  let r = Baselines.Cold_code.run sc in
  let n = Cfg.Graph.num_blocks sc.Core.Scenario.graph in
  checki "hot + cold = all" n (r.Baselines.Cold_code.hot_blocks + r.cold_blocks);
  checkb "some cold blocks" true (r.Baselines.Cold_code.cold_blocks > 0);
  checkb "static below original" true
    (let original =
       Array.fold_left
         (fun a (i : Core.Engine.block_info) -> a + i.uncompressed_bytes)
         0 sc.Core.Scenario.info
     in
     r.Baselines.Cold_code.static_bytes < original + r.buffer_bytes + 1);
  checkb "overhead nonnegative" true (Baselines.Cold_code.overhead_ratio r >= 0.0);
  checkb "decompressions happen" true (r.Baselines.Cold_code.decompressions > 0);
  (* more hot coverage -> fewer decompressions *)
  let tight = Baselines.Cold_code.run ~hot_fraction:0.5 sc in
  checkb "smaller hot set decompresses more" true
    (tight.Baselines.Cold_code.decompressions
    >= r.Baselines.Cold_code.decompressions)

let test_cold_code_all_hot () =
  let sc = fir () in
  let r = Baselines.Cold_code.run ~hot_fraction:1.0 sc in
  (* With every executed block hot, only never-executed blocks remain
     cold; runtime overhead must be zero. *)
  checki "no decompressions" 0 r.Baselines.Cold_code.decompressions;
  Alcotest.check (Alcotest.float 1e-9) "zero overhead" 0.0
    (Baselines.Cold_code.overhead_ratio r)

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)

let test_comparison_rows () =
  let sc = dct () in
  let rows = Baselines.Comparison.rows sc in
  let schemes = List.map (fun r -> r.Baselines.Comparison.scheme) rows in
  checki "six schemes for program scenarios" 6 (List.length rows);
  checkb "contains ours" true (List.mem "block/k-edge" schemes);
  checkb "contains procedure" true (List.mem "procedure/k-edge" schemes);
  checkb "contains cold-code" true (List.mem "cold-code-static" schemes);
  let no_comp = List.find (fun r -> r.Baselines.Comparison.scheme = "no-compression") rows in
  Alcotest.check (Alcotest.float 1e-9) "no-compression has zero overhead" 0.0
    no_comp.Baselines.Comparison.overhead;
  List.iter
    (fun r ->
      checkb
        (r.Baselines.Comparison.scheme ^ " footprint positive")
        true
        (r.Baselines.Comparison.peak_footprint > 0
        && r.Baselines.Comparison.avg_footprint > 0.0))
    rows

let test_comparison_synthetic_scenario () =
  (* Without a program, the procedure row disappears. *)
  let g = Cfg.Graph.synthetic 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let sc = Core.Scenario.of_graph g ~trace:(Array.init 40 (fun i -> i mod 4)) in
  let rows = Baselines.Comparison.rows sc in
  checki "five schemes for synthetic scenarios" 5 (List.length rows);
  checkb "no procedure row" true
    (not
       (List.exists
          (fun r -> r.Baselines.Comparison.scheme = "procedure/k-edge")
          rows))

let () =
  Alcotest.run "baselines"
    [
      ( "granularity",
        [
          Alcotest.test_case "procedures of dct" `Quick test_procedures_of_dct;
          Alcotest.test_case "leaf program" `Quick
            test_procedures_of_leaf_program;
          Alcotest.test_case "whole program" `Quick test_whole_program;
          Alcotest.test_case "regroup conservation" `Quick
            test_regroup_conservation;
          Alcotest.test_case "procedure-level run" `Quick test_granularity_run;
        ] );
      ( "cold-code",
        [
          Alcotest.test_case "fsm" `Quick test_cold_code;
          Alcotest.test_case "all hot" `Quick test_cold_code_all_hot;
        ] );
      ( "comparison",
        [
          Alcotest.test_case "program rows" `Quick test_comparison_rows;
          Alcotest.test_case "synthetic rows" `Quick
            test_comparison_synthetic_scenario;
        ] );
    ]
