let reuse_distances ~blocks trace =
  let last = Array.make blocks (-1) in
  let out = Array.make blocks [] in
  Array.iteri
    (fun step b ->
      if b >= 0 && b < blocks then begin
        if last.(b) >= 0 then out.(b) <- (step - last.(b)) :: out.(b);
        last.(b) <- step
      end)
    trace;
  Array.map List.rev out

let all_reuse_distances ~blocks trace =
  reuse_distances ~blocks trace
  |> Array.to_list |> List.concat |> List.sort compare

let percentile p sorted =
  if p < 0.0 || p > 1.0 then invalid_arg "Trace.Analysis.percentile";
  match sorted with
  | [] -> None
  | l ->
    let n = List.length l in
    let idx = min (n - 1) (int_of_float (p *. float_of_int n)) in
    Some (List.nth l idx)

let survival_fraction ~blocks trace ~k =
  let ds = all_reuse_distances ~blocks trace in
  match ds with
  | [] -> 1.0
  | ds ->
    let hits = List.length (List.filter (fun d -> d <= k) ds) in
    float_of_int hits /. float_of_int (List.length ds)

let working_set_sizes trace ~window =
  if window <= 0 then invalid_arg "Trace.Analysis.working_set_sizes";
  let len = Array.length trace in
  let nwin = (len + window - 1) / window in
  Array.init nwin (fun w ->
      let seen = Hashtbl.create 16 in
      let lo = w * window in
      let hi = min len (lo + window) in
      for i = lo to hi - 1 do
        Hashtbl.replace seen trace.(i) ()
      done;
      Hashtbl.length seen)

let distinct_blocks trace =
  let seen = Hashtbl.create 16 in
  Array.iter (fun b -> Hashtbl.replace seen b ()) trace;
  Hashtbl.length seen

let pp_summary ~blocks ppf trace =
  let ds = all_reuse_distances ~blocks trace in
  let pct p =
    match percentile p ds with Some v -> string_of_int v | None -> "-"
  in
  Format.fprintf ppf
    "@[<v>trace length: %d; distinct blocks: %d@,\
     reuse distances: %d samples; p25 %s, p50 %s, p75 %s, p90 %s, max %s@,\
     k-edge hit rate: k=2 %.0f%%, k=4 %.0f%%, k=8 %.0f%%, k=16 %.0f%%@]"
    (Array.length trace) (distinct_blocks trace) (List.length ds) (pct 0.25)
    (pct 0.5) (pct 0.75) (pct 0.9)
    (match List.rev ds with v :: _ -> string_of_int v | [] -> "-")
    (100.0 *. survival_fraction ~blocks trace ~k:2)
    (100.0 *. survival_fraction ~blocks trace ~k:4)
    (100.0 *. survival_fraction ~blocks trace ~k:8)
    (100.0 *. survival_fraction ~blocks trace ~k:16)
