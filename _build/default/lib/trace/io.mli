(** Plain-text serialization of basic-block traces, so profiling runs
    can be captured once and replayed across experiments. *)

val to_string : int array -> string
(** Format: a ["ccomp-trace 1"] header line, one decimal block id per
    line. *)

val of_string : string -> (int array, string) result

val save : string -> int array -> unit
val load : string -> (int array, string) result
