lib/trace/analysis.ml: Array Format Hashtbl List
