lib/trace/synthetic.ml: Array Cfg List Random
