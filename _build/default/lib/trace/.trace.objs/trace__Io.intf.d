lib/trace/io.mli:
