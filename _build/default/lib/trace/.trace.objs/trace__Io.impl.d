lib/trace/io.ml: Array Buffer Fun In_channel List Printf String
