lib/trace/synthetic.mli: Cfg
