lib/trace/analysis.mli: Format
