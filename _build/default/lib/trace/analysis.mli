(** Access-pattern analytics over basic-block traces: the quantities
    that determine how a trace responds to the k-edge policy.

    A block's {e reuse distance} (here: edge traversals between
    consecutive executions of the same block) decides its fate under a
    given k — it survives iff its reuse distance stays below k. *)

val reuse_distances : blocks:int -> int array -> int list array
(** Per block, the list of observed reuse distances (chronological). *)

val all_reuse_distances : blocks:int -> int array -> int list
(** All reuse distances in one sorted list. *)

val percentile : float -> int list -> int option
(** [percentile 0.5 sorted] is the median; [None] on empty lists.
    @raise Invalid_argument outside [0, 1]. The list must be sorted. *)

val survival_fraction : blocks:int -> int array -> k:int -> float
(** Fraction of re-executions whose reuse distance is <= [k] — i.e.
    the hit rate the k-edge policy would achieve on this trace
    (1.0 when there are no re-executions). *)

val working_set_sizes : int array -> window:int -> int array
(** Number of distinct blocks in each consecutive window (stride =
    window). @raise Invalid_argument if [window <= 0]. *)

val distinct_blocks : int array -> int

val pp_summary :
  blocks:int -> Format.formatter -> int array -> unit
(** Human-readable digest: length, distinct blocks, reuse-distance
    quartiles, suggested k values. *)
