(** Synthetic instruction-access patterns: random walks and canned CFG
    families for studying the policies at scales and shapes no single
    benchmark provides. *)

val markov :
  ?seed:int ->
  ?weight:(src:int -> dst:int -> float) ->
  Cfg.Graph.t ->
  length:int ->
  int array
(** Random walk over the CFG edges starting at the entry. Successor
    choice is proportional to [weight] (default uniform); walks that
    reach an exit block restart at the entry (so the result satisfies
    {!Cfg.Graph.validate_trace} exactly when every visited block has a
    successor). *)

val loop_nest : levels:int -> iters:int array -> Cfg.Graph.t * int array
(** A nest of [levels] counted loops; level [i] runs [iters.(i)]
    times per entry of its parent. Returns the graph (3 blocks per
    level: header, body, latch-exit) and the exact trace of one full
    execution. High temporal reuse: the paper's motivating shape. *)

val hot_cold :
  ?seed:int ->
  hot_blocks:int ->
  cold_blocks:int ->
  hot_iters:int ->
  cold_visit_every:int ->
  unit ->
  Cfg.Graph.t * int array
(** A hot loop of [hot_blocks] blocks plus a rarely-taken cold chain
    of [cold_blocks] blocks, entered once every [cold_visit_every]
    loop iterations — the "large fraction of the code is rarely
    touched" shape from Debray–Evans that motivates
    block-granularity compression. *)

val diamond_chain : diamonds:int -> Cfg.Graph.t
(** A chain of if-then-else diamonds (4 blocks each), as in the
    paper's Figure 2 reconstruction. *)
