let markov ?(seed = 42) ?weight g ~length =
  if length < 0 then invalid_arg "Trace.Synthetic.markov: negative length";
  let rng = Random.State.make [| seed |] in
  let weight =
    match weight with Some w -> w | None -> fun ~src:_ ~dst:_ -> 1.0
  in
  let pick src =
    match Cfg.Graph.succ_ids g src with
    | [] -> None
    | succ ->
      let weights = List.map (fun dst -> max 0.0 (weight ~src ~dst)) succ in
      let total = List.fold_left ( +. ) 0.0 weights in
      if total <= 0.0 then
        (* All-zero weights: fall back to uniform. *)
        Some (List.nth succ (Random.State.int rng (List.length succ)))
      else begin
        let r = Random.State.float rng total in
        let rec choose acc = function
          | [ (d, _) ] -> d
          | (d, w) :: rest -> if acc +. w >= r then d else choose (acc +. w) rest
          | [] -> assert false
        in
        Some (choose 0.0 (List.combine succ weights))
      end
  in
  let entry = Cfg.Graph.entry g in
  let out = Array.make (max length 0) entry in
  let cur = ref entry in
  for i = 0 to length - 1 do
    out.(i) <- !cur;
    cur :=
      (match pick !cur with
      | Some next -> next
      | None -> entry (* program "re-runs": restart at the entry *))
  done;
  out

let loop_nest ~levels ~iters =
  if levels <= 0 then invalid_arg "Trace.Synthetic.loop_nest: levels";
  if Array.length iters <> levels then
    invalid_arg "Trace.Synthetic.loop_nest: iters length mismatch";
  Array.iter
    (fun i -> if i <= 0 then invalid_arg "Trace.Synthetic.loop_nest: iters")
    iters;
  (* Blocks per level l (0 = outermost): header h_l, body b_l, exit e_l.
     Control: h_l -> b_l; b_l -> h_(l+1) (or b_l -> h_l again for the
     innermost); innermost body loops back to its own header; a header
     that finishes iterating goes to its exit; exits chain upward. *)
  let header l = 3 * l in
  let body l = (3 * l) + 1 in
  let exit_ l = (3 * l) + 2 in
  let n = 3 * levels in
  let edges = ref [] in
  let add a b = edges := (a, b) :: !edges in
  for l = 0 to levels - 1 do
    add (header l) (body l);
    add (header l) (exit_ l);
    if l < levels - 1 then begin
      add (body l) (header (l + 1));
      add (exit_ (l + 1)) (header l)
    end
    else add (body l) (header l)
  done;
  let g = Cfg.Graph.synthetic n (List.rev !edges) in
  (* Exact trace of one execution. *)
  let buf = ref [] in
  let emit b = buf := b :: !buf in
  let rec run l =
    for _ = 1 to iters.(l) do
      emit (header l);
      emit (body l);
      if l < levels - 1 then run (l + 1)
    done;
    emit (header l);
    emit (exit_ l)
  in
  run 0;
  (g, Array.of_list (List.rev !buf))

let hot_cold ?(seed = 7) ~hot_blocks ~cold_blocks ~hot_iters ~cold_visit_every
    () =
  if hot_blocks < 2 || cold_blocks < 1 || hot_iters < 1 || cold_visit_every < 1
  then invalid_arg "Trace.Synthetic.hot_cold";
  (* Blocks: 0 .. hot_blocks-1 form a cycle; hot_blocks .. +cold_blocks-1
     form a chain entered from block 0 and returning to block 0. *)
  let n = hot_blocks + cold_blocks in
  let edges = ref [] in
  let add a b = edges := (a, b) :: !edges in
  for i = 0 to hot_blocks - 1 do
    add i ((i + 1) mod hot_blocks)
  done;
  add 0 hot_blocks;
  for i = 0 to cold_blocks - 2 do
    add (hot_blocks + i) (hot_blocks + i + 1)
  done;
  add (hot_blocks + cold_blocks - 1) 0;
  let sizes =
    Array.init n (fun i -> if i < hot_blocks then 48 else 96)
  in
  let g = Cfg.Graph.synthetic ~sizes n (List.rev !edges) in
  let rng = Random.State.make [| seed |] in
  ignore rng;
  let buf = ref [] in
  let emit b = buf := b :: !buf in
  for it = 1 to hot_iters do
    emit 0;
    if it mod cold_visit_every = 0 then
      for c = 0 to cold_blocks - 1 do
        emit (hot_blocks + c)
      done
    else
      for i = 1 to hot_blocks - 1 do
        emit i
      done
  done;
  (g, Array.of_list (List.rev !buf))

let diamond_chain ~diamonds =
  if diamonds <= 0 then invalid_arg "Trace.Synthetic.diamond_chain";
  (* Each diamond d: split s_d, then t_d / f_d, then join j_d; the join
     is the next diamond's split. Block ids: 3d = split, 3d+1 = then,
     3d+2 = else, last block = final join. *)
  let n = (3 * diamonds) + 1 in
  let edges = ref [] in
  let add a b = edges := (a, b) :: !edges in
  for d = 0 to diamonds - 1 do
    let split = 3 * d in
    let join = 3 * (d + 1) in
    add split (split + 1);
    add split (split + 2);
    add (split + 1) join;
    add (split + 2) join
  done;
  Cfg.Graph.synthetic n (List.rev !edges)
