(** N-queens (N = 6) counted by recursive backtracking — written in
    MiniC and compiled with the in-tree compiler, so the binary's CFG
    is genuine compiler output (branch diamonds, call frames, the
    works) rather than hand-scheduled assembly. *)

val workload : Common.t
