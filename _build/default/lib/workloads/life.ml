let generations = 20
let dim = 10

let source_c =
  Printf.sprintf
    {|
int a[100];
int b[100];

int idx(int r, int c) { return r * 10 + c; }

int get(int r, int c) {
  if (r < 0 || r > 9 || c < 0 || c > 9) { return 0; }
  return a[idx(r, c)];
}

int main() {
  /* glider */
  a[idx(1, 2)] = 1;
  a[idx(2, 3)] = 1;
  a[idx(3, 1)] = 1;
  a[idx(3, 2)] = 1;
  a[idx(3, 3)] = 1;
  for (int g = 0; g < %d; g = g + 1) {
    for (int r = 0; r < 10; r = r + 1) {
      for (int c = 0; c < 10; c = c + 1) {
        int n = get(r-1, c-1) + get(r-1, c) + get(r-1, c+1)
              + get(r, c-1)                 + get(r, c+1)
              + get(r+1, c-1) + get(r+1, c) + get(r+1, c+1);
        int alive = a[idx(r, c)];
        if (alive == 1) {
          if (n == 2 || n == 3) { b[idx(r, c)] = 1; } else { b[idx(r, c)] = 0; }
        } else {
          if (n == 3) { b[idx(r, c)] = 1; } else { b[idx(r, c)] = 0; }
        }
      }
    }
    for (int i = 0; i < 100; i = i + 1) { a[i] = b[i]; }
  }
  int s = 0;
  for (int i = 0; i < 100; i = i + 1) { s = s + a[i] * (i + 3); }
  return s;
}
|}
    generations

let reference () =
  let a = Array.make (dim * dim) 0 in
  let idx r c = (r * dim) + c in
  List.iter
    (fun (r, c) -> a.(idx r c) <- 1)
    [ (1, 2); (2, 3); (3, 1); (3, 2); (3, 3) ];
  let get g r c =
    if r < 0 || r >= dim || c < 0 || c >= dim then 0 else g.(idx r c)
  in
  let cur = ref a in
  for _ = 1 to generations do
    let g = !cur in
    let next = Array.make (dim * dim) 0 in
    for r = 0 to dim - 1 do
      for c = 0 to dim - 1 do
        let n =
          get g (r - 1) (c - 1) + get g (r - 1) c + get g (r - 1) (c + 1)
          + get g r (c - 1) + get g r (c + 1)
          + get g (r + 1) (c - 1) + get g (r + 1) c + get g (r + 1) (c + 1)
        in
        next.(idx r c) <-
          (if g.(idx r c) = 1 then if n = 2 || n = 3 then 1 else 0
           else if n = 3 then 1
           else 0)
      done
    done;
    cur := next
  done;
  let s = ref 0 in
  Array.iteri (fun i v -> s := Common.mask32 (!s + (v * (i + 3)))) !cur;
  !s

let make () =
  let source =
    match Minic.Compile.to_assembly source_c with
    | Ok asm -> asm
    | Error e ->
      failwith (Format.asprintf "life failed to compile: %a" Minic.Compile.pp_error e)
  in
  {
    Common.name = "life";
    description =
      Printf.sprintf "Game of Life, 10x10, %d generations (MiniC)" generations;
    source;
    result_addr = Common.result_addr;
    expected = reference ();
  }

let workload = make ()
