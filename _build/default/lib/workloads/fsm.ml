let len = 120
let data_addr = 0x1000
let cnt_addr = 0x1800

(* Character classes: 0 digit, 1 lower letter, 2 space, 3 operator,
   4 other (error). *)
let classify c =
  if c >= Char.code '0' && c < Char.code '0' + 10 then 0
  else if c >= Char.code 'a' && c < Char.code 'a' + 26 then 1
  else if c = Char.code ' ' then 2
  else if c = Char.code '+' || c = Char.code '-' || c = Char.code '*' then 3
  else 4

let reference bytes =
  let cnt = Array.make 5 0 in
  List.iter (fun c -> cnt.(classify c) <- cnt.(classify c) + 1) bytes;
  let sum = ref 0 in
  Array.iteri (fun i c -> sum := Common.mask32 (!sum + ((i + 1) * c))) cnt;
  !sum

let make () =
  let state = ref 555 in
  let char_of r =
    (* ~2% error characters keep the error block genuinely cold. *)
    match r mod 50 with
    | 0 -> Char.code '!'
    | x when x < 20 -> Char.code '0' + (r / 7 mod 10)
    | x when x < 38 -> Char.code 'a' + (r / 11 mod 26)
    | x when x < 45 -> Char.code ' '
    | x when x < 48 -> Char.code '+'
    | 48 -> Char.code '-'
    | _ -> Char.code '*'
  in
  let bytes = List.init len (fun _ -> char_of (Common.lcg state)) in
  let expected = reference bytes in
  let source =
    Printf.sprintf
      {|
; character-class tokenizer with a cold error path
        li   r1, 0            ; i
char_loop:
        li   r2, %d           ; DATA
        add  r2, r2, r1
        lb   r3, 0(r2)        ; c
        li   r4, 48
        blt  r3, r4, not_digit
        li   r4, 58
        blt  r3, r4, is_digit
not_digit:
        li   r4, 97
        blt  r3, r4, not_lower
        li   r4, 123
        blt  r3, r4, is_letter
not_lower:
        li   r4, 32
        beq  r3, r4, is_space
        li   r4, 43
        beq  r3, r4, is_op
        li   r4, 45
        beq  r3, r4, is_op
        li   r4, 42
        beq  r3, r4, is_op
        ; cold error handling: deliberately expensive
        li   r5, 0
        li   r6, 20
err_spin:
        addi r5, r5, 1
        blt  r5, r6, err_spin
        li   r4, 16
        j    bump
is_digit:
        li   r4, 0
        j    bump
is_letter:
        li   r4, 4
        j    bump
is_space:
        li   r4, 8
        j    bump
is_op:
        li   r4, 12
bump:
        li   r5, %d           ; CNT
        add  r5, r5, r4
        lw   r6, 0(r5)
        addi r6, r6, 1
        sw   r6, 0(r5)
        addi r1, r1, 1
        li   r4, %d           ; LEN
        blt  r1, r4, char_loop
        li   r1, 0
        li   r10, 0
ck:
        slli r2, r1, 2
        li   r3, %d           ; CNT
        add  r3, r3, r2
        lw   r4, 0(r3)
        addi r5, r1, 1
        mul  r4, r4, r5
        add  r10, r10, r4
        addi r1, r1, 1
        li   r5, 5
        blt  r1, r5, ck
        li   r3, %d           ; RES
        sw   r10, 0(r3)
        halt
%s|}
      data_addr cnt_addr len cnt_addr Common.result_addr
      (Common.data_section ~addr:data_addr (Common.bytes_to_words bytes))
  in
  {
    Common.name = "fsm";
    description =
      "character tokenizer, 120 bytes, branch chain + cold error path";
    source;
    result_addr = Common.result_addr;
    expected;
  }

let workload = make ()
