let n = 40
let arr_addr = 0x1000
let stack_addr = 0x1800

let make () =
  let state = ref 90210 in
  let data = Array.init n (fun _ -> Common.lcg state mod 500) in
  let expected =
    let a = Array.copy data in
    Array.sort compare a;
    let sum = ref 0 in
    Array.iteri (fun i v -> sum := Common.mask32 (!sum + ((i + 1) * v))) a;
    !sum
  in
  let source =
    Printf.sprintf
      {|
; iterative quicksort with an explicit lo/hi stack
        li   r11, %d          ; ARR
        li   r12, %d          ; STACK
        sw   r0, 0(r12)       ; push lo=0
        li   r7, %d           ; N-1
        sw   r7, 4(r12)       ; push hi
        li   r1, 2            ; stack size (words)
qs_loop:
        beq  r1, r0, qs_done
        subi r1, r1, 1
        slli r7, r1, 2
        add  r7, r12, r7
        lw   r3, 0(r7)        ; hi
        subi r1, r1, 1
        slli r7, r1, 2
        add  r7, r12, r7
        lw   r2, 0(r7)        ; lo
        bge  r2, r3, qs_loop
        slli r7, r3, 2
        add  r7, r11, r7
        lw   r6, 0(r7)        ; pivot = a[hi]
        subi r4, r2, 1        ; i = lo - 1
        mov  r5, r2           ; j = lo
part_loop:
        bge  r5, r3, part_done
        slli r7, r5, 2
        add  r7, r11, r7
        lw   r8, 0(r7)        ; a[j]
        bgt  r8, r6, part_next
        addi r4, r4, 1
        slli r9, r4, 2
        add  r9, r11, r9
        lw   fp, 0(r9)        ; a[i]
        sw   r8, 0(r9)
        sw   fp, 0(r7)
part_next:
        addi r5, r5, 1
        j    part_loop
part_done:
        addi r4, r4, 1        ; p = i + 1
        slli r9, r4, 2
        add  r9, r11, r9
        lw   fp, 0(r9)
        slli r7, r3, 2
        add  r7, r11, r7
        lw   r8, 0(r7)
        sw   r8, 0(r9)
        sw   fp, 0(r7)
        ; push (lo, p-1) and (p+1, hi)
        slli r7, r1, 2
        add  r7, r12, r7
        sw   r2, 0(r7)
        subi r8, r4, 1
        sw   r8, 4(r7)
        addi r1, r1, 2
        slli r7, r1, 2
        add  r7, r12, r7
        addi r8, r4, 1
        sw   r8, 0(r7)
        sw   r3, 4(r7)
        addi r1, r1, 2
        j    qs_loop
qs_done:
        li   r2, 0
        li   r10, 0
qck:
        slli r7, r2, 2
        add  r7, r11, r7
        lw   r8, 0(r7)
        addi r9, r2, 1
        mul  r8, r8, r9
        add  r10, r10, r8
        addi r2, r2, 1
        li   r9, %d           ; N
        blt  r2, r9, qck
        li   r7, %d           ; RES
        sw   r10, 0(r7)
        halt
%s|}
      arr_addr stack_addr (n - 1) n Common.result_addr
      (Common.data_section ~addr:arr_addr (Array.to_list data))
  in
  {
    Common.name = "qsort";
    description = "iterative quicksort of 40 words (worklist control flow)";
    source;
    result_addr = Common.result_addr;
    expected;
  }

let workload = make ()
