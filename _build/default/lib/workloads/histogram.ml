let len = 256
let data_addr = 0x1000
let bins_addr = 0x1600

let reference bytes =
  let bins = Array.make 16 0 in
  List.iter (fun b -> bins.(b lsr 4) <- bins.(b lsr 4) + 1) bytes;
  let max_count = ref (-1) and argmax = ref 0 and weighted = ref 0 in
  Array.iteri
    (fun i c ->
      weighted := !weighted + (c * (i + 3));
      if c > !max_count then begin
        max_count := c;
        argmax := i
      end)
    bins;
  Common.mask32 ((!weighted * 31) + (!max_count * 17) + !argmax)

let make () =
  let state = ref 60601 in
  let bytes = List.init len (fun _ -> Common.lcg state land 0xFF) in
  let expected = reference bytes in
  let source =
    Printf.sprintf
      {|
; 16-bin byte histogram + argmax scan
        li   r1, 0
hloop:
        li   r2, %d           ; DATA
        add  r2, r2, r1
        lb   r3, 0(r2)
        srli r3, r3, 4
        slli r3, r3, 2
        li   r4, %d           ; BINS
        add  r4, r4, r3
        lw   r5, 0(r4)
        addi r5, r5, 1
        sw   r5, 0(r4)
        addi r1, r1, 1
        li   r6, %d           ; LEN
        blt  r1, r6, hloop
        li   r1, 0
        li   r7, -1           ; max
        li   r8, 0            ; argmax
        li   r10, 0           ; weighted sum
sloop:
        slli r3, r1, 2
        li   r4, %d           ; BINS
        add  r4, r4, r3
        lw   r5, 0(r4)
        addi r6, r1, 3
        mul  r6, r5, r6
        add  r10, r10, r6
        bge  r7, r5, snext
        mov  r7, r5
        mov  r8, r1
snext:
        addi r1, r1, 1
        li   r6, 16
        blt  r1, r6, sloop
        li   r6, 31
        mul  r10, r10, r6
        li   r6, 17
        mul  r6, r7, r6
        add  r10, r10, r6
        add  r10, r10, r8
        li   r3, %d           ; RES
        sw   r10, 0(r3)
        halt
%s|}
      data_addr bins_addr len bins_addr Common.result_addr
      (Common.data_section ~addr:data_addr (Common.bytes_to_words bytes))
  in
  {
    Common.name = "histogram";
    description = "16-bin byte histogram over 256 bytes + argmax scan";
    source;
    result_addr = Common.result_addr;
    expected;
  }

let workload = make ()
