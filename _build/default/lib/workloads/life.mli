(** Conway's Game of Life, 10x10 bounded grid, 20 generations of a
    glider — compiled from MiniC. The largest image in the suite
    (neighbor counting through a helper function called eight times
    per cell), which is exactly the regime where block-level
    compression turns memory-positive. *)

val workload : Common.t
