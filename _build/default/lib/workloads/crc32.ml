let len = 96
let data_addr = 0x1000
let poly = 0xEDB88320

let reference bytes =
  let crc = ref 0xFFFFFFFF in
  List.iter
    (fun b ->
      crc := !crc lxor (b land 0xFF);
      for _ = 1 to 8 do
        let lsb = !crc land 1 in
        crc := !crc lsr 1;
        if lsb = 1 then crc := !crc lxor poly
      done)
    bytes;
  Common.mask32 (!crc lxor 0xFFFFFFFF)

let make () =
  let state = ref 99 in
  let bytes = List.init len (fun _ -> Common.lcg state land 0xFF) in
  let expected = reference bytes in
  let source =
    Printf.sprintf
      {|
; CRC-32, bit by bit
        li   r1, 0xFFFFFFFF   ; crc
        li   r2, 0            ; byte index
bytes:
        li   r3, %d           ; DATA
        add  r3, r3, r2
        lb   r3, 0(r3)
        xor  r1, r1, r3
        li   r4, 8            ; bit counter
bits:
        andi r5, r1, 1
        srli r1, r1, 1
        beq  r5, r0, noxor
        li   r6, %d           ; POLY
        xor  r1, r1, r6
noxor:
        addi r4, r4, -1
        bne  r4, r0, bits
        addi r2, r2, 1
        li   r7, %d           ; LEN
        blt  r2, r7, bytes
        li   r6, 0xFFFFFFFF
        xor  r1, r1, r6
        li   r3, %d           ; RES
        sw   r1, 0(r3)
        halt
%s|}
      data_addr poly len Common.result_addr
      (Common.data_section ~addr:data_addr (Common.bytes_to_words bytes))
  in
  {
    Common.name = "crc32";
    description = "bitwise CRC-32 over 96 bytes (data-dependent branches)";
    source;
    result_addr = Common.result_addr;
    expected;
  }

let workload = make ()
