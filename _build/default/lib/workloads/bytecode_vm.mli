(** A stack-based bytecode interpreter written in MiniC, running a
    small bytecode program (sum of squares via a loop). The dispatch
    chain — one compare-and-branch per opcode — is the classic
    interpreter CFG: a long cold chain of handlers of which only a few
    are hot, the shape that favors basic-block-granularity compression
    most strongly. *)

val workload : Common.t
