(** Simplified IMA-ADPCM encoder over 64 samples: sign/magnitude
    quantization with index and output clamping — a dense thicket of
    short data-dependent branches, the canonical MediaBench-style
    embedded media kernel. *)

val workload : Common.t
