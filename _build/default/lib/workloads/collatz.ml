let limit = 60

let source_c =
  Printf.sprintf
    {|
int main() {
  int total = 0;
  for (int i = 1; i <= %d; i = i + 1) {
    int x = i;
    while (x != 1) {
      if (x %% 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
      total = total + 1;
    }
  }
  return total;
}
|}
    limit

let reference () =
  let total = ref 0 in
  for i = 1 to limit do
    let x = ref i in
    while !x <> 1 do
      if !x mod 2 = 0 then x := !x / 2 else x := (3 * !x) + 1;
      incr total
    done
  done;
  !total

let make () =
  let source =
    match Minic.Compile.to_assembly source_c with
    | Ok asm -> asm
    | Error e ->
      failwith (Format.asprintf "collatz failed to compile: %a" Minic.Compile.pp_error e)
  in
  {
    Common.name = "collatz";
    description =
      Printf.sprintf "Collatz steps for 1..%d, compiled from MiniC" limit;
    source;
    result_addr = Common.result_addr;
    expected = reference ();
  }

let workload = make ()
