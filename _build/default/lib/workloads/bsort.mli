(** Bubble sort of 48 words: quadratic loop nest with a data-dependent
    swap branch taken roughly half the time early and almost never
    late — the access pattern drifts as the run progresses. *)

val workload : Common.t
