(** Bitwise CRC-32 (polynomial 0xEDB88320) over a 96-byte buffer: a
    tight loop with one data-dependent branch per bit — the classic
    unpredictable-branch kernel. *)

val workload : Common.t
