(** FIR filter kernel: 40 samples convolved with 8 taps — the tight
    regular loop nest typical of DSP inner loops (high temporal reuse,
    small hot region). *)

val workload : Common.t
