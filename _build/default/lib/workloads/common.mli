(** Shared infrastructure for the benchmark kernels.

    Every workload is a self-contained ERIS-32 assembly program whose
    inputs are generated deterministically in OCaml, embedded in the
    source as [.data] preloads, and whose result (a 32-bit checksum at
    {!result_addr}) is independently computed by an OCaml reference
    implementation — so the suite validates the whole stack:
    assembler, machine, CFG and trace extraction. *)

type t = {
  name : string;
  description : string;
  source : string;  (** ERIS assembly *)
  result_addr : int;  (** data address of the 32-bit checksum *)
  expected : int;  (** reference checksum, in [0, 2{^32}) *)
}

val result_addr : int
(** The conventional checksum address used by all kernels (0x0FF0). *)

val lcg : int ref -> int
(** Deterministic 31-bit generator shared by data emission and the
    reference implementations. *)

val data_section : addr:int -> int list -> string
(** [.data]/[.dw] lines preloading the given 32-bit words at [addr]. *)

val bytes_to_words : int list -> int list
(** Packs bytes into little-endian words (zero-padded), matching what
    [lb] reads from [.dw]-preloaded memory. *)

val mask32 : int -> int
val to_signed32 : int -> int

val run_program : t -> Eris.Machine.t
(** Assembles and runs to halt.
    @raise Eris.Asm.Error or {!Eris.Machine.Fault} on any problem. *)

val check : t -> (unit, string) result
(** Runs the kernel and compares the checksum with [expected]. *)

val scenario : ?codec:Compress.Codec.t -> t -> Core.Scenario.t
(** Trace-extracting scenario for the policy engine. *)
