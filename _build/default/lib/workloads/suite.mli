(** The benchmark suite: every kernel plus lookup helpers. *)

val all : Common.t list
(** Hand-written ERIS assembly: fir, crc32, matmul, bsort, dijkstra,
    fsm, adpcm, dct, qsort, strsearch, histogram, rotmix.
    Compiled from MiniC: nqueens, collatz, life, vm. *)

val names : string list

val find : string -> Common.t option
val find_exn : string -> Common.t

val check_all : unit -> (string * (unit, string) result) list
(** Runs every kernel against its OCaml reference. *)

val scenarios : ?codec:Compress.Codec.t -> unit -> Core.Scenario.t list
