(* Opcodes: 0 HALT, 1 PUSH imm, 2 ADD, 3 SUB, 4 MUL, 5 DUP, 6 SWAP,
   7 LOAD slot, 8 STORE slot, 9 JMP target, 10 JNZ target, 11 LT,
   12 DROP. The bytecode below computes sum of n*n for n in 1..12.

   Layout per instruction: one opcode word, one operand word (unused
   operands are 0), so targets are instruction indexes. *)

let bytecode =
  [
    (* 0: acc = 0 *) (1, 0); (8, 0);
    (* 2: n = 1 *) (1, 1); (8, 1);
    (* loop head (index 4): acc += n*n *)
    (7, 1); (5, 0); (4, 0); (7, 0); (2, 0); (8, 0);
    (* 10: n += 1 *)
    (7, 1); (1, 1); (2, 0); (8, 1);
    (* 14: if n < 13 jump to 4 *)
    (7, 1); (1, 13); (11, 0); (10, 4);
    (* 18: push acc, halt *)
    (7, 0); (0, 0);
  ]

let reference () =
  let acc = ref 0 in
  for n = 1 to 12 do
    acc := !acc + (n * n)
  done;
  !acc

let source_c =
  let words =
    List.concat_map (fun (op, arg) -> [ op; arg ]) bytecode
  in
  let n = List.length words in
  Printf.sprintf
    {|
int code[%d] = {%s};
int stack[64];
int slots[8];

int main() {
  int pc = 0;
  int sp = 0;
  while (1) {
    int op = code[pc * 2];
    int arg = code[pc * 2 + 1];
    pc = pc + 1;
    if (op == 0) { return stack[sp - 1]; }
    else if (op == 1) { stack[sp] = arg; sp = sp + 1; }
    else if (op == 2) { stack[sp - 2] = stack[sp - 2] + stack[sp - 1]; sp = sp - 1; }
    else if (op == 3) { stack[sp - 2] = stack[sp - 2] - stack[sp - 1]; sp = sp - 1; }
    else if (op == 4) { stack[sp - 2] = stack[sp - 2] * stack[sp - 1]; sp = sp - 1; }
    else if (op == 5) { stack[sp] = stack[sp - 1]; sp = sp + 1; }
    else if (op == 6) {
      int t = stack[sp - 1];
      stack[sp - 1] = stack[sp - 2];
      stack[sp - 2] = t;
    }
    else if (op == 7) { stack[sp] = slots[arg]; sp = sp + 1; }
    else if (op == 8) { sp = sp - 1; slots[arg] = stack[sp]; }
    else if (op == 9) { pc = arg; }
    else if (op == 10) { sp = sp - 1; if (stack[sp] != 0) { pc = arg; } }
    else if (op == 11) {
      if (stack[sp - 2] < stack[sp - 1]) { stack[sp - 2] = 1; } else { stack[sp - 2] = 0; }
      sp = sp - 1;
    }
    else if (op == 12) { sp = sp - 1; }
    else { return 0 - 1; }
  }
  return 0;
}
|}
    (n / 2 * 2)
    (String.concat ", " (List.map string_of_int words))

let make () =
  let source =
    match Minic.Compile.to_assembly source_c with
    | Ok asm -> asm
    | Error e ->
      failwith
        (Format.asprintf "bytecode_vm failed to compile: %a"
           Minic.Compile.pp_error e)
  in
  {
    Common.name = "vm";
    description = "stack bytecode interpreter (MiniC), sum of squares 1..12";
    source;
    result_addr = Common.result_addr;
    expected = reference ();
  }

let workload = make ()
