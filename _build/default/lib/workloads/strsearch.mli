(** Naive substring search: an 8-byte pattern over 200 bytes of text
    with planted occurrences — the early-exit inner loop gives a
    bimodal access pattern (most inner loops end after one compare). *)

val workload : Common.t
