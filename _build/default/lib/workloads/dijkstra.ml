let v = 10
let inf = 9999
let adj_addr = 0x1000
let dist_addr = 0x1600
let vis_addr = 0x1700

let reference adj =
  let dist = Array.make v inf in
  let vis = Array.make v false in
  dist.(0) <- 0;
  (try
     for _ = 1 to v do
       let u = ref (-1) and best = ref (inf + 1) in
       for i = 0 to v - 1 do
         if (not vis.(i)) && dist.(i) < !best then begin
           best := dist.(i);
           u := i
         end
       done;
       if !u = -1 then raise Exit;
       vis.(!u) <- true;
       let du = dist.(!u) in
       for i = 0 to v - 1 do
         let w = adj.((!u * v) + i) in
         if w <> 0 && (not vis.(i)) && du + w < dist.(i) then
           dist.(i) <- du + w
       done
     done
   with Exit -> ());
  Array.fold_left (fun a d -> Common.mask32 (a + d)) 0 dist

let make () =
  let state = ref 77 in
  let adj =
    Array.init (v * v) (fun i ->
        let r = Common.lcg state in
        let src = i / v and dst = i mod v in
        if src = dst then 0
        else if r mod 10 < 4 then 0 (* no edge *)
        else 1 + (r mod 9))
  in
  let expected = reference adj in
  let source =
    Printf.sprintf
      {|
; Dijkstra O(V^2), source node 0, checksum = sum of distances
        li   r1, 0
init:
        slli r2, r1, 2
        li   r3, %d           ; DIST
        add  r3, r3, r2
        li   r4, %d           ; INF
        sw   r4, 0(r3)
        li   r3, %d           ; VIS
        add  r3, r3, r2
        sw   r0, 0(r3)
        addi r1, r1, 1
        li   r5, %d           ; V
        blt  r1, r5, init
        li   r3, %d           ; DIST
        sw   r0, 0(r3)        ; dist[0] = 0
        li   r9, 0            ; iteration
main:
        li   r1, 0
        li   r6, -1           ; u
        li   r7, %d           ; best = INF+1
scan:
        slli r2, r1, 2
        li   r3, %d           ; VIS
        add  r3, r3, r2
        lw   r4, 0(r3)
        bne  r4, r0, scan_next
        li   r3, %d           ; DIST
        add  r3, r3, r2
        lw   r4, 0(r3)
        bge  r4, r7, scan_next
        mov  r7, r4
        mov  r6, r1
scan_next:
        addi r1, r1, 1
        li   r5, %d           ; V
        blt  r1, r5, scan
        li   r5, -1
        beq  r6, r5, done
        slli r2, r6, 2
        li   r3, %d           ; VIS
        add  r3, r3, r2
        li   r4, 1
        sw   r4, 0(r3)
        li   r3, %d           ; DIST
        add  r3, r3, r2
        lw   r8, 0(r3)        ; du
        li   r1, 0
relax:
        li   r4, %d           ; V
        mul  r5, r6, r4
        add  r5, r5, r1
        slli r5, r5, 2
        li   r3, %d           ; ADJ
        add  r3, r3, r5
        lw   r4, 0(r3)        ; w
        beq  r4, r0, relax_next
        slli r2, r1, 2
        li   r3, %d           ; VIS
        add  r3, r3, r2
        lw   r5, 0(r3)
        bne  r5, r0, relax_next
        add  r5, r8, r4       ; nd = du + w
        li   r3, %d           ; DIST
        add  r3, r3, r2
        lw   r4, 0(r3)
        bge  r5, r4, relax_next
        sw   r5, 0(r3)
relax_next:
        addi r1, r1, 1
        li   r5, %d           ; V
        blt  r1, r5, relax
        addi r9, r9, 1
        li   r5, %d           ; V
        blt  r9, r5, main
done:
        li   r1, 0
        li   r10, 0
sum:
        slli r2, r1, 2
        li   r3, %d           ; DIST
        add  r3, r3, r2
        lw   r4, 0(r3)
        add  r10, r10, r4
        addi r1, r1, 1
        li   r5, %d           ; V
        blt  r1, r5, sum
        li   r3, %d           ; RES
        sw   r10, 0(r3)
        halt
%s|}
      dist_addr inf vis_addr v dist_addr (inf + 1) vis_addr dist_addr v
      vis_addr dist_addr v adj_addr vis_addr dist_addr v v dist_addr v
      Common.result_addr
      (Common.data_section ~addr:adj_addr (Array.to_list adj))
  in
  {
    Common.name = "dijkstra";
    description = "Dijkstra SSSP over a 10-node adjacency matrix";
    source;
    result_addr = Common.result_addr;
    expected;
  }

let workload = make ()
