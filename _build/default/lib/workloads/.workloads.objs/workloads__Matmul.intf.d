lib/workloads/matmul.mli: Common
