lib/workloads/crc32.mli: Common
