lib/workloads/dct.mli: Common
