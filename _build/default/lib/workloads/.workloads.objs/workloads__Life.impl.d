lib/workloads/life.ml: Array Common Format List Minic Printf
