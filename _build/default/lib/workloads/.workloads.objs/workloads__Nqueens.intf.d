lib/workloads/nqueens.mli: Common
