lib/workloads/histogram.mli: Common
