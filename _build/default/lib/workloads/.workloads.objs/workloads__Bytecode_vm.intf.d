lib/workloads/bytecode_vm.mli: Common
