lib/workloads/rotmix.mli: Common
