lib/workloads/crc32.ml: Common List Printf
