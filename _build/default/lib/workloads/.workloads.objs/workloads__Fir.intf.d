lib/workloads/fir.mli: Common
