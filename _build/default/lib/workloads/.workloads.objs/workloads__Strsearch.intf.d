lib/workloads/strsearch.mli: Common
