lib/workloads/suite.mli: Common Compress Core
