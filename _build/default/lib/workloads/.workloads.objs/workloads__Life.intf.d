lib/workloads/life.mli: Common
