lib/workloads/fsm.ml: Array Char Common List Printf
