lib/workloads/matmul.ml: Array Common Printf
