lib/workloads/common.ml: Buffer Core Eris Format List Printf
