lib/workloads/bytecode_vm.ml: Common Format List Minic Printf String
