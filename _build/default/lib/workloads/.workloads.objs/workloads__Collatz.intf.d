lib/workloads/collatz.mli: Common
