lib/workloads/adpcm.mli: Common
