lib/workloads/dijkstra.ml: Array Common Printf
