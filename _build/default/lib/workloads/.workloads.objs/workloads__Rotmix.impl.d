lib/workloads/rotmix.ml: Array Common Printf
