lib/workloads/collatz.ml: Common Format Minic Printf
