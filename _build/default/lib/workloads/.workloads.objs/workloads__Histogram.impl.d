lib/workloads/histogram.ml: Array Common List Printf
