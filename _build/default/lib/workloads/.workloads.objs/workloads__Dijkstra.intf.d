lib/workloads/dijkstra.mli: Common
