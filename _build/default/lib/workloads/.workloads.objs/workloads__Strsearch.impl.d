lib/workloads/strsearch.ml: Array Common List Printf
