lib/workloads/nqueens.ml: Array Common Format Minic Printf
