lib/workloads/suite.ml: Adpcm Bsort Bytecode_vm Collatz Common Crc32 Dct Dijkstra Fir Fsm Histogram Life List Matmul Nqueens Printf Qsort Rotmix Strsearch
