lib/workloads/bsort.ml: Array Common Printf
