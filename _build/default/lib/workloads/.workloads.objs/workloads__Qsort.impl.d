lib/workloads/qsort.ml: Array Common Printf
