lib/workloads/fir.ml: Array Common List Printf
