lib/workloads/common.mli: Compress Core Eris
