lib/workloads/fsm.mli: Common
