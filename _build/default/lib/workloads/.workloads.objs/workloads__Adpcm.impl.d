lib/workloads/adpcm.ml: Array Common Printf
