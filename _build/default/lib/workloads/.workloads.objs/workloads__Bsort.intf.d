lib/workloads/bsort.mli: Common
