lib/workloads/dct.ml: Array Common Printf
