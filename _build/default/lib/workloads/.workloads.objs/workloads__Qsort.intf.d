lib/workloads/qsort.mli: Common
