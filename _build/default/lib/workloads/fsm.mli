(** Character-class tokenizer over a 120-byte input: a chain of
    compare-and-branch blocks per character with a deliberately
    expensive, rarely-taken error path — the hot-chain-inside-cold-code
    shape that motivates basic-block (rather than procedure)
    granularity in the paper's §6 comparison. *)

val workload : Common.t
