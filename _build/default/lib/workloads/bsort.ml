let n = 48
let arr_addr = 0x1000

let make () =
  let state = ref 2025 in
  let data = Array.init n (fun _ -> Common.lcg state mod 1000) in
  let expected =
    let a = Array.copy data in
    Array.sort compare a;
    (* Position-weighted checksum detects wrong orderings, not just
       wrong multisets. *)
    let sum = ref 0 in
    Array.iteri (fun i v -> sum := Common.mask32 (!sum + ((i + 1) * v))) a;
    !sum
  in
  let source =
    Printf.sprintf
      {|
; bubble sort, then checksum = sum (i+1)*a[i]
        li   r1, 0            ; pass
pass_loop:
        li   r2, 0            ; j
inner:
        slli r3, r2, 2
        li   r4, %d           ; ARR
        add  r4, r4, r3
        lw   r5, 0(r4)        ; a[j]
        lw   r6, 4(r4)        ; a[j+1]
        bge  r6, r5, noswap
        sw   r6, 0(r4)
        sw   r5, 4(r4)
noswap:
        addi r2, r2, 1
        li   r7, %d           ; N-1-pass... conservative: N-1
        blt  r2, r7, inner
        addi r1, r1, 1
        li   r7, %d           ; N-1 passes
        blt  r1, r7, pass_loop
; checksum
        li   r2, 0
        li   r10, 0
cksum:
        slli r3, r2, 2
        li   r4, %d
        add  r4, r4, r3
        lw   r5, 0(r4)
        addi r6, r2, 1
        mul  r5, r5, r6
        add  r10, r10, r5
        addi r2, r2, 1
        li   r7, %d
        blt  r2, r7, cksum
        li   r4, %d
        sw   r10, 0(r4)
        halt
%s|}
      arr_addr (n - 1) (n - 1) arr_addr n Common.result_addr
      (Common.data_section ~addr:arr_addr (Array.to_list data))
  in
  {
    Common.name = "bsort";
    description = "bubble sort of 48 words (data-dependent swap branch)";
    source;
    result_addr = Common.result_addr;
    expected;
  }

let workload = make ()
