let n = 6

let source_c =
  Printf.sprintf
    {|
int cols[8];
int diag1[16];
int diag2[16];
int n = %d;

int solve(int row) {
  if (row == n) { return 1; }
  int count = 0;
  for (int c = 0; c < n; c = c + 1) {
    if (!cols[c] && !diag1[row + c] && !diag2[row - c + 8]) {
      cols[c] = 1; diag1[row + c] = 1; diag2[row - c + 8] = 1;
      count = count + solve(row + 1);
      cols[c] = 0; diag1[row + c] = 0; diag2[row - c + 8] = 0;
    }
  }
  return count;
}

int main() { return solve(0); }
|}
    n

(* Reference: the same backtracking in OCaml. *)
let reference () =
  let cols = Array.make 8 false in
  let d1 = Array.make 16 false and d2 = Array.make 16 false in
  let rec solve row =
    if row = n then 1
    else begin
      let count = ref 0 in
      for c = 0 to n - 1 do
        if (not cols.(c)) && (not d1.(row + c)) && not d2.(row - c + 8) then begin
          cols.(c) <- true;
          d1.(row + c) <- true;
          d2.(row - c + 8) <- true;
          count := !count + solve (row + 1);
          cols.(c) <- false;
          d1.(row + c) <- false;
          d2.(row - c + 8) <- false
        end
      done;
      !count
    end
  in
  solve 0

let make () =
  let source =
    match Minic.Compile.to_assembly source_c with
    | Ok asm -> asm
    | Error e ->
      failwith (Format.asprintf "nqueens failed to compile: %a" Minic.Compile.pp_error e)
  in
  {
    Common.name = "nqueens";
    description =
      Printf.sprintf "%d-queens backtracking, compiled from MiniC" n;
    source;
    result_addr = Common.result_addr;
    expected = reference ();
  }

let workload = make ()
