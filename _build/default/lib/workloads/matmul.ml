let n = 8
let a_addr = 0x1000
let b_addr = 0x1100
let c_addr = 0x1200

let make () =
  let state = ref 4321 in
  let a = Array.init (n * n) (fun _ -> Common.lcg state mod 32) in
  let b = Array.init (n * n) (fun _ -> (Common.lcg state mod 32) - 16) in
  let expected =
    let sum = ref 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let acc = ref 0 in
        for k = 0 to n - 1 do
          acc := Common.mask32 (!acc + (a.((i * n) + k) * b.((k * n) + j)))
        done;
        sum := Common.mask32 (!sum + !acc)
      done
    done;
    !sum
  in
  let source =
    Printf.sprintf
      {|
; C = A * B (8x8), checksum = sum C[i][j]
        li   r1, 0            ; i
        li   r10, 0           ; checksum
loop_i:
        li   r2, 0            ; j
loop_j:
        li   r3, 0            ; k
        li   r4, 0            ; acc
loop_k:
        ; A[i*8+k]
        slli r5, r1, 3
        add  r5, r5, r3
        slli r5, r5, 2
        li   r6, %d
        add  r6, r6, r5
        lw   r6, 0(r6)
        ; B[k*8+j]
        slli r7, r3, 3
        add  r7, r7, r2
        slli r7, r7, 2
        li   r8, %d
        add  r8, r8, r7
        lw   r8, 0(r8)
        mul  r6, r6, r8
        add  r4, r4, r6
        addi r3, r3, 1
        li   r9, %d
        blt  r3, r9, loop_k
        ; store C[i*8+j]
        slli r5, r1, 3
        add  r5, r5, r2
        slli r5, r5, 2
        li   r6, %d
        add  r6, r6, r5
        sw   r4, 0(r6)
        add  r10, r10, r4
        addi r2, r2, 1
        li   r9, %d
        blt  r2, r9, loop_j
        addi r1, r1, 1
        li   r9, %d
        blt  r1, r9, loop_i
        li   r6, %d
        sw   r10, 0(r6)
        halt
%s%s|}
      a_addr b_addr n c_addr n n Common.result_addr
      (Common.data_section ~addr:a_addr (Array.to_list a))
      (Common.data_section ~addr:b_addr (Array.to_list b))
  in
  {
    Common.name = "matmul";
    description = "8x8 integer matrix multiply (triple loop nest)";
    source;
    result_addr = Common.result_addr;
    expected;
  }

let workload = make ()
