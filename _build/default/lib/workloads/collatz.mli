(** Total Collatz trajectory length for 1..60 — compiled from MiniC;
    the data-dependent parity branch plus the software divide give a
    long, irregular access pattern from a tiny source program. *)

val workload : Common.t
