(** Byte histogram into 16 bins plus an argmax scan: two simple loops
    with one biased branch (new-maximum) — the streaming-analytics
    kernel shape. *)

val workload : Common.t
