let n_samples = 40
let n_taps = 8
let x_addr = 0x1000
let h_addr = 0x1200
let y_addr = 0x1400

let make () =
  let state = ref 1234 in
  let samples = List.init n_samples (fun _ -> Common.lcg state mod 256) in
  let taps = List.init n_taps (fun _ -> (Common.lcg state mod 15) - 7) in
  let n_out = n_samples - n_taps + 1 in
  (* Reference: y[i] = sum_j x[i+j] * h[j]; checksum = sum y[i] mod 2^32. *)
  let expected =
    let x = Array.of_list samples and h = Array.of_list taps in
    let sum = ref 0 in
    for i = 0 to n_out - 1 do
      let acc = ref 0 in
      for j = 0 to n_taps - 1 do
        acc := Common.mask32 (!acc + (x.(i + j) * h.(j)))
      done;
      sum := Common.mask32 (!sum + !acc)
    done;
    !sum
  in
  let source =
    Printf.sprintf
      {|
; FIR filter: y[i] = sum_j x[i+j] * h[j]
        li   r1, 0            ; i
        li   r10, 0           ; checksum
outer:
        li   r3, 0            ; j
        li   r4, 0            ; acc
inner:
        add  r5, r1, r3
        slli r5, r5, 2
        li   r6, %d           ; X
        add  r6, r6, r5
        lw   r6, 0(r6)
        slli r7, r3, 2
        li   r8, %d           ; H
        add  r8, r8, r7
        lw   r8, 0(r8)
        mul  r6, r6, r8
        add  r4, r4, r6
        addi r3, r3, 1
        li   r9, %d           ; M
        blt  r3, r9, inner
        slli r5, r1, 2
        li   r6, %d           ; Y
        add  r6, r6, r5
        sw   r4, 0(r6)
        add  r10, r10, r4
        addi r1, r1, 1
        li   r9, %d           ; NOUT
        blt  r1, r9, outer
        li   r6, %d           ; RES
        sw   r10, 0(r6)
        halt
%s%s|}
      x_addr h_addr n_taps y_addr n_out Common.result_addr
      (Common.data_section ~addr:x_addr samples)
      (Common.data_section ~addr:h_addr taps)
  in
  {
    Common.name = "fir";
    description = "FIR filter, 40 samples x 8 taps (regular DSP loop nest)";
    source;
    result_addr = Common.result_addr;
    expected;
  }

let workload = make ()
