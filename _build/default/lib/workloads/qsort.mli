(** Iterative quicksort (Lomuto partition, explicit stack) over 40
    words: recursive-style control flow with data-dependent partition
    branches and a worklist loop — the most irregular access pattern
    in the suite. *)

val workload : Common.t
