(** ARX-style mixing rounds (add / rotate / xor over four state words,
    alternating by round parity): the straight-line-heavy crypto/hash
    kernel shape — long blocks, few branches, extreme temporal
    reuse. *)

val workload : Common.t
