(** Dijkstra single-source shortest paths, O(V²), V = 10: scan and
    relax loops full of data-dependent branches over an adjacency
    matrix — the irregular control flow of network/routing code. *)

val workload : Common.t
