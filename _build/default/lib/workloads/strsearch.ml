let text_len = 200
let pat_len = 8
let text_addr = 0x1000
let pat_addr = 0x1300

let reference text pattern =
  let matches = ref 0 and possum = ref 0 in
  for i = 0 to text_len - pat_len do
    let rec cmp j = j >= pat_len || (text.(i + j) = pattern.(j) && cmp (j + 1)) in
    if cmp 0 then begin
      incr matches;
      possum := !possum + i
    end
  done;
  Common.mask32 ((!possum lsl 8) + !matches)

let make () =
  let state = ref 1867 in
  let pattern = Array.init pat_len (fun _ -> 97 + (Common.lcg state mod 26)) in
  let text = Array.init text_len (fun _ -> 97 + (Common.lcg state mod 26)) in
  (* Plant a few occurrences so matches genuinely happen. *)
  List.iter
    (fun at -> Array.blit pattern 0 text at pat_len)
    [ 17; 90; 175 ];
  let expected = reference text pattern in
  let source =
    Printf.sprintf
      {|
; count occurrences of an 8-byte pattern (naive search)
        li   r1, 0            ; i
        li   r9, 0            ; sum of match positions
        li   r10, 0           ; match count
outer:
        li   r2, 0            ; j
inner:
        add  r3, r1, r2
        li   r4, %d           ; TEXT
        add  r3, r4, r3
        lb   r3, 0(r3)
        li   r4, %d           ; PAT
        add  r4, r4, r2
        lb   r4, 0(r4)
        bne  r3, r4, mismatch
        addi r2, r2, 1
        li   r5, %d           ; PN
        blt  r2, r5, inner
        addi r10, r10, 1
        add  r9, r9, r1
mismatch:
        addi r1, r1, 1
        li   r5, %d           ; TN - PN + 1
        blt  r1, r5, outer
        slli r9, r9, 8
        add  r10, r10, r9
        li   r3, %d           ; RES
        sw   r10, 0(r3)
        halt
%s%s|}
      text_addr pat_addr pat_len
      (text_len - pat_len + 1)
      Common.result_addr
      (Common.data_section ~addr:text_addr
         (Common.bytes_to_words (Array.to_list text)))
      (Common.data_section ~addr:pat_addr
         (Common.bytes_to_words (Array.to_list pattern)))
  in
  {
    Common.name = "strsearch";
    description = "naive substring search, 8-byte pattern in 200 bytes";
    source;
    result_addr = Common.result_addr;
    expected;
  }

let workload = make ()
