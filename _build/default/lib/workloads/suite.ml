let all =
  [
    Fir.workload;
    Crc32.workload;
    Matmul.workload;
    Bsort.workload;
    Dijkstra.workload;
    Fsm.workload;
    Adpcm.workload;
    Dct.workload;
    Qsort.workload;
    Strsearch.workload;
    Histogram.workload;
    Rotmix.workload;
    Nqueens.workload;
    Collatz.workload;
    Life.workload;
    Bytecode_vm.workload;
  ]

let names = List.map (fun w -> w.Common.name) all

let find name = List.find_opt (fun w -> w.Common.name = name) all

let find_exn name =
  match find name with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Workloads.Suite.find_exn: %S" name)

let check_all () =
  List.map (fun w -> (w.Common.name, Common.check w)) all

let scenarios ?codec () = List.map (fun w -> Common.scenario ?codec w) all
