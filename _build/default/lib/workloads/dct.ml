let n = 8
let x_addr = 0x1000
let c_addr = 0x1100
let ct_addr = 0x1200
let t_addr = 0x1300
let y_addr = 0x1400
let shift = 7

(* dst = (a * b) asr shift, all 8x8 row-major. *)
let matmul_shift a b =
  Array.init (n * n) (fun idx ->
      let i = idx / n and j = idx mod n in
      let acc = ref 0 in
      for k = 0 to n - 1 do
        acc := !acc + (a.((i * n) + k) * b.((k * n) + j))
      done;
      !acc asr shift)

let reference x c =
  let ct =
    Array.init (n * n) (fun idx -> c.(((idx mod n) * n) + (idx / n)))
  in
  let t = matmul_shift c x in
  let y = matmul_shift t ct in
  let sum = ref 0 in
  Array.iteri (fun i v -> sum := Common.mask32 (!sum + ((i + 1) * v))) y;
  !sum

let make () =
  let state = ref 808 in
  let x = Array.init (n * n) (fun _ -> Common.lcg state mod 256) in
  let c = Array.init (n * n) (fun _ -> (Common.lcg state mod 127) - 63) in
  let ct = Array.init (n * n) (fun idx -> c.(((idx mod n) * n) + (idx / n))) in
  let expected = reference x c in
  let source =
    Printf.sprintf
      {|
; Y = ((C*X)>>7 * CT)>>7 via a shared matrix-multiply subroutine
        li   r1, %d           ; dst = T
        li   r2, %d           ; a = C
        li   r3, %d           ; b = X
        li   r4, %d           ; shift
        call matmul_sub
        li   r1, %d           ; dst = Y
        li   r2, %d           ; a = T
        li   r3, %d           ; b = CT
        li   r4, %d           ; shift
        call matmul_sub
; checksum = sum (i+1) * Y[i]
        li   r5, 0
        li   r10, 0
ck:
        slli r6, r5, 2
        li   r7, %d           ; Y
        add  r7, r7, r6
        lw   r7, 0(r7)
        addi r8, r5, 1
        mul  r7, r7, r8
        add  r10, r10, r7
        addi r5, r5, 1
        li   r8, 64
        blt  r5, r8, ck
        li   r7, %d           ; RES
        sw   r10, 0(r7)
        halt

; matmul_sub: dst(r1) = (a(r2) * b(r3)) >> r4, 8x8
matmul_sub:
        li   r5, 0            ; i
ms_i:
        li   r6, 0            ; j
ms_j:
        li   r7, 0            ; k
        li   r9, 0            ; acc
ms_k:
        slli r8, r5, 3
        add  r8, r8, r7
        slli r8, r8, 2
        add  r8, r2, r8
        lw   r8, 0(r8)        ; a[i*8+k]
        slli fp, r7, 3
        add  fp, fp, r6
        slli fp, fp, 2
        add  fp, r3, fp
        lw   fp, 0(fp)        ; b[k*8+j]
        mul  r8, r8, fp
        add  r9, r9, r8
        addi r7, r7, 1
        li   r8, 8
        blt  r7, r8, ms_k
        sra  r9, r9, r4
        slli r8, r5, 3
        add  r8, r8, r6
        slli r8, r8, 2
        add  r8, r1, r8
        sw   r9, 0(r8)
        addi r6, r6, 1
        li   r8, 8
        blt  r6, r8, ms_j
        addi r5, r5, 1
        li   r8, 8
        blt  r5, r8, ms_i
        ret
%s%s%s|}
      t_addr c_addr x_addr shift y_addr t_addr ct_addr shift y_addr
      Common.result_addr
      (Common.data_section ~addr:x_addr (Array.to_list x))
      (Common.data_section ~addr:c_addr (Array.to_list c))
      (Common.data_section ~addr:ct_addr (Array.to_list ct))
  in
  {
    Common.name = "dct";
    description = "8x8 two-pass fixed-point transform via a subroutine";
    source;
    result_addr = Common.result_addr;
    expected;
  }

let workload = make ()
