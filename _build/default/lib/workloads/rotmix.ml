let rounds = 96
let data_words = 32
let data_addr = 0x1000

let rotl7 v = ((v lsl 7) lor (v lsr 25)) land 0xFFFFFFFF

let reference data =
  let a = ref 0x12345 and b = ref 0x6789A and c = ref 0xBCDEF and d = ref 0x13579 in
  for round = 0 to rounds - 1 do
    a := Common.mask32 (!a + data.(round land 31));
    b := !b lxor !a;
    b := rotl7 !b;
    c := Common.mask32 (!c + !b);
    d := !d lxor !c;
    if round land 1 = 1 then a := !a lxor !d else c := Common.mask32 (!c + 13)
  done;
  !a lxor !b lxor !c lxor !d

let make () =
  let state = ref 271828 in
  let data = Array.init data_words (fun _ -> Common.lcg state) in
  let expected = reference data in
  let source =
    Printf.sprintf
      {|
; ARX mixing rounds over four state words
        li   r1, 0            ; round
        li   r2, 0x12345      ; a
        li   r3, 0x6789A      ; b
        li   r4, 0xBCDEF      ; c
        li   r5, 0x13579      ; d
mix:
        andi r6, r1, 31
        slli r6, r6, 2
        li   r7, %d           ; DATA
        add  r6, r7, r6
        lw   r6, 0(r6)
        add  r2, r2, r6       ; a += data[round mod 32]
        xor  r3, r3, r2       ; b ^= a
        slli r7, r3, 7
        srli r8, r3, 25
        or   r3, r7, r8       ; b = rotl(b, 7)
        add  r4, r4, r3       ; c += b
        xor  r5, r5, r4       ; d ^= c
        andi r7, r1, 1
        beq  r7, r0, even_round
        xor  r2, r2, r5       ; odd: a ^= d
        j    mix_next
even_round:
        addi r4, r4, 13       ; even: c += 13
mix_next:
        addi r1, r1, 1
        li   r7, %d           ; ROUNDS
        blt  r1, r7, mix
        xor  r2, r2, r3
        xor  r2, r2, r4
        xor  r2, r2, r5
        li   r3, %d           ; RES
        sw   r2, 0(r3)
        halt
%s|}
      data_addr rounds Common.result_addr
      (Common.data_section ~addr:data_addr (Array.to_list data))
  in
  {
    Common.name = "rotmix";
    description = "ARX mixing rounds (hash/cipher kernel shape)";
    source;
    result_addr = Common.result_addr;
    expected;
  }

let workload = make ()
