type t = {
  name : string;
  description : string;
  source : string;
  result_addr : int;
  expected : int;
}

let result_addr = 0x0FF0

let lcg state =
  state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
  !state

let data_section ~addr words =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf ".data %d\n" addr);
  List.iter (fun w -> Buffer.add_string buf (Printf.sprintf ".dw %d\n" w)) words;
  Buffer.contents buf

let bytes_to_words bytes =
  let rec pack acc = function
    | [] -> List.rev acc
    | b ->
      let take n l =
        let rec go acc n = function
          | x :: tl when n > 0 -> go (x :: acc) (n - 1) tl
          | rest -> (List.rev acc, rest)
        in
        go [] n l
      in
      let chunk, rest = take 4 b in
      let padded = chunk @ List.init (4 - List.length chunk) (fun _ -> 0) in
      let word =
        match padded with
        | [ a; b; c; d ] ->
          (a land 0xFF) lor ((b land 0xFF) lsl 8) lor ((c land 0xFF) lsl 16)
          lor ((d land 0xFF) lsl 24)
        | _ -> assert false
      in
      pack (word :: acc) rest
  in
  pack [] bytes

let mask32 v = v land 0xFFFFFFFF
let to_signed32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let run_program t =
  let prog = Eris.Asm.assemble_exn t.source in
  let machine = Eris.Machine.create prog in
  let _ = Eris.Machine.run_to_halt ~fuel:20_000_000 machine in
  machine

let check t =
  match run_program t with
  | machine ->
    let got = Eris.Machine.read_word machine t.result_addr in
    if got = t.expected then Ok ()
    else
      Error
        (Printf.sprintf "%s: checksum mismatch: got 0x%08x, expected 0x%08x"
           t.name got t.expected)
  | exception Eris.Machine.Fault { pc; message } ->
    Error (Printf.sprintf "%s: fault at pc %d: %s" t.name pc message)
  | exception Eris.Asm.Error e ->
    Error (Format.asprintf "%s: assembly error: %a" t.name Eris.Asm.pp_error e)

let scenario ?codec t =
  Core.Scenario.of_source ~name:t.name ?codec ~fuel:20_000_000 t.source
