(** Two-pass 8x8 block transform (DCT-shaped): [Y = (C·X)·Cᵀ] with
    fixed-point right-shifts, implemented as a matrix-multiply
    {e subroutine} invoked twice — the only kernel that exercises
    call/return control flow ([jal]/[jalr] and the CFG's conservative
    return edges). *)

val workload : Common.t
