(** 8x8 integer matrix multiply: a triple loop nest — deep temporal
    reuse with a larger working set than {!Fir}. *)

val workload : Common.t
