let n = 64
let x_addr = 0x1000
let step_addr = 0x1300
let idx_addr = 0x1380

let step_table =
  [| 7; 8; 9; 10; 11; 12; 13; 14; 16; 17; 19; 21; 23; 25; 28; 31 |]

let index_table = [| -1; -1; -1; -1; 2; 4; 6; 8 |]

let reference samples =
  let predicted = ref 0 and index = ref 0 and checksum = ref 0 in
  Array.iter
    (fun s ->
      let step = step_table.(!index) in
      let diff = s - !predicted in
      let sign = if diff < 0 then 8 else 0 in
      let diff = abs diff in
      let delta = ref 0 in
      let diff = ref diff in
      if !diff >= step then begin
        delta := !delta lor 4;
        diff := !diff - step
      end;
      let step2 = step lsr 1 in
      if !diff >= step2 then begin
        delta := !delta lor 2;
        diff := !diff - step2
      end;
      let step4 = step lsr 2 in
      if !diff >= step4 then delta := !delta lor 1;
      let vpdiff = (((2 * !delta) + 1) * step) lsr 3 in
      if sign = 8 then predicted := !predicted - vpdiff
      else predicted := !predicted + vpdiff;
      if !predicted > 32767 then predicted := 32767;
      if !predicted < -32768 then predicted := -32768;
      index := !index + index_table.(!delta);
      if !index < 0 then index := 0;
      if !index > 15 then index := 15;
      let delta_full = !delta lor sign in
      checksum := Common.mask32 ((!checksum * 31) + delta_full))
    samples;
  !checksum

let make () =
  let state = ref 31337 in
  let samples = Array.init n (fun _ -> (Common.lcg state mod 4001) - 2000) in
  let expected = reference samples in
  let source =
    Printf.sprintf
      {|
; simplified IMA-ADPCM encoder
        li   r11, 0           ; predicted
        li   r12, 0           ; step index
        li   r10, 0           ; checksum
        li   r1, 0            ; i
sample_loop:
        slli r2, r1, 2
        li   r3, %d           ; X
        add  r3, r3, r2
        lw   r2, 0(r3)        ; s
        slli r3, r12, 2
        li   r4, %d           ; STEPTAB
        add  r3, r4, r3
        lw   r3, 0(r3)        ; step
        sub  r4, r2, r11      ; diff
        li   r5, 0            ; sign
        bge  r4, r0, positive
        li   r5, 8
        sub  r4, r0, r4
positive:
        li   r6, 0            ; delta
        blt  r4, r3, q2
        ori  r6, r6, 4
        sub  r4, r4, r3
q2:
        srli r7, r3, 1
        blt  r4, r7, q1
        ori  r6, r6, 2
        sub  r4, r4, r7
q1:
        srli r7, r3, 2
        blt  r4, r7, quant_done
        ori  r6, r6, 1
quant_done:
        slli r7, r6, 1
        addi r7, r7, 1
        mul  r7, r7, r3
        srli r7, r7, 3        ; vpdiff
        beq  r5, r0, add_pred
        sub  r11, r11, r7
        j    clamp
add_pred:
        add  r11, r11, r7
clamp:
        li   r8, 32767
        bge  r8, r11, clamp_low
        mov  r11, r8
clamp_low:
        li   r8, -32768
        bge  r11, r8, adjust_index
        mov  r11, r8
adjust_index:
        slli r7, r6, 2
        li   r8, %d           ; IDXTAB
        add  r7, r8, r7
        lw   r7, 0(r7)
        add  r12, r12, r7
        bge  r12, r0, idx_high
        li   r12, 0
idx_high:
        li   r8, 15
        bge  r8, r12, emit
        mov  r12, r8
emit:
        or   r9, r6, r5       ; delta | sign
        li   r7, 31
        mul  r10, r10, r7
        add  r10, r10, r9
        addi r1, r1, 1
        li   r7, %d           ; N
        blt  r1, r7, sample_loop
        li   r3, %d           ; RES
        sw   r10, 0(r3)
        halt
%s%s%s|}
      x_addr step_addr idx_addr n Common.result_addr
      (Common.data_section ~addr:x_addr (Array.to_list samples))
      (Common.data_section ~addr:step_addr (Array.to_list step_table))
      (Common.data_section ~addr:idx_addr (Array.to_list index_table))
  in
  {
    Common.name = "adpcm";
    description = "simplified IMA-ADPCM encoder, 64 samples";
    source;
    result_addr = Common.result_addr;
    expected;
  }

let workload = make ()
