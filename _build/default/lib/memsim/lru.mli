(** Least-recently-used victim selection for the budgeted variant
    (paper, §2): before a decompression that would exceed the memory
    budget, an LRU decompressed block is compressed back. *)

type t

val create : unit -> t

val touch : t -> int -> time:int -> unit
(** Marks a block as used at [time] (monotonically increasing times
    give exact LRU order; equal times break ties by block id). *)

val remove : t -> int -> unit
(** Forgets a block (no-op if absent). *)

val mem : t -> int -> bool
val cardinal : t -> int

val victim : t -> ?exclude:(int -> bool) -> unit -> int option
(** Least recently used tracked block not excluded. *)

val to_list : t -> (int * int) list
(** [(block, last_use)] pairs, LRU first. *)
