(* Block populations are small (hundreds), so a hash table plus a scan
   for the victim is simpler than an intrusive list and fast enough. *)

type t = { last_use : (int, int) Hashtbl.t }

let create () = { last_use = Hashtbl.create 64 }
let touch t b ~time = Hashtbl.replace t.last_use b time
let remove t b = Hashtbl.remove t.last_use b
let mem t b = Hashtbl.mem t.last_use b
let cardinal t = Hashtbl.length t.last_use

let victim t ?(exclude = fun _ -> false) () =
  Hashtbl.fold
    (fun b time acc ->
      if exclude b then acc
      else
        match acc with
        | None -> Some (b, time)
        | Some (b', time') ->
          if time < time' || (time = time' && b < b') then Some (b, time)
          else acc)
    t.last_use None
  |> Option.map fst

let to_list t =
  Hashtbl.fold (fun b time acc -> (b, time) :: acc) t.last_use []
  |> List.sort (fun (b1, t1) (b2, t2) ->
         if t1 <> t2 then compare t1 t2 else compare b1 b2)
