type status = In_compressed_area | Resident of int

type t = {
  csizes : int array;
  usizes : int array;
  coffsets : int array;
  heap : Heap.t;
  remember : Remember.t;
  status : status array;
}

let create ?decompressed_capacity ~compressed_sizes ~uncompressed_sizes () =
  let n = Array.length compressed_sizes in
  if n = 0 || Array.length uncompressed_sizes <> n then
    invalid_arg "Memsim.Layout.create: size arrays empty or mismatched";
  Array.iteri
    (fun i s ->
      if s <= 0 || uncompressed_sizes.(i) <= 0 then
        invalid_arg "Memsim.Layout.create: non-positive block size")
    compressed_sizes;
  let coffsets = Array.make n 0 in
  let off = ref 0 in
  Array.iteri
    (fun i s ->
      coffsets.(i) <- !off;
      off := !off + s)
    compressed_sizes;
  {
    csizes = Array.copy compressed_sizes;
    usizes = Array.copy uncompressed_sizes;
    coffsets;
    heap =
      Heap.create
        ~capacity:(Option.value ~default:max_int decompressed_capacity);
    remember = Remember.create ~blocks:n;
    status = Array.make n In_compressed_area;
  }

let num_blocks t = Array.length t.status
let status t b = t.status.(b)
let resident t b = match t.status.(b) with Resident _ -> true | In_compressed_area -> false

let compressed_area_bytes t = Array.fold_left ( + ) 0 t.csizes
let compressed_offset t b = t.coffsets.(b)
let decompressed_bytes t = Heap.used_bytes t.heap
let footprint t = compressed_area_bytes t + decompressed_bytes t

let decompress t b =
  match t.status.(b) with
  | Resident off -> Ok off
  | In_compressed_area -> (
    match Heap.alloc t.heap t.usizes.(b) with
    | Some off ->
      t.status.(b) <- Resident off;
      Ok off
    | None -> Error `No_space)

let discard t b =
  match t.status.(b) with
  | In_compressed_area ->
    invalid_arg (Printf.sprintf "Memsim.Layout.discard: block %d not resident" b)
  | Resident off ->
    Heap.free t.heap off;
    t.status.(b) <- In_compressed_area;
    Remember.flush t.remember ~target:b

let record_branch t ~target ~site = Remember.record t.remember ~target ~site
let remember_sites t b = Remember.sites t.remember ~target:b
let heap t = t.heap

let pp_snapshot ppf t =
  Format.fprintf ppf "compressed code area:@.";
  Array.iteri
    (fun b off ->
      Format.fprintf ppf "  [%4d..%4d) B%d (%dB)@." off (off + t.csizes.(b)) b
        t.csizes.(b))
    t.coffsets;
  Format.fprintf ppf "decompressed area (%d bytes live):@."
    (decompressed_bytes t);
  let any = ref false in
  Array.iteri
    (fun b st ->
      match st with
      | Resident off ->
        any := true;
        Format.fprintf ppf "  [%4d..%4d) B%d' (%dB)%s@." off
          (off + t.usizes.(b))
          b t.usizes.(b)
          (match remember_sites t b with
          | [] -> ""
          | sites ->
            Printf.sprintf "  remember:{%s}"
              (String.concat "," (List.map string_of_int sites)))
      | In_compressed_area -> ())
    t.status;
  if not !any then Format.fprintf ppf "  (empty)@."
