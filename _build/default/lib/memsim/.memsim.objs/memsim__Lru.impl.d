lib/memsim/lru.ml: Hashtbl List Option
