lib/memsim/heap.ml: Hashtbl List Printf
