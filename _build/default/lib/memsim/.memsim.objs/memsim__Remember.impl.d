lib/memsim/remember.ml: Array Int Set
