lib/memsim/remember.mli:
