lib/memsim/lru.mli:
