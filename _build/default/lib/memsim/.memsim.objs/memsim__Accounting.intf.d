lib/memsim/accounting.mli:
