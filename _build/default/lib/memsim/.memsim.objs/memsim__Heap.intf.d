lib/memsim/heap.mli:
