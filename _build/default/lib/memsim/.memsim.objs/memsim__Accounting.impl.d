lib/memsim/accounting.ml: Printf
