lib/memsim/layout.ml: Array Format Heap List Option Printf Remember String
