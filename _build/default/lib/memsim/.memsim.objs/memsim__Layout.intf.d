lib/memsim/layout.mli: Format Heap
