type t = {
  cap : int;
  mutable holes : (int * int) list;  (* (offset, len), sorted by offset *)
  allocs : (int, int) Hashtbl.t;  (* offset -> len *)
  mutable used : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Memsim.Heap.create";
  { cap = capacity; holes = [ (0, capacity) ]; allocs = Hashtbl.create 64; used = 0 }

let capacity t = t.cap

let alloc t size =
  if size <= 0 then invalid_arg "Memsim.Heap.alloc: non-positive size";
  let rec fit acc = function
    | [] -> None
    | (off, len) :: rest when len >= size ->
      let remaining = if len = size then [] else [ (off + size, len - size) ] in
      t.holes <- List.rev_append acc (remaining @ rest);
      Hashtbl.replace t.allocs off size;
      t.used <- t.used + size;
      Some off
    | hole :: rest -> fit (hole :: acc) rest
  in
  fit [] t.holes

let size_of t off = Hashtbl.find_opt t.allocs off

let free t off =
  match Hashtbl.find_opt t.allocs off with
  | None -> invalid_arg (Printf.sprintf "Memsim.Heap.free: offset %d not live" off)
  | Some size ->
    Hashtbl.remove t.allocs off;
    t.used <- t.used - size;
    (* Insert the hole in order and coalesce with its neighbours. *)
    let rec insert = function
      | [] -> [ (off, size) ]
      | (o, l) :: rest when o + l = off -> coalesce_back ((o, l + size) :: rest)
      | (o, l) :: rest when o > off ->
        if off + size = o then (off, size + l) :: rest
        else (off, size) :: (o, l) :: rest
      | hole :: rest -> hole :: insert rest
    and coalesce_back = function
      | (o, l) :: (o2, l2) :: rest when o + l = o2 -> (o, l + l2) :: rest
      | holes -> holes
    in
    t.holes <- insert t.holes

let used_bytes t = t.used
let free_bytes t = t.cap - t.used

let largest_free t = List.fold_left (fun m (_, l) -> max m l) 0 t.holes

let external_fragmentation t =
  let free = free_bytes t in
  if free = 0 then 0.0
  else 1.0 -. (float_of_int (largest_free t) /. float_of_int free)

let live_allocations t =
  Hashtbl.fold (fun off len acc -> (off, len) :: acc) t.allocs []
  |> List.sort compare

let check_invariants t =
  let regions =
    List.map (fun (o, l) -> (o, l, `Hole)) t.holes
    @ List.map (fun (o, l) -> (o, l, `Alloc)) (live_allocations t)
    |> List.sort compare
  in
  let rec walk pos prev = function
    | [] ->
      if pos = t.cap then Ok ()
      else Error (Printf.sprintf "coverage stops at %d, capacity %d" pos t.cap)
    | (o, l, kind) :: rest ->
      if o <> pos then Error (Printf.sprintf "gap or overlap at offset %d" o)
      else if l <= 0 then Error (Printf.sprintf "empty region at %d" o)
      else if kind = `Hole && prev = Some `Hole then
        Error (Printf.sprintf "uncoalesced holes at %d" o)
      else walk (o + l) (Some kind) rest
  in
  walk 0 None regions
