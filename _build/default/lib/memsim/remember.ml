module IntSet = Set.Make (Int)

type t = { sets : IntSet.t array }

let create ~blocks =
  if blocks <= 0 then invalid_arg "Memsim.Remember.create";
  { sets = Array.make blocks IntSet.empty }

let record t ~target ~site =
  let s = t.sets.(target) in
  if IntSet.mem site s then false
  else begin
    t.sets.(target) <- IntSet.add site s;
    true
  end

let sites t ~target = IntSet.elements t.sets.(target)
let cardinal t ~target = IntSet.cardinal t.sets.(target)

let flush t ~target =
  let n = IntSet.cardinal t.sets.(target) in
  t.sets.(target) <- IntSet.empty;
  n

let remove_site t ~target ~site =
  let s = t.sets.(target) in
  if IntSet.mem site s then begin
    t.sets.(target) <- IntSet.remove site s;
    true
  end
  else false

let total_sites t =
  Array.fold_left (fun acc s -> acc + IntSet.cardinal s) 0 t.sets
