(** Remember sets (paper, §5): for each decompressed block, the branch
    sites that currently point at its decompressed copy. When the copy
    is discarded, every recorded site must be patched back to the
    exception-raising compressed address — the engine charges
    [patch_cost] per site. *)

type t

val create : blocks:int -> t

val record : t -> target:int -> site:int -> bool
(** Records that the branch at [site] now targets the decompressed
    copy of [target]. Returns [true] if the site was new (a patch was
    performed). *)

val sites : t -> target:int -> int list
(** Currently recorded sites, sorted. *)

val cardinal : t -> target:int -> int

val flush : t -> target:int -> int
(** Empties the remember set of [target], returning how many sites had
    to be patched back. *)

val remove_site : t -> target:int -> site:int -> bool
(** Removes one site (used when the site block itself is discarded and
    its patched branch disappears with it). Returns [true] if it was
    present. *)

val total_sites : t -> int
