(** The paper's §5 memory organization: a fixed {e compressed code
    area} holding every block's compressed form at an immutable offset,
    plus a managed area for decompressed copies. "Compressing" a block
    is deleting its decompressed copy; the compressed original never
    moves, so the compressed area never fragments.

    This module is the state behind Figure 5's nine snapshots and the
    fragmentation numbers of experiment E9. *)

type status =
  | In_compressed_area  (** only the compressed form exists *)
  | Resident of int  (** decompressed copy lives at this heap offset *)

type t

val create :
  ?decompressed_capacity:int ->
  compressed_sizes:int array ->
  uncompressed_sizes:int array ->
  unit ->
  t
(** One entry per basic block. The compressed area is laid out
    back-to-back in block order. [decompressed_capacity] defaults to
    unbounded. *)

val num_blocks : t -> int
val status : t -> int -> status
val resident : t -> int -> bool

val compressed_area_bytes : t -> int
(** Total size of the (always present) compressed area — the paper's
    "minimum memory required to store the application code". *)

val compressed_offset : t -> int -> int

val decompressed_bytes : t -> int
val footprint : t -> int
(** [compressed_area_bytes + decompressed_bytes]. *)

val decompress : t -> int -> (int, [ `No_space ]) result
(** Allocates a decompressed copy; returns its heap offset. No-op
    ([Ok offset]) if already resident. *)

val discard : t -> int -> int
(** Deletes the decompressed copy, returning the number of branch
    sites that had to be patched back (the remember set is flushed).
    @raise Invalid_argument if the block is not resident. *)

val record_branch : t -> target:int -> site:int -> bool
(** A branch at [site] was redirected to [target]'s decompressed copy;
    returns [true] if this is a new remember-set entry (i.e. a patch
    was performed now). *)

val remember_sites : t -> int -> int list

val heap : t -> Heap.t
(** The decompressed-area allocator (for fragmentation metrics). *)

val pp_snapshot : Format.formatter -> t -> unit
(** Figure-5-style rendering: the compressed area, then the live
    decompressed copies. *)
