(** First-fit free-list allocator for the decompressed-block area.

    The paper's implementation (§5) never moves the compressed
    originals, so all allocation churn happens in this area; the
    fragmentation numbers in experiment E9 come from here. *)

type t

val create : capacity:int -> t
(** [capacity] in bytes; use [max_int] for an unbounded area. *)

val capacity : t -> int

val alloc : t -> int -> int option
(** [alloc t size] returns the byte offset of a fresh block, first-fit,
    or [None] if no hole is large enough.
    @raise Invalid_argument on non-positive sizes. *)

val free : t -> int -> unit
(** Frees the allocation starting at the given offset, coalescing
    adjacent holes.
    @raise Invalid_argument if the offset is not currently allocated. *)

val size_of : t -> int -> int option
(** Size of the live allocation at an offset. *)

val used_bytes : t -> int
val free_bytes : t -> int
val largest_free : t -> int

val external_fragmentation : t -> float
(** [1 - largest_free / free_bytes]; 0 when the free space is one
    hole (or there is no free space). *)

val live_allocations : t -> (int * int) list
(** [(offset, size)] pairs, sorted by offset. *)

val check_invariants : t -> (unit, string) result
(** Free holes are sorted, non-overlapping, non-adjacent, and disjoint
    from live allocations; everything covers exactly the capacity. *)
