lib/baselines/comparison.mli: Core
