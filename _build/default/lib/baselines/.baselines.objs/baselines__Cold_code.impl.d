lib/baselines/cold_code.ml: Array Cfg Core List
