lib/baselines/granularity.mli: Cfg Core Eris
