lib/baselines/cold_code.mli: Core
