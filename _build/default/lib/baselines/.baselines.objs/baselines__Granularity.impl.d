lib/baselines/granularity.ml: Array Buffer Bytes Cfg Compress Core Eris Hashtbl List
