lib/baselines/comparison.ml: Array Cold_code Core Granularity Printf
