(** Next-block prediction for the pre-decompress-single strategy
    (paper, §4): among the compressed blocks at most [k] edges ahead,
    "predict the block that is to be the most likely one to be
    reached" and decompress only that one. *)

(** Prediction policies. *)
type t =
  | First_successor
      (** static: follow each block's first CFG successor *)
  | Last_taken
      (** dynamic: follow the successor most recently taken from each
          block (falling back to the first successor) *)
  | By_profile of Cfg.Profile.t
      (** maximize path probability under an edge profile *)

val name : t -> string

(** Mutable per-run state (the last-taken table). *)
type state

val create_state : blocks:int -> state

val note_edge : state -> src:int -> dst:int -> unit
(** Records a dynamically taken edge (drives [Last_taken]). *)

val choose :
  t ->
  state ->
  Cfg.Graph.t ->
  from:int ->
  k:int ->
  candidates:int list ->
  int option
(** Picks the candidate predicted most likely to be reached within [k]
    edges of [from]'s exit. [candidates] must be given in BFS order
    (nearest first), as produced by {!Cfg.Dist.within}; the fallback
    when the predicted path misses every candidate is the nearest
    one. Returns [None] iff [candidates] is empty. *)
