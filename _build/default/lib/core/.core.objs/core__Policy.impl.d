lib/core/policy.ml: Predictor Printf
