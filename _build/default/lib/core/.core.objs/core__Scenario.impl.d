lib/core/scenario.ml: Array Bytes Cfg Char Compress Config Engine Eris Format
