lib/core/predictor.ml: Array Cfg Hashtbl List Option
