lib/core/policy.mli: Predictor
