lib/core/kedge.ml: Array Hashtbl List Option
