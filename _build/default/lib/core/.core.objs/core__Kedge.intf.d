lib/core/kedge.mli:
