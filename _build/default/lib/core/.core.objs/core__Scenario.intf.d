lib/core/scenario.mli: Cfg Compress Config Engine Eris Format Metrics Policy
