lib/core/adaptive.ml: Array Cfg List
