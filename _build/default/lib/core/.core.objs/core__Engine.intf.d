lib/core/engine.mli: Cfg Compress Config Eris Metrics Policy
