lib/core/config.ml: Compress
