lib/core/engine.ml: Array Bytes Cfg Compress Config Eris Kedge List Memsim Metrics Policy Predictor
