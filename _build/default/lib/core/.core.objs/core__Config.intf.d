lib/core/config.mli: Compress
