lib/core/adaptive.mli: Cfg
