lib/core/predictor.mli: Cfg
