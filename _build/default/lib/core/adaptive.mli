(** Access-pattern-aware choices of the k parameter.

    The paper fixes one k for the whole program; its own §3 discussion
    ("a small k could entail frequent compressions and decompressions
    for blocks with high temporal reuse") points directly at a
    per-block k. These helpers derive one from static structure or a
    profile:

    - blocks inside a natural loop get a k just above the loop's
      circumference, so their copies survive between iterations;
    - blocks outside any loop get the most aggressive k, so
      straight-line and cold code is recompressed immediately. *)

val loop_aware : ?slack:int -> ?cold_k:int -> Cfg.Graph.t -> int -> int
(** [loop_aware g] maps each block to
    [smallest containing loop body size + slack] (default slack 2), or
    [cold_k] (default 1) outside loops. Usable directly as
    {!Policy.make}'s [adaptive_k]. *)

val reuse_aware : ?percentile:float -> Cfg.Graph.t -> int array -> int -> int
(** [reuse_aware g trace] measures each block's reuse distances (in
    edge traversals) in the profiling [trace] and picks the given
    [percentile] (default 0.9) of them as the block's k — large enough
    to cover most of its observed revisits, small enough to retire it
    otherwise. Blocks never revisited get k = 1. *)
