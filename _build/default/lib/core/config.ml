type cost_model = {
  exception_cycles : int;
  patch_cycles : int;
  dec_setup_cycles : int;
  dec_cycles_per_byte : int;
  comp_setup_cycles : int;
  comp_cycles_per_byte : int;
}

let default_cost_model =
  {
    exception_cycles = 40;
    patch_cycles = 4;
    dec_setup_cycles = 30;
    dec_cycles_per_byte = 4;
    comp_setup_cycles = 30;
    comp_cycles_per_byte = 8;
  }

let cost_model_of_codec codec =
  {
    default_cost_model with
    dec_cycles_per_byte = codec.Compress.Codec.dec_cycles_per_byte;
    comp_cycles_per_byte = codec.Compress.Codec.comp_cycles_per_byte;
  }

type t = { costs : cost_model }

let default = { costs = default_cost_model }
let of_codec codec = { costs = cost_model_of_codec codec }

let dec_cycles t ~compressed_bytes =
  t.costs.dec_setup_cycles + (t.costs.dec_cycles_per_byte * compressed_bytes)

let comp_cycles t ~uncompressed_bytes =
  t.costs.comp_setup_cycles + (t.costs.comp_cycles_per_byte * uncompressed_bytes)
