type t =
  | First_successor
  | Last_taken
  | By_profile of Cfg.Profile.t

let name = function
  | First_successor -> "first-successor"
  | Last_taken -> "last-taken"
  | By_profile _ -> "profile"

type state = { last : int array (* -1 = unknown *) }

let create_state ~blocks = { last = Array.make (max blocks 1) (-1) }

let note_edge state ~src ~dst =
  if src >= 0 && src < Array.length state.last then state.last.(src) <- dst

(* Follows a single predicted path for up to [k] steps and returns the
   first candidate encountered. *)
let follow_path next_of ~from ~k ~candidate =
  let rec walk cur steps =
    if steps >= k then None
    else
      match next_of cur with
      | None -> None
      | Some nxt -> if candidate nxt then Some nxt else walk nxt (steps + 1)
  in
  walk from 0

(* Max-probability reach within [k] steps: k rounds of relaxation. *)
let best_by_profile profile g ~from ~k ~candidates =
  let n = Cfg.Graph.num_blocks g in
  let prob = Array.make n 0.0 in
  let frontier = ref [ (from, 1.0) ] in
  let best = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace best c 0.0) candidates;
  for _ = 1 to k do
    let next = Hashtbl.create 8 in
    List.iter
      (fun (b, p) ->
        List.iter
          (fun s ->
            let p' = p *. Cfg.Profile.edge_probability profile ~src:b ~dst:s in
            if p' > 0.0 then begin
              let cur = Option.value ~default:0.0 (Hashtbl.find_opt next s) in
              if p' > cur then Hashtbl.replace next s p'
            end)
          (Cfg.Graph.succ_ids g b))
      !frontier;
    Hashtbl.iter
      (fun b p ->
        (match Hashtbl.find_opt best b with
        | Some cur when p > cur -> Hashtbl.replace best b p
        | Some _ -> ()
        | None -> ());
        if b >= 0 && b < n then prob.(b) <- max prob.(b) p)
      next;
    frontier := Hashtbl.fold (fun b p acc -> (b, p) :: acc) next []
  done;
  let pick =
    List.fold_left
      (fun acc c ->
        let p = Option.value ~default:0.0 (Hashtbl.find_opt best c) in
        match acc with
        | None -> Some (c, p)
        | Some (_, bp) when p > bp -> Some (c, p)
        | Some _ -> acc)
      None candidates
  in
  Option.map fst pick

let choose t state g ~from ~k ~candidates =
  match candidates with
  | [] -> None
  | nearest :: _ -> (
    let is_candidate b = List.mem b candidates in
    let fallback = Some nearest in
    match t with
    | First_successor -> (
      let next_of b =
        match Cfg.Graph.succ_ids g b with [] -> None | s :: _ -> Some s
      in
      match follow_path next_of ~from ~k ~candidate:is_candidate with
      | Some c -> Some c
      | None -> fallback)
    | Last_taken -> (
      let next_of b =
        let remembered = state.last.(b) in
        if remembered >= 0 && List.mem remembered (Cfg.Graph.succ_ids g b) then
          Some remembered
        else
          match Cfg.Graph.succ_ids g b with [] -> None | s :: _ -> Some s
      in
      match follow_path next_of ~from ~k ~candidate:is_candidate with
      | Some c -> Some c
      | None -> fallback)
    | By_profile profile -> (
      match best_by_profile profile g ~from ~k ~candidates with
      | Some c -> Some c
      | None -> fallback))
