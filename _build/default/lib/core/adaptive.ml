let loop_aware ?(slack = 2) ?(cold_k = 1) g =
  let n = Cfg.Graph.num_blocks g in
  let k = Array.make n cold_k in
  let loops = Cfg.Loop.detect g in
  List.iter
    (fun l ->
      let size = List.length l.Cfg.Loop.body in
      List.iter
        (fun b ->
          let candidate = size + slack in
          (* smallest containing loop wins *)
          if k.(b) = cold_k || candidate < k.(b) then k.(b) <- candidate)
        l.Cfg.Loop.body)
    loops;
  fun b -> if b >= 0 && b < n then k.(b) else cold_k

let reuse_aware ?(percentile = 0.9) g trace =
  let n = Cfg.Graph.num_blocks g in
  let last_seen = Array.make n (-1) in
  let distances = Array.make n [] in
  Array.iteri
    (fun step b ->
      if b >= 0 && b < n then begin
        if last_seen.(b) >= 0 then
          distances.(b) <- (step - last_seen.(b)) :: distances.(b);
        last_seen.(b) <- step
      end)
    trace;
  let k = Array.make n 1 in
  Array.iteri
    (fun b ds ->
      match ds with
      | [] -> k.(b) <- 1
      | ds ->
        let sorted = List.sort compare ds in
        let len = List.length sorted in
        let idx =
          min (len - 1)
            (int_of_float (percentile *. float_of_int len))
        in
        k.(b) <- max 1 (List.nth sorted idx))
    distances;
  fun b -> if b >= 0 && b < n then k.(b) else 1
