(** E8 — the §4 timing dimension: sweeping the pre-decompression
    lookahead distance. Earlier pre-decompression (larger k) hides
    more latency but holds more blocks decompressed. *)

val workload_names : string list
val lookaheads : int list

val run : unit -> Report.Table.t
