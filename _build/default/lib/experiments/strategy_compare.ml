let compress_k = 8
let lookahead = 2

(* Two platforms: the default software decompressor (rates from the
   codec) and a CodePack-style hardware unit that decompresses an
   order of magnitude faster. The paper's "pre-decompression hides
   the latency" story assumes the latter; with a slow single-threaded
   software decompressor, indiscriminate pre-all can queue useless
   work ahead of useful work and lose to pre-single on both axes. *)
let fast_config (sc : Core.Scenario.t) =
  let base = (Core.Config.of_codec sc.codec).Core.Config.costs in
  {
    Core.Config.costs =
      { base with dec_setup_cycles = 5; dec_cycles_per_byte = 1 };
  }

let metrics_with ?config sc =
  let profile = Core.Scenario.profile sc in
  [
    ("on-demand", Core.Scenario.run ?config sc (Core.Policy.on_demand ~k:compress_k));
    ( "pre-all",
      Core.Scenario.run ?config sc (Core.Policy.pre_all ~k:compress_k ~lookahead) );
    ( "pre-single",
      Core.Scenario.run ?config sc
        (Core.Policy.pre_single ~k:compress_k ~lookahead
           ~predictor:(Core.Predictor.By_profile profile)) );
  ]

let metrics_for sc = metrics_with sc

let run () =
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "E7: decompression strategy comparison (k=%d, lookahead=%d, \
            profile predictor; sw = codec-rate decompressor, hw = fast \
            CodePack-style unit)"
           compress_k lookahead)
      ~columns:
        [
          ("workload", Report.Table.Left);
          ("dec unit", Report.Table.Left);
          ("strategy", Report.Table.Left);
          ("overhead", Report.Table.Right);
          ("stall cyc", Report.Table.Right);
          ("demand", Report.Table.Right);
          ("prefetch", Report.Table.Right);
          ("wasted", Report.Table.Right);
          ("peak mem saving", Report.Table.Right);
        ]
  in
  List.iter
    (fun sc ->
      List.iter
        (fun (unit_name, config) ->
          List.iter
            (fun (name, m) ->
              Report.Table.add_row t
                [
                  sc.Core.Scenario.name;
                  unit_name;
                  name;
                  Report.Table.fmt_pct (Core.Metrics.overhead_ratio m);
                  string_of_int m.Core.Metrics.stall_cycles;
                  string_of_int m.Core.Metrics.demand_decompressions;
                  string_of_int m.Core.Metrics.prefetch_decompressions;
                  string_of_int m.Core.Metrics.wasted_prefetches;
                  Report.Table.fmt_pct (Core.Metrics.peak_memory_saving m);
                ])
            (metrics_with ?config sc))
        [ ("sw", None); ("hw", Some (fast_config sc)) ])
    (Util.scenarios ());
  t
