(** E6 — the §3 tradeoff: sweeping the compression parameter k under
    on-demand decompression, per workload. Small k compresses
    aggressively (low memory, high overhead from re-decompressions of
    blocks with temporal reuse); large k converges to
    decompress-once. *)

val ks : int list

val run : unit -> Report.Table.t

val series : Core.Scenario.t -> (int * Core.Metrics.t) list
(** [(k, metrics)] for one scenario (used by tests to assert
    monotone-ish shape). *)
