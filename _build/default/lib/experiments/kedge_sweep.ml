let ks = [ 1; 2; 4; 8; 16; 32 ]

let series sc =
  List.map (fun k -> (k, Util.run sc (Core.Policy.on_demand ~k))) ks

let run () =
  let t =
    Report.Table.create
      ~title:
        "E6: k-edge compression sweep (on-demand decompression) - memory \
         vs. performance tradeoff"
      ~columns:
        [
          ("workload", Report.Table.Left);
          ("k", Report.Table.Right);
          ("overhead", Report.Table.Right);
          ("peak mem saving", Report.Table.Right);
          ("avg mem saving", Report.Table.Right);
          ("demand decs", Report.Table.Right);
          ("discards", Report.Table.Right);
        ]
  in
  List.iter
    (fun sc ->
      List.iter
        (fun (k, m) ->
          Report.Table.add_row t
            [
              sc.Core.Scenario.name;
              string_of_int k;
              Report.Table.fmt_pct (Core.Metrics.overhead_ratio m);
              Report.Table.fmt_pct (Core.Metrics.peak_memory_saving m);
              Report.Table.fmt_pct (Core.Metrics.avg_memory_saving m);
              string_of_int m.Core.Metrics.demand_decompressions;
              string_of_int m.Core.Metrics.discards;
            ])
        (series sc))
    (Util.scenarios ());
  t
