(** E2 — Figure 2: with pre-decompression distance k = 3, basic block
    B7 (3 edges from B1's exit in the reconstruction: B1->B3->B6->B7)
    is pre-decompressed at the moment the execution thread exits B1. *)

val run : unit -> Report.Table.t

val holds : unit -> bool
(** B7's prefetch is issued when B1 finishes, before B3 executes. *)
