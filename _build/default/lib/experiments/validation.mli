(** E16 — model validation: the timing model ({!Core.Engine}) against
    the executable runtime ({!Runtime}), which really decompresses,
    relocates, patches and deletes code while the machine executes it.

    For each workload the table shows the engine's demand
    decompressions next to the runtime's actual handler
    decompressions, under the same k. They agree exactly wherever the
    model's block-granularity abstraction is exact, and within a small
    factor where the runtime's realities (returns landing one past a
    call, mid-run reloads) differ — with the runtime's checksum
    matching the reference as ground truth. *)

val compress_k : int

val run : unit -> Report.Table.t

type row = {
  workload : string;
  engine_demand : int;
  runtime_decompressions : int;
  runtime_traps : int;
  engine_discards : int;
  runtime_deletions : int;
  checksum_ok : bool;
}

val rows : unit -> row list
