(** E1 — Figure 1: with k = 2, after visiting B1 and traversing edges
    a (B1->B3) and b (B3->B4), the k-edge algorithm compresses B1 just
    before execution enters B4. The table is the engine's event log;
    the [verdict] row checks the discard of B1 happens exactly on the
    edge into B4. *)

val run : unit -> Report.Table.t

val holds : unit -> bool
(** The property the figure illustrates, as a boolean (used by the
    test suite). *)
