let compressed = [ 4; 5; 8; 9 ]
let lookahead = 2

let graph = Paper_figures.fig2

let candidates () =
  let g = graph () in
  Cfg.Dist.within g ~from:0 ~k:lookahead
  |> List.filter_map (fun (b, _) -> if List.mem b compressed then Some b else None)

let pre_all_set () = candidates ()

(* A profile that makes the path B0 -> B2 -> B4 the most likely. *)
let biased_profile g =
  let walk = [| 0; 2; 4; 6; 7; 9 |] in
  Cfg.Profile.of_trace g (Array.concat [ walk; walk; [| 0; 1; 3; 6; 8; 9 |] ])

let pre_single_choice () =
  let g = graph () in
  let profile = biased_profile g in
  let state = Core.Predictor.create_state ~blocks:(Cfg.Graph.num_blocks g) in
  Core.Predictor.choose (Core.Predictor.By_profile profile) state g ~from:0
    ~k:lookahead ~candidates:(candidates ())

let run () =
  let t =
    Report.Table.create
      ~title:
        "E3 / Figure 3: decompression design space (execution just left B0, \
         k=2, compressed = {B4, B5, B8, B9})"
      ~columns:
        [ ("strategy", Report.Table.Left); ("decompresses", Report.Table.Left) ]
  in
  let show l = String.concat ", " (List.map (Printf.sprintf "B%d") l) in
  Report.Table.add_row t [ "on-demand"; "(nothing until a block faults)" ];
  Report.Table.add_row t
    [ "k-edge, pre-decompress-all"; show (pre_all_set ()) ];
  Report.Table.add_row t
    [
      "k-edge, pre-decompress-single";
      (match pre_single_choice () with
      | Some b -> Printf.sprintf "B%d (most likely per edge profile)" b
      | None -> "(none)");
    ];
  Report.Table.add_row t
    [
      "note";
      "B8, B9 are 3 edges from B0 in the reconstructed Figure 2, so they \
       fall outside the k=2 lookahead";
    ];
  t
