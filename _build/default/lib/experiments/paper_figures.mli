(** The CFG fragments of the paper's figures.

    Figure 1 is fully specified by its text; Figure 2's exact topology
    is not recoverable from the paper, so we use a reconstruction that
    satisfies both statements made about it: (i) from the end of B1 to
    the beginning of B7 at most 3 edges must be traversed, and (ii)
    several of the blocks named in the §4 example (B4, B5) lie within
    2 edges of B0's exit. The parts of the §4 example that depended on
    the unrecoverable part of the topology (B8, B9 within 2 edges) are
    adapted accordingly and noted in EXPERIMENTS.md. *)

val fig1 : unit -> Cfg.Graph.t
(** 6 blocks, two natural loops; edge [a] is B1->B3 and [b] is
    B3->B4. *)

val fig1_trace : int array
(** B0, B1 (left branch), then edges a and b into B4. *)

val fig2 : unit -> Cfg.Graph.t
(** 10 blocks B0..B9, double-diamond chain with a shortcut so that
    d(B1 exit -> B7) = 3. *)

val fig5 : unit -> Cfg.Graph.t
(** 4 blocks B0..B3 with the loop B0 <-> B1 and exits to B2/B3. *)

val fig5_trace : int array
(** The access pattern of Figure 5: B0, B1, B0, B1, B3. *)

val scenario : ?name:string -> Cfg.Graph.t -> trace:int array -> Core.Scenario.t
(** Wraps a figure graph with synthetic block contents. *)
