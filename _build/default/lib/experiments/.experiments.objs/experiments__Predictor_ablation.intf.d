lib/experiments/predictor_ablation.mli: Core Report
