lib/experiments/kedge_sweep.mli: Core Report
