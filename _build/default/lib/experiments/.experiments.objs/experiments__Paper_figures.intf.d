lib/experiments/paper_figures.mli: Cfg Core
