lib/experiments/util.ml: Core List Printf Workloads
