lib/experiments/codecs_exp.ml: Array Bytes Cfg Compress Core Eris List Report Util
