lib/experiments/granularity_exp.ml: Baselines Core List Report Util
