lib/experiments/adaptive_exp.mli: Core Report
