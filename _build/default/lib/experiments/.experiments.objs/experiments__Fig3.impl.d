lib/experiments/fig3.ml: Array Cfg Core List Paper_figures Printf Report String
