lib/experiments/fig4.ml: Core Hashtbl List Paper_figures Printf Report Util
