lib/experiments/predecomp_sweep.ml: Core List Printf Report Util
