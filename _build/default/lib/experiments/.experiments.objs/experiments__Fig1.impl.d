lib/experiments/fig1.ml: Core List Paper_figures Printf Report Util
