lib/experiments/predecomp_sweep.mli: Report
