lib/experiments/fig2.mli: Report
