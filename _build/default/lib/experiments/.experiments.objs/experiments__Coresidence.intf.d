lib/experiments/coresidence.mli: Report
