lib/experiments/validation.ml: Core Eris List Printf Report Runtime Util Workloads
