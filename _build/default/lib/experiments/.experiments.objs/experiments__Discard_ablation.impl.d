lib/experiments/discard_ablation.ml: Array Core Hashtbl List Memsim Report Util
