lib/experiments/kedge_sweep.ml: Core List Report Util
