lib/experiments/discard_ablation.mli: Core Report
