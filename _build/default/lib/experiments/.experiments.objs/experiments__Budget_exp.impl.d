lib/experiments/budget_exp.ml: Core List Printf Report Util
