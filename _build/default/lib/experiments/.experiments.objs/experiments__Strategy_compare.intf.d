lib/experiments/strategy_compare.mli: Core Report
