lib/experiments/budget_exp.mli: Core Report
