lib/experiments/codecs_exp.mli: Compress Core Report
