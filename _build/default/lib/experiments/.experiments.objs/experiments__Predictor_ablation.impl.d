lib/experiments/predictor_ablation.ml: Core List Printf Report Util
