lib/experiments/coresidence.ml: Array Core List Printf Report Util
