lib/experiments/paper_figures.ml: Cfg Core
