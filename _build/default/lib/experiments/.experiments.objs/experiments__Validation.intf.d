lib/experiments/validation.mli: Report
