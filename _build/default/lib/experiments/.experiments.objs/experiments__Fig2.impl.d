lib/experiments/fig2.ml: Core List Paper_figures Printf Report Util
