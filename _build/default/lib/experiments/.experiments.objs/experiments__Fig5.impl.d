lib/experiments/fig5.ml: Array Core List Memsim Paper_figures Printf Report String
