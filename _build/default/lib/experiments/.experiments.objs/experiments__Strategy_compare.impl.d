lib/experiments/strategy_compare.ml: Core List Printf Report Util
