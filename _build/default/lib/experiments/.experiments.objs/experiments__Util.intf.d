lib/experiments/util.mli: Core
