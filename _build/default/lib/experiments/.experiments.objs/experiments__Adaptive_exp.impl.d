lib/experiments/adaptive_exp.ml: Core List Report Util
