(** E13 — predictor ablation for pre-decompress-single: how much does
    the quality of the "most likely next block" prediction matter?
    Accuracy is useful prefetches over all prefetches that left the
    pipeline (useful + wasted). *)

val workload_names : string list

val run : unit -> Report.Table.t

val metrics_for :
  Core.Scenario.t -> (string * Core.Metrics.t) list
