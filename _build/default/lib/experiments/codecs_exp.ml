let block_bytes (sc : Core.Scenario.t) =
  match sc.program with
  | Some prog ->
    Array.to_list
      (Array.map
         (fun (b : Cfg.Graph.block) ->
           Eris.Program.slice_bytes prog ~lo:b.addr ~hi:(b.addr + b.byte_size))
         (Cfg.Graph.blocks sc.graph))
  | None ->
    Array.to_list
      (Array.map
         (fun (b : Cfg.Graph.block) ->
           Core.Scenario.synthetic_block_bytes ~id:b.id ~size:b.byte_size)
         (Cfg.Graph.blocks sc.graph))

let corpus sc =
  let blocks = block_bytes sc in
  Bytes.concat Bytes.empty blocks

let codecs_for sc =
  Compress.Registry.all () @ Compress.Registry.shared_all ~corpus:(corpus sc)

let run () =
  let t =
    Report.Table.create
      ~title:"E12: codec comparison on basic-block code bytes"
      ~columns:
        [
          ("workload", Report.Table.Left);
          ("codec", Report.Table.Left);
          ("ratio", Report.Table.Right);
          ("best block", Report.Table.Right);
          ("worst block", Report.Table.Right);
          ("avg dec cycles/block", Report.Table.Right);
        ]
  in
  List.iter
    (fun sc ->
      let blocks = block_bytes sc in
      List.iter
        (fun codec ->
          let stats = Compress.Stats.measure codec blocks in
          let config = Core.Config.of_codec codec in
          let avg_dec =
            if stats.Compress.Stats.blocks = 0 then 0.0
            else
              float_of_int
                (Core.Config.dec_cycles config
                   ~compressed_bytes:
                     (stats.Compress.Stats.compressed_bytes
                    / stats.Compress.Stats.blocks))
          in
          Report.Table.add_row t
            [
              sc.Core.Scenario.name;
              codec.Compress.Codec.name;
              Report.Table.fmt_float ~decimals:3 stats.Compress.Stats.ratio;
              Report.Table.fmt_float ~decimals:3
                stats.Compress.Stats.best_block_ratio;
              Report.Table.fmt_float ~decimals:3
                stats.Compress.Stats.worst_block_ratio;
              Report.Table.fmt_float ~decimals:0 avg_dec;
            ])
        (codecs_for sc))
    (Util.scenarios ());
  t
