let cache = ref None

let scenarios () =
  match !cache with
  | Some s -> s
  | None ->
    let s = Workloads.Suite.scenarios () in
    cache := Some s;
    s

let scenario name =
  match
    List.find_opt (fun sc -> sc.Core.Scenario.name = name) (scenarios ())
  with
  | Some sc -> sc
  | None -> invalid_arg (Printf.sprintf "Experiments.Util.scenario: %S" name)

let collect_events () =
  let events = ref [] in
  (events, fun ev -> events := ev :: !events)

let event_time (ev : Core.Engine.event) =
  match ev with
  | Exec { at; _ }
  | Exception { at; _ }
  | Demand_decompress { at; _ }
  | Prefetch_issue { at; _ }
  | Stall { at; _ }
  | Patch { at; _ }
  | Discard { at; _ }
  | Evict { at; _ }
  | Recompress_queued { at; _ } -> at

let event_to_string (ev : Core.Engine.event) =
  match ev with
  | Exec { block; _ } -> Printf.sprintf "execute B%d" block
  | Exception { block; _ } -> Printf.sprintf "exception entering B%d" block
  | Demand_decompress { block; cycles; _ } ->
    Printf.sprintf "demand-decompress B%d (%d cycles)" block cycles
  | Prefetch_issue { block; ready_at; _ } ->
    Printf.sprintf "pre-decompress B%d (ready at %d)" block ready_at
  | Stall { block; cycles; _ } ->
    Printf.sprintf "stall %d cycles waiting for B%d" cycles block
  | Patch { target; site; _ } ->
    Printf.sprintf "patch branch in B%d -> B%d'" site target
  | Discard { block; patched_back; wasted; _ } ->
    Printf.sprintf "discard B%d' (%d sites patched back%s)" block patched_back
      (if wasted then ", wasted prefetch" else "")
  | Evict { block; _ } -> Printf.sprintf "evict B%d' (budget)" block
  | Recompress_queued { block; done_at; _ } ->
    Printf.sprintf "recompress B%d (done at %d)" block done_at

let run sc policy = Core.Scenario.run sc policy
