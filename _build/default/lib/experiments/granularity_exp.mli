(** E11 — the §6 comparison: compression granularity and scheme.
    Basic-block granularity (the paper's contribution) against
    procedure-granularity (Debray–Evans / Kirovski), whole-image
    compression, static cold-code compression, and no compression. *)

val run : unit -> Report.Table.t
