(** E10 — the §2 budgeted variant: a hard cap on the decompressed
    area with LRU eviction. Overhead stays flat until the budget
    drops below the hot working set, then climbs steeply. *)

val workload_names : string list

val fractions : float list
(** Budget as a fraction of the unbudgeted run's peak decompressed
    bytes. *)

val run : unit -> Report.Table.t

val series : Core.Scenario.t -> (float * Core.Metrics.t) list
