(** E3 — Figure 3 and the §4 example: the decompression design space.
    With the execution thread just leaving B0, lookahead k = 2 and a
    set of compressed blocks, pre-decompress-all decompresses every
    compressed block within 2 edges while pre-decompress-single picks
    only the predicted one.

    The paper's example lists B4, B5, B8, B9 as compressed; in our
    Figure-2 reconstruction B8 and B9 lie 3 edges from B0, so the
    within-2 candidates are B4 and B5 (documented deviation). *)

val run : unit -> Report.Table.t

val pre_all_set : unit -> int list
(** The blocks pre-decompress-all would decompress. *)

val pre_single_choice : unit -> int option
(** The single block the profile predictor picks. *)
