let run () =
  let t =
    Report.Table.create
      ~title:
        "E11: granularity / scheme comparison (k=8 where applicable); \
         footprints in bytes, lower is better"
      ~columns:
        [
          ("workload", Report.Table.Left);
          ("scheme", Report.Table.Left);
          ("peak footprint", Report.Table.Right);
          ("avg footprint", Report.Table.Right);
          ("overhead", Report.Table.Right);
          ("notes", Report.Table.Left);
        ]
  in
  List.iter
    (fun sc ->
      List.iter
        (fun (r : Baselines.Comparison.row) ->
          Report.Table.add_row t
            [
              sc.Core.Scenario.name;
              r.scheme;
              string_of_int r.peak_footprint;
              Report.Table.fmt_float ~decimals:0 r.avg_footprint;
              Report.Table.fmt_pct r.overhead;
              r.notes;
            ])
        (Baselines.Comparison.rows sc))
    (Util.scenarios ());
  t
