(** E4 — Figure 4: the cooperation of the three threads. Replays a
    path through the Figure 2 CFG under pre-decompress-all with
    [Recompress] mode and renders the event log as a per-thread
    timeline: the decompression thread issues ahead of the execution
    thread, the compression thread retires blocks behind it, and the
    k parameters control the distances. *)

val run : unit -> Report.Table.t

val holds : unit -> bool
(** Every prefetch is issued before its block executes, and every
    recompression is queued after its block's last execution. *)
