let metrics_for sc =
  let g = sc.Core.Scenario.graph in
  let policies =
    [
      ("fixed k=4", Core.Policy.on_demand ~k:4);
      ("fixed k=8", Core.Policy.on_demand ~k:8);
      ("fixed k=16", Core.Policy.on_demand ~k:16);
      ( "loop-aware",
        Core.Policy.make ~compress_k:4 ~adaptive_k:(Core.Adaptive.loop_aware g)
          () );
      ( "reuse-aware",
        Core.Policy.make ~compress_k:4
          ~adaptive_k:(Core.Adaptive.reuse_aware g sc.Core.Scenario.trace)
          () );
    ]
  in
  List.map (fun (name, p) -> (name, Util.run sc p)) policies

let run () =
  let t =
    Report.Table.create
      ~title:
        "E14 (extension): fixed vs. per-block adaptive k, on-demand \
         decompression"
      ~columns:
        [
          ("workload", Report.Table.Left);
          ("k policy", Report.Table.Left);
          ("overhead", Report.Table.Right);
          ("avg mem saving", Report.Table.Right);
          ("peak mem saving", Report.Table.Right);
          ("demand decs", Report.Table.Right);
        ]
  in
  List.iter
    (fun sc ->
      List.iter
        (fun (name, m) ->
          Report.Table.add_row t
            [
              sc.Core.Scenario.name;
              name;
              Report.Table.fmt_pct (Core.Metrics.overhead_ratio m);
              Report.Table.fmt_pct (Core.Metrics.avg_memory_saving m);
              Report.Table.fmt_pct (Core.Metrics.peak_memory_saving m);
              string_of_int m.Core.Metrics.demand_decompressions;
            ])
        (metrics_for sc))
    (Util.scenarios ());
  t
