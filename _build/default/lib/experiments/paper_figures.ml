let fig1 () =
  Cfg.Graph.synthetic ~block_bytes:64 6
    [
      (0, 1); (0, 2);  (* entry split *)
      (1, 3); (2, 3);  (* join at B3 *)
      (3, 4); (3, 5);  (* split *)
      (4, 1);          (* back edge: loop {B1, B3, B4} *)
      (4, 5);
      (5, 2);          (* back edge: loop {B2, B3, B5} *)
    ]

let fig1_trace = [| 0; 1; 3; 4 |]

let fig2 () =
  Cfg.Graph.synthetic ~block_bytes:64 10
    [
      (0, 1); (0, 2);
      (1, 3); (1, 4);
      (2, 4); (2, 5);
      (3, 6); (4, 6); (5, 6);
      (6, 7); (6, 8);
      (7, 9); (8, 9);
    ]

let fig5 () =
  Cfg.Graph.synthetic ~block_bytes:64 4 [ (0, 1); (1, 0); (1, 2); (1, 3); (2, 3) ]

let fig5_trace = [| 0; 1; 0; 1; 3 |]

let scenario ?(name = "figure") g ~trace = Core.Scenario.of_graph ~name g ~trace
