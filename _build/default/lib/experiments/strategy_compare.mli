(** E7 — the Figure 3 design space, quantified: on-demand vs.
    pre-decompress-all vs. pre-decompress-single (profile predictor)
    at fixed k. Pre-all should minimize stalls at the highest memory
    cost; pre-single sits between; on-demand uses the least memory and
    pays the most cycles. *)

val compress_k : int
val lookahead : int

val run : unit -> Report.Table.t

val metrics_for :
  Core.Scenario.t -> (string * Core.Metrics.t) list
(** [("on-demand", m); ("pre-all", m); ("pre-single", m)] under the
    default (software-rate) cost model. *)

val fast_config : Core.Scenario.t -> Core.Config.t
(** A CodePack-style fast hardware decompressor (setup 5 cycles,
    1 cycle per compressed byte). *)

val metrics_with :
  ?config:Core.Config.t ->
  Core.Scenario.t ->
  (string * Core.Metrics.t) list
