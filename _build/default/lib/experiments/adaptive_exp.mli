(** E14 — extension: per-block adaptive k. The paper's §3 tradeoff
    discussion implies the best k differs per block ("blocks with
    high temporal reuse" want a large k); this experiment compares
    fixed k against the structure-derived ({!Core.Adaptive.loop_aware})
    and profile-derived ({!Core.Adaptive.reuse_aware}) per-block
    choices. *)

val run : unit -> Report.Table.t

val metrics_for : Core.Scenario.t -> (string * Core.Metrics.t) list
(** fixed k=4 / k=8 / k=16, loop-aware, reuse-aware. *)
