(** E15 — the paper's motivating claim (§1): "the executable code
    occupies less memory space at a given time, and the saved space
    can be used by some other (concurrently executing) applications."

    For pairs of workloads sharing one code memory, compares the
    worst-case combined footprint of: both images uncompressed, both
    under decompress-once, and both under the k-edge policy. *)

val run : unit -> Report.Table.t

type pair_result = {
  a : string;
  b : string;
  uncompressed : int;  (** sum of original images *)
  decompress_once : int;  (** sum of per-run peak footprints *)
  kedge : int;  (** worst-case: both peaks coincide *)
  kedge_avg : float;  (** time-average combined footprint *)
  saving_vs_uncompressed : float;
  avg_saving_vs_uncompressed : float;
}

val pairs : unit -> pair_result list
