let workload_names = [ "fsm"; "dijkstra"; "adpcm" ]
let lookaheads = [ 1; 2; 3; 4; 6; 8 ]
let compress_k = 8

let run () =
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "E8: pre-decompression distance sweep (compression k=%d)"
           compress_k)
      ~columns:
        [
          ("workload", Report.Table.Left);
          ("strategy", Report.Table.Left);
          ("lookahead", Report.Table.Right);
          ("overhead", Report.Table.Right);
          ("stall cyc", Report.Table.Right);
          ("prefetch", Report.Table.Right);
          ("wasted", Report.Table.Right);
          ("peak dec bytes", Report.Table.Right);
        ]
  in
  List.iter
    (fun name ->
      let sc = Util.scenario name in
      let profile = Core.Scenario.profile sc in
      List.iter
        (fun lookahead ->
          let policies =
            [
              ("pre-all", Core.Policy.pre_all ~k:compress_k ~lookahead);
              ( "pre-single",
                Core.Policy.pre_single ~k:compress_k ~lookahead
                  ~predictor:(Core.Predictor.By_profile profile) );
            ]
          in
          List.iter
            (fun (pname, policy) ->
              let m = Util.run sc policy in
              Report.Table.add_row t
                [
                  name;
                  pname;
                  string_of_int lookahead;
                  Report.Table.fmt_pct (Core.Metrics.overhead_ratio m);
                  string_of_int m.Core.Metrics.stall_cycles;
                  string_of_int m.Core.Metrics.prefetch_decompressions;
                  string_of_int m.Core.Metrics.wasted_prefetches;
                  string_of_int m.Core.Metrics.peak_decompressed_bytes;
                ])
            policies)
        lookaheads)
    workload_names;
  t
