let workload_names = [ "fsm"; "dijkstra"; "bsort" ]
let compress_k = 8
let lookahead = 2

let metrics_for sc =
  let profile = Core.Scenario.profile sc in
  let predictors =
    [
      ("first-successor", Core.Predictor.First_successor);
      ("last-taken", Core.Predictor.Last_taken);
      ("profile", Core.Predictor.By_profile profile);
    ]
  in
  List.map
    (fun (name, predictor) ->
      ( name,
        Util.run sc
          (Core.Policy.pre_single ~k:compress_k ~lookahead ~predictor) ))
    predictors

let accuracy (m : Core.Metrics.t) =
  let settled = m.useful_prefetches + m.wasted_prefetches in
  if settled = 0 then 1.0
  else float_of_int m.useful_prefetches /. float_of_int settled

let run () =
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "E13: predictor ablation for pre-decompress-single (k=%d, \
            lookahead=%d)"
           compress_k lookahead)
      ~columns:
        [
          ("workload", Report.Table.Left);
          ("predictor", Report.Table.Left);
          ("overhead", Report.Table.Right);
          ("stall cyc", Report.Table.Right);
          ("useful", Report.Table.Right);
          ("wasted", Report.Table.Right);
          ("accuracy", Report.Table.Right);
        ]
  in
  List.iter
    (fun name ->
      let sc = Util.scenario name in
      List.iter
        (fun (pname, m) ->
          Report.Table.add_row t
            [
              name;
              pname;
              Report.Table.fmt_pct (Core.Metrics.overhead_ratio m);
              string_of_int m.Core.Metrics.stall_cycles;
              string_of_int m.Core.Metrics.useful_prefetches;
              string_of_int m.Core.Metrics.wasted_prefetches;
              Report.Table.fmt_pct (accuracy m);
            ])
        (metrics_for sc))
    workload_names;
  t
