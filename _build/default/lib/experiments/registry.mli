(** Experiment registry: one entry per table/figure reproduced, keyed
    by the ids used in DESIGN.md and EXPERIMENTS.md. *)

type entry = {
  id : string;  (** e.g. ["E6"] *)
  slug : string;  (** CLI name, e.g. ["kedge-sweep"] *)
  paper_anchor : string;  (** e.g. ["Figure 1"] or ["section 3"] *)
  runner : unit -> Report.Table.t;
}

val all : entry list
(** E1 .. E16, in order (E14/E15 are extensions beyond the paper and
    E16 validates the timing model against the executable runtime). *)

val find : string -> entry option
(** By id (case-insensitive) or slug. *)

val run_all : unit -> (entry * Report.Table.t) list
