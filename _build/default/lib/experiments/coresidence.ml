type pair_result = {
  a : string;
  b : string;
  uncompressed : int;
  decompress_once : int;
  kedge : int;
  kedge_avg : float;
  saving_vs_uncompressed : float;
  avg_saving_vs_uncompressed : float;
}

let compress_k = 4

let workload_pairs =
  [
    ("fsm", "dijkstra");
    ("adpcm", "dct");
    ("matmul", "qsort");
    ("crc32", "strsearch");
    ("fir", "histogram");
    ("rotmix", "bsort");
  ]

let footprints sc =
  let original =
    Array.fold_left
      (fun acc (i : Core.Engine.block_info) -> acc + i.uncompressed_bytes)
      0 sc.Core.Scenario.info
  in
  let once = Util.run sc Core.Policy.never_compress in
  let kedge = Util.run sc (Core.Policy.on_demand ~k:compress_k) in
  ( original,
    once.Core.Metrics.peak_footprint_bytes,
    kedge.Core.Metrics.peak_footprint_bytes,
    kedge.Core.Metrics.avg_footprint_bytes )

let pairs () =
  List.map
    (fun (a, b) ->
      let oa, da, ka, va = footprints (Util.scenario a) in
      let ob, db, kb, vb = footprints (Util.scenario b) in
      let uncompressed = oa + ob in
      let kedge = ka + kb in
      let kedge_avg = va +. vb in
      {
        a;
        b;
        uncompressed;
        decompress_once = da + db;
        kedge;
        kedge_avg;
        saving_vs_uncompressed =
          1.0 -. (float_of_int kedge /. float_of_int uncompressed);
        avg_saving_vs_uncompressed =
          1.0 -. (kedge_avg /. float_of_int uncompressed);
      })
    workload_pairs

let run () =
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "E15 (extension): co-resident applications sharing one code \
            memory - worst-case combined peak footprints (k=%d)"
           compress_k)
      ~columns:
        [
          ("pair", Report.Table.Left);
          ("uncompressed", Report.Table.Right);
          ("decompress-once", Report.Table.Right);
          ("k-edge peak", Report.Table.Right);
          ("k-edge avg", Report.Table.Right);
          ("peak saving", Report.Table.Right);
          ("avg saving", Report.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Report.Table.add_row t
        [
          r.a ^ " + " ^ r.b;
          string_of_int r.uncompressed;
          string_of_int r.decompress_once;
          string_of_int r.kedge;
          Report.Table.fmt_float ~decimals:0 r.kedge_avg;
          Report.Table.fmt_pct r.saving_vs_uncompressed;
          Report.Table.fmt_pct r.avg_saving_vs_uncompressed;
        ])
    (pairs ());
  t
