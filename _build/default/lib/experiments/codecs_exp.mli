(** E12 — codec comparison on real basic-block bytes: per-block
    compression ratio and nominal decompression latency for every
    built-in codec plus the shared-model Huffman variants. *)

val run : unit -> Report.Table.t

val codecs_for : Core.Scenario.t -> Compress.Codec.t list
