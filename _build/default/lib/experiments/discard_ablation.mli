(** E9 — the §5 implementation choice: [Discard] (keep compressed
    originals in place, delete decompressed copies; no background
    compression work, no compressed-area fragmentation) versus
    [Recompress] (the §3 narrative with a real compression thread).
    Also replays each run's allocation sequence against a tight
    first-fit heap to measure decompressed-area fragmentation. *)

val run : unit -> Report.Table.t

val fragmentation : Core.Scenario.t -> Core.Policy.t -> float * int
(** [(max external fragmentation, allocation failures)] when replaying
    the run's allocations in a heap sized to the observed peak. *)
