let window = 4096
let min_match = 3
let max_match = 18

(* Hash chains over 3-byte prefixes keep the search near-linear. *)
let hash b i =
  (Char.code (Bytes.get b i) lsl 10)
  lxor (Char.code (Bytes.get b (i + 1)) lsl 5)
  lxor Char.code (Bytes.get b (i + 2))
  land 0xFFF

let max_chain = 64

let find_match b i chains =
  let n = Bytes.length b in
  if i + min_match > n then None
  else begin
    let best_len = ref 0 and best_pos = ref (-1) in
    let tries = ref 0 in
    let rec walk = function
      | [] -> ()
      | j :: rest ->
        if j >= i - window && !tries < max_chain then begin
          incr tries;
          let len =
            let rec ext k =
              if k < max_match && i + k < n && Bytes.get b (j + k) = Bytes.get b (i + k)
              then ext (k + 1)
              else k
            in
            ext 0
          in
          if len > !best_len then begin
            best_len := len;
            best_pos := j
          end;
          if !best_len < max_match then walk rest
        end
    in
    walk (Hashtbl.find_all chains (hash b i));
    if !best_len >= min_match then Some (!best_pos, !best_len) else None
  end

let compress b =
  let n = Bytes.length b in
  let out = Buffer.create (n + (n / 8) + 1) in
  let chains = Hashtbl.create 4096 in
  let add_pos i = if i + min_match <= n then Hashtbl.add chains (hash b i) i in
  (* Pending group: up to 8 items buffered until the flag byte is known. *)
  let flags = ref 0 and nitems = ref 0 in
  let group = Buffer.create 17 in
  let flush () =
    if !nitems > 0 then begin
      Buffer.add_char out (Char.chr (!flags lsl (8 - !nitems) land 0xFF));
      Buffer.add_buffer out group;
      Buffer.clear group;
      flags := 0;
      nitems := 0
    end
  in
  let push_item is_literal =
    flags := (!flags lsl 1) lor if is_literal then 1 else 0;
    incr nitems;
    if !nitems = 8 then flush ()
  in
  let rec loop i =
    if i < n then
      match find_match b i chains with
      | Some (pos, len) ->
        let dist = i - pos in
        Buffer.add_char group (Char.chr (((dist - 1) lsr 4) land 0xFF));
        Buffer.add_char group
          (Char.chr ((((dist - 1) land 0xF) lsl 4) lor (len - min_match)));
        push_item false;
        for k = i to i + len - 1 do
          add_pos k
        done;
        loop (i + len)
      | None ->
        Buffer.add_char group (Bytes.get b i);
        push_item true;
        add_pos i;
        loop (i + 1)
  in
  loop 0;
  flush ();
  Bytes.of_string (Buffer.contents out)

let decompress b =
  let n = Bytes.length b in
  let out = Buffer.create (n * 2) in
  let i = ref 0 in
  let byte () =
    if !i >= n then raise (Codec.Corrupt "lzss: truncated input");
    let c = Char.code (Bytes.get b !i) in
    incr i;
    c
  in
  while !i < n do
    let flags = byte () in
    let item = ref 0 in
    while !item < 8 && !i < n do
      let is_literal = (flags lsr (7 - !item)) land 1 = 1 in
      if is_literal then Buffer.add_char out (Char.chr (byte ()))
      else begin
        let hi = byte () in
        let lo = byte () in
        let dist = ((hi lsl 4) lor (lo lsr 4)) + 1 in
        let len = (lo land 0xF) + min_match in
        let start = Buffer.length out - dist in
        if start < 0 then raise (Codec.Corrupt "lzss: bad back-reference");
        for k = 0 to len - 1 do
          (* Overlapping copies read bytes produced in this loop. *)
          Buffer.add_char out (Buffer.nth out (start + k))
        done
      end;
      incr item
    done
  done;
  Bytes.of_string (Buffer.contents out)

let codec =
  Codec.make ~name:"lzss" ~dec_cycles_per_byte:3 ~comp_cycles_per_byte:12
    ~compress ~decompress ()
