let code_bits = 12
let dict_limit = 1 lsl code_bits

let write_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let read_u32 b off =
  if Bytes.length b < off + 4 then raise (Codec.Corrupt "lzw: truncated header");
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let compress b =
  let n = Bytes.length b in
  let header = Buffer.create (4 + n) in
  write_u32 header n;
  let w = Bitio.Writer.create () in
  if n > 0 then begin
    let dict = Hashtbl.create 4096 in
    let next_code = ref 256 in
    let reset () =
      Hashtbl.reset dict;
      next_code := 256
    in
    reset ();
    (* Current phrase is tracked as a dictionary code plus its first
       position/length so we never materialize strings. *)
    let cur = ref (Char.code (Bytes.get b 0)) in
    for i = 1 to n - 1 do
      let c = Char.code (Bytes.get b i) in
      match Hashtbl.find_opt dict (!cur, c) with
      | Some code -> cur := code
      | None ->
        Bitio.Writer.add_bits w ~value:!cur ~bits:code_bits;
        if !next_code < dict_limit then begin
          Hashtbl.add dict (!cur, c) !next_code;
          incr next_code
        end
        else reset ();
        cur := c
    done;
    Bitio.Writer.add_bits w ~value:!cur ~bits:code_bits
  end;
  Buffer.add_bytes header (Bitio.Writer.contents w);
  Bytes.of_string (Buffer.contents header)

let decompress b =
  let orig_len = read_u32 b 0 in
  let out = Buffer.create orig_len in
  if orig_len > 0 then begin
    let r = Bitio.Reader.create (Bytes.sub b 4 (Bytes.length b - 4)) in
    (* Dictionary entries as (prefix code, appended byte); -1 prefix
       marks the 256 roots. *)
    let prefix = Array.make dict_limit (-1) in
    let suffix = Array.make dict_limit '\000' in
    let next_code = ref 256 in
    let reset () = next_code := 256 in
    let expand code =
      let rec collect acc code =
        if code < 0 || code >= !next_code then
          raise (Codec.Corrupt "lzw: bad code")
        else if code < 256 then Char.chr code :: acc
        else collect (suffix.(code) :: acc) prefix.(code)
      in
      collect [] code
    in
    let first_char entry = match entry with [] -> assert false | c :: _ -> c in
    let add_entry l = List.iter (Buffer.add_char out) l in
    let read_code () = Bitio.Reader.read_bits r code_bits in
    let prev = ref (read_code ()) in
    if !prev >= 256 then raise (Codec.Corrupt "lzw: bad first code");
    add_entry (expand !prev);
    while Buffer.length out < orig_len do
      let code = read_code () in
      let entry =
        if code < !next_code then expand code
        else if code = !next_code then begin
          (* KwKwK case: entry = prev ^ first(prev) *)
          let p = expand !prev in
          p @ [ first_char p ]
        end
        else raise (Codec.Corrupt "lzw: code out of range")
      in
      if !next_code < dict_limit then begin
        prefix.(!next_code) <- !prev;
        suffix.(!next_code) <- first_char entry;
        incr next_code;
        add_entry entry;
        prev := code;
        if !next_code = dict_limit then begin
          (* Mirror the encoder's reset. *)
          reset ();
          if Buffer.length out < orig_len then begin
            let c = read_code () in
            if c >= 256 then raise (Codec.Corrupt "lzw: bad code after reset");
            add_entry (expand c);
            prev := c
          end
        end
      end
      else begin
        add_entry entry;
        prev := code
      end
    done;
    if Buffer.length out <> orig_len then raise (Codec.Corrupt "lzw: length mismatch")
  end;
  Bytes.of_string (Buffer.contents out)

let codec =
  Codec.make ~name:"lzw" ~dec_cycles_per_byte:5 ~comp_cycles_per_byte:10
    ~compress ~decompress ()
