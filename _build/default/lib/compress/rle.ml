let max_literal = 128
let max_run = 129 (* control byte 0xFF encodes a run of 0x7F + 2 = 129 *)

let run_length b i =
  let n = Bytes.length b in
  let c = Bytes.get b i in
  let rec scan j = if j < n && j - i < max_run && Bytes.get b j = c then scan (j + 1) else j in
  scan (i + 1) - i

let compress b =
  let n = Bytes.length b in
  let out = Buffer.create (n / 2) in
  let rec loop i =
    if i < n then begin
      let r = run_length b i in
      if r >= 3 then begin
        Buffer.add_char out (Char.chr (0x80 + r - 2));
        Buffer.add_char out (Bytes.get b i);
        loop (i + r)
      end
      else begin
        (* Collect a literal run up to the next long run. *)
        let rec extend j =
          if j >= n || j - i >= max_literal then j
          else if run_length b j >= 3 then j
          else extend (j + 1)
        in
        let j = extend (i + 1) in
        Buffer.add_char out (Char.chr (j - i - 1));
        Buffer.add_subbytes out b i (j - i);
        loop j
      end
    end
  in
  loop 0;
  Bytes.of_string (Buffer.contents out)

let decompress b =
  let n = Bytes.length b in
  let out = Buffer.create (n * 2) in
  let rec loop i =
    if i < n then begin
      let c = Char.code (Bytes.get b i) in
      if c <= 0x7F then begin
        let len = c + 1 in
        if i + 1 + len > n then raise (Codec.Corrupt "rle: truncated literal run");
        Buffer.add_subbytes out b (i + 1) len;
        loop (i + 1 + len)
      end
      else begin
        if i + 1 >= n then raise (Codec.Corrupt "rle: truncated repeat run");
        let len = c - 0x80 + 2 in
        let byte = Bytes.get b (i + 1) in
        for _ = 1 to len do
          Buffer.add_char out byte
        done;
        loop (i + 2)
      end
    end
  in
  loop 0;
  Bytes.of_string (Buffer.contents out)

let codec =
  Codec.make ~name:"rle" ~dec_cycles_per_byte:2 ~comp_cycles_per_byte:3
    ~compress ~decompress ()
