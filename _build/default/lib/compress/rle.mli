(** Byte-level run-length codec.

    Packet format: a control byte [c] followed by payload.
    [c <= 0x7F]: a literal run of [c + 1] bytes follows.
    [c >= 0x80]: the next byte repeats [c - 0x80 + 2] times (2..129).
    Runs shorter than 3 bytes are folded into literal runs. *)

val codec : Codec.t
