(** Identity codec: models "no compression" while exercising the same
    machinery (useful as a control in the experiments). *)

val codec : Codec.t
