module Writer = struct
  type t = { mutable buf : Buffer.t; mutable acc : int; mutable nbits : int }

  let create () = { buf = Buffer.create 64; acc = 0; nbits = 0 }

  let flush_byte t =
    Buffer.add_char t.buf (Char.chr ((t.acc lsr (t.nbits - 8)) land 0xFF));
    t.nbits <- t.nbits - 8;
    t.acc <- t.acc land ((1 lsl t.nbits) - 1)

  let add_bit t b =
    t.acc <- (t.acc lsl 1) lor if b then 1 else 0;
    t.nbits <- t.nbits + 1;
    if t.nbits = 8 then flush_byte t

  let add_bits t ~value ~bits =
    if bits < 0 || bits > 30 then invalid_arg "Bitio.Writer.add_bits";
    for i = bits - 1 downto 0 do
      add_bit t ((value lsr i) land 1 = 1)
    done

  let bit_length t = (Buffer.length t.buf * 8) + t.nbits

  let contents t =
    let tail =
      if t.nbits = 0 then ""
      else
        String.make 1 (Char.chr ((t.acc lsl (8 - t.nbits)) land 0xFF))
    in
    Bytes.of_string (Buffer.contents t.buf ^ tail)
end

module Reader = struct
  type t = { data : bytes; mutable pos : int (* in bits *) }

  let create data = { data; pos = 0 }

  let bits_left t = (Bytes.length t.data * 8) - t.pos

  let read_bit t =
    if bits_left t <= 0 then raise (Codec.Corrupt "Bitio: out of bits");
    let byte = Char.code (Bytes.get t.data (t.pos / 8)) in
    let bit = (byte lsr (7 - (t.pos mod 8))) land 1 in
    t.pos <- t.pos + 1;
    bit = 1

  let read_bits t bits =
    let v = ref 0 in
    for _ = 1 to bits do
      v := (!v lsl 1) lor if read_bit t then 1 else 0
    done;
    !v
end
