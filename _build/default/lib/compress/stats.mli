(** Corpus-level compression statistics, used by the codec-comparison
    experiment (E12). *)

type t = {
  codec_name : string;
  blocks : int;
  original_bytes : int;
  compressed_bytes : int;
  ratio : float;  (** compressed / original *)
  worst_block_ratio : float;
  best_block_ratio : float;
}

val measure : Codec.t -> bytes list -> t
(** Compresses every block independently and aggregates. *)

val pp : Format.formatter -> t -> unit
