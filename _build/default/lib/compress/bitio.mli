(** Bit-level readers and writers (MSB-first within each byte), used by
    the Huffman and LZW codecs. *)

module Writer : sig
  type t

  val create : unit -> t

  val add_bit : t -> bool -> unit

  val add_bits : t -> value:int -> bits:int -> unit
  (** Writes the low [bits] bits of [value], most significant first.
      @raise Invalid_argument if [bits] is outside [0, 30]. *)

  val bit_length : t -> int

  val contents : t -> bytes
  (** Pads the final byte with zero bits. *)
end

module Reader : sig
  type t

  val create : bytes -> t

  val bits_left : t -> int

  val read_bit : t -> bool
  (** @raise Compress.Codec.Corrupt past the end of input. *)

  val read_bits : t -> int -> int
end
