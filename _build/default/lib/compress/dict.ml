let escape = 0xFF
let max_entries = 254

let read_word b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let dictionary_words ~corpus =
  let freq = Hashtbl.create 256 in
  for w = 0 to (Bytes.length corpus / 4) - 1 do
    let word = read_word corpus (4 * w) in
    Hashtbl.replace freq word
      (1 + Option.value ~default:0 (Hashtbl.find_opt freq word))
  done;
  Hashtbl.fold (fun word count acc -> (word, count) :: acc) freq []
  |> List.filter (fun (_, count) -> count >= 2)
  |> List.sort (fun (w1, c1) (w2, c2) ->
         if c1 <> c2 then compare c2 c1 else compare w1 w2)
  |> List.filteri (fun i _ -> i < max_entries)
  |> List.map fst

let write_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let read_u16 b off =
  if Bytes.length b < off + 2 then raise (Codec.Corrupt "dict: truncated header");
  Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let shared ~corpus =
  let words = dictionary_words ~corpus in
  let table = Array.of_list words in
  let index = Hashtbl.create 256 in
  Array.iteri (fun i w -> Hashtbl.replace index w i) table;
  let compress b =
    let n = Bytes.length b in
    if n >= 0x10000 then
      invalid_arg "Dict.shared handles blocks under 64 KiB";
    let out = Buffer.create (n / 2) in
    write_u16 out n;
    let words = n / 4 in
    for w = 0 to words - 1 do
      let word = read_word b (4 * w) in
      match Hashtbl.find_opt index word with
      | Some i -> Buffer.add_char out (Char.chr i)
      | None ->
        Buffer.add_char out (Char.chr escape);
        Buffer.add_subbytes out b (4 * w) 4
    done;
    Buffer.add_subbytes out b (words * 4) (n - (words * 4));
    Bytes.of_string (Buffer.contents out)
  in
  let decompress b =
    let orig_len = read_u16 b 0 in
    let out = Buffer.create orig_len in
    let pos = ref 2 in
    let byte () =
      if !pos >= Bytes.length b then raise (Codec.Corrupt "dict: truncated");
      let c = Char.code (Bytes.get b !pos) in
      incr pos;
      c
    in
    let words = orig_len / 4 in
    for _ = 1 to words do
      match byte () with
      | c when c = escape ->
        for _ = 1 to 4 do
          Buffer.add_char out (Char.chr (byte ()))
        done
      | i ->
        if i >= Array.length table then
          raise (Codec.Corrupt "dict: index beyond dictionary");
        let word = table.(i) in
        Buffer.add_char out (Char.chr (word land 0xFF));
        Buffer.add_char out (Char.chr ((word lsr 8) land 0xFF));
        Buffer.add_char out (Char.chr ((word lsr 16) land 0xFF));
        Buffer.add_char out (Char.chr ((word lsr 24) land 0xFF))
    done;
    for _ = 1 to orig_len - (words * 4) do
      Buffer.add_char out (Char.chr (byte ()))
    done;
    Bytes.of_string (Buffer.contents out)
  in
  Codec.make ~name:"dict" ~dec_cycles_per_byte:1 ~comp_cycles_per_byte:2
    ~compress ~decompress ()
