(** LZW codec with fixed 12-bit codes.

    The dictionary starts with the 256 single-byte strings; both sides
    reset it once it reaches 4096 entries. Output is a bit-packed
    sequence of 12-bit codes preceded by the 32-bit original length. *)

val codec : Codec.t
