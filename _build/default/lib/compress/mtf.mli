(** Move-to-front transform composed with RLE.

    Code bytes are highly repetitive locally; MTF turns that locality
    into long runs of small values which RLE then collapses. *)

val transform : bytes -> bytes
(** The raw MTF transform (self-inverse via {!untransform}). *)

val untransform : bytes -> bytes

val codec : Codec.t
(** MTF followed by {!Rle.codec}. *)
