(** Canonical Huffman codecs.

    {!codec} stores a per-block model: a 4-byte original length, a
    symbol/length table and the bit-packed payload. Small blocks pay a
    visible header cost — exactly the effect that makes shared-model
    compressors attractive for basic-block granularity.

    {!shared} builds the model once from a whole-program corpus (the
    way CodePack-style code compressors ship one dictionary for the
    whole image) and emits headerless blocks: only the 4-byte length
    plus payload. *)

val codec : Codec.t

val shared : corpus:bytes -> Codec.t
(** [shared ~corpus] trains on [corpus] with add-one smoothing, so any
    byte remains encodable. The decoder only accepts data produced by
    a codec trained on the same corpus. Blocks must be under 64 KiB
    (the header stores a 16-bit length). *)

val shared_positional : corpus:bytes -> Codec.t
(** Like {!shared} but with four models, one per byte position within
    a 32-bit word: instruction streams put opcodes and immediates at
    fixed positions, so positional models code them far more tightly
    than one global distribution. This is the codec the experiments
    default to for real programs. *)

(**/**)

(* Exposed for tests. *)

val code_lengths : int array -> int array
(** [code_lengths freqs] maps 256 frequencies to Huffman code lengths
    (0 for absent symbols). *)

val canonical_codes : int array -> (int * int) array
(** [canonical_codes lengths] assigns canonical [(code, length)] pairs;
    absent symbols get [(0, 0)]. *)
