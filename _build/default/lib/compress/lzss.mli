(** LZSS codec: 4096-byte sliding window, match lengths 3..18.

    Items are grouped 8 at a time behind a flag byte (MSB first): a
    set bit means a literal byte; a clear bit means a match encoded as
    two bytes — 12 bits of backwards distance minus 1 and 4 bits of
    match length minus 3. *)

val codec : Codec.t
