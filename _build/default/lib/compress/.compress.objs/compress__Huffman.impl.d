lib/compress/huffman.ml: Array Bitio Buffer Bytes Char Codec List Queue
