lib/compress/lzss.mli: Codec
