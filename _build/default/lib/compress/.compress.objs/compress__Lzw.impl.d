lib/compress/lzw.ml: Array Bitio Buffer Bytes Char Codec Hashtbl List
