lib/compress/mtf.mli: Codec
