lib/compress/codec.mli:
