lib/compress/stats.mli: Codec Format
