lib/compress/rle.ml: Buffer Bytes Char Codec
