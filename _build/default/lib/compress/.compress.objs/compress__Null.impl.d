lib/compress/null.ml: Bytes Codec
