lib/compress/null.mli: Codec
