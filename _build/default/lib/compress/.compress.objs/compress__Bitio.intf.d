lib/compress/bitio.mli:
