lib/compress/huffman.mli: Codec
