lib/compress/dict.ml: Array Buffer Bytes Char Codec Hashtbl List Option
