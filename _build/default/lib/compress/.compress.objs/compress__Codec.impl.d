lib/compress/codec.ml: Bytes Char Printf
