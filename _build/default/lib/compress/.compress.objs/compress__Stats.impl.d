lib/compress/stats.ml: Bytes Codec Format List
