lib/compress/mtf.ml: Array Bytes Char Codec Rle
