lib/compress/rle.mli: Codec
