lib/compress/registry.ml: Codec Dict Huffman List Lzss Lzw Mtf Null Printf Rle
