lib/compress/dict.mli: Codec
