lib/compress/lzw.mli: Codec
