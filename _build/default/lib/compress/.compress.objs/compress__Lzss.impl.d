lib/compress/lzss.ml: Buffer Bytes Char Codec Hashtbl
