(* The alphabet is kept in a 256-entry array; moving a symbol to the
   front is an explicit shift, O(rank) per byte. *)

let init_alphabet () = Array.init 256 (fun i -> i)

let move_to_front alphabet rank =
  let sym = alphabet.(rank) in
  Array.blit alphabet 0 alphabet 1 rank;
  alphabet.(0) <- sym;
  sym

let transform b =
  let alphabet = init_alphabet () in
  let out = Bytes.create (Bytes.length b) in
  Bytes.iteri
    (fun i c ->
      let sym = Char.code c in
      let rec find r = if alphabet.(r) = sym then r else find (r + 1) in
      let rank = find 0 in
      ignore (move_to_front alphabet rank);
      Bytes.set out i (Char.chr rank))
    b;
  out

let untransform b =
  let alphabet = init_alphabet () in
  let out = Bytes.create (Bytes.length b) in
  Bytes.iteri
    (fun i c ->
      let rank = Char.code c in
      let sym = move_to_front alphabet rank in
      Bytes.set out i (Char.chr sym))
    b;
  out

let codec =
  let compress b = Rle.codec.Codec.compress (transform b) in
  let decompress b = untransform (Rle.codec.Codec.decompress b) in
  Codec.make ~name:"mtf-rle" ~dec_cycles_per_byte:4 ~comp_cycles_per_byte:6
    ~compress ~decompress ()
