exception Corrupt of string

type t = {
  name : string;
  dec_cycles_per_byte : int;
  comp_cycles_per_byte : int;
  compress : bytes -> bytes;
  decompress : bytes -> bytes;
}

let make ~name ?(dec_cycles_per_byte = 4) ?(comp_cycles_per_byte = 8) ~compress
    ~decompress () =
  { name; dec_cycles_per_byte; comp_cycles_per_byte; compress; decompress }

let compressed_size t b = Bytes.length (t.compress b)

let ratio t b =
  let n = Bytes.length b in
  if n = 0 then 1.0 else float_of_int (compressed_size t b) /. float_of_int n

let roundtrip_ok t b =
  match t.decompress (t.compress b) with
  | b' -> Bytes.equal b b'
  | exception Corrupt _ -> false

let never_expanding inner =
  let compress b =
    let c = inner.compress b in
    if Bytes.length c < Bytes.length b then begin
      let out = Bytes.create (Bytes.length c + 1) in
      Bytes.set out 0 '\001';
      Bytes.blit c 0 out 1 (Bytes.length c);
      out
    end
    else begin
      let out = Bytes.create (Bytes.length b + 1) in
      Bytes.set out 0 '\000';
      Bytes.blit b 0 out 1 (Bytes.length b);
      out
    end
  in
  let decompress b =
    if Bytes.length b = 0 then raise (Corrupt "never_expanding: empty input");
    let payload = Bytes.sub b 1 (Bytes.length b - 1) in
    match Bytes.get b 0 with
    | '\000' -> payload
    | '\001' -> inner.decompress payload
    | c -> raise (Corrupt (Printf.sprintf "never_expanding: bad tag %d" (Char.code c)))
  in
  {
    name = inner.name;
    dec_cycles_per_byte = inner.dec_cycles_per_byte;
    comp_cycles_per_byte = inner.comp_cycles_per_byte;
    compress;
    decompress;
  }
