let codec =
  Codec.make ~name:"null" ~dec_cycles_per_byte:1 ~comp_cycles_per_byte:1
    ~compress:Bytes.copy ~decompress:Bytes.copy ()
