(** Common interface for the basic-block compression codecs.

    A codec maps a byte string to a (hopefully smaller) byte string and
    back, byte-exact. Each codec also advertises a nominal
    decompression cost in cycles per {e compressed} byte, which the
    policy engine's cost model uses. *)

exception Corrupt of string
(** Raised by [decompress] on malformed input. *)

type t = {
  name : string;
  dec_cycles_per_byte : int;
      (** decompression cost per compressed byte, in cycles *)
  comp_cycles_per_byte : int;
      (** compression cost per uncompressed byte, in cycles *)
  compress : bytes -> bytes;
  decompress : bytes -> bytes;
}

val make :
  name:string ->
  ?dec_cycles_per_byte:int ->
  ?comp_cycles_per_byte:int ->
  compress:(bytes -> bytes) ->
  decompress:(bytes -> bytes) ->
  unit ->
  t
(** Constructor with cost defaults of 4 and 8 cycles/byte. *)

val compressed_size : t -> bytes -> int

val ratio : t -> bytes -> float
(** [compressed size / original size]; 1.0 for empty input. Values
    above 1.0 mean the codec expanded the data. *)

val roundtrip_ok : t -> bytes -> bool
(** [decompress (compress b) = b], with [Corrupt] mapped to [false]. *)

val never_expanding : t -> t
(** Wraps a codec with a 1-byte header so that incompressible blocks
    are stored verbatim: the output is never more than
    [input + 1] bytes. This mirrors what production code compressors
    do for blocks that do not compress. *)
