type t = {
  codec_name : string;
  blocks : int;
  original_bytes : int;
  compressed_bytes : int;
  ratio : float;
  worst_block_ratio : float;
  best_block_ratio : float;
}

let measure codec blocks =
  let original = ref 0 and compressed = ref 0 in
  let worst = ref 0.0 and best = ref infinity in
  let count = ref 0 in
  List.iter
    (fun b ->
      let n = Bytes.length b in
      if n > 0 then begin
        incr count;
        let c = Bytes.length (codec.Codec.compress b) in
        original := !original + n;
        compressed := !compressed + c;
        let r = float_of_int c /. float_of_int n in
        if r > !worst then worst := r;
        if r < !best then best := r
      end)
    blocks;
  {
    codec_name = codec.Codec.name;
    blocks = !count;
    original_bytes = !original;
    compressed_bytes = !compressed;
    ratio =
      (if !original = 0 then 1.0
       else float_of_int !compressed /. float_of_int !original);
    worst_block_ratio = (if !count = 0 then 1.0 else !worst);
    best_block_ratio = (if !count = 0 then 1.0 else !best);
  }

let pp ppf t =
  Format.fprintf ppf
    "%s: %d blocks, %d -> %d bytes (ratio %.3f, best %.3f, worst %.3f)"
    t.codec_name t.blocks t.original_bytes t.compressed_bytes t.ratio
    t.best_block_ratio t.worst_block_ratio
