(** Instruction-dictionary codec (Lefurgy et al. style, the classic
    hardware code-compression scheme): the most frequent 32-bit
    instruction words of the program are stored once in a dictionary
    shipped with the image; each occurrence is then a single index
    byte, and words outside the dictionary are escaped verbatim.

    Decompression is a table lookup per word — the cheapest of all the
    codecs here — which is exactly why dictionary schemes dominated
    embedded practice. *)

val shared : corpus:bytes -> Codec.t
(** [shared ~corpus] builds the dictionary from the corpus's word
    frequencies (up to 254 entries, most frequent first; only words
    occurring at least twice are admitted).

    Wire format: a 16-bit original length, then one byte per word —
    a dictionary index in [0, 253], or [0xFF] followed by the 4 raw
    word bytes — then any trailing sub-word bytes verbatim. Blocks
    must be under 64 KiB. *)

val dictionary_words : corpus:bytes -> int list
(** The dictionary contents (exposed for tests and inspection). *)
