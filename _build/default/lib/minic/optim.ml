(* 32-bit wrap helpers: all arithmetic is reduced to signed 32-bit
   values, matching what the generated code computes on the machine. *)
let to_signed v =
  let m = v land 0xFFFFFFFF in
  if m land 0x80000000 <> 0 then m - 0x100000000 else m

let wrap v = to_signed v

let rec pure (x : Ast.expr) =
  match x with
  | Int _ | Var _ -> true
  | Index (_, i) -> pure i
  | Call _ -> false
  | Unary (_, a) -> pure a
  | Binary (_, a, b) -> pure a && pure b

let fold_binop op a b =
  let bool_ c = if c then 1 else 0 in
  match (op : Ast.binop) with
  | Add -> Some (wrap (a + b))
  | Sub -> Some (wrap (a - b))
  | Mul -> Some (wrap (a * b))
  | Div ->
    if b = 0 then None
    else
      (* C: truncation toward zero *)
      let q = if (a < 0) = (b < 0) then abs a / abs b else -(abs a / abs b) in
      Some (wrap q)
  | Mod ->
    if b = 0 then None
    else
      let q = if (a < 0) = (b < 0) then abs a / abs b else -(abs a / abs b) in
      Some (wrap (a - (q * b)))
  | Eq -> Some (bool_ (a = b))
  | Ne -> Some (bool_ (a <> b))
  | Lt -> Some (bool_ (a < b))
  | Le -> Some (bool_ (a <= b))
  | Gt -> Some (bool_ (a > b))
  | Ge -> Some (bool_ (a >= b))
  | Land -> Some (bool_ (a <> 0 && b <> 0))
  | Lor -> Some (bool_ (a <> 0 || b <> 0))
  | Band -> Some (to_signed ((a land 0xFFFFFFFF) land (b land 0xFFFFFFFF)))
  | Bor -> Some (to_signed ((a land 0xFFFFFFFF) lor (b land 0xFFFFFFFF)))
  | Bxor -> Some (to_signed ((a land 0xFFFFFFFF) lxor (b land 0xFFFFFFFF)))
  | Shl -> Some (wrap (a lsl (b land 31)))
  | Shr -> Some (to_signed (to_signed a asr (b land 31)))

let fold_unop op a =
  match (op : Ast.unop) with
  | Neg -> wrap (-a)
  | Lnot -> if a = 0 then 1 else 0
  | Bnot -> to_signed (lnot a)

let is_power_of_two v = v > 0 && v land (v - 1) = 0

let rec log2 v = if v <= 1 then 0 else 1 + log2 (v / 2)

let rec fold_expr (x : Ast.expr) : Ast.expr =
  match x with
  | Int v -> Int (to_signed v)
  | Var _ -> x
  | Index (name, i) -> Index (name, fold_expr i)
  | Call (name, args) -> Call (name, List.map fold_expr args)
  | Unary (op, a) -> (
    let a = fold_expr a in
    match a with
    | Int v -> Int (fold_unop op v)
    | _ -> Unary (op, a))
  | Binary (op, a, b) -> (
    let a = fold_expr a and b = fold_expr b in
    match (a, b) with
    | Int va, Int vb -> (
      match fold_binop op va vb with
      | Some v -> Int v
      | None -> Binary (op, a, b))
    | _ -> (
      (* algebraic identities; dropping an operand requires purity *)
      match (op, a, b) with
      | Ast.Add, Int 0, e | Ast.Add, e, Int 0 -> e
      | Ast.Sub, e, Int 0 -> e
      | Ast.Mul, e, Int 1 | Ast.Mul, Int 1, e -> e
      | Ast.Mul, e, Int 0 when pure e -> Int 0
      | Ast.Mul, Int 0, e when pure e -> Int 0
      | Ast.Mul, e, Int v when is_power_of_two v ->
        Binary (Ast.Shl, e, Int (log2 v))
      | Ast.Mul, Int v, e when is_power_of_two v ->
        Binary (Ast.Shl, e, Int (log2 v))
      | Ast.Div, e, Int 1 -> e
      | Ast.Band, e, Int 0 when pure e -> Int 0
      | Ast.Bor, e, Int 0 | Ast.Bxor, e, Int 0 -> e
      | Ast.Shl, e, Int 0 | Ast.Shr, e, Int 0 -> e
      | Ast.Land, Int c, e when c <> 0 ->
        (* (1 && e) is e normalized to 0/1 *)
        Binary (Ast.Ne, e, Int 0)
      | Ast.Land, Int 0, _ -> Int 0
      | Ast.Lor, Int 0, e -> Binary (Ast.Ne, e, Int 0)
      | Ast.Lor, Int c, _ when c <> 0 -> Int 1
      | _ -> Binary (op, a, b)))

let eval_const x =
  match fold_expr x with Int v -> Some v | _ -> None

let rec fold_stmt (s : Ast.stmt) : Ast.stmt list =
  match s with
  | Expr x ->
    let x = fold_expr x in
    (* a pure expression statement has no effect at all *)
    if pure x then [] else [ Expr x ]
  | Assign (n, i, e) -> [ Assign (n, Option.map fold_expr i, fold_expr e) ]
  | Decl (n, e) -> [ Decl (n, Option.map fold_expr e) ]
  | Return e -> [ Return (Option.map fold_expr e) ]
  | Block b -> [ Block (fold_block b) ]
  | If (c, t, e) -> (
    match fold_expr c with
    | Int 0 -> (
      match e with
      | Some e -> [ Block (fold_block e) ]
      | None -> [])
    | Int _ -> [ Block (fold_block t) ]
    | c -> [ If (c, fold_block t, Option.map fold_block e) ])
  | While (c, b) -> (
    match fold_expr c with
    | Int 0 -> []
    | c -> [ While (c, fold_block b) ])
  | For (i, c, st, b) -> (
    let i = Option.map (fun s -> List.hd (fold_stmt s @ [ Ast.Block [] ])) i in
    let c = Option.map fold_expr c in
    match c with
    | Some (Int 0) -> (
      (* loop never runs; keep the init statement's effects *)
      match i with Some s -> [ s ] | None -> [])
    | _ -> [ For (i, c, st, fold_block b) ])

and fold_block b = List.concat_map fold_stmt b

let optimize (p : Ast.program) =
  {
    p with
    Ast.funcs =
      List.map
        (fun (f : Ast.func) -> { f with Ast.body = fold_block f.body })
        p.funcs;
  }
