(** Hand-written lexer for MiniC. *)

type token =
  | INT of int
  | IDENT of string
  | KW_INT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | AMPAMP
  | PIPEPIPE
  | AMP
  | PIPE
  | CARET
  | SHL
  | SHR
  | BANG
  | TILDE
  | EOF

type located = { token : token; line : int }

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val tokenize : string -> (located list, error) result
(** Handles decimal and hex literals, identifiers/keywords, [//] and
    [/* *]/ comments. The result always ends with an [EOF] token. *)

val token_name : token -> string
