(** The MiniC compiler driver: source text in, ERIS-32 program out. *)

type error = {
  stage : [ `Parse | `Codegen | `Assemble ];
  message : string;
}

val pp_error : Format.formatter -> error -> unit

val to_assembly : ?optimize:bool -> string -> (string, error) result
(** Parse + semantic checks + code generation; [optimize] (default
    false) runs {!Optim.optimize} first. *)

val to_program : ?optimize:bool -> string -> (Eris.Program.t, error) result
(** {!to_assembly} followed by {!Eris.Asm.assemble}. *)

val run_main : ?fuel:int -> ?optimize:bool -> string -> (int, error) result
(** Compiles and executes; returns [main]'s result as a signed 32-bit
    value (read back from the {!Codegen.result_addr} checksum word).
    Machine faults are reported as [`Assemble]-stage errors. *)
