lib/minic/codegen.mli: Ast Format
