lib/minic/compile.ml: Codegen Eris Format Optim Parser Printf
