lib/minic/codegen.ml: Ast Buffer Format Hashtbl List Option Printf
