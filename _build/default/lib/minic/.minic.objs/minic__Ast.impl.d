lib/minic/ast.ml:
