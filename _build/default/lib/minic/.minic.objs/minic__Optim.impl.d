lib/minic/optim.ml: Ast List Option
