lib/minic/ast.mli:
