lib/minic/parser.mli: Ast Format
