lib/minic/optim.mli: Ast
