lib/minic/compile.mli: Eris Format
