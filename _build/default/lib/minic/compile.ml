type error = {
  stage : [ `Parse | `Codegen | `Assemble ];
  message : string;
}

let pp_error ppf e =
  Format.fprintf ppf "%s error: %s"
    (match e.stage with
    | `Parse -> "parse"
    | `Codegen -> "codegen"
    | `Assemble -> "assembly")
    e.message

let to_assembly ?(optimize = false) source =
  match Parser.parse source with
  | Error e ->
    Error
      {
        stage = `Parse;
        message = Format.asprintf "%a" Parser.pp_error e;
      }
  | Ok ast -> (
    let ast = if optimize then Optim.optimize ast else ast in
    match Codegen.to_assembly ast with
    | Error e -> Error { stage = `Codegen; message = e.Codegen.message }
    | Ok asm -> Ok asm)

let to_program ?optimize source =
  match to_assembly ?optimize source with
  | Error e -> Error e
  | Ok asm -> (
    match Eris.Asm.assemble asm with
    | Ok prog -> Ok prog
    | Error e ->
      Error
        {
          stage = `Assemble;
          message = Format.asprintf "%a" Eris.Asm.pp_error e;
        })

let run_main ?(fuel = 20_000_000) ?optimize source =
  match to_program ?optimize source with
  | Error e -> Error e
  | Ok prog -> (
    let machine = Eris.Machine.create prog in
    match Eris.Machine.run_to_halt ~fuel machine with
    | _ ->
      let raw = Eris.Machine.read_word machine Codegen.result_addr in
      Ok (if raw land 0x80000000 <> 0 then raw - 0x100000000 else raw)
    | exception Eris.Machine.Fault { pc; message } ->
      Error
        {
          stage = `Assemble;
          message = Printf.sprintf "machine fault at pc %d: %s" pc message;
        })
