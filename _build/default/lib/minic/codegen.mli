(** MiniC → ERIS-32 assembly.

    A straightforward stack-machine code generator:

    - expressions evaluate into [r1] with temporaries spilled to the
      machine stack, so values are never held in caller-clobbered
      registers across calls;
    - the calling convention pushes arguments left-to-right, returns
      in [r1], and frames are [saved fp at fp+0, saved ra at fp+4,
      args from fp+8, locals below fp];
    - comparisons and the logical operators compile to branch
      diamonds, which keeps the generated CFGs rich — deliberately so,
      since the compiled programs feed the code-compression
      experiments;
    - [/] and [%] compile to one shared software divide routine
      (shift-subtract, truncating toward zero; operands are treated as
      signed values of magnitude below 2{^30}).

    Globals live from data address 0x2000; the stack grows down from
    0xF000; [main]'s return value is stored to 0x0FF0 (the workload
    checksum convention) before [halt]. *)

type error = { message : string }

val pp_error : Format.formatter -> error -> unit

val globals_base : int
val stack_top : int
val result_addr : int

val to_assembly : Ast.program -> (string, error) result
(** Generates assembly text accepted by {!Eris.Asm.assemble}.
    Performs the semantic checks (unknown/duplicate names, arity,
    array vs. scalar use, missing parameterless [main]). *)
