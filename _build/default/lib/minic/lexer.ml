type token =
  | INT of int
  | IDENT of string
  | KW_INT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | AMPAMP
  | PIPEPIPE
  | AMP
  | PIPE
  | CARET
  | SHL
  | SHR
  | BANG
  | TILDE
  | EOF

type located = { token : token; line : int }

type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

let token_name = function
  | INT v -> string_of_int v
  | IDENT s -> s
  | KW_INT -> "int"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | AMPAMP -> "&&"
  | PIPEPIPE -> "||"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | SHL -> "<<"
  | SHR -> ">>"
  | BANG -> "!"
  | TILDE -> "~"
  | EOF -> "<eof>"

let keyword = function
  | "int" -> Some KW_INT
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | _ -> None

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

exception Lex_error of error

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let out = ref [] in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Lex_error { line = !line; message = m })) fmt
  in
  let emit token = out := { token; line = !line } :: !out in
  let rec skip_block_comment i =
    if i + 1 >= n then fail "unterminated comment"
    else if src.[i] = '\n' then begin
      incr line;
      skip_block_comment (i + 1)
    end
    else if src.[i] = '*' && src.[i + 1] = '/' then i + 2
    else skip_block_comment (i + 1)
  in
  let rec go i =
    if i >= n then ()
    else
      let c = src.[i] in
      if c = '\n' then begin
        incr line;
        go (i + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then go (i + 1)
      else if c = '/' && i + 1 < n && src.[i + 1] = '/' then begin
        let rec eol j = if j < n && src.[j] <> '\n' then eol (j + 1) else j in
        go (eol i)
      end
      else if c = '/' && i + 1 < n && src.[i + 1] = '*' then
        go (skip_block_comment (i + 2))
      else if is_digit c then begin
        let j =
          if c = '0' && i + 1 < n && (src.[i + 1] = 'x' || src.[i + 1] = 'X')
          then begin
            let rec hex j = if j < n && is_hex src.[j] then hex (j + 1) else j in
            let j = hex (i + 2) in
            if j = i + 2 then fail "bad hex literal";
            j
          end
          else
            let rec dec j = if j < n && is_digit src.[j] then dec (j + 1) else j in
            dec i
        in
        (match int_of_string_opt (String.sub src i (j - i)) with
        | Some v -> emit (INT v)
        | None -> fail "bad integer literal");
        go j
      end
      else if is_ident_start c then begin
        let rec ident j = if j < n && is_ident src.[j] then ident (j + 1) else j in
        let j = ident i in
        let word = String.sub src i (j - i) in
        (match keyword word with
        | Some kw -> emit kw
        | None -> emit (IDENT word));
        go j
      end
      else
        let two tk = emit tk; go (i + 2) in
        let one tk = emit tk; go (i + 1) in
        let peek = if i + 1 < n then Some src.[i + 1] else None in
        match (c, peek) with
        | '=', Some '=' -> two EQ
        | '!', Some '=' -> two NE
        | '<', Some '=' -> two LE
        | '>', Some '=' -> two GE
        | '<', Some '<' -> two SHL
        | '>', Some '>' -> two SHR
        | '&', Some '&' -> two AMPAMP
        | '|', Some '|' -> two PIPEPIPE
        | '=', _ -> one ASSIGN
        | '!', _ -> one BANG
        | '<', _ -> one LT
        | '>', _ -> one GT
        | '&', _ -> one AMP
        | '|', _ -> one PIPE
        | '^', _ -> one CARET
        | '~', _ -> one TILDE
        | '+', _ -> one PLUS
        | '-', _ -> one MINUS
        | '*', _ -> one STAR
        | '/', _ -> one SLASH
        | '%', _ -> one PERCENT
        | '(', _ -> one LPAREN
        | ')', _ -> one RPAREN
        | '{', _ -> one LBRACE
        | '}', _ -> one RBRACE
        | '[', _ -> one LBRACKET
        | ']', _ -> one RBRACKET
        | ';', _ -> one SEMI
        | ',', _ -> one COMMA
        | _ -> fail "unexpected character %C" c
  in
  match go 0 with
  | () ->
    emit EOF;
    Ok (List.rev !out)
  | exception Lex_error e -> Error e
