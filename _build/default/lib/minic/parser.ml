type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Parse_error of error

(* Token cursor over the lexer output. *)
type cursor = { mutable toks : Lexer.located list }

let fail line fmt =
  Printf.ksprintf (fun m -> raise (Parse_error { line; message = m })) fmt

let peek cur =
  match cur.toks with
  | t :: _ -> t
  | [] -> assert false (* lexer always ends with EOF *)

let advance cur =
  match cur.toks with
  | _ :: rest when rest <> [] -> cur.toks <- rest
  | _ -> ()

let next cur =
  let t = peek cur in
  advance cur;
  t

let expect cur token what =
  let t = next cur in
  if t.Lexer.token <> token then
    fail t.Lexer.line "expected %s, got %s" what (Lexer.token_name t.Lexer.token)

let expect_ident cur what =
  let t = next cur in
  match t.Lexer.token with
  | Lexer.IDENT s -> s
  | other -> fail t.Lexer.line "expected %s, got %s" what (Lexer.token_name other)

let expect_int cur what =
  let t = next cur in
  match t.Lexer.token with
  | Lexer.INT v -> v
  | Lexer.MINUS -> (
    let t2 = next cur in
    match t2.Lexer.token with
    | Lexer.INT v -> -v
    | other ->
      fail t2.Lexer.line "expected %s, got -%s" what (Lexer.token_name other))
  | other -> fail t.Lexer.line "expected %s, got %s" what (Lexer.token_name other)

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing                                    *)

let binop_of_token = function
  | Lexer.PIPEPIPE -> Some (Ast.Lor, 1)
  | Lexer.AMPAMP -> Some (Ast.Land, 2)
  | Lexer.PIPE -> Some (Ast.Bor, 3)
  | Lexer.CARET -> Some (Ast.Bxor, 4)
  | Lexer.AMP -> Some (Ast.Band, 5)
  | Lexer.EQ -> Some (Ast.Eq, 6)
  | Lexer.NE -> Some (Ast.Ne, 6)
  | Lexer.LT -> Some (Ast.Lt, 7)
  | Lexer.LE -> Some (Ast.Le, 7)
  | Lexer.GT -> Some (Ast.Gt, 7)
  | Lexer.GE -> Some (Ast.Ge, 7)
  | Lexer.SHL -> Some (Ast.Shl, 8)
  | Lexer.SHR -> Some (Ast.Shr, 8)
  | Lexer.PLUS -> Some (Ast.Add, 9)
  | Lexer.MINUS -> Some (Ast.Sub, 9)
  | Lexer.STAR -> Some (Ast.Mul, 10)
  | Lexer.SLASH -> Some (Ast.Div, 10)
  | Lexer.PERCENT -> Some (Ast.Mod, 10)
  | _ -> None

let rec parse_primary cur =
  let t = next cur in
  match t.Lexer.token with
  | Lexer.INT v -> Ast.Int v
  | Lexer.LPAREN ->
    let e = parse_expression cur 1 in
    expect cur Lexer.RPAREN ")";
    e
  | Lexer.MINUS -> Ast.Unary (Ast.Neg, parse_primary cur)
  | Lexer.BANG -> Ast.Unary (Ast.Lnot, parse_primary cur)
  | Lexer.TILDE -> Ast.Unary (Ast.Bnot, parse_primary cur)
  | Lexer.IDENT name -> (
    match (peek cur).Lexer.token with
    | Lexer.LPAREN ->
      advance cur;
      let args = parse_args cur in
      Ast.Call (name, args)
    | Lexer.LBRACKET ->
      advance cur;
      let idx = parse_expression cur 1 in
      expect cur Lexer.RBRACKET "]";
      Ast.Index (name, idx)
    | _ -> Ast.Var name)
  | other -> fail t.Lexer.line "expected an expression, got %s" (Lexer.token_name other)

and parse_args cur =
  match (peek cur).Lexer.token with
  | Lexer.RPAREN ->
    advance cur;
    []
  | _ ->
    let rec more acc =
      let e = parse_expression cur 1 in
      match (next cur).Lexer.token with
      | Lexer.COMMA -> more (e :: acc)
      | Lexer.RPAREN -> List.rev (e :: acc)
      | other ->
        fail (peek cur).Lexer.line "expected , or ) in call, got %s"
          (Lexer.token_name other)
    in
    more []

and parse_expression cur min_prec =
  let lhs = ref (parse_primary cur) in
  let rec loop () =
    match binop_of_token (peek cur).Lexer.token with
    | Some (op, prec) when prec >= min_prec ->
      advance cur;
      let rhs = parse_expression cur (prec + 1) in
      lhs := Ast.Binary (op, !lhs, rhs);
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  !lhs

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

(* Simple statements usable in for-headers: declaration, assignment or
   bare expression, without the trailing semicolon. *)
let rec parse_simple cur =
  match (peek cur).Lexer.token with
  | Lexer.KW_INT ->
    advance cur;
    let name = expect_ident cur "variable name" in
    let init =
      match (peek cur).Lexer.token with
      | Lexer.ASSIGN ->
        advance cur;
        Some (parse_expression cur 1)
      | _ -> None
    in
    Ast.Decl (name, init)
  | Lexer.IDENT name -> (
    advance cur;
    match (peek cur).Lexer.token with
    | Lexer.ASSIGN ->
      advance cur;
      Ast.Assign (name, None, parse_expression cur 1)
    | Lexer.LBRACKET -> (
      advance cur;
      let idx = parse_expression cur 1 in
      expect cur Lexer.RBRACKET "]";
      match (peek cur).Lexer.token with
      | Lexer.ASSIGN ->
        advance cur;
        Ast.Assign (name, Some idx, parse_expression cur 1)
      | _ -> fail (peek cur).Lexer.line "expected = after index expression")
    | Lexer.LPAREN ->
      advance cur;
      let args = parse_args cur in
      Ast.Expr (Ast.Call (name, args))
    | other ->
      fail (peek cur).Lexer.line "expected =, [ or ( after identifier, got %s"
        (Lexer.token_name other))
  | _ -> Ast.Expr (parse_expression cur 1)

and parse_stmt cur =
  let t = peek cur in
  match t.Lexer.token with
  | Lexer.LBRACE -> Ast.Block (parse_block cur)
  | Lexer.KW_IF ->
    advance cur;
    expect cur Lexer.LPAREN "(";
    let cond = parse_expression cur 1 in
    expect cur Lexer.RPAREN ")";
    let then_b = parse_block cur in
    let else_b =
      match (peek cur).Lexer.token with
      | Lexer.KW_ELSE -> (
        advance cur;
        match (peek cur).Lexer.token with
        | Lexer.KW_IF -> Some [ parse_stmt cur ]
        | _ -> Some (parse_block cur))
      | _ -> None
    in
    Ast.If (cond, then_b, else_b)
  | Lexer.KW_WHILE ->
    advance cur;
    expect cur Lexer.LPAREN "(";
    let cond = parse_expression cur 1 in
    expect cur Lexer.RPAREN ")";
    Ast.While (cond, parse_block cur)
  | Lexer.KW_FOR ->
    advance cur;
    expect cur Lexer.LPAREN "(";
    let init =
      match (peek cur).Lexer.token with
      | Lexer.SEMI -> None
      | _ -> Some (parse_simple cur)
    in
    expect cur Lexer.SEMI ";";
    let cond =
      match (peek cur).Lexer.token with
      | Lexer.SEMI -> None
      | _ -> Some (parse_expression cur 1)
    in
    expect cur Lexer.SEMI ";";
    let step =
      match (peek cur).Lexer.token with
      | Lexer.RPAREN -> None
      | _ -> Some (parse_simple cur)
    in
    expect cur Lexer.RPAREN ")";
    Ast.For (init, cond, step, parse_block cur)
  | Lexer.KW_RETURN ->
    advance cur;
    let e =
      match (peek cur).Lexer.token with
      | Lexer.SEMI -> None
      | _ -> Some (parse_expression cur 1)
    in
    expect cur Lexer.SEMI ";";
    Ast.Return e
  | _ ->
    let s = parse_simple cur in
    expect cur Lexer.SEMI ";";
    s

and parse_block cur =
  expect cur Lexer.LBRACE "{";
  let rec stmts acc =
    match (peek cur).Lexer.token with
    | Lexer.RBRACE ->
      advance cur;
      List.rev acc
    | Lexer.EOF -> fail (peek cur).Lexer.line "unterminated block"
    | _ -> stmts (parse_stmt cur :: acc)
  in
  stmts []

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)

let parse_top cur =
  let globals = ref [] in
  let funcs = ref [] in
  let rec loop () =
    match (peek cur).Lexer.token with
    | Lexer.EOF -> ()
    | Lexer.KW_INT -> (
      advance cur;
      let name = expect_ident cur "name" in
      match (peek cur).Lexer.token with
      | Lexer.LPAREN ->
        (* function *)
        advance cur;
        let params =
          match (peek cur).Lexer.token with
          | Lexer.RPAREN ->
            advance cur;
            []
          | _ ->
            let rec more acc =
              expect cur Lexer.KW_INT "int";
              let p = expect_ident cur "parameter name" in
              match (next cur).Lexer.token with
              | Lexer.COMMA -> more (p :: acc)
              | Lexer.RPAREN -> List.rev (p :: acc)
              | other ->
                fail (peek cur).Lexer.line "expected , or ), got %s"
                  (Lexer.token_name other)
            in
            more []
        in
        let body = parse_block cur in
        funcs := { Ast.name; params; body } :: !funcs;
        loop ()
      | Lexer.LBRACKET ->
        advance cur;
        let size = expect_int cur "array size" in
        expect cur Lexer.RBRACKET "]";
        let init =
          match (peek cur).Lexer.token with
          | Lexer.ASSIGN ->
            advance cur;
            expect cur Lexer.LBRACE "{";
            let rec elts acc =
              let v = expect_int cur "array element" in
              match (next cur).Lexer.token with
              | Lexer.COMMA -> elts (v :: acc)
              | Lexer.RBRACE -> List.rev (v :: acc)
              | other ->
                fail (peek cur).Lexer.line "expected , or } in initializer, got %s"
                  (Lexer.token_name other)
            in
            Some (elts [])
          | _ -> None
        in
        expect cur Lexer.SEMI ";";
        globals := Ast.Garr (name, size, init) :: !globals;
        loop ()
      | _ ->
        let init =
          match (peek cur).Lexer.token with
          | Lexer.ASSIGN ->
            advance cur;
            Some (expect_int cur "initializer")
          | _ -> None
        in
        expect cur Lexer.SEMI ";";
        globals := Ast.Gvar (name, init) :: !globals;
        loop ())
    | other ->
      fail (peek cur).Lexer.line "expected a declaration, got %s"
        (Lexer.token_name other)
  in
  loop ();
  { Ast.globals = List.rev !globals; funcs = List.rev !funcs }

let with_cursor src k =
  match Lexer.tokenize src with
  | Error e -> Error { line = e.Lexer.line; message = e.Lexer.message }
  | Ok toks -> (
    let cur = { toks } in
    match k cur with
    | v -> Ok v
    | exception Parse_error e -> Error e)

let parse src = with_cursor src parse_top

let parse_expr src =
  with_cursor src (fun cur ->
      let e = parse_expression cur 1 in
      expect cur Lexer.EOF "end of input";
      e)
