(** AST-level optimizer for MiniC: constant folding with 32-bit wrap
    semantics, algebraic identities and strength reduction on {e pure}
    operands (no calls — a call's side effects must survive), and
    pruning of statically-decided branches. Dividing by a constant
    zero is left unfolded (the program keeps its runtime behaviour).

    The optimizer is semantics-preserving by construction and checked
    against the unoptimized compiler by differential tests. *)

val fold_expr : Ast.expr -> Ast.expr
val optimize : Ast.program -> Ast.program

val pure : Ast.expr -> bool
(** No calls anywhere inside. Reads of globals/locals/arrays count as
    pure (statements are folded one at a time, so no write can
    intervene within a single expression's evaluation). *)

val eval_const : Ast.expr -> int option
(** The expression's value if it is a compile-time constant, with the
    machine's 32-bit wrap semantics (result as signed 32-bit). *)
