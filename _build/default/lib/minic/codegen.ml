type error = { message : string }

let pp_error ppf e = Format.fprintf ppf "%s" e.message

exception Cg_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Cg_error m)) fmt

let globals_base = 0x2000
let stack_top = 0xF000
let result_addr = 0x0FF0

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)

type gsym =
  | Scalar of int  (* address *)
  | Array of int * int  (* address, length *)

type fenv = {
  globals : (string, gsym) Hashtbl.t;
  funcs : (string, int) Hashtbl.t;  (* name -> arity *)
}

(* Lexically scoped locals: every declaration gets a fresh stack slot
   (no slot reuse between sibling scopes — simple and always correct);
   name lookup walks the scope stack, parameters sit in the outermost
   frame scope. *)
type local_env = {
  mutable scopes : (string, int) Hashtbl.t list;
  mutable next_slot : int;
}

let enter_scope lenv = lenv.scopes <- Hashtbl.create 8 :: lenv.scopes

let exit_scope lenv =
  match lenv.scopes with
  | _ :: rest -> lenv.scopes <- rest
  | [] -> assert false

let in_scope lenv f =
  enter_scope lenv;
  let r = f () in
  exit_scope lenv;
  r

let lookup_local lenv name =
  let rec walk = function
    | [] -> None
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some off -> Some off
      | None -> walk rest)
  in
  walk lenv.scopes

let declare_local lenv name =
  match lenv.scopes with
  | scope :: _ ->
    if Hashtbl.mem scope name then fail "duplicate local %s in this scope" name;
    lenv.next_slot <- lenv.next_slot + 1;
    let off = -4 * lenv.next_slot in
    Hashtbl.replace scope name off;
    off
  | [] -> assert false

(* ------------------------------------------------------------------ *)
(* Emitter                                                             *)

type emitter = {
  buf : Buffer.t;
  mutable label_counter : int;
  mutable uses_divmod : bool;
}

let emit e fmt = Printf.ksprintf (fun s -> Buffer.add_string e.buf (s ^ "\n")) fmt
let label e prefix =
  e.label_counter <- e.label_counter + 1;
  Printf.sprintf "%s_%d" prefix e.label_counter

let place e l = emit e "%s:" l

let push e reg =
  emit e "        subi sp, sp, 4";
  emit e "        sw   %s, 0(sp)" reg

let pop e reg =
  emit e "        lw   %s, 0(sp)" reg;
  emit e "        addi sp, sp, 4"

(* ------------------------------------------------------------------ *)
(* Expressions: result in r1                                           *)

let bool_diamond e ~emit_branch =
  let lt = label e "Ltrue" and le = label e "Lend" in
  emit_branch lt;
  emit e "        li   r1, 0";
  emit e "        j    %s" le;
  place e lt;
  emit e "        li   r1, 1";
  place e le

let rec gen_expr e fenv lenv (x : Ast.expr) =
  match x with
  | Int v -> emit e "        li   r1, %d" v
  | Var name -> (
    match lookup_local lenv name with
    | Some off -> emit e "        lw   r1, %d(fp)" off
    | None -> (
      match Hashtbl.find_opt fenv.globals name with
      | Some (Scalar addr) ->
        emit e "        li   r2, %d" addr;
        emit e "        lw   r1, 0(r2)"
      | Some (Array _) -> fail "array %s used without an index" name
      | None -> fail "unknown variable %s" name))
  | Index (name, idx) ->
    let addr = array_address fenv lenv name in
    gen_expr e fenv lenv idx;
    emit e "        slli r1, r1, 2";
    emit e "        li   r2, %d" addr;
    emit e "        add  r2, r2, r1";
    emit e "        lw   r1, 0(r2)"
  | Call (name, args) ->
    (match Hashtbl.find_opt fenv.funcs name with
    | None -> fail "unknown function %s" name
    | Some arity ->
      if arity <> List.length args then
        fail "function %s expects %d arguments, got %d" name arity
          (List.length args));
    List.iter
      (fun a ->
        gen_expr e fenv lenv a;
        push e "r1")
      args;
    emit e "        call fn_%s" name;
    if args <> [] then emit e "        addi sp, sp, %d" (4 * List.length args)
  | Unary (op, inner) -> (
    gen_expr e fenv lenv inner;
    match op with
    | Neg -> emit e "        sub  r1, r0, r1"
    | Bnot ->
      emit e "        li   r2, -1";
      emit e "        xor  r1, r1, r2"
    | Lnot ->
      bool_diamond e ~emit_branch:(fun lt ->
          emit e "        beq  r1, r0, %s" lt))
  | Binary (Land, lhs, rhs) ->
    let lfalse = label e "Lfalse" and lend = label e "Lend" in
    gen_expr e fenv lenv lhs;
    emit e "        beq  r1, r0, %s" lfalse;
    gen_expr e fenv lenv rhs;
    emit e "        beq  r1, r0, %s" lfalse;
    emit e "        li   r1, 1";
    emit e "        j    %s" lend;
    place e lfalse;
    emit e "        li   r1, 0";
    place e lend
  | Binary (Lor, lhs, rhs) ->
    let ltrue = label e "Ltrue" and lend = label e "Lend" in
    gen_expr e fenv lenv lhs;
    emit e "        bne  r1, r0, %s" ltrue;
    gen_expr e fenv lenv rhs;
    emit e "        bne  r1, r0, %s" ltrue;
    emit e "        li   r1, 0";
    emit e "        j    %s" lend;
    place e ltrue;
    emit e "        li   r1, 1";
    place e lend
  | Binary (op, lhs, rhs) -> (
    gen_expr e fenv lenv lhs;
    push e "r1";
    gen_expr e fenv lenv rhs;
    emit e "        mov  r2, r1";
    pop e "r1";
    match op with
    | Add -> emit e "        add  r1, r1, r2"
    | Sub -> emit e "        sub  r1, r1, r2"
    | Mul -> emit e "        mul  r1, r1, r2"
    | Band -> emit e "        and  r1, r1, r2"
    | Bor -> emit e "        or   r1, r1, r2"
    | Bxor -> emit e "        xor  r1, r1, r2"
    | Shl -> emit e "        sll  r1, r1, r2"
    | Shr -> emit e "        sra  r1, r1, r2"
    | Div ->
      e.uses_divmod <- true;
      emit e "        call __divmod"
    | Mod ->
      e.uses_divmod <- true;
      emit e "        call __divmod";
      emit e "        mov  r1, r2"
    | Eq ->
      bool_diamond e ~emit_branch:(fun lt -> emit e "        beq  r1, r2, %s" lt)
    | Ne ->
      bool_diamond e ~emit_branch:(fun lt -> emit e "        bne  r1, r2, %s" lt)
    | Lt ->
      bool_diamond e ~emit_branch:(fun lt -> emit e "        blt  r1, r2, %s" lt)
    | Le ->
      bool_diamond e ~emit_branch:(fun lt -> emit e "        bge  r2, r1, %s" lt)
    | Gt ->
      bool_diamond e ~emit_branch:(fun lt -> emit e "        blt  r2, r1, %s" lt)
    | Ge ->
      bool_diamond e ~emit_branch:(fun lt -> emit e "        bge  r1, r2, %s" lt)
    | Land | Lor -> assert false)

and array_address fenv lenv name =
  match lookup_local lenv name with
  | Some _ -> fail "local %s is not an array" name
  | None -> (
    match Hashtbl.find_opt fenv.globals name with
    | Some (Array (addr, _)) -> addr
    | Some (Scalar _) -> fail "%s is a scalar, not an array" name
    | None -> fail "unknown array %s" name)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let rec gen_stmt e fenv lenv ~ret_label (s : Ast.stmt) =
  match s with
  | Expr x -> gen_expr e fenv lenv x
  | Decl (name, init) -> (
    (* evaluate the initializer before the name becomes visible,
       so [int x = x;] cannot read the fresh slot *)
    (match init with
    | Some x -> gen_expr e fenv lenv x
    | None -> emit e "        li   r1, 0");
    let off = declare_local lenv name in
    emit e "        sw   r1, %d(fp)" off)
  | Assign (name, None, rhs) -> (
    gen_expr e fenv lenv rhs;
    match lookup_local lenv name with
    | Some off -> emit e "        sw   r1, %d(fp)" off
    | None -> (
      match Hashtbl.find_opt fenv.globals name with
      | Some (Scalar addr) ->
        emit e "        li   r2, %d" addr;
        emit e "        sw   r1, 0(r2)"
      | Some (Array _) -> fail "array %s assigned without an index" name
      | None -> fail "unknown variable %s" name))
  | Assign (name, Some idx, rhs) ->
    let addr = array_address fenv lenv name in
    gen_expr e fenv lenv rhs;
    push e "r1";
    gen_expr e fenv lenv idx;
    emit e "        slli r1, r1, 2";
    emit e "        li   r2, %d" addr;
    emit e "        add  r2, r2, r1";
    pop e "r3";
    emit e "        sw   r3, 0(r2)"
  | If (cond, then_b, else_b) -> (
    gen_expr e fenv lenv cond;
    match else_b with
    | None ->
      let lend = label e "Lend" in
      emit e "        beq  r1, r0, %s" lend;
      in_scope lenv (fun () -> gen_block e fenv lenv ~ret_label then_b);
      place e lend
    | Some else_b ->
      let lelse = label e "Lelse" and lend = label e "Lend" in
      emit e "        beq  r1, r0, %s" lelse;
      in_scope lenv (fun () -> gen_block e fenv lenv ~ret_label then_b);
      emit e "        j    %s" lend;
      place e lelse;
      in_scope lenv (fun () -> gen_block e fenv lenv ~ret_label else_b);
      place e lend)
  | While (cond, body) ->
    let lcond = label e "Lcond" and lend = label e "Lend" in
    place e lcond;
    gen_expr e fenv lenv cond;
    emit e "        beq  r1, r0, %s" lend;
    in_scope lenv (fun () -> gen_block e fenv lenv ~ret_label body);
    emit e "        j    %s" lcond;
    place e lend
  | For (init, cond, step, body) ->
    in_scope lenv (fun () ->
        Option.iter (gen_stmt e fenv lenv ~ret_label) init;
        let lcond = label e "Lcond" and lend = label e "Lend" in
        place e lcond;
        (match cond with
        | Some c ->
          gen_expr e fenv lenv c;
          emit e "        beq  r1, r0, %s" lend
        | None -> ());
        in_scope lenv (fun () -> gen_block e fenv lenv ~ret_label body);
        Option.iter (gen_stmt e fenv lenv ~ret_label) step;
        emit e "        j    %s" lcond;
        place e lend)
  | Return x ->
    (match x with
    | Some x -> gen_expr e fenv lenv x
    | None -> emit e "        li   r1, 0");
    emit e "        j    %s" ret_label
  | Block b -> in_scope lenv (fun () -> gen_block e fenv lenv ~ret_label b)

and gen_block e fenv lenv ~ret_label b =
  List.iter (gen_stmt e fenv lenv ~ret_label) b

(* ------------------------------------------------------------------ *)
(* Functions                                                           *)

(* Total number of Decl nodes = frame slots needed (no reuse). *)
let count_decls (f : Ast.func) =
  let n = ref 0 in
  let rec walk_stmt (s : Ast.stmt) =
    match s with
    | Decl _ -> incr n
    | If (_, a, b) ->
      List.iter walk_stmt a;
      Option.iter (List.iter walk_stmt) b
    | While (_, b) -> List.iter walk_stmt b
    | For (i, _, st, b) ->
      Option.iter walk_stmt i;
      Option.iter walk_stmt st;
      List.iter walk_stmt b
    | Block b -> List.iter walk_stmt b
    | Expr _ | Assign _ | Return _ -> ()
  in
  List.iter walk_stmt f.body;
  !n

let gen_func e fenv (f : Ast.func) =
  let nlocals = count_decls f in
  let lenv = { scopes = []; next_slot = 0 } in
  enter_scope lenv;
  let nparams = List.length f.params in
  List.iteri
    (fun i p ->
      match lenv.scopes with
      | scope :: _ ->
        if Hashtbl.mem scope p then fail "duplicate parameter %s in %s" p f.name;
        Hashtbl.replace scope p (8 + (4 * (nparams - 1 - i)))
      | [] -> assert false)
    f.params;
  let ret_label = label e "Lret" in
  emit e "fn_%s:" f.name;
  push e "ra";
  push e "fp";
  emit e "        mov  fp, sp";
  if nlocals > 0 then emit e "        subi sp, sp, %d" (4 * nlocals);
  in_scope lenv (fun () -> gen_block e fenv lenv ~ret_label f.body);
  emit e "        li   r1, 0";
  place e ret_label;
  emit e "        mov  sp, fp";
  pop e "fp";
  pop e "ra";
  emit e "        ret"

(* Software signed divide/modulo: r1 = r1 / r2, r2 = r1 %% r2 (both at
   once), truncating toward zero; restoring shift-subtract over 32
   bits. Magnitudes must stay below 2^30 for the internal comparison
   to be exact. *)
let divmod_routine =
  {|__divmod:
        li   r7, 0
        li   r8, 0
        bge  r1, r0, dm_a_pos
        sub  r1, r0, r1
        li   r7, 1
        li   r8, 1
dm_a_pos:
        bge  r2, r0, dm_b_pos
        sub  r2, r0, r2
        xori r7, r7, 1
dm_b_pos:
        li   r3, 0
        li   r4, 0
        li   r5, 31
dm_loop:
        slli r4, r4, 1
        srl  r6, r1, r5
        andi r6, r6, 1
        or   r4, r4, r6
        blt  r4, r2, dm_skip
        sub  r4, r4, r2
        li   r6, 1
        sll  r6, r6, r5
        or   r3, r3, r6
dm_skip:
        subi r5, r5, 1
        bge  r5, r0, dm_loop
        beq  r7, r0, dm_q_pos
        sub  r3, r0, r3
dm_q_pos:
        beq  r8, r0, dm_r_pos
        sub  r4, r0, r4
dm_r_pos:
        mov  r1, r3
        mov  r2, r4
        ret|}

(* ------------------------------------------------------------------ *)
(* Program                                                             *)

let build_fenv (p : Ast.program) =
  let fenv = { globals = Hashtbl.create 16; funcs = Hashtbl.create 16 } in
  let cursor = ref globals_base in
  List.iter
    (fun g ->
      let name, size =
        match g with
        | Ast.Gvar (name, _) -> (name, 1)
        | Ast.Garr (name, size, init) ->
          if size <= 0 then fail "array %s has non-positive size" name;
          (match init with
          | Some vals when List.length vals > size ->
            fail "initializer of %s longer than the array" name
          | Some _ | None -> ());
          (name, size)
      in
      if Hashtbl.mem fenv.globals name then fail "duplicate global %s" name;
      let sym =
        match g with
        | Ast.Gvar _ -> Scalar !cursor
        | Ast.Garr _ -> Array (!cursor, size)
      in
      Hashtbl.replace fenv.globals name sym;
      cursor := !cursor + (4 * size))
    p.globals;
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem fenv.funcs f.name then fail "duplicate function %s" f.name;
      if Hashtbl.mem fenv.globals f.name then
        fail "%s is both a global and a function" f.name;
      Hashtbl.replace fenv.funcs f.name (List.length f.params))
    p.funcs;
  fenv

let gen_data e fenv (p : Ast.program) =
  List.iter
    (fun g ->
      match g with
      | Ast.Gvar (name, Some v) -> (
        match Hashtbl.find fenv.globals name with
        | Scalar addr ->
          emit e ".data %d" addr;
          emit e ".dw %d" v
        | Array _ -> assert false)
      | Ast.Garr (name, _, Some vals) -> (
        match Hashtbl.find fenv.globals name with
        | Array (addr, _) ->
          emit e ".data %d" addr;
          List.iter (fun v -> emit e ".dw %d" v) vals
        | Scalar _ -> assert false)
      | Ast.Gvar (_, None) | Ast.Garr (_, _, None) -> ())
    p.globals

let to_assembly (p : Ast.program) =
  match
    let fenv = build_fenv p in
    (match Hashtbl.find_opt fenv.funcs "main" with
    | Some 0 -> ()
    | Some _ -> fail "main must take no parameters"
    | None -> fail "no main function");
    let e = { buf = Buffer.create 4096; label_counter = 0; uses_divmod = false } in
    emit e "; generated by the MiniC compiler";
    emit e "        li   sp, %d" stack_top;
    emit e "        call fn_main";
    emit e "        li   r9, %d" result_addr;
    emit e "        sw   r1, 0(r9)";
    emit e "        halt";
    List.iter (gen_func e fenv) p.funcs;
    if e.uses_divmod then emit e "%s" divmod_routine;
    gen_data e fenv p;
    Buffer.contents e.buf
  with
  | asm -> Ok asm
  | exception Cg_error message -> Error { message }
