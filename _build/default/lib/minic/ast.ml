type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land
  | Lor
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

type unop = Neg | Lnot | Bnot

type expr =
  | Int of int
  | Var of string
  | Index of string * expr
  | Call of string * expr list
  | Unary of unop * expr
  | Binary of binop * expr * expr

type stmt =
  | Expr of expr
  | Assign of string * expr option * expr
  | If of expr * block * block option
  | While of expr * block
  | For of stmt option * expr option * stmt option * block
  | Return of expr option
  | Decl of string * expr option
  | Block of block

and block = stmt list

type global = Gvar of string * int option | Garr of string * int * int list option

type func = { name : string; params : string list; body : block }

type program = { globals : global list; funcs : func list }

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Land -> "&&"
  | Lor -> "||"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let unop_name = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"
