(** Recursive-descent parser for MiniC.

    Grammar sketch:
    {v
    program  := (global | func)*
    global   := "int" IDENT ("=" INT)? ";"
              | "int" IDENT "[" INT "]" ("=" "{" INT ("," INT)* "}")? ";"
    func     := "int" IDENT "(" params? ")" block
    block    := "{" stmt* "}"
    stmt     := "int" IDENT ("=" expr)? ";"
              | IDENT ("[" expr "]")? "=" expr ";"
              | "if" "(" expr ")" block ("else" (block | if-stmt))?
              | "while" "(" expr ")" block
              | "for" "(" simple? ";" expr? ";" simple? ")" block
              | "return" expr? ";"
              | block | expr ";"
    expr     := precedence climbing over || && | ^ & == != < <= > >=
                << >> + - * / % with unary - ! ~
    v} *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Ast.program, error) result
(** Lexes and parses a full translation unit. *)

val parse_expr : string -> (Ast.expr, error) result
(** Parses a single expression (for tests). *)
