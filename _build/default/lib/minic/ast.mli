(** Abstract syntax of MiniC, the small C subset that compiles to
    ERIS-32: 32-bit ints, global scalars and arrays, functions with
    value parameters and recursion, and the usual statement forms. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** truncating, C semantics *)
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land  (** short-circuit && *)
  | Lor  (** short-circuit || *)
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr  (** arithmetic shift, as on int *)

type unop =
  | Neg
  | Lnot  (** !x *)
  | Bnot  (** ~x *)

type expr =
  | Int of int
  | Var of string
  | Index of string * expr  (** a[i] on a global array *)
  | Call of string * expr list
  | Unary of unop * expr
  | Binary of binop * expr * expr

type stmt =
  | Expr of expr  (** evaluated for side effects *)
  | Assign of string * expr option * expr
      (** [Assign (x, None, e)] is [x = e]; [Assign (a, Some i, e)] is
          [a[i] = e] *)
  | If of expr * block * block option
  | While of expr * block
  | For of stmt option * expr option * stmt option * block
  | Return of expr option
  | Decl of string * expr option  (** [int x = e;] local *)
  | Block of block

and block = stmt list

type global =
  | Gvar of string * int option  (** [int x = 3;] *)
  | Garr of string * int * int list option
      (** [int a[4] = {1,2,3,4};] *)

type func = { name : string; params : string list; body : block }

type program = { globals : global list; funcs : func list }

val binop_name : binop -> string
val unop_name : unop -> string
