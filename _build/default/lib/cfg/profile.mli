(** Execution profiles: block and edge frequencies extracted from a
    basic-block trace. The pre-decompress-single policy uses edge
    probabilities to predict the most likely next block (paper, §4). *)

type t

val of_trace : Graph.t -> int array -> t
(** Counts block visits and edge traversals from a trace. Trace steps
    that do not correspond to a CFG edge are counted as blocks only. *)

val uniform : Graph.t -> t
(** A profile in which every outgoing edge of a block is equally
    likely (used when no profiling run is available). *)

val block_count : t -> int -> int
val edge_count : t -> src:int -> dst:int -> int

val edge_probability : t -> src:int -> dst:int -> float
(** Probability of taking [src -> dst] among the recorded outgoing
    traversals of [src]; falls back to uniform over successors when
    [src] was never left in the profile. *)

val hottest_successor : t -> int -> int option
(** Most frequently taken successor (ties broken by block id). *)

val hot_blocks : t -> fraction:float -> int list
(** Smallest set of blocks covering [fraction] of all block visits,
    hottest first. *)
