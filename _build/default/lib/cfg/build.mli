(** Construction of a CFG from an assembled ERIS-32 program.

    Basic blocks follow the classical leader rule (paper, §2): the
    entry instruction, every branch/jump target, and every instruction
    following a control transfer start a block; jumps end a block.

    Indirect jumps ([jalr]) cannot be resolved statically. We treat
    [jalr r0, …] as a {e return} and conservatively add edges to every
    recorded call-return site (the block following each [jal] that
    links [ra]), which over-approximates the real control flow — the
    CFG stays a conservative representation of all execution paths. *)

val leaders : Eris.Program.t -> int list
(** Sorted byte addresses of all basic-block leaders. *)

val of_program : Eris.Program.t -> Graph.t
(** Builds the CFG. Block 0 starts at address 0 (the entry).
    @raise Invalid_argument on an empty program. *)

val trace_of_run :
  ?fuel:int -> ?mem_init:(Eris.Machine.t -> unit) -> Eris.Program.t ->
  Graph.t * int array
(** [trace_of_run p] builds the CFG, executes [p] from a fresh machine
    ([mem_init] may preload inputs) and returns the dynamic basic-block
    trace as a sequence of block ids.
    @raise Eris.Machine.Fault if the program faults or runs out of
    fuel. *)
