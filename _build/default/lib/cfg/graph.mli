(** Control flow graphs over basic blocks.

    A CFG is a static, conservative representation of all potential
    execution paths of a program (paper, §2). Nodes are basic blocks;
    directed edges are the possible control transfers. *)

(** How control reaches a successor. *)
type edge_kind =
  | Fallthrough  (** implicit next block *)
  | Taken  (** branch or jump target *)
  | Call  (** [jal] with a live link register *)
  | Return  (** [jalr]-based return (conservative) *)

val edge_kind_name : edge_kind -> string

type block = {
  id : int;
  addr : int;  (** byte address of the first instruction *)
  n_instrs : int;
  byte_size : int;
  exec_cycles : int;  (** nominal cost of executing the block once *)
  label : string option;  (** symbol attached to [addr], if any *)
}

type t

val make :
  ?entry:int -> block array -> (int * int * edge_kind) list -> t
(** [make blocks edges] builds a graph. Blocks must be numbered
    [0 .. n-1] in array order.
    @raise Invalid_argument on bad ids or duplicate block ids. *)

val synthetic :
  ?block_bytes:int -> ?sizes:int array -> int -> (int * int) list -> t
(** [synthetic n edges] builds an [n]-block graph for policy studies
    detached from any real program: block [i] has
    [sizes.(i)] bytes (default [block_bytes], default 64) and
    [byte_size / 4] instructions costing 1 cycle each. All edges are
    [Taken]. *)

val num_blocks : t -> int
val entry : t -> int
val block : t -> int -> block
val blocks : t -> block array

val succs : t -> int -> (int * edge_kind) list
val preds : t -> int -> (int * edge_kind) list
val succ_ids : t -> int -> int list
val pred_ids : t -> int -> int list

val edges : t -> (int * int * edge_kind) list
(** All edges, ordered by source block id. *)

val num_edges : t -> int

val block_at_addr : t -> int -> int option
(** Block whose address range contains the given byte address. *)

val block_of_leader : t -> int -> int option
(** Block whose first instruction is at exactly the given address. *)

val total_bytes : t -> int
(** Sum of all block byte sizes (the uncompressed image size). *)

val exits : t -> int list
(** Blocks with no successors. *)

val reachable : t -> bool array
(** Reachability from the entry block. *)

val validate_trace : t -> int array -> (unit, string) result
(** Checks that a block-id trace starts at the entry and follows edges
    of the graph. *)

val pp_stats : Format.formatter -> t -> unit
