(** Forward edge distances over the CFG.

    The pre-decompression policies need "all blocks at most [k] edges
    away from the exit of the current block" (paper, §4): the direct
    successors are at distance 1, their successors at distance 2, and
    so on, taking the minimum over paths. *)

val within : Graph.t -> from:int -> k:int -> (int * int) list
(** [within g ~from ~k] is the list of [(block, distance)] pairs with
    [1 <= distance <= k], ordered by increasing distance (BFS order).
    [from] itself is included only if it is reachable from itself
    through a cycle of length <= k. *)

val distance : Graph.t -> src:int -> dst:int -> int option
(** Minimum number of edges from the exit of [src] to the entry of
    [dst]; [None] if unreachable. [distance ~src ~dst:src] is the
    length of the shortest cycle through [src], not 0. *)

val all_distances : Graph.t -> from:int -> int array
(** Array of minimum forward distances ([max_int] when unreachable). *)
