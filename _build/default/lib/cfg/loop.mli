(** Natural-loop detection from back edges (an edge [t -> h] is a back
    edge when [h] dominates [t]). A cycle in the CFG may imply a loop
    in the application code (paper, §2); loop membership is what the
    cold-code baseline and the workload analyses use to separate hot
    from cold blocks. *)

type loop = {
  header : int;
  back_edges : (int * int) list;  (** latch -> header edges *)
  body : int list;  (** sorted block ids, header included *)
}

val detect : Graph.t -> loop list
(** Natural loops, one per header (loops sharing a header are merged),
    sorted by header id. *)

val loop_depth : Graph.t -> int array
(** For each block, the number of detected loops containing it. *)

val in_any_loop : Graph.t -> bool array
