(** Graphviz export of CFGs, for debugging and documentation. *)

val to_string :
  ?name:string ->
  ?highlight:int list ->
  ?block_label:(Graph.block -> string) ->
  Graph.t ->
  string
(** DOT source for the graph. [highlight]ed blocks are filled;
    [block_label] overrides the default ["B<id> (<bytes>B)"] label. *)

val write_file :
  ?name:string ->
  ?highlight:int list ->
  ?block_label:(Graph.block -> string) ->
  string ->
  Graph.t ->
  unit
