lib/cfg/dist.ml: Array Graph List Queue
