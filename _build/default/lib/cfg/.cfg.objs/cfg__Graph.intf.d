lib/cfg/graph.mli: Format
