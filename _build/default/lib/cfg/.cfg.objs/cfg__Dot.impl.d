lib/cfg/dot.ml: Array Buffer Fun Graph List Printf
