lib/cfg/profile.mli: Graph
