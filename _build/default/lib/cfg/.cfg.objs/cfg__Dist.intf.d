lib/cfg/dist.mli: Graph
