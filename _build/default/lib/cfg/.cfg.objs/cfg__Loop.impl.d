lib/cfg/loop.ml: Array Dom Graph Hashtbl Int List Set
