lib/cfg/build.ml: Array Eris Graph Hashtbl Int List Set
