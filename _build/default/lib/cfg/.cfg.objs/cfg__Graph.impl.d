lib/cfg/graph.ml: Array Format List Printf String
