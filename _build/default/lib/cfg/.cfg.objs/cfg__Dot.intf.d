lib/cfg/dot.mli: Graph
