lib/cfg/build.mli: Eris Graph
