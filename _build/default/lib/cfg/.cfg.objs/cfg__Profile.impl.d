lib/cfg/profile.ml: Array Graph Hashtbl List Option
