(** Dominator analysis (iterative dataflow, Cooper–Harvey–Kennedy
    style on reverse postorder). Only blocks reachable from the entry
    get a dominator; unreachable blocks report [None]. *)

type t

val compute : Graph.t -> t

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry and unreachable blocks. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] iff [a] dominates [b] (reflexive). *)

val dominators : t -> int -> int list
(** All dominators of a block, from the block itself up to the entry. *)

val reverse_postorder : Graph.t -> int array
(** Reverse postorder of the reachable blocks. *)
