type loop = {
  header : int;
  back_edges : (int * int) list;
  body : int list;
}

module IntSet = Set.Make (Int)

(* Natural loop of back edge (latch, header): header plus all blocks
   that reach the latch without passing through the header. *)
let natural_loop g header latch =
  let body = ref (IntSet.singleton header) in
  let rec pull b =
    if not (IntSet.mem b !body) then begin
      body := IntSet.add b !body;
      List.iter pull (Graph.pred_ids g b)
    end
  in
  pull latch;
  !body

let detect g =
  let dom = Dom.compute g in
  let back_edges = ref [] in
  List.iter
    (fun (src, dst, _) ->
      if Dom.dominates dom dst src then back_edges := (src, dst) :: !back_edges)
    (Graph.edges g);
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let body = natural_loop g header latch in
      match Hashtbl.find_opt by_header header with
      | None -> Hashtbl.replace by_header header ([ (latch, header) ], body)
      | Some (es, b) ->
        Hashtbl.replace by_header header
          ((latch, header) :: es, IntSet.union b body))
    !back_edges;
  Hashtbl.fold
    (fun header (es, body) acc ->
      { header; back_edges = List.rev es; body = IntSet.elements body } :: acc)
    by_header []
  |> List.sort (fun a b -> compare a.header b.header)

let loop_depth g =
  let n = Graph.num_blocks g in
  let depth = Array.make n 0 in
  List.iter
    (fun l -> List.iter (fun b -> depth.(b) <- depth.(b) + 1) l.body)
    (detect g);
  depth

let in_any_loop g = Array.map (fun d -> d > 0) (loop_depth g)
