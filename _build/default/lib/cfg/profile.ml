type t = {
  graph : Graph.t;
  blocks : int array;
  edges : (int * int, int) Hashtbl.t;
  out_total : int array;
}

let of_trace g trace =
  let n = Graph.num_blocks g in
  let blocks = Array.make n 0 in
  let edges = Hashtbl.create 64 in
  let out_total = Array.make n 0 in
  let len = Array.length trace in
  for i = 0 to len - 1 do
    let b = trace.(i) in
    if b >= 0 && b < n then begin
      blocks.(b) <- blocks.(b) + 1;
      if i + 1 < len then begin
        let d = trace.(i + 1) in
        if List.mem d (Graph.succ_ids g b) then begin
          let key = (b, d) in
          Hashtbl.replace edges key
            (1 + Option.value ~default:0 (Hashtbl.find_opt edges key));
          out_total.(b) <- out_total.(b) + 1
        end
      end
    end
  done;
  { graph = g; blocks; edges; out_total }

let uniform g = of_trace g [||]

let block_count t b = t.blocks.(b)

let edge_count t ~src ~dst =
  Option.value ~default:0 (Hashtbl.find_opt t.edges (src, dst))

let edge_probability t ~src ~dst =
  let succ = Graph.succ_ids t.graph src in
  if not (List.mem dst succ) then 0.0
  else if t.out_total.(src) = 0 then 1.0 /. float_of_int (List.length succ)
  else float_of_int (edge_count t ~src ~dst) /. float_of_int t.out_total.(src)

let hottest_successor t b =
  match Graph.succ_ids t.graph b with
  | [] -> None
  | succ ->
    let best =
      List.fold_left
        (fun acc s ->
          let c = edge_count t ~src:b ~dst:s in
          match acc with
          | None -> Some (s, c)
          | Some (_, bc) when c > bc -> Some (s, c)
          | Some _ -> acc)
        None succ
    in
    Option.map fst best

let hot_blocks t ~fraction =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Cfg.Profile.hot_blocks: fraction must be in [0,1]";
  let total = Array.fold_left ( + ) 0 t.blocks in
  if total = 0 then []
  else begin
    let order =
      Array.mapi (fun i c -> (i, c)) t.blocks
      |> Array.to_list
      |> List.sort (fun (i1, c1) (i2, c2) ->
             if c1 <> c2 then compare c2 c1 else compare i1 i2)
    in
    let target = fraction *. float_of_int total in
    let rec take acc covered = function
      | [] -> List.rev acc
      | (_, 0) :: _ -> List.rev acc
      | (b, c) :: rest ->
        if float_of_int covered >= target then List.rev acc
        else take (b :: acc) (covered + c) rest
    in
    take [] 0 order
  end
