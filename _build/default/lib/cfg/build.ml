module IntSet = Set.Make (Int)

let branch_target pc off = pc + 4 + (4 * off)

let leaders prog =
  let n = Eris.Program.length prog in
  let set = ref (IntSet.singleton 0) in
  let add addr = if addr >= 0 && addr < n * 4 then set := IntSet.add addr !set in
  Array.iteri
    (fun i ins ->
      let pc = i * 4 in
      match (ins : Eris.Types.instruction) with
      | Branch (_, _, _, off) ->
        add (branch_target pc off);
        add (pc + 4)
      | Jal (_, off) ->
        add (branch_target pc off);
        add (pc + 4)
      | Jalr _ | Halt -> add (pc + 4)
      | Alu _ | Alui _ | Lui _ | Load _ | Store _ -> ())
    prog.Eris.Program.instrs;
  IntSet.elements !set

let of_program prog =
  let n = Eris.Program.length prog in
  if n = 0 then invalid_arg "Cfg.Build.of_program: empty program";
  let leader_list = leaders prog in
  let leader_arr = Array.of_list leader_list in
  let num = Array.length leader_arr in
  let block_end i = if i + 1 < num then leader_arr.(i + 1) else n * 4 in
  let blocks =
    Array.init num (fun i ->
        let addr = leader_arr.(i) in
        let stop = block_end i in
        let n_instrs = (stop - addr) / 4 in
        let exec_cycles = ref 0 in
        for j = addr / 4 to (stop / 4) - 1 do
          exec_cycles :=
            !exec_cycles + Eris.Types.cycle_cost prog.Eris.Program.instrs.(j)
        done;
        {
          Graph.id = i;
          addr;
          n_instrs;
          byte_size = stop - addr;
          exec_cycles = !exec_cycles;
          label = Eris.Program.symbol_at prog addr;
        })
  in
  let block_of_addr =
    let tbl = Hashtbl.create num in
    Array.iteri (fun i addr -> Hashtbl.add tbl addr i) leader_arr;
    fun addr -> Hashtbl.find_opt tbl addr
  in
  (* Return sites: the block following each linking jal. *)
  let return_sites = ref [] in
  Array.iteri
    (fun i ins ->
      match (ins : Eris.Types.instruction) with
      | Jal (rd, _) when Eris.Types.reg_index rd <> 0 -> (
        match block_of_addr ((i * 4) + 4) with
        | Some b -> return_sites := b :: !return_sites
        | None -> ())
      | Jal _ | Jalr _ | Halt | Branch _ | Alu _ | Alui _ | Lui _ | Load _
      | Store _ -> ())
    prog.Eris.Program.instrs;
  let return_sites = List.sort_uniq compare !return_sites in
  let edges = ref [] in
  let add src dst kind = edges := (src, dst, kind) :: !edges in
  Array.iteri
    (fun b _ ->
      let last_pc = block_end b - 4 in
      let last = prog.Eris.Program.instrs.(last_pc / 4) in
      let fallthrough kind =
        if b + 1 < num then add b (b + 1) kind
      in
      match (last : Eris.Types.instruction) with
      | Branch (_, _, _, off) ->
        (match block_of_addr (branch_target last_pc off) with
        | Some dst -> add b dst Graph.Taken
        | None -> ());
        fallthrough Graph.Fallthrough
      | Jal (rd, off) -> (
        match block_of_addr (branch_target last_pc off) with
        | Some dst ->
          add b dst
            (if Eris.Types.reg_index rd <> 0 then Graph.Call else Graph.Taken)
        | None -> ())
      | Jalr _ ->
        List.iter (fun site -> add b site Graph.Return) return_sites
      | Halt -> ()
      | Alu _ | Alui _ | Lui _ | Load _ | Store _ ->
        fallthrough Graph.Fallthrough)
    blocks;
  Graph.make blocks (List.rev !edges)

let trace_of_run ?fuel ?(mem_init = fun _ -> ()) prog =
  let graph = of_program prog in
  let machine = Eris.Machine.create prog in
  mem_init machine;
  let trace = ref [] in
  let on_block addr =
    match Graph.block_of_leader graph addr with
    | Some b -> trace := b :: !trace
    | None -> ()
  in
  let _ =
    Eris.Machine.run ?fuel ~leaders:(leaders prog) ~on_block machine
  in
  if not (Eris.Machine.halted machine) then
    raise
      (Eris.Machine.Fault
         { pc = Eris.Machine.pc machine; message = "trace run did not halt" });
  (graph, Array.of_list (List.rev !trace))
