type edge_kind = Fallthrough | Taken | Call | Return

let edge_kind_name = function
  | Fallthrough -> "fallthrough"
  | Taken -> "taken"
  | Call -> "call"
  | Return -> "return"

type block = {
  id : int;
  addr : int;
  n_instrs : int;
  byte_size : int;
  exec_cycles : int;
  label : string option;
}

type t = {
  blocks : block array;
  succs : (int * edge_kind) list array;
  preds : (int * edge_kind) list array;
  entry : int;
}

let make ?(entry = 0) blocks edges =
  let n = Array.length blocks in
  if n = 0 then invalid_arg "Cfg.Graph.make: empty graph";
  Array.iteri
    (fun i b ->
      if b.id <> i then
        invalid_arg
          (Printf.sprintf "Cfg.Graph.make: block at index %d has id %d" i b.id))
    blocks;
  if entry < 0 || entry >= n then invalid_arg "Cfg.Graph.make: bad entry";
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  List.iter
    (fun (src, dst, kind) ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg (Printf.sprintf "Cfg.Graph.make: bad edge %d -> %d" src dst);
      succs.(src) <- (dst, kind) :: succs.(src);
      preds.(dst) <- (src, kind) :: preds.(dst))
    edges;
  (* Keep deterministic order: as given. *)
  Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  { blocks; succs; preds; entry }

let synthetic ?(block_bytes = 64) ?sizes n edges =
  if n <= 0 then invalid_arg "Cfg.Graph.synthetic: n must be positive";
  let size i =
    match sizes with
    | Some a ->
      if Array.length a <> n then
        invalid_arg "Cfg.Graph.synthetic: sizes length mismatch"
      else a.(i)
    | None -> block_bytes
  in
  let blocks =
    Array.init n (fun i ->
        let byte_size = size i in
        {
          id = i;
          addr = i * 1024;
          n_instrs = max 1 (byte_size / 4);
          byte_size;
          exec_cycles = max 1 (byte_size / 4);
          label = None;
        })
  in
  make blocks (List.map (fun (a, b) -> (a, b, Taken)) edges)

let num_blocks t = Array.length t.blocks
let entry t = t.entry
let block t i = t.blocks.(i)
let blocks t = t.blocks
let succs t i = t.succs.(i)
let preds t i = t.preds.(i)
let succ_ids t i = List.map fst t.succs.(i)
let pred_ids t i = List.map fst t.preds.(i)

let edges t =
  let acc = ref [] in
  for i = Array.length t.blocks - 1 downto 0 do
    List.iter (fun (dst, k) -> acc := (i, dst, k) :: !acc) (List.rev t.succs.(i))
  done;
  !acc

let num_edges t = Array.fold_left (fun n l -> n + List.length l) 0 t.succs

let block_at_addr t addr =
  (* Blocks are in increasing address order when built from a program;
     fall back to a linear scan otherwise. *)
  let n = Array.length t.blocks in
  let rec bsearch lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      let b = t.blocks.(mid) in
      if addr < b.addr then bsearch lo (mid - 1)
      else if addr >= b.addr + b.byte_size then bsearch (mid + 1) hi
      else Some mid
  in
  let sorted =
    let rec ok i =
      i >= n - 1 || (t.blocks.(i).addr < t.blocks.(i + 1).addr && ok (i + 1))
    in
    ok 0
  in
  if sorted then bsearch 0 (n - 1)
  else
    let found = ref None in
    Array.iter
      (fun b ->
        if addr >= b.addr && addr < b.addr + b.byte_size then found := Some b.id)
      t.blocks;
    !found

let block_of_leader t addr =
  match block_at_addr t addr with
  | Some i when t.blocks.(i).addr = addr -> Some i
  | Some _ | None -> None

let total_bytes t = Array.fold_left (fun n b -> n + b.byte_size) 0 t.blocks

let exits t =
  let acc = ref [] in
  for i = Array.length t.blocks - 1 downto 0 do
    if t.succs.(i) = [] then acc := i :: !acc
  done;
  !acc

let reachable t =
  let n = num_blocks t in
  let seen = Array.make n false in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter (fun (j, _) -> dfs j) t.succs.(i)
    end
  in
  dfs t.entry;
  seen

let validate_trace t trace =
  let n = num_blocks t in
  let len = Array.length trace in
  if len = 0 then Ok ()
  else if trace.(0) <> t.entry then
    Error (Printf.sprintf "trace starts at block %d, not entry %d" trace.(0) t.entry)
  else
    let rec check i =
      if i >= len then Ok ()
      else
        let src = trace.(i - 1) and dst = trace.(i) in
        if src < 0 || src >= n || dst < 0 || dst >= n then
          Error (Printf.sprintf "trace position %d: bad block id" i)
        else if List.mem dst (succ_ids t src) then check (i + 1)
        else
          Error
            (Printf.sprintf "trace position %d: no edge %d -> %d" i src dst)
    in
    check 1

let pp_stats ppf t =
  Format.fprintf ppf
    "blocks: %d; edges: %d; bytes: %d; entry: %d; exits: [%s]" (num_blocks t)
    (num_edges t) (total_bytes t) t.entry
    (String.concat "; " (List.map string_of_int (exits t)))
