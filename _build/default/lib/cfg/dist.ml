let bfs g ~from ~limit ~visit =
  let n = Graph.num_blocks g in
  let dist = Array.make n max_int in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) = max_int then begin
        dist.(s) <- 1;
        Queue.add s q
      end)
    (Graph.succ_ids g from);
  while not (Queue.is_empty q) do
    let b = Queue.pop q in
    visit b dist.(b);
    if dist.(b) < limit then
      List.iter
        (fun s ->
          if dist.(s) = max_int then begin
            dist.(s) <- dist.(b) + 1;
            Queue.add s q
          end)
        (Graph.succ_ids g b)
  done;
  dist

let within g ~from ~k =
  if k < 0 then invalid_arg "Cfg.Dist.within: negative k";
  let acc = ref [] in
  let _ = bfs g ~from ~limit:k ~visit:(fun b d -> acc := (b, d) :: !acc) in
  List.rev !acc

let all_distances g ~from =
  bfs g ~from ~limit:(Graph.num_blocks g + 1) ~visit:(fun _ _ -> ())

let distance g ~src ~dst =
  let dist = all_distances g ~from:src in
  if dist.(dst) = max_int then None else Some dist.(dst)
