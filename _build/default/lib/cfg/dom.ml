type t = { graph : Graph.t; idoms : int array (* -1 = none *) }

let reverse_postorder g =
  let n = Graph.num_blocks g in
  let seen = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs (Graph.succ_ids g i);
      order := i :: !order
    end
  in
  dfs (Graph.entry g);
  Array.of_list !order

let compute g =
  let n = Graph.num_blocks g in
  let rpo = reverse_postorder g in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let idoms = Array.make n (-1) in
  let entry = Graph.entry g in
  idoms.(entry) <- entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_index.(!a) > rpo_index.(!b) do
        a := idoms.(!a)
      done;
      while rpo_index.(!b) > rpo_index.(!a) do
        b := idoms.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> entry then begin
          let processed =
            List.filter (fun p -> idoms.(p) <> -1) (Graph.pred_ids g b)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idoms.(b) <> new_idom then begin
              idoms.(b) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  { graph = g; idoms }

let idom t b =
  let entry = Graph.entry t.graph in
  if b = entry || t.idoms.(b) = -1 then None else Some t.idoms.(b)

let dominators t b =
  let entry = Graph.entry t.graph in
  if t.idoms.(b) = -1 then []
  else
    let rec up acc b =
      if b = entry then List.rev (entry :: acc) else up (b :: acc) t.idoms.(b)
    in
    up [] b

let dominates t a b =
  if t.idoms.(b) = -1 then false
  else
    let entry = Graph.entry t.graph in
    let rec walk b = if b = a then true else if b = entry then a = entry else walk t.idoms.(b) in
    walk b
