let default_label (b : Graph.block) =
  match b.label with
  | Some s -> Printf.sprintf "%s\\nB%d (%dB)" s b.id b.byte_size
  | None -> Printf.sprintf "B%d (%dB)" b.id b.byte_size

let to_string ?(name = "cfg") ?(highlight = []) ?(block_label = default_label) g
    =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  Array.iter
    (fun (b : Graph.block) ->
      let style =
        if List.mem b.id highlight then ", style=filled, fillcolor=lightblue"
        else if b.id = Graph.entry g then ", style=bold"
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  b%d [label=\"%s\"%s];\n" b.id (block_label b) style))
    (Graph.blocks g);
  List.iter
    (fun (src, dst, kind) ->
      let attr =
        match (kind : Graph.edge_kind) with
        | Graph.Fallthrough -> ""
        | Taken -> " [style=solid]"
        | Call -> " [style=dashed, label=call]"
        | Return -> " [style=dotted, label=ret]"
      in
      Buffer.add_string buf (Printf.sprintf "  b%d -> b%d%s;\n" src dst attr))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?name ?highlight ?block_label path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name ?highlight ?block_label g))
