(** Binary encoding of ERIS-32 instructions.

    Every instruction occupies exactly 32 bits:

    {v
    bits 31..26  opcode
    bits 25..22  rd   (rs1 for branches)
    bits 21..18  rs1  (rs2 for branches)
    bits 17..14  rs2
    bits 13..0   imm14 (signed)          ALU-imm, loads, stores, jalr
    bits 17..0   imm18 (signed/unsigned) branches / lui
    bits 21..0   imm22 (signed)          jal
    v}

    [decode (encode i) = Ok i] for every valid instruction. *)

exception Decode_error of string

val encode : Types.instruction -> int
(** [encode i] is the 32-bit word for [i], in [0, 2{^32}).
    @raise Invalid_argument if an immediate does not fit (see
    {!Types.validate}). *)

val decode : int -> (Types.instruction, string) result
(** [decode w] decodes the 32-bit word [w]. *)

val decode_exn : int -> Types.instruction
(** @raise Decode_error on invalid words. *)

val encode_program : Types.instruction array -> bytes
(** Little-endian concatenation of the encoded words. *)

val decode_program : bytes -> (Types.instruction array, string) result
(** Inverse of {!encode_program}; fails if the length is not a multiple
    of 4 or any word is invalid. *)

val read_word : bytes -> int -> int
(** [read_word b off] reads a little-endian 32-bit word. *)

val write_word : bytes -> int -> int -> unit
