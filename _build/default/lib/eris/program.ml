type t = {
  instrs : Types.instruction array;
  image : bytes;
  symbols : (string * int) list;
  data : (int * int) list;
}

let of_instructions ?(symbols = []) instrs =
  { instrs; image = Encoding.encode_program instrs; symbols; data = [] }

let length p = Array.length p.instrs
let byte_size p = Bytes.length p.image

let instr_at p addr =
  if addr < 0 || addr >= byte_size p || addr mod 4 <> 0 then
    invalid_arg (Printf.sprintf "Eris.Program.instr_at: bad address %d" addr);
  p.instrs.(addr / 4)

let address_of_symbol p name = List.assoc_opt name p.symbols

let symbol_at p addr =
  List.fold_left
    (fun acc (name, a) -> if a = addr then Some name else acc)
    None p.symbols

let slice_bytes p ~lo ~hi =
  if lo < 0 || hi > byte_size p || lo > hi then
    invalid_arg "Eris.Program.slice_bytes";
  Bytes.sub p.image lo (hi - lo)

let pp_listing ppf p =
  Array.iteri
    (fun i ins ->
      let addr = i * 4 in
      (match symbol_at p addr with
      | Some s -> Format.fprintf ppf "%s:@." s
      | None -> ());
      Format.fprintf ppf "  %04x:  %a@." addr Types.pp ins)
    p.instrs
