(** Core definitions of the ERIS-32 embedded instruction set.

    ERIS-32 is a small Harvard-architecture RISC ISA used as the target
    processor for the code-compression experiments: 16 general-purpose
    32-bit registers, fixed-width 32-bit instructions, byte-addressed
    data memory and word-aligned instruction memory. *)

(** A register index in [0, 15]. [r0] always reads as zero; writes to it
    are discarded. By convention [r13] is the stack pointer, [r14] the
    frame pointer and [r15] the link register. *)
type reg = private int

val reg : int -> reg
(** [reg i] validates [i] as a register index.
    @raise Invalid_argument if [i] is outside [0, 15]. *)

val reg_index : reg -> int
(** [reg_index r] is the raw index of [r]. *)

val r0 : reg
val sp : reg
val fp : reg
val ra : reg

val reg_name : reg -> string
(** Canonical name, e.g. ["r3"]; [r13]-[r15] print as
    ["sp"], ["fp"], ["ra"]. *)

val reg_of_name : string -> reg option
(** Parses ["r0"].. ["r15"] and the aliases ["zero"], ["sp"], ["fp"],
    ["ra"]. *)

(** Arithmetic/logic operations, shared by the register and immediate
    instruction forms. *)
type alu_op =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Slt
  | Mul

val alu_op_name : alu_op -> string
val all_alu_ops : alu_op list

(** Branch conditions; comparisons are signed. *)
type cond =
  | Eq
  | Ne
  | Lt
  | Ge

val cond_name : cond -> string
val all_conds : cond list

(** Memory access width. *)
type width =
  | W8
  | W32

(** An ERIS-32 instruction. Branch and jump offsets are in {e words}
    relative to the address of the next instruction (pc + 4). *)
type instruction =
  | Alu of alu_op * reg * reg * reg  (** [Alu (op, rd, rs1, rs2)] *)
  | Alui of alu_op * reg * reg * int
      (** [Alui (op, rd, rs1, imm)]; [imm] is a signed 14-bit value. *)
  | Lui of reg * int
      (** [Lui (rd, imm)]: [rd <- imm lsl 14]; [imm] is unsigned 18-bit. *)
  | Load of width * reg * reg * int
      (** [Load (w, rd, rs1, off)]: [rd <- mem.(rs1 + off)]. *)
  | Store of width * reg * reg * int
      (** [Store (w, rs2, rs1, off)]: [mem.(rs1 + off) <- rs2]. *)
  | Branch of cond * reg * reg * int
      (** [Branch (c, rs1, rs2, off)]: signed 18-bit word offset. *)
  | Jal of reg * int
      (** [Jal (rd, off)]: [rd <- pc + 4]; signed 22-bit word offset. *)
  | Jalr of reg * reg * int
      (** [Jalr (rd, rs1, off)]: [rd <- pc + 4]; [pc <- rs1 + off]. *)
  | Halt  (** Stops the machine. *)

val imm14_fits : int -> bool
val imm18_fits : int -> bool
val imm22_fits : int -> bool
val uimm14_fits : int -> bool
val uimm18_fits : int -> bool

val alu_imm_unsigned : alu_op -> bool
(** Logical immediates ([And], [Or], [Xor]) are zero-extended from
    their 14-bit field; all others are sign-extended. *)

val alui_imm_fits : alu_op -> int -> bool

val validate : instruction -> (unit, string) result
(** [validate i] checks that every immediate fits its encoding field. *)

val instruction_size : int
(** Size of one encoded instruction in bytes (4). *)

val is_control_transfer : instruction -> bool
(** Branches, jumps and [Halt]: instructions that can end a basic
    block. *)

val cycle_cost : instruction -> int
(** Nominal execution cost in cycles: 1 for ALU and jumps, 2 for memory
    accesses and taken-path branches, 3 for [Mul], 1 for [Halt]. *)

val pp : Format.formatter -> instruction -> unit
(** Assembly-syntax printer (the inverse of {!Asm.parse_line} for
    well-formed instructions). *)

val to_string : instruction -> string

val equal : instruction -> instruction -> bool
