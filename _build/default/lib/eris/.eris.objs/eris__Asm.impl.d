lib/eris/asm.ml: Array Encoding Format Hashtbl List Printf Program Result String Types
