lib/eris/program.mli: Format Types
