lib/eris/asm.mli: Format Program Types
