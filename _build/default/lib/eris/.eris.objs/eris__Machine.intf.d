lib/eris/machine.mli: Program Types
