lib/eris/builder.mli: Program Types
