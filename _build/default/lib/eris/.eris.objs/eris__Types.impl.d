lib/eris/types.ml: Format Printf String
