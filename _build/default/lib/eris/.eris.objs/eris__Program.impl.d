lib/eris/program.ml: Array Bytes Encoding Format List Printf Types
