lib/eris/encoding.mli: Types
