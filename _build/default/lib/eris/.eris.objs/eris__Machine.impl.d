lib/eris/machine.ml: Array Bytes Char Encoding List Printf Program Types
