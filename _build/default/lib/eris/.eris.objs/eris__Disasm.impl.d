lib/eris/disasm.ml: Bytes Char Encoding Format List Printf String Types
