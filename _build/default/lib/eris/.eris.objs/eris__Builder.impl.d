lib/eris/builder.ml: Array Hashtbl List Printf Program Types
