lib/eris/encoding.ml: Array Bytes Char List Printf Types
