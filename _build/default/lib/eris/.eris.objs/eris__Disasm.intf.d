lib/eris/disasm.mli: Format
