lib/eris/types.mli: Format
