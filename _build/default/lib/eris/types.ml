type reg = int

let reg i =
  if i < 0 || i > 15 then invalid_arg (Printf.sprintf "Eris.Types.reg: %d" i);
  i

let reg_index r = r
let r0 = 0
let sp = 13
let fp = 14
let ra = 15

let reg_name r =
  match r with
  | 13 -> "sp"
  | 14 -> "fp"
  | 15 -> "ra"
  | n -> "r" ^ string_of_int n

let reg_of_name s =
  match s with
  | "zero" -> Some 0
  | "sp" -> Some 13
  | "fp" -> Some 14
  | "ra" -> Some 15
  | _ ->
    let n = String.length s in
    if n >= 2 && n <= 3 && s.[0] = 'r' then
      match int_of_string_opt (String.sub s 1 (n - 1)) with
      | Some i when i >= 0 && i <= 15 -> Some i
      | Some _ | None -> None
    else None

type alu_op = Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Mul

let alu_op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"
  | Slt -> "slt"
  | Mul -> "mul"

let all_alu_ops = [ Add; Sub; And; Or; Xor; Sll; Srl; Sra; Slt; Mul ]

type cond = Eq | Ne | Lt | Ge

let cond_name = function Eq -> "beq" | Ne -> "bne" | Lt -> "blt" | Ge -> "bge"
let all_conds = [ Eq; Ne; Lt; Ge ]

type width = W8 | W32

type instruction =
  | Alu of alu_op * reg * reg * reg
  | Alui of alu_op * reg * reg * int
  | Lui of reg * int
  | Load of width * reg * reg * int
  | Store of width * reg * reg * int
  | Branch of cond * reg * reg * int
  | Jal of reg * int
  | Jalr of reg * reg * int
  | Halt

let fits_signed bits v =
  let bound = 1 lsl (bits - 1) in
  v >= -bound && v < bound

let imm14_fits v = fits_signed 14 v
let imm18_fits v = fits_signed 18 v
let imm22_fits v = fits_signed 22 v
let uimm14_fits v = v >= 0 && v < 1 lsl 14
let uimm18_fits v = v >= 0 && v < 1 lsl 18

(* Logical immediates are zero-extended from their 14-bit field;
   arithmetic, comparison and shift immediates are sign-extended. *)
let alu_imm_unsigned = function
  | And | Or | Xor -> true
  | Add | Sub | Sll | Srl | Sra | Slt | Mul -> false

let alui_imm_fits op imm =
  if alu_imm_unsigned op then uimm14_fits imm else imm14_fits imm

let validate i =
  let check ok what v =
    if ok then Ok () else Error (Printf.sprintf "%s out of range: %d" what v)
  in
  match i with
  | Alu _ | Halt -> Ok ()
  | Alui (op, _, _, imm) -> check (alui_imm_fits op imm) "imm14" imm
  | Lui (_, imm) -> check (uimm18_fits imm) "uimm18" imm
  | Load (_, _, _, off) | Store (_, _, _, off) | Jalr (_, _, off) ->
    check (imm14_fits off) "imm14" off
  | Branch (_, _, _, off) -> check (imm18_fits off) "imm18" off
  | Jal (_, off) -> check (imm22_fits off) "imm22" off

let instruction_size = 4

let is_control_transfer = function
  | Branch _ | Jal _ | Jalr _ | Halt -> true
  | Alu _ | Alui _ | Lui _ | Load _ | Store _ -> false

let cycle_cost = function
  | Alu (Mul, _, _, _) | Alui (Mul, _, _, _) -> 3
  | Alu _ | Alui _ | Lui _ -> 1
  | Load _ | Store _ -> 2
  | Branch _ -> 2
  | Jal _ | Jalr _ -> 1
  | Halt -> 1

let pp ppf i =
  let r = reg_name in
  match i with
  | Alu (op, rd, rs1, rs2) ->
    Format.fprintf ppf "%s %s, %s, %s" (alu_op_name op) (r rd) (r rs1) (r rs2)
  | Alui (op, rd, rs1, imm) ->
    Format.fprintf ppf "%si %s, %s, %d" (alu_op_name op) (r rd) (r rs1) imm
  | Lui (rd, imm) -> Format.fprintf ppf "lui %s, %d" (r rd) imm
  | Load (W32, rd, rs1, off) ->
    Format.fprintf ppf "lw %s, %d(%s)" (r rd) off (r rs1)
  | Load (W8, rd, rs1, off) ->
    Format.fprintf ppf "lb %s, %d(%s)" (r rd) off (r rs1)
  | Store (W32, rs2, rs1, off) ->
    Format.fprintf ppf "sw %s, %d(%s)" (r rs2) off (r rs1)
  | Store (W8, rs2, rs1, off) ->
    Format.fprintf ppf "sb %s, %d(%s)" (r rs2) off (r rs1)
  | Branch (c, rs1, rs2, off) ->
    Format.fprintf ppf "%s %s, %s, %d" (cond_name c) (r rs1) (r rs2) off
  | Jal (rd, off) -> Format.fprintf ppf "jal %s, %d" (r rd) off
  | Jalr (rd, rs1, off) ->
    Format.fprintf ppf "jalr %s, %s, %d" (r rd) (r rs1) off
  | Halt -> Format.fprintf ppf "halt"

let to_string i = Format.asprintf "%a" pp i
let equal (a : instruction) (b : instruction) = a = b
