exception Decode_error of string

let opcode_alu op =
  match (op : Types.alu_op) with
  | Add -> 1
  | Sub -> 2
  | And -> 3
  | Or -> 4
  | Xor -> 5
  | Sll -> 6
  | Srl -> 7
  | Sra -> 8
  | Slt -> 9
  | Mul -> 10

let alu_of_opcode = function
  | 1 -> Types.Add
  | 2 -> Sub
  | 3 -> And
  | 4 -> Or
  | 5 -> Xor
  | 6 -> Sll
  | 7 -> Srl
  | 8 -> Sra
  | 9 -> Slt
  | 10 -> Mul
  | n -> raise (Decode_error (Printf.sprintf "bad ALU opcode %d" n))

let opcode_branch c =
  match (c : Types.cond) with Eq -> 26 | Ne -> 27 | Lt -> 28 | Ge -> 29

(* Field helpers.  Signed immediates are stored in two's complement
   within their field width. *)
let mask bits = (1 lsl bits) - 1
let to_field bits v = v land mask bits

let of_signed_field bits v =
  if v land (1 lsl (bits - 1)) <> 0 then v - (1 lsl bits) else v

let rix = Types.reg_index

let encode i =
  (match Types.validate i with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Eris.Encoding.encode: " ^ msg));
  let word op rd rs1 rs2 imm_bits imm =
    (op lsl 26) lor (rd lsl 22) lor (rs1 lsl 18) lor (rs2 lsl 14)
    lor to_field imm_bits imm
  in
  match i with
  | Types.Alu (op, rd, rs1, rs2) ->
    word (opcode_alu op) (rix rd) (rix rs1) (rix rs2) 14 0
  | Alui (op, rd, rs1, imm) ->
    word (10 + opcode_alu op) (rix rd) (rix rs1) 0 14 imm
  | Lui (rd, imm) -> (21 lsl 26) lor (rix rd lsl 22) lor to_field 18 imm
  | Load (W32, rd, rs1, off) -> word 22 (rix rd) (rix rs1) 0 14 off
  | Load (W8, rd, rs1, off) -> word 23 (rix rd) (rix rs1) 0 14 off
  | Store (W32, rs2, rs1, off) -> word 24 (rix rs2) (rix rs1) 0 14 off
  | Store (W8, rs2, rs1, off) -> word 25 (rix rs2) (rix rs1) 0 14 off
  | Branch (c, rs1, rs2, off) ->
    (opcode_branch c lsl 26)
    lor (rix rs1 lsl 22)
    lor (rix rs2 lsl 18)
    lor to_field 18 off
  | Jal (rd, off) -> (30 lsl 26) lor (rix rd lsl 22) lor to_field 22 off
  | Jalr (rd, rs1, off) -> word 31 (rix rd) (rix rs1) 0 14 off
  | Halt -> 32 lsl 26

let decode w =
  if w < 0 || w > 0xFFFFFFFF then Error (Printf.sprintf "word out of range: %d" w)
  else
    let op = (w lsr 26) land mask 6 in
    let rd = Types.reg ((w lsr 22) land mask 4) in
    let rs1 = Types.reg ((w lsr 18) land mask 4) in
    let rs2 = Types.reg ((w lsr 14) land mask 4) in
    let imm14 = of_signed_field 14 (w land mask 14) in
    let imm18 = of_signed_field 18 (w land mask 18) in
    let uimm18 = w land mask 18 in
    let imm22 = of_signed_field 22 (w land mask 22) in
    try
      match op with
      | n when n >= 1 && n <= 10 -> Ok (Types.Alu (alu_of_opcode n, rd, rs1, rs2))
      | n when n >= 11 && n <= 20 ->
        let op = alu_of_opcode (n - 10) in
        let imm = if Types.alu_imm_unsigned op then w land mask 14 else imm14 in
        Ok (Types.Alui (op, rd, rs1, imm))
      | 21 -> Ok (Types.Lui (rd, uimm18))
      | 22 -> Ok (Types.Load (W32, rd, rs1, imm14))
      | 23 -> Ok (Types.Load (W8, rd, rs1, imm14))
      | 24 -> Ok (Types.Store (W32, rd, rs1, imm14))
      | 25 -> Ok (Types.Store (W8, rd, rs1, imm14))
      | 26 -> Ok (Types.Branch (Eq, rd, rs1, imm18))
      | 27 -> Ok (Types.Branch (Ne, rd, rs1, imm18))
      | 28 -> Ok (Types.Branch (Lt, rd, rs1, imm18))
      | 29 -> Ok (Types.Branch (Ge, rd, rs1, imm18))
      | 30 -> Ok (Types.Jal (rd, imm22))
      | 31 -> Ok (Types.Jalr (rd, rs1, imm14))
      | 32 -> Ok Types.Halt
      | n -> Error (Printf.sprintf "unknown opcode %d" n)
    with Decode_error msg -> Error msg

let decode_exn w =
  match decode w with Ok i -> i | Error msg -> raise (Decode_error msg)

let read_word b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let write_word b off w =
  Bytes.set b off (Char.chr (w land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((w lsr 8) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((w lsr 16) land 0xFF));
  Bytes.set b (off + 3) (Char.chr ((w lsr 24) land 0xFF))

let encode_program instrs =
  let b = Bytes.create (Array.length instrs * 4) in
  Array.iteri (fun i ins -> write_word b (i * 4) (encode ins)) instrs;
  b

let decode_program b =
  let len = Bytes.length b in
  if len mod 4 <> 0 then Error "program length not a multiple of 4"
  else
    let n = len / 4 in
    let rec loop acc i =
      if i = n then Ok (Array.of_list (List.rev acc))
      else
        match decode (read_word b (i * 4)) with
        | Ok ins -> loop (ins :: acc) (i + 1)
        | Error msg -> Error (Printf.sprintf "word %d: %s" i msg)
    in
    loop [] 0
