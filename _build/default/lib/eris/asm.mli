(** Two-pass textual assembler for ERIS-32.

    Syntax overview (one statement per line; [;], [#] and [//] start
    comments):

    {v
    loop:                       ; labels end with ':'
      add   r1, r2, r3          ; register ALU ops: add sub and or xor
      addi  r1, r2, -5          ;   sll srl sra slt mul (+ 'i' forms)
      lui   r4, 0x3FF
      lw    r5, 8(sp)           ; lw lb sw sb
      sw    r5, 0(r6)
      beq   r1, r0, done        ; beq bne blt bge, target label or imm
      jal   ra, func            ; 'jal func' defaults rd to ra
      jalr  r0, ra, 0
      halt

      nop                       ; pseudo-instructions
      mov   r1, r2              ;   -> addi r1, r2, 0
      li    r1, 0x12345678      ;   -> addi / lui+ori (1 or 2 words)
      j     loop                ;   -> jal r0, loop
      call  func                ;   -> jal ra, func
      ret                       ;   -> jalr r0, ra, 0
      ble   r1, r2, done        ;   -> bge r2, r1, done
      bgt   r1, r2, done        ;   -> blt r2, r1, done

    .data 0x100                 ; set data-preload cursor (byte address)
    .dw   42                    ; preload one data word, cursor += 4
    v} *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

exception Error of error

val assemble : string -> (Program.t, error) result
(** Assembles a full source text. *)

val assemble_exn : string -> Program.t
(** @raise Error on any syntax, range or symbol problem. *)

val parse_line : string -> (Types.instruction option, string) result
(** Parses a single statement with no label references (used by tests
    and the REPL-ish tooling); [Ok None] for blank lines. *)
