let instruction w =
  match Encoding.decode w with
  | Ok i -> Types.to_string i
  | Error _ -> Printf.sprintf ".word 0x%08x" w

let image ?(base = 0) b =
  let n = Bytes.length b in
  let words = n / 4 in
  let rec loop acc i =
    if i = words then
      if n mod 4 = 0 then List.rev acc
      else
        let rest =
          List.init (n - (words * 4)) (fun j ->
              Printf.sprintf "0x%02x" (Char.code (Bytes.get b ((words * 4) + j))))
        in
        List.rev ((base + (words * 4), ".byte " ^ String.concat ", " rest) :: acc)
    else
      let w = Encoding.read_word b (i * 4) in
      loop ((base + (i * 4), instruction w) :: acc) (i + 1)
  in
  loop [] 0

let pp_image ppf b =
  List.iter (fun (addr, s) -> Format.fprintf ppf "%04x:  %s@." addr s) (image b)
