(** Interpreter for ERIS-32 programs (Harvard model: the instruction
    image is separate from data memory).

    The machine also serves as the trace generator for the compression
    experiments: [run ~leaders ~on_block] invokes [on_block pc] every
    time execution enters an instruction address marked as a
    basic-block leader. *)

exception Fault of { pc : int; message : string }

type t

val create : ?mem_size:int -> Program.t -> t
(** Fresh machine at [pc = 0] with zeroed registers and data memory
    ([mem_size] bytes, default 65536). Data words declared with
    [.data]/[.dw] are preloaded. *)

val reset : t -> unit
(** Back to the initial state (registers, memory, pc, counters). *)

val program : t -> Program.t
val pc : t -> int
val halted : t -> bool
val instr_count : t -> int

val cycle_count : t -> int
(** Accumulated {!Types.cycle_cost} of executed instructions. *)

val get_reg : t -> Types.reg -> int
(** Value in [0, 2{^32}). *)

val get_reg_signed : t -> Types.reg -> int
val set_reg : t -> Types.reg -> int -> unit

val read_word : t -> int -> int
(** Data memory access (little-endian).
    @raise Fault on out-of-bounds or unaligned addresses. *)

val write_word : t -> int -> int -> unit
val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit

val step : t -> unit
(** Executes one instruction. No-op when already halted.
    @raise Fault on invalid memory access or pc. *)

val set_pc : t -> int -> unit
(** Redirects control (used by exception handlers that relocate
    execution into decompressed copies). *)

val execute_instruction : t -> Types.instruction -> unit
(** Executes a given instruction at the current pc without fetching
    from the program image — the hook that lets a runtime execute
    relocated copies of basic blocks. Performs no pc bounds check;
    memory accesses still fault as usual. No-op when halted. *)

(** Why {!run} returned. *)
type stop_reason =
  | Halted
  | Out_of_fuel

type run_result = { instrs : int; cycles : int; reason : stop_reason }

val run :
  ?fuel:int ->
  ?leaders:int list ->
  ?on_block:(int -> unit) ->
  t ->
  run_result
(** Runs until [Halt] or until [fuel] instructions (default 10 million)
    have executed. [on_block addr] fires whenever execution is about to
    execute the instruction at [addr] and [addr] is listed in
    [leaders]. *)

val run_to_halt : ?fuel:int -> t -> run_result
(** Like {!run} but raises [Fault] if the fuel runs out, for workloads
    that must terminate. *)
