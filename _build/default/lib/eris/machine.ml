exception Fault of { pc : int; message : string }

type t = {
  prog : Program.t;
  regs : int array;
  mem : Bytes.t;
  mutable pc : int;
  mutable halted : bool;
  mutable instrs : int;
  mutable cycles : int;
}

let fault t fmt =
  Printf.ksprintf (fun m -> raise (Fault { pc = t.pc; message = m })) fmt

let preload t =
  List.iter
    (fun (addr, v) ->
      if addr < 0 || addr + 4 > Bytes.length t.mem || addr mod 4 <> 0 then
        fault t "bad .data preload address %d" addr;
      Encoding.write_word t.mem addr v)
    t.prog.Program.data

let create ?(mem_size = 65536) prog =
  let t =
    {
      prog;
      regs = Array.make 16 0;
      mem = Bytes.make mem_size '\000';
      pc = 0;
      halted = false;
      instrs = 0;
      cycles = 0;
    }
  in
  preload t;
  t

let reset t =
  Array.fill t.regs 0 16 0;
  Bytes.fill t.mem 0 (Bytes.length t.mem) '\000';
  t.pc <- 0;
  t.halted <- false;
  t.instrs <- 0;
  t.cycles <- 0;
  preload t

let program t = t.prog
let pc t = t.pc
let halted t = t.halted
let instr_count t = t.instrs
let cycle_count t = t.cycles

let norm v = v land 0xFFFFFFFF
let signed v = if v > 0x7FFFFFFF then v - 0x100000000 else v

let get_reg t r = t.regs.(Types.reg_index r)
let get_reg_signed t r = signed (get_reg t r)

let set_reg t r v =
  let i = Types.reg_index r in
  if i <> 0 then t.regs.(i) <- norm v

let check_data t addr len =
  if addr < 0 || addr + len > Bytes.length t.mem then
    fault t "data access out of bounds: %d" addr;
  if len = 4 && addr mod 4 <> 0 then fault t "unaligned word access: %d" addr

let read_word t addr =
  check_data t addr 4;
  Encoding.read_word t.mem addr

let write_word t addr v =
  check_data t addr 4;
  Encoding.write_word t.mem addr (norm v)

let read_byte t addr =
  check_data t addr 1;
  Char.code (Bytes.get t.mem addr)

let write_byte t addr v =
  check_data t addr 1;
  Bytes.set t.mem addr (Char.chr (v land 0xFF))

let alu op a b =
  match (op : Types.alu_op) with
  | Add -> norm (a + b)
  | Sub -> norm (a - b)
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Sll -> norm (a lsl (b land 31))
  | Srl -> a lsr (b land 31)
  | Sra -> norm (signed a asr (b land 31))
  | Slt -> if signed a < signed b then 1 else 0
  | Mul -> norm (a * b)

let cond_holds c a b =
  match (c : Types.cond) with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> signed a < signed b
  | Ge -> signed a >= signed b

let fetch t =
  let size = Program.byte_size t.prog in
  if t.pc < 0 || t.pc >= size || t.pc mod 4 <> 0 then
    fault t "bad pc %d (program size %d)" t.pc size;
  t.prog.Program.instrs.(t.pc / 4)

let set_pc t pc = t.pc <- pc

(* The immediate stored in [Alui] is already the semantic value
   (sign- or zero-extended by the decoder), so it is used directly. *)
let execute_instruction t i =
  if t.halted then ()
  else begin
    let next = t.pc + 4 in
    t.instrs <- t.instrs + 1;
    t.cycles <- t.cycles + Types.cycle_cost i;
    (match i with
    | Types.Alu (op, rd, rs1, rs2) ->
      set_reg t rd (alu op (get_reg t rs1) (get_reg t rs2));
      t.pc <- next
    | Alui (op, rd, rs1, imm) ->
      set_reg t rd (alu op (get_reg t rs1) (norm imm));
      t.pc <- next
    | Lui (rd, imm) ->
      set_reg t rd (imm lsl 14);
      t.pc <- next
    | Load (W32, rd, rs1, off) ->
      set_reg t rd (read_word t (norm (get_reg t rs1 + off)));
      t.pc <- next
    | Load (W8, rd, rs1, off) ->
      set_reg t rd (read_byte t (norm (get_reg t rs1 + off)));
      t.pc <- next
    | Store (W32, rs2, rs1, off) ->
      write_word t (norm (get_reg t rs1 + off)) (get_reg t rs2);
      t.pc <- next
    | Store (W8, rs2, rs1, off) ->
      write_byte t (norm (get_reg t rs1 + off)) (get_reg t rs2);
      t.pc <- next
    | Branch (c, rs1, rs2, off) ->
      if cond_holds c (get_reg t rs1) (get_reg t rs2) then
        t.pc <- next + (4 * off)
      else t.pc <- next
    | Jal (rd, off) ->
      set_reg t rd next;
      t.pc <- next + (4 * off)
    | Jalr (rd, rs1, off) ->
      let target = norm (get_reg t rs1 + off) in
      set_reg t rd next;
      t.pc <- target
    | Halt -> t.halted <- true);
    ()
  end

let step t = if t.halted then () else execute_instruction t (fetch t)

type stop_reason = Halted | Out_of_fuel

type run_result = { instrs : int; cycles : int; reason : stop_reason }

let no_block (_ : int) = ()

let run ?(fuel = 10_000_000) ?(leaders = []) ?(on_block = no_block) (t : t) =
  let start_instrs = t.instrs in
  let start_cycles = t.cycles in
  let leader_set =
    let n = Program.length t.prog in
    let a = Array.make (max n 1) false in
    List.iter
      (fun addr -> if addr >= 0 && addr / 4 < n && addr mod 4 = 0 then a.(addr / 4) <- true)
      leaders;
    a
  in
  let budget = ref fuel in
  let rec loop () =
    if t.halted then Halted
    else if !budget <= 0 then Out_of_fuel
    else begin
      if t.pc >= 0 && t.pc / 4 < Array.length leader_set && t.pc mod 4 = 0
         && leader_set.(t.pc / 4)
      then on_block t.pc;
      step t;
      decr budget;
      loop ()
    end
  in
  let reason = loop () in
  { instrs = t.instrs - start_instrs; cycles = t.cycles - start_cycles; reason }

let run_to_halt ?fuel t =
  let r = run ?fuel t in
  match r.reason with
  | Halted -> r
  | Out_of_fuel -> fault t "out of fuel after %d instructions" r.instrs
