(** An assembled ERIS-32 program: instruction image plus symbol table. *)

type t = {
  instrs : Types.instruction array;  (** decoded instruction image *)
  image : bytes;  (** binary encoding, 4 bytes per instruction *)
  symbols : (string * int) list;
      (** label -> byte address, in address order *)
  data : (int * int) list;
      (** initial data-memory contents: (byte address, word value) pairs
          accumulated from [.data]/[.word] directives *)
}

val of_instructions : ?symbols:(string * int) list -> Types.instruction array -> t
(** Builds a program from raw instructions (no data preload). *)

val length : t -> int
(** Number of instructions. *)

val byte_size : t -> int
(** Size of the instruction image in bytes. *)

val instr_at : t -> int -> Types.instruction
(** [instr_at p addr] is the instruction at byte address [addr].
    @raise Invalid_argument if [addr] is out of range or unaligned. *)

val address_of_symbol : t -> string -> int option

val symbol_at : t -> int -> string option
(** Reverse symbol lookup (exact address match). *)

val slice_bytes : t -> lo:int -> hi:int -> bytes
(** [slice_bytes p ~lo ~hi] is the image bytes for addresses
    [lo] (inclusive) to [hi] (exclusive). *)

val pp_listing : Format.formatter -> t -> unit
(** Disassembly listing with addresses and symbols. *)
