(** Disassembly of ERIS-32 binary images back to assembly text. *)

val instruction : int -> string
(** [instruction w] disassembles one 32-bit word, or returns
    [".word 0x…"] if the word does not decode. *)

val image : ?base:int -> bytes -> (int * string) list
(** [image b] is the [(address, text)] disassembly of a binary image;
    [base] (default 0) offsets the printed addresses. Trailing bytes
    that do not fill a word are reported as [".byte …"] entries. *)

val pp_image : Format.formatter -> bytes -> unit
