type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Error of error

let fail line fmt = Printf.ksprintf (fun m -> raise (Error { line; message = m })) fmt

(* ------------------------------------------------------------------ *)
(* Lexing                                                              *)

let strip_comment s =
  let cut i = String.sub s 0 i in
  let n = String.length s in
  let rec scan i =
    if i >= n then s
    else
      match s.[i] with
      | ';' | '#' -> cut i
      | '/' when i + 1 < n && s.[i + 1] = '/' -> cut i
      | _ -> scan (i + 1)
  in
  scan 0

let is_space c = c = ' ' || c = '\t' || c = '\r'

let trim = String.trim

(* Splits a statement into mnemonic and comma-separated operands. *)
let split_operands s =
  match String.index_opt s ' ' with
  | None -> (String.lowercase_ascii s, [])
  | Some i ->
    let mnemonic = String.lowercase_ascii (String.sub s 0 i) in
    let rest = trim (String.sub s i (String.length s - i)) in
    if rest = "" then (mnemonic, [])
    else (mnemonic, List.map trim (String.split_on_char ',' rest))

(* ------------------------------------------------------------------ *)
(* Operand parsing                                                     *)

let parse_int s =
  match int_of_string_opt s with
  | Some v -> Some v
  | None -> None

let parse_reg line s =
  match Types.reg_of_name s with
  | Some r -> r
  | None -> fail line "expected register, got %S" s

(* "off(reg)" for loads/stores. *)
let parse_mem line s =
  match String.index_opt s '(' with
  | None -> fail line "expected off(reg), got %S" s
  | Some i ->
    let off_s = trim (String.sub s 0 i) in
    let n = String.length s in
    if n = 0 || s.[n - 1] <> ')' then fail line "expected off(reg), got %S" s
    else
      let reg_s = trim (String.sub s (i + 1) (n - i - 2)) in
      let off =
        if off_s = "" then 0
        else
          match parse_int off_s with
          | Some v -> v
          | None -> fail line "bad offset %S" off_s
      in
      (off, parse_reg line reg_s)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

type stmt =
  | S_instr of string * string list
  | S_data_at of int
  | S_data_word of int

type src_line = { num : int; labels : string list; stmt : stmt option }

let parse_source text =
  let lines = String.split_on_char '\n' text in
  List.mapi
    (fun i raw ->
      let num = i + 1 in
      let s = trim (strip_comment raw) in
      (* Peel off leading "label:" prefixes. *)
      let rec peel labels s =
        match String.index_opt s ':' with
        | Some j when j > 0 && not (String.exists is_space (String.sub s 0 j))
          ->
          let label = String.sub s 0 j in
          let rest = trim (String.sub s (j + 1) (String.length s - j - 1)) in
          peel (label :: labels) rest
        | Some _ | None -> (List.rev labels, s)
      in
      let labels, body = peel [] s in
      let stmt =
        if body = "" then None
        else if body.[0] = '.' then begin
          match split_operands body with
          | ".data", [ a ] -> (
            match parse_int a with
            | Some v -> Some (S_data_at v)
            | None -> fail num "bad .data address %S" a)
          | ".dw", [ v ] -> (
            match parse_int v with
            | Some v -> Some (S_data_word v)
            | None -> fail num "bad .dw value %S" v)
          | d, _ -> fail num "unknown or malformed directive %S" d
        end
        else
          let m, ops = split_operands body in
          Some (S_instr (m, ops))
      in
      { num; labels; stmt })
    lines

(* ------------------------------------------------------------------ *)
(* Instruction table                                                   *)

let alu_of_mnemonic = function
  | "add" -> Some Types.Add
  | "sub" -> Some Sub
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | "sll" -> Some Sll
  | "srl" -> Some Srl
  | "sra" -> Some Sra
  | "slt" -> Some Slt
  | "mul" -> Some Mul
  | _ -> None

let cond_of_mnemonic = function
  | "beq" -> Some Types.Eq
  | "bne" -> Some Ne
  | "blt" -> Some Lt
  | "bge" -> Some Ge
  | _ -> None

(* Number of 32-bit words a statement expands to. *)
let words_of_instr line m ops =
  match m with
  | "li" -> (
    match ops with
    | [ _; imm ] -> (
      match parse_int imm with
      | Some v -> if Types.imm14_fits v then 1 else 2
      | None -> fail line "li needs an integer literal, got %S" imm)
    | _ -> fail line "li takes 2 operands")
  | "la" -> 2
  | _ -> 1

let norm32 v = v land 0xFFFFFFFF

(* Expands one statement to instructions.  [pc] is the byte address of
   the first emitted word; [lookup] resolves labels. *)
let emit line lookup pc m ops =
  let reg = parse_reg line in
  let int_of s =
    match parse_int s with Some v -> v | None -> fail line "bad integer %S" s
  in
  let target s =
    match parse_int s with
    | Some off -> off
    | None -> (
      match lookup s with
      | Some addr ->
        let delta = addr - (pc + 4) in
        if delta mod 4 <> 0 then fail line "unaligned target %S" s
        else delta / 4
      | None -> fail line "undefined label %S" s)
  in
  let check i =
    match Types.validate i with
    | Ok () -> i
    | Error msg -> fail line "%s" msg
  in
  (* The 1-vs-2-word decision must match [words_of_instr] exactly, so
     both test the raw literal. *)
  let load_imm rd v =
    if Types.imm14_fits v then [ check (Types.Alui (Add, rd, Types.r0, v)) ]
    else
      let v = norm32 v in
      [
        check (Types.Lui (rd, (v lsr 14) land 0x3FFFF));
        check (Types.Alui (Or, rd, rd, v land 0x3FFF));
      ]
  in
  match (m, ops) with
  (* Pseudo-instructions *)
  | "nop", [] -> [ Types.Alui (Add, Types.r0, Types.r0, 0) ]
  | "mov", [ rd; rs ] -> [ check (Types.Alui (Add, reg rd, reg rs, 0)) ]
  | "li", [ rd; imm ] -> load_imm (reg rd) (int_of imm)
  | "la", [ rd; label ] -> (
    match lookup label with
    | Some addr ->
      let rd = reg rd in
      [
        check (Types.Lui (rd, (addr lsr 14) land 0x3FFFF));
        check (Types.Alui (Or, rd, rd, addr land 0x3FFF));
      ]
    | None -> fail line "undefined label %S" label)
  | "j", [ t ] -> [ check (Types.Jal (Types.r0, target t)) ]
  | "call", [ t ] -> [ check (Types.Jal (Types.ra, target t)) ]
  | "ret", [] -> [ Types.Jalr (Types.r0, Types.ra, 0) ]
  | "ble", [ rs1; rs2; t ] ->
    [ check (Types.Branch (Ge, reg rs2, reg rs1, target t)) ]
  | "bgt", [ rs1; rs2; t ] ->
    [ check (Types.Branch (Lt, reg rs2, reg rs1, target t)) ]
  | "halt", [] -> [ Types.Halt ]
  (* Real instructions *)
  | "lui", [ rd; imm ] -> [ check (Types.Lui (reg rd, int_of imm)) ]
  | "lw", [ rd; mem ] ->
    let off, base = parse_mem line mem in
    [ check (Types.Load (W32, reg rd, base, off)) ]
  | "lb", [ rd; mem ] ->
    let off, base = parse_mem line mem in
    [ check (Types.Load (W8, reg rd, base, off)) ]
  | "sw", [ rs; mem ] ->
    let off, base = parse_mem line mem in
    [ check (Types.Store (W32, reg rs, base, off)) ]
  | "sb", [ rs; mem ] ->
    let off, base = parse_mem line mem in
    [ check (Types.Store (W8, reg rs, base, off)) ]
  | "jal", [ t ] -> [ check (Types.Jal (Types.ra, target t)) ]
  | "jal", [ rd; t ] -> [ check (Types.Jal (reg rd, target t)) ]
  | "jalr", [ rd; rs1; off ] ->
    [ check (Types.Jalr (reg rd, reg rs1, int_of off)) ]
  | _ -> (
    match (alu_of_mnemonic m, cond_of_mnemonic m, ops) with
    | Some op, _, [ rd; rs1; rs2 ] ->
      [ check (Types.Alu (op, reg rd, reg rs1, reg rs2)) ]
    | _, Some c, [ rs1; rs2; t ] ->
      [ check (Types.Branch (c, reg rs1, reg rs2, target t)) ]
    | _ -> (
      (* "<op>i" immediate forms *)
      let n = String.length m in
      if n > 1 && m.[n - 1] = 'i' then
        match (alu_of_mnemonic (String.sub m 0 (n - 1)), ops) with
        | Some op, [ rd; rs1; imm ] ->
          [ check (Types.Alui (op, reg rd, reg rs1, int_of imm)) ]
        | Some _, _ -> fail line "%s takes 3 operands" m
        | None, _ -> fail line "unknown mnemonic %S" m
      else fail line "unknown mnemonic %S or wrong operand count" m))

(* ------------------------------------------------------------------ *)
(* Passes                                                              *)

let assemble_exn text =
  let src = parse_source text in
  (* Pass 1: addresses and symbols. *)
  let symbols = Hashtbl.create 64 in
  let pc = ref 0 in
  List.iter
    (fun { num; labels; stmt } ->
      List.iter
        (fun label ->
          if Hashtbl.mem symbols label then fail num "duplicate label %S" label;
          Hashtbl.add symbols label !pc)
        labels;
      match stmt with
      | Some (S_instr (m, ops)) -> pc := !pc + (4 * words_of_instr num m ops)
      | Some (S_data_at _) | Some (S_data_word _) | None -> ())
    src;
  (* Pass 2: emission. *)
  let lookup name = Hashtbl.find_opt symbols name in
  let instrs = ref [] in
  let data = ref [] in
  let data_cursor = ref 0 in
  let pc = ref 0 in
  List.iter
    (fun { num; labels = _; stmt } ->
      match stmt with
      | None -> ()
      | Some (S_data_at a) -> data_cursor := a
      | Some (S_data_word v) ->
        data := (!data_cursor, norm32 v) :: !data;
        data_cursor := !data_cursor + 4
      | Some (S_instr (m, ops)) ->
        let emitted = emit num lookup !pc m ops in
        List.iter (fun i -> instrs := i :: !instrs) emitted;
        pc := !pc + (4 * List.length emitted))
    src;
  let instrs = Array.of_list (List.rev !instrs) in
  let symbols =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) symbols []
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  {
    Program.instrs;
    image = Encoding.encode_program instrs;
    symbols;
    data = List.rev !data;
  }

let assemble text =
  match assemble_exn text with
  | p -> Ok p
  | exception Error e -> Error e

let parse_line s =
  let run () =
    let s = trim (strip_comment s) in
    if s = "" then None
    else
      let m, ops = split_operands s in
      match emit 1 (fun _ -> None) 0 m ops with
      | [ i ] -> Some i
      | _ :: _ :: _ -> None (* multi-word pseudo: not a single instruction *)
      | [] -> None
  in
  match run () with
  | v -> Ok v
  | exception Error e -> Result.Error e.message
