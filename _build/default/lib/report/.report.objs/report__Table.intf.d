lib/report/table.mli:
