(* The §2 budgeted variant: cap the decompressed area and watch the
   LRU eviction keep the footprint under it, trading cycles for bytes.

   Run with: dune exec examples/memory_budget.exe [workload] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fsm" in
  let sc = Workloads.Common.scenario (Workloads.Suite.find_exn name) in
  Format.printf "%a@.@." Core.Scenario.pp_summary sc;
  let unbounded = Core.Scenario.run sc (Core.Policy.on_demand ~k:8) in
  let peak = unbounded.Core.Metrics.peak_decompressed_bytes in
  Format.printf
    "unbudgeted: peak decompressed area %dB, overhead %s@.@." peak
    (Report.Table.fmt_pct (Core.Metrics.overhead_ratio unbounded));
  let table =
    Report.Table.create ~title:"budgeted runs (k=8, LRU eviction)"
      ~columns:
        [
          ("budget", Report.Table.Right);
          ("peak used", Report.Table.Right);
          ("evictions", Report.Table.Right);
          ("overflows", Report.Table.Right);
          ("overhead", Report.Table.Right);
        ]
  in
  List.iter
    (fun pct ->
      let budget = max 1 (peak * pct / 100) in
      let m =
        Core.Scenario.run sc (Core.Policy.make ~compress_k:8 ~budget ())
      in
      Report.Table.add_row table
        [
          Printf.sprintf "%d%% (%dB)" pct budget;
          string_of_int m.Core.Metrics.peak_decompressed_bytes;
          string_of_int m.Core.Metrics.evictions;
          string_of_int m.Core.Metrics.budget_overflows;
          Report.Table.fmt_pct (Core.Metrics.overhead_ratio m);
        ])
    [ 100; 75; 50; 25; 10 ];
  Report.Table.print table
