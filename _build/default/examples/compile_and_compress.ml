(* The whole toolchain in one pipeline: MiniC source -> compiler ->
   ERIS-32 binary -> CFG + access pattern -> policy engine, and
   finally real execution from compressed memory.

   Run with: dune exec examples/compile_and_compress.exe *)

let source =
  {|
/* find the perfect numbers below 100 (6 and 28) */
int divisor_sum(int n) {
  int s = 0;
  for (int d = 1; d < n; d = d + 1) {
    if (n % d == 0) { s = s + d; }
  }
  return s;
}

int main() {
  int found = 0;
  for (int n = 2; n < 100; n = n + 1) {
    if (divisor_sum(n) == n) { found = found * 1000 + n; }
  }
  return found;
}
|}

let () =
  (* 1. Compile. *)
  let prog =
    match Minic.Compile.to_program source with
    | Ok p -> p
    | Error e ->
      Format.eprintf "compile error: %a@." Minic.Compile.pp_error e;
      exit 1
  in
  let graph = Cfg.Build.of_program prog in
  Format.printf "compiled: %d instructions, %d blocks, %d loops@."
    (Eris.Program.length prog)
    (Cfg.Graph.num_blocks graph)
    (List.length (Cfg.Loop.detect graph));

  (* 2. Model the policies on the compiled binary. *)
  let sc = Core.Scenario.of_program ~name:"perfect" prog in
  Format.printf "%a@.@." Core.Scenario.pp_summary sc;
  List.iter
    (fun k ->
      let m = Core.Scenario.run sc (Core.Policy.on_demand ~k) in
      Format.printf "model k=%-3d %a@." k Core.Metrics.pp_brief m)
    [ 2; 8; 32 ];

  (* 3. Execute it for real from compressed memory. *)
  print_newline ();
  List.iter
    (fun k ->
      match Runtime.run ~k prog with
      | Ok (machine, stats) ->
        Format.printf
          "runtime k=%-3d main() = %d; %d traps, %d decompressions, %dB peak \
           copies@."
          k
          (Eris.Machine.read_word machine Minic.Codegen.result_addr)
          stats.Runtime.traps stats.Runtime.decompressions
          stats.Runtime.peak_copy_bytes
      | Error _ -> Format.printf "runtime k=%d failed@." k)
    [ 2; 8; 32 ]
