(* Why basic-block granularity beats procedure granularity (paper §6):
   the fsm kernel has a hot classification chain and a genuinely cold
   error path inside the same "procedure". Block-level compression
   keeps the cold blocks compressed while the hot chain runs; the
   procedure-level scheme must decompress everything together.

   Also writes the CFG with hot blocks highlighted to fsm.dot.

   Run with: dune exec examples/cold_paths.exe *)

let () =
  let sc = Workloads.Common.scenario (Workloads.Suite.find_exn "fsm") in
  let profile = Core.Scenario.profile sc in
  let hot = Cfg.Profile.hot_blocks profile ~fraction:0.95 in
  Format.printf "%a@.@." Core.Scenario.pp_summary sc;
  Format.printf "hot blocks (95%% of visits): {%s} of %d@.@."
    (String.concat ", " (List.map (Printf.sprintf "B%d") hot))
    (Cfg.Graph.num_blocks sc.Core.Scenario.graph);
  Cfg.Dot.write_file ~highlight:hot "fsm.dot" sc.Core.Scenario.graph;
  Format.printf "CFG with hot blocks highlighted written to fsm.dot@.@.";
  let table =
    Report.Table.create ~title:"granularity on fsm (k=8)"
      ~columns:
        [
          ("scheme", Report.Table.Left);
          ("peak footprint", Report.Table.Right);
          ("avg footprint", Report.Table.Right);
          ("overhead", Report.Table.Right);
        ]
  in
  List.iter
    (fun (r : Baselines.Comparison.row) ->
      Report.Table.add_row table
        [
          r.scheme;
          string_of_int r.peak_footprint;
          Report.Table.fmt_float ~decimals:0 r.avg_footprint;
          Report.Table.fmt_pct r.overhead;
        ])
    (Baselines.Comparison.rows sc);
  Report.Table.print table;
  (* The loop detector agrees with the profile about what is hot. *)
  let loops = Cfg.Loop.detect sc.Core.Scenario.graph in
  Format.printf "natural loops: %d (headers: %s)@." (List.length loops)
    (String.concat ", "
       (List.map (fun l -> Printf.sprintf "B%d" l.Cfg.Loop.header) loops))
