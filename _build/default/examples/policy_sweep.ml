(* Policy sweep over one of the benchmark kernels: every combination
   of compression k and decompression strategy, printed as a table.

   Run with: dune exec examples/policy_sweep.exe [workload] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "dijkstra" in
  let sc = Workloads.Common.scenario (Workloads.Suite.find_exn name) in
  Format.printf "%a@.@." Core.Scenario.pp_summary sc;
  let profile = Core.Scenario.profile sc in
  let table =
    Report.Table.create
      ~title:(Printf.sprintf "policy sweep on %s" name)
      ~columns:
        [
          ("k", Report.Table.Right);
          ("strategy", Report.Table.Left);
          ("overhead", Report.Table.Right);
          ("peak saving", Report.Table.Right);
          ("avg saving", Report.Table.Right);
          ("stalls", Report.Table.Right);
        ]
  in
  List.iter
    (fun k ->
      let policies =
        [
          ("on-demand", Core.Policy.on_demand ~k);
          ("pre-all/2", Core.Policy.pre_all ~k ~lookahead:2);
          ( "pre-single/2",
            Core.Policy.pre_single ~k ~lookahead:2
              ~predictor:(Core.Predictor.By_profile profile) );
        ]
      in
      List.iter
        (fun (sname, policy) ->
          let m = Core.Scenario.run sc policy in
          Report.Table.add_row table
            [
              string_of_int k;
              sname;
              Report.Table.fmt_pct (Core.Metrics.overhead_ratio m);
              Report.Table.fmt_pct (Core.Metrics.peak_memory_saving m);
              Report.Table.fmt_pct (Core.Metrics.avg_memory_saving m);
              string_of_int m.Core.Metrics.stall_cycles;
            ])
        policies)
    [ 1; 2; 4; 8; 16 ];
  Report.Table.print table
