(* Quickstart: assemble a tiny embedded program, extract its CFG and
   instruction access pattern, and run it under the paper's k-edge
   policy with on-demand decompression.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
; sum the integers 1..100, then spin through a cold error check
        li   r1, 0            ; acc
        li   r2, 1            ; i
loop:
        add  r1, r1, r2
        addi r2, r2, 1
        li   r3, 101
        blt  r2, r3, loop
        li   r3, 5050
        bne  r1, r3, panic    ; never taken
        li   r4, 0x0FF0
        sw   r1, 0(r4)
        halt
panic:
        li   r1, 0
        j    panic
|}

let () =
  (* 1. Assemble and wrap into a scenario: this builds the CFG, runs
     the program once on the ERIS-32 interpreter to capture the block
     access pattern, and compresses every basic block with a
     shared-model codec trained on the image. *)
  let scenario = Core.Scenario.of_source ~name:"quickstart" source in
  Format.printf "%a@.@." Core.Scenario.pp_summary scenario;

  (* 2. The machine really computed the sum. *)
  let machine =
    Eris.Machine.create (Eris.Asm.assemble_exn source)
  in
  let _ = Eris.Machine.run_to_halt machine in
  Format.printf "program result: %d (expected 5050)@.@."
    (Eris.Machine.read_word machine 0x0FF0);

  (* 3. Run the 2-edge and 8-edge algorithms and compare. *)
  let show k =
    let metrics = Core.Scenario.run scenario (Core.Policy.on_demand ~k) in
    Format.printf "k=%d: %a@." k Core.Metrics.pp_brief metrics
  in
  List.iter show [ 1; 2; 8; 32 ];

  (* 4. Add pre-decompression to hide the latency. *)
  let metrics =
    Core.Scenario.run scenario (Core.Policy.pre_all ~k:8 ~lookahead:2)
  in
  Format.printf "k=8 + pre-decompress-all: %a@." Core.Metrics.pp_brief metrics
