(* The executable §5 scheme, end to end: a program runs from an image
   that exists only in compressed form. The handler really
   decompresses blocks into relocated copies, really patches branch
   sites, and the k-edge algorithm really deletes copies — and the
   program still computes the right answer.

   Run with: dune exec examples/real_execution.exe [workload] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "dijkstra" in
  let w = Workloads.Suite.find_exn name in
  let prog = Eris.Asm.assemble_exn w.Workloads.Common.source in
  Format.printf
    "%s: %d instructions, %dB image; reference checksum 0x%08x@.@." name
    (Eris.Program.length prog)
    (Eris.Program.byte_size prog)
    w.Workloads.Common.expected;
  let table =
    Report.Table.create ~title:"real execution from compressed memory"
      ~columns:
        [
          ("k", Report.Table.Right);
          ("checksum", Report.Table.Left);
          ("traps", Report.Table.Right);
          ("decompressions", Report.Table.Right);
          ("patches", Report.Table.Right);
          ("deletions", Report.Table.Right);
          ("peak copies", Report.Table.Right);
        ]
  in
  List.iter
    (fun k ->
      match Runtime.run ~k prog with
      | Ok (machine, stats) ->
        let got =
          Eris.Machine.read_word machine w.Workloads.Common.result_addr
        in
        Report.Table.add_row table
          [
            string_of_int k;
            (if got = w.Workloads.Common.expected then "correct"
             else Printf.sprintf "WRONG (0x%08x)" got);
            string_of_int stats.Runtime.traps;
            string_of_int stats.Runtime.decompressions;
            string_of_int stats.Runtime.patches;
            string_of_int stats.Runtime.deletions;
            Report.Table.fmt_bytes stats.Runtime.peak_copy_bytes;
          ]
      | Error _ -> Report.Table.add_row table [ string_of_int k; "error"; ""; ""; ""; ""; "" ])
    [ 1; 2; 4; 8; 16; 64 ];
  Report.Table.print table;
  print_endline
    "Aggressive k deletes copies sooner: fewer peak bytes, more traps.\n\
     The checksum is the proof that decompression, relocation, branch\n\
     patching and deletion are all correct."
