(* Plugging a user-defined codec into the policy engine: a trivial
   nibble-packing codec that exploits ERIS-32's unused immediate bits,
   compared against the built-in registry on the same workload.

   Run with: dune exec examples/custom_codec.exe *)

(* Every odd byte of the adpcm kernel's immediate fields is zero often
   enough that dropping runs of zero pairs helps: a toy codec, but it
   exercises the full Codec interface including malformed-input
   handling. *)
let zero_pair_codec =
  let compress b =
    let out = Buffer.create (Bytes.length b) in
    let n = Bytes.length b in
    let rec loop i =
      if i < n then
        if
          i + 1 < n
          && Bytes.get b i = '\000'
          && Bytes.get b (i + 1) = '\000'
        then begin
          (* count zero pairs, up to 255 *)
          let rec count j acc =
            if
              acc < 255 && j + 1 < n
              && Bytes.get b j = '\000'
              && Bytes.get b (j + 1) = '\000'
            then count (j + 2) (acc + 1)
            else acc
          in
          let pairs = count i 0 in
          Buffer.add_char out '\000';
          Buffer.add_char out (Char.chr pairs);
          loop (i + (2 * pairs))
        end
        else begin
          if Bytes.get b i = '\000' then begin
            (* escape a lone zero as (0, 0) *)
            Buffer.add_char out '\000';
            Buffer.add_char out '\000';
            loop (i + 1)
          end
          else begin
            Buffer.add_char out (Bytes.get b i);
            loop (i + 1)
          end
        end
    in
    loop 0;
    Bytes.of_string (Buffer.contents out)
  in
  let decompress b =
    let out = Buffer.create (Bytes.length b * 2) in
    let n = Bytes.length b in
    let rec loop i =
      if i < n then
        if Bytes.get b i = '\000' then begin
          if i + 1 >= n then
            raise (Compress.Codec.Corrupt "zero-pair: truncated escape");
          match Char.code (Bytes.get b (i + 1)) with
          | 0 ->
            Buffer.add_char out '\000';
            loop (i + 2)
          | pairs ->
            for _ = 1 to 2 * pairs do
              Buffer.add_char out '\000'
            done;
            loop (i + 2)
        end
        else begin
          Buffer.add_char out (Bytes.get b i);
          loop (i + 1)
        end
    in
    loop 0;
    Bytes.of_string (Buffer.contents out)
  in
  Compress.Codec.make ~name:"zero-pair" ~dec_cycles_per_byte:1
    ~comp_cycles_per_byte:2 ~compress ~decompress ()

let () =
  let w = Workloads.Suite.find_exn "adpcm" in
  let codecs =
    (Compress.Codec.never_expanding zero_pair_codec :: Compress.Registry.all ())
  in
  let table =
    Report.Table.create ~title:"custom codec vs. the registry on adpcm"
      ~columns:
        [
          ("codec", Report.Table.Left);
          ("ratio", Report.Table.Right);
          ("overhead (k=8)", Report.Table.Right);
          ("avg mem saving", Report.Table.Right);
        ]
  in
  List.iter
    (fun codec ->
      let sc = Workloads.Common.scenario ~codec w in
      let original =
        Array.fold_left
          (fun a (i : Core.Engine.block_info) -> a + i.uncompressed_bytes)
          0 sc.Core.Scenario.info
      and compressed =
        Array.fold_left
          (fun a (i : Core.Engine.block_info) -> a + i.compressed_bytes)
          0 sc.Core.Scenario.info
      in
      let m = Core.Scenario.run sc (Core.Policy.on_demand ~k:8) in
      Report.Table.add_row table
        [
          codec.Compress.Codec.name;
          Report.Table.fmt_float ~decimals:3
            (float_of_int compressed /. float_of_int original);
          Report.Table.fmt_pct (Core.Metrics.overhead_ratio m);
          Report.Table.fmt_pct (Core.Metrics.avg_memory_saving m);
        ])
    codecs;
  Report.Table.print table
