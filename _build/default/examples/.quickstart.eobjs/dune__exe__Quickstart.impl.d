examples/quickstart.ml: Core Eris Format List
