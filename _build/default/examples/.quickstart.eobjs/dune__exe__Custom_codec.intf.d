examples/custom_codec.mli:
