examples/compile_and_compress.mli:
