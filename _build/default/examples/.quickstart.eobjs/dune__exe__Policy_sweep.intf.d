examples/policy_sweep.mli:
