examples/compile_and_compress.ml: Cfg Core Eris Format List Minic Runtime
