examples/cold_paths.mli:
