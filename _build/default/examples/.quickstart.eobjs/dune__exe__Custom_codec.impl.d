examples/custom_codec.ml: Array Buffer Bytes Char Compress Core List Report Workloads
