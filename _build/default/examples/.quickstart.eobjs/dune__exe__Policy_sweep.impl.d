examples/policy_sweep.ml: Array Core Format List Printf Report Sys Workloads
