examples/real_execution.ml: Array Eris Format List Printf Report Runtime Sys Workloads
