examples/cold_paths.ml: Baselines Cfg Core Format List Printf Report String Workloads
