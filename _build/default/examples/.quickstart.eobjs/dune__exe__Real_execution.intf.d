examples/real_execution.mli:
