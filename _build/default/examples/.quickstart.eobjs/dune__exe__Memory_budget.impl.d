examples/memory_budget.ml: Array Core Format List Printf Report Sys Workloads
