examples/quickstart.mli:
