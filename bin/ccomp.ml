(* ccomp: command-line front end for the access-pattern-based code
   compression library (Ozturk et al., DATE 2005 reproduction). *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument parsers                                             *)

let workload_doc =
  Printf.sprintf
    "Workload name (one of: %s), a gen: generator spec, or a multi: \
     composition."
    (String.concat ", " Workloads.Suite.names)

let workload_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD" ~doc:workload_doc)

(* sim/run accept the workload either positionally or via --gen (and,
   for sim, --tasks); the positional argument becomes optional there. *)
let workload_opt_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc:workload_doc)

let gen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "gen" ] ~docv:"SPEC"
        ~doc:
          "Generate the program from a gen: spec (equivalent to passing the \
           spec as WORKLOAD).")

(* The effective scenario string for sim/run: positional or --gen,
   exactly one. *)
let effective_workload workload gen =
  match (workload, gen) with
  | Some w, None -> Ok w
  | None, Some g ->
    if Corpus.Resolve.is_gen g then Ok g
    else Error "--gen expects a gen: spec"
  | Some _, Some _ -> Error "give either WORKLOAD or --gen, not both"
  | None, None -> Error "missing WORKLOAD (or --gen SPEC)"

(* Validated at parse time against the live registry (same known-set
   message as the service), so a typo'd codec is a usage error in
   every subcommand that takes one, not an Invalid_argument escaping
   from a resolve deep inside a sweep. *)
let codec_arg =
  let parse s =
    if s = "code" || List.mem s (Compress.Registry.names ()) then Ok s
    else
      Error
        (`Msg
           (Printf.sprintf "unknown codec %S (known: code, %s)" s
              (String.concat ", " (Compress.Registry.names ()))))
  in
  let codec_conv = Arg.conv ~docv:"CODEC" (parse, Format.pp_print_string) in
  let doc =
    Printf.sprintf
      "Codec: %s, or 'code' for the positional shared-Huffman model \
       trained on the workload itself (default). See `ccomp compress \
       --list`."
      (String.concat ", " (Compress.Registry.names ()))
  in
  Arg.(value & opt codec_conv "code" & info [ "codec" ] ~docv:"CODEC" ~doc)

(* Bounds-checked integer options: a bad --k/--jobs/--queue/--budget
   is a usage error cmdliner reports cleanly, not an Invalid_argument
   escaping from deep inside the engine — every integer option goes
   through this one parser so the rejection message is uniform. *)
let bounded_int ~min what =
  let parse s =
    match int_of_string_opt s with
    | None ->
      Error (`Msg (Printf.sprintf "expected an integer %s, got %S" what s))
    | Some v when v < min ->
      Error (`Msg (Printf.sprintf "%s must be >= %d (got %d)" what min v))
    | Some v -> Ok v
  in
  Arg.conv ~docv:"INT" (parse, Format.pp_print_int)

let positive_int what = bounded_int ~min:1 what

(* Validated at parse time with the same known-set message the service
   returns, so a typo'd profile is a usage error, not an
   Invalid_argument escaping from the cost layer. *)
let device_profile_arg =
  let parse s =
    if List.mem s Sim.Cost.profile_names then Ok s
    else
      Error
        (`Msg
           (Printf.sprintf "unknown device profile %S (known: %s)" s
              (String.concat ", " Sim.Cost.profile_names)))
  in
  let profile_conv = Arg.conv ~docv:"PROFILE" (parse, Format.pp_print_string) in
  let doc =
    Printf.sprintf
      "Device profile naming the cost coefficients (cycle and energy) \
       every charge is priced with: %s."
      (String.concat ", " Sim.Cost.profile_names)
  in
  Arg.(
    value
    & opt profile_conv Fleet.Job.default_profile
    & info [ "device-profile" ] ~docv:"PROFILE" ~doc)

let k_arg =
  Arg.(
    value
    & opt (positive_int "k") 8
    & info [ "k" ] ~docv:"K" ~doc:"k of the k-edge compression algorithm.")

let line_size_arg =
  let doc =
    Printf.sprintf
      "Compress and retain the image per fixed-size cache line of $(docv) \
       bytes instead of per basic block — the compressed-I-cache \
       scenario. The bdi-* and cpack-* codecs are line codecs at sizes \
       %s."
      (String.concat ", "
         (List.map string_of_int Compress.Linecodec.line_sizes))
  in
  Arg.(
    value
    & opt (some (bounded_int ~min:4 "line-size")) None
    & info [ "line-size" ] ~docv:"BYTES" ~doc)

let lookahead_arg =
  Arg.(
    value
    & opt (positive_int "lookahead") 2
    & info [ "lookahead" ] ~docv:"K" ~doc:"Pre-decompression distance.")

let strategy_arg =
  let doc = "Decompression strategy: on-demand, pre-all or pre-single." in
  Arg.(
    value
    & opt (enum [ ("on-demand", `On_demand); ("pre-all", `Pre_all); ("pre-single", `Pre_single) ]) `On_demand
    & info [ "strategy" ] ~docv:"STRATEGY" ~doc)

let predictor_arg =
  let doc = "Predictor for pre-single: first, last-taken or profile." in
  Arg.(
    value
    & opt (enum [ ("first", `First); ("last-taken", `Last); ("profile", `Profile) ]) `Profile
    & info [ "predictor" ] ~docv:"PRED" ~doc)

let budget_arg =
  Arg.(
    value
    & opt (some (positive_int "budget")) None
    & info [ "budget" ] ~docv:"BYTES"
        ~doc:"Maximum decompressed-area bytes (LRU eviction).")

let retention_arg =
  let doc =
    "Retention policy for decompressed copies: kedge (the paper's \
     k-edge/LRU scheme), loop-aware (k scaled by loop nesting depth), \
     clock (second-chance, O(1) state) or pin-hot (profile-hot blocks \
     are never discarded)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("kedge", "kedge");
             ("loop-aware", "loop-aware");
             ("clock", "clock");
             ("pin-hot", "pin-hot");
           ])
        "kedge"
    & info [ "retention" ] ~docv:"POLICY" ~doc)

(* The pin-hot pinned set comes from a profile; [profile] is a thunk so
   the other policies never pay for the profiling run. *)
let retention_spec name ~profile =
  match name with
  | "pin-hot" ->
    Residency.Policy.Pin_hot
      { pinned = Cfg.Profile.hot_blocks (profile ()) ~fraction:0.5 }
  | name -> Experiments.Retention_compare.retention_of_name name

let recompress_arg =
  Arg.(
    value & flag
    & info [ "recompress" ]
        ~doc:
          "Use the background-recompression mode instead of the paper's \
           discard implementation.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Stream the simulation event log to $(docv) in constant memory: \
           JSON Lines by default, or the compact LZSS-framed binary event \
           log when $(docv) ends in .bin/.ctb.")

(* The .bin event-log sink: five ints per event (kind, at, a, b, c —
   the packed field maps) through Trace.Event_log. *)
let binary_event_sink path =
  let oc = open_out_bin path in
  let w = Trace.Event_log.Writer.create oc in
  let push e =
    let p = Trace.Event_log.Writer.push w in
    match (e : Sim.Events.t) with
    | Exec { block; at } -> p ~kind:0 ~at ~a:block ~b:0 ~c:0
    | Exception { block; at } -> p ~kind:1 ~at ~a:block ~b:0 ~c:0
    | Demand_decompress { block; at; cycles } ->
      p ~kind:2 ~at ~a:block ~b:cycles ~c:0
    | Prefetch_issue { block; at; ready_at } ->
      p ~kind:3 ~at ~a:block ~b:ready_at ~c:0
    | Stall { block; at; cycles } -> p ~kind:4 ~at ~a:block ~b:cycles ~c:0
    | Patch { target; site; at } -> p ~kind:5 ~at ~a:target ~b:site ~c:0
    | Unpatch { target; site; at } -> p ~kind:6 ~at ~a:target ~b:site ~c:0
    | Discard { block; at; patched_back; wasted } ->
      p ~kind:7 ~at ~a:block ~b:patched_back ~c:(if wasted then 1 else 0)
    | Evict { block; at } -> p ~kind:8 ~at ~a:block ~b:0 ~c:0
    | Recompress_queued { block; at; done_at } ->
      p ~kind:9 ~at ~a:block ~b:done_at ~c:0
    | Flush { at; copies } -> p ~kind:10 ~at ~a:copies ~b:0 ~c:0
  in
  {
    Sim.Events.emit = push;
    emit_chunk = (fun ch -> Sim.Events.Packed.iter push ch);
    close =
      (fun () ->
        Trace.Event_log.Writer.close w;
        close_out oc);
  }

let binary_trace_path path =
  Filename.check_suffix path ".bin" || Filename.check_suffix path ".ctb"

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Also print the metrics registry (engine totals, occupancy, \
           per-event-kind counters and latency histograms).")

(* Shared --trace-out/--metrics plumbing: build the optional sink and
   registry, run, then close the file and render the registry. *)
let with_observability ?(observe_events = true) trace_out metrics run =
  let sink =
    match trace_out with
    | None -> None
    | Some path -> (
      try
        Some
          (if binary_trace_path path then binary_event_sink path
           else Sim.Events.to_file path)
      with Sys_error msg ->
        Format.eprintf "error: cannot open trace output: %s@." msg;
        Stdlib.exit 1)
  in
  let registry = if metrics then Some (Sim.Metrics.create ()) else None in
  let sink =
    match (registry, observe_events) with
    | Some r, true ->
      let observer = Sim.Events.observing r in
      Some
        (match sink with
        | Some s -> Sim.Events.tee [ s; observer ]
        | None -> observer)
    | _ -> sink
  in
  let result = run ?sink ?registry () in
  (match sink with Some s -> s.Sim.Events.close () | None -> ());
  (match trace_out with
  | Some path -> Format.printf "event trace written to %s@." path
  | None -> ());
  (match registry with
  | Some r ->
    print_string (Report.Table.render (Sim.Metrics.to_table ~title:"metrics" r))
  | None -> ());
  result

(* Any scenario string: a suite workload name, a [gen:] generator spec
   or a [multi:] composition — everywhere a WORKLOAD is accepted. *)
let scenario_of ~codec name =
  let plain name =
    let w = Workloads.Suite.find_exn name in
    match codec with
    | "code" -> Workloads.Common.scenario w
    | other ->
      Workloads.Common.scenario ~codec:(Compress.Registry.find_exn other) w
  in
  if Corpus.Resolve.is_spec name then
    Corpus.Resolve.scenario ~lookup:plain
      ?codec:
        (match codec with
        | "code" -> None
        | other -> Some (Compress.Registry.find_exn other))
      name
  else plain name

(* ------------------------------------------------------------------ *)
(* ccomp sim                                                           *)

(* Per-task attribution printout for multitask sims. *)
let print_task_stats stats =
  let t =
    Report.Table.create ~title:"per-task attribution"
      ~columns:
        [
          ("task", Report.Table.Left);
          ("visits", Report.Table.Right);
          ("demand decs", Report.Table.Right);
          ("discards", Report.Table.Right);
          ("evictions", Report.Table.Right);
          ("cross-task", Report.Table.Right);
        ]
  in
  Array.iter
    (fun (s : Corpus.Multitask.task_stats) ->
      Report.Table.add_row t
        [
          s.task.Corpus.Multitask.name;
          Report.Table.fmt_int s.visits;
          Report.Table.fmt_int s.demand_decompressions;
          Report.Table.fmt_int s.discards;
          Report.Table.fmt_int s.evictions;
          Report.Table.fmt_int s.evicted_while_inactive;
        ])
    stats;
  print_string (Report.Table.render t)

let sim workload gen tasks quantum mt_seed jitter codec k strategy lookahead
    predictor budget recompress retention device_profile line_size trace_out
    metrics =
  let scenario_or_tasks =
    match tasks with
    | Some ts ->
      Result.map
        (fun m -> `Tasks m)
        (Corpus.Resolve.multi_of_string
           (Printf.sprintf "multi:quantum=%d,seed=%d,jitter=%g;%s" quantum
              mt_seed jitter (String.concat "+" ts)))
    | None -> Result.map (fun w -> `One w) (effective_workload workload gen)
  in
  match scenario_or_tasks with
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    1
  | Ok (`Tasks m) -> (
    match
      Corpus.Resolve.multitask ~lookup:(fun n -> scenario_of ~codec n)
        ?codec:
          (match codec with
          | "code" -> None
          | other -> Some (Compress.Registry.find_exn other))
        m
    with
    | exception Invalid_argument msg ->
      Format.eprintf "error: %s@." msg;
      1
    | mt -> (
      let sc = mt.Corpus.Multitask.scenario in
      let retention =
        retention_spec retention ~profile:(fun () -> Core.Scenario.profile sc)
      in
      let mode =
        if recompress then Core.Policy.Recompress else Core.Policy.Discard
      in
      let predictor =
        match predictor with
        | `First -> Core.Predictor.First_successor
        | `Last -> Core.Predictor.Last_taken
        | `Profile -> Core.Predictor.By_profile (Core.Scenario.profile sc)
      in
      let strategy =
        match strategy with
        | `On_demand -> Core.Policy.On_demand
        | `Pre_all -> Core.Policy.Pre_all { lookahead }
        | `Pre_single -> Core.Policy.Pre_single { lookahead; predictor }
      in
      let policy =
        Core.Policy.make ~mode ~strategy ?budget ~retention ~compress_k:k ()
      in
      Format.printf "%a@.policy: %s@.@." Core.Scenario.pp_summary sc
        (Core.Policy.describe policy);
      try
        let metrics_v, stats =
          with_observability trace_out metrics (fun ?sink ?registry () ->
              Corpus.Multitask.run ~profile:device_profile ?sink ?registry mt
                policy)
        in
        Format.printf "%a@.@." Core.Metrics.pp metrics_v;
        print_task_stats stats;
        0
      with Invalid_argument msg ->
        Format.eprintf "error: %s@." msg;
        1))
  | Ok (`One workload) -> (
  match scenario_of ~codec workload with
  | sc -> (
    let predictor =
      match predictor with
      | `First -> Core.Predictor.First_successor
      | `Last -> Core.Predictor.Last_taken
      | `Profile -> Core.Predictor.By_profile (Core.Scenario.profile sc)
    in
    let strategy =
      match strategy with
      | `On_demand -> Core.Policy.On_demand
      | `Pre_all -> Core.Policy.Pre_all { lookahead }
      | `Pre_single -> Core.Policy.Pre_single { lookahead; predictor }
    in
    let mode =
      if recompress then Core.Policy.Recompress else Core.Policy.Discard
    in
    let retention =
      retention_spec retention ~profile:(fun () -> Core.Scenario.profile sc)
    in
    let policy =
      Core.Policy.make ~mode ~strategy ?budget ~retention ~compress_k:k ()
    in
    Format.printf "%a@.policy: %s@.@." Core.Scenario.pp_summary sc
      (Core.Policy.describe policy);
    try
      let m =
        with_observability trace_out metrics (fun ?sink ?registry () ->
            match line_size with
            | None ->
              Core.Scenario.run ~profile:device_profile ?sink ?registry sc
                policy
            | Some line_size ->
              Core.Lineview.run ~profile:device_profile ?sink ?registry
                ~line_size sc policy)
      in
      Format.printf "%a@." Core.Metrics.pp m;
      0
    with Invalid_argument msg ->
      (* e.g. a pin-hot pinned set that alone exceeds --budget *)
      Format.eprintf "error: %s@." msg;
      1)
  | exception Invalid_argument msg ->
    Format.eprintf "error: %s@." msg;
    1)

let tasks_arg =
  Arg.(
    value
    & opt (some (list string)) None
    & info [ "tasks" ] ~docv:"W,W,..."
        ~doc:
          "Simulate a preemptive multitask composition of these workloads \
           (names or gen: specs) sharing one decompressed area.")

let quantum_arg =
  Arg.(
    value
    & opt (positive_int "quantum") 64
    & info [ "quantum" ] ~docv:"VISITS"
        ~doc:"Preemption quantum for --tasks, in block visits.")

let mt_seed_arg =
  Arg.(
    value
    & opt int 1
    & info [ "mt-seed" ] ~docv:"SEED"
        ~doc:"Seed of the preemption jitter stream for --tasks.")

let jitter_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "jitter" ] ~docv:"FRACTION"
        ~doc:
          "Preemption jitter for --tasks: each slice is perturbed by up to \
           this fraction of the quantum (seeded, deterministic).")

let sim_cmd =
  let doc = "Simulate one workload under a compression policy." in
  Cmd.v
    (Cmd.info "sim" ~doc)
    Term.(
      const sim $ workload_opt_arg $ gen_arg $ tasks_arg $ quantum_arg
      $ mt_seed_arg $ jitter_arg $ codec_arg $ k_arg $ strategy_arg
      $ lookahead_arg $ predictor_arg $ budget_arg $ recompress_arg
      $ retention_arg $ device_profile_arg $ line_size_arg $ trace_out_arg
      $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* Fleet options (shared by sweep and experiments)                     *)

let jobs_arg =
  Arg.(
    value
    & opt (positive_int "jobs") 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker-domain pool size; 1 runs inline with no domains.")

let cache_dir_arg ~default =
  let doc =
    if default then
      Printf.sprintf
        "Content-addressed result cache directory (default %s)."
        Fleet.Cache.default_dir
    else
      "Content-addressed result cache directory (caching is off unless \
       this is given)."
  in
  Arg.(
    value
    & opt (some string)
        (if default then Some Fleet.Cache.default_dir else None)
    & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Disable the result cache entirely.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Emit one JSONL line per completed job on stderr (same \
           line-per-record format as --trace-out).")

let fleet_cache ~no_cache ~cache_dir =
  match cache_dir with
  | Some dir when not no_cache -> Some (Fleet.Cache.open_dir dir)
  | _ -> None

let fleet_progress progress =
  if progress then
    Some
      (fun line ->
        output_string stderr (line ^ "\n");
        flush stderr)
  else None

let print_fleet_summary registry =
  let value name =
    Sim.Metrics.value (Sim.Metrics.counter registry name)
  in
  Printf.printf
    "fleet: submitted=%d completed=%d cache_hits=%d cache_misses=%d \
     engine_runs=%d errors=%d\n"
    (value "fleet_jobs_submitted")
    (value "fleet_jobs_completed")
    (value "fleet_cache_hits")
    (value "fleet_cache_misses")
    (value "fleet_engine_runs")
    (value "fleet_jobs_errored")

(* ------------------------------------------------------------------ *)
(* ccomp experiments                                                   *)

let experiments ids csv_dir list_only jobs cache_dir no_cache progress metrics
    =
  if list_only then begin
    let t =
      Report.Table.create ~title:"registered experiments"
        ~columns:
          [
            ("id", Report.Table.Left);
            ("slug", Report.Table.Left);
            ("paper anchor", Report.Table.Left);
          ]
    in
    List.iter
      (fun (e : Experiments.Registry.entry) ->
        Report.Table.add_row t [ e.id; e.slug; e.paper_anchor ])
      Experiments.Registry.all;
    print_string (Report.Table.render t);
    0
  end
  else begin
    let entries =
      match ids with
      | [] -> Experiments.Registry.all
      | ids ->
        List.map
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> e
            | None -> failwith (Printf.sprintf "unknown experiment %S" id))
          ids
    in
    let registry = Sim.Metrics.create () in
    Experiments.Util.configure_fleet ~jobs
      ?cache:(fleet_cache ~no_cache ~cache_dir)
      ~registry
      ?progress:(fleet_progress progress) ();
    List.iter
      (fun (e : Experiments.Registry.entry) ->
        let table = e.runner () in
        Printf.printf "[%s / %s] (%s)\n%s\n" e.id e.slug e.paper_anchor
          (Report.Table.render table);
        match csv_dir with
        | None -> ()
        | Some dir ->
          let path = Filename.concat dir (e.slug ^ ".csv") in
          let oc = open_out path in
          output_string oc (Report.Table.to_csv table);
          close_out oc;
          Printf.printf "(csv written to %s)\n\n" path)
      entries;
    if metrics then
      print_string
        (Report.Table.render (Sim.Metrics.to_table ~title:"metrics" registry));
    (* Keep the default output identical to the pre-fleet harness: the
       summary only appears when a fleet knob was actually turned. *)
    if jobs > 1 || cache_dir <> None || metrics || progress then
      print_fleet_summary registry;
    0
  end

let experiments_cmd =
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID"
          ~doc:"Experiment ids (E1..E21) or slugs; all when omitted.")
  in
  let csv =
    Arg.(
      value & opt (some dir) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each table as CSV here.")
  in
  let list_only =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:
            "Print each registered experiment's id, slug and paper anchor \
             without running anything.")
  in
  let doc = "Regenerate the paper's figures/tables (E1..E21)." in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(
      const experiments $ ids $ csv $ list_only $ jobs_arg
      $ cache_dir_arg ~default:false $ no_cache_arg $ progress_arg
      $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* ccomp sweep                                                         *)

let sweep workloads gens ks codec strategy lookahead predictor budget
    recompress retention device_profile line_size jobs cache_dir no_cache
    progress fuel timeout_ms metrics =
  match
    let names =
      match workloads @ gens with [] -> Workloads.Suite.names | ws -> ws
    in
    (* plain names are checked against the suite; gen:/multi: specs are
       canonicalized so equal shapes share cache keys *)
    let names =
      List.map
        (fun n ->
          match
            Corpus.Resolve.canonicalize
              ~known:(fun w -> List.mem w Workloads.Suite.names)
              n
          with
          | Ok canonical -> canonical
          | Error msg -> invalid_arg msg)
        names
    in
    let predictor =
      match predictor with
      | `First -> "first"
      | `Last -> "last-taken"
      | `Profile -> "profile"
    in
    let strategy =
      match strategy with
      | `On_demand -> Fleet.Job.On_demand
      | `Pre_all -> Fleet.Job.Pre_all { lookahead }
      | `Pre_single -> Fleet.Job.Pre_single { lookahead; predictor }
    in
    let mode =
      if recompress then Fleet.Job.Recompress else Fleet.Job.Discard
    in
    let retention =
      Experiments.Retention_compare.job_retention_of_name retention
    in
    (names, strategy, mode, retention)
  with
  | exception Invalid_argument msg ->
    Format.eprintf "error: %s@." msg;
    1
  | names, strategy, mode, retention ->
    let ks =
      let normalized = Fleet.Sweep.normalize_ks ks in
      if normalized <> ks then
        Format.eprintf "warning: --ks deduplicated and sorted to %s@."
          (String.concat "," (List.map string_of_int normalized));
      normalized
    in
    let specs =
      Fleet.Sweep.matrix ~codecs:[ codec ] ~strategies:[ strategy ]
        ~modes:[ mode ] ~budgets:[ budget ] ~retentions:[ retention ]
        ~profiles:[ device_profile ] ~line_sizes:[ line_size ]
        ~scenarios:names ~ks ()
    in
    let registry = Sim.Metrics.create () in
    let outcomes =
      Fleet.Sweep.run ~jobs
        ?cache:(fleet_cache ~no_cache ~cache_dir)
        ~registry
        ?progress:(fleet_progress progress)
        ?fuel ?timeout_ms
        ~resolve:(fun ~scenario ~codec -> scenario_of ~codec scenario)
        specs
    in
    let t =
      Report.Table.create
        ~title:
          (Printf.sprintf
             "sweep: %d jobs over %d workloads (codec %s, %d worker%s)"
             (List.length specs) (List.length names) codec jobs
             (if jobs = 1 then "" else "s"))
        ~columns:
          [
            ("workload", Report.Table.Left);
            ("k", Report.Table.Right);
            ("overhead", Report.Table.Right);
            ("peak mem saving", Report.Table.Right);
            ("avg mem saving", Report.Table.Right);
            ("demand decs", Report.Table.Right);
            ("discards", Report.Table.Right);
          ]
    in
    let errors = ref [] in
    List.iter
      (fun (o : Fleet.Sweep.outcome) ->
        match o.result with
        | Ok m ->
          Report.Table.add_row t
            [
              o.job.Fleet.Job.scenario;
              string_of_int o.job.Fleet.Job.k;
              Report.Table.fmt_pct (Core.Metrics.overhead_ratio m);
              Report.Table.fmt_pct (Core.Metrics.peak_memory_saving m);
              Report.Table.fmt_pct (Core.Metrics.avg_memory_saving m);
              string_of_int m.Core.Metrics.demand_decompressions;
              string_of_int m.Core.Metrics.discards;
            ]
        | Error msg ->
          errors := (Fleet.Job.describe o.job, msg) :: !errors)
      outcomes;
    print_string (Report.Table.render t);
    print_newline ();
    if metrics then
      print_string
        (Report.Table.render (Sim.Metrics.to_table ~title:"metrics" registry));
    print_fleet_summary registry;
    List.iter
      (fun (job, msg) -> Format.eprintf "error: %s: %s@." job msg)
      (List.rev !errors);
    if !errors = [] then 0 else 1

let sweep_cmd =
  let workloads =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "Workloads to sweep: suite names, gen: specs or multi: \
             compositions (all suite workloads when omitted).")
  in
  let gens =
    Arg.(
      value
      & opt_all string []
      & info [ "gen" ] ~docv:"SPEC"
          ~doc:
            "Add a gen: generated program to the sweep (repeatable; joins \
             any positional workloads).")
  in
  let ks =
    Arg.(
      value
      & opt (list (positive_int "k")) [ 1; 2; 4; 8; 16; 32 ]
      & info [ "ks" ] ~docv:"K,K,..."
          ~doc:"Comma-separated k values of the sweep grid.")
  in
  let fuel =
    Arg.(
      value
      & opt (some (positive_int "fuel")) None
      & info [ "fuel" ] ~docv:"TICKS"
          ~doc:
            "Per-job fuel: abort a job after this many simulation events.")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some (positive_int "timeout")) None
      & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Per-job wall-clock timeout.")
  in
  let doc =
    "Run a workload/policy sweep matrix through the fleet: a fixed-size \
     domain worker pool with a content-addressed on-disk result cache."
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const sweep $ workloads $ gens $ ks $ codec_arg $ strategy_arg
      $ lookahead_arg
      $ predictor_arg $ budget_arg $ recompress_arg $ retention_arg
      $ device_profile_arg $ line_size_arg $ jobs_arg
      $ cache_dir_arg ~default:true
      $ no_cache_arg $ progress_arg $ fuel $ timeout_ms $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* ccomp workloads                                                     *)

let workloads_check () =
  let results = Workloads.Suite.check_all () in
  List.iter
    (fun (name, result) ->
      match result with
      | Ok () -> Printf.printf "PASS %s\n" name
      | Error msg -> Printf.printf "FAIL %s: %s\n" name msg)
    results;
  if List.for_all (fun (_, r) -> Result.is_ok r) results then 0 else 1

let workloads_cmd =
  let doc = "Run every benchmark kernel against its OCaml reference." in
  Cmd.v (Cmd.info "workloads" ~doc) Term.(const workloads_check $ const ())

(* ------------------------------------------------------------------ *)
(* ccomp asm                                                           *)

let asm file listing dot =
  match In_channel.with_open_text file In_channel.input_all with
  | source -> (
    match Eris.Asm.assemble source with
    | Error e ->
      Format.eprintf "%s: %a@." file Eris.Asm.pp_error e;
      1
    | Ok prog ->
      let graph = Cfg.Build.of_program prog in
      Format.printf "%s: %d instructions, %d bytes@." file
        (Eris.Program.length prog)
        (Eris.Program.byte_size prog);
      Format.printf "%a@." Cfg.Graph.pp_stats graph;
      if listing then Format.printf "@.%a" Eris.Program.pp_listing prog;
      (match dot with
      | Some path ->
        Cfg.Dot.write_file path graph;
        Format.printf "CFG written to %s@." path
      | None -> ());
      0)
  | exception Sys_error msg ->
    Format.eprintf "error: %s@." msg;
    1

let asm_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Assembly source.")
  in
  let listing =
    Arg.(value & flag & info [ "listing" ] ~doc:"Print the disassembly listing.")
  in
  let dot =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"OUT" ~doc:"Write the CFG in Graphviz format.")
  in
  let doc = "Assemble an ERIS-32 source file and analyze its CFG." in
  Cmd.v (Cmd.info "asm" ~doc) Term.(const asm $ file $ listing $ dot)

(* ------------------------------------------------------------------ *)
(* ccomp trace                                                         *)

let trace_cmd_impl workload codec out =
  match scenario_of ~codec workload with
  | sc ->
    Format.printf "%a@." Core.Scenario.pp_summary sc;
    let profile = Core.Scenario.profile sc in
    let g = sc.Core.Scenario.graph in
    Format.printf "block visit counts:@.";
    Array.iter
      (fun (b : Cfg.Graph.block) ->
        Format.printf "  B%-3d %6d visits  (%3dB%s)@." b.id
          (Cfg.Profile.block_count profile b.id)
          b.byte_size
          (match b.label with Some l -> ", " ^ l | None -> ""))
      (Cfg.Graph.blocks g);
    (match out with
    | Some path ->
      Trace.Io.save path sc.Core.Scenario.trace;
      Format.printf "trace written to %s@." path
    | None -> ());
    0
  | exception Invalid_argument msg ->
    Format.eprintf "error: %s@." msg;
    1

let trace_convert_impl input output to_format lzss frame =
  match Trace.Io.load input with
  | Error e ->
    Format.eprintf "error: %s: %s@." input e;
    1
  | Ok ids ->
    let binary =
      match to_format with
      | `Binary -> true
      | `Text -> false
      | `Auto -> Filename.check_suffix output ".bin"
                 || Filename.check_suffix output ".ctb"
    in
    (try
       if binary then Trace.Binary.write_file ~lzss ~frame output ids
       else Trace.Io.save ~format:`Text output ids
     with Invalid_argument msg ->
       Format.eprintf "error: %s@." msg;
       Stdlib.exit 1);
    let size path = (Unix.stat path).Unix.st_size in
    Format.printf "%s: %d ids, %d bytes -> %s: %d bytes (%s)@." input
      (Array.length ids) (size input) output (size output)
      (if binary then if lzss then "binary+lzss" else "binary" else "text");
    0

let trace_info_impl file =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error msg ->
    Format.eprintf "error: %s@." msg;
    1
  | data ->
    if Trace.Binary.is_binary data then (
      match Trace.Binary.info data with
      | Error e ->
        Format.eprintf "error: %s: %s@." file e;
        1
      | Ok i ->
        Format.printf "format:       binary v%d%s@." i.Trace.Binary.version
          (if i.lzss then " (lzss frames)" else "");
        (match i.header_count with
        | Some c -> Format.printf "header count: %d@." c
        | None -> Format.printf "header count: unknown (unseekable writer)@.");
        Format.printf "ids:          %d@." i.ids;
        Format.printf "frames:       %d@." i.frames;
        Format.printf "payload:      %d bytes stored, %d raw@." i.stored_bytes
          i.raw_bytes;
        Format.printf "file:         %d bytes (%.2f bytes/id)@."
          (String.length data)
          (if i.ids = 0 then 0.0
           else float_of_int (String.length data) /. float_of_int i.ids);
        0)
    else (
      match Trace.Io.of_string data with
      | Error e ->
        Format.eprintf "error: %s: %s@." file e;
        1
      | Ok ids ->
        Format.printf "format:       text@.";
        Format.printf "ids:          %d@." (Array.length ids);
        Format.printf "file:         %d bytes (%.2f bytes/id)@."
          (String.length data)
          (if Array.length ids = 0 then 0.0
           else float_of_int (String.length data)
                /. float_of_int (Array.length ids));
        0)

let trace_cmd =
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Save the block trace to a file (binary when $(docv) ends in \
             .bin/.ctb, text otherwise).")
  in
  let doc = "Show a workload's dynamic basic-block access pattern." in
  let gen_term = Term.(const trace_cmd_impl $ workload_arg $ codec_arg $ out) in
  let gen_cmd =
    Cmd.v
      (Cmd.info "gen"
         ~doc:
           "Generate a workload's trace (the default when WORKLOAD is given \
            directly).")
      gen_term
  in
  let convert_cmd =
    let input =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"INPUT" ~doc:"Trace file to read (either format).")
    in
    let output =
      Arg.(
        required
        & pos 1 (some string) None
        & info [] ~docv:"OUTPUT" ~doc:"Trace file to write.")
    in
    let to_format =
      Arg.(
        value
        & opt (enum [ ("auto", `Auto); ("text", `Text); ("binary", `Binary) ])
            `Auto
        & info [ "to" ] ~docv:"FORMAT"
            ~doc:
              "Output format: $(b,text), $(b,binary), or $(b,auto) (by \
               OUTPUT's extension).")
    in
    let lzss =
      Arg.(
        value & flag
        & info [ "lzss" ]
            ~doc:"LZSS-compress each binary frame (dogfoods lib/compress).")
    in
    let frame =
      Arg.(
        value & opt int 65536
        & info [ "frame" ] ~docv:"N" ~doc:"Ids per binary frame.")
    in
    Cmd.v
      (Cmd.info "convert" ~doc:"Convert a trace between text and binary.")
      Term.(const trace_convert_impl $ input $ output $ to_format $ lzss $ frame)
  in
  let info_cmd =
    let file =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"FILE" ~doc:"Trace file to inspect.")
    in
    Cmd.v
      (Cmd.info "info"
         ~doc:"Show a trace file's format, header and size statistics.")
      Term.(const trace_info_impl $ file)
  in
  Cmd.group ~default:gen_term (Cmd.info "trace" ~doc)
    [ gen_cmd; convert_cmd; info_cmd ]

(* ------------------------------------------------------------------ *)
(* ccomp cc                                                            *)

let cc file emit_asm optimize k =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg ->
    Format.eprintf "error: %s@." msg;
    1
  | source -> (
    match Minic.Compile.to_assembly ~optimize source with
    | Error e ->
      Format.eprintf "%s: %a@." file Minic.Compile.pp_error e;
      1
    | Ok asm ->
      if emit_asm then begin
        print_string asm;
        0
      end
      else begin
        let prog = Eris.Asm.assemble_exn asm in
        let graph = Cfg.Build.of_program prog in
        Format.printf "%s: %d instructions, %d basic blocks@." file
          (Eris.Program.length prog)
          (Cfg.Graph.num_blocks graph);
        match Runtime.run ~k prog with
        | Ok (machine, stats) ->
          Format.printf
            "main() = %d (executed from compressed memory, k=%d)@.%d \
             instructions, %d traps, %d decompressions, %dB peak copies@."
            (let raw = Eris.Machine.read_word machine Minic.Codegen.result_addr in
             if raw land 0x80000000 <> 0 then raw - 0x100000000 else raw)
            k stats.Runtime.instructions stats.Runtime.traps
            stats.Runtime.decompressions stats.Runtime.peak_copy_bytes;
          0
        | Error (Runtime.Out_of_fuel _) ->
          Format.eprintf "error: out of fuel@.";
          1
        | Error (Runtime.Machine_fault { pc; message; _ }) ->
          Format.eprintf "error: fault at %d: %s@." pc message;
          1
      end)

let cc_cmd =
  let file =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source.")
  in
  let emit_asm =
    Arg.(value & flag & info [ "S" ] ~doc:"Emit ERIS-32 assembly and stop.")
  in
  let optimize =
    Arg.(
      value & flag
      & info [ "O" ]
          ~doc:"Optimize (constant folding, strength reduction, branch pruning).")
  in
  let doc =
    "Compile a MiniC source file and execute it from compressed memory."
  in
  Cmd.v (Cmd.info "cc" ~doc) Term.(const cc $ file $ emit_asm $ optimize $ k_arg)

(* ------------------------------------------------------------------ *)
(* ccomp run                                                           *)

let run_gen spec codec_v k retention device_profile line_size trace_out
    metrics =
  let sc = scenario_of ~codec:"code" spec in
  let prog = Option.get sc.Core.Scenario.program in
  let retention =
    retention_spec retention ~profile:(fun () -> Core.Scenario.profile sc)
  in
  match
    with_observability trace_out metrics (fun ?sink ?registry () ->
        Runtime.run ~k ~retention ~profile:device_profile ?codec:codec_v
          ?line_size ?sink ?registry prog)
  with
  | Ok (_, stats) ->
    (* generated programs carry no reference checksum; the runtime
       completing the same trace shape is the verification *)
    Format.printf
      "@[<v>%s executed from compressed memory (k=%d)@,\
       instructions: %d; traps: %d; decompressions: %d; patches: %d; \
       deletions: %d@,\
       image: %dB original, %dB compressed; copies: %dB peak, %dB at halt@]@."
      spec k stats.Runtime.instructions stats.Runtime.traps
      stats.Runtime.decompressions stats.Runtime.patches
      stats.Runtime.deletions stats.Runtime.original_image_bytes
      stats.Runtime.compressed_image_bytes stats.Runtime.peak_copy_bytes
      stats.Runtime.live_copy_bytes;
    0
  | Error (Runtime.Out_of_fuel _) ->
    Format.eprintf "error: out of fuel@.";
    1
  | Error (Runtime.Machine_fault { pc; message; _ }) ->
    Format.eprintf "error: fault at %d: %s@." pc message;
    1

let run_real workload gen codec k retention device_profile line_size trace_out
    metrics =
  match effective_workload workload gen with
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    1
  | Ok name when Corpus.Resolve.is_multi name ->
    Format.eprintf
      "error: multi: compositions are simulation-only (one machine runs one \
       program) — use `ccomp sim --tasks`@.";
    1
  | Ok name when Corpus.Resolve.is_gen name ->
    let codec_v =
      match codec with
      | "code" -> None
      | other -> Some (Compress.Registry.find_exn other)
    in
    run_gen name codec_v k retention device_profile line_size trace_out metrics
  | Ok workload ->
  let w = Workloads.Suite.find_exn workload in
  let prog = Eris.Asm.assemble_exn w.Workloads.Common.source in
  let codec_v =
    match codec with
    | "code" -> None
    | other -> Some (Compress.Registry.find_exn other)
  in
  let retention =
    retention_spec retention ~profile:(fun () ->
        (* profile the workload in the plain interpreter first *)
        Core.Scenario.profile (Workloads.Common.scenario w))
  in
  match
    with_observability trace_out metrics (fun ?sink ?registry () ->
        Runtime.run ~k ~retention ~profile:device_profile ?codec:codec_v
          ?line_size ?sink ?registry prog)
  with
  | Ok (machine, stats) ->
    let got = Eris.Machine.read_word machine w.Workloads.Common.result_addr in
    Format.printf
      "@[<v>%s executed from compressed memory (k=%d)@,\
       checksum: 0x%08x (%s)@,\
       instructions: %d; traps: %d; decompressions: %d; patches: %d; \
       deletions: %d@,\
       image: %dB original, %dB compressed; copies: %dB peak, %dB at halt@]@."
      workload k got
      (if got = w.Workloads.Common.expected then "matches reference"
       else "MISMATCH")
      stats.Runtime.instructions stats.Runtime.traps
      stats.Runtime.decompressions stats.Runtime.patches
      stats.Runtime.deletions stats.Runtime.original_image_bytes
      stats.Runtime.compressed_image_bytes stats.Runtime.peak_copy_bytes
      stats.Runtime.live_copy_bytes;
    if got = w.Workloads.Common.expected then 0 else 1
  | Error (Runtime.Out_of_fuel _) ->
    Format.eprintf "error: out of fuel@.";
    1
  | Error (Runtime.Machine_fault { pc; message; _ }) ->
    Format.eprintf "error: fault at %d: %s@." pc message;
    1

let run_cmd =
  let doc =
    "Execute a workload for real from an all-compressed image (the \
     executable implementation of the paper's section 5 scheme)."
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_real $ workload_opt_arg $ gen_arg $ codec_arg $ k_arg
      $ retention_arg $ device_profile_arg $ line_size_arg $ trace_out_arg
      $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* ccomp analyze                                                       *)

let analyze workload codec =
  match scenario_of ~codec workload with
  | sc ->
    let g = sc.Core.Scenario.graph in
    let n = Cfg.Graph.num_blocks g in
    Format.printf "%a@.@." Core.Scenario.pp_summary sc;
    Format.printf "%a@.@." (Trace.Analysis.pp_summary ~blocks:n)
      sc.Core.Scenario.trace;
    let loops = Cfg.Loop.detect g in
    Format.printf "natural loops: %d@." (List.length loops);
    List.iter
      (fun l ->
        Format.printf "  header B%d, body {%s}@." l.Cfg.Loop.header
          (String.concat ", "
             (List.map (Printf.sprintf "B%d") l.Cfg.Loop.body)))
      loops;
    let profile = Core.Scenario.profile sc in
    Format.printf "hot blocks (95%% of visits): {%s}@.@."
      (String.concat ", "
         (List.map (Printf.sprintf "B%d")
            (Cfg.Profile.hot_blocks profile ~fraction:0.95)));
    let loop_k = Core.Adaptive.loop_aware g in
    let reuse_k = Core.Adaptive.reuse_aware g sc.Core.Scenario.trace in
    Format.printf "recommended per-block k (loop-aware / reuse-aware):@.";
    Array.iter
      (fun (b : Cfg.Graph.block) ->
        Format.printf "  B%-3d %3d / %3d  (%d visits)@." b.id (loop_k b.id)
          (reuse_k b.id)
          (Cfg.Profile.block_count profile b.id))
      (Cfg.Graph.blocks g);
    0
  | exception Invalid_argument msg ->
    Format.eprintf "error: %s@." msg;
    1

let analyze_cmd =
  let doc =
    "Analyze a workload's access pattern: reuse distances, loops, hot \
     blocks and recommended k values."
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const analyze $ workload_arg $ codec_arg)

(* ------------------------------------------------------------------ *)
(* ccomp serve                                                         *)

let serve socket tcp jobs queue max_conns cache_dir no_cache fuel timeout_ms
    idle_timeout max_buffer_kb =
  if socket = None && tcp = None then begin
    Format.eprintf "error: need --socket PATH and/or --tcp PORT@.";
    1
  end
  else
    match
      let lifecycle = Service.Lifecycle.create () in
      Service.Lifecycle.install_signal_handlers lifecycle;
      let config =
        {
          Service.Server.default_config with
          socket_path = socket;
          tcp_port = tcp;
          jobs;
          queue;
          max_conns;
          cache = fleet_cache ~no_cache ~cache_dir;
          fuel;
          timeout_ms;
          idle_timeout_s = Option.map float_of_int idle_timeout;
          max_buffer_bytes = max_buffer_kb * 1024;
        }
      in
      Service.Server.create ~lifecycle config
    with
    | server ->
      List.iter
        (fun e -> Format.printf "ccomp serve: listening on %s@." e)
        (Service.Server.endpoints server);
      Format.printf
        "ccomp serve: %d worker%s, queue %d, max %d connection%s, cache %s@."
        jobs
        (if jobs = 1 then "" else "s")
        queue max_conns
        (if max_conns = 1 then "" else "s")
        (match cache_dir with
        | Some d when not no_cache -> d
        | _ -> "off");
      Service.Server.run server;
      Format.printf "ccomp serve: drained@.";
      0
    | exception Invalid_argument msg | exception Sys_error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | exception Unix.Unix_error (e, fn, arg) ->
      Format.eprintf "error: %s: %s%s@." fn (Unix.error_message e)
        (if arg = "" then "" else " (" ^ arg ^ ")");
      1

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")

let tcp_arg =
  Arg.(
    value
    & opt (some (positive_int "port")) None
    & info [ "tcp" ] ~docv:"PORT" ~doc:"Loopback TCP port to listen on.")

let serve_cmd =
  let queue =
    Arg.(
      value
      & opt (bounded_int ~min:0 "queue") 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission queue depth on top of the executing requests; a \
             request arriving when jobs + queue are busy is rejected with \
             an 'overloaded' error and a retry hint.")
  in
  let max_conns =
    Arg.(
      value
      & opt (positive_int "max-conns") 64
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Maximum simultaneous client connections.")
  in
  let fuel =
    Arg.(
      value
      & opt (some (positive_int "fuel")) None
      & info [ "fuel" ] ~docv:"TICKS"
          ~doc:
            "Default per-request fuel cap (requests may only tighten it).")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some (positive_int "timeout")) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline (requests may only tighten it).")
  in
  let idle_timeout =
    Arg.(
      value
      & opt (some (positive_int "idle-timeout")) None
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Drain and exit after this long with no connections and no \
             requests.")
  in
  let max_buffer_kb =
    Arg.(
      value
      & opt (bounded_int ~min:16 "max-buffer-kb") 4096
      & info [ "max-buffer-kb" ] ~docv:"KB"
          ~doc:
            "Per-connection write-buffer cap: a client that stops reading \
             while responses pile up past this is sent a 'slow_consumer' \
             error and disconnected (reads pause at half the cap).")
  in
  let doc =
    "Run the resident simulation daemon: a JSONL request/response \
     service over a Unix-domain socket (and/or loopback TCP) whose \
     requests share one worker pool, scenario memo and result cache. \
     Clients may pipeline requests; responses to heavy ops may arrive \
     out of order, re-associated by id. SIGTERM/SIGINT drain \
     gracefully; a second signal cancels in-flight work."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve $ socket_arg $ tcp_arg $ jobs_arg $ queue $ max_conns
      $ cache_dir_arg ~default:false
      $ no_cache_arg $ fuel $ timeout_ms $ idle_timeout $ max_buffer_kb)

(* ------------------------------------------------------------------ *)
(* ccomp call                                                          *)

let call_connect ~socket ~tcp =
  match (socket, tcp) with
  | Some path, _ ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  | None, Some port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    fd
  | None, None -> failwith "need --socket PATH or --tcp PORT"

(* Build the request object the same way the server parses it: only the
   fields this op consumes, so the line documents itself. *)
let call_request ~op ~workloads ~codec ~k ~ks ~strategy ~lookahead ~predictor
    ~budget ~recompress ~retention ~profile ~fuel ~timeout_ms ~id =
  let open Service.Json in
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  let guards =
    opt "timeout_ms" (fun v -> Int v) timeout_ms
    @ opt "fuel" (fun v -> Int v) fuel
  in
  let policy =
    [
      ("codec", Str codec);
      ( "strategy",
        Str
          (match strategy with
          | `On_demand -> "on-demand"
          | `Pre_all -> "pre-all"
          | `Pre_single -> "pre-single") );
      ("lookahead", Int lookahead);
      ( "predictor",
        Str
          (match predictor with
          | `First -> "first"
          | `Last -> "last-taken"
          | `Profile -> "profile") );
      ("mode", Str (if recompress then "recompress" else "discard"));
      ("retention", Str retention);
      ("profile", Str profile);
    ]
    @ opt "budget" (fun v -> Int v) budget
  in
  let base =
    [
      ("v", Int Service.Wire.protocol_version);
      ("id", Int id);
      ("op", Str op);
    ]
  in
  let one_workload () =
    match workloads with
    | [ w ] -> ("workload", Str w)
    | [] -> failwith (op ^ " needs a WORKLOAD argument")
    | _ -> failwith (op ^ " takes exactly one WORKLOAD")
  in
  match op with
  | "health" | "stats" ->
    if workloads <> [] then failwith (op ^ " takes no WORKLOAD arguments");
    Obj base
  | "sim" -> Obj (base @ [ one_workload (); ("k", Int k) ] @ policy @ guards)
  | "sweep" ->
    let ws =
      match workloads with
      | [] -> []
      | ws -> [ ("workloads", List (List.map (fun w -> Str w) ws)) ]
    in
    let ks =
      opt "ks" (fun vs -> List (List.map (fun v -> Int v) vs)) ks
    in
    Obj (base @ ws @ ks @ policy @ guards)
  | "compress" ->
    let codec = if codec = "code" then [] else [ ("codec", Str codec) ] in
    Obj (base @ [ one_workload () ] @ codec @ guards)
  | other ->
    failwith
      (Printf.sprintf
         "unknown op %S (expected health, stats, sim, sweep or compress; \
          use --raw for anything else)"
         other)

(* One reply on stdout/stderr; returns whether it was ok. *)
let print_reply ~compact reply =
  match Service.Wire.parse_response reply with
  | Error msg ->
    Format.eprintf "error: unparseable response (%s): %s@." msg reply;
    false
  | Ok (_id, Ok payload) ->
    print_endline
      (if compact then Service.Json.to_string payload
       else Service.Json.pretty payload);
    true
  | Ok (_id, Error e) ->
    Format.eprintf "error: %s: %s%s@." e.Service.Wire.code e.Service.Wire.msg
      (match e.Service.Wire.retry_after_ms with
      | Some ms -> Printf.sprintf " (retry after %dms)" ms
      | None -> "");
    false

let call socket tcp raw op_args codec k ks strategy lookahead predictor
    budget recompress retention profile fuel timeout_ms id compact repeat
    pipeline =
  match
    let build i =
      match (raw, op_args) with
      | Some line, [] -> line
      | Some _, _ :: _ -> failwith "--raw and OP are mutually exclusive"
      | None, [] ->
        failwith "missing OP (health, stats, sim, sweep or compress)"
      | None, op :: workloads ->
        Service.Json.to_string
          (call_request ~op ~workloads ~codec ~k ~ks ~strategy ~lookahead
             ~predictor ~budget ~recompress ~retention ~profile ~fuel
             ~timeout_ms ~id:(id + i))
    in
    let lines = Array.init repeat build in
    let window = min pipeline repeat in
    let fd = call_connect ~socket ~tcp in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let oc = Unix.out_channel_of_descr fd in
        let ic = Unix.in_channel_of_descr fd in
        let sent = ref 0 in
        let send_upto target =
          let target = min target repeat in
          if !sent < target then begin
            while !sent < target do
              output_string oc lines.(!sent);
              output_char oc '\n';
              incr sent
            done;
            flush oc
          end
        in
        send_upto window;
        let failures = ref 0 in
        let received = ref 0 in
        while !received < repeat do
          let reply = input_line ic in
          incr received;
          if not (print_reply ~compact reply) then incr failures;
          (* refill the pipeline once it half-drains *)
          if !sent < repeat && !sent - !received <= window / 2 then
            send_upto (!received + window)
        done;
        if !failures = 0 then 0 else 1)
  with
  | exception Failure msg ->
    Format.eprintf "error: %s@." msg;
    1
  | exception End_of_file ->
    Format.eprintf "error: server closed the connection without replying@.";
    1
  | exception Unix.Unix_error (e, fn, arg) ->
    Format.eprintf "error: %s: %s%s@." fn (Unix.error_message e)
      (if arg = "" then "" else " (" ^ arg ^ ")");
    1
  | code -> code

let call_cmd =
  let op_args =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"OP [WORKLOAD..]"
          ~doc:
            "Operation (health, stats, sim, sweep or compress) followed by \
             its workload arguments.")
  in
  let raw =
    Arg.(
      value
      & opt (some string) None
      & info [ "raw" ] ~docv:"JSON"
          ~doc:"Send this exact request line instead of building one.")
  in
  let ks =
    Arg.(
      value
      & opt (some (list (positive_int "k"))) None
      & info [ "ks" ] ~docv:"K,K,..."
          ~doc:"Sweep k values (server default when omitted).")
  in
  let fuel =
    Arg.(
      value
      & opt (some (positive_int "fuel")) None
      & info [ "fuel" ] ~docv:"TICKS" ~doc:"Per-request fuel cap.")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some (positive_int "timeout")) None
      & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Per-request deadline.")
  in
  let id =
    Arg.(
      value
      & opt (positive_int "id") 1
      & info [ "id" ] ~docv:"ID" ~doc:"Request id echoed by the server.")
  in
  let compact =
    Arg.(
      value & flag
      & info [ "compact" ]
          ~doc:"Print the reply as one line instead of pretty-printing.")
  in
  let repeat =
    Arg.(
      value
      & opt (positive_int "repeat") 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Send the request N times on one connection (ids ID..ID+N-1), \
             printing each reply as it arrives.")
  in
  let pipeline =
    Arg.(
      value
      & opt (positive_int "pipeline") 1
      & info [ "pipeline" ] ~docv:"N"
          ~doc:
            "With --repeat, keep up to N requests in flight instead of \
             waiting for each reply (heavy ops may answer out of order; \
             match replies by id).")
  in
  let doc =
    "Send a request to a running $(b,ccomp serve) daemon and \
     pretty-print the reply (or several, with --repeat/--pipeline). \
     Exits 0 when every reply is ok, 1 otherwise."
  in
  Cmd.v (Cmd.info "call" ~doc)
    Term.(
      const call $ socket_arg $ tcp_arg $ raw $ op_args $ codec_arg $ k_arg
      $ ks $ strategy_arg $ lookahead_arg $ predictor_arg $ budget_arg
      $ recompress_arg $ retention_arg $ device_profile_arg $ fuel
      $ timeout_ms $ id $ compact $ repeat $ pipeline)

(* ------------------------------------------------------------------ *)
(* ccomp bench-serve                                                   *)

let bench_serve clients requests pipeline tcp op smoke =
  let clients, requests, pipeline =
    if smoke then (2, 5_000, 32) else (clients, requests, pipeline)
  in
  match Service.Bench.run_load ~tcp ~op ~clients ~requests ~pipeline () with
  | exception Invalid_argument msg | exception Sys_error msg ->
    Format.eprintf "error: %s@." msg;
    1
  | exception Unix.Unix_error (e, fn, arg) ->
    Format.eprintf "error: %s: %s%s@." fn (Unix.error_message e)
      (if arg = "" then "" else " (" ^ arg ^ ")");
    1
  | r ->
    Printf.printf
      "bench-serve: %d client%s x %d requests, pipeline %d, %s, op %s\n"
      r.Service.Bench.clients
      (if r.Service.Bench.clients = 1 then "" else "s")
      requests r.Service.Bench.pipeline
      (if tcp then "tcp" else "unix")
      op;
    Printf.printf
      "bench-serve: %d responses in %.3f s = %.0f req/s, p50 %.3f ms, p99 \
       %.3f ms, max %.3f ms, errors %d\n"
      r.Service.Bench.total r.Service.Bench.wall_s r.Service.Bench.req_per_s
      r.Service.Bench.p50_ms r.Service.Bench.p99_ms r.Service.Bench.max_ms
      r.Service.Bench.errors;
    if r.Service.Bench.errors = 0 then 0 else 1

let bench_serve_cmd =
  let clients =
    Arg.(
      value
      & opt (positive_int "clients") 4
      & info [ "clients" ] ~docv:"N"
          ~doc:"Concurrent load-generator clients (each its own domain).")
  in
  let requests =
    Arg.(
      value
      & opt (positive_int "requests") 25_000
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let pipeline =
    Arg.(
      value
      & opt (positive_int "pipeline") 32
      & info [ "pipeline" ] ~docv:"N"
          ~doc:"Requests each client keeps in flight.")
  in
  let tcp =
    Arg.(
      value & flag
      & info [ "tcp" ]
          ~doc:
            "Benchmark over an ephemeral loopback TCP port instead of a \
             Unix-domain socket.")
  in
  let op =
    Arg.(
      value
      & opt (enum [ ("health", "health"); ("stats", "stats") ]) "health"
      & info [ "op" ] ~docv:"OP"
          ~doc:"Request to hammer with: $(b,health) or $(b,stats).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Quick CI-sized run (2 clients x 5000 requests), overriding \
             --clients/--requests/--pipeline.")
  in
  let doc =
    "Load-test the service event loop: spin up an in-process daemon and \
     hammer it with pipelined requests from concurrent clients, \
     reporting throughput and latency quantiles."
  in
  Cmd.v (Cmd.info "bench-serve" ~doc)
    Term.(
      const bench_serve $ clients $ requests $ pipeline $ tcp $ op $ smoke)

(* ------------------------------------------------------------------ *)
(* ccomp cache                                                         *)

let cache_admin dir prune_to =
  match Fleet.Cache.open_dir dir with
  | exception Sys_error msg ->
    Format.eprintf "error: %s@." msg;
    1
  | cache ->
    (match prune_to with
    | None -> ()
    | Some max_bytes ->
      let removed = Fleet.Cache.gc cache ~max_bytes in
      Printf.printf "evicted %d entr%s (%d bytes)\n"
        removed.Fleet.Cache.entries
        (if removed.Fleet.Cache.entries = 1 then "y" else "ies")
        removed.Fleet.Cache.bytes);
    let s = Fleet.Cache.stats cache in
    Printf.printf "cache %s: %d entr%s, %d bytes\n" dir s.Fleet.Cache.entries
      (if s.Fleet.Cache.entries = 1 then "y" else "ies")
      s.Fleet.Cache.bytes;
    0

let cache_cmd =
  let dir =
    Arg.(
      value
      & opt string Fleet.Cache.default_dir
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Cache directory (same default as the sweep commands).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print entry count and total bytes (the default action).")
  in
  let prune_to =
    Arg.(
      value
      & opt (some (bounded_int ~min:0 "prune-to")) None
      & info [ "prune-to" ] ~docv:"BYTES"
          ~doc:
            "Evict oldest entries first until at most $(docv) remain on \
             disk; 0 empties the cache.")
  in
  let doc =
    "Inspect or prune the content-addressed result cache shared by \
     sweep, experiments and serve."
  in
  Cmd.v (Cmd.info "cache" ~doc)
    Term.(
      const (fun dir _stats prune_to -> cache_admin dir prune_to)
      $ dir $ stats $ prune_to)

(* ------------------------------------------------------------------ *)
(* ccomp compress                                                      *)

(* Per-codec wall-clock throughput and ratio over assembled workload
   images, through the same Compress.Stats.throughput measurement the
   bench harness uses — the CLI answer to "how fast is decompression
   on this machine", next to the simulator's cycle-cost model. *)
(* `ccomp compress --list`: the registry contents, so --codec takers
   and the unknown-codec error have a discoverable source of truth. *)
let compress_list () =
  let t =
    Report.Table.create
      ~title:
        "registered codecs (--codec also takes 'code': the positional \
         shared-Huffman model trained on the workload itself)"
      ~columns:
        [
          ("codec", Report.Table.Left);
          ("dec cycles/B", Report.Table.Right);
          ("comp cycles/B", Report.Table.Right);
        ]
  in
  List.iter
    (fun (c : Compress.Codec.t) ->
      Report.Table.add_row t
        [
          c.name;
          string_of_int c.dec_cycles_per_byte;
          string_of_int c.comp_cycles_per_byte;
        ])
    (Compress.Registry.all ());
  Report.Table.print t;
  0

let compress_report list_only workloads min_time_ms =
  if list_only then compress_list ()
  else
  let names =
    match workloads with [] -> Workloads.Suite.names | ws -> ws
  in
  match
    List.find_opt
      (fun n -> not (List.mem n Workloads.Suite.names))
      names
  with
  | Some bad ->
    Format.eprintf "error: unknown workload %S (try: ccomp workloads)@." bad;
    1
  | None ->
    let images =
      List.map
        (fun name ->
          let w = Workloads.Suite.find_exn name in
          (Eris.Asm.assemble_exn w.Workloads.Common.source).Eris.Program.image)
        names
    in
    let corpus = Bytes.concat Bytes.empty images in
    let codecs =
      Compress.Registry.all () @ Compress.Registry.shared_all ~corpus
    in
    let total = List.fold_left (fun a b -> a + Bytes.length b) 0 images in
    let t =
      Report.Table.create
        ~title:
          (Printf.sprintf
             "codec throughput: %d workload image%s, %d bytes total (MiB/s \
              of uncompressed bytes; shared models trained on the same \
              images)"
             (List.length images)
             (if List.length images = 1 then "" else "s")
             total)
        ~columns:
          [
            ("codec", Report.Table.Left);
            ("comp MiB/s", Report.Table.Right);
            ("dec MiB/s", Report.Table.Right);
            ("ratio", Report.Table.Right);
          ]
    in
    List.iter
      (fun codec ->
        let tp =
          Compress.Stats.throughput
            ~min_time_s:(float_of_int min_time_ms /. 1000.0)
            codec images
        in
        Report.Table.add_row t
          [
            tp.Compress.Stats.tp_codec_name;
            Report.Table.fmt_float ~decimals:1 tp.Compress.Stats.comp_mbps;
            Report.Table.fmt_float ~decimals:1 tp.Compress.Stats.dec_mbps;
            Report.Table.fmt_float ~decimals:3 tp.Compress.Stats.tp_ratio;
          ])
      codecs;
    Report.Table.print t;
    0

let compress_cmd =
  let workloads =
    let doc =
      Printf.sprintf
        "Workloads whose images to measure (default: the whole suite; one \
         of: %s)."
        (String.concat ", " Workloads.Suite.names)
    in
    Arg.(value & pos_all string [] & info [] ~docv:"WORKLOAD" ~doc)
  in
  let min_time =
    Arg.(
      value
      & opt (positive_int "min-time") 50
      & info [ "min-time" ] ~docv:"MS"
          ~doc:"Minimum wall-clock time per codec per direction.")
  in
  let list_only =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:
            "List the registered codecs (with their modeled cycle costs) \
             and exit without measuring anything.")
  in
  let doc =
    "Measure per-codec compress/decompress throughput and ratio on \
     workload images (same measurement code as the bench harness)."
  in
  Cmd.v (Cmd.info "compress" ~doc)
    Term.(const compress_report $ list_only $ workloads $ min_time)

(* ------------------------------------------------------------------ *)
(* ccomp gen                                                           *)

let gen_describe spec_str =
  match Corpus.Spec.of_string spec_str with
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    1
  | Ok spec ->
    let bt = Corpus.Gen.build spec in
    Format.printf
      "@[<v>spec: %s@,\
       blocks: %d (%d hot)@,\
       image: %dB@,\
       trace: %d visits@,\
       measured skew: %.3f@,\
       image md5: %s@,\
       trace md5: %s@]@."
      (Corpus.Spec.to_string bt.Corpus.Gen.spec)
      (Cfg.Graph.num_blocks bt.Corpus.Gen.graph)
      bt.Corpus.Gen.hot_blocks
      (Eris.Program.byte_size bt.Corpus.Gen.program)
      (Array.length bt.Corpus.Gen.trace)
      bt.Corpus.Gen.measured_skew (Corpus.Gen.image_md5 bt)
      (Corpus.Gen.trace_md5 bt);
    0

let gen_cmd =
  let spec =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC" ~doc:"A gen: generator spec.")
  in
  let doc =
    "Generate a synthetic program from a gen: spec and print its canonical \
     spec, shape and content digests (equal specs print identical digests in \
     any process — the determinism contract)."
  in
  Cmd.v (Cmd.info "gen" ~doc) Term.(const gen_describe $ spec)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc =
    "access pattern-based code compression for memory-constrained embedded \
     systems (DATE 2005 reproduction)"
  in
  Cmd.group
    (Cmd.info "ccomp" ~version:"1.0.0" ~doc)
    [
      sim_cmd;
      gen_cmd;
      cc_cmd;
      compress_cmd;
      run_cmd;
      sweep_cmd;
      experiments_cmd;
      workloads_cmd;
      asm_cmd;
      trace_cmd;
      analyze_cmd;
      serve_cmd;
      call_cmd;
      bench_serve_cmd;
      cache_cmd;
    ]

(* Back-compat shim: `ccomp trace WORKLOAD ...` predates the
   convert/info subcommands; route any non-subcommand first token
   through the explicit `gen` subcommand. *)
let () =
  let argv = Sys.argv in
  let argv =
    if
      Array.length argv > 2
      && argv.(1) = "trace"
      &&
      match argv.(2) with
      | "gen" | "convert" | "info" -> false
      | s -> String.length s > 0 && s.[0] <> '-'
    then
      Array.concat
        [
          [| argv.(0); "trace"; "gen" |];
          Array.sub argv 2 (Array.length argv - 2);
        ]
    else argv
  in
  exit (Cmd.eval' ~argv main_cmd)
