#!/bin/sh
# Tier-1 gate: full build (library + CLI + examples + bench) and the
# complete test suite. `make check` runs the same thing.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune runtest
echo "check: OK"
