#!/bin/sh
# Tier-1 gate: dune-file formatting, full build (library + CLI +
# examples + bench), the complete test suite, and a bench smoke run
# (the streaming event-bus check, which has a built-in failure
# condition). `make check` runs the same build + tests.
set -eu
cd "$(dirname "$0")/.."
dune build @fmt
dune build @all
dune runtest
dune exec bench/main.exe -- --smoke
echo "check: OK"
