#!/bin/sh
# Tier-1 gate: dune-file formatting, full build (library + CLI +
# examples + bench), the complete test suite, a bench smoke run
# (the streaming event-bus check, which has a built-in failure
# condition), a fleet sweep smoke (parallel run against a cold
# cache, then the same sweep warm — the second run must be served
# entirely from cache and print identical tables), and a service
# smoke (real daemon on a Unix socket: serve, call — sequential and
# pipelined — counters move, SIGTERM drains to exit 0) plus a
# bench-serve load-generator smoke.
# `make check` runs the same build + tests.
set -eu
cd "$(dirname "$0")/.."
dune build @fmt
dune build @all
dune runtest
dune exec bench/main.exe -- --smoke

# Codec-throughput smoke: the bench smoke must have written a
# comp-MBps and dec-MBps entry for every registry codec, so a codec
# silently dropping out of the measured set fails here.
for codec in null rle huffman lzss lzw mtf-rle \
  bdi-16 bdi-32 bdi-64 cpack-16 cpack-32 cpack-64; do
  for dir in comp dec; do
    grep -q "\"codec/$codec/$dir-MBps\"" BENCH.json || {
      echo "check: FAIL — BENCH.json is missing codec/$codec/$dir-MBps" >&2
      exit 1
    }
  done
done

# Energy-accounting smoke: the bench smoke must have priced the probe
# run under every device profile, so a profile silently dropping out
# of the cost vocabulary fails here.
for profile in paper-2005 cortex-m-flash sram-heavy; do
  grep -q "\"energy/$profile/" BENCH.json || {
    echo "check: FAIL — BENCH.json is missing energy/$profile/* keys" >&2
    exit 1
  }
done

# Trace-codec smoke: the bench smoke must have measured the binary
# trace format's encode/decode throughput, so the format silently
# dropping out of the measured set fails here.
for key in trace/encode-MBps trace/decode-MBps trace/lzss-encode-MBps \
  trace/lzss-decode-MBps streaming-100M/events-per-s; do
  grep -q "\"$key\"" BENCH.json || {
    echo "check: FAIL — BENCH.json is missing $key" >&2
    exit 1
  }
done

# Corpus smoke: the bench smoke must have measured the generator's
# batch throughput.
grep -q '"corpus/gen-programs-per-s"' BENCH.json || {
  echo "check: FAIL — BENCH.json is missing corpus/gen-programs-per-s" >&2
  exit 1
}

# Service-load smoke: the bench smoke must have measured the event
# loop under pipelined concurrent load, so the serve path silently
# dropping out of the measured set fails here.
for key in service/req-per-s service/p50-ms service/p99-ms; do
  grep -q "\"$key\"" BENCH.json || {
    echo "check: FAIL — BENCH.json is missing $key" >&2
    exit 1
  }
done

# bench-serve smoke: the standalone load generator must run clean
# (exit 0 means zero protocol errors) and report a throughput figure.
dune exec bin/ccomp.exe -- bench-serve --smoke | grep -q 'req/s' || {
  echo "check: FAIL — bench-serve --smoke reported no throughput" >&2
  exit 1
}

# Generator determinism: the same gen: spec must print the same
# canonical form and identical image/trace digests across two separate
# processes (the cache-key contract), and a non-canonical spelling
# must canonicalize.
gen_dir=$(mktemp -d)
ccomp=_build/default/bin/ccomp.exe
"$ccomp" gen 'gen:fanout=3,seed=9,blocks=bim:4-40' > "$gen_dir/a.out"
"$ccomp" gen 'gen:seed=9,fanout=3,blocks=bim:4-40' > "$gen_dir/b.out"
if ! cmp -s "$gen_dir/a.out" "$gen_dir/b.out"; then
  echo "check: FAIL — ccomp gen is not deterministic across processes" >&2
  diff "$gen_dir/a.out" "$gen_dir/b.out" >&2 || true
  exit 1
fi
grep -q 'spec: gen:seed=9,depth=2,fanout=3,blocks=bim:4-40,calls=1,skew=0.9,cold=8,rounds=8' \
  "$gen_dir/a.out" || {
  echo "check: FAIL — ccomp gen did not canonicalize the spec" >&2
  cat "$gen_dir/a.out" >&2
  exit 1
}
rm -rf "$gen_dir"

# E20 smoke: a small generated corpus through the fleet cache, cold
# then warm — the warm run must be served entirely from cache.
e20_dir=$(mktemp -d)
e20="env CCOMP_E20_COUNT=8 $ccomp experiments E20 --jobs 2 --cache-dir $e20_dir/cache"
$e20 > "$e20_dir/cold.out"
$e20 > "$e20_dir/warm.out"
grep -q 'corpus-robustness' "$e20_dir/cold.out" || {
  echo "check: FAIL — E20 did not render" >&2
  cat "$e20_dir/cold.out" >&2
  exit 1
}
grep '^fleet:' "$e20_dir/warm.out" | grep -q 'engine_runs=0' || {
  echo "check: FAIL — warm E20 re-ran the engine" >&2
  grep '^fleet:' "$e20_dir/warm.out" >&2 || true
  exit 1
}
rm -rf "$e20_dir"

# Binary-trace smoke: generate a text trace, convert it to binary and
# back; both hops must load to byte-identical id streams, and `trace
# info` must parse the binary header.
trace_dir=$(mktemp -d)
ccomp=_build/default/bin/ccomp.exe
"$ccomp" trace gen dijkstra --out "$trace_dir/t.txt" > /dev/null
"$ccomp" trace convert "$trace_dir/t.txt" "$trace_dir/t.bin" --lzss > /dev/null
"$ccomp" trace convert "$trace_dir/t.bin" "$trace_dir/t2.txt" --to text \
  > /dev/null
if ! cmp -s "$trace_dir/t.txt" "$trace_dir/t2.txt"; then
  echo "check: FAIL — trace text->binary->text round trip is not identical" >&2
  exit 1
fi
ids=$(($(wc -l < "$trace_dir/t.txt") - 1))
"$ccomp" trace info "$trace_dir/t.bin" | grep -q "ids: *$ids\$" || {
  echo "check: FAIL — trace info did not report $ids ids" >&2
  exit 1
}
rm -rf "$trace_dir"

# Pareto smoke: the energy/cycles sweep (E18, ~2s) must run and
# report at least one workload whose energy-optimal k differs from
# its cycles-optimal k — the reason the energy dimension exists.
pareto_out=$(dune exec bin/ccomp.exe -- experiments E18 --jobs 2)
echo "$pareto_out" | grep -q 'yes' || {
  echo "check: FAIL — E18 reports no energy/cycles divergence" >&2
  echo "$pareto_out" >&2
  exit 1
}

# Line-granularity smoke: E19 (the compressed-I-cache scenario) must
# render its line-vs-block comparison for every suite workload, and a
# second run must be byte-identical (deterministic tables).
e19_a=$(dune exec bin/ccomp.exe -- experiments E19 --jobs 2)
e19_b=$(dune exec bin/ccomp.exe -- experiments E19 --jobs 2)
if [ "$e19_a" != "$e19_b" ]; then
  echo "check: FAIL — E19 is not deterministic across runs" >&2
  exit 1
fi
suite=$("$ccomp" workloads | wc -l)
block_rows=$(printf '%s\n' "$e19_a" | grep -c ' block ' || true)
if [ "$block_rows" -ne "$suite" ]; then
  echo "check: FAIL — E19 has $block_rows block-granularity rows for $suite workloads" >&2
  exit 1
fi

cache_dir=$(mktemp -d)
trap 'rm -rf "$cache_dir"' EXIT
sweep="dune exec bin/ccomp.exe -- sweep fir crc32 --ks 2,8 --jobs 2 --cache-dir $cache_dir"
$sweep > "$cache_dir/cold.out"
$sweep > "$cache_dir/warm.out"
grep '^fleet:' "$cache_dir/warm.out" | grep -q 'engine_runs=0' || {
  echo "check: FAIL — warm sweep re-ran the engine" >&2
  grep '^fleet:' "$cache_dir/warm.out" >&2
  exit 1
}
grep -v '^fleet:' "$cache_dir/cold.out" > "$cache_dir/cold.tbl"
grep -v '^fleet:' "$cache_dir/warm.out" > "$cache_dir/warm.tbl"
if ! diff "$cache_dir/cold.tbl" "$cache_dir/warm.tbl" > /dev/null; then
  echo "check: FAIL — warm sweep tables differ from cold run" >&2
  exit 1
fi

# Service smoke: a real daemon end to end over a Unix socket.
ccomp=_build/default/bin/ccomp.exe
sock="$cache_dir/serve.sock"
"$ccomp" serve --socket "$sock" --jobs 2 --cache-dir "$cache_dir/serve-cache" \
  > "$cache_dir/serve.out" 2>&1 &
serve_pid=$!
i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "check: FAIL — serve never bound its socket" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
"$ccomp" call --socket "$sock" health > "$cache_dir/health.out"
grep -q '"status": "ok"' "$cache_dir/health.out" || {
  echo "check: FAIL — health did not answer ok" >&2
  exit 1
}
"$ccomp" call --socket "$sock" sim fir -k 4 > "$cache_dir/sim.out"
grep -q '"total_cycles"' "$cache_dir/sim.out" || {
  echo "check: FAIL — sim returned no metrics" >&2
  exit 1
}
"$ccomp" call --socket "$sock" stats > "$cache_dir/stats.out"
grep -q '"count": 1' "$cache_dir/stats.out" || {
  echo "check: FAIL — stats counters did not move" >&2
  exit 1
}
# malformed input answers a structured error and exit 1, not a crash
if "$ccomp" call --socket "$sock" --raw 'not json' > /dev/null 2>&1; then
  echo "check: FAIL — malformed request did not error" >&2
  exit 1
fi
# the connection-killing request above must not have killed the daemon
"$ccomp" call --socket "$sock" health > /dev/null
# pipelined calls: 8 healths on one connection, all ok (exit 0), all
# eight replies printed
pipe_lines=$("$ccomp" call --socket "$sock" --compact \
  --repeat 8 --pipeline 8 health | wc -l)
if [ "$pipe_lines" -ne 8 ]; then
  echo "check: FAIL — call --repeat 8 printed $pipe_lines replies" >&2
  exit 1
fi
# prune the cache the daemon just populated
"$ccomp" cache --dir "$cache_dir/serve-cache" --stats \
  | grep -q '1 entry' || {
  echo "check: FAIL — serve did not populate its cache" >&2
  exit 1
}
"$ccomp" cache --dir "$cache_dir/serve-cache" --prune-to 0 \
  | grep -q ': 0 entries, 0 bytes' || {
  echo "check: FAIL — cache --prune-to 0 left entries behind" >&2
  exit 1
}
# SIGTERM: drain and exit 0 within the grace window
kill -TERM "$serve_pid"
serve_rc=0
wait "$serve_pid" || serve_rc=$?
if [ "$serve_rc" -ne 0 ]; then
  echo "check: FAIL — serve exited $serve_rc after SIGTERM" >&2
  cat "$cache_dir/serve.out" >&2
  exit 1
fi
grep -q 'drained' "$cache_dir/serve.out" || {
  echo "check: FAIL — serve did not report a drain" >&2
  exit 1
}

echo "check: OK"
