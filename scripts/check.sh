#!/bin/sh
# Tier-1 gate: dune-file formatting, full build (library + CLI +
# examples + bench), the complete test suite, a bench smoke run
# (the streaming event-bus check, which has a built-in failure
# condition), and a fleet sweep smoke (parallel run against a cold
# cache, then the same sweep warm — the second run must be served
# entirely from cache and print identical tables).
# `make check` runs the same build + tests.
set -eu
cd "$(dirname "$0")/.."
dune build @fmt
dune build @all
dune runtest
dune exec bench/main.exe -- --smoke

cache_dir=$(mktemp -d)
trap 'rm -rf "$cache_dir"' EXIT
sweep="dune exec bin/ccomp.exe -- sweep fir crc32 --ks 2,8 --jobs 2 --cache-dir $cache_dir"
$sweep > "$cache_dir/cold.out"
$sweep > "$cache_dir/warm.out"
grep '^fleet:' "$cache_dir/warm.out" | grep -q 'engine_runs=0' || {
  echo "check: FAIL — warm sweep re-ran the engine" >&2
  grep '^fleet:' "$cache_dir/warm.out" >&2
  exit 1
}
grep -v '^fleet:' "$cache_dir/cold.out" > "$cache_dir/cold.tbl"
grep -v '^fleet:' "$cache_dir/warm.out" > "$cache_dir/warm.tbl"
if ! diff "$cache_dir/cold.tbl" "$cache_dir/warm.tbl" > /dev/null; then
  echo "check: FAIL — warm sweep tables differ from cold run" >&2
  exit 1
fi
echo "check: OK"
