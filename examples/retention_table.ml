(* Regenerates the README's retention-policy table: E17 rendered as
   GitHub-flavored Markdown via Report.Table.to_markdown. *)

let () =
  print_string (Report.Table.to_markdown (Experiments.Retention_compare.run ()))
