(* Custom event sinks on the streaming bus: a real Runtime execution
   narrates itself as Sim.Events, and we attach three consumers at
   once — a hand-written per-block decompression histogram, the
   built-in constant-memory kind counters, and a JSONL file — without
   the runtime knowing or caring who is listening.

   Run with: dune exec examples/streaming_trace.exe [workload] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "dijkstra" in
  let w = Workloads.Suite.find_exn name in
  let prog = Eris.Asm.assemble_exn w.Workloads.Common.source in

  (* A custom sink is just a record with [emit] and [close]: this one
     histograms demand-decompression latencies per block, so hot
     re-decompressed blocks stand out. Constant memory: one bucket
     array per block ever decompressed. *)
  let registry = Sim.Metrics.create () in
  let per_block_latency =
    Sim.Events.callback (fun ev ->
        match ev with
        | Sim.Events.Demand_decompress { block; cycles; _ } ->
          Sim.Metrics.observe
            (Sim.Metrics.histogram registry
               ~labels:[ ("block", string_of_int block) ]
               ~buckets:[ 16; 64; 256; 1024 ]
               "block_dec_cycles")
            cycles
        | _ -> ())
  in
  let counters = Sim.Events.counters () in
  let jsonl_path = Filename.temp_file "streaming_trace" ".jsonl" in
  let file_sink = Sim.Events.to_file jsonl_path in
  let sink =
    Sim.Events.tee
      [ per_block_latency; Sim.Events.counting counters; file_sink ]
  in

  (match Runtime.run ~k:4 ~sink ~registry prog with
  | Ok (machine, stats) ->
    let got = Eris.Machine.read_word machine w.Workloads.Common.result_addr in
    Format.printf "%s: checksum 0x%08x (%s), %d instructions executed@.@." name
      got
      (if got = w.Workloads.Common.expected then "matches reference"
       else "MISMATCH")
      stats.Runtime.instructions
  | Error _ -> failwith "runtime error");
  sink.Sim.Events.close ();

  (* Consumer 1: the custom histogram, rendered from the registry
     (Runtime.run also published its final stats counters there). *)
  Report.Table.print
    (Sim.Metrics.to_table ~title:"per-block decompression latency" registry);
  print_newline ();

  (* Consumer 2: the kind counters. *)
  let t =
    Report.Table.create ~title:"event counts (constant-memory sink)"
      ~columns:[ ("kind", Report.Table.Left); ("count", Report.Table.Right) ]
  in
  List.iter
    (fun (kind, n) ->
      if n > 0 then Report.Table.add_row t [ kind; string_of_int n ])
    (Sim.Events.counts counters);
  Report.Table.print t;
  print_newline ();

  (* Consumer 3: the JSONL stream on disk, replayable with of_json. *)
  (match Sim.Events.read_file jsonl_path with
  | Ok events ->
    Printf.printf "%d events round-tripped through %s; first three:\n"
      (List.length events) jsonl_path;
    List.iteri
      (fun i ev ->
        if i < 3 then
          Printf.printf "  %6d  %s\n" (Sim.Events.time ev)
            (Sim.Events.describe ev))
      events
  | Error msg -> failwith msg);
  Sys.remove jsonl_path
