(* Tests for the service layer: the JSON codec, the wire protocol, the
   admission gate, and the daemon end to end over a real Unix-domain
   socket — round trips for every op, malformed input answered with
   structured errors on a connection that stays usable, backpressure
   at capacity, per-request guards, and the graceful drain. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

module Json = Service.Json
module Wire = Service.Wire

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

let reparse what s v =
  match Json.parse s with
  | Ok v' -> checkb what true (v = v')
  | Error e -> Alcotest.failf "%s: reparse failed: %s" what e

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("list", Json.List [ Json.Int 1; Json.Float 1.5; Json.Null ]);
        ("str", Json.Str "quote\" back\\ newline\n euro\xe2\x82\xac");
        ("bool", Json.Bool true);
        ("neg", Json.Int (-7));
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
      ]
  in
  reparse "compact round trip" (Json.to_string v) v;
  reparse "pretty round trip" (Json.pretty v) v

let test_json_escapes () =
  (match Json.parse {|"é 😀 \n\t\\"|} with
  | Ok (Json.Str s) ->
    checks "escape decoding" "\xc3\xa9 \xf0\x9f\x98\x80 \n\t\\" s
  | Ok _ -> Alcotest.fail "not a string"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* non-finite floats must not produce unparseable output *)
  reparse "nan emitted as null"
    (Json.to_string (Json.List [ Json.Float Float.nan; Json.Float infinity ]))
    (Json.List [ Json.Null; Json.Null ])

let test_json_rejects () =
  let bad s =
    checkb (Printf.sprintf "rejects %S" s) true
      (Result.is_error (Json.parse s))
  in
  bad "";
  bad "nul";
  bad "1 2";
  bad "{\"a\":1,}";
  bad "[1,]";
  bad "\"unterminated";
  bad "{\"a\" 1}";
  (* hostile nesting must not blow the stack *)
  bad (String.make 1000 '[');
  (* 64 levels is the documented cap; 63 still parses *)
  let nested n = String.make n '[' ^ "1" ^ String.make n ']' in
  checkb "63 levels ok" true (Result.is_ok (Json.parse (nested 63)));
  bad (nested 65)

let test_json_accessors () =
  let v = Result.get_ok (Json.parse {|{"i":3,"f":3.0,"h":3.5,"s":"x"}|}) in
  let get k = Option.get (Json.member k v) in
  checkb "int" true (Json.to_int (get "i") = Some 3);
  checkb "integral float is an int" true (Json.to_int (get "f") = Some 3);
  checkb "fractional float is not" true (Json.to_int (get "h") = None);
  checkb "float accepts int" true (Json.to_float (get "i") = Some 3.0);
  checkb "missing member" true (Json.member "zzz" v = None);
  checkb "member of non-object" true (Json.member "i" (Json.Int 1) = None)

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)

let test_wire_sim_defaults () =
  match Wire.parse_request {|{"op":"sim","workload":"fir"}|} with
  | Ok { request = Wire.Sim job; id; timeout_ms; fuel } ->
    checks "scenario" "fir" job.Fleet.Job.scenario;
    checks "codec default" "code" job.Fleet.Job.codec;
    checki "k default" 8 job.Fleet.Job.k;
    checkb "strategy default" true (job.Fleet.Job.strategy = Fleet.Job.On_demand);
    checkb "mode default" true (job.Fleet.Job.mode = Fleet.Job.Discard);
    checkb "retention default" true (job.Fleet.Job.retention = Fleet.Job.Kedge);
    checkb "no id" true (id = Json.Null);
    checkb "no guards" true (timeout_ms = None && fuel = None)
  | Ok _ -> Alcotest.fail "parsed as a different op"
  | Error (_, e) -> Alcotest.failf "rejected: %s: %s" e.Wire.code e.Wire.msg

let test_wire_corpus_spec () =
  (* gen:/multi: specs pass the workload check and come back
     canonicalized (key order, defaults filled in). *)
  (match
     Wire.parse_request
       {|{"op":"sim","workload":"gen:fanout=3,seed=7,blocks=geo:12"}|}
   with
  | Ok { request = Wire.Sim job; _ } ->
    checks "canonical gen spec"
      "gen:seed=7,depth=2,fanout=3,blocks=geo:12,calls=1,skew=0.9,cold=8,rounds=8"
      job.Fleet.Job.scenario
  | Ok _ -> Alcotest.fail "parsed as a different op"
  | Error (_, e) -> Alcotest.failf "rejected: %s: %s" e.Wire.code e.Wire.msg);
  (match
     Wire.parse_request {|{"op":"sim","workload":"multi:quantum=32;fir+crc32"}|}
   with
  | Ok { request = Wire.Sim job; _ } ->
    checks "canonical multi spec" "multi:quantum=32,seed=1,jitter=0;fir+crc32"
      job.Fleet.Job.scenario
  | Ok _ -> Alcotest.fail "parsed as a different op"
  | Error (_, e) -> Alcotest.failf "rejected: %s: %s" e.Wire.code e.Wire.msg);
  match
    Wire.parse_request {|{"op":"sim","workload":"gen:seed=1,zip=2"}|}
  with
  | Ok _ -> Alcotest.fail "malformed gen: spec accepted"
  | Error (_, e) -> checks "bad spec code" Wire.bad_request e.Wire.code

let test_wire_sweep_normalizes_ks () =
  match
    Wire.parse_request {|{"op":"sweep","workloads":["fir"],"ks":[8,2,2,8]}|}
  with
  | Ok { request = Wire.Sweep jobs; _ } ->
    checkb "deduped and sorted" true
      (List.map (fun (j : Fleet.Job.t) -> j.k) jobs = [ 2; 8 ])
  | Ok _ -> Alcotest.fail "parsed as a different op"
  | Error (_, e) -> Alcotest.failf "rejected: %s: %s" e.Wire.code e.Wire.msg

let test_wire_rejects () =
  let expect code line =
    match Wire.parse_request line with
    | Ok _ -> Alcotest.failf "accepted %s" line
    | Error (_, e) -> checks ("code for " ^ line) code e.Wire.code
  in
  expect Wire.bad_json "not json at all";
  expect Wire.bad_request "[1,2]";
  (* a request must be an object *)
  expect Wire.bad_request {|{"workload":"fir"}|};
  (* missing op *)
  expect Wire.unknown_op {|{"op":"zap"}|};
  expect Wire.bad_request {|{"v":9,"op":"health"}|};
  expect Wire.bad_request {|{"op":"sim"}|};
  (* missing workload *)
  expect Wire.bad_request {|{"op":"sim","workload":"nope"}|};
  expect Wire.bad_request {|{"op":"sim","workload":"fir","k":0}|};
  expect Wire.bad_request {|{"op":"sim","workload":"fir","codec":"nope"}|};
  expect Wire.bad_request {|{"op":"sim","workload":"fir","strategy":"warp"}|};
  expect Wire.bad_request {|{"op":"sim","workload":"fir","timeout_ms":-1}|};
  expect Wire.bad_request {|{"op":"sweep","ks":[]}|};
  expect Wire.bad_request {|{"op":"sim","workload":"fir","line_size":2}|};
  expect Wire.bad_request {|{"op":"sim","workload":"fir","line_size":-8}|};
  expect Wire.bad_request {|{"op":"compress","workload":"fir","codec":"code"}|}

let test_wire_line_size () =
  match
    Wire.parse_request
      {|{"op":"sim","workload":"fir","codec":"bdi-32","line_size":32}|}
  with
  | Ok { request = Wire.Sim job; _ } ->
    checkb "line_size parsed" true (job.Fleet.Job.line_size = Some 32);
    checks "codec carried" "bdi-32" job.Fleet.Job.codec
  | Ok _ -> Alcotest.fail "parsed as a different op"
  | Error (_, e) -> Alcotest.failf "rejected: %s: %s" e.Wire.code e.Wire.msg

(* The error id is salvaged from the malformed line whenever the line
   at least parses, so responses still correlate. *)
let test_wire_salvages_id () =
  match Wire.parse_request {|{"id":41,"op":"zap"}|} with
  | Error (id, e) ->
    checkb "id salvaged" true (id = Json.Int 41);
    checks "code" Wire.unknown_op e.Wire.code
  | Ok _ -> Alcotest.fail "accepted unknown op"

let test_wire_response_roundtrip () =
  (match Wire.parse_response (Wire.ok_line ~id:(Json.Int 7) (Json.Str "x")) with
  | Ok (Json.Int 7, Ok (Json.Str "x")) -> ()
  | _ -> Alcotest.fail "ok line did not round-trip");
  match
    Wire.parse_response
      (Wire.error_line ~id:(Json.Str "a")
         (Wire.err ~retry_after_ms:40 Wire.overloaded "busy"))
  with
  | Ok (Json.Str "a", Error e) ->
    checks "code" Wire.overloaded e.Wire.code;
    checks "msg" "busy" e.Wire.msg;
    checkb "retry hint" true (e.Wire.retry_after_ms = Some 40)
  | _ -> Alcotest.fail "error line did not round-trip"

let test_wire_classify () =
  checks "timeout" Wire.deadline_exceeded
    (Wire.classify_run_error "timed out after 5ms");
  checks "fuel" Wire.fuel_exhausted
    (Wire.classify_run_error "fuel exhausted after 100 ticks");
  checks "cancel" Wire.cancelled (Wire.classify_run_error "cancelled");
  checks "other" Wire.internal (Wire.classify_run_error "Stack_overflow")

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

let test_admission_capacity () =
  let a = Service.Admission.create ~capacity:2 ~max_conns:4 () in
  checkb "slot 1" true (Result.is_ok (Service.Admission.try_acquire a));
  checkb "slot 2" true (Result.is_ok (Service.Admission.try_acquire a));
  (match Service.Admission.try_acquire a with
  | Ok () -> Alcotest.fail "admitted over capacity"
  | Error { Service.Admission.retry_after_ms } ->
    checkb "retry hint clamped" true
      (retry_after_ms >= 25 && retry_after_ms <= 5000));
  checki "in flight" 2 (Service.Admission.in_flight a);
  Service.Admission.release a ~elapsed_ms:10.0;
  checkb "slot freed" true (Result.is_ok (Service.Admission.try_acquire a))

let test_admission_connections () =
  let a = Service.Admission.create ~capacity:1 ~max_conns:2 () in
  checkb "conn 1" true (Service.Admission.try_connect a);
  checkb "conn 2" true (Service.Admission.try_connect a);
  checkb "conn 3 refused" false (Service.Admission.try_connect a);
  Service.Admission.disconnect a;
  checkb "slot freed" true (Service.Admission.try_connect a);
  checki "count" 2 (Service.Admission.connections a)

(* ------------------------------------------------------------------ *)
(* Server harness                                                      *)

let temp_sock () =
  let path = Filename.temp_file "ccomp-service" ".sock" in
  Sys.remove path;
  path

let make_server ?(jobs = 2) ?(queue = 8) ?(max_conns = 8) ?cache ?fuel
    ?timeout_ms ?max_request_bytes ?max_buffer_bytes ?(drain_grace_s = 10.0)
    () =
  let path = temp_sock () in
  let config =
    {
      Service.Server.default_config with
      socket_path = Some path;
      jobs;
      queue;
      max_conns;
      cache;
      fuel;
      timeout_ms;
      drain_grace_s;
    }
  in
  let config =
    match max_request_bytes with
    | Some n -> { config with max_request_bytes = n }
    | None -> config
  in
  let config =
    match max_buffer_bytes with
    | Some n -> { config with max_buffer_bytes = n }
    | None -> config
  in
  let server = Service.Server.create config in
  (path, server, Thread.create Service.Server.run server)

let with_server ?jobs ?queue ?max_conns ?cache ?fuel ?timeout_ms
    ?max_request_bytes ?max_buffer_bytes ?drain_grace_s f =
  let path, server, runner =
    make_server ?jobs ?queue ?max_conns ?cache ?fuel ?timeout_ms
      ?max_request_bytes ?max_buffer_bytes ?drain_grace_s ()
  in
  Fun.protect
    ~finally:(fun () ->
      Service.Server.stop server;
      Thread.join runner;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path server)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send c line =
  output_string c.oc (line ^ "\n");
  flush c.oc

let recv c = input_line c.ic

let rpc c line =
  send c line;
  recv c

let ok_payload reply =
  match Wire.parse_response reply with
  | Ok (_, Ok payload) -> payload
  | Ok (_, Error e) ->
    Alcotest.failf "unexpected error reply %s: %s" e.Wire.code e.Wire.msg
  | Error m -> Alcotest.failf "unparseable reply (%s): %s" m reply

let err_of reply =
  match Wire.parse_response reply with
  | Ok (_, Error e) -> e
  | Ok (_, Ok _) -> Alcotest.failf "expected an error reply, got ok: %s" reply
  | Error m -> Alcotest.failf "unparseable reply (%s): %s" m reply

let int_member name payload =
  match Json.member name payload with
  | Some v -> (
    match Json.to_int v with
    | Some n -> n
    | None -> Alcotest.failf "member %s is not an int" name)
  | None -> Alcotest.failf "member %s missing" name

(* A request heavy enough (a few hundred ms on one worker, uncached)
   to still be running when a follow-up request lands. *)
let heavy_sweep =
  {|{"id":"heavy","op":"sweep","workloads":["collatz"],"ks":[1,2,3,4]}|}

let wait_in_flight path ~at_least =
  let probe = connect path in
  Fun.protect
    ~finally:(fun () -> close probe)
    (fun () ->
      let rec go tries =
        if tries = 0 then Alcotest.fail "server never became busy";
        let h = ok_payload (rpc probe {|{"op":"health"}|}) in
        if int_member "in_flight" h < at_least then begin
          Thread.delay 0.01;
          go (tries - 1)
        end
      in
      go 500)

(* ------------------------------------------------------------------ *)
(* End-to-end round trips                                              *)

let test_server_round_trip () =
  with_server ~jobs:2 (fun path _server ->
      let c = connect path in
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          (* health *)
          let h = ok_payload (rpc c {|{"v":1,"id":1,"op":"health"}|}) in
          checkb "health status" true
            (Json.member "status" h = Some (Json.Str "ok"));
          checki "health protocol" Wire.protocol_version
            (int_member "protocol" h);
          (* blank lines are keep-alives, not errors *)
          send c "";
          (* sim, with a string id echoed verbatim *)
          let reply = rpc c {|{"id":"my-sim","op":"sim","workload":"fir","k":4}|} in
          (match Wire.parse_response reply with
          | Ok (Json.Str "my-sim", Ok payload) ->
            let job = Option.get (Json.member "job" payload) in
            checki "sim echoes k" 4 (int_member "k" job);
            checkb "sim has metrics" true (Json.member "metrics" payload <> None);
            let m = Option.get (Json.member "metrics" payload) in
            checkb "metrics non-trivial" true (int_member "total_cycles" m > 0)
          | _ -> Alcotest.failf "bad sim reply: %s" reply);
          (* sweep: ks deduped server-side, every job reported *)
          let s =
            ok_payload
              (rpc c {|{"op":"sweep","workloads":["fir","crc32"],"ks":[4,2,2]}|})
          in
          checki "sweep count" 4 (int_member "count" s);
          checki "sweep failures" 0 (int_member "failed" s);
          (* compress *)
          let cp = ok_payload (rpc c {|{"op":"compress","workload":"crc32"}|}) in
          (match Json.member "codecs" cp with
          | Some (Json.List (_ :: _)) -> ()
          | _ -> Alcotest.fail "compress returned no codecs");
          (* stats reflects everything served above *)
          let st = ok_payload (rpc c {|{"op":"stats"}|}) in
          let ops = Option.get (Json.member "ops" st) in
          let count op =
            int_member "count" (Option.get (Json.member op ops))
          in
          checki "stats saw the sim" 1 (count "sim");
          checki "stats saw the sweep" 1 (count "sweep");
          checki "stats saw the compress" 1 (count "compress");
          let fleet = Option.get (Json.member "fleet" st) in
          checkb "fleet counters absorbed" true
            (int_member "fleet_jobs_completed" fleet >= 5)))

let test_server_errors_keep_connection () =
  with_server ~max_request_bytes:1024 (fun path _server ->
      let c = connect path in
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          checks "garbage" Wire.bad_json (err_of (rpc c "certainly not json")).Wire.code;
          checks "unknown op" Wire.unknown_op (err_of (rpc c {|{"op":"zap"}|})).Wire.code;
          checks "bad field" Wire.bad_request
            (err_of (rpc c {|{"op":"sim","workload":"fir","k":0}|})).Wire.code;
          checks "oversized" Wire.oversized
            (err_of (rpc c ("{\"op\":\"sim\",\"pad\":\"" ^ String.make 2000 'x' ^ "\"}")))
              .Wire.code;
          (* after all of that, the same connection still serves *)
          let h = ok_payload (rpc c {|{"op":"health"}|}) in
          checkb "connection survived" true
            (Json.member "status" h = Some (Json.Str "ok"))))

let test_server_truncated_request () =
  with_server (fun path _server ->
      let c = connect path in
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          (* half a request, then the write side closes: the final
             unterminated line is still answered before EOF *)
          output_string c.oc {|{"id":9,"op":"heal|};
          flush c.oc;
          Unix.shutdown c.fd Unix.SHUTDOWN_SEND;
          let e = err_of (recv c) in
          checks "truncated line is bad json" Wire.bad_json e.Wire.code))

let test_server_concurrent_clients () =
  with_server ~jobs:2 (fun path _server ->
      let worker base k () =
        let c = connect path in
        Fun.protect
          ~finally:(fun () -> close c)
          (fun () ->
            for i = 0 to 9 do
              let reply =
                rpc c
                  (Printf.sprintf
                     {|{"id":%d,"op":"sim","workload":"fir","k":%d}|}
                     (base + i) k)
              in
              match Wire.parse_response reply with
              | Ok (Json.Int id, Ok payload) ->
                (* each connection sees its own ids, in order, with
                   its own k — no cross-talk between clients *)
                checki "id echo" (base + i) id;
                checki "own k"
                  k
                  (int_member "k" (Option.get (Json.member "job" payload)))
              | _ -> Alcotest.failf "bad reply: %s" reply
            done)
      in
      let a = Thread.create (worker 100 2) () in
      let b = Thread.create (worker 200 4) () in
      Thread.join a;
      Thread.join b)

let test_server_too_many_connections () =
  with_server ~max_conns:1 (fun path _server ->
      let c1 = connect path in
      Fun.protect
        ~finally:(fun () -> close c1)
        (fun () ->
          (* make sure c1 is fully admitted before racing c2 in *)
          ignore (ok_payload (rpc c1 {|{"op":"health"}|}));
          let c2 = connect path in
          Fun.protect
            ~finally:(fun () -> close c2)
            (fun () ->
              let e = err_of (recv c2) in
              checks "refused" Wire.too_many_connections e.Wire.code;
              checkb "then closed" true
                (match recv c2 with
                | exception End_of_file -> true
                | _ -> false));
          (* c1 is unaffected *)
          ignore (ok_payload (rpc c1 {|{"op":"health"}|}))))

(* ------------------------------------------------------------------ *)
(* Backpressure, guards, drain                                         *)

let test_server_backpressure () =
  (* capacity = jobs + queue = 1: while the heavy sweep runs, the next
     heavy request must bounce with a structured overloaded error. *)
  with_server ~jobs:1 ~queue:0 (fun path _server ->
      let a = connect path in
      let b = connect path in
      Fun.protect
        ~finally:(fun () ->
          close a;
          close b)
        (fun () ->
          send a heavy_sweep;
          wait_in_flight path ~at_least:1;
          let e = err_of (rpc b {|{"id":2,"op":"sim","workload":"fir"}|}) in
          checks "overloaded" Wire.overloaded e.Wire.code;
          checkb "retry hint present" true (e.Wire.retry_after_ms <> None);
          (* light ops bypass admission and still answer *)
          ignore (ok_payload (rpc b {|{"op":"health"}|}));
          (* the heavy request itself completes fine *)
          let s = ok_payload (recv a) in
          checki "sweep failures" 0 (int_member "failed" s)))

let test_server_guards () =
  with_server ~jobs:1 (fun path _server ->
      let c = connect path in
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          (* fuel = 1 cannot finish any sim: structured failure, coded *)
          let e =
            err_of (rpc c {|{"op":"sim","workload":"fir","fuel":1}|})
          in
          checks "fuel exhausted" Wire.fuel_exhausted e.Wire.code;
          (* a sweep with an impossible deadline reports per-job
             failures without failing the envelope *)
          let s =
            ok_payload
              (rpc c {|{"op":"sweep","workloads":["fir"],"ks":[8],"fuel":1}|})
          in
          checki "all jobs failed" (int_member "count" s)
            (int_member "failed" s);
          (* and the connection still serves real work afterwards *)
          ignore (ok_payload (rpc c {|{"op":"sim","workload":"fir"}|}))))

let test_server_deadline () =
  with_server ~jobs:1 (fun path _server ->
      let c = connect path in
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          (* a sim that runs for hundreds of ms under a 1ms deadline:
             the wall-clock guard fires at a budget tick and comes
             back as a structured, classified error *)
          let e =
            err_of
              (rpc c
                 {|{"op":"sim","workload":"life","k":1,"timeout_ms":1}|})
          in
          checks "deadline exceeded" Wire.deadline_exceeded e.Wire.code;
          (* the connection and the worker both survive the abort *)
          ignore (ok_payload (rpc c {|{"op":"sim","workload":"fir"}|}))))

let test_server_drain () =
  (* in-flight work finishes after the drain request; new heavy work
     is refused; the listener goes away; run() returns. *)
  let path, server, runner = make_server ~jobs:1 ~queue:4 () in
  let cleanup_ok = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !cleanup_ok then begin
        Service.Server.stop server;
        Thread.join runner
      end;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let a = connect path in
      let b = connect path in
      Fun.protect
        ~finally:(fun () ->
          close a;
          close b)
        (fun () ->
          send a heavy_sweep;
          wait_in_flight path ~at_least:1;
          Service.Server.stop server;
          (* health still answers during the drain, and reports it *)
          let h = ok_payload (rpc b {|{"op":"health"}|}) in
          checkb "draining status" true
            (Json.member "status" h = Some (Json.Str "draining"));
          (* new heavy work is turned away *)
          let e = err_of (rpc b {|{"op":"sim","workload":"fir"}|}) in
          checks "shutting down" Wire.shutting_down e.Wire.code;
          (* the in-flight sweep still completes and answers *)
          let s = ok_payload (recv a) in
          checki "in-flight completed" 0 (int_member "failed" s);
          (* the server exits on its own: join must return promptly *)
          Thread.join runner;
          cleanup_ok := true;
          checkb "socket unlinked" true (not (Sys.file_exists path));
          match connect path with
          | probe ->
            close probe;
            Alcotest.fail "listener still accepting after drain"
          | exception Unix.Unix_error _ -> ()))

(* ------------------------------------------------------------------ *)
(* Event-loop behaviors: partial I/O, pipelining, slow consumers       *)

let test_wire_scan_fast () =
  let scan s =
    let b = Bytes.of_string s in
    Wire.scan_fast b ~pos:0 ~len:(Bytes.length b)
  in
  let span s = function
    | Some (pos, len) -> String.sub s pos len
    | None -> "<none>"
  in
  (match scan {|{"op":"health","id":7}|} with
  | Some (Wire.Fast_health, id) ->
    checks "int id span" "7" (span {|{"op":"health","id":7}|} id)
  | _ -> Alcotest.fail "minimal health did not take the fast path");
  (match scan {|{"op":"stats"}|} with
  | Some (Wire.Fast_stats, None) -> ()
  | _ -> Alcotest.fail "id-less stats did not take the fast path");
  (match scan {|{"id":"a-1","op":"health","v":1}|} with
  | Some (Wire.Fast_health, id) ->
    (* quotes included: the span is echoed raw into the response *)
    checks "string id span" {|"a-1"|}
      (span {|{"id":"a-1","op":"health","v":1}|} id)
  | _ -> Alcotest.fail "reordered members did not take the fast path");
  (* anything the scanner is not sure about falls to the full parser *)
  List.iter
    (fun line ->
      checkb ("slow path: " ^ line) true (scan line = None))
    [
      {|{"op":"sim","workload":"fir"}|} (* heavy op *);
      {|{"op":"health","extra":1}|} (* unknown member *);
      {|{"op":"health","id":"a\"b"}|} (* escaped id *);
      {|{"op":"health","op":"health"}|} (* duplicate member *);
      {|{"op":"health","v":2}|} (* wrong protocol *);
      {|{}|} (* no op: the slow path owns the error *);
      {|{"op":"health"} trailing|} (* trailing garbage *);
    ]

let test_server_dribble () =
  (* a byte-at-a-time client must not stall anyone else: between every
     dribbled byte, a second client completes a full round trip *)
  with_server ~jobs:1 (fun path _server ->
      let a = connect path in
      let b = connect path in
      Fun.protect
        ~finally:(fun () ->
          close a;
          close b)
        (fun () ->
          let line = "{\"id\":\"slow\",\"op\":\"health\"}\n" in
          String.iteri
            (fun i _ ->
              ignore (Unix.write_substring a.fd line i 1);
              let h = ok_payload (rpc b {|{"op":"health"}|}) in
              checkb "fast client answered mid-dribble" true
                (Json.member "status" h = Some (Json.Str "ok")))
            line;
          match Wire.parse_response (recv a) with
          | Ok (Json.Str "slow", Ok _) -> ()
          | _ -> Alcotest.fail "dribbled request got the wrong reply"))

let test_server_pipeline_out_of_order () =
  (* a light op pipelined behind a heavy one overtakes it; replies are
     re-associated by id *)
  with_server ~jobs:1 (fun path _server ->
      let c = connect path in
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          send c heavy_sweep;
          send c {|{"id":"ping","op":"health"}|};
          (match Wire.parse_response (recv c) with
          | Ok (Json.Str "ping", Ok _) -> ()
          | _ -> Alcotest.fail "health did not overtake the running sweep");
          match Wire.parse_response (recv c) with
          | Ok (Json.Str "heavy", Ok payload) ->
            checki "sweep clean" 0 (int_member "failed" payload)
          | _ -> Alcotest.fail "sweep reply missing or mis-tagged"))

let test_server_slow_consumer_shed () =
  (* a client that pipelines heavy work but never reads is shed with a
     structured error once its write buffer passes the cap *)
  let cache_dir = Filename.temp_file "ccomp-shed-cache" "" in
  Sys.remove cache_dir;
  Unix.mkdir cache_dir 0o700;
  with_server ~jobs:2 ~queue:128 ~max_buffer_bytes:(16 * 1024)
    ~cache:(Fleet.Cache.open_dir cache_dir)
    (fun path _server ->
      let c = connect path in
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          (* ~9 KB per response, 80 responses: far more than the kernel
             socket buffer plus the 16 KB cap can absorb *)
          for i = 1 to 80 do
            send c
              (Printf.sprintf
                 {|{"id":%d,"op":"sweep","workloads":["fir","crc32"],"ks":[1,2,3,4]}|}
                 i)
          done;
          wait_in_flight path ~at_least:1;
          (* every sweep finished (or was dropped on the shed
             connection); only then start reading *)
          let probe = connect path in
          Fun.protect
            ~finally:(fun () -> close probe)
            (fun () ->
              let rec settle tries =
                if tries = 0 then Alcotest.fail "sweeps never finished";
                let h = ok_payload (rpc probe {|{"op":"health"}|}) in
                if int_member "in_flight" h > 0 then begin
                  Thread.delay 0.02;
                  settle (tries - 1)
                end
              in
              settle 1000);
          let lines = ref [] in
          (try
             while true do
               lines := recv c :: !lines
             done
           with End_of_file -> ());
          (match !lines with
          | [] -> Alcotest.fail "shed connection delivered nothing"
          | last :: _ ->
            let e = err_of last in
            checks "shed error code" Wire.slow_consumer e.Wire.code);
          checkb "some responses preceded the shed" true
            (List.length !lines > 1);
          checkb "not every response was delivered" true
            (List.length !lines < 81)))

let test_server_drain_pipelined () =
  (* a drain arriving with several pipelined heavy requests in flight
     still answers all of them before the server exits *)
  let path, server, runner = make_server ~jobs:1 ~queue:4 () in
  let cleanup_ok = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !cleanup_ok then begin
        Service.Server.stop server;
        Thread.join runner
      end;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let c = connect path in
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          send c
            {|{"id":"h1","op":"sweep","workloads":["collatz"],"ks":[1,2]}|};
          send c
            {|{"id":"h2","op":"sweep","workloads":["collatz"],"ks":[3,4]}|};
          wait_in_flight path ~at_least:1;
          Service.Server.stop server;
          let id_of reply =
            match Wire.parse_response reply with
            | Ok (Json.Str id, Ok _) -> id
            | _ -> Alcotest.failf "bad drain-time reply: %s" reply
          in
          let ids = [ id_of (recv c); id_of (recv c) ] in
          checkb "both pipelined sweeps answered" true
            (List.sort compare ids = [ "h1"; "h2" ]);
          Thread.join runner;
          cleanup_ok := true;
          checkb "socket unlinked" true (not (Sys.file_exists path))))

let () =
  Alcotest.run "service"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "wire",
        [
          Alcotest.test_case "sim defaults" `Quick test_wire_sim_defaults;
          Alcotest.test_case "sweep normalizes ks" `Quick
            test_wire_sweep_normalizes_ks;
          Alcotest.test_case "rejects invalid requests" `Quick
            test_wire_rejects;
          Alcotest.test_case "line size field" `Quick test_wire_line_size;
          Alcotest.test_case "corpus specs" `Quick test_wire_corpus_spec;
          Alcotest.test_case "salvages the id" `Quick test_wire_salvages_id;
          Alcotest.test_case "response round trip" `Quick
            test_wire_response_roundtrip;
          Alcotest.test_case "error classification" `Quick test_wire_classify;
          Alcotest.test_case "fast-path scanner" `Quick test_wire_scan_fast;
        ] );
      ( "admission",
        [
          Alcotest.test_case "request capacity" `Quick test_admission_capacity;
          Alcotest.test_case "connection cap" `Quick
            test_admission_connections;
        ] );
      ( "server",
        [
          Alcotest.test_case "round trip every op" `Quick
            test_server_round_trip;
          Alcotest.test_case "errors keep the connection" `Quick
            test_server_errors_keep_connection;
          Alcotest.test_case "truncated request" `Quick
            test_server_truncated_request;
          Alcotest.test_case "concurrent clients are isolated" `Quick
            test_server_concurrent_clients;
          Alcotest.test_case "connection cap" `Quick
            test_server_too_many_connections;
          Alcotest.test_case "backpressure at capacity" `Quick
            test_server_backpressure;
          Alcotest.test_case "per-request guards" `Quick test_server_guards;
          Alcotest.test_case "deadline exceeded" `Quick test_server_deadline;
          Alcotest.test_case "graceful drain" `Quick test_server_drain;
          Alcotest.test_case "byte-dribbling client" `Quick
            test_server_dribble;
          Alcotest.test_case "pipelined out-of-order replies" `Quick
            test_server_pipeline_out_of_order;
          Alcotest.test_case "slow consumer is shed" `Quick
            test_server_slow_consumer_shed;
          Alcotest.test_case "drain completes pipelined work" `Quick
            test_server_drain_pipelined;
        ] );
    ]
