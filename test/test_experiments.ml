(* Integration tests over the experiment harness: every figure's
   property holds, every table regenerates, and the qualitative shapes
   the paper describes are present in the numbers. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)

let test_fig1 () =
  checkb "B1 compressed exactly on entering B4" true (Experiments.Fig1.holds ())

let test_fig2 () =
  checkb "B7 pre-decompressed on exiting B1" true (Experiments.Fig2.holds ())

let test_fig3 () =
  Alcotest.check
    Alcotest.(list int)
    "pre-all decompresses the compressed blocks within 2 edges" [ 4; 5 ]
    (List.sort compare (Experiments.Fig3.pre_all_set ()));
  checkb "pre-single picks exactly one" true
    (match Experiments.Fig3.pre_single_choice () with
    | Some b -> List.mem b [ 4; 5 ]
    | None -> false)

let test_fig4 () =
  checkb "decompression ahead, compression behind" true
    (Experiments.Fig4.holds ())

let test_fig5 () =
  checkb "final memory image matches the paper" true (Experiments.Fig5.holds ())

let test_fig2_reconstruction_distances () =
  (* The two constraints the reconstruction was built to satisfy. *)
  let g = Experiments.Paper_figures.fig2 () in
  checkb "d(B1 exit -> B7) = 3" true
    (Cfg.Dist.distance g ~src:1 ~dst:7 = Some 3);
  let within2 = List.map fst (Cfg.Dist.within g ~from:0 ~k:2) in
  checkb "B4 within 2 of B0" true (List.mem 4 within2);
  checkb "B5 within 2 of B0" true (List.mem 5 within2)

let test_fig1_has_two_cycles () =
  (* "Figure 1 depicts an example CFG fragment that contains two
     loops": the reconstruction has (at least) two distinct cycles. *)
  let g = Experiments.Paper_figures.fig1 () in
  checkb "cycle through B1" true (Cfg.Dist.distance g ~src:1 ~dst:1 <> None);
  checkb "cycle through B2" true (Cfg.Dist.distance g ~src:2 ~dst:2 <> None)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let test_registry () =
  checki "twenty-one experiments" 21 (List.length Experiments.Registry.all);
  checkb "find by id" true (Experiments.Registry.find "E6" <> None);
  checkb "find by id case-insensitive" true
    (Experiments.Registry.find "e6" <> None);
  checkb "find by slug" true (Experiments.Registry.find "kedge-sweep" <> None);
  checkb "find energy pareto" true
    (Experiments.Registry.find "energy-pareto" <> None);
  checkb "find line granularity" true
    (Experiments.Registry.find "line-granularity" <> None);
  checkb "unknown" true (Experiments.Registry.find "E99" = None);
  let ids = List.map (fun e -> e.Experiments.Registry.id) Experiments.Registry.all in
  checkb "ids unique" true (List.length (List.sort_uniq compare ids) = 21)

let table_tests =
  (* Every experiment table renders with rows. The heavyweight sweeps
     are marked `Slow so `dune runtest` stays quick by default... they
     still run because alcotest runs slow tests unless -q is given. *)
  List.map
    (fun (e : Experiments.Registry.entry) ->
      Alcotest.test_case (e.id ^ " regenerates") `Slow (fun () ->
          let t = e.runner () in
          checkb (e.id ^ " has rows") true (Report.Table.rows t <> []);
          checkb (e.id ^ " renders") true
            (String.length (Report.Table.render t) > 0)))
    Experiments.Registry.all

(* ------------------------------------------------------------------ *)
(* Qualitative shapes (the paper's prose claims)                       *)

let test_kedge_tradeoff_shape () =
  (* §3: larger k delays compression -> more memory, less overhead. *)
  let sc = Experiments.Util.scenario "crc32" in
  let series = Experiments.Kedge_sweep.series sc in
  let overheads =
    List.map (fun (_, m) -> Core.Metrics.overhead_ratio m) series
  in
  let avg_savings =
    List.map (fun (_, m) -> Core.Metrics.avg_memory_saving m) series
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && non_increasing rest
    | _ -> true
  in
  checkb "overhead non-increasing in k" true (non_increasing overheads);
  checkb "avg memory saving non-increasing in k" true
    (non_increasing avg_savings)

let test_strategy_shape () =
  (* §4: pre-decompression eliminates demand misses; under the fast
     hardware decompressor it also reduces total overhead. *)
  let sc = Experiments.Util.scenario "fir" in
  let config = Experiments.Strategy_compare.fast_config sc in
  let metrics = Experiments.Strategy_compare.metrics_with ~config sc in
  let get name = List.assoc name metrics in
  let od = get "on-demand" and pre_all = get "pre-all" in
  checkb "pre-all has fewer demand misses" true
    (pre_all.Core.Metrics.demand_decompressions
    < od.Core.Metrics.demand_decompressions);
  checkb "pre-all is faster with a fast decompressor" true
    (pre_all.Core.Metrics.total_cycles < od.Core.Metrics.total_cycles)

let test_pre_single_uses_less_memory () =
  (* §4: pre-all favors performance over memory; pre-single favors
     memory. *)
  let sc = Experiments.Util.scenario "dijkstra" in
  let metrics = Experiments.Strategy_compare.metrics_for sc in
  let get name = List.assoc name metrics in
  checkb "pre-single peak <= pre-all peak" true
    ((get "pre-single").Core.Metrics.peak_decompressed_bytes
    <= (get "pre-all").Core.Metrics.peak_decompressed_bytes)

let test_budget_shape () =
  (* §2: tighter budgets trade cycles for bytes. *)
  let sc = Experiments.Util.scenario "dijkstra" in
  let series = Experiments.Budget_exp.series sc in
  let by_frac f =
    snd (List.find (fun (frac, _) -> Float.abs (frac -. f) < 1e-9) series)
  in
  let loose = by_frac 1.0 and tight = by_frac 0.2 in
  checkb "tight budget costs more cycles" true
    (tight.Core.Metrics.total_cycles >= loose.Core.Metrics.total_cycles);
  checkb "tight budget evicts" true (tight.Core.Metrics.evictions > 0);
  checkb "tight budget uses less memory" true
    (tight.Core.Metrics.peak_decompressed_bytes
    <= loose.Core.Metrics.peak_decompressed_bytes)

let test_discard_beats_recompress () =
  (* §5: the discard implementation avoids the background compression
     work entirely. *)
  let sc = Experiments.Util.scenario "matmul" in
  let discard =
    Experiments.Util.run sc
      (Core.Policy.make ~mode:Core.Policy.Discard ~compress_k:4 ())
  in
  let recompress =
    Experiments.Util.run sc
      (Core.Policy.make ~mode:Core.Policy.Recompress ~compress_k:4 ())
  in
  checkb "discard does no compression work" true
    (discard.Core.Metrics.comp_thread_busy_cycles
    < recompress.Core.Metrics.comp_thread_busy_cycles);
  checkb "discard frees memory earlier" true
    (discard.Core.Metrics.avg_decompressed_bytes
    <= recompress.Core.Metrics.avg_decompressed_bytes +. 1e-9)

let test_block_beats_procedure_on_avg_footprint () =
  (* §6: block granularity keeps unused parts compressed. *)
  let sc = Experiments.Util.scenario "fsm" in
  let rows = Baselines.Comparison.rows sc in
  let get s =
    List.find (fun r -> r.Baselines.Comparison.scheme = s) rows
  in
  checkb "block/k-edge avg footprint below procedure's" true
    ((get "block/k-edge").Baselines.Comparison.avg_footprint
    < (get "procedure/k-edge").Baselines.Comparison.avg_footprint)

let test_shared_codecs_beat_per_block () =
  (* E12's headline: per-block generic codecs fail on basic blocks;
     shared-model codecs do not. *)
  let sc = Experiments.Util.scenario "dijkstra" in
  let compressed_with codec =
    Array.fold_left
      (fun a (b : Cfg.Graph.block) ->
        let bytes =
          Eris.Program.slice_bytes
            (Option.get sc.Core.Scenario.program)
            ~lo:b.addr ~hi:(b.addr + b.byte_size)
        in
        a + Bytes.length (codec.Compress.Codec.compress bytes))
      0
      (Cfg.Graph.blocks sc.Core.Scenario.graph)
  in
  let corpus = (Option.get sc.Core.Scenario.program).Eris.Program.image in
  let positional = Compress.Registry.code_codec ~corpus in
  let lzss = Compress.Registry.find_exn "lzss" in
  checkb "positional shared beats per-block lzss" true
    (compressed_with positional < compressed_with lzss)

let test_adaptive_dominates_on_misses () =
  (* E14: trained on its own trace, reuse-aware k must fault at most
     as often as the fixed k it is built around. *)
  let sc = Experiments.Util.scenario "adpcm" in
  let metrics = Experiments.Adaptive_exp.metrics_for sc in
  let get name = List.assoc name metrics in
  checkb "reuse-aware beats fixed k=4 on demand misses" true
    ((get "reuse-aware").Core.Metrics.demand_decompressions
    <= (get "fixed k=4").Core.Metrics.demand_decompressions)

let test_validation_rows () =
  (* E16: the runtime must reproduce every checksum, and the model's
     demand-decompression counts must agree with the runtime's within
     a factor of two. *)
  List.iter
    (fun (r : Experiments.Validation.row) ->
      checkb (r.workload ^ " checksum") true r.checksum_ok;
      checkb (r.workload ^ " magnitudes agree") true
        (r.runtime_decompressions <= 2 * r.engine_demand
        && r.engine_demand <= 2 * r.runtime_decompressions))
    (Experiments.Validation.rows ())

let test_coresidence_rows () =
  (* E15: the combined k-edge peak must beat decompress-once, and the
     averages must be below the peaks. *)
  let rows = Experiments.Coresidence.pairs () in
  checkb "six pairs" true (List.length rows = 6);
  List.iter
    (fun (r : Experiments.Coresidence.pair_result) ->
      checkb (r.a ^ "+" ^ r.b ^ " beats decompress-once") true
        (r.kedge < r.decompress_once);
      checkb (r.a ^ "+" ^ r.b ^ " avg below peak") true
        (r.kedge_avg <= float_of_int r.kedge))
    rows

let test_predictor_accuracy_ordering () =
  (* A profile-guided predictor should not lose to the static
     first-successor heuristic on its own training trace. *)
  let sc = Experiments.Util.scenario "dijkstra" in
  let metrics = Experiments.Predictor_ablation.metrics_for sc in
  let acc name =
    let m = List.assoc name metrics in
    let settled =
      m.Core.Metrics.useful_prefetches + m.Core.Metrics.wasted_prefetches
    in
    if settled = 0 then 1.0
    else float_of_int m.Core.Metrics.useful_prefetches /. float_of_int settled
  in
  checkb "profile at least as accurate as first-successor" true
    (acc "profile" >= acc "first-successor" -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Golden outputs (paper-2005 profile) and the energy dimension        *)

(* The default-profile tables are a compatibility surface: the energy
   vocabulary must leave every cycles-era number byte-identical under
   paper-2005. Pin the rendered E6/E16/E17 tables by digest — if one
   of these moves, the default-profile accounting changed and the
   change must be deliberate. *)
let golden_digests =
  [
    (* E6/E17 re-pinned 2026-08: the engine stopped recording
       return-only sites as patchable (jalr return addresses are
       home-valued; the runtime re-traps and never patches them), so
       call-bearing workloads count more exceptions and fewer
       patches. *)
    ("E6", "3afa4fb3143be36e438f5c2bba55f18a");
    ("E16", "747dc36ec31b578dc704dc4cce19c5d1");
    ("E17", "6aff796559975621c93711a5ecc35554");
  ]

let golden_tests =
  List.map
    (fun (id, expected) ->
      Alcotest.test_case (id ^ " pinned") `Slow (fun () ->
          let e = Option.get (Experiments.Registry.find id) in
          let rendered = Report.Table.render (e.Experiments.Registry.runner ()) in
          Alcotest.check Alcotest.string (id ^ " byte-identical") expected
            (Digest.to_hex (Digest.string rendered))))
    golden_digests

let test_energy_pareto_divergence () =
  (* The reason E18 exists: under the sram-heavy profile at least one
     workload must pick a different k when optimizing energy than when
     optimizing cycles. *)
  let optima = Experiments.Energy_pareto.optima () in
  checkb "some workload diverges" true
    (Experiments.Energy_pareto.divergent optima <> []);
  List.iter
    (fun (o : Experiments.Energy_pareto.optimum) ->
      checkb (o.workload ^ " ks in sweep") true
        (List.mem o.cycles_opt_k Experiments.Energy_pareto.default_ks
        && List.mem o.energy_opt_k Experiments.Energy_pareto.default_ks))
    optima

let () =
  Alcotest.run "experiments"
    [
      ( "figures",
        [
          Alcotest.test_case "figure 1 (E1)" `Quick test_fig1;
          Alcotest.test_case "figure 2 (E2)" `Quick test_fig2;
          Alcotest.test_case "figure 3 (E3)" `Quick test_fig3;
          Alcotest.test_case "figure 4 (E4)" `Quick test_fig4;
          Alcotest.test_case "figure 5 (E5)" `Quick test_fig5;
          Alcotest.test_case "figure 2 reconstruction" `Quick
            test_fig2_reconstruction_distances;
          Alcotest.test_case "figure 1 cycles" `Quick test_fig1_has_two_cycles;
        ] );
      ("registry", [ Alcotest.test_case "lookup" `Quick test_registry ]);
      ("tables", table_tests);
      ( "shapes",
        [
          Alcotest.test_case "k-edge tradeoff (E6)" `Quick
            test_kedge_tradeoff_shape;
          Alcotest.test_case "strategy comparison (E7)" `Quick
            test_strategy_shape;
          Alcotest.test_case "pre-single memory (E7)" `Quick
            test_pre_single_uses_less_memory;
          Alcotest.test_case "budget tradeoff (E10)" `Quick test_budget_shape;
          Alcotest.test_case "discard vs recompress (E9)" `Quick
            test_discard_beats_recompress;
          Alcotest.test_case "granularity (E11)" `Quick
            test_block_beats_procedure_on_avg_footprint;
          Alcotest.test_case "shared codecs (E12)" `Quick
            test_shared_codecs_beat_per_block;
          Alcotest.test_case "predictor accuracy (E13)" `Quick
            test_predictor_accuracy_ordering;
          Alcotest.test_case "adaptive k (E14)" `Quick
            test_adaptive_dominates_on_misses;
          Alcotest.test_case "co-residence (E15)" `Quick test_coresidence_rows;
          Alcotest.test_case "model validation (E16)" `Quick
            test_validation_rows;
          Alcotest.test_case "energy pareto divergence (E18)" `Slow
            test_energy_pareto_divergence;
        ] );
      ("golden", golden_tests);
    ]
