(* Tests for the fleet: job keys, the domain pool's ordering and crash
   isolation, the content-addressed cache, and the load-bearing
   guarantee — a parallel cached sweep is byte-identical to a
   sequential uncached one. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

(* ------------------------------------------------------------------ *)
(* Job keys                                                            *)

let job ?codec ?strategy ?mode ?budget ?retention ?profile ?line_size
    ?(scenario = "fir") ?(k = 8) () =
  Fleet.Job.make ?codec ?strategy ?mode ?budget ?retention ?profile ?line_size
    ~scenario ~k ()

let test_key_stable () =
  checks "equal specs equal keys" (Fleet.Job.key (job ()))
    (Fleet.Job.key (job ()));
  let base = Fleet.Job.key (job ()) in
  let variants =
    [
      job ~scenario:"crc32" ();
      job ~k:4 ();
      job ~codec:"lzss" ();
      job ~strategy:(Fleet.Job.Pre_all { lookahead = 2 }) ();
      job ~strategy:(Fleet.Job.Pre_single { lookahead = 2; predictor = "profile" }) ();
      job ~mode:Fleet.Job.Recompress ();
      job ~budget:512 ();
      job ~retention:Fleet.Job.Clock ();
      job ~retention:(Fleet.Job.Loop_aware { weight = 2 }) ();
      job ~retention:(Fleet.Job.Pin_hot { fraction = 0.5 }) ();
      job ~profile:"cortex-m-flash" ();
      job ~profile:"sram-heavy" ();
      job ~line_size:32 ();
      job ~line_size:64 ();
    ]
  in
  List.iter
    (fun j -> checkb "every field feeds the key" true (Fleet.Job.key j <> base))
    variants;
  let keys = List.map Fleet.Job.key variants in
  checki "variant keys distinct"
    (List.length keys)
    (List.length (List.sort_uniq compare keys))

let contains_sub needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_line_size_in_spec () =
  checkb "canonical carries line_size" true
    (contains_sub "line_size=32" (Fleet.Job.canonical (job ~line_size:32 ())));
  checkb "canonical none by default" true
    (contains_sub "line_size=none" (Fleet.Job.canonical (job ())));
  checkb "describe shows line size" true
    (contains_sub " line=32B" (Fleet.Job.describe (job ~line_size:32 ())));
  checkb "describe silent without it" false
    (contains_sub "line=" (Fleet.Job.describe (job ())));
  (* a line-granular job executes through Lineview and preserves the
     execution cycles of the block-granular run *)
  let sc = Workloads.Common.scenario (Workloads.Suite.find_exn "fir") in
  let block = Fleet.Job.execute sc (job ()) in
  let line = Fleet.Job.execute sc (job ~line_size:32 ()) in
  checki "exec cycles preserved" block.Core.Metrics.exec_cycles
    line.Core.Metrics.exec_cycles;
  checkb "line run really decompressed" true
    (line.Core.Metrics.demand_decompressions > 0)

let test_key_filesystem_safe () =
  String.iter
    (fun c ->
      checkb "key charset" true
        ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' || c = 'v'))
    (Fleet.Job.key (job ()))

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_pool_order () =
  (* Results come back in submission order whatever the completion
     order; identity mapping makes any misplacement visible. *)
  let xs = List.init 40 Fun.id in
  Fleet.Pool.with_pool ~jobs:4 (fun p ->
      let rs = Fleet.Pool.map p (fun _b x -> x * x) xs in
      checki "arity" 40 (List.length rs);
      List.iteri
        (fun i r ->
          match r with
          | Ok v -> checki "slot matches submission" (i * i) v
          | Error e -> Alcotest.failf "job %d failed: %s" i e)
        rs)

let test_pool_crash_isolation () =
  Fleet.Pool.with_pool ~jobs:3 (fun p ->
      let rs =
        Fleet.Pool.map p
          (fun _b x -> if x mod 2 = 0 then failwith "boom" else x)
          [ 0; 1; 2; 3; 4; 5 ]
      in
      List.iteri
        (fun i r ->
          match r with
          | Ok v -> checki "odd survives" i v
          | Error msg ->
            checkb "even crashes, pool survives" true
              (i mod 2 = 0 && String.length msg > 0))
        rs)

let test_pool_fuel () =
  let rs =
    Fleet.Pool.run_sequential ~fuel:100
      (fun b () ->
        for _ = 1 to 1_000_000 do
          Fleet.Pool.tick b
        done)
      [ () ]
  in
  match rs with
  | [ Error msg ] ->
    checkb "fuel message" true
      (String.length msg > 0
      && String.sub msg 0 4 = "fuel")
  | _ -> Alcotest.fail "runaway job was not stopped by fuel"

let test_pool_sequential_matches_parallel () =
  let xs = List.init 25 (fun i -> i - 12) in
  let f _b x = if x < 0 then invalid_arg "neg" else x * 3 in
  let seq = Fleet.Pool.run_sequential f xs in
  let par = Fleet.Pool.with_pool ~jobs:5 (fun p -> Fleet.Pool.map p f xs) in
  checkb "identical outcomes" true (seq = par)

let test_pool_rejects_bad_sizes () =
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Fleet.Pool.create: jobs must be >= 1 (got 0)")
    (fun () -> ignore (Fleet.Pool.create ~jobs:0))

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

(* Every field gets a unique value, so a serializer that drops,
   duplicates or swaps any field cannot round-trip. *)
let exhaustive_metrics : Core.Metrics.t =
  {
    total_cycles = 101;
    exec_cycles = 102;
    exception_cycles = 103;
    patch_cycles = 104;
    demand_dec_cycles = 105;
    stall_cycles = 106;
    baseline_cycles = 107;
    exceptions = 108;
    patches = 109;
    demand_decompressions = 110;
    prefetch_decompressions = 111;
    useful_prefetches = 112;
    wasted_prefetches = 113;
    discards = 114;
    evictions = 115;
    budget_overflows = 116;
    dec_thread_busy_cycles = 117;
    comp_thread_busy_cycles = 118;
    energy_nj = 127;
    exec_energy_nj = 128;
    exception_energy_nj = 129;
    patch_energy_nj = 130;
    dec_energy_nj = 131;
    comp_energy_nj = 132;
    ram_static_energy_nj = 133;
    baseline_energy_nj = 134;
    original_bytes = 119;
    compressed_area_bytes = 120;
    peak_decompressed_bytes = 121;
    avg_decompressed_bytes = 122.0625;
    peak_footprint_bytes = 123;
    avg_footprint_bytes = 124.33333333333333;
    trace_length = 125;
    blocks = 126;
  }

let test_cache_roundtrip_every_field () =
  match Fleet.Cache.metrics_of_string
          (Fleet.Cache.metrics_to_string exhaustive_metrics)
  with
  | Ok m ->
    checkb "all 34 fields round-trip (floats bit-exact)" true
      (m = exhaustive_metrics)
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg

let entry_file dir =
  match
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".metrics")
  with
  | [ f ] -> Filename.concat dir f
  | fs -> Alcotest.failf "expected exactly one entry, got %d" (List.length fs)

let test_cache_store_find () =
  let dir = temp_dir "ccomp-cache" in
  let c = Fleet.Cache.open_dir dir in
  let key = Fleet.Job.key (job ()) in
  checkb "empty cache misses" true (Fleet.Cache.find c key = None);
  Fleet.Cache.store c key exhaustive_metrics;
  checkb "stored entry hits" true
    (Fleet.Cache.find c key = Some exhaustive_metrics);
  checkb "other key still misses" true
    (Fleet.Cache.find c (Fleet.Job.key (job ~k:2 ())) = None);
  checkb "no tmp litter" true
    (Array.for_all
       (fun f -> not (Filename.check_suffix f ".tmp"))
       (Sys.readdir dir))

let test_cache_corrupt_entry_is_miss () =
  let dir = temp_dir "ccomp-cache" in
  let c = Fleet.Cache.open_dir dir in
  let key = Fleet.Job.key (job ()) in
  Fleet.Cache.store c key exhaustive_metrics;
  let path = entry_file dir in
  List.iter
    (fun garbage ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc garbage);
      checkb "corrupt entry is a miss, not an exception" true
        (Fleet.Cache.find c key = None))
    [
      "";  (* truncated to nothing *)
      "total_cycles=1\n";  (* no header *)
      "ccomp-fleet-entry 2\ntotal_cycles=banana\n";  (* bad value *)
      "ccomp-fleet-entry 2\ntotal_cycles=1\n";  (* missing fields *)
      Fleet.Cache.metrics_to_string exhaustive_metrics ^ "intruder=9\n";
      (* unknown extra field *)
      String.concat "\n"
        [ "ccomp-fleet-entry 2"; "total_cycles=1"; "total_cycles=2" ];
      (* duplicate field *)
    ];
  (* and a miss re-stores cleanly *)
  Fleet.Cache.store c key exhaustive_metrics;
  checkb "rewrite after corruption" true
    (Fleet.Cache.find c key = Some exhaustive_metrics)

let test_cache_version_mismatch_is_miss () =
  let dir = temp_dir "ccomp-cache" in
  let c = Fleet.Cache.open_dir dir in
  let key = Fleet.Job.key (job ()) in
  Fleet.Cache.store c key exhaustive_metrics;
  let path = entry_file dir in
  let bumped =
    Printf.sprintf "ccomp-fleet-entry %d" (Fleet.Cache.entry_version + 1)
  in
  let body = In_channel.with_open_text path In_channel.input_all in
  let rewritten =
    match String.index_opt body '\n' with
    | Some i ->
      bumped ^ String.sub body i (String.length body - i)
    | None -> Alcotest.fail "entry has no header line"
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc rewritten);
  checkb "version-bumped entry is ignored" true (Fleet.Cache.find c key = None)

(* A complete, well-formed entry from the previous on-disk format
   (version 1: no energy fields) must read as a miss — never a crash,
   never a stale hit with zeroed dimensions. *)
let test_cache_previous_version_entry_is_miss () =
  let dir = temp_dir "ccomp-cache" in
  let c = Fleet.Cache.open_dir dir in
  let key = Fleet.Job.key (job ()) in
  let v1_entry =
    String.concat "\n"
      [
        "ccomp-fleet-entry 1";
        "total_cycles=101";
        "exec_cycles=102";
        "exception_cycles=103";
        "patch_cycles=104";
        "demand_dec_cycles=105";
        "stall_cycles=106";
        "baseline_cycles=107";
        "exceptions=108";
        "patches=109";
        "demand_decompressions=110";
        "prefetch_decompressions=111";
        "useful_prefetches=112";
        "wasted_prefetches=113";
        "discards=114";
        "evictions=115";
        "budget_overflows=116";
        "dec_thread_busy_cycles=117";
        "comp_thread_busy_cycles=118";
        "original_bytes=119";
        "compressed_area_bytes=120";
        "peak_decompressed_bytes=121";
        "avg_decompressed_bytes=0x1.e84p+6";
        "peak_footprint_bytes=123";
        "avg_footprint_bytes=0x1.f155555555555p+6";
        "trace_length=125";
        "blocks=126";
        "";
      ]
  in
  Out_channel.with_open_text
    (Filename.concat dir (key ^ ".metrics"))
    (fun oc -> Out_channel.output_string oc v1_entry);
  checkb "old-format entry is a miss" true (Fleet.Cache.find c key = None);
  (* and the miss re-stores in the current format *)
  Fleet.Cache.store c key exhaustive_metrics;
  checkb "upgraded in place" true
    (Fleet.Cache.find c key = Some exhaustive_metrics)


let test_cache_stats_and_gc () =
  let dir = temp_dir "ccomp-cache" in
  let c = Fleet.Cache.open_dir dir in
  let empty = Fleet.Cache.stats c in
  checki "empty entries" 0 empty.Fleet.Cache.entries;
  checki "empty bytes" 0 empty.Fleet.Cache.bytes;
  let keys = List.map (fun k -> Fleet.Job.key (job ~k ())) [ 1; 2; 4 ] in
  List.iter (fun key -> Fleet.Cache.store c key exhaustive_metrics) keys;
  (* pin distinct mtimes so "oldest first" is deterministic *)
  let now = Unix.gettimeofday () in
  List.iteri
    (fun i key ->
      let path = Filename.concat dir (key ^ ".metrics") in
      let t = now -. float_of_int (100 - (10 * i)) in
      Unix.utimes path t t)
    keys;
  let full = Fleet.Cache.stats c in
  checki "three entries" 3 full.Fleet.Cache.entries;
  checkb "bytes counted" true (full.Fleet.Cache.bytes > 0);
  let per_entry = full.Fleet.Cache.bytes / 3 in
  (* keep room for exactly one entry: the two oldest must go *)
  let removed = Fleet.Cache.gc c ~max_bytes:per_entry in
  checki "evicted oldest two" 2 removed.Fleet.Cache.entries;
  checki "evicted bytes" (2 * per_entry) removed.Fleet.Cache.bytes;
  (match keys with
  | [ oldest; middle; newest ] ->
    checkb "oldest gone" true (Fleet.Cache.find c oldest = None);
    checkb "middle gone" true (Fleet.Cache.find c middle = None);
    checkb "newest survives" true
      (Fleet.Cache.find c newest = Some exhaustive_metrics)
  | _ -> assert false);
  checki "stats agree after gc" 1 (Fleet.Cache.stats c).Fleet.Cache.entries;
  (* gc to zero empties the cache; negative is a programming error *)
  let removed = Fleet.Cache.gc c ~max_bytes:0 in
  checki "emptied" 1 removed.Fleet.Cache.entries;
  checki "nothing left" 0 (Fleet.Cache.stats c).Fleet.Cache.entries;
  Alcotest.check_raises "negative budget"
    (Invalid_argument "Fleet.Cache.gc: max_bytes must be >= 0 (got -1)")
    (fun () -> ignore (Fleet.Cache.gc c ~max_bytes:(-1)))

(* ------------------------------------------------------------------ *)
(* Pool cancellation                                                   *)

let test_pool_cancel_before_start () =
  let rs =
    Fleet.Pool.run_sequential
      ~cancel:(fun () -> true)
      (fun _b x -> x)
      [ 1; 2; 3 ]
  in
  List.iter
    (fun r -> checkb "cancelled before start" true (r = Error "cancelled"))
    rs

let test_pool_cancel_mid_run () =
  let ticks = Atomic.make 0 in
  let rs =
    Fleet.Pool.run_sequential
      ~cancel:(fun () -> Atomic.get ticks > 5_000)
      (fun b () ->
        for _ = 1 to 10_000_000 do
          Atomic.incr ticks;
          Fleet.Pool.tick b
        done)
      [ () ]
  in
  checkb "aborted by the cancel hook" true (rs = [ Error "cancelled" ]);
  checkb "stopped promptly, not at the end" true
    (Atomic.get ticks < 10_000_000)

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)

let resolve ~scenario ~codec =
  ignore codec;
  Experiments.Util.scenario scenario

(* Same sweep, different device profiles: the profile is part of the
   content key, so warm runs under another profile must never be
   served from the first profile's entries. *)
let test_cache_profiles_never_share_entries () =
  let dir = temp_dir "ccomp-cache" in
  let cache = Fleet.Cache.open_dir dir in
  let sweep profile registry =
    Fleet.Sweep.run ~cache ~registry ~resolve
      [ job ~profile ~scenario:"fir" ~k:2 () ]
  in
  let paper_reg = Sim.Metrics.create () in
  let _ = sweep "paper-2005" paper_reg in
  let value reg name = Sim.Metrics.value (Sim.Metrics.counter reg name) in
  checki "cold paper-2005 run misses" 1 (value paper_reg "fleet_cache_misses");
  (* Warm under a *different* profile: must miss and run the engine. *)
  let flash_reg = Sim.Metrics.create () in
  let outcomes = sweep "cortex-m-flash" flash_reg in
  checki "other profile is a miss" 1 (value flash_reg "fleet_cache_misses");
  checki "other profile runs the engine" 1
    (value flash_reg "fleet_engine_runs");
  (match outcomes with
  | [ { Fleet.Sweep.result = Ok m; cached = false; _ } ] ->
    checkb "energized profile actually charges energy" true
      (m.Core.Metrics.energy_nj > 0)
  | _ -> Alcotest.fail "expected one uncached Ok outcome");
  (* Warm under the same profile: pure hit. *)
  let warm_reg = Sim.Metrics.create () in
  let _ = sweep "cortex-m-flash" warm_reg in
  checki "same profile hits" 1 (value warm_reg "fleet_cache_hits");
  checki "same profile runs nothing" 0 (value warm_reg "fleet_engine_runs")

let test_sweep_normalize_ks () =
  checkb "sorted and deduped" true
    (Fleet.Sweep.normalize_ks [ 8; 2; 2; 32; 8; 1 ] = [ 1; 2; 8; 32 ]);
  checkb "already-normal input unchanged" true
    (Fleet.Sweep.normalize_ks [ 1; 2; 4 ] = [ 1; 2; 4 ]);
  checkb "empty stays empty" true (Fleet.Sweep.normalize_ks [] = [])

let test_sweep_matrix_order () =
  let jobs =
    Fleet.Sweep.matrix ~scenarios:[ "a"; "b" ] ~ks:[ 1; 2 ] ()
  in
  Alcotest.check
    Alcotest.(list (pair string int))
    "scenarios outer, ks inner"
    [ ("a", 1); ("a", 2); ("b", 1); ("b", 2) ]
    (List.map (fun (j : Fleet.Job.t) -> (j.scenario, j.k)) jobs)

let test_sweep_matrix_line_sizes () =
  let jobs =
    Fleet.Sweep.matrix ~scenarios:[ "a" ] ~ks:[ 1 ]
      ~line_sizes:[ None; Some 16; Some 64 ] ()
  in
  Alcotest.check
    Alcotest.(list (option int))
    "line sizes innermost"
    [ None; Some 16; Some 64 ]
    (List.map (fun (j : Fleet.Job.t) -> j.line_size) jobs);
  checkb "default matrix has no line dimension" true
    (List.for_all
       (fun (j : Fleet.Job.t) -> j.line_size = None)
       (Fleet.Sweep.matrix ~scenarios:[ "a" ] ~ks:[ 1 ] ()))

let test_sweep_shard () =
  let xs = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let shards =
    List.map (fun i -> Fleet.Sweep.shard ~shards:3 ~index:i xs) [ 0; 1; 2 ]
  in
  checkb "shards partition the list" true
    (List.sort compare (List.concat shards) = xs);
  checkb "round robin" true (List.nth shards 0 = [ 1; 4; 7 ]);
  Alcotest.check_raises "bad index"
    (Invalid_argument "Fleet.Sweep.shard: index 3 not in [0, 3)") (fun () ->
      ignore (Fleet.Sweep.shard ~shards:3 ~index:3 xs))

let test_sweep_dedup_and_counters () =
  let registry = Sim.Metrics.create () in
  let spec = job ~scenario:"fir" ~k:2 () in
  let outcomes =
    Fleet.Sweep.run ~jobs:2 ~registry ~resolve [ spec; spec; spec ]
  in
  let value name = Sim.Metrics.value (Sim.Metrics.counter registry name) in
  checki "three submitted" 3 (value "fleet_jobs_submitted");
  checki "one engine run serves all three" 1 (value "fleet_engine_runs");
  checki "all completed" 3 (value "fleet_jobs_completed");
  checki "no errors" 0 (value "fleet_jobs_errored");
  match List.map (fun (o : Fleet.Sweep.outcome) -> o.result) outcomes with
  | [ Ok a; Ok b; Ok c ] ->
    checkb "fanned-out results identical" true (a = b && b = c)
  | _ -> Alcotest.fail "expected three Ok results"

let test_sweep_bad_scenario_is_error () =
  let outcomes =
    Fleet.Sweep.run ~resolve [ job ~scenario:"no-such-workload" () ]
  in
  match outcomes with
  | [ { result = Error msg; cached = false; _ } ] ->
    checkb "resolve failure captured" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected one Error outcome"

let test_sweep_progress_jsonl () =
  let lines = ref [] in
  let _ =
    Fleet.Sweep.run ~jobs:2
      ~progress:(fun l -> lines := l :: !lines)
      ~resolve
      [ job ~scenario:"fir" ~k:2 (); job ~scenario:"crc32" ~k:2 () ]
  in
  checki "one line per job" 2 (List.length !lines);
  List.iter
    (fun l ->
      checkb "looks like a JSONL object" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}');
      let contains needle =
        let nl = String.length needle and ll = String.length l in
        let rec go i =
          i + nl <= ll && (String.sub l i nl = needle || go (i + 1))
        in
        go 0
      in
      checkb "tagged" true (contains "fleet_job"))
    !lines

(* ------------------------------------------------------------------ *)
(* The determinism guarantee (acceptance criterion)                    *)

let render_experiment id =
  match Experiments.Registry.find id with
  | Some e -> Report.Table.render (e.runner ())
  | None -> Alcotest.failf "unknown experiment %s" id

let test_determinism id () =
  (* Reference: sequential, uncached. *)
  Experiments.Util.configure_fleet ();
  let reference = render_experiment id in
  let dir = temp_dir "ccomp-fleet-det" in
  let cache = Fleet.Cache.open_dir dir in
  Fun.protect
    ~finally:(fun () -> Experiments.Util.configure_fleet ())
    (fun () ->
      (* Parallel, cold cache. *)
      let cold_registry = Sim.Metrics.create () in
      Experiments.Util.configure_fleet ~jobs:3 ~cache ~registry:cold_registry
        ();
      checks (id ^ " parallel cold-cache output is byte-identical") reference
        (render_experiment id);
      (* Parallel, warm cache: same bytes, zero engine runs. *)
      let warm_registry = Sim.Metrics.create () in
      Experiments.Util.configure_fleet ~jobs:3 ~cache ~registry:warm_registry
        ();
      checks (id ^ " warm-cache output is byte-identical") reference
        (render_experiment id);
      let value name =
        Sim.Metrics.value (Sim.Metrics.counter warm_registry name)
      in
      checki (id ^ " warm run does zero engine runs") 0
        (value "fleet_engine_runs");
      checkb (id ^ " warm run is all cache hits") true
        (value "fleet_cache_hits" > 0 && value "fleet_cache_misses" = 0))

let () =
  Alcotest.run "fleet"
    [
      ( "job",
        [
          Alcotest.test_case "key stability" `Quick test_key_stable;
          Alcotest.test_case "key charset" `Quick test_key_filesystem_safe;
          Alcotest.test_case "line size in the spec" `Quick
            test_line_size_in_spec;
        ] );
      ( "pool",
        [
          Alcotest.test_case "submission order" `Quick test_pool_order;
          Alcotest.test_case "crash isolation" `Quick
            test_pool_crash_isolation;
          Alcotest.test_case "fuel" `Quick test_pool_fuel;
          Alcotest.test_case "sequential = parallel" `Quick
            test_pool_sequential_matches_parallel;
          Alcotest.test_case "bad sizes" `Quick test_pool_rejects_bad_sizes;
          Alcotest.test_case "cancel before start" `Quick
            test_pool_cancel_before_start;
          Alcotest.test_case "cancel mid-run" `Quick test_pool_cancel_mid_run;
        ] );
      ( "cache",
        [
          Alcotest.test_case "round-trip every field" `Quick
            test_cache_roundtrip_every_field;
          Alcotest.test_case "store/find" `Quick test_cache_store_find;
          Alcotest.test_case "corrupt entry = miss" `Quick
            test_cache_corrupt_entry_is_miss;
          Alcotest.test_case "version mismatch = miss" `Quick
            test_cache_version_mismatch_is_miss;
          Alcotest.test_case "previous-version entry = miss" `Quick
            test_cache_previous_version_entry_is_miss;
          Alcotest.test_case "profiles never share entries" `Quick
            test_cache_profiles_never_share_entries;
          Alcotest.test_case "stats + gc" `Quick test_cache_stats_and_gc;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "normalize ks" `Quick test_sweep_normalize_ks;
          Alcotest.test_case "matrix order" `Quick test_sweep_matrix_order;
          Alcotest.test_case "matrix line sizes" `Quick
            test_sweep_matrix_line_sizes;
          Alcotest.test_case "shard" `Quick test_sweep_shard;
          Alcotest.test_case "dedup + counters" `Quick
            test_sweep_dedup_and_counters;
          Alcotest.test_case "bad scenario" `Quick
            test_sweep_bad_scenario_is_error;
          Alcotest.test_case "progress jsonl" `Quick test_sweep_progress_jsonl;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "E6 parallel+cache = sequential" `Slow
            (test_determinism "E6");
          Alcotest.test_case "E16 parallel+cache = sequential" `Slow
            (test_determinism "E16");
          Alcotest.test_case "E17 parallel+cache = sequential" `Slow
            (test_determinism "E17");
        ] );
    ]
