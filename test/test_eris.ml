(* Tests for the ERIS-32 substrate: types, encoding, assembler and
   machine semantics. *)

module T = Eris.Types

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

let test_reg_validation () =
  checki "r0 index" 0 (T.reg_index (T.reg 0));
  checki "r15 index" 15 (T.reg_index (T.reg 15));
  Alcotest.check_raises "reg 16 rejected" (Invalid_argument "Eris.Types.reg: 16")
    (fun () -> ignore (T.reg 16));
  Alcotest.check_raises "reg -1 rejected" (Invalid_argument "Eris.Types.reg: -1")
    (fun () -> ignore (T.reg (-1)))

let test_reg_names () =
  checks "r3" "r3" (T.reg_name (T.reg 3));
  checks "sp alias" "sp" (T.reg_name T.sp);
  checks "fp alias" "fp" (T.reg_name T.fp);
  checks "ra alias" "ra" (T.reg_name T.ra);
  checkb "parse r10" true (T.reg_of_name "r10" = Some (T.reg 10));
  checkb "parse zero" true (T.reg_of_name "zero" = Some T.r0);
  checkb "parse ra" true (T.reg_of_name "ra" = Some T.ra);
  checkb "reject r16" true (T.reg_of_name "r16" = None);
  checkb "reject bogus" true (T.reg_of_name "x1" = None);
  checkb "reject empty" true (T.reg_of_name "" = None)

let test_imm_ranges () =
  checkb "imm14 max" true (T.imm14_fits 8191);
  checkb "imm14 min" true (T.imm14_fits (-8192));
  checkb "imm14 over" false (T.imm14_fits 8192);
  checkb "imm14 under" false (T.imm14_fits (-8193));
  checkb "uimm14 top" true (T.uimm14_fits 16383);
  checkb "uimm14 over" false (T.uimm14_fits 16384);
  checkb "uimm14 negative" false (T.uimm14_fits (-1));
  checkb "imm18 max" true (T.imm18_fits 131071);
  checkb "imm18 over" false (T.imm18_fits 131072);
  checkb "imm22 max" true (T.imm22_fits 2097151);
  checkb "uimm18 max" true (T.uimm18_fits 262143);
  checkb "uimm18 over" false (T.uimm18_fits 262144)

let test_alui_imm_rule () =
  (* Logical immediates are unsigned, others signed. *)
  checkb "ori 16383 ok" true (T.alui_imm_fits T.Or 16383);
  checkb "ori -1 rejected" false (T.alui_imm_fits T.Or (-1));
  checkb "addi -8192 ok" true (T.alui_imm_fits T.Add (-8192));
  checkb "addi 16383 rejected" false (T.alui_imm_fits T.Add 16383)

let test_validate () =
  checkb "valid addi" true
    (T.validate (T.Alui (T.Add, T.reg 1, T.reg 2, 100)) = Ok ());
  checkb "invalid addi" true
    (Result.is_error (T.validate (T.Alui (T.Add, T.reg 1, T.reg 2, 10000))));
  checkb "invalid branch" true
    (Result.is_error (T.validate (T.Branch (T.Eq, T.r0, T.r0, 1 lsl 18))));
  checkb "invalid lui" true
    (Result.is_error (T.validate (T.Lui (T.reg 1, -1))))

let test_control_transfer () =
  checkb "branch ends block" true
    (T.is_control_transfer (T.Branch (T.Eq, T.r0, T.r0, 0)));
  checkb "jal ends block" true (T.is_control_transfer (T.Jal (T.r0, 0)));
  checkb "jalr ends block" true (T.is_control_transfer (T.Jalr (T.r0, T.ra, 0)));
  checkb "halt ends block" true (T.is_control_transfer T.Halt);
  checkb "add does not" false
    (T.is_control_transfer (T.Alu (T.Add, T.r0, T.r0, T.r0)))

let test_cycle_cost () =
  checki "alu" 1 (T.cycle_cost (T.Alu (T.Add, T.r0, T.r0, T.r0)));
  checki "mul" 3 (T.cycle_cost (T.Alu (T.Mul, T.r0, T.r0, T.r0)));
  checki "muli" 3 (T.cycle_cost (T.Alui (T.Mul, T.r0, T.r0, 1)));
  checki "load" 2 (T.cycle_cost (T.Load (T.W32, T.r0, T.r0, 0)));
  checki "store" 2 (T.cycle_cost (T.Store (T.W8, T.r0, T.r0, 0)));
  checki "branch" 2 (T.cycle_cost (T.Branch (T.Lt, T.r0, T.r0, 0)));
  checki "jal" 1 (T.cycle_cost (T.Jal (T.ra, 0)))

let test_pp () =
  checks "add" "add r1, r2, r3"
    (T.to_string (T.Alu (T.Add, T.reg 1, T.reg 2, T.reg 3)));
  checks "addi" "addi r1, r2, -5"
    (T.to_string (T.Alui (T.Add, T.reg 1, T.reg 2, -5)));
  checks "lw" "lw r5, 8(sp)" (T.to_string (T.Load (T.W32, T.reg 5, T.sp, 8)));
  checks "sb" "sb r5, -4(fp)" (T.to_string (T.Store (T.W8, T.reg 5, T.fp, -4)));
  checks "beq" "beq r1, r0, 7"
    (T.to_string (T.Branch (T.Eq, T.reg 1, T.r0, 7)));
  checks "halt" "halt" (T.to_string T.Halt)

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let arbitrary_instruction =
  let open QCheck in
  let reg_gen = Gen.map T.reg (Gen.int_range 0 15) in
  let alu_gen = Gen.oneofl T.all_alu_ops in
  let cond_gen = Gen.oneofl T.all_conds in
  let width_gen = Gen.oneofl [ T.W8; T.W32 ] in
  let imm14 = Gen.int_range (-8192) 8191 in
  let uimm14 = Gen.int_range 0 16383 in
  let imm18 = Gen.int_range (-131072) 131071 in
  let imm22 = Gen.int_range (-2097152) 2097151 in
  let uimm18 = Gen.int_range 0 262143 in
  let gen =
    Gen.oneof
      [
        Gen.map3 (fun op rd (rs1, rs2) -> T.Alu (op, rd, rs1, rs2)) alu_gen
          reg_gen (Gen.pair reg_gen reg_gen);
        Gen.map3
          (fun op rd (rs1, signed, unsigned) ->
            let imm = if T.alu_imm_unsigned op then unsigned else signed in
            T.Alui (op, rd, rs1, imm))
          alu_gen reg_gen
          (Gen.triple reg_gen imm14 uimm14);
        Gen.map2 (fun rd imm -> T.Lui (rd, imm)) reg_gen uimm18;
        Gen.map3 (fun w (rd, rs1) off -> T.Load (w, rd, rs1, off)) width_gen
          (Gen.pair reg_gen reg_gen) imm14;
        Gen.map3 (fun w (rs2, rs1) off -> T.Store (w, rs2, rs1, off)) width_gen
          (Gen.pair reg_gen reg_gen) imm14;
        Gen.map3 (fun c (rs1, rs2) off -> T.Branch (c, rs1, rs2, off)) cond_gen
          (Gen.pair reg_gen reg_gen) imm18;
        Gen.map2 (fun rd off -> T.Jal (rd, off)) reg_gen imm22;
        Gen.map3 (fun rd rs1 off -> T.Jalr (rd, rs1, off)) reg_gen reg_gen imm14;
        Gen.return T.Halt;
      ]
  in
  make ~print:T.to_string gen

let prop_encode_decode_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"encode/decode roundtrip"
    arbitrary_instruction (fun i ->
      match Eris.Encoding.decode (Eris.Encoding.encode i) with
      | Ok i' -> T.equal i i'
      | Error _ -> false)

let prop_encode_in_range =
  QCheck.Test.make ~count:1000 ~name:"encoded word is 32-bit"
    arbitrary_instruction (fun i ->
      let w = Eris.Encoding.encode i in
      w >= 0 && w <= 0xFFFFFFFF)

let test_encode_known () =
  (* halt = opcode 32 in the top 6 bits. *)
  checki "halt" (32 lsl 26) (Eris.Encoding.encode T.Halt);
  (* add r1, r2, r3 = opcode 1. *)
  checki "add"
    ((1 lsl 26) lor (1 lsl 22) lor (2 lsl 18) lor (3 lsl 14))
    (Eris.Encoding.encode (T.Alu (T.Add, T.reg 1, T.reg 2, T.reg 3)))

let test_decode_errors () =
  checkb "opcode 0 invalid" true (Result.is_error (Eris.Encoding.decode 0));
  checkb "opcode 63 invalid" true
    (Result.is_error (Eris.Encoding.decode (63 lsl 26)));
  checkb "negative word invalid" true
    (Result.is_error (Eris.Encoding.decode (-1)));
  checkb "oversized word invalid" true
    (Result.is_error (Eris.Encoding.decode 0x1_0000_0000))

let test_encode_rejects_bad_imm () =
  Alcotest.check_raises "imm out of range"
    (Invalid_argument "Eris.Encoding.encode: imm14 out of range: 10000")
    (fun () -> ignore (Eris.Encoding.encode (T.Alui (T.Add, T.r0, T.r0, 10000))))

let test_program_roundtrip () =
  let instrs =
    [|
      T.Alui (T.Add, T.reg 1, T.r0, 5);
      T.Alu (T.Mul, T.reg 2, T.reg 1, T.reg 1);
      T.Branch (T.Ne, T.reg 2, T.r0, -2);
      T.Halt;
    |]
  in
  let image = Eris.Encoding.encode_program instrs in
  checki "image size" 16 (Bytes.length image);
  match Eris.Encoding.decode_program image with
  | Ok instrs' ->
    checkb "same instructions" true
      (Array.for_all2 T.equal instrs instrs')
  | Error msg -> Alcotest.failf "decode_program failed: %s" msg

let test_decode_program_bad_length () =
  checkb "length 3 rejected" true
    (Result.is_error (Eris.Encoding.decode_program (Bytes.create 3)))

let test_word_io () =
  let b = Bytes.create 8 in
  Eris.Encoding.write_word b 0 0xDEADBEEF;
  Eris.Encoding.write_word b 4 1;
  checki "read back" 0xDEADBEEF (Eris.Encoding.read_word b 0);
  checki "read back 2" 1 (Eris.Encoding.read_word b 4);
  (* little-endian layout *)
  checki "byte 0" 0xEF (Char.code (Bytes.get b 0));
  checki "byte 3" 0xDE (Char.code (Bytes.get b 3))

(* ------------------------------------------------------------------ *)
(* Assembler                                                           *)

let assemble_one line =
  match Eris.Asm.parse_line line with
  | Ok (Some i) -> i
  | Ok None -> Alcotest.failf "no instruction in %S" line
  | Error msg -> Alcotest.failf "parse error in %S: %s" line msg

let test_asm_instructions () =
  checkb "add" true
    (T.equal (assemble_one "add r1, r2, r3") (T.Alu (T.Add, T.reg 1, T.reg 2, T.reg 3)));
  checkb "subi negative" true
    (T.equal (assemble_one "subi r1, r1, 1") (T.Alui (T.Sub, T.reg 1, T.reg 1, 1)));
  checkb "lw" true
    (T.equal (assemble_one "lw r5, 8(sp)") (T.Load (T.W32, T.reg 5, T.sp, 8)));
  checkb "lw no offset" true
    (T.equal (assemble_one "lw r5, (r2)") (T.Load (T.W32, T.reg 5, T.reg 2, 0)));
  checkb "sb" true
    (T.equal (assemble_one "sb r4, -1(r6)") (T.Store (T.W8, T.reg 4, T.reg 6, -1)));
  checkb "lui hex" true
    (T.equal (assemble_one "lui r2, 0x3FF") (T.Lui (T.reg 2, 0x3FF)));
  checkb "jalr" true
    (T.equal (assemble_one "jalr r0, ra, 0") (T.Jalr (T.r0, T.ra, 0)));
  checkb "numeric branch target" true
    (T.equal (assemble_one "beq r1, r2, -4") (T.Branch (T.Eq, T.reg 1, T.reg 2, -4)))

let test_asm_pseudo () =
  checkb "nop" true
    (T.equal (assemble_one "nop") (T.Alui (T.Add, T.r0, T.r0, 0)));
  checkb "mov" true
    (T.equal (assemble_one "mov r1, r2") (T.Alui (T.Add, T.reg 1, T.reg 2, 0)));
  checkb "ret" true
    (T.equal (assemble_one "ret") (T.Jalr (T.r0, T.ra, 0)));
  checkb "li small" true
    (T.equal (assemble_one "li r1, -7") (T.Alui (T.Add, T.reg 1, T.r0, -7)));
  checkb "ble swaps" true
    (T.equal (assemble_one "ble r1, r2, 3") (T.Branch (T.Ge, T.reg 2, T.reg 1, 3)));
  checkb "bgt swaps" true
    (T.equal (assemble_one "bgt r1, r2, 3") (T.Branch (T.Lt, T.reg 2, T.reg 1, 3)))

let test_asm_comments_and_blank () =
  checkb "comment only" true (Eris.Asm.parse_line "; hello" = Ok None);
  checkb "hash comment" true (Eris.Asm.parse_line "# hello" = Ok None);
  checkb "slash comment" true (Eris.Asm.parse_line "// hello" = Ok None);
  checkb "blank" true (Eris.Asm.parse_line "   " = Ok None);
  checkb "trailing comment" true
    (T.equal (assemble_one "nop ; trailing") (T.Alui (T.Add, T.r0, T.r0, 0)))

let test_asm_labels_and_branches () =
  let prog =
    Eris.Asm.assemble_exn
      {|
start:
  addi r1, r0, 3
loop:
  subi r1, r1, 1
  bne r1, r0, loop
  j end
  nop
end:
  halt
|}
  in
  checki "instruction count" 6 (Eris.Program.length prog);
  checkb "start symbol" true (Eris.Program.address_of_symbol prog "start" = Some 0);
  checkb "loop symbol" true (Eris.Program.address_of_symbol prog "loop" = Some 4);
  checkb "end symbol" true (Eris.Program.address_of_symbol prog "end" = Some 20);
  (* bne at address 8 targets loop at 4: offset = (4 - 12) / 4 = -2. *)
  checkb "backward branch offset" true
    (T.equal (Eris.Program.instr_at prog 8) (T.Branch (T.Ne, T.reg 1, T.r0, -2)));
  (* j end at address 12: offset = (20 - 16) / 4 = 1. *)
  checkb "forward jump offset" true
    (T.equal (Eris.Program.instr_at prog 12) (T.Jal (T.r0, 1)))

let test_asm_li_expansion () =
  let prog = Eris.Asm.assemble_exn "li r1, 0x12345678\nhalt" in
  checki "li big is 2 words" 3 (Eris.Program.length prog);
  let m = Eris.Machine.create prog in
  let _ = Eris.Machine.run_to_halt m in
  checki "li big value" 0x12345678 (Eris.Machine.get_reg m (T.reg 1));
  let prog2 = Eris.Asm.assemble_exn "li r1, 0xFFFFFFFF\nhalt" in
  let m2 = Eris.Machine.create prog2 in
  let _ = Eris.Machine.run_to_halt m2 in
  checki "li all-ones" 0xFFFFFFFF (Eris.Machine.get_reg m2 (T.reg 1))

let test_asm_li_sizing_consistency () =
  (* A label after a li must resolve consistently between passes, for
     both the 1-word and 2-word forms. *)
  let prog =
    Eris.Asm.assemble_exn
      {|
  li r1, 100
  li r2, 100000
  j target
target:
  halt
|}
  in
  checkb "target symbol" true
    (Eris.Program.address_of_symbol prog "target" = Some 16);
  checkb "jump is fallthrough" true
    (T.equal (Eris.Program.instr_at prog 12) (T.Jal (T.r0, 0)))

let test_asm_la () =
  let prog = Eris.Asm.assemble_exn "la r1, target\nnop\ntarget: halt" in
  let m = Eris.Machine.create prog in
  let _ = Eris.Machine.run_to_halt m in
  checki "la loads address" 12 (Eris.Machine.get_reg m (T.reg 1))

let test_asm_data_directives () =
  let prog = Eris.Asm.assemble_exn ".data 0x100\n.dw 42\n.dw -1\nhalt" in
  checkb "data entries" true
    (prog.Eris.Program.data = [ (0x100, 42); (0x104, 0xFFFFFFFF) ]);
  let m = Eris.Machine.create prog in
  checki "preloaded word" 42 (Eris.Machine.read_word m 0x100);
  checki "preloaded negative" 0xFFFFFFFF (Eris.Machine.read_word m 0x104)

let expect_asm_error src =
  match Eris.Asm.assemble src with
  | Ok _ -> Alcotest.failf "expected assembly error for %S" src
  | Error _ -> ()

let test_asm_errors () =
  expect_asm_error "bogus r1, r2";
  expect_asm_error "add r1, r2";
  expect_asm_error "add r1, r2, r99";
  expect_asm_error "beq r1, r2, nowhere";
  expect_asm_error "dup: nop\ndup: nop";
  expect_asm_error "addi r1, r0, 99999";
  expect_asm_error ".data oops";
  expect_asm_error ".unknown 3";
  expect_asm_error "lw r1, 8[r2]"

let test_asm_error_line_numbers () =
  match Eris.Asm.assemble "nop\nnop\nbogus r1\nnop" with
  | Error e -> checki "error line" 3 e.Eris.Asm.line
  | Ok _ -> Alcotest.fail "expected error"

(* ------------------------------------------------------------------ *)
(* Machine                                                             *)

(* Runs a snippet and returns the machine. *)
let run_asm src =
  let m = Eris.Machine.create (Eris.Asm.assemble_exn src) in
  let _ = Eris.Machine.run_to_halt m in
  m

let reg_after src r =
  Eris.Machine.get_reg (run_asm src) (T.reg r)

let test_machine_alu () =
  checki "add" 12 (reg_after "li r1, 5\nli r2, 7\nadd r3, r1, r2\nhalt" 3);
  checki "sub wrap" 0xFFFFFFFE
    (reg_after "li r1, 3\nli r2, 5\nsub r3, r1, r2\nhalt" 3);
  checki "and" 4 (reg_after "li r1, 6\nli r2, 12\nand r3, r1, r2\nhalt" 3);
  checki "or" 14 (reg_after "li r1, 6\nli r2, 12\nor r3, r1, r2\nhalt" 3);
  checki "xor" 10 (reg_after "li r1, 6\nli r2, 12\nxor r3, r1, r2\nhalt" 3);
  checki "sll" 24 (reg_after "li r1, 6\nli r2, 2\nsll r3, r1, r2\nhalt" 3);
  checki "srl" 1 (reg_after "li r1, 6\nli r2, 2\nsrl r3, r1, r2\nhalt" 3);
  checki "srl negative is logical" 0x3FFFFFFF
    (reg_after "li r1, -1\nli r2, 2\nsrl r3, r1, r2\nhalt" 3);
  checki "sra negative is arithmetic" 0xFFFFFFFF
    (reg_after "li r1, -1\nli r2, 2\nsra r3, r1, r2\nhalt" 3);
  checki "sra -8 by 1" 0xFFFFFFFC
    (reg_after "li r1, -8\nli r2, 1\nsra r3, r1, r2\nhalt" 3);
  checki "slt signed" 1 (reg_after "li r1, -1\nli r2, 1\nslt r3, r1, r2\nhalt" 3);
  checki "slt false" 0 (reg_after "li r1, 1\nli r2, -1\nslt r3, r1, r2\nhalt" 3);
  checki "mul" 35 (reg_after "li r1, 5\nli r2, 7\nmul r3, r1, r2\nhalt" 3);
  checki "mul wraps to 32 bits" 0
    (reg_after "li r1, 0x10000\nmul r3, r1, r1\nhalt" 3);
  checki "shift amount masked to 31" (2 lsl 1)
    (reg_after "li r1, 2\nli r2, 33\nsll r3, r1, r2\nhalt" 3)

let test_machine_r0 () =
  checki "r0 write discarded" 0 (reg_after "li r1, 9\nadd r0, r1, r1\nhalt" 0)

let test_machine_memory () =
  let m =
    run_asm "li r1, 0x1000\nli r2, 0x01020304\nsw r2, 0(r1)\nlb r3, 1(r1)\nhalt"
  in
  checki "lb reads byte 1 (LE)" 3 (Eris.Machine.get_reg m (T.reg 3));
  checki "word stored" 0x01020304 (Eris.Machine.read_word m 0x1000);
  let m2 = run_asm "li r1, 0x1000\nli r2, 0xAB\nsb r2, 2(r1)\nlw r3, 0(r1)\nhalt" in
  checki "sb places byte" (0xAB lsl 16) (Eris.Machine.get_reg m2 (T.reg 3))

let expect_fault src =
  match run_asm src with
  | _ -> Alcotest.failf "expected fault for %S" src
  | exception Eris.Machine.Fault _ -> ()

let test_machine_faults () =
  expect_fault "li r1, 0x100000\nlw r2, 0(r1)\nhalt";
  expect_fault "li r1, 2\nlw r2, 0(r1)\nhalt";
  expect_fault "li r1, -4\nsw r1, 0(r1)\nhalt";
  (* jump out of the program *)
  expect_fault "li r1, 0x4000\njalr r0, r1, 0\nhalt";
  (* unaligned jump target *)
  expect_fault "li r1, 2\njalr r0, r1, 0\nhalt"

let test_machine_branches () =
  checki "beq taken" 1
    (reg_after "li r1, 5\nbeq r1, r1, yes\nli r2, 9\nhalt\nyes: li r2, 1\nhalt" 2);
  checki "bne not taken" 9
    (reg_after "li r1, 5\nbne r1, r1, yes\nli r2, 9\nhalt\nyes: li r2, 1\nhalt" 2);
  checki "blt signed" 1
    (reg_after "li r1, -5\nli r2, 3\nblt r1, r2, yes\nli r3, 9\nhalt\nyes: li r3, 1\nhalt" 3);
  checki "bge equal" 1
    (reg_after "li r1, 3\nbge r1, r1, yes\nli r3, 9\nhalt\nyes: li r3, 1\nhalt" 3)

let test_machine_call_ret () =
  let m =
    run_asm
      {|
  li r1, 10
  call double
  mov r4, r2
  halt
double:
  add r2, r1, r1
  ret
|}
  in
  checki "subroutine result" 20 (Eris.Machine.get_reg m (T.reg 4))

let test_machine_counters_and_reset () =
  let m = run_asm "nop\nnop\nmul r1, r0, r0\nhalt" in
  checki "instr count" 4 (Eris.Machine.instr_count m);
  (* 1 + 1 + 3 + 1 cycles *)
  checki "cycle count" 6 (Eris.Machine.cycle_count m);
  checkb "halted" true (Eris.Machine.halted m);
  Eris.Machine.reset m;
  checkb "reset clears halt" false (Eris.Machine.halted m);
  checki "reset clears pc" 0 (Eris.Machine.pc m);
  checki "reset clears counters" 0 (Eris.Machine.instr_count m)

let test_machine_fuel () =
  let m = Eris.Machine.create (Eris.Asm.assemble_exn "loop: j loop") in
  let r = Eris.Machine.run ~fuel:100 m in
  checkb "out of fuel" true (r.Eris.Machine.reason = Eris.Machine.Out_of_fuel);
  checki "ran 100" 100 r.Eris.Machine.instrs

let test_machine_on_block () =
  let src = "li r1, 2\nloop: subi r1, r1, 1\nbne r1, r0, loop\nhalt" in
  let prog = Eris.Asm.assemble_exn src in
  let visits = ref [] in
  let m = Eris.Machine.create prog in
  let _ =
    Eris.Machine.run ~leaders:[ 0; 4 ] ~on_block:(fun a -> visits := a :: !visits) m
  in
  checkb "block trace" true (List.rev !visits = [ 0; 4; 4 ])

let test_machine_step_after_halt () =
  let m = run_asm "halt" in
  let before = Eris.Machine.instr_count m in
  Eris.Machine.step m;
  checki "step after halt is no-op" before (Eris.Machine.instr_count m)

let test_disasm () =
  let w = Eris.Encoding.encode (T.Alu (T.Add, T.reg 1, T.reg 2, T.reg 3)) in
  checks "disasm add" "add r1, r2, r3" (Eris.Disasm.instruction w);
  checkb "disasm bad word" true
    (String.length (Eris.Disasm.instruction 0) > 0
    && String.sub (Eris.Disasm.instruction 0) 0 5 = ".word");
  let prog = Eris.Asm.assemble_exn "nop\nhalt" in
  checki "image listing length" 2
    (List.length (Eris.Disasm.image prog.Eris.Program.image))

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run ~and_exit:false "eris"
    [
      ( "types",
        [
          Alcotest.test_case "register validation" `Quick test_reg_validation;
          Alcotest.test_case "register names" `Quick test_reg_names;
          Alcotest.test_case "immediate ranges" `Quick test_imm_ranges;
          Alcotest.test_case "alui immediate rule" `Quick test_alui_imm_rule;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "control transfer" `Quick test_control_transfer;
          Alcotest.test_case "cycle cost" `Quick test_cycle_cost;
          Alcotest.test_case "pretty printing" `Quick test_pp;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "known encodings" `Quick test_encode_known;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "encode rejects bad imm" `Quick
            test_encode_rejects_bad_imm;
          Alcotest.test_case "program roundtrip" `Quick test_program_roundtrip;
          Alcotest.test_case "bad program length" `Quick
            test_decode_program_bad_length;
          Alcotest.test_case "word io little-endian" `Quick test_word_io;
          qcheck prop_encode_decode_roundtrip;
          qcheck prop_encode_in_range;
        ] );
      ( "asm",
        [
          Alcotest.test_case "instructions" `Quick test_asm_instructions;
          Alcotest.test_case "pseudo-instructions" `Quick test_asm_pseudo;
          Alcotest.test_case "comments and blanks" `Quick
            test_asm_comments_and_blank;
          Alcotest.test_case "labels and branches" `Quick
            test_asm_labels_and_branches;
          Alcotest.test_case "li expansion" `Quick test_asm_li_expansion;
          Alcotest.test_case "li sizing consistency" `Quick
            test_asm_li_sizing_consistency;
          Alcotest.test_case "la" `Quick test_asm_la;
          Alcotest.test_case "data directives" `Quick test_asm_data_directives;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          Alcotest.test_case "error line numbers" `Quick
            test_asm_error_line_numbers;
        ] );
      ( "machine",
        [
          Alcotest.test_case "alu semantics" `Quick test_machine_alu;
          Alcotest.test_case "r0 hardwired" `Quick test_machine_r0;
          Alcotest.test_case "memory access" `Quick test_machine_memory;
          Alcotest.test_case "faults" `Quick test_machine_faults;
          Alcotest.test_case "branches" `Quick test_machine_branches;
          Alcotest.test_case "call/ret" `Quick test_machine_call_ret;
          Alcotest.test_case "counters and reset" `Quick
            test_machine_counters_and_reset;
          Alcotest.test_case "fuel" `Quick test_machine_fuel;
          Alcotest.test_case "block callbacks" `Quick test_machine_on_block;
          Alcotest.test_case "step after halt" `Quick
            test_machine_step_after_halt;
          Alcotest.test_case "disassembler" `Quick test_disasm;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Builder (appended suite)                                            *)

let test_builder_basic () =
  let b = Eris.Builder.create () in
  let loop = Eris.Builder.fresh_label b in
  let exit_l = Eris.Builder.fresh_label b in
  Eris.Builder.emit b (T.Alui (T.Add, T.reg 1, T.r0, 3));
  Eris.Builder.place b loop;
  Eris.Builder.emit b (T.Alui (T.Sub, T.reg 1, T.reg 1, 1));
  Eris.Builder.branch_to b T.Eq (T.reg 1) T.r0 exit_l;
  Eris.Builder.jump_to b loop;
  Eris.Builder.place b exit_l;
  Eris.Builder.halt b;
  let prog = Eris.Builder.to_program b in
  checki "length" 5 (Eris.Program.length prog);
  checkb "loop label" true (Eris.Program.address_of_symbol prog loop = Some 4);
  (* run it: r1 counts 3 -> 0 *)
  let m = Eris.Machine.create prog in
  let _ = Eris.Machine.run_to_halt m in
  checki "r1 is zero" 0 (Eris.Machine.get_reg m (T.reg 1))

let test_builder_call () =
  let b = Eris.Builder.create () in
  let fn = Eris.Builder.fresh_label b in
  Eris.Builder.emit b (T.Alui (T.Add, T.reg 1, T.r0, 20));
  Eris.Builder.call_to b fn;
  Eris.Builder.halt b;
  Eris.Builder.place b fn;
  Eris.Builder.emit b (T.Alu (T.Add, T.reg 2, T.reg 1, T.reg 1));
  Eris.Builder.emit b (T.Jalr (T.r0, T.ra, 0));
  let m = Eris.Machine.create (Eris.Builder.to_program b) in
  let _ = Eris.Machine.run_to_halt m in
  checki "call result" 40 (Eris.Machine.get_reg m (T.reg 2))

let test_builder_errors () =
  let b = Eris.Builder.create () in
  Eris.Builder.jump_to b "missing";
  checkb "unplaced label" true
    (match Eris.Builder.to_program b with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let b2 = Eris.Builder.create () in
  Eris.Builder.place b2 "x";
  checkb "double placement" true
    (match Eris.Builder.place b2 "x" with
    | () -> false
    | exception Invalid_argument _ -> true)

(* Differential property: generate a random structured program with
   the builder, then check that Cfg.Build recovers exactly the block
   structure we emitted. *)
let prop_cfg_matches_builder =
  let gen =
    QCheck.Gen.(
      let* nblocks = int_range 2 10 in
      let* body_sizes = list_repeat nblocks (int_range 0 4) in
      let* seed = int_range 0 10_000 in
      return (nblocks, body_sizes, seed))
  in
  QCheck.Test.make ~count:200 ~name:"cfg matches builder structure"
    (QCheck.make gen) (fun (nblocks, body_sizes, seed) ->
      let rng = Random.State.make [| seed |] in
      let b = Eris.Builder.create () in
      let labels = Array.init nblocks (fun _ -> Eris.Builder.fresh_label b) in
      (* expected CFG edges, by block index *)
      let expected_edges = ref [] in
      List.iteri
        (fun i body ->
          Eris.Builder.place b labels.(i);
          for _ = 1 to body do
            Eris.Builder.emit b (T.Alui (T.Add, T.reg 1, T.reg 1, 1))
          done;
          (* terminator: branch to random target + fallthrough, or
             jump, or halt for the last block *)
          if i = nblocks - 1 then Eris.Builder.halt b
          else begin
            let target = Random.State.int rng nblocks in
            if Random.State.bool rng then begin
              Eris.Builder.branch_to b T.Eq T.r0 T.r0 labels.(target);
              expected_edges := (i, target) :: (i, i + 1) :: !expected_edges
            end
            else begin
              Eris.Builder.jump_to b labels.(target);
              expected_edges := (i, target) :: !expected_edges
            end
          end)
        body_sizes;
      let prog = Eris.Builder.to_program b in
      let g = Cfg.Build.of_program prog in
      (* every emitted label must start a block, and the edge set
         projected onto label-blocks must contain our expectations *)
      let block_of_label i =
        Cfg.Graph.block_of_leader g
          (Option.get (Eris.Program.address_of_symbol prog labels.(i)))
      in
      let labels_ok = Array.for_all Option.is_some (Array.init nblocks block_of_label) in
      labels_ok
      && List.for_all
           (fun (src, dst) ->
             let src_block = Option.get (block_of_label src) in
             let dst_block = Option.get (block_of_label dst) in
             (* the edge may leave from a later block of the same
                region if the branch target split it; walk the
                fallthrough chain *)
             let rec reachable_via_fallthrough b =
               List.mem dst_block (Cfg.Graph.succ_ids g b)
               ||
               match Cfg.Graph.succs g b with
               | [ (nxt, Cfg.Graph.Fallthrough) ] -> reachable_via_fallthrough nxt
               | _ -> false
             in
             reachable_via_fallthrough src_block)
           !expected_edges)

(* emit_all is emit folded over the list, and comments are pure
   annotation: they occupy no slot and leave to_program untouched. *)
let test_builder_emit_all_and_comments () =
  let body =
    [
      T.Alui (T.Add, T.reg 1, T.r0, 7);
      T.Alu (T.Add, T.reg 2, T.reg 1, T.reg 1);
      T.Halt;
    ]
  in
  let one = Eris.Builder.create () in
  List.iter (Eris.Builder.emit one) body;
  let all = Eris.Builder.create () in
  Eris.Builder.comment all "prologue";
  Eris.Builder.emit_all all body;
  Eris.Builder.comment all "epilogue";
  let p1 = Eris.Builder.to_program one
  and p2 = Eris.Builder.to_program all in
  checki "same length" (Eris.Program.length p1) (Eris.Program.length p2);
  for i = 0 to Eris.Program.length p1 - 1 do
    checkb "same instruction" true
      (T.equal (Eris.Program.instr_at p1 (4 * i)) (Eris.Program.instr_at p2 (4 * i)))
  done;
  checkb "comments recorded" true
    (Eris.Builder.comments all = [ (0, "prologue"); (3, "epilogue") ]);
  checkb "no comments by default" true (Eris.Builder.comments one = [])

(* Text roundtrip: printing an instruction and re-parsing it yields the
   same instruction. *)
let prop_asm_text_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"asm text roundtrip"
    arbitrary_instruction (fun i ->
      (* branches/jumps print numeric offsets which the parser accepts *)
      match Eris.Asm.parse_line (T.to_string i) with
      | Ok (Some i') -> T.equal i i'
      | Ok None | Error _ -> false)

let () =
  Alcotest.run "eris-builder"
    [
      ( "builder",
        [
          Alcotest.test_case "basic loop" `Quick test_builder_basic;
          Alcotest.test_case "call" `Quick test_builder_call;
          Alcotest.test_case "errors" `Quick test_builder_errors;
          Alcotest.test_case "emit_all and comments" `Quick
            test_builder_emit_all_and_comments;
          qcheck prop_cfg_matches_builder;
          qcheck prop_asm_text_roundtrip;
        ] );
    ]
