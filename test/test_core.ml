(* Tests for the policy engine: k-edge bookkeeping, policies,
   predictors, the discrete-event engine and the scenario glue. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let check_il = Alcotest.check Alcotest.(list int)

(* ------------------------------------------------------------------ *)
(* Kedge                                                               *)

let test_kedge_basic () =
  let k = Memsim.Kedge.create ~blocks:4 ~k:2 () in
  Memsim.Kedge.track k ~block:0 ~step:0;
  checkb "tracked" true (Memsim.Kedge.tracked k ~block:0);
  checkb "counter at 1" true (Memsim.Kedge.counter k ~block:0 ~step:1 = Some 1);
  check_il "not due before k" [] (Memsim.Kedge.due k ~step:1);
  check_il "due at k" [ 0 ] (Memsim.Kedge.due k ~step:2);
  checkb "untracked has no counter" true
    (Memsim.Kedge.counter k ~block:1 ~step:5 = None)

let test_kedge_reset_on_reexecution () =
  let k = Memsim.Kedge.create ~blocks:4 ~k:2 () in
  Memsim.Kedge.track k ~block:0 ~step:0;
  (* re-executed at step 1: counter resets, old due entry is stale *)
  Memsim.Kedge.track k ~block:0 ~step:1;
  check_il "stale entry filtered" [] (Memsim.Kedge.due k ~step:2);
  check_il "new due honored" [ 0 ] (Memsim.Kedge.due k ~step:3)

let test_kedge_untrack () =
  let k = Memsim.Kedge.create ~blocks:4 ~k:1 () in
  Memsim.Kedge.track k ~block:2 ~step:5;
  Memsim.Kedge.untrack k ~block:2;
  check_il "untracked not due" [] (Memsim.Kedge.due k ~step:6)

let test_kedge_k1_and_multiple () =
  let k = Memsim.Kedge.create ~blocks:4 ~k:1 () in
  Memsim.Kedge.track k ~block:0 ~step:0;
  Memsim.Kedge.track k ~block:1 ~step:0;
  check_il "both due, sorted" [ 0; 1 ] (Memsim.Kedge.due k ~step:1);
  (* due consumes the entries *)
  check_il "consumed" [] (Memsim.Kedge.due k ~step:1)

let test_kedge_huge_k_no_overflow () =
  let k = Memsim.Kedge.create ~blocks:2 ~k:max_int () in
  Memsim.Kedge.track k ~block:0 ~step:100;
  checkb "counter works" true (Memsim.Kedge.counter k ~block:0 ~step:200 = Some 100);
  check_il "never due" [] (Memsim.Kedge.due k ~step:1000)

let test_kedge_validation () =
  Alcotest.check_raises "k=0 rejected"
    (Invalid_argument "Memsim.Kedge.create: k must be >= 1") (fun () ->
      ignore (Memsim.Kedge.create ~blocks:1 ~k:0 ()));
  Alcotest.check_raises "blocks=0 rejected"
    (Invalid_argument "Memsim.Kedge.create: blocks must be >= 1") (fun () ->
      ignore (Memsim.Kedge.create ~blocks:0 ~k:1 ()))

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)

let test_policy_validation () =
  checkb "valid" true
    (match Core.Policy.make ~compress_k:1 () with _ -> true);
  Alcotest.check_raises "k=0"
    (Invalid_argument "Core.Policy: compress_k must be >= 1") (fun () ->
      ignore (Core.Policy.make ~compress_k:0 ()));
  Alcotest.check_raises "lookahead=0"
    (Invalid_argument "Core.Policy: lookahead must be >= 1") (fun () ->
      ignore (Core.Policy.pre_all ~k:1 ~lookahead:0));
  Alcotest.check_raises "budget=0"
    (Invalid_argument "Core.Policy: budget must be positive") (fun () ->
      ignore (Core.Policy.make ~compress_k:1 ~budget:0 ()))

let test_policy_describe () =
  let d = Core.Policy.describe (Core.Policy.on_demand ~k:4) in
  checkb "mentions on-demand" true
    (String.length d > 0
    &&
    let rec has i =
      i + 9 <= String.length d && (String.sub d i 9 = "on-demand" || has (i + 1))
    in
    has 0);
  let d2 = Core.Policy.describe Core.Policy.never_compress in
  checkb "inf k" true
    (let rec has i =
       i + 3 <= String.length d2 && (String.sub d2 i 3 = "inf" || has (i + 1))
     in
     has 0)

(* ------------------------------------------------------------------ *)
(* Config                                                              *)

let test_config_costs () =
  let c = Core.Config.default in
  checki "dec cost" (30 + (4 * 10)) (Core.Config.dec_cycles c ~compressed_bytes:10);
  checki "comp cost" (30 + (8 * 10))
    (Core.Config.comp_cycles c ~uncompressed_bytes:10);
  let codec = Compress.Registry.find_exn "rle" in
  let c2 = Core.Config.of_codec codec in
  checki "codec dec rate" (30 + (2 * 10))
    (Core.Config.dec_cycles c2 ~compressed_bytes:10)

let test_config_profiles () =
  checkb "paper profile is the default" true
    (List.hd Core.Config.profiles = "paper-2005");
  let c = Core.Config.of_profile "cortex-m-flash" in
  checkb "profile name recorded" true
    (c.Core.Config.costs.Sim.Cost.profile = "cortex-m-flash");
  (* profiles change energy pricing only; cycle accounting is shared *)
  checki "dec cycles unchanged across profiles"
    (Core.Config.dec_cycles Core.Config.default ~compressed_bytes:17)
    (Core.Config.dec_cycles c ~compressed_bytes:17);
  checkb "energized profile" true
    (c.Core.Config.costs.Sim.Cost.energy.Sim.Cost.exec_nj_per_cycle > 0);
  (* codec-advertised rates survive profile selection, and vice versa *)
  let codec = Compress.Registry.find_exn "rle" in
  let c2 = Core.Config.of_codec ~profile:"sram-heavy" codec in
  checki "codec dec rate under profile" (30 + (2 * 10))
    (Core.Config.dec_cycles c2 ~compressed_bytes:10);
  checkb "codec config keeps profile" true
    (c2.Core.Config.costs.Sim.Cost.profile = "sram-heavy");
  Alcotest.check_raises "unknown profile"
    (Invalid_argument
       "unknown device profile \"avr\" (known: paper-2005, cortex-m-flash, \
        sram-heavy)") (fun () -> ignore (Core.Config.of_profile "avr"))

let test_config_validation () =
  let bad field model =
    Alcotest.check_raises field
      (Invalid_argument (Printf.sprintf "%s must be >= %d (got %d)" field 0 (-1)))
      (fun () -> ignore (Core.Config.make model))
  in
  let base = Core.Config.default_cost_model in
  bad "exception_cycles" { base with Sim.Cost.exception_cycles = -1 };
  bad "patch_cycles" { base with Sim.Cost.patch_cycles = -1 };
  Alcotest.check_raises "dec rate below 1"
    (Invalid_argument "dec_cycles_per_byte must be >= 1 (got 0)") (fun () ->
      ignore (Core.Config.make { base with Sim.Cost.dec_cycles_per_byte = 0 }));
  Alcotest.check_raises "negative energy coefficient"
    (Invalid_argument "dec_compute_nj_per_byte must be >= 0 (got -3)")
    (fun () ->
      ignore
        (Core.Config.make
           {
             base with
             Sim.Cost.energy =
               {
                 base.Sim.Cost.energy with
                 Sim.Cost.dec_compute_nj_per_byte = -3;
               };
           }));
  (* a valid model passes through unchanged *)
  let c = Core.Config.make (Core.Config.cost_model_of_profile "sram-heavy") in
  checkb "valid model accepted" true
    (c.Core.Config.costs.Sim.Cost.profile = "sram-heavy")

(* ------------------------------------------------------------------ *)
(* Predictor                                                           *)

let fig2_graph () =
  Cfg.Graph.synthetic 10
    [
      (0, 1); (0, 2); (1, 3); (1, 4); (2, 4); (2, 5); (3, 6); (4, 6); (5, 6);
      (6, 7); (6, 8); (7, 9); (8, 9);
    ]

let test_predictor_first_successor () =
  let g = fig2_graph () in
  let st = Core.Predictor.create_state ~blocks:10 in
  (* path following first successors from 0: 1, 3, 6... *)
  checkb "follows first successors" true
    (Core.Predictor.choose Core.Predictor.First_successor st g ~from:0 ~k:3
       ~candidates:[ 6; 5 ]
    = Some 6);
  checkb "fallback to nearest" true
    (Core.Predictor.choose Core.Predictor.First_successor st g ~from:0 ~k:2
       ~candidates:[ 5; 8 ]
    = Some 5);
  checkb "empty candidates" true
    (Core.Predictor.choose Core.Predictor.First_successor st g ~from:0 ~k:2
       ~candidates:[]
    = None)

let test_predictor_last_taken () =
  let g = fig2_graph () in
  let st = Core.Predictor.create_state ~blocks:10 in
  Core.Predictor.note_edge st ~src:0 ~dst:2;
  Core.Predictor.note_edge st ~src:2 ~dst:5;
  checkb "follows remembered edges" true
    (Core.Predictor.choose Core.Predictor.Last_taken st g ~from:0 ~k:2
       ~candidates:[ 4; 5 ]
    = Some 5);
  (* stale remembered edge that is no longer a successor is ignored *)
  let st2 = Core.Predictor.create_state ~blocks:10 in
  Core.Predictor.note_edge st2 ~src:0 ~dst:9;
  checkb "invalid remembered edge falls back" true
    (Core.Predictor.choose Core.Predictor.Last_taken st2 g ~from:0 ~k:1
       ~candidates:[ 1; 2 ]
    = Some 1)

let test_predictor_profile () =
  let g = fig2_graph () in
  let st = Core.Predictor.create_state ~blocks:10 in
  (* trace that makes 0 -> 2 -> 5 dominant *)
  let profile = Cfg.Profile.of_trace g [| 0; 2; 5; 6; 8; 9 |] in
  checkb "profile picks likely path" true
    (Core.Predictor.choose (Core.Predictor.By_profile profile) st g ~from:0
       ~k:2 ~candidates:[ 3; 5 ]
    = Some 5)

let test_predictor_names () =
  checkb "names distinct" true
    (List.sort_uniq compare
       [
         Core.Predictor.name Core.Predictor.First_successor;
         Core.Predictor.name Core.Predictor.Last_taken;
         Core.Predictor.name
           (Core.Predictor.By_profile (Cfg.Profile.uniform (fig2_graph ())));
       ]
    |> List.length = 3)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

(* All blocks 64 bytes; synthetic contents. *)
let scenario_of g trace = Core.Scenario.of_graph g ~trace

let fig5_scenario () =
  let g =
    Cfg.Graph.synthetic 4 [ (0, 1); (1, 0); (1, 2); (1, 3); (2, 3) ]
  in
  scenario_of g [| 0; 1; 0; 1; 3 |]

let run_events sc policy =
  let events = ref [] in
  let m = Core.Scenario.run ~log:(fun e -> events := e :: !events) sc policy in
  (m, List.rev !events)

let count_events f events =
  List.length (List.filter f events)

let test_engine_fig5_events () =
  let sc = fig5_scenario () in
  let m, events = run_events sc (Core.Policy.on_demand ~k:2) in
  (* 4 exceptions: initial B0, first B1, revisit B0 (patch only), B3. *)
  checki "exceptions" 4 m.Core.Metrics.exceptions;
  checki "demand decompressions" 3 m.Core.Metrics.demand_decompressions;
  checki "one k-edge discard" 1 m.Core.Metrics.discards;
  (* 4 patches: B0->B1', B1->B0', patch-back on discard of B0', B1->B3'. *)
  checki "patches" 4 m.Core.Metrics.patches;
  checkb "discarded block is B0" true
    (List.exists
       (fun ev ->
         match (ev : Core.Engine.event) with
         | Discard { block = 0; patched_back = 1; _ } -> true
         | _ -> false)
       events);
  (* Step (7): second arrival at resident patched B1 has no exception:
     the number of Exception events equals metrics. *)
  checki "exception events" 4
    (count_events
       (fun ev ->
         match (ev : Core.Engine.event) with Exception _ -> true | _ -> false)
       events)

let test_engine_steady_state_free () =
  (* A 2-block loop with k large: after warmup, no overhead at all. *)
  let g = Cfg.Graph.synthetic 2 [ (0, 1); (1, 0) ] in
  let trace = Array.init 100 (fun i -> i mod 2) in
  let sc = scenario_of g trace in
  let m = Core.Scenario.run sc (Core.Policy.on_demand ~k:50) in
  checki "only 2 demand decompressions" 2 m.Core.Metrics.demand_decompressions;
  (* Warmup: fault on B0, fault+patch on B1, one more fault+patch on
     the first revisit of B0; after that, both branch sites are
     patched and the loop runs exception-free. *)
  checki "three warmup exceptions" 3 m.Core.Metrics.exceptions;
  checki "two warmup patches" 2 m.Core.Metrics.patches;
  checki "no discards" 0 m.Core.Metrics.discards;
  (* total = baseline + warmup costs only *)
  let warmup =
    m.Core.Metrics.exception_cycles + m.Core.Metrics.patch_cycles
    + m.Core.Metrics.demand_dec_cycles
  in
  checki "total accounted" (m.Core.Metrics.baseline_cycles + warmup)
    m.Core.Metrics.total_cycles

let test_engine_k1_thrash () =
  let g = Cfg.Graph.synthetic 2 [ (0, 1); (1, 0) ] in
  let trace = Array.init 20 (fun i -> i mod 2) in
  let sc = scenario_of g trace in
  let m = Core.Scenario.run sc (Core.Policy.on_demand ~k:1) in
  (* k=1 discards each block as soon as the next edge is traversed,
     so every visit is a demand miss. *)
  checki "every visit misses" 20 m.Core.Metrics.demand_decompressions;
  checki "discards all but last" 19 m.Core.Metrics.discards

let test_engine_self_loop_spared () =
  (* A self-loop with k=1: the target of the edge is spared deletion. *)
  let g = Cfg.Graph.synthetic 2 [ (0, 0); (0, 1) ] in
  let trace = [| 0; 0; 0; 0; 1 |] in
  let sc = scenario_of g trace in
  let m = Core.Scenario.run sc (Core.Policy.on_demand ~k:1) in
  checki "self-loop keeps copy" 2 m.Core.Metrics.demand_decompressions

let test_engine_prefetch_hides_latency () =
  let g, trace = Trace.Synthetic.loop_nest ~levels:2 ~iters:[| 10; 10 |] in
  let sc = scenario_of g trace in
  let od = Core.Scenario.run sc (Core.Policy.on_demand ~k:8) in
  let pre = Core.Scenario.run sc (Core.Policy.pre_all ~k:8 ~lookahead:2) in
  checkb "prefetch reduces demand misses" true
    (pre.Core.Metrics.demand_decompressions
    < od.Core.Metrics.demand_decompressions);
  checkb "prefetches issued" true (pre.Core.Metrics.prefetch_decompressions > 0);
  checki "useful + wasted <= prefetches"
    (min
       (pre.Core.Metrics.useful_prefetches + pre.Core.Metrics.wasted_prefetches)
       pre.Core.Metrics.prefetch_decompressions)
    (pre.Core.Metrics.useful_prefetches + pre.Core.Metrics.wasted_prefetches)

let test_engine_prefetch_timing () =
  (* A straight chain: the prefetch of block 2 must be issued when
     execution leaves block 0 (lookahead 2). *)
  let g = Cfg.Graph.synthetic 4 [ (0, 1); (1, 2); (2, 3) ] in
  let sc = scenario_of g [| 0; 1; 2; 3 |] in
  let _, events = run_events sc (Core.Policy.pre_all ~k:8 ~lookahead:2) in
  let exec0_at = ref (-1) and prefetch2_at = ref (-1) and exec1_at = ref (-1) in
  List.iter
    (fun ev ->
      match (ev : Core.Engine.event) with
      | Exec { block = 0; at } -> exec0_at := at
      | Exec { block = 1; at } -> if !exec1_at < 0 then exec1_at := at
      | Prefetch_issue { block = 2; at; _ } -> prefetch2_at := at
      | _ -> ())
    events;
  checkb "prefetch after exec of 0" true (!prefetch2_at >= !exec0_at);
  checkb "prefetch before exec of 1" true (!prefetch2_at <= !exec1_at)

let test_engine_budget_eviction () =
  let g = Cfg.Graph.synthetic ~block_bytes:64 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let trace = Array.init 40 (fun i -> i mod 4) in
  let sc = scenario_of g trace in
  (* Budget for two blocks only. *)
  let m =
    Core.Scenario.run sc (Core.Policy.make ~compress_k:100 ~budget:128 ())
  in
  checkb "evictions happened" true (m.Core.Metrics.evictions > 0);
  checkb "budget respected" true (m.Core.Metrics.peak_decompressed_bytes <= 128);
  checki "no overflows" 0 m.Core.Metrics.budget_overflows

let test_engine_budget_overflow () =
  (* Budget smaller than a single block: the demand decompression must
     overflow (no victim can make room). *)
  let g = Cfg.Graph.synthetic ~block_bytes:64 2 [ (0, 1); (1, 0) ] in
  let sc = scenario_of g [| 0; 1 |] in
  let m = Core.Scenario.run sc (Core.Policy.make ~compress_k:4 ~budget:32 ()) in
  checkb "overflows recorded" true (m.Core.Metrics.budget_overflows > 0)

let test_engine_recompress_mode () =
  let g = Cfg.Graph.synthetic 3 [ (0, 1); (1, 2); (2, 0) ] in
  let trace = Array.init 12 (fun i -> i mod 3) in
  let sc = scenario_of g trace in
  let discard =
    Core.Scenario.run sc
      (Core.Policy.make ~mode:Core.Policy.Discard ~compress_k:1 ())
  in
  let recompress =
    Core.Scenario.run sc
      (Core.Policy.make ~mode:Core.Policy.Recompress ~compress_k:1 ())
  in
  checkb "recompress uses the comp thread" true
    (recompress.Core.Metrics.comp_thread_busy_cycles
    > discard.Core.Metrics.comp_thread_busy_cycles);
  checkb "recompress holds memory longer" true
    (recompress.Core.Metrics.avg_decompressed_bytes
    >= discard.Core.Metrics.avg_decompressed_bytes)

let test_engine_empty_trace () =
  let g = Cfg.Graph.synthetic 2 [ (0, 1) ] in
  let sc = scenario_of g [||] in
  let m = Core.Scenario.run sc (Core.Policy.on_demand ~k:2) in
  checki "no cycles" 0 m.Core.Metrics.total_cycles;
  checki "no events" 0 m.Core.Metrics.exceptions

let test_engine_rejects_bad_input () =
  let g = Cfg.Graph.synthetic 2 [ (0, 1) ] in
  let sc = scenario_of g [| 0; 1 |] in
  Alcotest.check_raises "bad trace block"
    (Invalid_argument "Core.Engine.run: trace mentions unknown block")
    (fun () ->
      ignore
        (Core.Engine.run ~graph:sc.Core.Scenario.graph
           ~info:sc.Core.Scenario.info ~trace:[| 0; 7 |]
           (Core.Policy.on_demand ~k:1)));
  Alcotest.check_raises "bad info length"
    (Invalid_argument "Core.Engine.run: info does not match graph") (fun () ->
      ignore
        (Core.Engine.run ~graph:sc.Core.Scenario.graph
           ~info:(Array.sub sc.Core.Scenario.info 0 1)
           ~trace:[| 0 |] (Core.Policy.on_demand ~k:1)));
  Alcotest.check_raises "bad step_cycles"
    (Invalid_argument "Core.Engine.run: step_cycles does not match trace")
    (fun () ->
      ignore
        (Core.Engine.run ~step_cycles:[| 1 |] ~graph:sc.Core.Scenario.graph
           ~info:sc.Core.Scenario.info ~trace:[| 0; 1 |]
           (Core.Policy.on_demand ~k:1)))

let test_engine_step_cycles_override () =
  let g = Cfg.Graph.synthetic 2 [ (0, 1) ] in
  let sc = scenario_of g [| 0; 1 |] in
  let m =
    Core.Engine.run ~step_cycles:[| 100; 200 |] ~graph:sc.Core.Scenario.graph
      ~info:sc.Core.Scenario.info ~trace:[| 0; 1 |]
      (Core.Policy.on_demand ~k:4)
  in
  checki "baseline from overrides" 300 m.Core.Metrics.baseline_cycles;
  checki "exec from overrides" 300 m.Core.Metrics.exec_cycles

(* Metric invariants on random loop-heavy scenarios. *)
let prop_metric_invariants =
  let gen =
    QCheck.Gen.(
      let* blocks = int_range 3 12 in
      let* extra_edges =
        list_size (int_range 0 10)
          (pair (int_range 0 (blocks - 1)) (int_range 0 (blocks - 1)))
      in
      let* len = int_range 1 300 in
      let* seed = int_range 0 1000 in
      let* k = int_range 1 16 in
      let* strategy = int_range 0 2 in
      return (blocks, extra_edges, len, seed, k, strategy))
  in
  QCheck.Test.make ~count:120 ~name:"engine metric invariants"
    (QCheck.make gen) (fun (blocks, extra_edges, len, seed, k, strategy) ->
      (* ring edges keep every block live; extras add irregularity *)
      let ring = List.init blocks (fun i -> (i, (i + 1) mod blocks)) in
      let edges = List.sort_uniq compare (ring @ extra_edges) in
      let g = Cfg.Graph.synthetic blocks edges in
      let trace = Trace.Synthetic.markov ~seed g ~length:len in
      let sc = Core.Scenario.of_graph g ~trace in
      let policy =
        match strategy with
        | 0 -> Core.Policy.on_demand ~k
        | 1 -> Core.Policy.pre_all ~k ~lookahead:2
        | _ ->
          Core.Policy.pre_single ~k ~lookahead:2
            ~predictor:Core.Predictor.Last_taken
      in
      let m = Core.Scenario.run sc policy in
      let open Core.Metrics in
      m.total_cycles >= m.baseline_cycles
      && m.exec_cycles = m.baseline_cycles
      && m.stall_cycles >= 0
      && m.useful_prefetches + m.wasted_prefetches
         <= m.prefetch_decompressions
      && m.peak_decompressed_bytes >= 0
      && float_of_int m.peak_decompressed_bytes >= m.avg_decompressed_bytes
      && m.peak_footprint_bytes
         = m.compressed_area_bytes + m.peak_decompressed_bytes
      && m.demand_decompressions + m.prefetch_decompressions
         >= m.discards + m.evictions
      && m.total_cycles
         = m.exec_cycles + m.exception_cycles + m.patch_cycles
           + m.demand_dec_cycles + m.stall_cycles)

(* Accounting coherence under the cost vocabulary: on random
   workload x policy x device-profile combinations, every
   per-dimension metric total must equal the sum of the per-event
   charge vectors seen by [charge_log], and the cycle side of the
   books must be byte-identical to the default paper-2005 run —
   profiles may only change energy pricing, never timing. *)
let prop_charge_totals_match_metrics =
  let gen =
    QCheck.Gen.(
      let* blocks = int_range 3 10 in
      let* extra_edges =
        list_size (int_range 0 8)
          (pair (int_range 0 (blocks - 1)) (int_range 0 (blocks - 1)))
      in
      let* len = int_range 1 200 in
      let* seed = int_range 0 1000 in
      let* k = int_range 1 8 in
      let* strategy = int_range 0 3 in
      let* profile_idx = int_range 0 2 in
      return (blocks, extra_edges, len, seed, k, strategy, profile_idx))
  in
  QCheck.Test.make ~count:80 ~name:"charge journal matches metric totals"
    (QCheck.make gen)
    (fun (blocks, extra_edges, len, seed, k, strategy, profile_idx) ->
      let ring = List.init blocks (fun i -> (i, (i + 1) mod blocks)) in
      let edges = List.sort_uniq compare (ring @ extra_edges) in
      let g = Cfg.Graph.synthetic blocks edges in
      let trace = Trace.Synthetic.markov ~seed g ~length:len in
      let sc = Core.Scenario.of_graph g ~trace in
      let policy =
        match strategy with
        | 0 -> Core.Policy.on_demand ~k
        | 1 -> Core.Policy.pre_all ~k ~lookahead:2
        | 2 ->
          Core.Policy.pre_single ~k ~lookahead:2
            ~predictor:Core.Predictor.Last_taken
        | _ -> Core.Policy.make ~mode:Core.Policy.Recompress ~compress_k:k ()
      in
      let profile = List.nth Core.Config.profiles profile_idx in
      let cycles = ref 0 and energy = ref 0 in
      let charge_log _src (v : Sim.Cost.vector) =
        cycles := !cycles + v.Sim.Cost.cycles;
        energy := !energy + v.Sim.Cost.energy_nj
      in
      let m = Core.Scenario.run ~profile ~charge_log sc policy in
      let base = Core.Scenario.run sc policy in
      let open Core.Metrics in
      !cycles = m.total_cycles
      && !energy = m.energy_nj
      && m.energy_nj
         = m.exec_energy_nj + m.exception_energy_nj + m.patch_energy_nj
           + m.dec_energy_nj + m.comp_energy_nj + m.ram_static_energy_nj
      && (profile <> "paper-2005" || m.energy_nj = 0)
      && m.total_cycles = base.total_cycles
      && m.exec_cycles = base.exec_cycles
      && m.demand_dec_cycles = base.demand_dec_cycles
      && m.stall_cycles = base.stall_cycles
      && m.peak_footprint_bytes = base.peak_footprint_bytes)

(* ------------------------------------------------------------------ *)
(* Scenario                                                            *)

let test_scenario_of_source () =
  let sc =
    Core.Scenario.of_source ~name:"t" "li r1, 5\nloop: subi r1, r1, 1\nbne r1, r0, loop\nhalt"
  in
  checkb "has program" true (sc.Core.Scenario.program <> None);
  checkb "trace valid" true
    (Cfg.Graph.validate_trace sc.Core.Scenario.graph sc.Core.Scenario.trace
    = Ok ());
  checkb "compressed sizes positive" true
    (Array.for_all
       (fun (i : Core.Engine.block_info) -> i.compressed_bytes > 0)
       sc.Core.Scenario.info)

let test_scenario_synthetic_bytes_deterministic () =
  let a = Core.Scenario.synthetic_block_bytes ~id:5 ~size:128 in
  let b = Core.Scenario.synthetic_block_bytes ~id:5 ~size:128 in
  let c = Core.Scenario.synthetic_block_bytes ~id:6 ~size:128 in
  checkb "deterministic" true (Bytes.equal a b);
  checkb "id-dependent" false (Bytes.equal a c);
  checki "size respected" 128 (Bytes.length a)

let test_scenario_profile () =
  let g = Cfg.Graph.synthetic 3 [ (0, 1); (1, 2); (2, 0) ] in
  let sc = Core.Scenario.of_graph g ~trace:[| 0; 1; 2; 0; 1; 2 |] in
  let p = Core.Scenario.profile sc in
  checki "profile counts" 2 (Cfg.Profile.block_count p 0)

(* ------------------------------------------------------------------ *)
(* Lineview                                                            *)

let test_lineview_exec_cycles_preserved () =
  (* re-expressing at line granularity splits each visit's cycles
     across the block's lines — the total execution cost must come
     out exactly the same at every line size *)
  let sc = Workloads.Common.scenario (Workloads.Suite.find_exn "fir") in
  let policy = Core.Policy.on_demand ~k:8 in
  let base = Core.Scenario.run sc policy in
  List.iter
    (fun line_size ->
      let m = Core.Lineview.run ~line_size sc policy in
      checki
        (Printf.sprintf "exec cycles at %dB" line_size)
        base.Core.Metrics.exec_cycles m.Core.Metrics.exec_cycles)
    [ 16; 32; 64 ]

let test_lineview_view_shape () =
  let sc = Workloads.Common.scenario (Workloads.Suite.find_exn "fir") in
  let v = Core.Lineview.view ~line_size:32 sc in
  let lines = Array.length v.Core.Lineview.info in
  checkb "one node per line" true
    (Array.length (Cfg.Graph.blocks v.Core.Lineview.graph) = lines);
  checki "step cycles per trace step" (Array.length v.Core.Lineview.trace)
    (Array.length v.Core.Lineview.step_cycles);
  checkb "line trace longer than block trace" true
    (Array.length v.Core.Lineview.trace >= Array.length sc.Core.Scenario.trace);
  checkb "trace ids in range" true
    (Array.for_all
       (fun id -> id >= 0 && id < lines)
       v.Core.Lineview.trace);
  checkb "compressed sizes positive" true
    (Array.for_all
       (fun (i : Core.Engine.block_info) -> i.compressed_bytes > 0)
       v.Core.Lineview.info)

let test_lineview_line_codec () =
  (* a scenario whose codec is a line codec runs and the per-line
     compressed area is charged from exact tag-inclusive wire bits *)
  let w = Workloads.Suite.find_exn "fir" in
  let sc =
    Core.Scenario.of_source ~name:"fir-bdi"
      ~codec:(Compress.Registry.find_exn "bdi-32")
      w.Workloads.Common.source
  in
  let m = Core.Lineview.run ~line_size:32 sc (Core.Policy.on_demand ~k:8) in
  checkb "ran" true (m.Core.Metrics.total_cycles > 0);
  checkb "compressed area positive" true
    (m.Core.Metrics.compressed_area_bytes > 0)

let test_lineview_validation () =
  let sc = Workloads.Common.scenario (Workloads.Suite.find_exn "fir") in
  Alcotest.check_raises "line_size below 4"
    (Invalid_argument "Residency.Linemap.build: line_size < 4") (fun () ->
      ignore (Core.Lineview.view ~line_size:2 sc))

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run ~and_exit:false "core"
    [
      ( "kedge",
        [
          Alcotest.test_case "basic counters" `Quick test_kedge_basic;
          Alcotest.test_case "reset on re-execution" `Quick
            test_kedge_reset_on_reexecution;
          Alcotest.test_case "untrack" `Quick test_kedge_untrack;
          Alcotest.test_case "k=1 and multiple" `Quick
            test_kedge_k1_and_multiple;
          Alcotest.test_case "huge k" `Quick test_kedge_huge_k_no_overflow;
          Alcotest.test_case "validation" `Quick test_kedge_validation;
        ] );
      ( "policy",
        [
          Alcotest.test_case "validation" `Quick test_policy_validation;
          Alcotest.test_case "describe" `Quick test_policy_describe;
        ] );
      ( "config",
        [
          Alcotest.test_case "costs" `Quick test_config_costs;
          Alcotest.test_case "profiles" `Quick test_config_profiles;
          Alcotest.test_case "validation" `Quick test_config_validation;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "first successor" `Quick
            test_predictor_first_successor;
          Alcotest.test_case "last taken" `Quick test_predictor_last_taken;
          Alcotest.test_case "profile" `Quick test_predictor_profile;
          Alcotest.test_case "names" `Quick test_predictor_names;
        ] );
      ( "engine",
        [
          Alcotest.test_case "figure 5 event sequence" `Quick
            test_engine_fig5_events;
          Alcotest.test_case "steady state is free" `Quick
            test_engine_steady_state_free;
          Alcotest.test_case "k=1 thrashes" `Quick test_engine_k1_thrash;
          Alcotest.test_case "self-loop target spared" `Quick
            test_engine_self_loop_spared;
          Alcotest.test_case "prefetch hides latency" `Quick
            test_engine_prefetch_hides_latency;
          Alcotest.test_case "prefetch timing" `Quick test_engine_prefetch_timing;
          Alcotest.test_case "budget eviction" `Quick test_engine_budget_eviction;
          Alcotest.test_case "budget overflow" `Quick test_engine_budget_overflow;
          Alcotest.test_case "recompress mode" `Quick test_engine_recompress_mode;
          Alcotest.test_case "empty trace" `Quick test_engine_empty_trace;
          Alcotest.test_case "input validation" `Quick
            test_engine_rejects_bad_input;
          Alcotest.test_case "step cycles override" `Quick
            test_engine_step_cycles_override;
          qcheck prop_metric_invariants;
          qcheck prop_charge_totals_match_metrics;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "of source" `Quick test_scenario_of_source;
          Alcotest.test_case "synthetic bytes" `Quick
            test_scenario_synthetic_bytes_deterministic;
          Alcotest.test_case "profile" `Quick test_scenario_profile;
        ] );
      ( "lineview",
        [
          Alcotest.test_case "exec cycles preserved" `Quick
            test_lineview_exec_cycles_preserved;
          Alcotest.test_case "view shape" `Quick test_lineview_view_shape;
          Alcotest.test_case "line codec scenario" `Quick
            test_lineview_line_codec;
          Alcotest.test_case "validation" `Quick test_lineview_validation;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Adaptive k and event-stream coherence (appended suite)              *)

let test_kedge_per_block () =
  let k_of b = if b = 0 then 1 else 5 in
  let k = Memsim.Kedge.create ~k_of ~blocks:2 ~k:3 () in
  checki "k_for 0" 1 (Memsim.Kedge.k_for k ~block:0);
  checki "k_for 1" 5 (Memsim.Kedge.k_for k ~block:1);
  Memsim.Kedge.track k ~block:0 ~step:0;
  Memsim.Kedge.track k ~block:1 ~step:0;
  check_il "only block 0 due at 1" [ 0 ] (Memsim.Kedge.due k ~step:1);
  check_il "block 1 due at 5" [ 1 ] (Memsim.Kedge.due k ~step:5)

let test_kedge_per_block_validation () =
  let k = Memsim.Kedge.create ~k_of:(fun _ -> 0) ~blocks:2 ~k:3 () in
  Alcotest.check_raises "k_of below 1 rejected on use"
    (Invalid_argument "Memsim.Kedge: per-block k must be >= 1") (fun () ->
      Memsim.Kedge.track k ~block:0 ~step:0)

let test_adaptive_loop_aware () =
  (* 0 -> 1 <-> 2, 2 -> 3: loop {1, 2}. *)
  let g = Cfg.Graph.synthetic 4 [ (0, 1); (1, 2); (2, 1); (2, 3) ] in
  let k_of = Core.Adaptive.loop_aware g in
  checki "loop block gets loop size + slack" 4 (k_of 1);
  checki "other loop block too" 4 (k_of 2);
  checki "cold block gets 1" 1 (k_of 0);
  checki "exit gets 1" 1 (k_of 3);
  checki "out of range safe" 1 (k_of 99)

let test_adaptive_reuse_aware () =
  let g = Cfg.Graph.synthetic 3 [ (0, 1); (1, 0); (1, 2) ] in
  let trace = [| 0; 1; 0; 1; 0; 1; 2 |] in
  let k_of = Core.Adaptive.reuse_aware g trace in
  checki "block 0 reuse distance" 2 (k_of 0);
  checki "block 1 reuse distance" 2 (k_of 1);
  checki "never revisited gets 1" 1 (k_of 2)

let test_adaptive_policy_runs () =
  let g, trace = Trace.Synthetic.loop_nest ~levels:2 ~iters:[| 8; 8 |] in
  let sc = Core.Scenario.of_graph g ~trace in
  let fixed = Core.Scenario.run sc (Core.Policy.on_demand ~k:4) in
  let adaptive =
    Core.Scenario.run sc
      (Core.Policy.make ~compress_k:4
         ~adaptive_k:(Core.Adaptive.reuse_aware g trace)
         ())
  in
  (* Trained on its own trace, reuse-aware k must not fault more. *)
  checkb "reuse-aware never worse on demand misses" true
    (adaptive.Core.Metrics.demand_decompressions
    <= fixed.Core.Metrics.demand_decompressions);
  checkb "describe mentions adaptive" true
    (let d =
       Core.Policy.describe
         (Core.Policy.make ~compress_k:4 ~adaptive_k:(fun _ -> 2) ())
     in
     let rec has i =
       i + 8 <= String.length d && (String.sub d i 8 = "adaptive" || has (i + 1))
     in
     has 0)

(* Event-stream coherence: replay the engine's event log as a state
   machine over block residency; any out-of-order event is a bug. *)
let coherent events =
  let resident = Hashtbl.create 16 in
  let in_flight = Hashtbl.create 16 in
  List.for_all
    (fun ev ->
      match (ev : Core.Engine.event) with
      | Core.Engine.Demand_decompress { block; _ } ->
        if Hashtbl.mem resident block then false
        else begin
          Hashtbl.replace resident block ();
          true
        end
      | Prefetch_issue { block; _ } ->
        if Hashtbl.mem resident block || Hashtbl.mem in_flight block then false
        else begin
          Hashtbl.replace in_flight block ();
          true
        end
      | Exec { block; _ } ->
        (* a prefetched block becomes resident at its exec arrival *)
        if Hashtbl.mem in_flight block then begin
          Hashtbl.remove in_flight block;
          Hashtbl.replace resident block ()
        end;
        Hashtbl.mem resident block
      | Discard { block; _ } | Evict { block; _ } ->
        (* wasted prefetches may be discarded before any exec *)
        if Hashtbl.mem in_flight block then begin
          Hashtbl.remove in_flight block;
          true
        end
        else if Hashtbl.mem resident block then begin
          Hashtbl.remove resident block;
          true
        end
        else false
      | Exception _ | Stall _ | Patch _ | Unpatch _ | Recompress_queued _
      | Flush _ -> true)
    events

let prop_event_coherence =
  let gen =
    QCheck.Gen.(
      let* blocks = int_range 3 10 in
      let* len = int_range 1 200 in
      let* seed = int_range 0 500 in
      let* k = int_range 1 8 in
      let* lookahead = int_range 1 4 in
      return (blocks, len, seed, k, lookahead))
  in
  QCheck.Test.make ~count:100 ~name:"event stream coherence"
    (QCheck.make gen) (fun (blocks, len, seed, k, lookahead) ->
      let ring = List.init blocks (fun i -> (i, (i + 1) mod blocks)) in
      let extra = List.init (blocks / 2) (fun i -> (i, (i + 2) mod blocks)) in
      let g = Cfg.Graph.synthetic blocks (List.sort_uniq compare (ring @ extra)) in
      let trace = Trace.Synthetic.markov ~seed g ~length:len in
      let sc = Core.Scenario.of_graph g ~trace in
      let events = ref [] in
      let _ =
        Core.Scenario.run
          ~log:(fun e -> events := e :: !events)
          sc
          (Core.Policy.pre_all ~k ~lookahead)
      in
      coherent (List.rev !events))

let test_workload_event_coherence () =
  let sc =
    Core.Scenario.of_source ~name:"loop"
      "li r1, 30\nloop: subi r1, r1, 1\nbeq r1, r0, done\nblt r1, r0, done\nj loop\ndone: halt"
  in
  List.iter
    (fun policy ->
      let events = ref [] in
      let _ =
        Core.Scenario.run ~log:(fun e -> events := e :: !events) sc policy
      in
      checkb "coherent" true (coherent (List.rev !events)))
    [
      Core.Policy.on_demand ~k:2;
      Core.Policy.pre_all ~k:2 ~lookahead:2;
      Core.Policy.make ~mode:Core.Policy.Recompress ~compress_k:2 ();
      Core.Policy.make ~compress_k:2 ~budget:96 ();
    ]

let () =
  Alcotest.run ~and_exit:false "core-adaptive"
    [
      ( "adaptive",
        [
          Alcotest.test_case "per-block kedge" `Quick test_kedge_per_block;
          Alcotest.test_case "per-block validation" `Quick
            test_kedge_per_block_validation;
          Alcotest.test_case "loop-aware" `Quick test_adaptive_loop_aware;
          Alcotest.test_case "reuse-aware" `Quick test_adaptive_reuse_aware;
          Alcotest.test_case "adaptive policy" `Quick test_adaptive_policy_runs;
        ] );
      ( "coherence",
        [
          qcheck prop_event_coherence;
          Alcotest.test_case "workload policies" `Quick
            test_workload_event_coherence;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Fast path (appended suite): the engine silently routes plain
   on-demand/discard/k-edge runs through a fused allocation-free loop.
   Passing any [charge_log] forces the general path, so the two can be
   run on the same scenario and compared — metrics and the full event
   stream must be indistinguishable. *)

let prop_fast_path_equivalence =
  let gen =
    QCheck.Gen.(
      let* blocks = int_range 2 14 in
      let* extra_edges =
        list_size (int_range 0 12)
          (pair (int_range 0 (blocks - 1)) (int_range 0 (blocks - 1)))
      in
      let* len = int_range 1 400 in
      let* seed = int_range 0 2000 in
      let* k = int_range 1 12 in
      return (blocks, extra_edges, len, seed, k))
  in
  QCheck.Test.make ~count:150 ~name:"fast path == general path"
    (QCheck.make gen) (fun (blocks, extra_edges, len, seed, k) ->
      let ring = List.init blocks (fun i -> (i, (i + 1) mod blocks)) in
      let edges = List.sort_uniq compare (ring @ extra_edges) in
      let g = Cfg.Graph.synthetic blocks edges in
      let trace = Trace.Synthetic.markov ~seed g ~length:len in
      let sc = Core.Scenario.of_graph g ~trace in
      let policy = Core.Policy.on_demand ~k in
      let fast_col = Sim.Events.collector () in
      let fast =
        Core.Scenario.run ~sink:(Sim.Events.collecting fast_col) sc policy
      in
      let gen_col = Sim.Events.collector () in
      let general =
        Core.Scenario.run
          ~sink:(Sim.Events.collecting gen_col)
          ~charge_log:(fun _ _ -> ())
          sc policy
      in
      fast = general
      && Sim.Events.collected fast_col = Sim.Events.collected gen_col)

(* Same comparison on the counting sink (the tag-byte tally path). *)
let test_fast_path_counts () =
  let g, trace =
    Trace.Synthetic.hot_cold ~hot_blocks:5 ~cold_blocks:9 ~hot_iters:7
      ~cold_visit_every:4 ()
  in
  let sc = Core.Scenario.of_graph g ~trace in
  let policy = Core.Policy.on_demand ~k:3 in
  let fast = Sim.Events.counters () in
  let m1 = Core.Scenario.run ~sink:(Sim.Events.counting fast) sc policy in
  let general = Sim.Events.counters () in
  let m2 =
    Core.Scenario.run
      ~sink:(Sim.Events.counting general)
      ~charge_log:(fun _ _ -> ())
      sc policy
  in
  checkb "metrics agree" true (m1 = m2);
  checkb "counts agree" true
    (Sim.Events.counts fast = Sim.Events.counts general);
  checki "same last time" (Sim.Events.last_time general)
    (Sim.Events.last_time fast)

let () =
  Alcotest.run "core-fastpath"
    [
      ( "fastpath",
        [
          qcheck prop_fast_path_equivalence;
          Alcotest.test_case "counting sink" `Quick test_fast_path_counts;
        ] );
    ]
