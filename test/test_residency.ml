(* Tests for the pluggable residency layer: policy unit semantics
   (clock second-chance, loop-aware nesting, pin-hot exemptions) and
   the cross-simulator guarantee — the timing model and the executable
   runtime drive the same Residency.Area, so the same policy must make
   the same discard/patch-back decisions in both. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let check_blocks = Alcotest.check Alcotest.(list int)

let ctx ?k_of ?graph ?budget ?size_of ?totals ~blocks ~k () =
  { Residency.Policy.blocks; k; k_of; graph; budget; size_of; totals }

(* ------------------------------------------------------------------ *)
(* Clock: second-chance semantics. *)

let clock ~blocks ~k =
  Residency.Policy.instantiate Residency.Policy.Clock (ctx ~blocks ~k ())

let test_clock_second_chance () =
  let p = clock ~blocks:3 ~k:2 in
  p.Residency.Policy.on_materialize ~block:0 ~step:0;
  p.Residency.Policy.on_execute ~block:0 ~step:0 ~time:0;
  check_blocks "nothing queued before the period" []
    (p.Residency.Policy.due ~step:1);
  (* First firing: the reference bit is set, so the copy gets a second
     chance instead of being reported due. *)
  check_blocks "executed copy survives its first period" []
    (p.Residency.Policy.due ~step:2);
  (* Second firing without an execution in between: now due. *)
  check_blocks "idle copy is due after the second period" [ 0 ]
    (p.Residency.Policy.due ~step:4)

let test_clock_execution_renews () =
  let p = clock ~blocks:2 ~k:2 in
  p.Residency.Policy.on_materialize ~block:0 ~step:0;
  p.Residency.Policy.on_execute ~block:0 ~step:0 ~time:0;
  check_blocks "second chance" [] (p.Residency.Policy.due ~step:2);
  (* Executed again inside the period: another second chance. *)
  p.Residency.Policy.on_execute ~block:0 ~step:3 ~time:3;
  check_blocks "renewed by execution" [] (p.Residency.Policy.due ~step:4);
  check_blocks "but only once per period" [ 0 ]
    (p.Residency.Policy.due ~step:6)

let test_clock_spared_block_keeps_ticking () =
  (* §5 spares a due block when it is the branch target; the clock
     timer must stay alive for the surviving copy. *)
  let p = clock ~blocks:2 ~k:2 in
  p.Residency.Policy.on_materialize ~block:0 ~step:0;
  p.Residency.Policy.on_execute ~block:0 ~step:0 ~time:0;
  check_blocks "second chance" [] (p.Residency.Policy.due ~step:2);
  check_blocks "due" [ 0 ] (p.Residency.Policy.due ~step:4);
  (* The host spared it (no release).  The timer re-armed itself. *)
  check_blocks "still ticking after being spared" [ 0 ]
    (p.Residency.Policy.due ~step:6)

let test_clock_release_cancels () =
  let p = clock ~blocks:2 ~k:2 in
  p.Residency.Policy.on_materialize ~block:0 ~step:0;
  check_blocks "unexecuted copy due after one period" [ 0 ]
    (p.Residency.Policy.due ~step:2);
  p.Residency.Policy.on_release ~block:0;
  check_blocks "released copy never reported" []
    (p.Residency.Policy.due ~step:4)

let test_clock_victim_sweep () =
  let p = clock ~blocks:3 ~k:4 in
  List.iter
    (fun b -> p.Residency.Policy.on_materialize ~block:b ~step:0)
    [ 0; 1; 2 ];
  p.Residency.Policy.on_execute ~block:0 ~step:0 ~time:0;
  (* Block 0 has its bit set: the hand clears it and passes on, so the
     first victim is block 1 (bit clear). *)
  checki "hand skips the referenced copy"
    1
    (Option.get (p.Residency.Policy.victim ~exclude:(fun _ -> false)));
  p.Residency.Policy.on_release ~block:1;
  (* Block 0's bit was cleared by the sweep: second-chance spent. *)
  checki "second sweep takes the formerly referenced copy" 0
    (Option.get (p.Residency.Policy.victim ~exclude:(fun b -> b = 2)));
  p.Residency.Policy.on_release ~block:0;
  p.Residency.Policy.on_release ~block:2;
  checkb "no resident copies, no victim" true
    (p.Residency.Policy.victim ~exclude:(fun _ -> false) = None)

(* ------------------------------------------------------------------ *)
(* Loop-aware: a deeper-nested block outlives a shallower one at the
   same base k. *)

let nested_loop_graph () =
  Cfg.Build.of_program
    (Eris.Asm.assemble_exn
       "li r1, 3\n\
        outer: li r2, 3\n\
        inner: subi r2, r2, 1\n\
        bne r2, r0, inner\n\
        subi r1, r1, 1\n\
        bne r1, r0, outer\n\
        halt")

let test_loop_aware_depth_scales_k () =
  let graph = nested_loop_graph () in
  let depth = Cfg.Loop.loop_depth graph in
  let deep = ref (-1) and shallow = ref (-1) in
  Array.iteri
    (fun b d ->
      if d >= 2 && !deep < 0 then deep := b;
      if d = 1 && !shallow < 0 then shallow := b)
    depth;
  checkb "graph has depth-2 and depth-1 blocks" true
    (!deep >= 0 && !shallow >= 0);
  let k = 2 in
  let p =
    Residency.Policy.instantiate
      (Residency.Policy.Loop_aware { weight = 1 })
      (ctx ~blocks:(Cfg.Graph.num_blocks graph) ~k ~graph ())
  in
  p.Residency.Policy.on_execute ~block:!deep ~step:0 ~time:0;
  p.Residency.Policy.on_execute ~block:!shallow ~step:0 ~time:0;
  let due_step b =
    let found = ref (-1) in
    for step = 1 to k * (1 + Array.length depth) do
      if !found < 0 && List.mem b (p.Residency.Policy.due ~step) then
        found := step
    done;
    !found
  in
  let shallow_due = due_step !shallow in
  let deep_due = due_step !deep in
  checki "shallow block due after k*(1+depth) edges"
    (k * (1 + depth.(!shallow)))
    shallow_due;
  checki "deep block due after k*(1+depth) edges"
    (k * (1 + depth.(!deep)))
    deep_due;
  checkb "deeper nesting outlives shallower" true (deep_due > shallow_due)

let test_loop_aware_needs_graph () =
  checkb "no graph, clean error" true
    (match
       Residency.Policy.instantiate
         (Residency.Policy.Loop_aware { weight = 1 })
         (ctx ~blocks:4 ~k:2 ())
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Pin-hot: pinned blocks are exempt from retention; pinning more than
   the budget is rejected up front. *)

let test_pin_hot_never_due_never_victim () =
  let p =
    Residency.Policy.instantiate
      (Residency.Policy.Pin_hot { pinned = [ 0; 1 ] })
      (ctx ~blocks:4 ~k:1 ~budget:100 ~size_of:(fun _ -> 10) ())
  in
  List.iter
    (fun b ->
      p.Residency.Policy.on_materialize ~block:b ~step:0;
      p.Residency.Policy.on_ready ~block:b ~time:b;
      p.Residency.Policy.on_execute ~block:b ~step:0 ~time:b)
    [ 0; 1; 2; 3 ];
  check_blocks "only unpinned blocks ever come due" [ 2; 3 ]
    (List.sort compare (p.Residency.Policy.due ~step:1));
  let rec drain acc =
    match p.Residency.Policy.victim ~exclude:(fun _ -> false) with
    | None -> List.rev acc
    | Some b ->
      p.Residency.Policy.on_release ~block:b;
      drain (b :: acc)
  in
  let victims = drain [] in
  checki "both unpinned blocks evictable" 2 (List.length victims);
  checkb "pinned blocks never selected as victims" true
    (List.for_all (fun b -> b <> 0 && b <> 1) victims)

let test_pin_hot_over_budget_rejected () =
  checkb "pins exceeding the budget rejected at instantiation" true
    (match
       Residency.Policy.instantiate
         (Residency.Policy.Pin_hot { pinned = [ 0; 1 ] })
         (ctx ~blocks:4 ~k:1 ~budget:15 ~size_of:(fun _ -> 10) ())
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_pin_hot_out_of_range_rejected () =
  checkb "negative pinned id rejected" true
    (match
       Residency.Policy.instantiate
         (Residency.Policy.Pin_hot { pinned = [ -1 ] })
         (ctx ~blocks:4 ~k:1 ())
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Cross-simulator agreement: the timing model and the executable
   runtime share one Residency.Area, so for the same workload, k and
   retention policy they must discard the same blocks in the same
   order, patching back the same number of sites each time. *)

let discard_stream events =
  List.filter_map
    (function
      | Sim.Events.Discard { block; patched_back; _ } ->
        Some (block, patched_back)
      | _ -> None)
    events

let engine_discards w ~k ~retention =
  let sc = Workloads.Common.scenario w in
  let c = Sim.Events.collector () in
  let (_ : Core.Metrics.t) =
    Core.Scenario.run
      ~sink:(Sim.Events.collecting c)
      sc
      (Core.Policy.make ~compress_k:k ~retention ())
  in
  discard_stream (Sim.Events.collected c)

let runtime_discards w ~k ~retention =
  let prog = Eris.Asm.assemble_exn w.Workloads.Common.source in
  let c = Sim.Events.collector () in
  match Runtime.run ~k ~retention ~sink:(Sim.Events.collecting c) prog with
  | Ok _ -> discard_stream (Sim.Events.collected c)
  | Error _ -> Alcotest.failf "%s: runtime failed" w.Workloads.Common.name

let agreement_tests =
  let discard = Alcotest.(pair int int) in
  List.concat_map
    (fun name ->
      let w = Workloads.Suite.find_exn name in
      List.concat_map
        (fun k ->
          List.map
            (fun retention ->
              Alcotest.test_case
                (Printf.sprintf "%s k=%d %s" name k
                   (Residency.Policy.spec_name retention))
                `Quick
                (fun () ->
                  let model = engine_discards w ~k ~retention in
                  let real = runtime_discards w ~k ~retention in
                  Alcotest.check (Alcotest.list discard)
                    "same discard/patch-back sequence in both simulators"
                    model real))
            [ Residency.Policy.Kedge; Residency.Policy.Clock ])
        [ 2; 8 ])
    [ "fir"; "crc32"; "dct" ]

let () =
  Alcotest.run "residency"
    [
      ( "clock",
        [
          Alcotest.test_case "second chance" `Quick test_clock_second_chance;
          Alcotest.test_case "execution renews" `Quick
            test_clock_execution_renews;
          Alcotest.test_case "spared block keeps ticking" `Quick
            test_clock_spared_block_keeps_ticking;
          Alcotest.test_case "release cancels" `Quick
            test_clock_release_cancels;
          Alcotest.test_case "victim sweep" `Quick test_clock_victim_sweep;
        ] );
      ( "loop-aware",
        [
          Alcotest.test_case "depth scales k" `Quick
            test_loop_aware_depth_scales_k;
          Alcotest.test_case "needs a graph" `Quick test_loop_aware_needs_graph;
        ] );
      ( "pin-hot",
        [
          Alcotest.test_case "never due, never victim" `Quick
            test_pin_hot_never_due_never_victim;
          Alcotest.test_case "over budget rejected" `Quick
            test_pin_hot_over_budget_rejected;
          Alcotest.test_case "out of range rejected" `Quick
            test_pin_hot_out_of_range_rejected;
        ] );
      ("cross-simulator", agreement_tests);
    ]
