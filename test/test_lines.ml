(* Tests for the cache-line codec family: the BDI and CPack kernels,
   the Linecodec registry adapter's wire format (golden-pinned), the
   exact tag/metadata bit accounting, and adversarial decompression.
   The registry-wrapped variants also ride through test_compress's
   generic roundtrip/fuzz suites; everything here is line-specific. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let bytes_eq =
  Alcotest.testable
    (fun ppf b -> Format.fprintf ppf "%S" (Bytes.to_string b))
    Bytes.equal

let hex_of_bytes b =
  let buf = Buffer.create (Bytes.length b * 2) in
  Bytes.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
    b;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* BDI kernel                                                          *)

let bdi_roundtrip ?(pos = 0) b len =
  let encoding, payload = Lines.Bdi.compress b ~pos ~len in
  let back = Lines.Bdi.decompress ~encoding ~len payload in
  checkb "bdi kernel roundtrip" true
    (Bytes.equal (Bytes.sub b pos len) back);
  encoding

let test_bdi_encodings () =
  (* all-zero line: empty payload, 11-bit tag only *)
  checki "zeros" 0 (bdi_roundtrip (Bytes.make 32 '\000') 32);
  (* one 8-byte word repeated *)
  let repeat = Bytes.init 32 (fun i -> Char.chr (i mod 8 * 17)) in
  checki "repeat" 1 (bdi_roundtrip repeat 32);
  (* 8-byte words differing from the first only in the low byte *)
  let ramp =
    Bytes.init 32 (fun i -> if i mod 8 = 0 then Char.chr (i / 8) else '\x42')
  in
  checki "base8+d1" 2 (bdi_roundtrip ramp 32);
  (* 2-byte words with small spreads: base2+d1 *)
  let b2 =
    Bytes.init 16 (fun i ->
        if i mod 2 = 0 then Char.chr (40 + (i / 2)) else '\x01')
  in
  checki "base2+d1" 7 (bdi_roundtrip b2 16);
  (* incompressible: immediate fallback *)
  let st = Random.State.make [| 7 |] in
  let rand = Bytes.init 32 (fun _ -> Char.chr (Random.State.int st 256)) in
  checki "immediate" 15 (bdi_roundtrip rand 32);
  (* a short tail line (len not a multiple of 8) still round-trips *)
  ignore (bdi_roundtrip (Bytes.of_string "abcdefghijk") 11);
  (* slices compress like copies *)
  let framed = Bytes.cat (Bytes.of_string "XX") (Bytes.cat ramp Bytes.empty) in
  checki "mid-buffer slice" 2 (bdi_roundtrip ~pos:2 framed 32)

let test_bdi_wraparound () =
  (* deltas are added with hardware-adder wrap: a base at the top of
     the 8-byte range plus positive deltas must still round-trip *)
  let b = Bytes.make 32 '\xFF' in
  (* word 1..3 = 0xFFFF..FF plus i in the low byte via subtraction *)
  Bytes.set b 8 '\x01';
  Bytes.set b 16 '\x02';
  Bytes.set b 24 '\x03';
  ignore (bdi_roundtrip b 32)

let test_bdi_accounting () =
  checki "tag bits" 11 Lines.Bdi.tag_bits;
  checki "segments 0" 0 (Lines.Bdi.segments ~payload_bytes:0);
  checki "segments 8" 1 (Lines.Bdi.segments ~payload_bytes:8);
  checki "segments 9" 2 (Lines.Bdi.segments ~payload_bytes:9);
  checki "zeros payload" 0
    (Option.get (Lines.Bdi.payload_bytes ~encoding:0 ~len:64));
  (* base8+d2 over 32 bytes: 8-byte base + 4 deltas of 2 *)
  checki "base8+d2 payload" 16
    (Option.get (Lines.Bdi.payload_bytes ~encoding:3 ~len:32));
  checkb "base4 needs multiple of 4" true
    (Lines.Bdi.payload_bytes ~encoding:5 ~len:30 = None);
  let zeros = Bytes.make 32 '\000' in
  checki "zeros cost = tag only" 11
    (Lines.Bdi.cost_bits zeros ~pos:0 ~len:32);
  checks "encoding names" "zeros" (Lines.Bdi.encoding_name 0);
  checks "immediate name" "immediate" (Lines.Bdi.encoding_name 15)

let test_bdi_corrupt () =
  let corrupt f =
    match f () with
    | (_ : bytes) -> false
    | exception Lines.Line.Corrupt _ -> true
  in
  checkb "unknown encoding" true
    (corrupt (fun () ->
         Lines.Bdi.decompress ~encoding:9 ~len:32 (Bytes.create 8)));
  checkb "payload size mismatch" true
    (corrupt (fun () ->
         Lines.Bdi.decompress ~encoding:0 ~len:32 (Bytes.create 1)));
  checkb "inapplicable length" true
    (corrupt (fun () ->
         Lines.Bdi.decompress ~encoding:2 ~len:30 (Bytes.create 8)))

(* ------------------------------------------------------------------ *)
(* CPack kernel                                                        *)

(* Run the kernel's code stream back through its own reader. *)
let cpack_roundtrip b len =
  let codes = Lines.Cpack.compress b ~pos:0 ~len in
  let w = Compress.Bitio.Writer.create () in
  List.iter
    (fun (value, bits) -> Compress.Bitio.Writer.add_bits w ~value ~bits)
    codes;
  let r = Compress.Bitio.Reader.create (Compress.Bitio.Writer.contents w) in
  let back =
    Lines.Cpack.decompress ~len ~read:(Compress.Bitio.Reader.read_bits r)
  in
  checkb "cpack kernel roundtrip" true (Bytes.equal (Bytes.sub b 0 len) back);
  codes

let test_cpack_patterns () =
  (* all-zero line: one 2-bit zzzz code per word *)
  let codes = cpack_roundtrip (Bytes.make 32 '\000') 32 in
  checki "zzzz codes" 8 (List.length codes);
  checkb "zzzz is 2 bits" true (List.for_all (fun (_, w) -> w = 2) codes);
  (* a repeated word: xxxx (split 2+16+16) then mmmm matches *)
  let rep = Bytes.init 16 (fun i -> Char.chr (i mod 4 + 1)) in
  let bits = Lines.Cpack.compressed_bits rep ~pos:0 ~len:16 in
  checki "repeat word cost" (34 + (3 * 6)) bits;
  ignore (cpack_roundtrip rep 16);
  (* zzzx: three zero bytes + low literal *)
  let zzzx = Bytes.make 4 '\000' in
  Bytes.set zzzx 3 '\x09';
  checki "zzzx cost" 12 (Lines.Cpack.compressed_bits zzzx ~pos:0 ~len:4);
  ignore (cpack_roundtrip zzzx 4);
  (* mmmx: second word differs from the first only in its last byte *)
  let mmmx = Bytes.of_string "\x01\x02\x03\x04\x01\x02\x03\x99" in
  checki "mmmx cost" (34 + 16) (Lines.Cpack.compressed_bits mmmx ~pos:0 ~len:8);
  ignore (cpack_roundtrip mmmx 8);
  (* mmxx: second word shares only the 2-byte prefix *)
  let mmxx = Bytes.of_string "\x01\x02\x03\x04\x01\x02\x88\x99" in
  checki "mmxx cost" (34 + 24) (Lines.Cpack.compressed_bits mmxx ~pos:0 ~len:8);
  ignore (cpack_roundtrip mmxx 8);
  (* trailing bytes: 8-bit raw literals *)
  let tail = Bytes.of_string "\x00\x00\x00\x00ab" in
  checki "tail cost" (2 + 16) (Lines.Cpack.compressed_bits tail ~pos:0 ~len:6);
  ignore (cpack_roundtrip tail 6)

let test_cpack_dict_independence () =
  (* the dictionary resets per line: compressing line B right after
     line A gives the same codes as compressing B alone *)
  let a = Bytes.init 32 (fun i -> Char.chr (i + 1)) in
  let b = Bytes.init 32 (fun i -> Char.chr (255 - i)) in
  let alone = Lines.Cpack.compress b ~pos:0 ~len:32 in
  ignore (Lines.Cpack.compress a ~pos:0 ~len:32);
  let after = Lines.Cpack.compress b ~pos:0 ~len:32 in
  checkb "per-line dictionary" true (alone = after)

let test_cpack_bad_code () =
  (* 0b1111 is not a pattern: an all-ones bit stream must raise *)
  let read bits = (1 lsl bits) - 1 in
  checkb "code 1111" true
    (match Lines.Cpack.decompress ~len:4 ~read with
    | (_ : bytes) -> false
    | exception Lines.Line.Corrupt _ -> true)

(* ------------------------------------------------------------------ *)
(* Adapter roundtrips over every workload image at every line size     *)

let workload_images =
  lazy
    (List.map
       (fun name ->
         let w = Workloads.Suite.find_exn name in
         ( name,
           (Eris.Asm.assemble_exn w.Workloads.Common.source).Eris.Program.image
         ))
       Workloads.Suite.names)

let test_adapter_workloads () =
  List.iter
    (fun family ->
      List.iter
        (fun size ->
          let raw = Compress.Linecodec.codec family size in
          let wrapped =
            Compress.Registry.find_exn raw.Compress.Codec.name
          in
          List.iter
            (fun (name, image) ->
              let what c =
                Printf.sprintf "%s on %s" c.Compress.Codec.name name
              in
              Alcotest.check bytes_eq (what raw) image
                (raw.Compress.Codec.decompress
                   (raw.Compress.Codec.compress image));
              Alcotest.check bytes_eq (what wrapped) image
                (wrapped.Compress.Codec.decompress
                   (wrapped.Compress.Codec.compress image)))
            (Lazy.force workload_images))
        Compress.Linecodec.line_sizes)
    [ Compress.Linecodec.Bdi; Compress.Linecodec.Cpack ]

let test_adapter_names () =
  checks "bdi name" "bdi-32" (Compress.Linecodec.name Compress.Linecodec.Bdi 32);
  checkb "of_name inverse" true
    (Compress.Linecodec.of_name "cpack-64"
    = Some (Compress.Linecodec.Cpack, 64));
  checkb "of_name unknown size" true (Compress.Linecodec.of_name "bdi-48" = None);
  checkb "of_name garbage" true (Compress.Linecodec.of_name "lzss" = None);
  checki "six line codecs" 6 (List.length (Compress.Linecodec.all ()))

(* ------------------------------------------------------------------ *)
(* Golden vectors: wire bytes and tag-inclusive bit counts             *)

(* Exact compressed streams for both families at every line size, and
   the summed per-line cost_bits (tag + payload, the number the
   line-granular residency scenario charges). Any wire-format drift —
   a reordered encoding preference, a changed tag width — fails here
   even though the roundtrips still pass. Regenerate only for a
   deliberate, versioned format change. *)

let golden_inputs =
  [
    ("zeros-64", Bytes.make 64 '\000');
    ("repeat-64", Bytes.init 64 (fun i -> Char.chr (i mod 8 * 17)));
    ( "ramp-64",
      Bytes.init 64 (fun i -> if i mod 8 = 0 then Char.chr (i / 8) else '\x42')
    );
    ("text", Bytes.of_string "the quick brown fox jumps over the lazy dog");
    ("code-512", Core.Scenario.synthetic_block_bytes ~id:3 ~size:512);
    ( "random-1024",
      let st = Random.State.make [| 91 |] in
      Bytes.init 1024 (fun _ -> Char.chr (Random.State.int st 256)) );
  ]

(* codec|input|length|md5|hex|cost-bits (hex is "-" above 64 bytes) *)
let golden_table =
  {golden|
bdi-16|zeros-64|10|3e3c9e5df6115e32ce8b7174b0440bb5|40000000000000000000|44
bdi-16|repeat-64|42|1682351314e8a34176893e6bfca4c723|400000001022044088100011223344556677001122334455667700112233445566770011223344556677|300
bdi-16|ramp-64|50|30ae2b7f6b8813fb00b61ca2b47d745b|4000000020440881102000424242424242420001024242424242424200010442424242424242000106424242424242420001|364
bdi-16|text|52|9bd5468e211cd7f1bb957a4b83baca3a|2b000000f05e0bc10074686520717569636b2062726f776e20666f78206a756d7073206f76657220746865206c617a7920646f67|377
bdi-16|code-512|560|324092b42c516c70a484c8f59d74cb41|-|4448
bdi-16|random-1024|1116|350bbcea5c762b734bff058d7a912ebf|-|8896
bdi-32|zeros-64|7|d17261476305f90c90a0517e6570db7d|40000000000000|22
bdi-32|repeat-64|23|cfac4994f78c392d00471edab242f656|4000000010220400112233445566770011223344556677|150
bdi-32|ramp-64|31|4d5d4bc16dde03c487a6f2c48cda87d8|40000000204408004242424242424200010203044242424242424200010203|214
bdi-32|text|50|9b83912f9897ef02c6e7053349318430|2b000000f09e0874686520717569636b2062726f776e20666f78206a756d7073206f76657220746865206c617a7920646f67|366
bdi-32|code-512|538|244e619afbc6ffbf8ca48b7d07efea5b|-|4272
bdi-32|random-1024|1072|c61cd4f4182e28fe628e4a3a13f55e0e|-|8544
bdi-64|zeros-64|6|6478780b90426afb9cdb5c9ad3119336|400000000000|11
bdi-64|repeat-64|14|42aebf1c7c6827e30ceb1131490b4066|4000000010200011223344556677|75
bdi-64|ramp-64|22|26d49e63ace2f567291dfe424211a152|40000000204000424242424242420001020304050607|139
bdi-64|text|49|fd43e8b8ade2d749f6fc3a38be9a7d5d|2b000000f0c074686520717569636b2062726f776e20666f78206a756d7073206f76657220746865206c617a7920646f67|355
bdi-64|code-512|527|5163855fe5029c455d0c2090a7dde6eb|-|4184
bdi-64|random-1024|1050|5827f09453a09d5c0388da2eed44efdf|-|8368
cpack-16|zeros-64|12|e212b29d6da86b92d6f638b4ffde024f|400000000204081000000000|60
cpack-16|repeat-64|48|e88505b93cd18c11894b5b8f8d05c7ea|40000000142850a04004488cd445566778214004488cd445566778214004488cd445566778214004488cd44556677821|348
cpack-16|ramp-64|64|e4bf88b1af42733b34fd98bf3010fb0f|400000001c3870e04010909094242424240509090a104090909094242424240d09090a104110909094242424241509090a104190909094242424241d09090a10|476
cpack-16|text|53|ded65d8be7f6cd32fc69eb36245ac4d4|2b0000002244605d1a19481717569635ac8189c96f776e20599bde0816a756d705cc81bdd9657220745a19481b1617a7920646f670|389
cpack-16|code-512|499|405820bcc9f5e09af5648221e03a330e|-|3960
cpack-16|random-1024|1148|1b355fad4f9901e0bfefad6bdeef4691|-|9152
cpack-32|zeros-64|10|fe3b71058c188d5bd55af6fdf20f1865|40000000040800000000|46
cpack-32|repeat-64|32|c45628dec7e8795565e87b8b76f21235|400000001a344004488cd445566778218218214004488cd44556677821821821|222
cpack-32|ramp-64|54|21afccad7242c404474d960f9cda6c50|4000000030604010909094242424240509090a140909090a140d09090a104110909094242424241509090a141909090a141d09090a10|398
cpack-32|text|52|88de5b2b568bc1db383b45cb9ff7d154|2b00000044305d1a19481717569635ac8189c96f776e20599bde0816a756d705cc81bdd9657220745a19481b1617a7920646f670|382
cpack-32|code-512|413|4232eeb5a3eed9eddc5999eae7172ce5|-|3272
cpack-32|random-1024|1120|df9a3a11504c331a11dfc2f842b10b48|-|8928
cpack-64|zeros-64|9|ad8bf6f29cc12d10ebfe24474cad5059|400000000800000000|39
cpack-64|repeat-64|24|10902e25d5ab51fda7408b0b797fcc3d|40000000264004488cd44556677821821821821821821821|159
cpack-64|ramp-64|49|c35e6327382a8a39cbb00353f4672bac|40000000584010909094242424240509090a140909090a140d09090a141109090a141509090a141909090a141d09090a10|359
cpack-64|text|51|4ebe3d40110892f6146c03c6853b5f47|2b0000005c5d1a19481717569635ac8189c96f776e20599bde0816a756d705cc81bdd9657220745a19481b1617a7920646f670|375
cpack-64|code-512|329|af0bfa39e83dada776f036d6ffe78919|-|2600
cpack-64|random-1024|1106|234c77ac23c279b11e6381b24097f9aa|-|8816
|golden}

let line_cost_bits family size payload =
  let total = Bytes.length payload in
  let bits = ref 0 in
  let i = ref 0 in
  while !i < total do
    let len = min size (total - !i) in
    bits := !bits + Compress.Linecodec.cost_bits family payload ~pos:!i ~len;
    i := !i + size
  done;
  !bits

let test_golden_vectors () =
  let rows =
    String.split_on_char '\n' golden_table
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun l ->
           match String.split_on_char '|' (String.trim l) with
           | [ codec; input; len; md5; hex; bits ] ->
             (codec, input, int_of_string len, md5, hex, int_of_string bits)
           | _ -> Alcotest.failf "bad golden row %S" l)
  in
  checki "full cross product"
    (2 * List.length Compress.Linecodec.line_sizes
   * List.length golden_inputs)
    (List.length rows);
  List.iter
    (fun (codec_name, input_name, len, md5, hex, bits) ->
      let family, size =
        Option.get (Compress.Linecodec.of_name codec_name)
      in
      let codec = Compress.Linecodec.codec family size in
      let payload = List.assoc input_name golden_inputs in
      let z = codec.Compress.Codec.compress payload in
      let what field =
        Printf.sprintf "%s on %s: %s" codec_name input_name field
      in
      checki (what "length") len (Bytes.length z);
      checks (what "md5") md5 (Digest.to_hex (Digest.bytes z));
      if hex <> "-" then checks (what "bytes") hex (hex_of_bytes z);
      checki (what "cost bits") bits (line_cost_bits family size payload))
    rows

(* ------------------------------------------------------------------ *)
(* Strict framing and adversarial decompression                        *)

let expect_corrupt codec payload =
  match codec.Compress.Codec.decompress payload with
  | (_ : bytes) -> false
  | exception Compress.Codec.Corrupt _ -> true

let test_framing_corruption () =
  List.iter
    (fun (codec : Compress.Codec.t) ->
      let name what = Printf.sprintf "%s: %s" codec.name what in
      checkb (name "empty") true (expect_corrupt codec Bytes.empty);
      checkb (name "truncated header") true
        (expect_corrupt codec (Bytes.of_string "\x10\x00"));
      (* a header claiming gigabytes must be rejected before any
         allocation happens (reject-before-alloc) *)
      checkb (name "huge claim") true
        (expect_corrupt codec (Bytes.of_string "\xff\xff\xff\x7f\x00\x00"));
      let good = codec.compress (Bytes.make 64 '\x5A') in
      checkb (name "roundtrip sane") true
        (Bytes.equal (Bytes.make 64 '\x5A') (codec.decompress good));
      (* strict framing: a trailing byte is an error, not ignored *)
      checkb (name "trailing byte") true
        (expect_corrupt codec (Bytes.cat good (Bytes.make 1 '\000')));
      (* and so is losing the last payload byte *)
      checkb (name "truncated payload") true
        (expect_corrupt codec (Bytes.sub good 0 (Bytes.length good - 1))))
    (Compress.Linecodec.all ())

(* Bit flips, truncations and random bytes against the raw adapters:
   anything but Corrupt escaping means attacker-controlled lengths
   reached an unchecked operation. Same shape as test_compress's fuzz
   (which covers the never_expanding-wrapped registry variants). *)
let fuzz_codec (codec : Compress.Codec.t) =
  let st = Random.State.make [| 0x11E5; Hashtbl.hash codec.name |] in
  let total b =
    match codec.decompress b with
    | (_ : bytes) -> ()
    | exception Compress.Codec.Corrupt _ -> ()
    | exception e ->
      Alcotest.failf "%s leaked %s on %d-byte input %s..." codec.name
        (Printexc.to_string e) (Bytes.length b)
        (String.sub (hex_of_bytes b) 0 (min 48 (2 * Bytes.length b)))
  in
  List.iter
    (fun (_, payload) ->
      let z = codec.compress payload in
      let n = Bytes.length z in
      for _ = 1 to 300 do
        let m = Bytes.copy z in
        for _ = 0 to Random.State.int st 4 do
          let i = Random.State.int st n in
          let bit = 1 lsl Random.State.int st 8 in
          Bytes.set m i (Char.chr (Char.code (Bytes.get m i) lxor bit))
        done;
        total m
      done;
      for _ = 1 to 100 do
        total (Bytes.sub z 0 (Random.State.int st n))
      done)
    golden_inputs;
  for _ = 1 to 300 do
    let b =
      Bytes.init (Random.State.int st 200) (fun _ ->
          Char.chr (Random.State.int st 256))
    in
    total b
  done

let fuzz_tests =
  List.map
    (fun (codec : Compress.Codec.t) ->
      Alcotest.test_case
        (Printf.sprintf "fuzz %s" codec.name)
        `Quick
        (fun () -> fuzz_codec codec))
    (Compress.Linecodec.all ())

(* QCheck: every line codec round-trips arbitrary bytes (including
   lengths that leave a short final line). *)
let prop_roundtrips =
  List.map
    (fun (codec : Compress.Codec.t) ->
      QCheck.Test.make ~count:300
        ~name:(Printf.sprintf "%s random roundtrip" codec.name)
        QCheck.(map Bytes.of_string (string_of_size Gen.(int_range 0 700)))
        (fun payload -> Compress.Codec.roundtrip_ok codec payload))
    (Compress.Linecodec.all ())

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run ~and_exit:false "lines"
    [
      ( "bdi",
        [
          Alcotest.test_case "encodings" `Quick test_bdi_encodings;
          Alcotest.test_case "wraparound" `Quick test_bdi_wraparound;
          Alcotest.test_case "accounting" `Quick test_bdi_accounting;
          Alcotest.test_case "corruption" `Quick test_bdi_corrupt;
        ] );
      ( "cpack",
        [
          Alcotest.test_case "patterns" `Quick test_cpack_patterns;
          Alcotest.test_case "dictionary independence" `Quick
            test_cpack_dict_independence;
          Alcotest.test_case "bad code" `Quick test_cpack_bad_code;
        ] );
      ( "adapter",
        [
          Alcotest.test_case "names" `Quick test_adapter_names;
          Alcotest.test_case "every workload, every line size" `Quick
            test_adapter_workloads;
        ] );
      ( "golden",
        [ Alcotest.test_case "pinned vectors" `Quick test_golden_vectors ] );
      ("adversarial", Alcotest.test_case "framing" `Quick test_framing_corruption :: fuzz_tests);
      ("random-roundtrips", List.map qcheck prop_roundtrips);
    ]
