(* Tests for the table/CSV rendering. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let table () =
  let t =
    Report.Table.create ~title:"demo"
      ~columns:[ ("name", Report.Table.Left); ("value", Report.Table.Right) ]
  in
  Report.Table.add_row t [ "alpha"; "1" ];
  Report.Table.add_row t [ "b"; "22" ];
  t

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_structure () =
  let t = table () in
  checks "title" "demo" (Report.Table.title t);
  Alcotest.check
    Alcotest.(list string)
    "columns" [ "name"; "value" ] (Report.Table.columns t);
  checki "rows" 2 (List.length (Report.Table.rows t));
  checks "cell lookup" "22" (Report.Table.cell t ~row:1 ~col:"value");
  checkb "missing column" true
    (match Report.Table.cell t ~row:0 ~col:"nope" with
    | _ -> false
    | exception Not_found -> true);
  checkb "missing row" true
    (match Report.Table.cell t ~row:5 ~col:"name" with
    | _ -> false
    | exception Not_found -> true)

let test_arity_check () =
  let t = table () in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Report.Table.add_row: 1 cells for 2 columns") (fun () ->
      Report.Table.add_row t [ "only-one" ])

let test_render () =
  let r = Report.Table.render (table ()) in
  checkb "has title" true (contains "== demo ==" r);
  checkb "has header" true (contains "name" r);
  checkb "right alignment pads" true (contains "    1" r);
  checkb "left alignment" true (contains "alpha" r)

let test_csv () =
  let t =
    Report.Table.create ~title:"csv"
      ~columns:[ ("a", Report.Table.Left); ("b", Report.Table.Left) ]
  in
  Report.Table.add_row t [ "with,comma"; "with\"quote" ];
  let csv = Report.Table.to_csv t in
  checkb "escapes comma" true (contains "\"with,comma\"" csv);
  checkb "escapes quote" true (contains "\"with\"\"quote\"" csv);
  checkb "header line" true (contains "a,b\n" csv)

let test_csv_header_escaping () =
  let t =
    Report.Table.create ~title:"h"
      ~columns:
        [
          ("plain", Report.Table.Left);
          ("with,comma", Report.Table.Left);
          ("q\"uote", Report.Table.Left);
        ]
  in
  Report.Table.add_row t [ "1"; "2"; "3" ];
  let csv = Report.Table.to_csv t in
  let header = List.hd (String.split_on_char '\n' csv) in
  checks "header row escaped" "plain,\"with,comma\",\"q\"\"uote\"" header

let test_jsonl () =
  let t =
    Report.Table.create ~title:"j"
      ~columns:[ ("name", Report.Table.Left); ("value", Report.Table.Right) ]
  in
  Report.Table.add_row t [ "a\"b"; "1" ];
  Report.Table.add_row t [ "line\nbreak"; "2" ];
  let lines = String.split_on_char '\n' (String.trim (Report.Table.to_jsonl t)) in
  checki "one object per data row, no title" 2 (List.length lines);
  checks "escapes quotes" {|{"name":"a\"b","value":"1"}|} (List.nth lines 0);
  checks "escapes newlines" {|{"name":"line\nbreak","value":"2"}|}
    (List.nth lines 1)

let test_markdown () =
  let t = table () in
  let lines =
    String.split_on_char '\n' (String.trim (Report.Table.to_markdown t))
  in
  checki "header + divider + 2 rows" 4 (List.length lines);
  checks "header padded" "| name  | value |" (List.nth lines 0);
  checks "divider carries alignment" "| ----- | ----: |" (List.nth lines 1);
  checks "left cell padded right" "| alpha |     1 |" (List.nth lines 2);
  checks "right cell padded left" "| b     |    22 |" (List.nth lines 3);
  (* every line has the same pipe skeleton *)
  List.iter
    (fun l -> checki "pipe count" 3 (String.fold_left
         (fun n c -> if c = '|' then n + 1 else n) 0 l))
    lines

let test_markdown_escaping () =
  let t =
    Report.Table.create ~title:"m"
      ~columns:[ ("c", Report.Table.Left) ]
  in
  Report.Table.add_row t [ "a|b" ];
  Report.Table.add_row t [ "line\nbreak" ];
  let md = Report.Table.to_markdown t in
  checkb "pipes escaped" true (contains {|a\|b|} md);
  checkb "newline becomes <br>" true (contains "line<br>break" md);
  checkb "no raw newline inside a cell" false (contains "line\nbreak" md)

let test_formatters () =
  checks "int" "42" (Report.Table.fmt_int 42);
  checks "float" "3.14" (Report.Table.fmt_float 3.14159);
  checks "float decimals" "3.1416" (Report.Table.fmt_float ~decimals:4 3.14159);
  checks "pct" "12.3%" (Report.Table.fmt_pct 0.1234);
  checks "negative pct" "-5.0%" (Report.Table.fmt_pct (-0.05));
  checks "bytes" "100B" (Report.Table.fmt_bytes 100)

(* ------------------------------------------------------------------ *)
(* Pareto                                                              *)

let pt label cycles energy =
  { Report.Pareto.label; values = [ ("cycles", cycles); ("energy", energy) ] }

let labels pts = List.map (fun p -> p.Report.Pareto.label) pts

let test_pareto_dominates () =
  let open Report.Pareto in
  checkb "strictly better everywhere" true
    (dominates (pt "a" 1.0 1.0) (pt "b" 2.0 2.0));
  checkb "better in one, equal in the other" true
    (dominates (pt "a" 1.0 2.0) (pt "b" 2.0 2.0));
  checkb "worse in one dimension" false
    (dominates (pt "a" 1.0 3.0) (pt "b" 2.0 2.0));
  (* ties: equal points dominate in neither direction *)
  checkb "equal forward" false (dominates (pt "a" 1.0 2.0) (pt "b" 1.0 2.0));
  checkb "equal backward" false (dominates (pt "b" 1.0 2.0) (pt "a" 1.0 2.0));
  checkb "dominance is not symmetric" false
    (dominates (pt "b" 2.0 2.0) (pt "a" 1.0 1.0))

let test_pareto_front () =
  let front =
    Report.Pareto.front
      [ pt "good" 1.0 4.0; pt "mid" 2.0 2.0; pt "bad" 3.0 5.0; pt "also" 4.0 1.0 ]
  in
  checkb "dominated point dropped" true
    (labels front = [ "good"; "mid"; "also" ]);
  (* duplicate coordinates never dominate each other: both survive *)
  let dup = Report.Pareto.front [ pt "x" 1.0 1.0; pt "y" 1.0 1.0 ] in
  checkb "duplicates all survive" true (labels dup = [ "x"; "y" ]);
  checkb "empty front" true (Report.Pareto.front [] = []);
  let solo = Report.Pareto.front [ pt "only" 9.0 9.0 ] in
  checkb "singleton survives" true (labels solo = [ "only" ])

let test_pareto_dimension_mismatch () =
  let odd = { Report.Pareto.label = "odd"; values = [ ("cycles", 1.0) ] } in
  checkb "mismatched dimensions raise" true
    (match Report.Pareto.dominates (pt "a" 1.0 1.0) odd with
    | (_ : bool) -> false
    | exception Invalid_argument _ -> true);
  checkb "missing dimension raises" true
    (match Report.Pareto.value odd "energy" with
    | (_ : float) -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "arity" `Quick test_arity_check;
          Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "csv header escaping" `Quick
            test_csv_header_escaping;
          Alcotest.test_case "jsonl" `Quick test_jsonl;
          Alcotest.test_case "markdown" `Quick test_markdown;
          Alcotest.test_case "markdown escaping" `Quick
            test_markdown_escaping;
          Alcotest.test_case "formatters" `Quick test_formatters;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "dominates" `Quick test_pareto_dominates;
          Alcotest.test_case "front" `Quick test_pareto_front;
          Alcotest.test_case "dimension mismatch" `Quick
            test_pareto_dimension_mismatch;
        ] );
    ]
