(* Corpus layer: spec grammar, generator determinism and shape
   fidelity, multitask composition, and the engine/runtime agreement
   property hunted over arbitrary generated CFGs. *)

let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Spec grammar *)

let spec_gen : Corpus.Spec.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* seed = int_range 0 1_000_000 in
  let* depth = int_range 0 4 in
  let* fanout = int_range 1 8 in
  let* blocks =
    oneof
      [
        (let* lo = int_range 2 64 in
         let* hi = int_range lo 128 in
         return (Corpus.Spec.Uniform (lo, hi)));
        (let* m = int_range 4 64 in
         return (Corpus.Spec.Geometric m));
        (let* lo = int_range 2 32 in
         let* hi = int_range lo 128 in
         return (Corpus.Spec.Bimodal (lo, hi)));
      ]
  in
  let* calls = int_range 0 4 in
  let* skew_pm = int_range 0 995 in
  let* cold = int_range 1 24 in
  let* rounds = int_range 1 20 in
  return
    {
      Corpus.Spec.seed;
      depth;
      fanout;
      blocks;
      calls;
      skew = float_of_int skew_pm /. 1000.;
      cold;
      rounds;
    }

let spec_arbitrary =
  QCheck.make ~print:Corpus.Spec.to_string spec_gen

let prop_spec_roundtrip =
  QCheck.Test.make ~count:500 ~name:"gen: spec parse/print round-trip"
    spec_arbitrary (fun spec ->
      match Corpus.Spec.of_string (Corpus.Spec.to_string spec) with
      | Error msg -> QCheck.Test.fail_reportf "did not parse back: %s" msg
      | Ok spec' -> spec' = spec && Corpus.Spec.to_string spec' = Corpus.Spec.to_string spec)

let test_spec_order_tolerant () =
  let a = Corpus.Spec.of_string_exn "gen:seed=7,depth=3,skew=0.8" in
  let b = Corpus.Spec.of_string_exn "gen:skew=0.8,seed=7,depth=3" in
  checks "field order is irrelevant" (Corpus.Spec.to_string a)
    (Corpus.Spec.to_string b);
  checki "defaults fill missing fields" Corpus.Spec.default.fanout a.fanout

let test_spec_rejects () =
  let bad s =
    match Corpus.Spec.of_string s with Ok _ -> false | Error _ -> true
  in
  checkb "unknown key" true (bad "gen:seed=1,zorp=3");
  checkb "depth out of range" true (bad "gen:depth=9");
  checkb "bad blocks kind" true (bad "gen:blocks=zip:12");
  checkb "inverted range" true (bad "gen:blocks=uni:40-8");
  checkb "missing prefix" true (bad "seed=1");
  checkb "skew out of range" true (bad "gen:skew=1.5")

let test_spec_canonical_skew () =
  let s = Corpus.Spec.of_string_exn "gen:skew=0.90000001" in
  checks "skew snaps to the permille grid" "gen:seed=1,depth=2,fanout=2,blocks=geo:16,calls=1,skew=0.9,cold=8,rounds=8"
    (Corpus.Spec.to_string s)

(* ------------------------------------------------------------------ *)
(* Generator: determinism, validity, shape fidelity *)

let small_spec =
  Corpus.Spec.of_string_exn
    "gen:seed=11,depth=2,fanout=3,blocks=geo:12,calls=2,skew=0.85,cold=6,rounds=5"

let test_gen_deterministic () =
  let a = Corpus.Gen.build small_spec in
  let b = Corpus.Gen.build small_spec in
  checks "image md5 stable" (Corpus.Gen.image_md5 a) (Corpus.Gen.image_md5 b);
  checks "trace md5 stable" (Corpus.Gen.trace_md5 a) (Corpus.Gen.trace_md5 b);
  checkb "byte-identical image" true
    (Bytes.equal a.program.Eris.Program.image b.program.Eris.Program.image);
  let c =
    Corpus.Gen.build { small_spec with Corpus.Spec.seed = small_spec.seed + 1 }
  in
  checkb "different seed, different image" false
    (Corpus.Gen.image_md5 a = Corpus.Gen.image_md5 c)

let test_gen_trace_valid () =
  let bt = Corpus.Gen.build small_spec in
  (match Cfg.Graph.validate_trace bt.graph bt.trace with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "generated trace invalid: %s" msg);
  checkb "trace non-trivial" true (Array.length bt.trace > 50);
  checkb "several hot blocks" true (bt.hot_blocks > 3)

let test_gen_runs_on_machine () =
  let prog = Corpus.Gen.program small_spec in
  let m = Eris.Machine.create prog in
  let r = Eris.Machine.run_to_halt ~fuel:10_000_000 m in
  checkb "halts" true (r.Eris.Machine.reason = Eris.Machine.Halted);
  checkb "executes a real workload" true (r.Eris.Machine.instrs > 500)

let test_gen_skew_tolerance () =
  List.iter
    (fun (spec, tol) ->
      let bt = Corpus.Gen.build (Corpus.Spec.of_string_exn spec) in
      let req = bt.spec.Corpus.Spec.skew in
      if Float.abs (bt.measured_skew -. req) > tol then
        Alcotest.failf "%s: requested skew %g, measured %g (tol %g)" spec req
          bt.measured_skew tol)
    [
      ("gen:seed=3,depth=2,fanout=2,blocks=geo:12,skew=0.9,cold=8,rounds=6", 0.08);
      ("gen:seed=4,depth=3,fanout=4,blocks=uni:6-24,skew=0.75,cold=10,rounds=4", 0.1);
      ("gen:seed=5,depth=1,fanout=2,blocks=geo:20,calls=3,skew=0.6,cold=12,rounds=5", 0.1);
      ("gen:seed=6,depth=4,fanout=6,blocks=bim:4-48,skew=0.95,cold=6,rounds=3", 0.08);
    ]

let test_gen_scenario () =
  let sc = Corpus.Gen.scenario small_spec in
  checks "named by the canonical spec" (Corpus.Spec.to_string small_spec)
    sc.Core.Scenario.name;
  checki "info covers every block" (Cfg.Graph.num_blocks sc.graph)
    (Array.length sc.info);
  let m = Core.Scenario.run sc (Core.Policy.make ~compress_k:4 ()) in
  checki "engine replays the whole trace" (Array.length sc.trace)
    m.Core.Metrics.trace_length;
  checkb "compression is real" true
    (m.Core.Metrics.compressed_area_bytes < m.Core.Metrics.original_bytes)

(* ------------------------------------------------------------------ *)
(* Engine vs. runtime discard agreement over arbitrary generated CFGs:
   the acceptance property. Both simulators drive one Residency.Area,
   so for every retention policy the discard/patch-back sequences must
   match exactly — on programs no human wrote. *)

let discard_stream events =
  List.filter_map
    (function
      | Sim.Events.Discard { block; patched_back; _ } ->
        Some (block, patched_back)
      | _ -> None)
    events

let retention_for sc = function
  | "kedge" -> Residency.Policy.Kedge
  | "clock" -> Residency.Policy.Clock
  | "loop-aware" -> Residency.Policy.Loop_aware { weight = 1 }
  | "pin-hot" ->
    Residency.Policy.Pin_hot
      {
        pinned = Cfg.Profile.hot_blocks (Core.Scenario.profile sc) ~fraction:0.2;
      }
  | name -> invalid_arg name

let agreement_spec_gen : Corpus.Spec.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* seed = int_range 0 100_000 in
  let* depth = int_range 1 3 in
  let* fanout = int_range 1 4 in
  let* calls = int_range 0 2 in
  let* skew_pm = int_range 500 950 in
  let* cold = int_range 2 10 in
  return
    {
      Corpus.Spec.seed;
      depth;
      fanout;
      calls;
      skew = float_of_int skew_pm /. 1000.;
      cold;
      rounds = 3;
      blocks = Corpus.Spec.Geometric 10;
    }

let prop_engine_runtime_agree =
  QCheck.Test.make ~count:12
    ~name:"engine/runtime discard agreement on generated CFGs"
    (QCheck.make ~print:Corpus.Spec.to_string agreement_spec_gen)
    (fun spec ->
      let bt = Corpus.Gen.build spec in
      let sc = Corpus.Gen.scenario spec in
      List.for_all
        (fun retention_name ->
          let retention = retention_for sc retention_name in
          let k = 2 in
          let engine =
            let c = Sim.Events.collector () in
            let (_ : Core.Metrics.t) =
              Core.Scenario.run
                ~sink:(Sim.Events.collecting c)
                sc
                (Core.Policy.make ~compress_k:k ~retention ())
            in
            discard_stream (Sim.Events.collected c)
          in
          let runtime =
            let c = Sim.Events.collector () in
            match
              Runtime.run ~k ~retention
                ~sink:(Sim.Events.collecting c)
                bt.Corpus.Gen.program
            with
            | Ok _ -> discard_stream (Sim.Events.collected c)
            | Error _ ->
              QCheck.Test.fail_reportf "%s: runtime failed under %s"
                (Corpus.Spec.to_string spec) retention_name
          in
          if engine <> runtime then
            QCheck.Test.fail_reportf
              "%s: %s discard sequences diverge (engine %d, runtime %d)"
              (Corpus.Spec.to_string spec) retention_name (List.length engine)
              (List.length runtime)
          else true)
        [ "kedge"; "clock"; "loop-aware"; "pin-hot" ])

(* ------------------------------------------------------------------ *)
(* Multitask composition *)

let two_tasks () =
  let a = Corpus.Gen.scenario small_spec in
  let b =
    Corpus.Gen.scenario
      (Corpus.Spec.of_string_exn
         "gen:seed=21,depth=1,fanout=2,blocks=geo:10,calls=0,skew=0.7,cold=4,rounds=4")
  in
  (a, b)

let test_multitask_compose () =
  let a, b = two_tasks () in
  let mt = Corpus.Multitask.compose ~quantum:16 [ a; b ] in
  let sc = mt.Corpus.Multitask.scenario in
  checki "blocks are a disjoint union"
    (Cfg.Graph.num_blocks a.graph + Cfg.Graph.num_blocks b.graph)
    (Cfg.Graph.num_blocks sc.graph);
  checki "trace is a complete interleave"
    (Array.length a.trace + Array.length b.trace)
    (Array.length sc.trace);
  checki "info covers the union" (Cfg.Graph.num_blocks sc.graph)
    (Array.length sc.info);
  (* jitter=0: the first quantum visits are task 0's trace verbatim *)
  for i = 0 to 15 do
    checki "first slice belongs to task 0" a.trace.(i) sc.trace.(i)
  done;
  let t1 = mt.Corpus.Multitask.tasks.(1) in
  checki "task 1 ids are offset" (Cfg.Graph.num_blocks a.graph)
    t1.Corpus.Multitask.first_block;
  checkb "task 1 slice follows" true
    (sc.trace.(16) >= t1.Corpus.Multitask.first_block)

let test_multitask_determinism () =
  let a, b = two_tasks () in
  let t1 = Corpus.Multitask.compose ~quantum:16 ~seed:3 ~jitter:0.5 [ a; b ] in
  let t2 = Corpus.Multitask.compose ~quantum:16 ~seed:3 ~jitter:0.5 [ a; b ] in
  checkb "jittered interleave is seeded"
    true
    (t1.Corpus.Multitask.scenario.Core.Scenario.trace
    = t2.Corpus.Multitask.scenario.Core.Scenario.trace);
  let t3 = Corpus.Multitask.compose ~quantum:16 ~seed:4 ~jitter:0.5 [ a; b ] in
  checkb "different seed, different interleave" false
    (t1.Corpus.Multitask.scenario.Core.Scenario.trace
    = t3.Corpus.Multitask.scenario.Core.Scenario.trace)

let test_multitask_run_attribution () =
  let a, b = two_tasks () in
  let mt = Corpus.Multitask.compose ~quantum:32 [ a; b ] in
  let budget =
    (* tight shared budget: forces the tasks to fight for the area *)
    let total =
      Array.fold_left
        (fun acc (i : Core.Engine.block_info) -> acc + i.uncompressed_bytes)
        0 mt.Corpus.Multitask.scenario.Core.Scenario.info
    in
    max 256 (total / 8)
  in
  let metrics, stats =
    Corpus.Multitask.run mt
      (Core.Policy.make ~compress_k:8 ~budget ~retention:Residency.Policy.Clock ())
  in
  checki "aggregate trace length"
    (Array.length mt.Corpus.Multitask.scenario.Core.Scenario.trace)
    metrics.Core.Metrics.trace_length;
  checki "per-task visits sum to the whole"
    metrics.Core.Metrics.trace_length
    (Array.fold_left (fun acc s -> acc + s.Corpus.Multitask.visits) 0 stats);
  Array.iteri
    (fun i s ->
      checki
        (Printf.sprintf "task %d visits = its trace length" i)
        s.Corpus.Multitask.task.Corpus.Multitask.trace_len
        s.Corpus.Multitask.visits)
    stats;
  let cross =
    Array.fold_left
      (fun acc s -> acc + s.Corpus.Multitask.evicted_while_inactive)
      0 stats
  in
  checkb "cross-task evictions observable under a shared budget" true
    (cross > 0)

(* ------------------------------------------------------------------ *)
(* Resolve: the unified scenario-string vocabulary *)

let lookup name =
  if name = "tiny" then Corpus.Gen.scenario small_spec
  else invalid_arg ("no such workload " ^ name)

let test_resolve_canonicalize () =
  let known n = n = "fir" || n = "crc32" in
  let ok s = Result.get_ok (Corpus.Resolve.canonicalize ~known s) in
  checks "plain name passes" "fir" (ok "fir");
  checks "gen spec canonicalizes"
    "gen:seed=5,depth=2,fanout=2,blocks=geo:16,calls=1,skew=0.9,cold=8,rounds=8"
    (ok "gen:seed=5");
  checks "multi spec canonicalizes"
    "multi:quantum=32,seed=1,jitter=0;fir+crc32"
    (ok "multi:quantum=32;fir+crc32");
  let bad s = Result.is_error (Corpus.Resolve.canonicalize ~known s) in
  checkb "unknown name rejected" true (bad "zorp");
  checkb "unknown task rejected" true (bad "multi:quantum=4;fir+zorp");
  checkb "nested multi rejected" true
    (bad "multi:quantum=4;fir+multi:quantum=2;a+b");
  checkb "single task rejected" true (bad "multi:quantum=4;fir");
  checkb "quantum required" true (bad "multi:seed=1;fir+crc32")

let test_resolve_scenario () =
  let sc =
    Corpus.Resolve.scenario ~lookup
      "multi:quantum=8;tiny+gen:seed=9,depth=1,cold=4,rounds=3"
  in
  checkb "composed trace covers both tasks" true
    (Array.length sc.Core.Scenario.trace
    > Array.length (Corpus.Gen.build small_spec).Corpus.Gen.trace);
  let sc2 = Corpus.Resolve.scenario ~lookup "tiny" in
  checks "plain names go through lookup" (Corpus.Spec.to_string small_spec)
    sc2.Core.Scenario.name

(* ------------------------------------------------------------------ *)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "corpus"
    [
      ( "spec",
        [
          qcheck prop_spec_roundtrip;
          Alcotest.test_case "order tolerant" `Quick test_spec_order_tolerant;
          Alcotest.test_case "rejects malformed" `Quick test_spec_rejects;
          Alcotest.test_case "canonical skew" `Quick test_spec_canonical_skew;
        ] );
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "trace valid" `Quick test_gen_trace_valid;
          Alcotest.test_case "runs on machine" `Quick test_gen_runs_on_machine;
          Alcotest.test_case "skew tolerance" `Slow test_gen_skew_tolerance;
          Alcotest.test_case "scenario" `Quick test_gen_scenario;
        ] );
      ("agreement", [ qcheck prop_engine_runtime_agree ]);
      ( "multitask",
        [
          Alcotest.test_case "compose" `Quick test_multitask_compose;
          Alcotest.test_case "determinism" `Quick test_multitask_determinism;
          Alcotest.test_case "attribution" `Quick test_multitask_run_attribution;
        ] );
      ( "resolve",
        [
          Alcotest.test_case "canonicalize" `Quick test_resolve_canonicalize;
          Alcotest.test_case "scenario" `Quick test_resolve_scenario;
        ] );
    ]
