(* Tests for the shared simulation kernel: cost model, three-thread
   clock, the streaming event bus (including JSONL round-trips and the
   constant-memory guarantee) and the metrics registry. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Cost and clock *)

let test_cost () =
  let c = Sim.Cost.default in
  checki "dec" (30 + (4 * 10)) (Sim.Cost.dec_cycles c ~compressed_bytes:10);
  checki "comp" (30 + (8 * 10)) (Sim.Cost.comp_cycles c ~uncompressed_bytes:10);
  let c2 = Sim.Cost.with_rates ~dec_cycles_per_byte:1 ~comp_cycles_per_byte:2 c in
  checki "rates swap" (30 + 10) (Sim.Cost.dec_cycles c2 ~compressed_bytes:10);
  checki "fixed costs kept" c.Sim.Cost.exception_cycles
    c2.Sim.Cost.exception_cycles

(* ---- the pluggable cost vocabulary ---- *)

let test_cost_profiles () =
  checkb "paper-2005 is the default profile" true
    (Sim.Cost.profile "paper-2005" = Sim.Cost.default);
  checks "head of profile_names is the default" "paper-2005"
    (List.hd Sim.Cost.profile_names);
  (* the paper profile prices no energy: cycle numbers cannot move *)
  let e = Sim.Cost.default.Sim.Cost.energy in
  checki "no flash energy" 0 e.Sim.Cost.flash_read_nj_per_byte;
  checki "no exec energy" 0 e.Sim.Cost.exec_nj_per_cycle;
  checki "no leakage" 0 e.Sim.Cost.ram_static_nj_per_kb_cycle;
  List.iter
    (fun name ->
      let c = Sim.Cost.profile name in
      checks "profile field matches its name" name c.Sim.Cost.profile;
      checkb "every registered profile validates" true
        (Sim.Cost.validate c == c))
    Sim.Cost.profile_names;
  Alcotest.check_raises "unknown profile lists the known ones"
    (Invalid_argument
       "unknown device profile \"lunar-lander\" (known: paper-2005, \
        cortex-m-flash, sram-heavy)") (fun () ->
      ignore (Sim.Cost.profile "lunar-lander"))

let test_cost_validation () =
  let c = Sim.Cost.default in
  (* with_rates guards both rates *)
  Alcotest.check_raises "zero dec rate"
    (Invalid_argument "dec_cycles_per_byte must be >= 1 (got 0)") (fun () ->
      ignore (Sim.Cost.with_rates ~dec_cycles_per_byte:0 ~comp_cycles_per_byte:1 c));
  Alcotest.check_raises "negative comp rate"
    (Invalid_argument "comp_cycles_per_byte must be >= 1 (got -3)") (fun () ->
      ignore
        (Sim.Cost.with_rates ~dec_cycles_per_byte:1 ~comp_cycles_per_byte:(-3) c));
  (* validate guards every coefficient with the field's own name *)
  Alcotest.check_raises "negative fixed cost"
    (Invalid_argument "exception_cycles must be >= 0 (got -1)") (fun () ->
      ignore (Sim.Cost.validate { c with Sim.Cost.exception_cycles = -1 }));
  Alcotest.check_raises "negative energy coefficient"
    (Invalid_argument "flash_read_nj_per_byte must be >= 0 (got -5)")
    (fun () ->
      ignore
        (Sim.Cost.validate
           {
             c with
             Sim.Cost.energy =
               { c.Sim.Cost.energy with Sim.Cost.flash_read_nj_per_byte = -5 };
           }));
  Alcotest.check_raises "zero per-byte cycle rate"
    (Invalid_argument "dec_cycles_per_byte must be >= 1 (got 0)") (fun () ->
      ignore (Sim.Cost.validate { c with Sim.Cost.dec_cycles_per_byte = 0 }))

let test_cost_charges () =
  let c = Sim.Cost.profile "cortex-m-flash" in
  let e = c.Sim.Cost.energy in
  let v = Sim.Cost.exec_charge c ~cycles:100 in
  checki "exec cycles" 100 v.Sim.Cost.cycles;
  checki "exec energy" (100 * e.Sim.Cost.exec_nj_per_cycle) v.Sim.Cost.energy_nj;
  let v = Sim.Cost.demand_dec_charge c ~compressed_bytes:10 ~uncompressed_bytes:40 in
  checki "demand dec advances the clock"
    (Sim.Cost.dec_cycles c ~compressed_bytes:10)
    v.Sim.Cost.cycles;
  checki "demand dec energy: flash in, compute + ram write out"
    ((10 * e.Sim.Cost.flash_read_nj_per_byte)
    + (40 * e.Sim.Cost.dec_compute_nj_per_byte)
    + (40 * e.Sim.Cost.ram_write_nj_per_byte))
    v.Sim.Cost.energy_nj;
  let p = Sim.Cost.prefetch_dec_charge c ~compressed_bytes:10 ~uncompressed_bytes:40 in
  checki "prefetch costs no wall clock" 0 p.Sim.Cost.cycles;
  checki "prefetch energy equals demand energy" v.Sim.Cost.energy_nj
    p.Sim.Cost.energy_nj;
  let r = Sim.Cost.recompress_charge c ~uncompressed_bytes:40 in
  checki "recompress on the helper thread" 0 r.Sim.Cost.cycles;
  checki "recompress energy: ram read + compute"
    (40 * (e.Sim.Cost.ram_read_nj_per_byte + e.Sim.Cost.comp_compute_nj_per_byte))
    r.Sim.Cost.energy_nj;
  let s = Sim.Cost.ram_static_charge c ~byte_cycles:(3 * 1024) in
  checki "leakage per kB-cycle" (3 * e.Sim.Cost.ram_static_nj_per_kb_cycle)
    s.Sim.Cost.energy_nj;
  Alcotest.check_raises "negative occupancy integral"
    (Invalid_argument "byte_cycles must be >= 0 (got -1)") (fun () ->
      ignore (Sim.Cost.ram_static_charge c ~byte_cycles:(-1)));
  checki "stalls burn no energy" 0
    (Sim.Cost.stall_charge c ~cycles:50).Sim.Cost.energy_nj

let test_cost_acc () =
  let journal = ref [] in
  let acc =
    Sim.Cost.Acc.create ~journal:(fun src v -> journal := (src, v) :: !journal) ()
  in
  let c = Sim.Cost.profile "sram-heavy" in
  Sim.Cost.Acc.charge acc Sim.Cost.Exec (Sim.Cost.exec_charge c ~cycles:10);
  Sim.Cost.Acc.charge acc Sim.Cost.Exec (Sim.Cost.exec_charge c ~cycles:5);
  Sim.Cost.Acc.charge acc Sim.Cost.Exception (Sim.Cost.exception_charge c);
  let total = Sim.Cost.Acc.total acc in
  let sum f =
    List.fold_left (fun a (_, v) -> a + f v) 0 !journal
  in
  checki "journal saw every charge" 3 (List.length !journal);
  checki "total cycles = sum of charges" (sum (fun v -> v.Sim.Cost.cycles))
    total.Sim.Cost.cycles;
  checki "total energy = sum of charges" (sum (fun v -> v.Sim.Cost.energy_nj))
    total.Sim.Cost.energy_nj;
  let exec = Sim.Cost.Acc.total_of acc Sim.Cost.Exec in
  checki "per-source cycles" 15 exec.Sim.Cost.cycles;
  checki "untouched source is zero" 0
    (Sim.Cost.Acc.total_of acc Sim.Cost.Recompress).Sim.Cost.cycles;
  Alcotest.check
    Alcotest.(list (pair string int))
    "dimension_totals mirrors the vector"
    [
      ("cycles", total.Sim.Cost.cycles); ("energy_nj", total.Sim.Cost.energy_nj);
    ]
    (Sim.Cost.Acc.dimension_totals acc)

let test_clock () =
  let clk = Sim.Clock.create () in
  checki "starts at 0" 0 (Sim.Clock.now clk);
  Sim.Clock.advance clk ~cycles:10;
  checki "advances" 10 (Sim.Clock.now clk);
  checki "wait into future" 5 (Sim.Clock.wait_until clk 15);
  checki "after wait" 15 (Sim.Clock.now clk);
  checki "wait into past is free" 0 (Sim.Clock.wait_until clk 3);
  checki "past wait does not rewind" 15 (Sim.Clock.now clk);
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Sim.Clock.advance: negative cycles") (fun () ->
      Sim.Clock.advance clk ~cycles:(-1))

let test_resource () =
  let r = Sim.Clock.resource () in
  checki "idle resource starts now" 10 (Sim.Clock.schedule r ~now:0 ~cycles:10);
  (* second request queues behind the first even though now < free_at *)
  checki "fifo queueing" 15 (Sim.Clock.schedule r ~now:5 ~cycles:5);
  (* a request after idle time starts at now *)
  checki "idle gap" 110 (Sim.Clock.schedule r ~now:100 ~cycles:10);
  checki "busy accumulates" 25 (Sim.Clock.busy_cycles r);
  Sim.Clock.push_back r ~now:0 ~cycles:7;
  checki "push_back extends backlog" 117 (Sim.Clock.free_at r);
  checki "push_back is busy work" 32 (Sim.Clock.busy_cycles r)

(* ------------------------------------------------------------------ *)
(* Event JSON round-trips *)

let sample_events =
  Sim.Events.
    [
      Exec { block = 0; at = 0 };
      Exec { block = 12; at = 999999999 };
      Exception { block = 3; at = 41 };
      Demand_decompress { block = 7; at = 100; cycles = 66 };
      Prefetch_issue { block = 2; at = 5; ready_at = 93 };
      Stall { block = 2; at = 50; cycles = 43 };
      Patch { target = 4; site = 9; at = 77 };
      Unpatch { target = 4; site = 9; at = 81 };
      Discard { block = 1; at = 200; patched_back = 3; wasted = false };
      Discard { block = 6; at = 201; patched_back = 0; wasted = true };
      Evict { block = 8; at = 300 };
      Recompress_queued { block = 5; at = 400; done_at = 460 };
      Flush { at = 500; copies = 17 };
    ]

let test_json_roundtrip () =
  List.iter
    (fun ev ->
      match Sim.Events.of_json (Sim.Events.to_json ev) with
      | Ok ev' -> checkb (Sim.Events.to_json ev) true (ev = ev')
      | Error msg -> Alcotest.failf "%s: %s" (Sim.Events.to_json ev) msg)
    sample_events

let test_json_rejects_garbage () =
  List.iter
    (fun s -> checkb s true (Result.is_error (Sim.Events.of_json s)))
    [
      "";
      "{}";
      "not json";
      {|{"ev":"exec","block":1}|} (* missing at *);
      {|{"ev":"warp","block":1,"at":2}|} (* unknown kind *);
      {|{"ev":"exec","block":"x","at":2}|} (* non-numeric field *);
    ]

let test_file_roundtrip () =
  let path = Filename.temp_file "test_sim" ".jsonl" in
  let sink = Sim.Events.to_file path in
  List.iter sink.Sim.Events.emit sample_events;
  sink.Sim.Events.close ();
  (match Sim.Events.read_file path with
  | Ok evs -> checkb "file round-trip" true (evs = sample_events)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Sinks *)

let test_counting_sink () =
  let c = Sim.Events.counters () in
  let sink = Sim.Events.counting c in
  List.iter sink.Sim.Events.emit sample_events;
  checki "total" (List.length sample_events) (Sim.Events.total c);
  checki "execs" 2 (Sim.Events.count c "exec");
  checki "discards" 2 (Sim.Events.count c "discard");
  checki "flushes" 1 (Sim.Events.count c "flush");
  checki "last time" 999999999 (Sim.Events.last_time c);
  checkb "unknown kind rejected" true
    (match Sim.Events.count c "nope" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_tee_and_collector () =
  let a = Sim.Events.collector () in
  let b = Sim.Events.counters () in
  let sink =
    Sim.Events.tee [ Sim.Events.collecting a; Sim.Events.counting b ]
  in
  List.iter sink.Sim.Events.emit sample_events;
  checkb "collector ordered" true (Sim.Events.collected a = sample_events);
  checki "tee reaches both" (List.length sample_events) (Sim.Events.total b)

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_metrics_counters () =
  let r = Sim.Metrics.create () in
  let c = Sim.Metrics.counter r "hits" in
  Sim.Metrics.incr c;
  Sim.Metrics.incr ~by:4 c;
  checki "incr" 5 (Sim.Metrics.value c);
  (* registration is idempotent: same name+labels = same cell *)
  Sim.Metrics.incr (Sim.Metrics.counter r "hits");
  checki "idempotent" 6 (Sim.Metrics.value c);
  (* labels distinguish, order-insensitively *)
  let l1 = Sim.Metrics.counter r ~labels:[ ("a", "1"); ("b", "2") ] "hits" in
  let l2 = Sim.Metrics.counter r ~labels:[ ("b", "2"); ("a", "1") ] "hits" in
  Sim.Metrics.incr l1;
  checki "label order irrelevant" 1 (Sim.Metrics.value l2);
  checki "unlabelled unaffected" 6 (Sim.Metrics.value c)

let test_metrics_histogram () =
  let r = Sim.Metrics.create () in
  let h = Sim.Metrics.histogram r ~buckets:[ 10; 100 ] "lat" in
  List.iter (Sim.Metrics.observe h) [ 1; 10; 11; 1000 ];
  checki "n" 4 (Sim.Metrics.observations h);
  checki "sum" 1022 (Sim.Metrics.sum h);
  checki "max" 1000 (Sim.Metrics.max_value h);
  Alcotest.(check (list (pair (option int) int)))
    "cumulative buckets"
    [ (Some 10, 2); (Some 100, 3); (None, 4) ]
    (Sim.Metrics.bucket_counts h);
  checkb "unsorted buckets rejected" true
    (match Sim.Metrics.histogram r ~buckets:[ 5; 5 ] "bad" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_metrics_quantile () =
  let checkf = Alcotest.check (Alcotest.float 1e-9) in
  let r = Sim.Metrics.create () in
  let h = Sim.Metrics.histogram r ~buckets:[ 10; 100; 1000 ] "lat" in
  checkf "empty histogram" 0.0 (Sim.Metrics.quantile h 0.5);
  (* 8 observations in [0,10], 2 in (100,1000] *)
  List.iter (Sim.Metrics.observe h) [ 1; 2; 3; 4; 5; 6; 7; 8; 500; 600 ];
  (* rank 5 of 8 in the first bucket: linear interpolation inside it *)
  checkf "p50" 6.25 (Sim.Metrics.quantile h 0.5);
  (* rank 9 of 10 falls in the (100,1000] bucket *)
  checkf "p90" 550.0 (Sim.Metrics.quantile h 0.9);
  (* the estimate never exceeds the observed max *)
  checkb "p100 clamps to max" true (Sim.Metrics.quantile h 1.0 <= 600.0);
  (* everything past the last bound lands in the +Inf bucket, which
     reports the observed max rather than infinity *)
  let o = Sim.Metrics.histogram r ~buckets:[ 10 ] "overflow" in
  List.iter (Sim.Metrics.observe o) [ 50; 60; 70 ];
  checkf "overflow bucket reports max" 70.0 (Sim.Metrics.quantile o 0.5);
  checkb "out-of-range q rejected" true
    (match Sim.Metrics.quantile h 1.5 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_metrics_render () =
  checks "plain" "x" (Sim.Metrics.render_name "x" []);
  checks "labelled" {|x{k="v"}|} (Sim.Metrics.render_name "x" [ ("k", "v") ]);
  let r = Sim.Metrics.create () in
  Sim.Metrics.set (Sim.Metrics.counter r "total") 7;
  let t = Sim.Metrics.to_table r in
  checks "table row" "7" (Report.Table.cell t ~row:0 ~col:"value");
  checks "jsonl" "{\"metric\":\"total\",\"value\":\"7\"}\n"
    (Sim.Metrics.to_jsonl r)

let test_observing_sink () =
  let r = Sim.Metrics.create () in
  let sink = Sim.Events.observing r in
  List.iter sink.Sim.Events.emit sample_events;
  checki "kind counter" 2
    (Sim.Metrics.value
       (Sim.Metrics.counter r ~labels:[ ("kind", "exec") ] "events_total"));
  checki "stall histogram" 1
    (Sim.Metrics.observations (Sim.Metrics.histogram r "event_stall_cycles"))

(* ------------------------------------------------------------------ *)
(* Engine equivalence: the streaming sink sees byte-for-byte the same
   event sequence as the back-compat ~log callback, and the metrics do
   not depend on whether anyone is listening. *)

let jsonl_of events =
  String.concat "\n" (List.map Sim.Events.to_json events)

let policies =
  [
    ("on-demand k=4", Core.Policy.on_demand ~k:4);
    ("pre-all", Core.Policy.pre_all ~k:8 ~lookahead:2);
    ( "recompress budget",
      Core.Policy.make ~mode:Core.Policy.Recompress ~compress_k:4 ~budget:96 ()
    );
  ]

let test_engine_equivalence () =
  List.iter
    (fun sc ->
      List.iter
        (fun (pname, policy) ->
          let ctx = sc.Core.Scenario.name ^ " / " ^ pname in
          let via_log = ref [] in
          let m_log =
            Core.Scenario.run ~log:(fun ev -> via_log := ev :: !via_log) sc
              policy
          in
          let c = Sim.Events.collector () in
          let m_sink =
            Core.Scenario.run ~sink:(Sim.Events.collecting c) sc policy
          in
          checks ctx
            (jsonl_of (List.rev !via_log))
            (jsonl_of (Sim.Events.collected c));
          checkb (ctx ^ ": metrics agree") true (m_log = m_sink))
        policies)
    (Workloads.Suite.scenarios ())

(* ------------------------------------------------------------------ *)
(* Constant memory: a million-step Markov walk streamed through the
   counting sink must not grow the heap with the trace. An event list
   at this scale would be tens of millions of words. *)

let test_constant_memory () =
  let graph, _ =
    Trace.Synthetic.hot_cold ~hot_blocks:5 ~cold_blocks:20 ~hot_iters:3
      ~cold_visit_every:11 ()
  in
  let trace = Trace.Synthetic.markov ~seed:7 graph ~length:1_000_000 in
  let sc = Core.Scenario.of_graph ~name:"markov-1M" graph ~trace in
  let policy = Core.Policy.on_demand ~k:2 in
  ignore (Core.Scenario.run sc policy) (* warm-up *);
  let counters = Sim.Events.counters () in
  Gc.compact ();
  let before = (Gc.stat ()).Gc.top_heap_words in
  ignore (Core.Scenario.run ~sink:(Sim.Events.counting counters) sc policy);
  let growth = (Gc.stat ()).Gc.top_heap_words - before in
  checkb "at least a million events" true (Sim.Events.total counters >= 1_000_000);
  checkb
    (Printf.sprintf "constant-memory streaming (top-heap grew %d words)" growth)
    true
    (growth < 500_000)

let () =
  Alcotest.run ~and_exit:false "sim"
    [
      ( "kernel",
        [
          Alcotest.test_case "cost model" `Quick test_cost;
          Alcotest.test_case "device profiles" `Quick test_cost_profiles;
          Alcotest.test_case "coefficient validation" `Quick
            test_cost_validation;
          Alcotest.test_case "charge constructors" `Quick test_cost_charges;
          Alcotest.test_case "accumulator" `Quick test_cost_acc;
          Alcotest.test_case "clock" `Quick test_clock;
          Alcotest.test_case "resource threads" `Quick test_resource;
        ] );
      ( "events",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "json rejects garbage" `Quick
            test_json_rejects_garbage;
          Alcotest.test_case "jsonl file round-trip" `Quick test_file_roundtrip;
          Alcotest.test_case "counting sink" `Quick test_counting_sink;
          Alcotest.test_case "tee + collector" `Quick test_tee_and_collector;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "histograms" `Quick test_metrics_histogram;
          Alcotest.test_case "quantiles" `Quick test_metrics_quantile;
          Alcotest.test_case "rendering" `Quick test_metrics_render;
          Alcotest.test_case "observing sink" `Quick test_observing_sink;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "sink == log on the workload suite" `Slow
            test_engine_equivalence;
          Alcotest.test_case "constant memory at 1M steps" `Slow
            test_constant_memory;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Packed events (appended suite): the struct-of-arrays chunk must be
   a lossless re-encoding of the boxed vocabulary — [get] is the exact
   inverse of the pushers, over every constructor. *)

let event_gen =
  let open QCheck.Gen in
  let id = int_range 0 50_000 in
  let cyc = int_range 0 1_000_000 in
  oneof
    [
      map2 (fun block at -> Sim.Events.Exec { block; at }) id cyc;
      map2 (fun block at -> Sim.Events.Exception { block; at }) id cyc;
      map3
        (fun block at cycles ->
          Sim.Events.Demand_decompress { block; at; cycles })
        id cyc cyc;
      map3
        (fun block at ready_at ->
          Sim.Events.Prefetch_issue { block; at; ready_at })
        id cyc cyc;
      map3 (fun block at cycles -> Sim.Events.Stall { block; at; cycles })
        id cyc cyc;
      map3 (fun target site at -> Sim.Events.Patch { target; site; at })
        id id cyc;
      map3 (fun target site at -> Sim.Events.Unpatch { target; site; at })
        id id cyc;
      map3
        (fun block at (patched_back, wasted) ->
          Sim.Events.Discard { block; at; patched_back; wasted })
        id cyc
        (pair (int_range 0 100) bool);
      map2 (fun block at -> Sim.Events.Evict { block; at }) id cyc;
      map3
        (fun block at done_at ->
          Sim.Events.Recompress_queued { block; at; done_at })
        id cyc cyc;
      map2 (fun at copies -> Sim.Events.Flush { at; copies }) cyc id;
    ]

let events_arb =
  QCheck.make
    ~print:(fun evs ->
      String.concat "\n" (List.map Sim.Events.to_json evs))
    QCheck.Gen.(list_size (int_range 0 200) event_gen)

let prop_packed_roundtrip =
  QCheck.Test.make ~count:300 ~name:"packed get inverts push_event"
    events_arb
    (fun evs ->
      let ch = Sim.Events.Packed.create () in
      List.iter (Sim.Events.Packed.push_event ch) evs;
      let back = ref [] in
      Sim.Events.Packed.iter (fun e -> back := e :: !back) ch;
      List.rev !back = evs
      && Sim.Events.Packed.length ch = List.length evs
      && List.for_all2
           (fun ev i ->
             Sim.Events.Packed.get ch i = ev
             && Sim.Events.Packed.time_at ch i = Sim.Events.time ev
             && List.nth Sim.Events.kinds (Sim.Events.Packed.kind_tag ch i)
                = Sim.Events.kind ev)
           evs
           (List.init (List.length evs) Fun.id))

(* The reserve-then-write plane stores only the fields each kind
   defines; pushing through it with the documented field maps must be
   indistinguishable from [push_event]. *)
let unsafe_push_mapped ch ev =
  let open Sim.Events in
  match ev with
  | Exec { block; at } -> Packed.unsafe_push_ka ch ~kind:0 ~at ~a:block
  | Exception { block; at } -> Packed.unsafe_push_ka ch ~kind:1 ~at ~a:block
  | Demand_decompress { block; at; cycles } ->
    Packed.unsafe_push_kab ch ~kind:2 ~at ~a:block ~b:cycles
  | Prefetch_issue { block; at; ready_at } ->
    Packed.unsafe_push_kab ch ~kind:3 ~at ~a:block ~b:ready_at
  | Stall { block; at; cycles } ->
    Packed.unsafe_push_kab ch ~kind:4 ~at ~a:block ~b:cycles
  | Patch { target; site; at } ->
    Packed.unsafe_push_kab ch ~kind:5 ~at ~a:target ~b:site
  | Unpatch { target; site; at } ->
    Packed.unsafe_push_kab ch ~kind:6 ~at ~a:target ~b:site
  | Discard { block; at; patched_back; wasted } ->
    Packed.unsafe_push_kabc ch ~kind:7 ~at ~a:block ~b:patched_back
      ~c:(if wasted then 1 else 0)
  | Evict { block; at } -> Packed.unsafe_push_ka ch ~kind:8 ~at ~a:block
  | Recompress_queued { block; at; done_at } ->
    Packed.unsafe_push_kab ch ~kind:9 ~at ~a:block ~b:done_at
  | Flush { at; copies } -> Packed.unsafe_push_ka ch ~kind:10 ~at ~a:copies

let prop_packed_unsafe_plane =
  QCheck.Test.make ~count:300 ~name:"unsafe pushers match the field maps"
    events_arb
    (fun evs ->
      let ch = Sim.Events.Packed.create () in
      List.iter
        (fun ev ->
          QCheck.assume (Sim.Events.Packed.room ch > 0);
          unsafe_push_mapped ch ev)
        evs;
      let back = ref [] in
      Sim.Events.Packed.iter (fun e -> back := e :: !back) ch;
      List.rev !back = evs)

let prop_packed_sink_equivalence =
  QCheck.Test.make ~count:200
    ~name:"emit_chunk == iter emit on counting and collecting sinks"
    events_arb
    (fun evs ->
      let ch = Sim.Events.Packed.create () in
      List.iter (Sim.Events.Packed.push_event ch) evs;
      (* counting: tally off tag bytes vs one boxed emit at a time *)
      let by_chunk = Sim.Events.counters () in
      (Sim.Events.counting by_chunk).Sim.Events.emit_chunk ch;
      let one_by_one = Sim.Events.counters () in
      List.iter (Sim.Events.counting one_by_one).Sim.Events.emit evs;
      (* collecting: boxing at the boundary preserves order *)
      let col = Sim.Events.collector () in
      (Sim.Events.collecting col).Sim.Events.emit_chunk ch;
      Sim.Events.counts by_chunk = Sim.Events.counts one_by_one
      && Sim.Events.last_time by_chunk = Sim.Events.last_time one_by_one
      && Sim.Events.collected col = evs)

let test_packed_chunk_basics () =
  let ch = Sim.Events.Packed.create ~capacity:2 () in
  checki "capacity" 2 (Sim.Events.Packed.capacity ch);
  checki "room" 2 (Sim.Events.Packed.room ch);
  checkb "not full" true (not (Sim.Events.Packed.is_full ch));
  Sim.Events.Packed.push_exec ch ~at:1 ~block:0;
  Sim.Events.Packed.push_flush ch ~at:2 ~copies:3;
  checkb "full" true (Sim.Events.Packed.is_full ch);
  checki "no room" 0 (Sim.Events.Packed.room ch);
  Alcotest.check_raises "push on full"
    (Invalid_argument "Sim.Events.Packed.push: chunk full") (fun () ->
      Sim.Events.Packed.push_exec ch ~at:3 ~block:1);
  Sim.Events.Packed.clear ch;
  checki "cleared" 0 (Sim.Events.Packed.length ch);
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Sim.Events.Packed.create: capacity must be positive")
    (fun () -> ignore (Sim.Events.Packed.create ~capacity:0 ()))

let () =
  Alcotest.run "sim-packed"
    [
      ( "packed",
        [
          Alcotest.test_case "chunk basics" `Quick test_packed_chunk_basics;
          QCheck_alcotest.to_alcotest prop_packed_roundtrip;
          QCheck_alcotest.to_alcotest prop_packed_unsafe_plane;
          QCheck_alcotest.to_alcotest prop_packed_sink_equivalence;
        ] );
    ]
