(* End-to-end tests of the executable §5 runtime: real programs run
   from an all-compressed image, with real decompression, relocation,
   branch patching and k-edge deletion — and must still compute the
   right answers. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let run_ok ?k ?codec ?line_size w =
  match
    Runtime.run ?k ?codec ?line_size
      (Eris.Asm.assemble_exn w.Workloads.Common.source)
  with
  | Ok (machine, stats) -> (machine, stats)
  | Error (Runtime.Out_of_fuel _) ->
    Alcotest.failf "%s: out of fuel" w.Workloads.Common.name
  | Error (Runtime.Machine_fault { pc; message; _ }) ->
    Alcotest.failf "%s: fault at %d: %s" w.Workloads.Common.name pc message

(* Every workload must produce its reference checksum when executed
   from compressed memory, for an aggressive and a relaxed k. *)
let correctness_tests =
  List.concat_map
    (fun w ->
      List.map
        (fun k ->
          Alcotest.test_case
            (Printf.sprintf "%s computes correctly (k=%d)"
               w.Workloads.Common.name k)
            `Quick
            (fun () ->
              let machine, stats = run_ok ~k w in
              checki "checksum"
                w.Workloads.Common.expected
                (Eris.Machine.read_word machine w.Workloads.Common.result_addr);
              checkb "really decompressed" true (stats.Runtime.decompressions > 0);
              checkb "really trapped" true (stats.Runtime.traps > 0)))
        [ 1; 8 ])
    Workloads.Suite.all

let test_k_reduces_traps () =
  let w = Workloads.Suite.find_exn "crc32" in
  let _, aggressive = run_ok ~k:1 w in
  let _, relaxed = run_ok ~k:32 w in
  checkb "larger k traps less" true
    (relaxed.Runtime.traps < aggressive.Runtime.traps);
  checkb "larger k deletes less" true
    (relaxed.Runtime.deletions < aggressive.Runtime.deletions);
  checkb "larger k holds more memory" true
    (relaxed.Runtime.peak_copy_bytes >= aggressive.Runtime.peak_copy_bytes)

let test_patching_pays_off () =
  (* A hot loop: after warmup the patched branches bypass the handler,
     so traps must be far rarer than loop iterations. *)
  let result =
    Runtime.run_source ~k:64
      "li r1, 500\nloop: subi r1, r1, 1\nbne r1, r0, loop\nli r2, 0x0FF0\nsw r1, 0(r2)\nhalt"
  in
  match result with
  | Ok (machine, stats) ->
    checki "result" 0 (Eris.Machine.read_word machine 0x0FF0);
    checkb "500 iterations, a handful of traps" true (stats.Runtime.traps < 10);
    checkb "patches recorded" true (stats.Runtime.patches > 0)
  | Error _ -> Alcotest.fail "runtime failed"

let test_dangling_return_reload () =
  (* dct calls a subroutine that runs for many edges; with k=1 the
     caller's copy is deleted while the callee runs, so the return
     address dangles into a retired copy and must be re-routed through
     a reload. Correctness (checked above for k=1) plus: reloads mean
     strictly more decompressions than blocks. *)
  let w = Workloads.Suite.find_exn "dct" in
  let _, stats = run_ok ~k:1 w in
  let blocks =
    Cfg.Graph.num_blocks
      (Cfg.Build.of_program (Eris.Asm.assemble_exn w.Workloads.Common.source))
  in
  checkb "blocks reloaded after deletion" true
    (stats.Runtime.decompressions > blocks)

let test_stats_sanity () =
  let w = Workloads.Suite.find_exn "fir" in
  let machine, stats = run_ok ~k:8 w in
  checkb "instructions counted" true
    (stats.Runtime.instructions = Eris.Machine.instr_count machine);
  checkb "compressed image smaller" true
    (stats.Runtime.compressed_image_bytes < stats.Runtime.original_image_bytes);
  checkb "live <= peak" true
    (stats.Runtime.live_copy_bytes <= stats.Runtime.peak_copy_bytes);
  checkb "every trap at most one decompression" true
    (stats.Runtime.decompressions <= stats.Runtime.traps);
  checkb "deletions leave some copies" true
    (stats.Runtime.live_copy_bytes > 0)

let test_out_of_fuel () =
  match Runtime.run_source ~fuel:50 "loop: j loop" with
  | Error (Runtime.Out_of_fuel stats) ->
    checkb "made progress" true (stats.Runtime.instructions > 0)
  | Ok _ | Error (Runtime.Machine_fault _) ->
    Alcotest.fail "expected out-of-fuel"

let test_wild_jump_faults () =
  match Runtime.run_source "li r1, 0x40000\njalr r0, r1, 0\nhalt" with
  | Error (Runtime.Machine_fault { message; _ }) ->
    checkb "wild pc reported" true (String.length message > 0)
  | Ok _ | Error (Runtime.Out_of_fuel _) -> Alcotest.fail "expected fault"

let test_codec_choice () =
  (* The runtime works with any registered codec, including ones that
     expand blocks (null) — correctness must not depend on ratios. *)
  let w = Workloads.Suite.find_exn "fsm" in
  List.iter
    (fun codec_name ->
      let codec = Compress.Registry.find_exn codec_name in
      let machine, _ = run_ok ~k:4 ~codec w in
      checki
        (Printf.sprintf "checksum under %s" codec_name)
        w.Workloads.Common.expected
        (Eris.Machine.read_word machine w.Workloads.Common.result_addr))
    [ "null"; "rle"; "lzss" ]

(* Compressed-I-cache mode: per-line decompression must not change
   what the program computes, only how decompression work is counted. *)
let test_line_mode_checksums () =
  List.iter
    (fun w ->
      List.iter
        (fun line_size ->
          let machine, stats = run_ok ~k:8 ~line_size w in
          checki
            (Printf.sprintf "%s checksum at %dB lines" w.Workloads.Common.name
               line_size)
            w.Workloads.Common.expected
            (Eris.Machine.read_word machine w.Workloads.Common.result_addr);
          checkb "really decompressed lines" true
            (stats.Runtime.decompressions > 0))
        [ 16; 64 ])
    [ Workloads.Suite.find_exn "fir"; Workloads.Suite.find_exn "fsm" ]

let test_line_mode_counts_lines () =
  (* a block spans several 16-byte lines, so a line-granular run must
     decompress strictly more units than the block-granular one — and
     the executed instruction stream must be identical *)
  let w = Workloads.Suite.find_exn "crc32" in
  let machine_block, block = run_ok ~k:8 w in
  let machine_line, line = run_ok ~k:8 ~line_size:16 w in
  checkb "lines outnumber blocks" true
    (line.Runtime.decompressions > block.Runtime.decompressions);
  checki "same instruction stream"
    (Eris.Machine.instr_count machine_block)
    (Eris.Machine.instr_count machine_line)

let test_line_mode_line_codec () =
  (* the line codec family plugs into the runtime like any other *)
  let w = Workloads.Suite.find_exn "fir" in
  let machine, _ =
    run_ok ~k:8 ~codec:(Compress.Registry.find_exn "cpack-32") ~line_size:32 w
  in
  checki "checksum under cpack-32" w.Workloads.Common.expected
    (Eris.Machine.read_word machine w.Workloads.Common.result_addr)

let test_line_mode_validation () =
  let w = Workloads.Suite.find_exn "fir" in
  Alcotest.check_raises "line_size below 4"
    (Invalid_argument "Residency.Linemap.build: line_size < 4") (fun () ->
      ignore
        (Runtime.run ~line_size:2
           (Eris.Asm.assemble_exn w.Workloads.Common.source)))

(* The runtime and the model (Core.Engine) must agree on the shape:
   runtime trap counts move with k the same way the engine's demand
   decompressions do. *)
let test_runtime_engine_agreement () =
  let w = Workloads.Suite.find_exn "dijkstra" in
  let sc = Workloads.Common.scenario w in
  let engine_demand k =
    (Core.Scenario.run sc (Core.Policy.on_demand ~k)).Core.Metrics
      .demand_decompressions
  in
  let runtime_decs k = (snd (run_ok ~k w)).Runtime.decompressions in
  let e1 = engine_demand 1 and e16 = engine_demand 16 in
  let r1 = runtime_decs 1 and r16 = runtime_decs 16 in
  checkb "both decrease with k" true (e16 < e1 && r16 < r1);
  (* within a factor of two of each other at both ends: the runtime
     counts per-block reloads slightly differently (synthetic jumps,
     mid-block reloads) but the magnitudes must match *)
  let close a b = a * 2 >= b && b * 2 >= a in
  checkb "magnitudes agree at k=1" true (close e1 r1);
  checkb "magnitudes agree at k=16" true (close e16 r16)

let () =
  Alcotest.run "runtime"
    [
      ("correctness", correctness_tests);
      ( "behavior",
        [
          Alcotest.test_case "k reduces traps" `Quick test_k_reduces_traps;
          Alcotest.test_case "patching pays off" `Quick test_patching_pays_off;
          Alcotest.test_case "dangling return reload" `Quick
            test_dangling_return_reload;
          Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
          Alcotest.test_case "out of fuel" `Quick test_out_of_fuel;
          Alcotest.test_case "wild jump faults" `Quick test_wild_jump_faults;
          Alcotest.test_case "codec independence" `Quick test_codec_choice;
          Alcotest.test_case "agrees with the model" `Quick
            test_runtime_engine_agreement;
        ] );
      ( "line-mode",
        [
          Alcotest.test_case "checksums unchanged" `Quick
            test_line_mode_checksums;
          Alcotest.test_case "decompressions count lines" `Quick
            test_line_mode_counts_lines;
          Alcotest.test_case "line codec" `Quick test_line_mode_line_codec;
          Alcotest.test_case "validation" `Quick test_line_mode_validation;
        ] );
    ]
