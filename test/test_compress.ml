(* Tests for the compression substrate: bit IO, every codec's
   roundtrip and corruption behavior, the Huffman model internals and
   the corpus statistics. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let bytes_eq = Alcotest.testable
    (fun ppf b -> Format.fprintf ppf "%S" (Bytes.to_string b))
    Bytes.equal

(* ------------------------------------------------------------------ *)
(* Bit IO                                                              *)

let test_bitio_roundtrip () =
  let w = Compress.Bitio.Writer.create () in
  Compress.Bitio.Writer.add_bits w ~value:0b101 ~bits:3;
  Compress.Bitio.Writer.add_bits w ~value:0xFF ~bits:8;
  Compress.Bitio.Writer.add_bit w false;
  Compress.Bitio.Writer.add_bits w ~value:0 ~bits:0;
  checki "bit length" 12 (Compress.Bitio.Writer.bit_length w);
  let r = Compress.Bitio.Reader.create (Compress.Bitio.Writer.contents w) in
  checki "read 3" 0b101 (Compress.Bitio.Reader.read_bits r 3);
  checki "read 8" 0xFF (Compress.Bitio.Reader.read_bits r 8);
  checkb "read bit" false (Compress.Bitio.Reader.read_bit r)

let test_bitio_msb_first () =
  let w = Compress.Bitio.Writer.create () in
  Compress.Bitio.Writer.add_bits w ~value:0b10000000 ~bits:8;
  checks "msb first byte" "\x80"
    (Bytes.to_string (Compress.Bitio.Writer.contents w))

let test_bitio_padding () =
  let w = Compress.Bitio.Writer.create () in
  Compress.Bitio.Writer.add_bit w true;
  checks "padded with zeros" "\x80"
    (Bytes.to_string (Compress.Bitio.Writer.contents w))

let test_bitio_out_of_bits () =
  let r = Compress.Bitio.Reader.create (Bytes.create 1) in
  ignore (Compress.Bitio.Reader.read_bits r 8);
  checkb "exhausted" true
    (match Compress.Bitio.Reader.read_bit r with
    | _ -> false
    | exception Compress.Codec.Corrupt _ -> true)

let test_bitio_rejects_wide_writes () =
  let w = Compress.Bitio.Writer.create () in
  Alcotest.check_raises "31 bits rejected"
    (Invalid_argument "Bitio.Writer.add_bits") (fun () ->
      Compress.Bitio.Writer.add_bits w ~value:0 ~bits:31)

let test_bitio_bulk_bytes () =
  (* out-of-range slices are caller errors, not Corrupt *)
  let w = Compress.Bitio.Writer.create () in
  Alcotest.check_raises "bad slice"
    (Invalid_argument "Bitio.Writer.write_bytes") (fun () ->
      Compress.Bitio.Writer.write_bytes w (Bytes.of_string "ab") ~pos:1 ~len:2);
  (* an exhausted reader raises Corrupt, not a silent short read *)
  let r = Compress.Bitio.Reader.create (Bytes.of_string "ab") in
  checkb "short read_bytes" true
    (match Compress.Bitio.Reader.read_bytes r 3 with
    | (_ : bytes) -> false
    | exception Compress.Codec.Corrupt _ -> true);
  (* bulk read resumes correctly after it drains the bit accumulator *)
  let w = Compress.Bitio.Writer.create () in
  Compress.Bitio.Writer.write_bytes w (Bytes.of_string "hello world") ~pos:6
    ~len:5;
  let r = Compress.Bitio.Reader.create (Compress.Bitio.Writer.contents w) in
  ignore (Compress.Bitio.Reader.read_bits r 16);
  checks "tail" "rld"
    (Bytes.to_string (Compress.Bitio.Reader.read_bytes r 3))

(* The bulk path must produce the same stream and the same reads as
   the bit-at-a-time path, from aligned and misaligned bit offsets
   alike. *)
let prop_bitio_bulk_equiv =
  QCheck.Test.make ~count:300 ~name:"write_bytes/read_bytes = per-byte bits"
    QCheck.(
      pair (int_range 0 13) (string_of_size Gen.(int_range 0 64)))
    (fun (prefix_bits, body) ->
      let bulk = Compress.Bitio.Writer.create () in
      let slow = Compress.Bitio.Writer.create () in
      for i = 1 to prefix_bits do
        Compress.Bitio.Writer.add_bit bulk (i land 1 = 1);
        Compress.Bitio.Writer.add_bit slow (i land 1 = 1)
      done;
      Compress.Bitio.Writer.write_bytes bulk (Bytes.of_string body) ~pos:0
        ~len:(String.length body);
      String.iter
        (fun c -> Compress.Bitio.Writer.add_bits slow ~value:(Char.code c) ~bits:8)
        body;
      let b = Compress.Bitio.Writer.contents bulk in
      if not (Bytes.equal b (Compress.Bitio.Writer.contents slow)) then false
      else begin
        let r_bulk = Compress.Bitio.Reader.create b in
        let r_slow = Compress.Bitio.Reader.create b in
        for _ = 1 to prefix_bits do
          ignore (Compress.Bitio.Reader.read_bit r_bulk);
          ignore (Compress.Bitio.Reader.read_bit r_slow)
        done;
        let got = Compress.Bitio.Reader.read_bytes r_bulk (String.length body) in
        let slow_bytes =
          Bytes.init (String.length body) (fun _ ->
              Char.chr (Compress.Bitio.Reader.read_bits r_slow 8))
        in
        Bytes.equal got (Bytes.of_string body) && Bytes.equal got slow_bytes
      end)

(* ------------------------------------------------------------------ *)
(* Codec roundtrips                                                    *)

let corpus_cases =
  [
    ("empty", Bytes.create 0);
    ("single", Bytes.of_string "x");
    ("two", Bytes.of_string "ab");
    ("run", Bytes.of_string (String.make 300 'z'));
    ("alternating", Bytes.init 256 (fun i -> if i mod 2 = 0 then 'a' else 'b'));
    ("all-bytes", Bytes.init 256 Char.chr);
    ("code-like", Core.Scenario.synthetic_block_bytes ~id:3 ~size:512);
    ("periodic", Bytes.init 1024 (fun i -> Char.chr (i mod 7 + 65)));
    ( "random",
      let st = Random.State.make [| 17 |] in
      Bytes.init 4096 (fun _ -> Char.chr (Random.State.int st 256)) );
    ( "lzw-reset",
      let st = Random.State.make [| 23 |] in
      Bytes.init 60000 (fun _ -> Char.chr (Random.State.int st 16)) );
  ]

let roundtrip_tests codec =
  List.map
    (fun (case, payload) ->
      Alcotest.test_case
        (Printf.sprintf "%s roundtrip %s" codec.Compress.Codec.name case)
        `Quick
        (fun () ->
          Alcotest.check bytes_eq "roundtrip" payload
            (codec.Compress.Codec.decompress
               (codec.Compress.Codec.compress payload))))
    corpus_cases

let all_roundtrips =
  List.concat_map roundtrip_tests
    (Compress.Registry.all ()
    @ [
        Compress.Registry.shared_huffman
          ~corpus:(Core.Scenario.synthetic_block_bytes ~id:1 ~size:2048);
        Compress.Registry.code_codec
          ~corpus:(Core.Scenario.synthetic_block_bytes ~id:1 ~size:2048);
      ])

let prop_roundtrip codec =
  QCheck.Test.make ~count:300
    ~name:(Printf.sprintf "%s random roundtrip" codec.Compress.Codec.name)
    QCheck.(map Bytes.of_string (string_of_size Gen.(int_range 0 2000)))
    (fun payload -> Compress.Codec.roundtrip_ok codec payload)

let prop_never_expanding =
  QCheck.Test.make ~count:300 ~name:"never_expanding bound"
    QCheck.(map Bytes.of_string (string_of_size Gen.(int_range 0 1000)))
    (fun payload ->
      List.for_all
        (fun codec ->
          Bytes.length (codec.Compress.Codec.compress payload)
          <= Bytes.length payload + 1)
        (Compress.Registry.all ()))

(* ------------------------------------------------------------------ *)
(* Known vectors and corruption                                        *)

let test_rle_known () =
  let c = Compress.Rle.codec in
  (* 5 repeated bytes: control 0x80 + (5-2) then the byte. *)
  checks "run encoding" "\x83a"
    (Bytes.to_string (c.Compress.Codec.compress (Bytes.of_string "aaaaa")));
  (* 3 literals: control 2 then the bytes. *)
  checks "literal encoding" "\x02abc"
    (Bytes.to_string (c.Compress.Codec.compress (Bytes.of_string "abc")))

let expect_corrupt codec payload =
  match codec.Compress.Codec.decompress payload with
  | _ -> false
  | exception Compress.Codec.Corrupt _ -> true

let test_corrupt_inputs () =
  checkb "rle truncated literal" true
    (expect_corrupt Compress.Rle.codec (Bytes.of_string "\x05ab"));
  checkb "rle truncated run" true
    (expect_corrupt Compress.Rle.codec (Bytes.of_string "\x83"));
  checkb "lzss bad back-reference" true
    (expect_corrupt Compress.Lzss.codec (Bytes.of_string "\x00\xFF\xF0"));
  checkb "lzw truncated header" true
    (expect_corrupt Compress.Lzw.codec (Bytes.of_string "ab"));
  checkb "huffman truncated header" true
    (expect_corrupt Compress.Huffman.codec (Bytes.of_string "ab"));
  checkb "huffman truncated table" true
    (expect_corrupt Compress.Huffman.codec (Bytes.of_string "\x10\x00\x00\x00\x05"));
  checkb "never_expanding empty" true
    (expect_corrupt (Compress.Codec.never_expanding Compress.Null.codec)
       (Bytes.create 0));
  checkb "never_expanding bad tag" true
    (expect_corrupt (Compress.Codec.never_expanding Compress.Null.codec)
       (Bytes.of_string "\x07abc"))

let test_lzw_bad_code () =
  (* header says 4 bytes, payload starts with an out-of-range code *)
  let b = Bytes.of_string "\x04\x00\x00\x00\xFF\xF0" in
  checkb "lzw bad first code" true (expect_corrupt Compress.Lzw.codec b)

(* ------------------------------------------------------------------ *)
(* Huffman internals                                                   *)

let test_huffman_code_lengths () =
  let freqs = Array.make 256 0 in
  freqs.(0) <- 100;
  freqs.(1) <- 50;
  freqs.(2) <- 10;
  freqs.(3) <- 10;
  let lengths = Compress.Huffman.code_lengths freqs in
  checki "most frequent shortest" 1 lengths.(0);
  checkb "lengths ordered by frequency" true (lengths.(1) <= lengths.(2));
  checki "absent symbol" 0 lengths.(4);
  (* Kraft equality: sum 2^-l = 1 for a complete Huffman code. *)
  let kraft =
    Array.fold_left
      (fun acc l -> if l > 0 then acc +. (1.0 /. Float.of_int (1 lsl l)) else acc)
      0.0 lengths
  in
  Alcotest.check (Alcotest.float 1e-9) "kraft equality" 1.0 kraft

let test_huffman_single_symbol () =
  let freqs = Array.make 256 0 in
  freqs.(65) <- 42;
  let lengths = Compress.Huffman.code_lengths freqs in
  checki "single symbol gets length 1" 1 lengths.(65);
  let payload = Bytes.of_string (String.make 20 'A') in
  checkb "single-symbol roundtrip" true
    (Compress.Codec.roundtrip_ok Compress.Huffman.codec payload)

let test_huffman_canonical_codes () =
  let lengths = Array.make 256 0 in
  lengths.(10) <- 2;
  lengths.(20) <- 2;
  lengths.(30) <- 2;
  lengths.(40) <- 3;
  lengths.(50) <- 3;
  let codes = Compress.Huffman.canonical_codes lengths in
  checkb "codes increase within length" true (fst codes.(10) < fst codes.(20));
  checkb "length-2 codes are 2 bits" true (snd codes.(10) = 2);
  (* canonical: first length-3 code = (last length-2 code + 1) << 1 *)
  checki "canonical step" ((fst codes.(30) + 1) lsl 1) (fst codes.(40))

let prop_huffman_kraft =
  QCheck.Test.make ~count:300 ~name:"huffman kraft equality on random freqs"
    QCheck.(array_of_size (QCheck.Gen.return 256) (int_range 0 1000))
    (fun freqs ->
      let present = Array.exists (fun f -> f > 0) freqs in
      QCheck.assume present;
      let lengths = Compress.Huffman.code_lengths freqs in
      let nsyms = Array.fold_left (fun a f -> if f > 0 then a + 1 else a) 0 freqs in
      if nsyms = 1 then Array.fold_left max 0 lengths = 1
      else
        let kraft =
          Array.fold_left
            (fun acc l ->
              if l > 0 then acc +. (1.0 /. Float.of_int (1 lsl l)) else acc)
            0.0 lengths
        in
        Float.abs (kraft -. 1.0) < 1e-9)

let test_shared_decodes_only_same_model () =
  let c1 = Compress.Huffman.shared ~corpus:(Bytes.of_string "aaaabbbbcccc") in
  let payload = Bytes.of_string "abcabc" in
  let compressed = c1.Compress.Codec.compress payload in
  checkb "same model ok" true
    (Bytes.equal payload (c1.Compress.Codec.decompress compressed))

let test_positional_beats_global_on_code () =
  (* Word-structured data: positional models should win. *)
  let corpus = Core.Scenario.synthetic_block_bytes ~id:9 ~size:4096 in
  let global = Compress.Huffman.shared ~corpus in
  let positional = Compress.Huffman.shared_positional ~corpus in
  let payload = Core.Scenario.synthetic_block_bytes ~id:9 ~size:512 in
  checkb "positional smaller" true
    (Bytes.length (positional.Compress.Codec.compress payload)
    <= Bytes.length (global.Compress.Codec.compress payload))

let test_shared_rejects_large_blocks () =
  let c = Compress.Huffman.shared ~corpus:(Bytes.of_string "abc") in
  Alcotest.check_raises "64KiB limit"
    (Invalid_argument "Huffman shared codecs handle blocks under 64 KiB")
    (fun () -> ignore (c.Compress.Codec.compress (Bytes.create 70000)))

(* ------------------------------------------------------------------ *)
(* MTF                                                                 *)

let test_mtf_transform () =
  let payload = Bytes.of_string "aaabbbaaa" in
  let t = Compress.Mtf.transform payload in
  checkb "self-inverse" true
    (Bytes.equal payload (Compress.Mtf.untransform t));
  (* after the first 'a', repeats become rank 0 *)
  checki "repeat rank" 0 (Char.code (Bytes.get t 1))

(* ------------------------------------------------------------------ *)
(* Registry & stats                                                    *)

let test_registry () =
  (* six stream codecs + the BDI/CPack line family at 16/32/64 *)
  checki "twelve built-ins" 12 (List.length (Compress.Registry.all ()));
  checkb "find lzss" true (Compress.Registry.find "lzss" <> None);
  checkb "find bdi-32" true (Compress.Registry.find "bdi-32" <> None);
  checkb "find cpack-64" true (Compress.Registry.find "cpack-64" <> None);
  checkb "find unknown" true (Compress.Registry.find "gzip" = None);
  checks "default is lzss" "lzss" Compress.Registry.default.Compress.Codec.name;
  Alcotest.check_raises "find_exn unknown"
    (Invalid_argument "Compress.Registry.find_exn: \"gzip\"") (fun () ->
      ignore (Compress.Registry.find_exn "gzip"))

let test_stats () =
  let blocks =
    [ Bytes.of_string (String.make 100 'a'); Bytes.of_string "xyz"; Bytes.create 0 ]
  in
  let s = Compress.Stats.measure (Compress.Registry.find_exn "rle") blocks in
  checki "nonempty blocks counted" 2 s.Compress.Stats.blocks;
  checki "original bytes" 103 s.Compress.Stats.original_bytes;
  checkb "ratio sane" true (s.Compress.Stats.ratio > 0.0);
  checkb "best <= worst" true
    (s.Compress.Stats.best_block_ratio <= s.Compress.Stats.worst_block_ratio)

let test_throughput_zero_min_time () =
  (* a run too fast for the clock must still report finite rates *)
  let tp =
    Compress.Stats.throughput ~min_time_s:0.0
      (Compress.Registry.find_exn "null")
      [ Bytes.create 16 ]
  in
  checkb "comp finite" true (Float.is_finite tp.Compress.Stats.comp_mbps);
  checkb "dec finite" true (Float.is_finite tp.Compress.Stats.dec_mbps);
  checkb "comp positive" true (tp.Compress.Stats.comp_mbps > 0.0);
  checkb "dec positive" true (tp.Compress.Stats.dec_mbps > 0.0)

let test_codec_helpers () =
  let c = Compress.Registry.find_exn "rle" in
  let payload = Bytes.of_string (String.make 64 'q') in
  checkb "ratio below 1 on runs" true (Compress.Codec.ratio c payload < 1.0);
  checki "compressed_size consistent"
    (Bytes.length (c.Compress.Codec.compress payload))
    (Compress.Codec.compressed_size c payload);
  checkb "roundtrip_ok" true (Compress.Codec.roundtrip_ok c payload)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run ~and_exit:false "compress"
    [
      ( "bitio",
        [
          Alcotest.test_case "roundtrip" `Quick test_bitio_roundtrip;
          Alcotest.test_case "msb first" `Quick test_bitio_msb_first;
          Alcotest.test_case "padding" `Quick test_bitio_padding;
          Alcotest.test_case "out of bits" `Quick test_bitio_out_of_bits;
          Alcotest.test_case "wide writes rejected" `Quick
            test_bitio_rejects_wide_writes;
          Alcotest.test_case "bulk bytes" `Quick test_bitio_bulk_bytes;
          qcheck prop_bitio_bulk_equiv;
        ] );
      ("roundtrips", all_roundtrips);
      ( "random-roundtrips",
        List.map (fun c -> qcheck (prop_roundtrip c)) (Compress.Registry.all ())
        @ [ qcheck prop_never_expanding ] );
      ( "corruption",
        [
          Alcotest.test_case "rle known vectors" `Quick test_rle_known;
          Alcotest.test_case "corrupt inputs" `Quick test_corrupt_inputs;
          Alcotest.test_case "lzw bad code" `Quick test_lzw_bad_code;
        ] );
      ( "huffman",
        [
          Alcotest.test_case "code lengths" `Quick test_huffman_code_lengths;
          Alcotest.test_case "single symbol" `Quick test_huffman_single_symbol;
          Alcotest.test_case "canonical codes" `Quick
            test_huffman_canonical_codes;
          Alcotest.test_case "shared model" `Quick
            test_shared_decodes_only_same_model;
          Alcotest.test_case "positional beats global on code" `Quick
            test_positional_beats_global_on_code;
          Alcotest.test_case "shared block size limit" `Quick
            test_shared_rejects_large_blocks;
          qcheck prop_huffman_kraft;
        ] );
      ("mtf", [ Alcotest.test_case "transform" `Quick test_mtf_transform ]);
      ( "registry",
        [
          Alcotest.test_case "lookup" `Quick test_registry;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "throughput zero min-time" `Quick
            test_throughput_zero_min_time;
          Alcotest.test_case "codec helpers" `Quick test_codec_helpers;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Instruction dictionary (appended suite)                             *)

let code_corpus = Core.Scenario.synthetic_block_bytes ~id:11 ~size:2048

let test_dict_roundtrip () =
  let c = Compress.Dict.shared ~corpus:code_corpus in
  List.iter
    (fun size ->
      let payload = Core.Scenario.synthetic_block_bytes ~id:11 ~size in
      checkb
        (Printf.sprintf "dict roundtrip %dB" size)
        true
        (Compress.Codec.roundtrip_ok c payload))
    [ 0; 4; 64; 512; 2048 ];
  (* non-word-aligned tail *)
  let odd = Bytes.of_string "abcdefg" in
  checkb "dict odd length" true (Compress.Codec.roundtrip_ok c odd)

let test_dict_compresses_repeats () =
  let c = Compress.Dict.shared ~corpus:code_corpus in
  let payload = Core.Scenario.synthetic_block_bytes ~id:11 ~size:512 in
  checkb "dict compresses its corpus" true
    (Compress.Codec.ratio c payload < 0.8)

let test_dict_dictionary () =
  let words = Compress.Dict.dictionary_words ~corpus:code_corpus in
  checkb "dictionary nonempty" true (words <> []);
  checkb "bounded" true (List.length words <= 254);
  checkb "unique" true
    (List.length (List.sort_uniq compare words) = List.length words)

let test_dict_corrupt () =
  let c = Compress.Dict.shared ~corpus:code_corpus in
  checkb "truncated header" true
    (expect_corrupt c (Bytes.of_string "a"));
  checkb "truncated body" true
    (expect_corrupt c (Bytes.of_string "\x08\x00\xFF"));
  (* index beyond table: dictionary of this corpus has < 250 entries *)
  let words = List.length (Compress.Dict.dictionary_words ~corpus:code_corpus) in
  if words < 250 then
    checkb "bad index" true (expect_corrupt c (Bytes.of_string "\x04\x00\xFA"))

let test_registry_shared_all () =
  checki "three shared codecs" 3
    (List.length (Compress.Registry.shared_all ~corpus:code_corpus));
  let d = Compress.Registry.dict_codec ~corpus:code_corpus in
  checks "dict name" "dict" d.Compress.Codec.name

let () =
  Alcotest.run ~and_exit:false "compress-dict"
    [
      ( "dict",
        [
          Alcotest.test_case "roundtrip" `Quick test_dict_roundtrip;
          Alcotest.test_case "compresses repeats" `Quick
            test_dict_compresses_repeats;
          Alcotest.test_case "dictionary contents" `Quick test_dict_dictionary;
          Alcotest.test_case "corruption" `Quick test_dict_corrupt;
          Alcotest.test_case "registry" `Quick test_registry_shared_all;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Golden vectors (appended suite)                                     *)

(* Exact compressed bytes for every codec over a fixed input set,
   pinned when the kernels were rewritten for speed: any wire-format
   drift — a different match emitted by LZSS, a reordered canonical
   code — fails here even though the roundtrip tests still pass.
   Outputs up to 64 bytes are pinned as hex; larger ones by length and
   MD5. Regenerate only for a deliberate, versioned format change. *)

let golden_inputs =
  [
    ("abc", Bytes.of_string "abc");
    ("run", Bytes.of_string (String.make 300 'z'));
    ("alternating", Bytes.init 256 (fun i -> if i mod 2 = 0 then 'a' else 'b'));
    ("all-bytes", Bytes.init 256 Char.chr);
    ("code-512", Core.Scenario.synthetic_block_bytes ~id:3 ~size:512);
    ("code-4096", Core.Scenario.synthetic_block_bytes ~id:7 ~size:4096);
  ]

let golden_corpus = Core.Scenario.synthetic_block_bytes ~id:11 ~size:2048

let golden_codecs =
  [
    Compress.Null.codec;
    Compress.Rle.codec;
    Compress.Huffman.codec;
    Compress.Lzss.codec;
    Compress.Lzw.codec;
    Compress.Mtf.codec;
    Compress.Huffman.shared ~corpus:golden_corpus;
    Compress.Huffman.shared_positional ~corpus:golden_corpus;
    Compress.Dict.shared ~corpus:golden_corpus;
  ]

(* codec|input|length|md5|hex (hex is "-" above 64 bytes) *)
let golden_table =
  {golden|
null|abc|3|900150983cd24fb0d6963f7d28e17f72|616263
null|run|300|62a457719101124d52a9c4fe5211f52a|-
null|alternating|256|c4de8dae8de92d7257bb29eb1f1b10ec|-
null|all-bytes|256|e2c865db4162bed963bfaa9ef6ac18f0|-
null|code-512|512|ff7e50ace566fff51d862aeffaa6e943|-
null|code-4096|4096|5d9896dcec5557148124753e287f3f87|-
rle|abc|4|9887647ac98ea75eddd5f7e5ddf3f316|02616263
rle|run|6|37057e8d99075df58b4d15fdeb6b5645|ff7aff7aa87a
rle|alternating|258|867f5c89e9f129b00adf73a625461eeb|-
rle|all-bytes|258|7be0620184cc49040955e0965d9478e5|-
rle|code-512|516|18d3584429071fc3a898bb53d65b77cf|-
rle|code-4096|4128|1e3252efed17f9cf39542fc5e28b4fa7|-
huffman|abc|12|6f1330bdc2e632c47f56cb0b48dec659|0300000002610262026301b0
huffman|run|45|fff7020f49ce06dd9db6d6f99200c5ae|2c010000007a010000000000000000000000000000000000000000000000000000000000000000000000000000
huffman|alternating|41|f3300491c68f93eff649872361869195|0001000001610162015555555555555555555555555555555555555555555555555555555555555555
huffman|all-bytes|773|8343f0fefc22c2f42aac66407dfe90c9|-
huffman|code-512|339|1fc6eb439e4f361372318ef27078fd1a|-
huffman|code-4096|2294|38a0aca53f4b5cc61723f46c6e2eae6b|-
lzss|abc|4|3a618a48bf04b0de5aa9692dba23c7c2|e0616263
lzss|run|38|d1ac0f0a42325d66cffd362736e03070|807a000f000f000f000f000f000f000f00000f000f000f000f000f000f000f000f00000f0008
lzss|alternating|35|93709c6dfc73ac3aed345d3cf2bff5ef|c06162001f001f001f001f001f001f00001f001f001f001f001f001f001f001fc06162
lzss|all-bytes|288|18575ab282babf3ade33df9eb5bffec1|-
lzss|code-512|223|59570d38a320137dedaae8243e0b3fd1|-
lzss|code-4096|1274|6baf663bb3be520a814844deff2aa298|-
lzw|abc|9|5a1dc13a635659b523e9b46e428e6dfd|030000000610620630
lzw|run|40|83599d0060e6768b7b2fea1790f273ae|2c01000007a10010110210310410510610710810910a10b10c10d10e10f110111112113114115116
lzw|alternating|51|3338cd813c21753503b12aa3650e1014|0001000006106210010210110410310610510810710a10910c10b10e10d11010f11211111411311611511811711a11911c11b0
lzw|all-bytes|388|30fe2f0b44121b446a0f0eeda98cef58|-
lzw|code-512|292|931d1630783df0d6883b2d94e5a010d0|-
lzw|code-4096|1512|369f836518e063505e34a3ab06977be8|-
mtf-rle|abc|4|9887647ac98ea75eddd5f7e5ddf3f316|02616263
mtf-rle|run|8|8aae5bf71b9e5402e0445849b28b4a52|007aff00ff00a700
mtf-rle|alternating|7|cd960e6e0b03ce0c80286b0e4c332f00|016162ff01fb01
mtf-rle|all-bytes|258|7be0620184cc49040955e0965d9478e5|-
mtf-rle|code-512|449|ae75936b3fbb8b50b07ffa038ae23323|-
mtf-rle|code-4096|3690|23ab91e2553b29c0eb6c736dbd5ab702|-
huffman-shared|abc|10|a877d7f7ad9a6a0c31b79d4f9e0ffa8e|0300fff83fff0bffe180
huffman-shared|run|715|362468f5e01ed58170a027c64b0ea221|-
huffman-shared|alternating|610|e5f3753d56444c06013e2e75e9b08b45|-
huffman-shared|all-bytes|516|4856d1f23eb8b0d91c36fb3fd3c7e853|-
huffman-shared|code-512|820|cd2ebf715017c015e5141edf2ac865db|-
huffman-shared|code-4096|6641|40300ad253ac7784ba773dcf6c14c580|-
huffman-positional|abc|8|73058395d7d3624105ec76dd609306e0|0300f69f6bffed00
huffman-positional|run|481|bf7c44632a75639082bb5c12927f3af2|-
huffman-positional|alternating|410|8e18dcdb9a7f42d25d8a82313f91dd26|-
huffman-positional|all-bytes|402|10d75d26c3bb8b7994e6c33b8f73950a|-
huffman-positional|code-512|643|291ae6623c57bf86a8d19a7a7496ad24|-
huffman-positional|code-4096|5138|3f71fa6dd6229432ea88536692f3f1e8|-
dict|abc|5|cf5c380e975feeadfe315a050cd8234e|0300616263
dict|run|377|4e3a2512c789c447366bfff49877e34e|-
dict|alternating|322|b42f7dbd6e73d0cded89525ef36e6d87|-
dict|all-bytes|322|32e15b9b303104ecbc06bb82bff0b59a|-
dict|code-512|642|d698ca7928217387806507dd0dedde80|-
dict|code-4096|5122|7794497bb842df63e7c4088414e2a9e8|-
|golden}

let hex_of_bytes b =
  let buf = Buffer.create (Bytes.length b * 2) in
  Bytes.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
    b;
  Buffer.contents buf

let test_golden_vectors () =
  let rows =
    String.split_on_char '\n' golden_table
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun l ->
           match String.split_on_char '|' (String.trim l) with
           | [ codec; input; len; md5; hex ] ->
             (codec, input, int_of_string len, md5, hex)
           | _ -> Alcotest.failf "bad golden row %S" l)
  in
  checki "full cross product"
    (List.length golden_codecs * List.length golden_inputs)
    (List.length rows);
  List.iter
    (fun (codec_name, input_name, len, md5, hex) ->
      let codec =
        List.find
          (fun c -> c.Compress.Codec.name = codec_name)
          golden_codecs
      in
      let payload = List.assoc input_name golden_inputs in
      let z = codec.Compress.Codec.compress payload in
      let what field =
        Printf.sprintf "%s on %s: %s" codec_name input_name field
      in
      checki (what "length") len (Bytes.length z);
      checks (what "md5") md5 (Digest.to_hex (Digest.bytes z));
      if hex <> "-" then checks (what "bytes") hex (hex_of_bytes z))
    rows

(* ------------------------------------------------------------------ *)
(* Adversarial decompression                                           *)

(* Decompressors must classify every input as valid or Corrupt; any
   other exception (Invalid_argument from a Bytes bound, Not_found,
   Failure) means attacker-controlled lengths or indices reached an
   unchecked operation. Fuzz each codec with bit flips and truncations
   of genuine compressed outputs — mutations that keep most of the
   framing plausible — plus unstructured random bytes. *)

let fuzz_payloads =
  [
    Core.Scenario.synthetic_block_bytes ~id:3 ~size:512;
    Bytes.of_string (String.make 300 'z');
    (let st = Random.State.make [| 91 |] in
     Bytes.init 1024 (fun _ -> Char.chr (Random.State.int st 256)));
  ]

let decompress_total codec b =
  match codec.Compress.Codec.decompress b with
  | (_ : bytes) -> ()
  | exception Compress.Codec.Corrupt _ -> ()
  | exception e ->
    Alcotest.failf "%s leaked %s on %d-byte input %s..."
      codec.Compress.Codec.name (Printexc.to_string e) (Bytes.length b)
      (String.sub (hex_of_bytes b) 0 (min 48 (2 * Bytes.length b)))

let fuzz_codec codec =
  let st = Random.State.make [| 0x5EED; Hashtbl.hash codec.Compress.Codec.name |] in
  List.iter
    (fun payload ->
      let z = codec.Compress.Codec.compress payload in
      let n = Bytes.length z in
      (* bit flips: 1..4 flipped bits per trial *)
      for _ = 1 to 300 do
        let m = Bytes.copy z in
        for _ = 0 to Random.State.int st 4 do
          let i = Random.State.int st n in
          let bit = 1 lsl Random.State.int st 8 in
          Bytes.set m i (Char.chr (Char.code (Bytes.get m i) lxor bit))
        done;
        decompress_total codec m
      done;
      (* truncations, including the empty prefix *)
      for _ = 1 to 100 do
        decompress_total codec (Bytes.sub z 0 (Random.State.int st n))
      done;
      (* truncate and flip *)
      for _ = 1 to 100 do
        let k = 1 + Random.State.int st n in
        let m = Bytes.sub z 0 k in
        let i = Random.State.int st k in
        Bytes.set m i (Char.chr (Char.code (Bytes.get m i) lxor 0xFF));
        decompress_total codec m
      done)
    fuzz_payloads;
  (* unstructured random input *)
  for _ = 1 to 300 do
    let b =
      Bytes.init (Random.State.int st 200) (fun _ ->
          Char.chr (Random.State.int st 256))
    in
    decompress_total codec b
  done

let fuzz_tests =
  List.map
    (fun codec ->
      Alcotest.test_case
        (Printf.sprintf "fuzz %s" codec.Compress.Codec.name)
        `Quick
        (fun () -> fuzz_codec codec))
    (Compress.Registry.all ()
    @ Compress.Registry.shared_all ~corpus:golden_corpus)

(* ------------------------------------------------------------------ *)
(* Bitio reader API (appended suite)                                   *)

let test_bitio_rejects_wide_reads () =
  let r = Compress.Bitio.Reader.create (Bytes.create 8) in
  Alcotest.check_raises "31 bits rejected"
    (Invalid_argument "Bitio.Reader.read_bits") (fun () ->
      ignore (Compress.Bitio.Reader.read_bits r 31));
  Alcotest.check_raises "negative width rejected"
    (Invalid_argument "Bitio.Reader.read_bits") (fun () ->
      ignore (Compress.Bitio.Reader.read_bits r (-1)))

let test_bitio_peek_consume () =
  let open Compress.Bitio in
  let w = Writer.create () in
  Writer.add_bits w ~value:0xA5 ~bits:8;
  Writer.add_bits w ~value:0x3 ~bits:2;
  let r = Reader.create (Writer.contents w) in
  checki "peek does not consume" 0xA5 (Reader.peek r 8);
  checki "peek again" 0xA5 (Reader.peek r 8);
  Reader.consume r 4;
  checki "peek after consume" 0x5 (Reader.peek r 4);
  checki "read_bits" 0x5 (Reader.read_bits r 4);
  (* 8 of 16 real bits consumed; the tail byte is 11000000 *)
  checki "peek tail" 0xC0 (Reader.peek r 8);
  Reader.consume r 8;
  checki "exhausted peek zero-pads" 0 (Reader.peek r 4);
  checkb "consume past end" true
    (match Reader.consume r 1 with
    | () -> false
    | exception Compress.Codec.Corrupt _ -> true)

let test_bitio_reader_offset () =
  let open Compress.Bitio in
  let r = Reader.create ~pos:1 (Bytes.of_string "\xFF\x80") in
  checki "starts at offset" 0x80 (Reader.read_bits r 8);
  checki "only the suffix" 0 (Reader.bits_left r);
  Alcotest.check_raises "pos beyond end rejected"
    (Invalid_argument "Bitio.Reader.create") (fun () ->
      ignore (Reader.create ~pos:3 (Bytes.of_string "ab")))

let () =
  Alcotest.run ~and_exit:false "compress-kernels"
    [
      ( "golden",
        [ Alcotest.test_case "pinned vectors" `Quick test_golden_vectors ] );
      ("adversarial", fuzz_tests);
      ( "bitio-reader",
        [
          Alcotest.test_case "wide reads rejected" `Quick
            test_bitio_rejects_wide_reads;
          Alcotest.test_case "peek/consume" `Quick test_bitio_peek_consume;
          Alcotest.test_case "reader offset" `Quick test_bitio_reader_offset;
        ] );
    ]
