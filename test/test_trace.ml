(* Tests for trace generation and serialization. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let strongly_connected () =
  Cfg.Graph.synthetic 4 [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 0); (2, 0) ]

let test_markov_validity () =
  let g = strongly_connected () in
  let t = Trace.Synthetic.markov g ~length:500 in
  checki "length" 500 (Array.length t);
  checkb "valid trace" true (Cfg.Graph.validate_trace g t = Ok ())

let test_markov_deterministic_seed () =
  let g = strongly_connected () in
  let a = Trace.Synthetic.markov ~seed:5 g ~length:100 in
  let b = Trace.Synthetic.markov ~seed:5 g ~length:100 in
  let c = Trace.Synthetic.markov ~seed:6 g ~length:100 in
  checkb "same seed same walk" true (a = b);
  checkb "different seed differs" true (a <> c)

let test_markov_weights () =
  (* A split where one arm gets weight 9 and the other 1: the heavy
     arm must be taken far more often. *)
  let g = Cfg.Graph.synthetic 4 [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 0) ] in
  let weight ~src ~dst =
    if src = 0 && dst = 1 then 9.0
    else if src = 0 && dst = 2 then 1.0
    else 1.0
  in
  let t = Trace.Synthetic.markov ~seed:11 ~weight g ~length:4000 in
  let count b = Array.fold_left (fun a x -> if x = b then a + 1 else a) 0 t in
  checkb "heavy arm dominates" true (count 1 > 3 * count 2)

let test_markov_zero_weights_fall_back () =
  let g = Cfg.Graph.synthetic 2 [ (0, 1); (1, 0) ] in
  let t =
    Trace.Synthetic.markov ~weight:(fun ~src:_ ~dst:_ -> 0.0) g ~length:50
  in
  checki "still walks" 50 (Array.length t)

let test_markov_restart_at_exit () =
  let g = Cfg.Graph.synthetic 2 [ (0, 1) ] in
  let t = Trace.Synthetic.markov g ~length:6 in
  checkb "alternates through restart" true (t = [| 0; 1; 0; 1; 0; 1 |])

let test_markov_errors () =
  let g = strongly_connected () in
  Alcotest.check_raises "negative length"
    (Invalid_argument "Trace.Synthetic.markov: negative length") (fun () ->
      ignore (Trace.Synthetic.markov g ~length:(-1)))

let test_loop_nest () =
  let g, t = Trace.Synthetic.loop_nest ~levels:2 ~iters:[| 3; 4 |] in
  checki "blocks" 6 (Cfg.Graph.num_blocks g);
  checkb "valid trace" true (Cfg.Graph.validate_trace g t = Ok ());
  (* inner body executes 3*4 times *)
  let inner_body = 4 in
  let count b = Array.fold_left (fun a x -> if x = b then a + 1 else a) 0 t in
  checki "inner body visits" 12 (count inner_body);
  checki "outer body visits" 3 (count 1);
  (* ends at the outermost exit *)
  checki "ends at exit" 2 t.(Array.length t - 1)

let test_loop_nest_errors () =
  Alcotest.check_raises "iters mismatch"
    (Invalid_argument "Trace.Synthetic.loop_nest: iters length mismatch")
    (fun () -> ignore (Trace.Synthetic.loop_nest ~levels:2 ~iters:[| 3 |]))

let test_hot_cold () =
  let g, t =
    Trace.Synthetic.hot_cold ~hot_blocks:4 ~cold_blocks:6 ~hot_iters:50
      ~cold_visit_every:10 ()
  in
  checki "blocks" 10 (Cfg.Graph.num_blocks g);
  checkb "valid trace" true (Cfg.Graph.validate_trace g t = Ok ());
  let count b = Array.fold_left (fun a x -> if x = b then a + 1 else a) 0 t in
  checki "cold chain entered 5 times" 5 (count 4);
  checkb "hot dominates" true (count 0 > count 4)

let test_diamond_chain () =
  let g = Trace.Synthetic.diamond_chain ~diamonds:3 in
  checki "blocks" 10 (Cfg.Graph.num_blocks g);
  Alcotest.check
    Alcotest.(list int)
    "split successors" [ 1; 2 ] (Cfg.Graph.succ_ids g 0);
  Alcotest.check Alcotest.(list int) "exit" [ 9 ] (Cfg.Graph.exits g)

let test_io_roundtrip () =
  let t = [| 0; 5; 3; 3; 1; 0 |] in
  match Trace.Io.of_string (Trace.Io.to_string t) with
  | Ok t' -> checkb "roundtrip" true (t = t')
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg

let test_io_empty () =
  match Trace.Io.of_string (Trace.Io.to_string [||]) with
  | Ok t -> checki "empty roundtrip" 0 (Array.length t)
  | Error msg -> Alcotest.failf "empty roundtrip failed: %s" msg

let test_io_errors () =
  checkb "bad header" true (Result.is_error (Trace.Io.of_string "nope\n1\n"));
  checkb "bad line" true
    (Result.is_error (Trace.Io.of_string "ccomp-trace 1\nxyz\n"));
  checkb "empty input" true (Result.is_error (Trace.Io.of_string ""))

let test_io_crlf () =
  (* Windows line endings and trailing blank lines both parse. *)
  (match Trace.Io.of_string "ccomp-trace 1\r\n0\r\n5\r\n3\r\n\r\n\r\n" with
  | Ok t -> checkb "crlf" true (t = [| 0; 5; 3 |])
  | Error msg -> Alcotest.failf "crlf parse failed: %s" msg);
  (match Trace.Io.of_string "ccomp-trace 1\n1\n2\n\n\n" with
  | Ok t -> checkb "trailing blanks" true (t = [| 1; 2 |])
  | Error msg -> Alcotest.failf "trailing-blank parse failed: %s" msg);
  match Trace.Io.of_string "ccomp-trace 1\r\n" with
  | Ok t -> checki "crlf header only" 0 (Array.length t)
  | Error msg -> Alcotest.failf "crlf header-only parse failed: %s" msg

let test_io_file () =
  let path = Filename.temp_file "ccomp" ".trace" in
  let t = Array.init 100 (fun i -> i mod 7) in
  Trace.Io.save path t;
  (match Trace.Io.load path with
  | Ok t' -> checkb "file roundtrip" true (t = t')
  | Error msg -> Alcotest.failf "load failed: %s" msg);
  Sys.remove path;
  checkb "missing file" true (Result.is_error (Trace.Io.load path))

let () =
  Alcotest.run ~and_exit:false "trace"
    [
      ( "markov",
        [
          Alcotest.test_case "validity" `Quick test_markov_validity;
          Alcotest.test_case "seeding" `Quick test_markov_deterministic_seed;
          Alcotest.test_case "weights" `Quick test_markov_weights;
          Alcotest.test_case "zero weights" `Quick
            test_markov_zero_weights_fall_back;
          Alcotest.test_case "restart at exit" `Quick test_markov_restart_at_exit;
          Alcotest.test_case "errors" `Quick test_markov_errors;
        ] );
      ( "generators",
        [
          Alcotest.test_case "loop nest" `Quick test_loop_nest;
          Alcotest.test_case "loop nest errors" `Quick test_loop_nest_errors;
          Alcotest.test_case "hot/cold" `Quick test_hot_cold;
          Alcotest.test_case "diamond chain" `Quick test_diamond_chain;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "empty" `Quick test_io_empty;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "crlf tolerance" `Quick test_io_crlf;
          Alcotest.test_case "files" `Quick test_io_file;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Analysis (appended suite)                                           *)

let test_reuse_distances () =
  let trace = [| 0; 1; 0; 1; 0; 2 |] in
  let ds = Trace.Analysis.reuse_distances ~blocks:3 trace in
  Alcotest.check Alcotest.(list int) "block 0" [ 2; 2 ] ds.(0);
  Alcotest.check Alcotest.(list int) "block 1" [ 2 ] ds.(1);
  Alcotest.check Alcotest.(list int) "block 2 never reused" [] ds.(2);
  Alcotest.check Alcotest.(list int) "all sorted" [ 2; 2; 2 ]
    (Trace.Analysis.all_reuse_distances ~blocks:3 trace)

let test_percentile () =
  checkb "median" true (Trace.Analysis.percentile 0.5 [ 1; 2; 3; 4 ] = Some 3);
  checkb "p0" true (Trace.Analysis.percentile 0.0 [ 1; 2; 3 ] = Some 1);
  checkb "p1 clamps" true (Trace.Analysis.percentile 1.0 [ 1; 2; 3 ] = Some 3);
  checkb "empty" true (Trace.Analysis.percentile 0.5 [] = None);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Trace.Analysis.percentile") (fun () ->
      ignore (Trace.Analysis.percentile 1.5 [ 1 ]))

let test_survival_fraction () =
  let trace = [| 0; 1; 0; 2; 2 |] in
  (* distances: 0 reused at 2; 2 reused at 1 *)
  Alcotest.check (Alcotest.float 1e-9) "k=1 catches half" 0.5
    (Trace.Analysis.survival_fraction ~blocks:3 trace ~k:1);
  Alcotest.check (Alcotest.float 1e-9) "k=2 catches all" 1.0
    (Trace.Analysis.survival_fraction ~blocks:3 trace ~k:2);
  Alcotest.check (Alcotest.float 1e-9) "no reuse" 1.0
    (Trace.Analysis.survival_fraction ~blocks:3 [| 0; 1; 2 |] ~k:1)

let test_working_set () =
  let trace = [| 0; 0; 1; 1; 2; 3 |] in
  Alcotest.check
    Alcotest.(array int)
    "windows of 2" [| 1; 1; 2 |]
    (Trace.Analysis.working_set_sizes trace ~window:2);
  checki "distinct" 4 (Trace.Analysis.distinct_blocks trace);
  Alcotest.check_raises "bad window"
    (Invalid_argument "Trace.Analysis.working_set_sizes") (fun () ->
      ignore (Trace.Analysis.working_set_sizes trace ~window:0))

let test_summary_renders () =
  let g, trace = Trace.Synthetic.loop_nest ~levels:2 ~iters:[| 4; 4 |] in
  let s =
    Format.asprintf "%a"
      (Trace.Analysis.pp_summary ~blocks:(Cfg.Graph.num_blocks g))
      trace
  in
  checkb "mentions hit rate" true (String.length s > 40)

(* The survival fraction at k predicts the engine's demand-miss rate
   shape: higher k must never lower it. *)
let prop_survival_monotone =
  QCheck.Test.make ~count:200 ~name:"survival fraction monotone in k"
    QCheck.(pair (int_range 0 500) (int_range 2 8))
    (fun (seed, blocks) ->
      let ring = List.init blocks (fun i -> (i, (i + 1) mod blocks)) in
      let g = Cfg.Graph.synthetic blocks ((0, blocks / 2) :: ring) in
      let trace = Trace.Synthetic.markov ~seed g ~length:200 in
      let f k = Trace.Analysis.survival_fraction ~blocks trace ~k in
      f 1 <= f 2 +. 1e-9 && f 2 <= f 4 +. 1e-9 && f 4 <= f 8 +. 1e-9)

let () =
  Alcotest.run ~and_exit:false "trace-analysis"
    [
      ( "analysis",
        [
          Alcotest.test_case "reuse distances" `Quick test_reuse_distances;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "survival fraction" `Quick test_survival_fraction;
          Alcotest.test_case "working set" `Quick test_working_set;
          Alcotest.test_case "summary" `Quick test_summary_renders;
          QCheck_alcotest.to_alcotest prop_survival_monotone;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Binary format (appended suite)                                      *)

(* Block ids in practice are small non-negatives, but the container
   must round-trip any int the delta coder can see — including
   negatives and large magnitudes that exercise multi-byte varints. *)
let ids_gen =
  QCheck.(
    list
      (oneof
         [
           int_range 0 64;
           int_range (-1000) 1000;
           int_range (-1_000_000_000) 1_000_000_000;
         ]))

let roundtrip_prop ~lzss (ids, frame) =
  let ids = Array.of_list ids in
  match Trace.Binary.decode (Trace.Binary.encode ~lzss ~frame ids) with
  | Ok ids' -> ids' = ids
  | Error _ -> false

let prop_binary_roundtrip =
  QCheck.Test.make ~count:300 ~name:"binary round-trip (plain)"
    QCheck.(pair ids_gen (int_range 1 64))
    (roundtrip_prop ~lzss:false)

let prop_binary_roundtrip_lzss =
  QCheck.Test.make ~count:300 ~name:"binary round-trip (lzss)"
    QCheck.(pair ids_gen (int_range 1 64))
    (roundtrip_prop ~lzss:true)

(* Any strict prefix of a valid encoding must decode to [Error] —
   never raise, loop, or silently return a short array. *)
let prop_binary_truncation =
  QCheck.Test.make ~count:300 ~name:"truncation is always Error"
    QCheck.(triple ids_gen bool small_nat)
    (fun (ids, lzss, cut) ->
      let enc = Trace.Binary.encode ~lzss ~frame:16 (Array.of_list ids) in
      let cut = cut mod String.length enc in
      Result.is_error (Trace.Binary.decode (String.sub enc 0 cut)))

(* A single bit flip must either be rejected or land on a bit the
   decoder provably ignores (yielding the identical array) — it can
   never corrupt data silently. *)
let prop_binary_bitflip =
  QCheck.Test.make ~count:500 ~name:"bit flip is Error or harmless"
    QCheck.(triple ids_gen small_nat (int_range 0 7))
    (fun (ids, pos, bit) ->
      let ids = Array.of_list ids in
      let enc = Trace.Binary.encode ~lzss:true ~frame:16 ids in
      let pos = pos mod String.length enc in
      let buf = Bytes.of_string enc in
      Bytes.set buf pos
        (Char.chr (Char.code (Bytes.get buf pos) lxor (1 lsl bit)));
      match Trace.Binary.decode (Bytes.to_string buf) with
      | Error _ -> true
      | Ok ids' -> ids' = ids)

let test_binary_empty () =
  let enc = Trace.Binary.encode [||] in
  checkb "magic" true (Trace.Binary.is_binary enc);
  match Trace.Binary.decode enc with
  | Ok t -> checki "empty roundtrip" 0 (Array.length t)
  | Error msg -> Alcotest.failf "empty decode failed: %s" msg

let test_binary_rejects_garbage () =
  checkb "not binary" true (not (Trace.Binary.is_binary "ccomp-trace 1\n0\n"));
  checkb "garbage" true (Result.is_error (Trace.Binary.decode "ccbtXXXX"));
  let enc = Trace.Binary.encode [| 1; 2; 3 |] in
  checkb "trailing junk" true
    (Result.is_error (Trace.Binary.decode (enc ^ "\001")))

let test_binary_info () =
  let ids = Array.init 1000 (fun i -> i mod 13) in
  let enc = Trace.Binary.encode ~lzss:true ~frame:100 ids in
  match Trace.Binary.info enc with
  | Error msg -> Alcotest.failf "info failed: %s" msg
  | Ok i ->
    checki "version" 1 i.Trace.Binary.version;
    checkb "lzss flag" true i.Trace.Binary.lzss;
    checkb "header count" true (i.Trace.Binary.header_count = Some 1000);
    checki "ids" 1000 i.Trace.Binary.ids;
    checki "frames" 10 i.Trace.Binary.frames;
    checkb "lzss shrinks this" true
      (i.Trace.Binary.stored_bytes < i.Trace.Binary.raw_bytes)

let test_binary_streaming_writer () =
  (* The streaming writer must produce a stream the one-shot decoder
     accepts, and the chunked reader must agree with it. *)
  let path = Filename.temp_file "ccomp" ".ctb" in
  let ids = Array.init 10_000 (fun i -> (i * 7) mod 97) in
  let oc = open_out_bin path in
  let w = Trace.Binary.Writer.create ~lzss:true ~frame:777 oc in
  Array.iter (fun id -> Trace.Binary.Writer.push w id) ids;
  Trace.Binary.Writer.close w;
  close_out oc;
  (match Trace.Binary.read_file path with
  | Ok ids' -> checkb "writer/decode agree" true (ids' = ids)
  | Error msg -> Alcotest.failf "read_file failed: %s" msg);
  (match
     Trace.Binary.fold_file path ~init:[] ~f:(fun acc chunk ->
         chunk :: acc)
   with
  | Error msg -> Alcotest.failf "fold_file failed: %s" msg
  | Ok rev_chunks ->
    let flat = Array.concat (List.rev rev_chunks) in
    checkb "fold_file agrees" true (flat = ids);
    checkb "several frames" true (List.length rev_chunks > 1));
  Sys.remove path

let test_io_auto_format () =
  let ids = Array.init 500 (fun i -> i mod 11) in
  let bin = Filename.temp_file "ccomp" ".bin" in
  let txt = Filename.temp_file "ccomp" ".trace" in
  Trace.Io.save bin ids;
  Trace.Io.save txt ids;
  let read_all p =
    let ic = open_in_bin p in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  checkb ".bin is binary" true (Trace.Binary.is_binary (read_all bin));
  checkb ".trace is text" true (not (Trace.Binary.is_binary (read_all txt)));
  (match (Trace.Io.load bin, Trace.Io.load txt) with
  | Ok a, Ok b ->
    checkb "binary load" true (a = ids);
    checkb "text load" true (b = ids)
  | Error msg, _ | _, Error msg -> Alcotest.failf "auto load failed: %s" msg);
  Sys.remove bin;
  Sys.remove txt

let test_io_strict_parsing () =
  let expect_err body frag =
    match Trace.Io.of_string ("ccomp-trace 1\n" ^ body) with
    | Ok _ -> Alcotest.failf "accepted %S" body
    | Error msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i =
          i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
        in
        at 0
      in
      checkb
        (Printf.sprintf "%S error mentions %S" body frag)
        true (contains msg frag)
  in
  (* int_of_string would happily take all of these *)
  expect_err "0x10\n" "0x10";
  expect_err "1_0\n" "1_0";
  expect_err "0b101\n" "line 2";
  expect_err "3\n4\n5junk\n" "line 4";
  expect_err "3\n- 4\n" "line 3";
  (* signs are still fine *)
  match Trace.Io.of_string "ccomp-trace 1\n-4\n+3\n" with
  | Ok t -> checkb "signed ids" true (t = [| -4; 3 |])
  | Error msg -> Alcotest.failf "signed parse failed: %s" msg

let test_event_log_roundtrip () =
  let path = Filename.temp_file "ccomp" ".bin" in
  let events =
    List.init 400 (fun i ->
        ((i * 3) mod 11, i, (i * 5) mod 97, -i, i mod 2))
  in
  let oc = open_out_bin path in
  (* frame of 7 ids is not a multiple of 5, so events straddle frames *)
  let w = Trace.Event_log.Writer.create ~lzss:true ~frame:7 oc in
  List.iter
    (fun (kind, at, a, b, c) -> Trace.Event_log.Writer.push w ~kind ~at ~a ~b ~c)
    events;
  Trace.Event_log.Writer.close w;
  close_out oc;
  (match
     Trace.Event_log.fold_file path ~init:[] ~f:(fun acc ~kind ~at ~a ~b ~c ->
         (kind, at, a, b, c) :: acc)
   with
  | Error msg -> Alcotest.failf "event fold failed: %s" msg
  | Ok rev -> checkb "event roundtrip" true (List.rev rev = events));
  (* a log whose id count is not a multiple of five is rejected *)
  let oc = open_out_bin path in
  let w = Trace.Binary.Writer.create ~lzss:false oc in
  List.iter (Trace.Binary.Writer.push w) [ 1; 2; 3; 4; 5; 6; 7 ];
  Trace.Binary.Writer.close w;
  close_out oc;
  checkb "mid-event tail rejected" true
    (Result.is_error
       (Trace.Event_log.fold_file path ~init:() ~f:(fun () ~kind:_ ~at:_ ~a:_
                                                        ~b:_ ~c:_ -> ())));
  Sys.remove path

let () =
  Alcotest.run "trace-binary"
    [
      ( "binary",
        [
          Alcotest.test_case "empty" `Quick test_binary_empty;
          Alcotest.test_case "garbage rejected" `Quick
            test_binary_rejects_garbage;
          Alcotest.test_case "info" `Quick test_binary_info;
          Alcotest.test_case "streaming writer" `Quick
            test_binary_streaming_writer;
          QCheck_alcotest.to_alcotest prop_binary_roundtrip;
          QCheck_alcotest.to_alcotest prop_binary_roundtrip_lzss;
          QCheck_alcotest.to_alcotest prop_binary_truncation;
          QCheck_alcotest.to_alcotest prop_binary_bitflip;
        ] );
      ( "io-strict",
        [
          Alcotest.test_case "auto format" `Quick test_io_auto_format;
          Alcotest.test_case "strict parsing" `Quick test_io_strict_parsing;
        ] );
      ( "event-log",
        [ Alcotest.test_case "roundtrip" `Quick test_event_log_roundtrip ] );
    ]
