type t = {
  capacity : int;
  max_conns : int;
  mutable in_flight : int;
  mutable conns : int;
  mutable avg_ms : float;  (* EWMA of request service time *)
}

type rejection = { retry_after_ms : int }

let create ?(capacity = 64) ?(max_conns = 64) () =
  if capacity < 1 then
    invalid_arg
      (Printf.sprintf "Service.Admission.create: capacity must be >= 1 (got %d)"
         capacity);
  if max_conns < 1 then
    invalid_arg
      (Printf.sprintf
         "Service.Admission.create: max_conns must be >= 1 (got %d)" max_conns);
  {
    capacity;
    max_conns;
    in_flight = 0;
    conns = 0;
    avg_ms = 50.0 (* optimistic prior; converges after a few requests *);
  }

let capacity t = t.capacity
let max_conns t = t.max_conns

let try_acquire t =
  if t.in_flight < t.capacity then begin
    t.in_flight <- t.in_flight + 1;
    Ok ()
  end
  else
    (* "come back once the backlog ahead of you has drained" *)
    let hint = t.avg_ms *. float_of_int t.in_flight in
    Error
      { retry_after_ms = int_of_float (Float.min 5000.0 (Float.max 25.0 hint)) }

let release t ~elapsed_ms =
  t.in_flight <- max 0 (t.in_flight - 1);
  if elapsed_ms >= 0.0 then
    t.avg_ms <- (0.8 *. t.avg_ms) +. (0.2 *. elapsed_ms)

let in_flight t = t.in_flight

let try_connect t =
  if t.conns < t.max_conns then begin
    t.conns <- t.conns + 1;
    true
  end
  else false

let disconnect t = t.conns <- max 0 (t.conns - 1)
let connections t = t.conns
