(** Graceful shutdown and idle self-termination.

    The drain contract ([ccomp serve]'s exit path): on SIGINT /
    SIGTERM (or an explicit {!request_drain}) the server stops
    accepting, finishes every in-flight request — including pipelined
    ones already admitted — answers anything newly read on open
    connections with a [shutting_down] error, then stops reading,
    flushes every connection's write buffer, and exits 0. The cache
    needs no separate flush (stores are synchronous, so "finish
    in-flight" implies it). A second signal during the drain
    escalates to the cooperative {!Fleet.Pool} cancel hook, so a
    wedged job cannot hold the process hostage.

    The drain flag is an [Atomic] because signal handlers must not
    take locks; the accept loop polls it between [select] ticks. *)

type t

val create : unit -> t

val install_signal_handlers : t -> unit
(** Routes SIGTERM and SIGINT to {!request_drain} (first delivery)
    and {!force_cancel} (subsequent deliveries). Also ignores SIGPIPE
    process-wide — a client hanging up mid-response must surface as
    [EPIPE] on the handler thread, not kill the daemon. *)

val request_drain : t -> unit
(** Idempotent; safe from signal handlers and any thread. *)

val draining : t -> bool

val draining_since : t -> float option
(** [Unix.gettimeofday] of the first {!request_drain}, once one
    happened — the event loop anchors its grace deadline here rather
    than at the (possibly later) poll tick that noticed the flag. *)

val force_cancel : t -> unit
(** Flips the flag behind {!cancel_requested} — wired as the
    [?cancel] hook of every pool dispatch, so running engine work
    aborts at its next budget tick. Implies {!request_drain}. *)

val cancel_requested : t -> bool

(** {1 Idle tracking} *)

val touch : t -> unit
(** Records activity (a connection, a request). *)

val idle_for : t -> float
(** Seconds since the last {!touch} (or {!create}). *)
