type t = {
  registry : Sim.Metrics.t;
  mutex : Mutex.t;
  mutable ops_seen : string list;  (* registration order *)
  mutable reject_codes : string list;
  (* bumped on every mutation, so the server can cache its rendered
     stats payload and rebuild only when something changed *)
  mutable version : int;
  (* preregistered cells for the zero-alloc fast path: bumping these
     allocates no label lists and no hashtable probes *)
  fast_health_count : Sim.Metrics.counter;
  fast_health_latency : Sim.Metrics.histogram;
  fast_stats_count : Sim.Metrics.counter;
  fast_stats_latency : Sim.Metrics.histogram;
}

(* Sub-millisecond to half a minute; service latencies outside this
   band land in +Inf and still report max/mean exactly. *)
let latency_buckets_ms =
  [ 1; 2; 5; 10; 25; 50; 100; 250; 500; 1000; 2500; 5000; 10000; 30000 ]

let latency_of registry ~op =
  Sim.Metrics.histogram registry ~labels:[ ("op", op) ]
    ~buckets:latency_buckets_ms "service_latency_ms"

let ok_counter_of registry ~op =
  Sim.Metrics.counter registry
    ~labels:[ ("op", op); ("status", "ok") ]
    "service_requests_total"

let create ?registry () =
  let registry =
    match registry with Some r -> r | None -> Sim.Metrics.create ()
  in
  {
    registry;
    mutex = Mutex.create ();
    ops_seen = [ "health"; "stats" ];
    reject_codes = [];
    version = 0;
    fast_health_count = ok_counter_of registry ~op:"health";
    fast_health_latency = latency_of registry ~op:"health";
    fast_stats_count = ok_counter_of registry ~op:"stats";
    fast_stats_latency = latency_of registry ~op:"stats";
  }

let registry t = t.registry

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let version t = locked t (fun () -> t.version)
let latency t ~op = latency_of t.registry ~op

let record t ~op ~ok ~elapsed_ms =
  locked t (fun () ->
      t.version <- t.version + 1;
      if not (List.mem op t.ops_seen) then t.ops_seen <- t.ops_seen @ [ op ];
      let status = if ok then "ok" else "error" in
      Sim.Metrics.incr
        (Sim.Metrics.counter t.registry
           ~labels:[ ("op", op); ("status", status) ]
           "service_requests_total");
      Sim.Metrics.observe (latency t ~op)
        (max 0 (int_of_float (Float.round elapsed_ms))))

let record_fast t op =
  locked t (fun () ->
      t.version <- t.version + 1;
      let count, lat =
        match op with
        | `Health -> (t.fast_health_count, t.fast_health_latency)
        | `Stats -> (t.fast_stats_count, t.fast_stats_latency)
      in
      Sim.Metrics.incr count;
      Sim.Metrics.observe lat 0)

let reject t ~code =
  locked t (fun () ->
      t.version <- t.version + 1;
      if not (List.mem code t.reject_codes) then
        t.reject_codes <- t.reject_codes @ [ code ];
      Sim.Metrics.incr
        (Sim.Metrics.counter t.registry
           ~labels:[ ("code", code) ]
           "service_rejections_total"))

let connection t event =
  locked t (fun () ->
      t.version <- t.version + 1;
      let name =
        match event with
        | `Opened -> "service_connections_opened"
        | `Closed -> "service_connections_closed"
        | `Refused -> "service_connections_refused"
      in
      Sim.Metrics.incr (Sim.Metrics.counter t.registry name))

let queue_depth t depth =
  locked t (fun () ->
      t.version <- t.version + 1;
      Sim.Metrics.set
        (Sim.Metrics.counter t.registry "service_queue_depth")
        depth)

let absorb_fleet t other =
  locked t (fun () ->
      t.version <- t.version + 1;
      List.iter
        (fun name ->
          let v = Sim.Metrics.value (Sim.Metrics.counter other name) in
          if v > 0 then
            Sim.Metrics.incr ~by:v (Sim.Metrics.counter t.registry name)
          else ignore (Sim.Metrics.counter t.registry name))
        Fleet.Sweep.counter_names)

let stats_json t =
  locked t (fun () ->
      let counter ?labels name =
        Sim.Metrics.value (Sim.Metrics.counter t.registry ?labels name)
      in
      let per_op op =
        let h = latency t ~op in
        let ok = counter ~labels:[ ("op", op); ("status", "ok") ]
                   "service_requests_total" in
        let errors = counter ~labels:[ ("op", op); ("status", "error") ]
                       "service_requests_total" in
        ( op,
          Json.Obj
            [
              ("count", Json.Int (Sim.Metrics.observations h));
              ("ok", Json.Int ok);
              ("error", Json.Int errors);
              ("mean_ms", Json.Float (Sim.Metrics.mean h));
              ("p50_ms", Json.Float (Sim.Metrics.quantile h 0.5));
              ("p90_ms", Json.Float (Sim.Metrics.quantile h 0.9));
              ("max_ms", Json.Int (Sim.Metrics.max_value h));
            ] )
      in
      let rejections =
        List.map
          (fun code ->
            (code, Json.Int (counter ~labels:[ ("code", code) ]
                               "service_rejections_total")))
          t.reject_codes
      in
      let fleet =
        List.map
          (fun name -> (name, Json.Int (counter name)))
          Fleet.Sweep.counter_names
      in
      Json.Obj
        [
          ("ops", Json.Obj (List.map per_op t.ops_seen));
          ("rejections", Json.Obj rejections);
          ( "connections",
            Json.Obj
              [
                ("opened", Json.Int (counter "service_connections_opened"));
                ("closed", Json.Int (counter "service_connections_closed"));
                ("refused", Json.Int (counter "service_connections_refused"));
              ] );
          ("queue_depth", Json.Int (counter "service_queue_depth"));
          ("fleet", Json.Obj fleet);
        ])
