type config = {
  socket_path : string option;
  tcp_port : int option;
  jobs : int;
  queue : int;
  max_conns : int;
  cache : Fleet.Cache.t option;
  fuel : int option;
  timeout_ms : int option;
  idle_timeout_s : float option;
  drain_grace_s : float;
  max_request_bytes : int;
  max_buffer_bytes : int;
}

let default_config =
  {
    socket_path = None;
    tcp_port = None;
    jobs = 1;
    queue = 64;
    max_conns = 64;
    cache = None;
    fuel = None;
    timeout_ms = None;
    idle_timeout_s = None;
    drain_grace_s = 10.0;
    max_request_bytes = Wire.default_max_request_bytes;
    max_buffer_bytes = 4 * 1024 * 1024;
  }

type listener = { lfd : Unix.file_descr; descr : string }

(* One multiplexed connection, owned by the loop. [pending] counts
   heavy requests admitted on this connection whose completions have
   not been delivered yet; responses for them may land out of order.
   [scanned] is how far into rbuf the line framer already looked for
   a newline, so a slow dribbler costs one scan per byte, not one
   scan per byte per byte. *)
type conn = {
  serial : int;
  fd : Unix.file_descr;
  rbuf : Iobuf.t;
  wbuf : Iobuf.t;
  mutable scanned : int;
  mutable dropping : bool;  (* mid-oversized-line: eat until '\n' *)
  mutable eof : bool;
  mutable shed : bool;  (* slow consumer: wrote the error, now closing *)
  mutable shed_deadline : float;
  mutable dead : bool;  (* hard I/O error: close without ceremony *)
  mutable pending : int;
}

(* A finished heavy request, handed from its worker thread back to
   the loop (which owns admission, telemetry ordering and the write
   buffers). *)
type completion = {
  c_serial : int;
  c_op : string;
  c_t0 : float;
  c_ok : bool;
  c_line : string;
  c_thread : Thread.t;
}

(* Preformatted health response: constant bytes except three
   fixed-width numeric fields patched in place per request. *)
type health_template = {
  t_bytes : Bytes.t;
  o_uptime : int;
  o_in_flight : int;
  o_conns : int;
}

type t = {
  config : config;
  listeners : listener list;
  pool : Fleet.Pool.t;
  admission : Admission.t;
  tele : Telemetry.t;
  life : Lifecycle.t;
  started_at : float;
  (* loop-owned: serial -> conn *)
  conns : (int, conn) Hashtbl.t;
  mutable conn_serial : int;
  (* completions crossing from worker threads into the loop; the
     self-pipe wakes the select *)
  comp_mutex : Mutex.t;
  completions : completion Queue.t;
  wake_rd : Unix.file_descr;
  wake_wr : Unix.file_descr;
  wake_buf : Bytes.t;
  (* fast-path state *)
  health_ok : health_template;
  health_draining : health_template;
  mutable stats_cache : (int * Bytes.t) option;
  (* scenario memo: the warm state a resident server exists for;
     resolution happens on worker threads, hence the mutex *)
  scen_mutex : Mutex.t;
  scenarios : (string * string, Core.Scenario.t) Hashtbl.t;
}

let telemetry t = t.tele
let lifecycle t = t.life
let endpoints t = List.map (fun l -> l.descr) t.listeners

(* ------------------------------------------------------------------ *)
(* Binding                                                             *)

let bind_unix path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    Unix.unlink path (* stale socket from a crashed predecessor *)
  | _ -> raise (Sys_error (path ^ ": exists and is not a socket"))
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  { lfd = fd; descr = "unix:" ^ path }

let bind_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  (* port 0 asks the kernel for an ephemeral port; report the real one *)
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  { lfd = fd; descr = Printf.sprintf "tcp:127.0.0.1:%d" port }

(* ------------------------------------------------------------------ *)
(* In-place numeric patches

   JSON forbids leading zeros, so fixed-width fields are left-aligned
   and padded with trailing spaces — the parser skips them as
   inter-token whitespace. *)

let int_pad_width = 12

let patch_int buf pos width v =
  let v = if v < 0 then 0 else v in
  let rec digits n = if n < 10 then 1 else 1 + digits (n / 10) in
  let d = min width (digits v) in
  let rec put i n =
    if i >= 0 then begin
      Bytes.unsafe_set buf (pos + i) (Char.unsafe_chr (48 + (n mod 10)));
      put (i - 1) (n / 10)
    end
  in
  put (d - 1) v;
  Bytes.fill buf (pos + d) (width - d) ' '

let uptime_pad_width = 20

(* seconds with millisecond resolution, e.g. "12.345" *)
let patch_uptime buf pos seconds =
  let ms = int_of_float (seconds *. 1000.0) in
  let ms = if ms < 0 then 0 else ms in
  let s = ms / 1000 and frac = ms mod 1000 in
  let rec digits n = if n < 10 then 1 else 1 + digits (n / 10) in
  let d = min (uptime_pad_width - 4) (digits s) in
  let rec put i n =
    if i >= 0 then begin
      Bytes.unsafe_set buf (pos + i) (Char.unsafe_chr (48 + (n mod 10)));
      put (i - 1) (n / 10)
    end
  in
  put (d - 1) s;
  Bytes.unsafe_set buf (pos + d) '.';
  Bytes.unsafe_set buf (pos + d + 1) (Char.unsafe_chr (48 + (frac / 100)));
  Bytes.unsafe_set buf (pos + d + 2) (Char.unsafe_chr (48 + (frac / 10 mod 10)));
  Bytes.unsafe_set buf (pos + d + 3) (Char.unsafe_chr (48 + (frac mod 10)));
  Bytes.fill buf (pos + d + 4) (uptime_pad_width - d - 4) ' '

let build_health_template ~status ~pool_jobs ~queue_capacity ~cache_dir =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"status\":";
  Buffer.add_string b (Json.to_string (Json.Str status));
  Buffer.add_string b ",\"protocol\":";
  Buffer.add_string b (string_of_int Wire.protocol_version);
  Buffer.add_string b ",\"uptime_s\":";
  let o_uptime = Buffer.length b in
  Buffer.add_string b (String.make uptime_pad_width ' ');
  Buffer.add_string b ",\"pool_jobs\":";
  Buffer.add_string b (string_of_int pool_jobs);
  Buffer.add_string b ",\"queue_capacity\":";
  Buffer.add_string b (string_of_int queue_capacity);
  Buffer.add_string b ",\"in_flight\":";
  let o_in_flight = Buffer.length b in
  Buffer.add_string b (String.make int_pad_width ' ');
  Buffer.add_string b ",\"connections\":";
  let o_conns = Buffer.length b in
  Buffer.add_string b (String.make int_pad_width ' ');
  Buffer.add_string b ",\"cache_dir\":";
  Buffer.add_string b (Json.to_string cache_dir);
  Buffer.add_char b '}';
  { t_bytes = Buffer.to_bytes b; o_uptime; o_in_flight; o_conns }

let create ?telemetry:tele ?lifecycle:life config =
  if config.socket_path = None && config.tcp_port = None then
    invalid_arg "Service.Server.create: no endpoint (need a socket or a port)";
  if config.jobs < 1 then
    invalid_arg "Service.Server.create: jobs must be >= 1";
  if config.queue < 0 then
    invalid_arg "Service.Server.create: queue must be >= 0";
  if config.max_request_bytes < 1024 then
    invalid_arg "Service.Server.create: max_request_bytes must be >= 1024";
  if config.max_buffer_bytes < 16 * 1024 then
    invalid_arg "Service.Server.create: max_buffer_bytes must be >= 16384";
  let life = match life with Some l -> l | None -> Lifecycle.create () in
  let tele = match tele with Some t -> t | None -> Telemetry.create () in
  (* Even without Lifecycle.install_signal_handlers (tests, bench):
     never let a disappearing client kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listeners =
    (match config.socket_path with Some p -> [ bind_unix p ] | None -> [])
    @ (match config.tcp_port with Some p -> [ bind_tcp p ] | None -> [])
  in
  List.iter (fun l -> Unix.set_nonblock l.lfd) listeners;
  let wake_rd, wake_wr = Unix.pipe () in
  Unix.set_nonblock wake_rd;
  Unix.set_nonblock wake_wr;
  let pool = Fleet.Pool.create ~jobs:config.jobs in
  let cache_dir =
    match config.cache with
    | Some c -> Json.Str (Fleet.Cache.dir c)
    | None -> Json.Null
  in
  let template status =
    build_health_template ~status ~pool_jobs:(Fleet.Pool.size pool)
      ~queue_capacity:(config.jobs + config.queue) ~cache_dir
  in
  {
    config;
    listeners;
    pool;
    admission =
      Admission.create
        ~capacity:(config.jobs + config.queue)
        ~max_conns:config.max_conns ();
    tele;
    life;
    started_at = Unix.gettimeofday ();
    conns = Hashtbl.create 64;
    conn_serial = 0;
    comp_mutex = Mutex.create ();
    completions = Queue.create ();
    wake_rd;
    wake_wr;
    wake_buf = Bytes.create 256;
    health_ok = template "ok";
    health_draining = template "draining";
    stats_cache = None;
    scen_mutex = Mutex.create ();
    scenarios = Hashtbl.create 16;
  }

let stop t = Lifecycle.request_drain t.life

(* ------------------------------------------------------------------ *)
(* Self-pipe                                                           *)

let wake_byte = Bytes.make 1 '!'

let wake t =
  (* a full pipe means the loop is already signalled; any other error
     means it is tearing down — both are fine to ignore *)
  try ignore (Unix.write t.wake_wr wake_byte 0 1) with Unix.Unix_error _ -> ()

let drain_wake t =
  let rec go () =
    match Unix.read t.wake_rd t.wake_buf 0 (Bytes.length t.wake_buf) with
    | n -> if n = Bytes.length t.wake_buf then go ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)

let resolve_scenario t ~scenario ~codec =
  Mutex.lock t.scen_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.scen_mutex)
    (fun () ->
      let key = (scenario, codec) in
      match Hashtbl.find_opt t.scenarios key with
      | Some sc -> sc
      | None ->
        let plain name =
          let w = Workloads.Suite.find_exn name in
          match codec with
          | "code" -> Workloads.Common.scenario w
          | other ->
            Workloads.Common.scenario
              ~codec:(Compress.Registry.find_exn other)
              w
        in
        let sc =
          if Corpus.Resolve.is_spec scenario then
            Corpus.Resolve.scenario ~lookup:plain
              ?codec:
                (match codec with
                | "code" -> None
                | other -> Some (Compress.Registry.find_exn other))
              scenario
          else plain scenario
        in
        Hashtbl.replace t.scenarios key sc;
        sc)

(* Request guards: the request may only tighten the server defaults,
   never escape them. *)
let effective req_v cfg_v =
  match (req_v, cfg_v) with
  | Some r, Some c -> Some (min r c)
  | Some r, None -> Some r
  | None, c -> c

let run_jobs t (env : Wire.envelope) jobs =
  let registry = Sim.Metrics.create () in
  let outcomes =
    Fleet.Sweep.run ~pool:t.pool ?cache:t.config.cache ~registry
      ?fuel:(effective env.fuel t.config.fuel)
      ?timeout_ms:(effective env.timeout_ms t.config.timeout_ms)
      ~cancel:(fun () -> Lifecycle.cancel_requested t.life)
      ~resolve:(fun ~scenario ~codec -> resolve_scenario t ~scenario ~codec)
      jobs
  in
  Telemetry.absorb_fleet t.tele registry;
  outcomes

let block_bytes (sc : Core.Scenario.t) =
  Array.to_list
    (Array.map
       (fun (b : Cfg.Graph.block) ->
         match sc.program with
         | Some prog ->
           Eris.Program.slice_bytes prog ~lo:b.addr ~hi:(b.addr + b.byte_size)
         | None ->
           Core.Scenario.synthetic_block_bytes ~id:b.id ~size:b.byte_size)
       (Cfg.Graph.blocks sc.graph))

let compress_payload t ~workload ~codec =
  let sc = resolve_scenario t ~scenario:workload ~codec:"code" in
  let blocks = block_bytes sc in
  let codecs =
    match codec with
    | Some c -> [ Compress.Registry.find_exn c ]
    | None -> Compress.Registry.all ()
  in
  Json.Obj
    [
      ("workload", Json.Str workload);
      ( "codecs",
        Json.List
          (List.map
             (fun codec ->
               let s = Compress.Stats.measure codec blocks in
               Json.Obj
                 [
                   ("codec", Json.Str s.Compress.Stats.codec_name);
                   ("blocks", Json.Int s.Compress.Stats.blocks);
                   ("original_bytes", Json.Int s.Compress.Stats.original_bytes);
                   ( "compressed_bytes",
                     Json.Int s.Compress.Stats.compressed_bytes );
                   ("ratio", Json.Float s.Compress.Stats.ratio);
                   ( "best_block_ratio",
                     Json.Float s.Compress.Stats.best_block_ratio );
                   ( "worst_block_ratio",
                     Json.Float s.Compress.Stats.worst_block_ratio );
                 ])
             codecs) );
    ]

(* Slow-path (fully parsed) payloads: requests the fast scanner
   declines — extra fields, escaped ids — still answer identically
   in substance, just through the JSON printer. *)

let health_payload t =
  Json.Obj
    [
      ("status", Json.Str (if Lifecycle.draining t.life then "draining" else "ok"));
      ("protocol", Json.Int Wire.protocol_version);
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
      ("pool_jobs", Json.Int (Fleet.Pool.size t.pool));
      ("queue_capacity", Json.Int (Admission.capacity t.admission));
      ("in_flight", Json.Int (Admission.in_flight t.admission));
      ("connections", Json.Int (Admission.connections t.admission));
      ( "cache_dir",
        match t.config.cache with
        | Some c -> Json.Str (Fleet.Cache.dir c)
        | None -> Json.Null );
    ]

let stats_payload t =
  match Telemetry.stats_json t.tele with
  | Json.Obj fields ->
    Json.Obj
      (("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at))
      :: fields)
  | other -> other

(* The op tag for telemetry, including for requests that failed
   parsing (labelled by their error code instead). *)
let op_name : Wire.request -> string = function
  | Wire.Health -> "health"
  | Wire.Stats -> "stats"
  | Wire.Sim _ -> "sim"
  | Wire.Sweep _ -> "sweep"
  | Wire.Compress _ -> "compress"

(* Executes one admitted heavy request (on a worker thread, not the
   loop). Returns whether it succeeded and the response line. *)
let dispatch_heavy t (env : Wire.envelope) =
  match env.request with
  | Wire.Sim job -> (
    match run_jobs t env [ job ] with
    | [ outcome ] -> (
      match outcome.Fleet.Sweep.result with
      | Ok _ -> (true, Wire.ok_line ~id:env.id (Wire.outcome_to_json outcome))
      | Error msg ->
        ( false,
          Wire.error_line ~id:env.id
            (Wire.err (Wire.classify_run_error msg) msg) ))
    | _ ->
      (false, Wire.error_line ~id:env.id (Wire.err Wire.internal "lost the job")))
  | Wire.Sweep jobs ->
    let outcomes = run_jobs t env jobs in
    let failed =
      List.length
        (List.filter
           (fun (o : Fleet.Sweep.outcome) -> Result.is_error o.result)
           outcomes)
    in
    ( true,
      Wire.ok_line ~id:env.id
        (Json.Obj
           [
             ("count", Json.Int (List.length outcomes));
             ("failed", Json.Int failed);
             ("jobs", Json.List (List.map Wire.outcome_to_json outcomes));
           ]) )
  | Wire.Compress { workload; codec } -> (
    let task _budget () = compress_payload t ~workload ~codec in
    match
      Fleet.Pool.map
        ?fuel:(effective env.fuel t.config.fuel)
        ?timeout_ms:(effective env.timeout_ms t.config.timeout_ms)
        ~cancel:(fun () -> Lifecycle.cancel_requested t.life)
        t.pool task [ () ]
    with
    | [ Ok payload ] -> (true, Wire.ok_line ~id:env.id payload)
    | [ Error msg ] ->
      ( false,
        Wire.error_line ~id:env.id
          (Wire.err (Wire.classify_run_error msg) msg) )
    | _ ->
      (false, Wire.error_line ~id:env.id (Wire.err Wire.internal "lost the job")))
  | Wire.Health | Wire.Stats -> assert false (* not heavy; see process_slow *)

(* ------------------------------------------------------------------ *)
(* Response emission (loop side)                                       *)

let soft_cap t = t.config.max_buffer_bytes / 2

let shed_conn t conn =
  Telemetry.reject t.tele ~code:Wire.slow_consumer;
  Iobuf.add_string conn.wbuf
    (Wire.error_line ~id:Json.Null
       (Wire.err Wire.slow_consumer
          (Printf.sprintf "write buffer exceeded %d bytes; closing"
             t.config.max_buffer_bytes)));
  Iobuf.add_char conn.wbuf '\n';
  conn.shed <- true;
  conn.shed_deadline <- Unix.gettimeofday () +. 2.0

let append_response t conn line =
  if not conn.shed then begin
    Iobuf.add_string conn.wbuf line;
    Iobuf.add_char conn.wbuf '\n';
    if Iobuf.length conn.wbuf > t.config.max_buffer_bytes then shed_conn t conn
  end

(* The zero-alloc fast path: the response is template bytes with
   numeric fields patched in place, and the id (when present) is the
   raw request span echoed byte for byte. *)

let stats_prefix = "{\"uptime_s\":"

let stats_fast t =
  let v = Telemetry.version t.tele in
  let body =
    match t.stats_cache with
    | Some (v', body) when v' = v -> body
    | _ ->
      let rendered = Json.to_string (Telemetry.stats_json t.tele) in
      let b = Buffer.create (String.length rendered + 40) in
      Buffer.add_string b stats_prefix;
      Buffer.add_string b (String.make uptime_pad_width ' ');
      if String.length rendered > 2 then begin
        Buffer.add_char b ',';
        Buffer.add_substring b rendered 1 (String.length rendered - 1)
      end
      else Buffer.add_char b '}';
      let body = Buffer.to_bytes b in
      t.stats_cache <- Some (v, body);
      body
  in
  patch_uptime body (String.length stats_prefix)
    (Unix.gettimeofday () -. t.started_at);
  body

let answer_fast t conn fop id_span buf =
  Iobuf.add_string conn.wbuf "{\"id\":";
  (match id_span with
  | Some (pos, len) -> Iobuf.add_subbytes conn.wbuf buf pos len
  | None -> Iobuf.add_string conn.wbuf "null");
  Iobuf.add_string conn.wbuf ",\"ok\":";
  (match fop with
  | Wire.Fast_health ->
    let tpl =
      if Lifecycle.draining t.life then t.health_draining else t.health_ok
    in
    patch_uptime tpl.t_bytes tpl.o_uptime
      (Unix.gettimeofday () -. t.started_at);
    patch_int tpl.t_bytes tpl.o_in_flight int_pad_width
      (Admission.in_flight t.admission);
    patch_int tpl.t_bytes tpl.o_conns int_pad_width
      (Admission.connections t.admission);
    Iobuf.add_subbytes conn.wbuf tpl.t_bytes 0 (Bytes.length tpl.t_bytes);
    Telemetry.record_fast t.tele `Health
  | Wire.Fast_stats ->
    let body = stats_fast t in
    Iobuf.add_subbytes conn.wbuf body 0 (Bytes.length body);
    Telemetry.record_fast t.tele `Stats);
  Iobuf.add_string conn.wbuf "}\n";
  if Iobuf.length conn.wbuf > t.config.max_buffer_bytes then shed_conn t conn

(* ------------------------------------------------------------------ *)
(* Request intake (loop side)                                          *)

let spawn_heavy t conn (env : Wire.envelope) ~op ~t0 =
  let serial = conn.serial in
  match
    Thread.create
      (fun () ->
        let c_ok, c_line =
          match dispatch_heavy t env with
          | result -> result
          | exception e ->
            ( false,
              Wire.error_line ~id:env.id
                (Wire.err Wire.internal (Printexc.to_string e)) )
        in
        Mutex.lock t.comp_mutex;
        Queue.add
          {
            c_serial = serial;
            c_op = op;
            c_t0 = t0;
            c_ok;
            c_line;
            c_thread = Thread.self ();
          }
          t.completions;
        Mutex.unlock t.comp_mutex;
        wake t)
      ()
  with
  | _th -> ()
  | exception e ->
    (* could not even spawn: undo the admission and answer inline *)
    conn.pending <- conn.pending - 1;
    Admission.release t.admission ~elapsed_ms:(-1.0);
    Telemetry.queue_depth t.tele (Admission.in_flight t.admission);
    Telemetry.record t.tele ~op ~ok:false ~elapsed_ms:0.0;
    append_response t conn
      (Wire.error_line ~id:env.id
         (Wire.err Wire.internal (Printexc.to_string e)))

let process_slow t conn line =
  let t0 = Unix.gettimeofday () in
  let finish ~op ~ok response =
    Telemetry.record t.tele ~op ~ok
      ~elapsed_ms:((Unix.gettimeofday () -. t0) *. 1000.0);
    append_response t conn response
  in
  match Wire.parse_request line with
  | Error (id, e) ->
    Telemetry.reject t.tele ~code:e.Wire.code;
    finish ~op:"invalid" ~ok:false (Wire.error_line ~id e)
  | Ok env -> (
    let op = op_name env.request in
    match env.request with
    | Wire.Health | Wire.Stats -> (
      let payload () =
        match env.request with
        | Wire.Health -> health_payload t
        | _ -> stats_payload t
      in
      match Wire.ok_line ~id:env.id (payload ()) with
      | response -> finish ~op ~ok:true response
      | exception e ->
        (* Absolute backstop: an unexpected exception answers as a
           structured error and the connection lives on. *)
        finish ~op ~ok:false
          (Wire.error_line ~id:env.id
             (Wire.err Wire.internal (Printexc.to_string e))))
    | Wire.Sim _ | Wire.Sweep _ | Wire.Compress _ ->
      if Lifecycle.draining t.life then begin
        Telemetry.reject t.tele ~code:Wire.shutting_down;
        finish ~op ~ok:false
          (Wire.error_line ~id:env.id
             (Wire.err Wire.shutting_down "server is draining"))
      end
      else (
        match Admission.try_acquire t.admission with
        | Error { Admission.retry_after_ms } ->
          Telemetry.reject t.tele ~code:Wire.overloaded;
          finish ~op ~ok:false
            (Wire.error_line ~id:env.id
               (Wire.err ~retry_after_ms Wire.overloaded
                  "server at capacity; back off and retry"))
        | Ok () ->
          Telemetry.queue_depth t.tele (Admission.in_flight t.admission);
          conn.pending <- conn.pending + 1;
          spawn_heavy t conn env ~op ~t0))

let is_blank buf pos len =
  let rec go i =
    i >= len
    ||
    match Bytes.get buf (pos + i) with
    | ' ' | '\t' | '\r' | '\012' -> go (i + 1)
    | _ -> false
  in
  go 0

let handle_line t conn buf pos len =
  if is_blank buf pos len then Lifecycle.touch t.life (* keep-alive blank *)
  else begin
    Lifecycle.touch t.life;
    match Wire.scan_fast buf ~pos ~len with
    | Some (fop, id_span) -> answer_fast t conn fop id_span buf
    | None -> process_slow t conn (Bytes.sub_string buf pos len)
  end

let answer_oversized t conn =
  Telemetry.reject t.tele ~code:Wire.oversized;
  append_response t conn
    (Wire.error_line ~id:Json.Null
       (Wire.err Wire.oversized
          (Printf.sprintf "request line exceeds %d bytes"
             t.config.max_request_bytes)))

(* Carves as many complete lines as arrived out of the read buffer.
   Backpressure: a write buffer past the soft cap pauses parsing (and
   the read-interest set) until the client drains it, so a flood of
   inline requests cannot outrun the socket. *)
let rec parse_conn t conn =
  if (not conn.shed) && (not conn.dead)
     && Iobuf.length conn.wbuf <= soft_cap t
  then begin
    match Iobuf.find_newline conn.rbuf ~from:conn.scanned with
    | Some nl ->
      conn.scanned <- 0;
      let buf = Iobuf.bytes conn.rbuf and base = Iobuf.offset conn.rbuf in
      (if conn.dropping then begin
         conn.dropping <- false;
         answer_oversized t conn
       end
       else
         let len =
           if nl > 0 && Bytes.get buf (base + nl - 1) = '\r' then nl - 1
           else nl
         in
         if len > t.config.max_request_bytes then answer_oversized t conn
         else handle_line t conn buf base len);
      Iobuf.consume conn.rbuf (nl + 1);
      parse_conn t conn
    | None ->
      let buffered = Iobuf.length conn.rbuf in
      if conn.dropping then begin
        Iobuf.consume conn.rbuf buffered;
        conn.scanned <- 0
      end
      else if buffered > t.config.max_request_bytes then begin
        conn.dropping <- true;
        Iobuf.consume conn.rbuf buffered;
        conn.scanned <- 0
      end
      else conn.scanned <- buffered
  end

(* A final unterminated line (client shut its write side without a
   trailing newline) is still answered before the connection
   closes. *)
let parse_eof_tail t conn =
  if conn.eof && (not conn.shed) && (not conn.dead)
     && (not (Iobuf.is_empty conn.rbuf))
     && Iobuf.length conn.wbuf <= soft_cap t
  then begin
    let buf = Iobuf.bytes conn.rbuf and base = Iobuf.offset conn.rbuf in
    let len = Iobuf.length conn.rbuf in
    (if conn.dropping then begin
       conn.dropping <- false;
       answer_oversized t conn
     end
     else if len > t.config.max_request_bytes then answer_oversized t conn
     else handle_line t conn buf base len);
    Iobuf.consume conn.rbuf len;
    conn.scanned <- 0
  end

(* ------------------------------------------------------------------ *)
(* Connection lifecycle (loop side)                                    *)

let destroy t conn =
  Hashtbl.remove t.conns conn.serial;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Admission.disconnect t.admission;
  Telemetry.connection t.tele `Closed;
  Lifecycle.touch t.life

let read_conn t conn =
  match Iobuf.fill_from conn.rbuf conn.fd ~max:16384 with
  | Iobuf.Filled _ -> Lifecycle.touch t.life
  | Iobuf.Fill_blocked -> ()
  | Iobuf.Fill_eof -> conn.eof <- true
  | exception Unix.Unix_error _ -> conn.dead <- true

let write_conn conn =
  if not (Iobuf.is_empty conn.wbuf) then
    match Iobuf.drain_to conn.wbuf conn.fd with
    | Iobuf.Drained | Iobuf.Drain_blocked -> ()
    | exception Unix.Unix_error _ -> conn.dead <- true

let should_close conn now =
  conn.dead
  || (conn.shed && (Iobuf.is_empty conn.wbuf || now > conn.shed_deadline))
  || (conn.eof && conn.pending = 0
     && Iobuf.is_empty conn.wbuf
     && Iobuf.is_empty conn.rbuf)

let deliver t comp =
  let elapsed_ms = (Unix.gettimeofday () -. comp.c_t0) *. 1000.0 in
  Admission.release t.admission ~elapsed_ms;
  Telemetry.queue_depth t.tele (Admission.in_flight t.admission);
  Telemetry.record t.tele ~op:comp.c_op ~ok:comp.c_ok ~elapsed_ms;
  (* the worker already enqueued and is exiting; reclaim it *)
  (try Thread.join comp.c_thread with Sys_error _ -> ());
  match Hashtbl.find_opt t.conns comp.c_serial with
  | None -> () (* client vanished mid-request; the work still counted *)
  | Some conn ->
    conn.pending <- conn.pending - 1;
    append_response t conn comp.c_line

let accept_burst t listener =
  let rec go budget =
    if budget > 0 then
      match Unix.accept listener.lfd with
      | exception
          Unix.Unix_error
            ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        -> ()
      | fd, addr ->
        Lifecycle.touch t.life;
        if Admission.try_connect t.admission then begin
          Telemetry.connection t.tele `Opened;
          Unix.set_nonblock fd;
          (match addr with
          | Unix.ADDR_INET _ -> (
            try Unix.setsockopt fd Unix.TCP_NODELAY true
            with Unix.Unix_error _ -> ())
          | _ -> ());
          t.conn_serial <- t.conn_serial + 1;
          let conn =
            {
              serial = t.conn_serial;
              fd;
              rbuf = Iobuf.create ();
              wbuf = Iobuf.create ();
              scanned = 0;
              dropping = false;
              eof = false;
              shed = false;
              shed_deadline = infinity;
              dead = false;
              pending = 0;
            }
          in
          Hashtbl.replace t.conns conn.serial conn;
          go (budget - 1)
        end
        else begin
          Telemetry.connection t.tele `Refused;
          let line =
            Wire.error_line ~id:Json.Null
              (Wire.err Wire.too_many_connections
                 (Printf.sprintf "connection limit (%d) reached"
                    (Admission.max_conns t.admission)))
            ^ "\n"
          in
          (* best effort: the fd is fresh, one small write either
             lands whole or the client has already gone *)
          (try ignore (Unix.write_substring fd line 0 (String.length line))
           with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ());
          go (budget - 1)
        end
  in
  go 64

(* ------------------------------------------------------------------ *)
(* Main loop and drain                                                 *)

let fully_idle t =
  Admission.in_flight t.admission = 0 && Admission.connections t.admission = 0

let conn_list t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []

let run t =
  let listeners_open = ref true in
  let drain_deadline = ref infinity in
  let cancel_escalated = ref false in
  let hard_deadline = ref infinity in
  (* once in-flight work is done, full service continues for one short
     settle window (late pipelined responses get read, a last health
     probe still answers), then reading stops and buffers flush *)
  let settle_until = ref infinity in
  let flushing = ref false in
  let flush_deadline = ref infinity in
  let running = ref true in
  while !running do
    let now = Unix.gettimeofday () in
    (* idle self-drain *)
    (match t.config.idle_timeout_s with
    | Some limit
      when (not (Lifecycle.draining t.life))
           && fully_idle t
           && Lifecycle.idle_for t.life > limit ->
      Lifecycle.request_drain t.life
    | _ -> ());
    (* notice a drain: stop accepting, free the endpoints *)
    if Lifecycle.draining t.life && !listeners_open then begin
      listeners_open := false;
      List.iter
        (fun l -> try Unix.close l.lfd with Unix.Unix_error _ -> ())
        t.listeners;
      (match t.config.socket_path with
      | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | None -> ());
      let since =
        match Lifecycle.draining_since t.life with Some s -> s | None -> now
      in
      drain_deadline := since +. t.config.drain_grace_s
    end;
    (* grace blown: escalate to cooperative cancellation *)
    if (not !listeners_open) && (not !cancel_escalated)
       && Admission.in_flight t.admission > 0
       && now > !drain_deadline
    then begin
      Lifecycle.force_cancel t.life;
      cancel_escalated := true;
      hard_deadline := now +. 2.0
    end;
    (* deliver finished heavy work back onto its connections *)
    let completions =
      Mutex.lock t.comp_mutex;
      let xs = Queue.fold (fun acc c -> c :: acc) [] t.completions in
      Queue.clear t.completions;
      Mutex.unlock t.comp_mutex;
      List.rev xs
    in
    List.iter (deliver t) completions;
    (* drain end-game transitions *)
    if (not !listeners_open) && not !flushing then begin
      if Admission.in_flight t.admission = 0 && !settle_until = infinity then
        settle_until := now +. 0.05;
      if
        (!settle_until < infinity && now > !settle_until)
        || (!cancel_escalated && now > !hard_deadline)
      then begin
        flushing := true;
        flush_deadline := now +. 1.0
      end
    end;
    (* opportunistic write pass: most responses leave in the same
       iteration that produced them, no extra select round-trip *)
    List.iter write_conn (conn_list t);
    (* close sweep *)
    List.iter
      (fun conn -> if should_close conn now then destroy t conn)
      (conn_list t);
    if !flushing
       && (List.for_all (fun c -> Iobuf.is_empty c.wbuf) (conn_list t)
          || now > !flush_deadline)
    then running := false
    else begin
      (* readiness sets: listeners while accepting, the self-pipe
         always, sockets with parse headroom for read, sockets with
         buffered output for write *)
      let conns = conn_list t in
      let rds =
        t.wake_rd
        :: ((if !listeners_open then List.map (fun l -> l.lfd) t.listeners
             else [])
           @ List.filter_map
               (fun c ->
                 if
                   (not !flushing) && (not c.eof) && (not c.shed)
                   && (not c.dead)
                   && Iobuf.length c.wbuf <= soft_cap t
                 then Some c.fd
                 else None)
               conns)
      in
      let wrs =
        List.filter_map
          (fun c -> if Iobuf.is_empty c.wbuf then None else Some c.fd)
          conns
      in
      let timeout = if !listeners_open then 0.1 else 0.05 in
      let ready_r, _ready_w, _ =
        match Unix.select rds wrs [] timeout with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.mem t.wake_rd ready_r then drain_wake t;
      if !listeners_open then
        List.iter
          (fun l -> if List.mem l.lfd ready_r then accept_burst t l)
          t.listeners;
      if not !flushing then begin
        List.iter
          (fun c -> if List.mem c.fd ready_r then read_conn t c)
          conns;
        (* parse everything that arrived (and anything previously
           throttled that now has headroom) *)
        List.iter
          (fun c ->
            parse_conn t c;
            parse_eof_tail t c)
          (conn_list t)
      end
    end
  done;
  (* hang up on whatever remains (drained clients that never closed,
     or stragglers past the flush deadline) *)
  List.iter (fun conn -> destroy t conn) (conn_list t);
  (* if a wedged job blew the hard deadline its worker thread may yet
     write to the pipe; leak the two fds rather than race a reused
     descriptor. The normal path closes them. *)
  if Admission.in_flight t.admission = 0 then begin
    (try Unix.close t.wake_rd with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_wr with Unix.Unix_error _ -> ())
  end;
  Fleet.Pool.shutdown t.pool
