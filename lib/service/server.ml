type config = {
  socket_path : string option;
  tcp_port : int option;
  jobs : int;
  queue : int;
  max_conns : int;
  cache : Fleet.Cache.t option;
  fuel : int option;
  timeout_ms : int option;
  idle_timeout_s : float option;
  drain_grace_s : float;
  max_request_bytes : int;
}

let default_config =
  {
    socket_path = None;
    tcp_port = None;
    jobs = 1;
    queue = 64;
    max_conns = 64;
    cache = None;
    fuel = None;
    timeout_ms = None;
    idle_timeout_s = None;
    drain_grace_s = 10.0;
    max_request_bytes = Wire.default_max_request_bytes;
  }

type listener = { lfd : Unix.file_descr; descr : string }

type t = {
  config : config;
  listeners : listener list;
  pool : Fleet.Pool.t;
  admission : Admission.t;
  tele : Telemetry.t;
  life : Lifecycle.t;
  started_at : float;
  (* (fd, thread) per live connection; handlers remove their own
     entry (under the mutex) before closing the fd, so the drain's
     shutdown sweep can never touch a recycled descriptor. *)
  conn_mutex : Mutex.t;
  conn_table : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  mutable conn_serial : int;
  (* scenario memo: the warm state a resident server exists for *)
  scen_mutex : Mutex.t;
  scenarios : (string * string, Core.Scenario.t) Hashtbl.t;
}

let telemetry t = t.tele
let lifecycle t = t.life
let endpoints t = List.map (fun l -> l.descr) t.listeners

(* ------------------------------------------------------------------ *)
(* Binding                                                             *)

let bind_unix path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    Unix.unlink path (* stale socket from a crashed predecessor *)
  | _ -> raise (Sys_error (path ^ ": exists and is not a socket"))
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  { lfd = fd; descr = "unix:" ^ path }

let bind_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  { lfd = fd; descr = Printf.sprintf "tcp:127.0.0.1:%d" port }

let create ?telemetry:tele ?lifecycle:life config =
  if config.socket_path = None && config.tcp_port = None then
    invalid_arg "Service.Server.create: no endpoint (need a socket or a port)";
  if config.jobs < 1 then
    invalid_arg "Service.Server.create: jobs must be >= 1";
  if config.queue < 0 then
    invalid_arg "Service.Server.create: queue must be >= 0";
  if config.max_request_bytes < 1024 then
    invalid_arg "Service.Server.create: max_request_bytes must be >= 1024";
  let life = match life with Some l -> l | None -> Lifecycle.create () in
  let tele = match tele with Some t -> t | None -> Telemetry.create () in
  (* Even without Lifecycle.install_signal_handlers (tests, bench):
     never let a disappearing client kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listeners =
    (match config.socket_path with Some p -> [ bind_unix p ] | None -> [])
    @ (match config.tcp_port with Some p -> [ bind_tcp p ] | None -> [])
  in
  {
    config;
    listeners;
    pool = Fleet.Pool.create ~jobs:config.jobs;
    admission =
      Admission.create
        ~capacity:(config.jobs + config.queue)
        ~max_conns:config.max_conns ();
    tele;
    life;
    started_at = Unix.gettimeofday ();
    conn_mutex = Mutex.create ();
    conn_table = Hashtbl.create 64;
    conn_serial = 0;
    scen_mutex = Mutex.create ();
    scenarios = Hashtbl.create 16;
  }

let stop t = Lifecycle.request_drain t.life

(* ------------------------------------------------------------------ *)
(* Socket line I/O                                                     *)

type read_result =
  | Line of string
  | Oversized_line
  | Eof

type line_reader = {
  rfd : Unix.file_descr;
  chunk : Bytes.t;
  mutable rstart : int;
  mutable rlen : int;  (* unconsumed region of [chunk]: [rstart, rlen) *)
}

let line_reader fd =
  { rfd = fd; chunk = Bytes.create 4096; rstart = 0; rlen = 0 }

(* Reads one '\n'-terminated line of at most [max_bytes] bytes. An
   overlong line is consumed to its newline and reported as
   [Oversized_line] — the protocol position stays in sync, so the
   connection remains usable. A final unterminated line (client shut
   its write side without a trailing newline) is delivered as a
   normal [Line]; the next call reports [Eof]. *)
let read_line r ~max_bytes =
  let line = Buffer.create 256 in
  let dropping = ref false in
  let rec go () =
    if r.rstart >= r.rlen then begin
      match Unix.read r.rfd r.chunk 0 (Bytes.length r.chunk) with
      | 0 ->
        if !dropping then Oversized_line
        else if Buffer.length line > 0 then Line (Buffer.contents line)
        else Eof
      | n ->
        r.rstart <- 0;
        r.rlen <- n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    end
    else begin
      let nl = ref (-1) in
      (try
         for i = r.rstart to r.rlen - 1 do
           if Bytes.get r.chunk i = '\n' then begin
             nl := i;
             raise Exit
           end
         done
       with Exit -> ());
      let upto = if !nl >= 0 then !nl else r.rlen in
      if not !dropping then begin
        Buffer.add_subbytes line r.chunk r.rstart (upto - r.rstart);
        if Buffer.length line > max_bytes then begin
          dropping := true;
          Buffer.clear line
        end
      end;
      r.rstart <- upto + 1;
      (* past the newline, or = rlen + 1 *)
      if !nl >= 0 then
        if !dropping then Oversized_line
        else
          Line
            (let s = Buffer.contents line in
             (* tolerate CRLF clients, same as Trace.Io *)
             if String.length s > 0 && s.[String.length s - 1] = '\r' then
               String.sub s 0 (String.length s - 1)
             else s)
      else go ()
    end
  in
  go ()

let send_line fd s =
  let payload = Bytes.of_string (s ^ "\n") in
  let len = Bytes.length payload in
  let rec push off =
    if off < len then begin
      match Unix.write fd payload off (len - off) with
      | n -> push (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
    end
  in
  push 0

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)

let resolve_scenario t ~scenario ~codec =
  Mutex.lock t.scen_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.scen_mutex)
    (fun () ->
      let key = (scenario, codec) in
      match Hashtbl.find_opt t.scenarios key with
      | Some sc -> sc
      | None ->
        let plain name =
          let w = Workloads.Suite.find_exn name in
          match codec with
          | "code" -> Workloads.Common.scenario w
          | other ->
            Workloads.Common.scenario
              ~codec:(Compress.Registry.find_exn other)
              w
        in
        let sc =
          if Corpus.Resolve.is_spec scenario then
            Corpus.Resolve.scenario ~lookup:plain
              ?codec:
                (match codec with
                | "code" -> None
                | other -> Some (Compress.Registry.find_exn other))
              scenario
          else plain scenario
        in
        Hashtbl.replace t.scenarios key sc;
        sc)

(* Request guards: the request may only tighten the server defaults,
   never escape them. *)
let effective req_v cfg_v =
  match (req_v, cfg_v) with
  | Some r, Some c -> Some (min r c)
  | Some r, None -> Some r
  | None, c -> c

let run_jobs t (env : Wire.envelope) jobs =
  let registry = Sim.Metrics.create () in
  let outcomes =
    Fleet.Sweep.run ~pool:t.pool ?cache:t.config.cache ~registry
      ?fuel:(effective env.fuel t.config.fuel)
      ?timeout_ms:(effective env.timeout_ms t.config.timeout_ms)
      ~cancel:(fun () -> Lifecycle.cancel_requested t.life)
      ~resolve:(fun ~scenario ~codec -> resolve_scenario t ~scenario ~codec)
      jobs
  in
  Telemetry.absorb_fleet t.tele registry;
  outcomes

let block_bytes (sc : Core.Scenario.t) =
  Array.to_list
    (Array.map
       (fun (b : Cfg.Graph.block) ->
         match sc.program with
         | Some prog ->
           Eris.Program.slice_bytes prog ~lo:b.addr ~hi:(b.addr + b.byte_size)
         | None ->
           Core.Scenario.synthetic_block_bytes ~id:b.id ~size:b.byte_size)
       (Cfg.Graph.blocks sc.graph))

let compress_payload t ~workload ~codec =
  let sc = resolve_scenario t ~scenario:workload ~codec:"code" in
  let blocks = block_bytes sc in
  let codecs =
    match codec with
    | Some c -> [ Compress.Registry.find_exn c ]
    | None -> Compress.Registry.all ()
  in
  Json.Obj
    [
      ("workload", Json.Str workload);
      ( "codecs",
        Json.List
          (List.map
             (fun codec ->
               let s = Compress.Stats.measure codec blocks in
               Json.Obj
                 [
                   ("codec", Json.Str s.Compress.Stats.codec_name);
                   ("blocks", Json.Int s.Compress.Stats.blocks);
                   ("original_bytes", Json.Int s.Compress.Stats.original_bytes);
                   ( "compressed_bytes",
                     Json.Int s.Compress.Stats.compressed_bytes );
                   ("ratio", Json.Float s.Compress.Stats.ratio);
                   ( "best_block_ratio",
                     Json.Float s.Compress.Stats.best_block_ratio );
                   ( "worst_block_ratio",
                     Json.Float s.Compress.Stats.worst_block_ratio );
                 ])
             codecs) );
    ]

let health_payload t =
  Json.Obj
    [
      ("status", Json.Str (if Lifecycle.draining t.life then "draining" else "ok"));
      ("protocol", Json.Int Wire.protocol_version);
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
      ("pool_jobs", Json.Int (Fleet.Pool.size t.pool));
      ("queue_capacity", Json.Int (Admission.capacity t.admission));
      ("in_flight", Json.Int (Admission.in_flight t.admission));
      ("connections", Json.Int (Admission.connections t.admission));
      ( "cache_dir",
        match t.config.cache with
        | Some c -> Json.Str (Fleet.Cache.dir c)
        | None -> Json.Null );
    ]

let stats_payload t =
  match Telemetry.stats_json t.tele with
  | Json.Obj fields ->
    Json.Obj
      (("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at))
      :: fields)
  | other -> other

(* The op tag for telemetry, including for requests that failed
   parsing (labelled by their error code instead). *)
let op_name : Wire.request -> string = function
  | Wire.Health -> "health"
  | Wire.Stats -> "stats"
  | Wire.Sim _ -> "sim"
  | Wire.Sweep _ -> "sweep"
  | Wire.Compress _ -> "compress"

(* Executes one admitted heavy request on the shared pool. Returns
   the response line. *)
let dispatch_heavy t (env : Wire.envelope) =
  match env.request with
  | Wire.Sim job -> (
    match run_jobs t env [ job ] with
    | [ outcome ] -> (
      match outcome.Fleet.Sweep.result with
      | Ok _ -> Wire.ok_line ~id:env.id (Wire.outcome_to_json outcome)
      | Error msg ->
        Wire.error_line ~id:env.id (Wire.err (Wire.classify_run_error msg) msg))
    | _ -> Wire.error_line ~id:env.id (Wire.err Wire.internal "lost the job"))
  | Wire.Sweep jobs ->
    let outcomes = run_jobs t env jobs in
    let failed =
      List.length
        (List.filter
           (fun (o : Fleet.Sweep.outcome) -> Result.is_error o.result)
           outcomes)
    in
    Wire.ok_line ~id:env.id
      (Json.Obj
         [
           ("count", Json.Int (List.length outcomes));
           ("failed", Json.Int failed);
           ("jobs", Json.List (List.map Wire.outcome_to_json outcomes));
         ])
  | Wire.Compress { workload; codec } -> (
    let task _budget () = compress_payload t ~workload ~codec in
    match
      Fleet.Pool.map
        ?fuel:(effective env.fuel t.config.fuel)
        ?timeout_ms:(effective env.timeout_ms t.config.timeout_ms)
        ~cancel:(fun () -> Lifecycle.cancel_requested t.life)
        t.pool task [ () ]
    with
    | [ Ok payload ] -> Wire.ok_line ~id:env.id payload
    | [ Error msg ] ->
      Wire.error_line ~id:env.id (Wire.err (Wire.classify_run_error msg) msg)
    | _ -> Wire.error_line ~id:env.id (Wire.err Wire.internal "lost the job"))
  | Wire.Health | Wire.Stats -> assert false (* not heavy; see dispatch *)

let dispatch t (env : Wire.envelope) =
  match env.request with
  | Wire.Health -> Wire.ok_line ~id:env.id (health_payload t)
  | Wire.Stats -> Wire.ok_line ~id:env.id (stats_payload t)
  | Wire.Sim _ | Wire.Sweep _ | Wire.Compress _ -> (
    match Admission.try_acquire t.admission with
    | Error { Admission.retry_after_ms } ->
      Telemetry.reject t.tele ~code:Wire.overloaded;
      Wire.error_line ~id:env.id
        (Wire.err ~retry_after_ms Wire.overloaded
           "server at capacity; back off and retry")
    | Ok () ->
      Telemetry.queue_depth t.tele (Admission.in_flight t.admission);
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          Admission.release t.admission
            ~elapsed_ms:((Unix.gettimeofday () -. t0) *. 1000.0);
          Telemetry.queue_depth t.tele (Admission.in_flight t.admission))
        (fun () -> dispatch_heavy t env))

(* ------------------------------------------------------------------ *)
(* Connection handling                                                 *)

let handle_request t line =
  let t0 = Unix.gettimeofday () in
  let finish ~op ~ok response =
    Telemetry.record t.tele ~op ~ok
      ~elapsed_ms:((Unix.gettimeofday () -. t0) *. 1000.0);
    response
  in
  match Wire.parse_request line with
  | Error (id, e) ->
    Telemetry.reject t.tele ~code:e.Wire.code;
    finish ~op:"invalid" ~ok:false (Wire.error_line ~id e)
  | Ok env ->
    let op = op_name env.request in
    if Lifecycle.draining t.life && op <> "health" && op <> "stats" then begin
      Telemetry.reject t.tele ~code:Wire.shutting_down;
      finish ~op ~ok:false
        (Wire.error_line ~id:env.id
           (Wire.err Wire.shutting_down "server is draining"))
    end
    else begin
      match dispatch t env with
      | response ->
        finish ~op ~ok:(Wire.parse_response response
                        |> function Ok (_, Ok _) -> true | _ -> false)
          response
      | exception e ->
        (* Absolute backstop: an unexpected exception answers as a
           structured error and the connection lives on. *)
        finish ~op ~ok:false
          (Wire.error_line ~id:env.id
             (Wire.err Wire.internal (Printexc.to_string e)))
    end

let handle_conn t serial fd =
  let reader = line_reader fd in
  let rec serve () =
    match read_line reader ~max_bytes:t.config.max_request_bytes with
    | Eof -> ()
    | Oversized_line ->
      Telemetry.reject t.tele ~code:Wire.oversized;
      send_line fd
        (Wire.error_line ~id:Json.Null
           (Wire.err Wire.oversized
              (Printf.sprintf "request line exceeds %d bytes"
                 t.config.max_request_bytes)));
      serve ()
    | Line line when String.trim line = "" -> serve () (* keep-alive blank *)
    | Line line ->
      Lifecycle.touch t.life;
      send_line fd (handle_request t line);
      serve ()
  in
  Fun.protect
    ~finally:(fun () ->
      (* de-register before closing: see [conn_table]'s invariant *)
      Mutex.lock t.conn_mutex;
      Hashtbl.remove t.conn_table serial;
      Mutex.unlock t.conn_mutex;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Admission.disconnect t.admission;
      Telemetry.connection t.tele `Closed;
      Lifecycle.touch t.life)
    (fun () ->
      try serve ()
      with
      | Unix.Unix_error _ | Sys_error _ ->
        (* client went away mid-read or mid-write: normal *)
        ())

let accept_one t listener =
  match Unix.accept listener.lfd with
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    -> ()
  | fd, _ ->
    Lifecycle.touch t.life;
    if Admission.try_connect t.admission then begin
      Telemetry.connection t.tele `Opened;
      (* the mutex is held across spawn + registration, so the
         handler's own de-registration (which needs the mutex) cannot
         run before the entry exists *)
      Mutex.lock t.conn_mutex;
      t.conn_serial <- t.conn_serial + 1;
      let serial = t.conn_serial in
      let th = Thread.create (fun () -> handle_conn t serial fd) () in
      Hashtbl.replace t.conn_table serial (fd, th);
      Mutex.unlock t.conn_mutex
    end
    else begin
      Telemetry.connection t.tele `Refused;
      (try
         send_line fd
           (Wire.error_line ~id:Json.Null
              (Wire.err Wire.too_many_connections
                 (Printf.sprintf "connection limit (%d) reached"
                    (Admission.max_conns t.admission))))
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
    end

(* ------------------------------------------------------------------ *)
(* Main loop and drain                                                 *)

let fully_idle t =
  Admission.in_flight t.admission = 0 && Admission.connections t.admission = 0

let run t =
  let listen_fds = List.map (fun l -> l.lfd) t.listeners in
  (* Accept phase. *)
  let rec accept_loop () =
    if not (Lifecycle.draining t.life) then begin
      (match t.config.idle_timeout_s with
      | Some limit when fully_idle t && Lifecycle.idle_for t.life > limit ->
        Lifecycle.request_drain t.life
      | _ -> ());
      if not (Lifecycle.draining t.life) then begin
        (match Unix.select listen_fds [] [] 0.2 with
        | ready, _, _ ->
          List.iter
            (fun fd ->
              match List.find_opt (fun l -> l.lfd = fd) t.listeners with
              | Some l -> accept_one t l
              | None -> ())
            ready
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        accept_loop ()
      end
    end
  in
  accept_loop ();
  (* Drain phase: no new connections... *)
  List.iter
    (fun l -> try Unix.close l.lfd with Unix.Unix_error _ -> ())
    t.listeners;
  (match t.config.socket_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ());
  (* ...finish in-flight work within the grace window... *)
  let deadline = Unix.gettimeofday () +. t.config.drain_grace_s in
  while
    Admission.in_flight t.admission > 0 && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.01
  done;
  if Admission.in_flight t.admission > 0 then begin
    (* ...escalating to cooperative cancellation if it will not... *)
    Lifecycle.force_cancel t.life;
    let hard = Unix.gettimeofday () +. 2.0 in
    while Admission.in_flight t.admission > 0 && Unix.gettimeofday () < hard do
      Thread.delay 0.01
    done
  end;
  (* ...give the response writes a beat to land, then hang up on the
     remaining (idle) connections and join every handler. *)
  Thread.delay 0.05;
  let threads =
    Mutex.lock t.conn_mutex;
    let ts =
      Hashtbl.fold
        (fun _ (fd, th) acc ->
          (try Unix.shutdown fd Unix.SHUTDOWN_ALL
           with Unix.Unix_error _ -> ());
          th :: acc)
        t.conn_table []
    in
    Mutex.unlock t.conn_mutex;
    ts
  in
  List.iter Thread.join threads;
  Fleet.Pool.shutdown t.pool
