(** The versioned JSONL request/response protocol.

    One request per line, one response line per request. Clients may
    pipeline: many requests can be outstanding on one connection, and
    responses to {e heavy} ops ([sim]/[sweep]/[compress]) may arrive
    out of order as the pool finishes them — the echoed ["id"] is the
    correlation key. Light ops ([health]/[stats]) are answered inline
    in arrival order. A request is a flat JSON object:

    {v
    {"v": 1, "id": 7, "op": "sim", "workload": "fir", "k": 8}
    v}

    - ["v"] (optional) must equal {!protocol_version} when present.
    - ["id"] (optional, any scalar) is echoed verbatim in the
      response; pipelining clients should make it unique per
      outstanding request.
    - ["op"] selects the operation: [health], [stats], [sim],
      [sweep] or [compress].
    - [sim]/[sweep] accept the CLI's whole policy surface
      ([workload]/[workloads], [k]/[ks], [codec], [strategy],
      [lookahead], [predictor], [mode], [budget], [retention],
      [weight], [fraction]) plus per-request guards [timeout_ms] and
      [fuel].
    - [compress] takes [workload] and optionally [codec] (all codecs
      when omitted).

    Responses are [{"id": .., "ok": {..}}] or
    [{"id": .., "error": {"code": .., "msg": ..}}] — malformed input
    is answered with a structured error, never a dropped connection
    or a crash. *)

val protocol_version : int

val default_max_request_bytes : int
(** 65536 — longer request lines are answered with an [oversized]
    error and skipped; the connection stays usable. *)

(** {1 Errors} *)

type error = {
  code : string;
  msg : string;
  retry_after_ms : int option;
      (** only on [overloaded]: the admission layer's backoff hint *)
}

(** Stable error codes (the failure-mode table in DESIGN.md §8). *)

val bad_json : string (* unparseable line *)
val bad_request : string (* parsed, but missing/invalid fields *)
val unknown_op : string
val oversized : string
val overloaded : string
val too_many_connections : string
val deadline_exceeded : string
val fuel_exhausted : string
val cancelled : string

val shutting_down : string
val slow_consumer : string
(** The connection's write buffer outgrew the server's cap (the
    client stopped reading while responses kept landing); the server
    sends this and hangs up. *)

val internal : string

val err : ?retry_after_ms:int -> string -> string -> error
(** [err code msg]. *)

val classify_run_error : string -> string
(** Maps a {!Fleet.Pool} per-job error message to the matching
    wire code ([deadline_exceeded], [fuel_exhausted], [cancelled]),
    defaulting to [internal]. *)

(** {1 Requests} *)

type request =
  | Health
  | Stats
  | Sim of Fleet.Job.t
  | Sweep of Fleet.Job.t list
  | Compress of { workload : string; codec : string option }

type envelope = {
  id : Json.t;  (** [Null] when the client sent none *)
  timeout_ms : int option;
  fuel : int option;
  request : request;
}

val parse_request : string -> (envelope, Json.t * error) result
(** Parses and validates one request line. On error, the returned id
    is whatever could be salvaged from the line ([Null] if even that
    failed), so the error response still correlates. Workload, codec
    and enum values are validated here against the registries — a
    request that parses is executable. *)

(** {1 Fast-path scanner} *)

type fast_op =
  | Fast_health
  | Fast_stats

val scan_fast :
  Bytes.t -> pos:int -> len:int -> (fast_op * (int * int) option) option
(** [scan_fast buf ~pos ~len] recognizes the hot read-only requests
    without allocating: a line that is exactly a JSON object whose
    members are [op] ("health" or "stats"), optionally a scalar [id]
    (returned as a byte span into [buf], quotes included for
    strings), and optionally [v] equal to 1 — no escapes, no
    duplicates, nothing else. Any other shape returns [None] and must
    go through {!parse_request}; by construction the two paths agree
    on every line the scanner accepts. *)

(** {1 Responses} *)

val ok_line : id:Json.t -> Json.t -> string
(** One complete response line (no trailing newline). *)

val error_line : id:Json.t -> error -> string

val parse_response :
  string -> (Json.t * (Json.t, error) result, string) result
(** Client side: splits a response line into (id, ok payload |
    structured error). [Error] only when the line itself is not a
    valid response object. *)

val metrics_to_json : Core.Metrics.t -> Json.t
(** Every scalar field plus the derived ratios ([overhead_ratio],
    [peak_memory_saving], [avg_memory_saving]). *)

val job_to_json : Fleet.Job.t -> Json.t
(** The spec as it would be written in a request: op-independent
    fields only, suitable for replaying. *)

val outcome_to_json : Fleet.Sweep.outcome -> Json.t
(** Job spec + key + [cached] + either ["metrics"] or ["error"]. *)
