(** The versioned JSONL request/response protocol.

    One request per line, one response line per request, in order.
    A request is a flat JSON object:

    {v
    {"v": 1, "id": 7, "op": "sim", "workload": "fir", "k": 8}
    v}

    - ["v"] (optional) must equal {!protocol_version} when present.
    - ["id"] (optional, any scalar) is echoed verbatim in the
      response so clients can pipeline.
    - ["op"] selects the operation: [health], [stats], [sim],
      [sweep] or [compress].
    - [sim]/[sweep] accept the CLI's whole policy surface
      ([workload]/[workloads], [k]/[ks], [codec], [strategy],
      [lookahead], [predictor], [mode], [budget], [retention],
      [weight], [fraction]) plus per-request guards [timeout_ms] and
      [fuel].
    - [compress] takes [workload] and optionally [codec] (all codecs
      when omitted).

    Responses are [{"id": .., "ok": {..}}] or
    [{"id": .., "error": {"code": .., "msg": ..}}] — malformed input
    is answered with a structured error, never a dropped connection
    or a crash. *)

val protocol_version : int

val default_max_request_bytes : int
(** 65536 — longer request lines are answered with an [oversized]
    error and skipped; the connection stays usable. *)

(** {1 Errors} *)

type error = {
  code : string;
  msg : string;
  retry_after_ms : int option;
      (** only on [overloaded]: the admission layer's backoff hint *)
}

(** Stable error codes (the failure-mode table in DESIGN.md §8). *)

val bad_json : string (* unparseable line *)
val bad_request : string (* parsed, but missing/invalid fields *)
val unknown_op : string
val oversized : string
val overloaded : string
val too_many_connections : string
val deadline_exceeded : string
val fuel_exhausted : string
val cancelled : string
val shutting_down : string
val internal : string

val err : ?retry_after_ms:int -> string -> string -> error
(** [err code msg]. *)

val classify_run_error : string -> string
(** Maps a {!Fleet.Pool} per-job error message to the matching
    wire code ([deadline_exceeded], [fuel_exhausted], [cancelled]),
    defaulting to [internal]. *)

(** {1 Requests} *)

type request =
  | Health
  | Stats
  | Sim of Fleet.Job.t
  | Sweep of Fleet.Job.t list
  | Compress of { workload : string; codec : string option }

type envelope = {
  id : Json.t;  (** [Null] when the client sent none *)
  timeout_ms : int option;
  fuel : int option;
  request : request;
}

val parse_request : string -> (envelope, Json.t * error) result
(** Parses and validates one request line. On error, the returned id
    is whatever could be salvaged from the line ([Null] if even that
    failed), so the error response still correlates. Workload, codec
    and enum values are validated here against the registries — a
    request that parses is executable. *)

(** {1 Responses} *)

val ok_line : id:Json.t -> Json.t -> string
(** One complete response line (no trailing newline). *)

val error_line : id:Json.t -> error -> string

val parse_response :
  string -> (Json.t * (Json.t, error) result, string) result
(** Client side: splits a response line into (id, ok payload |
    structured error). [Error] only when the line itself is not a
    valid response object. *)

val metrics_to_json : Core.Metrics.t -> Json.t
(** Every scalar field plus the derived ratios ([overhead_ratio],
    [peak_memory_saving], [avg_memory_saving]). *)

val job_to_json : Fleet.Job.t -> Json.t
(** The spec as it would be written in a request: op-independent
    fields only, suitable for replaying. *)

val outcome_to_json : Fleet.Sweep.outcome -> Json.t
(** Job spec + key + [cached] + either ["metrics"] or ["error"]. *)
