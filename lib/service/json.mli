(** Minimal JSON values for the wire protocol.

    The repo deliberately stays inside the preinstalled package set,
    so the service carries its own small JSON layer instead of
    depending on yojson: a value type, a strict recursive-descent
    parser (UTF-8 pass-through, [\uXXXX] escapes including surrogate
    pairs, bounded nesting depth), and compact/pretty printers whose
    output re-parses to the same value. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** first binding wins on duplicate keys *)

val parse : string -> (t, string) result
(** Parses exactly one JSON value (leading/trailing whitespace
    allowed; trailing garbage is an error). Integers that fit [int]
    parse as [Int], everything else numeric as [Float]. Nesting
    deeper than 64 levels is rejected, so a hostile request cannot
    blow the stack. *)

val to_string : t -> string
(** Compact, single-line. Strings are emitted with the same escaping
    rules {!Report.Table.json_escape} uses. *)

val pretty : t -> string
(** Two-space-indented multi-line rendering for human eyes ([ccomp
    call]'s output). *)

(** {1 Accessors} — total functions returning options, so request
    validation reads as a pipeline of [let*]s. *)

val member : string -> t -> t option
(** [None] when the value is not an object or lacks the key. *)

val to_int : t -> int option
(** Accepts [Int] and integral [Float]s (JSON has one number type). *)

val to_float : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
