(** Service observability, published through the shared
    {!Sim.Metrics} registry.

    Per-operation request counters (by status), per-operation latency
    histograms in milliseconds, rejection counters (by wire error
    code), connection counters and a queue-depth gauge all live in
    one registry, so [ccomp serve --metrics]-style rendering, the
    [stats] op and test assertions read a single surface.

    {!Sim.Metrics} itself is single-threaded by design; this wrapper
    adds the mutex, so connection handler threads may call everything
    here concurrently. The [stats] payload additionally derives
    p50/p90 from the histograms via {!Sim.Metrics.quantile}. *)

type t

val create : ?registry:Sim.Metrics.t -> unit -> t
(** Wraps [registry] (fresh one when omitted). *)

val registry : t -> Sim.Metrics.t
(** The underlying registry — render it only from the thread that
    owns [t], or after the server stopped. *)

val record : t -> op:string -> ok:bool -> elapsed_ms:float -> unit
(** One served request: bumps [service_requests_total{op,status}] and
    observes the whole-request latency (admission to response
    write). *)

val record_fast : t -> [ `Health | `Stats ] -> unit
(** {!record} for the event loop's preformatted-response path: bumps
    cells preregistered at {!create} time (no label-list allocation)
    and observes a 0 ms latency — these requests are answered within
    one loop iteration, under the histogram's finest bucket. *)

val version : t -> int
(** Monotonic mutation counter: any [record]/[reject]/[connection]/
    [queue_depth]/[absorb_fleet] call bumps it, so a cached rendering
    of {!stats_json} is valid exactly while [version] is unchanged. *)

val reject : t -> code:string -> unit
(** One rejected request ([service_rejections_total{code}]). *)

val connection : t -> [ `Opened | `Closed | `Refused ] -> unit
val queue_depth : t -> int -> unit

val absorb_fleet : t -> Sim.Metrics.t -> unit
(** Adds another registry's [fleet_*] counters (a per-request
    {!Fleet.Sweep.run} registry) into this one, under the lock —
    worker results accumulate server-wide without sharing mutable
    counters across threads. *)

val stats_json : t -> Json.t
(** The [stats] op payload: request/rejection/connection totals, the
    queue-depth gauge, accumulated fleet counters, and per-op latency
    summaries ([count], [mean_ms], [p50_ms], [p90_ms], [max_ms]). *)
