type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let max_depth = 64

exception Bad of string

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over a string with one lookahead index.  *)

type cursor = { src : string; mutable pos : int }

let error c fmt =
  Printf.ksprintf (fun msg -> raise (Bad (Printf.sprintf "at byte %d: %s" c.pos msg))) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some d when d = ch -> advance c
  | Some d -> error c "expected %C, got %C" ch d
  | None -> error c "expected %C, got end of input" ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c "bad literal (expected %s)" word

(* Encodes one Unicode scalar value as UTF-8 into [buf]. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end

let hex4 c =
  let digit ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> error c "bad \\u escape digit %C" ch
  in
  let take () =
    match peek c with
    | Some ch ->
      advance c;
      digit ch
    | None -> error c "truncated \\u escape"
  in
  let a = take () in
  let b = take () in
  let d = take () in
  let e = take () in
  (a lsl 12) lor (b lsl 8) lor (d lsl 4) lor e

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | None -> error c "unterminated escape"
      | Some ch ->
        advance c;
        (match ch with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let u = hex4 c in
          if u >= 0xd800 && u <= 0xdbff then begin
            (* high surrogate: a low surrogate escape must follow *)
            expect c '\\';
            expect c 'u';
            let lo = hex4 c in
            if lo < 0xdc00 || lo > 0xdfff then
              error c "unpaired surrogate \\u%04x" u;
            add_utf8 buf
              (0x10000 + (((u - 0xd800) lsl 10) lor (lo - 0xdc00)))
          end
          else if u >= 0xdc00 && u <= 0xdfff then
            error c "unpaired surrogate \\u%04x" u
          else add_utf8 buf u
        | ch -> error c "bad escape \\%C" ch));
      go ()
    | Some ch when Char.code ch < 0x20 ->
      error c "unescaped control character in string"
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let consume_while pred =
    while (match peek c with Some ch -> pred ch | None -> false) do
      advance c
    done
  in
  if peek c = Some '-' then advance c;
  consume_while (function '0' .. '9' -> true | _ -> false);
  let is_float = ref false in
  if peek c = Some '.' then begin
    is_float := true;
    advance c;
    consume_while (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek c with
  | Some ('e' | 'E') ->
    is_float := true;
    advance c;
    (match peek c with Some ('+' | '-') -> advance c | _ -> ());
    consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error c "bad number %S" text
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* out of int range: fall back to float like every JSON reader *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error c "bad number %S" text)

let rec parse_value c ~depth =
  if depth > max_depth then error c "nesting deeper than %d levels" max_depth;
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c ~depth:(depth + 1) in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> error c "expected ',' or '}' in object"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value c ~depth:(depth + 1) in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> error c "expected ',' or ']' in array"
      in
      List (elements [])
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c "unexpected character %C" ch

let parse src =
  let c = { src; pos = 0 } in
  match
    let v = parse_value c ~depth:0 in
    skip_ws c;
    (match peek c with
    | Some ch -> error c "trailing garbage starting with %C" ch
    | None -> ());
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Printers                                                            *)

(* JSON has no NaN/Inf; emit them as null rather than produce a line
   no reader can parse back. *)
let number_to_string f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (Report.Table.json_escape s);
    Buffer.add_char buf '"'
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (Report.Table.json_escape k);
        Buffer.add_string buf "\":";
        emit buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let pretty v =
  let buf = Buffer.create 512 in
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go indent = function
    | (Null | Bool _ | Int _ | Float _ | Str _) as scalar -> emit buf scalar
    | List [] -> Buffer.add_string buf "[]"
    | Obj [] -> Buffer.add_string buf "{}"
    | List vs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 1);
          go (indent + 1) v)
        vs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (Report.Table.json_escape k);
          Buffer.add_string buf "\": ";
          go (indent + 1) v)
        kvs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 1e15 ->
    Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List vs -> Some vs | _ -> None
