(** Admission control: explicit backpressure instead of unbounded
    queueing.

    Two independent caps, both enforced before any work is queued:

    - a {e request} cap — at most [capacity] heavy requests admitted
      at once (executing on the pool plus waiting for a worker);
      request number [capacity + 1] is rejected immediately with an
      [overloaded] error carrying a [retry_after_ms] hint, so a
      saturated server answers in microseconds instead of building a
      latency bomb;
    - a {e connection} cap — at most [max_conns] concurrent client
      connections; further accepts are answered with one
      [too_many_connections] error line and closed.

    The retry hint is the admission layer's own latency estimate: an
    exponentially-weighted mean of recent request service times,
    scaled by the current depth — i.e. "roughly one drain period from
    now" — clamped to [25..5000] ms.

    Not thread-safe: admission decisions are owned by the server's
    event loop, which acquires on parse and releases when a
    completion is delivered back to it — so no lock sits on the
    fast path. *)

type t

val create : ?capacity:int -> ?max_conns:int -> unit -> t
(** Defaults: [capacity = 64], [max_conns = 64].
    @raise Invalid_argument unless both are >= 1. *)

val capacity : t -> int
val max_conns : t -> int

type rejection = { retry_after_ms : int }

val try_acquire : t -> (unit, rejection) result
(** Admits one request, or rejects with the backoff hint. Every
    successful acquire must be paired with exactly one {!release}. *)

val release : t -> elapsed_ms:float -> unit
(** Returns a slot and feeds the service-time estimate. *)

val in_flight : t -> int

val try_connect : t -> bool
(** Admits one connection ([false] = at the cap). Pair with
    {!disconnect}. *)

val disconnect : t -> unit
val connections : t -> int
