let protocol_version = 1
let default_max_request_bytes = 65536

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)

type error = { code : string; msg : string; retry_after_ms : int option }

let bad_json = "bad_json"
let bad_request = "bad_request"
let unknown_op = "unknown_op"
let oversized = "oversized"
let overloaded = "overloaded"
let too_many_connections = "too_many_connections"
let deadline_exceeded = "deadline_exceeded"
let fuel_exhausted = "fuel_exhausted"
let cancelled = "cancelled"
let shutting_down = "shutting_down"
let slow_consumer = "slow_consumer"
let internal = "internal"

let err ?retry_after_ms code msg = { code; msg; retry_after_ms }

(* The pool reports blown budgets as strings (its public contract);
   map them back to wire codes by their stable prefixes. *)
let classify_run_error msg =
  let has_prefix p = String.length msg >= String.length p
                     && String.sub msg 0 (String.length p) = p in
  if has_prefix "timed out" then deadline_exceeded
  else if has_prefix "fuel exhausted" then fuel_exhausted
  else if msg = "cancelled" then cancelled
  else internal

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

type request =
  | Health
  | Stats
  | Sim of Fleet.Job.t
  | Sweep of Fleet.Job.t list
  | Compress of { workload : string; codec : string option }

type envelope = {
  id : Json.t;
  timeout_ms : int option;
  fuel : int option;
  request : request;
}

let ( let* ) = Result.bind

let fail fmt = Printf.ksprintf (fun msg -> Error (err bad_request msg)) fmt

(* Field accessors over the request object; every branch reports the
   field name so the client can fix its request without guessing. *)

let opt_field obj name decode what =
  match Json.member name obj with
  | None -> Ok None
  | Some v -> (
    match decode v with
    | Some x -> Ok (Some x)
    | None -> fail "field %S: expected %s" name what)

let str_field obj name = opt_field obj name Json.to_str "a string"
let int_field obj name = opt_field obj name Json.to_int "an integer"
let float_field obj name = opt_field obj name Json.to_float "a number"

let positive obj name =
  let* v = int_field obj name in
  match v with
  | Some v when v < 1 -> fail "field %S: must be >= 1 (got %d)" name v
  | v -> Ok v

let default d = function Some v -> v | None -> d

let enum_field obj name choices ~fallback =
  let* v = str_field obj name in
  let v = default fallback v in
  if List.mem v choices then Ok v
  else
    fail "field %S: expected one of %s (got %S)" name
      (String.concat ", " choices)
      v

let workload_ok name = List.mem name Workloads.Suite.names

(* A workload field also accepts corpus specs ([gen:]/[multi:]); they
   are canonicalized here so equal shapes share fleet cache keys no
   matter how the client spelled them. *)
let check_workload name =
  if Corpus.Resolve.is_spec name then
    match Corpus.Resolve.canonicalize ~known:workload_ok name with
    | Ok canonical -> Ok canonical
    | Error msg -> fail "bad scenario spec %S: %s" name msg
  else if workload_ok name then Ok name
  else
    fail "unknown workload %S (known: %s, or a gen:/multi: spec)" name
      (String.concat ", " Workloads.Suite.names)

let check_codec name =
  if name = "code" || List.mem name (Compress.Registry.names ()) then Ok name
  else
    fail "unknown codec %S (known: code, %s)" name
      (String.concat ", " (Compress.Registry.names ()))

let check_profile name =
  if List.mem name Sim.Cost.profile_names then Ok name
  else
    fail "unknown device profile %S (known: %s)" name
      (String.concat ", " Sim.Cost.profile_names)

(* The policy surface shared by sim and sweep: everything in a
   Fleet.Job.t except scenario and k, which the op supplies. *)
let job_builder obj =
  let* codec = str_field obj "codec" in
  let codec = default "code" codec in
  let* codec = check_codec codec in
  let* lookahead = positive obj "lookahead" in
  let lookahead = default 2 lookahead in
  let* predictor =
    enum_field obj "predictor"
      [ "first"; "last-taken"; "profile" ]
      ~fallback:"profile"
  in
  let* strategy =
    let* s =
      enum_field obj "strategy"
        [ "on-demand"; "pre-all"; "pre-single" ]
        ~fallback:"on-demand"
    in
    Ok
      (match s with
      | "pre-all" -> Fleet.Job.Pre_all { lookahead }
      | "pre-single" -> Fleet.Job.Pre_single { lookahead; predictor }
      | _ -> Fleet.Job.On_demand)
  in
  let* mode =
    let* m =
      enum_field obj "mode" [ "discard"; "recompress" ] ~fallback:"discard"
    in
    Ok (if m = "recompress" then Fleet.Job.Recompress else Fleet.Job.Discard)
  in
  let* budget = positive obj "budget" in
  let* profile = str_field obj "profile" in
  let profile = default Fleet.Job.default_profile profile in
  let* profile = check_profile profile in
  let* line_size = positive obj "line_size" in
  let* () =
    match line_size with
    | Some l when l < 4 ->
      fail "field \"line_size\": must be >= 4 bytes (got %d)" l
    | _ -> Ok ()
  in
  let* weight = positive obj "weight" in
  let weight = default 2 weight in
  let* fraction = float_field obj "fraction" in
  let fraction = default 0.5 fraction in
  let* () =
    if fraction > 0.0 && fraction <= 1.0 then Ok ()
    else fail "field \"fraction\": must be in (0, 1] (got %g)" fraction
  in
  let* retention =
    let* r =
      enum_field obj "retention"
        [ "kedge"; "loop-aware"; "clock"; "pin-hot" ]
        ~fallback:"kedge"
    in
    Ok
      (match r with
      | "loop-aware" -> Fleet.Job.Loop_aware { weight }
      | "clock" -> Fleet.Job.Clock
      | "pin-hot" -> Fleet.Job.Pin_hot { fraction }
      | _ -> Fleet.Job.Kedge)
  in
  Ok
    (fun ~scenario ~k ->
      Fleet.Job.make ~codec ~strategy ~mode ?budget ~retention ~profile
        ?line_size ~scenario ~k ())

let parse_sim obj =
  let* workload = str_field obj "workload" in
  let* workload =
    match workload with
    | Some w -> check_workload w
    | None -> fail "op \"sim\" requires field \"workload\""
  in
  let* k = positive obj "k" in
  let k = default 8 k in
  let* build = job_builder obj in
  Ok (Sim (build ~scenario:workload ~k))

let parse_sweep obj =
  let* workloads =
    opt_field obj "workloads"
      (fun v ->
        Option.bind (Json.to_list v) (fun vs ->
            let names = List.filter_map Json.to_str vs in
            if List.length names = List.length vs then Some names else None))
      "a list of workload names"
  in
  let workloads = default Workloads.Suite.names workloads in
  let* () =
    List.fold_left
      (fun acc w ->
        let* () = acc in
        let* _ = check_workload w in
        Ok ())
      (Ok ()) workloads
  in
  let* () = if workloads = [] then fail "field \"workloads\": empty" else Ok () in
  let* ks =
    opt_field obj "ks"
      (fun v ->
        Option.bind (Json.to_list v) (fun vs ->
            let ks = List.filter_map Json.to_int vs in
            if List.length ks = List.length vs then Some ks else None))
      "a list of integers"
  in
  let ks = default [ 1; 2; 4; 8; 16; 32 ] ks in
  let* () = if ks = [] then fail "field \"ks\": empty" else Ok () in
  let* () =
    if List.for_all (fun k -> k >= 1) ks then Ok ()
    else fail "field \"ks\": every k must be >= 1"
  in
  let ks = Fleet.Sweep.normalize_ks ks in
  let* build = job_builder obj in
  Ok
    (Sweep
       (List.concat_map
          (fun scenario -> List.map (fun k -> build ~scenario ~k) ks)
          workloads))

let parse_compress obj =
  let* workload = str_field obj "workload" in
  let* workload =
    match workload with
    | Some w -> check_workload w
    | None -> fail "op \"compress\" requires field \"workload\""
  in
  let* codec = str_field obj "codec" in
  let* codec =
    match codec with
    | None -> Ok None
    | Some c when List.mem c (Compress.Registry.names ()) -> Ok (Some c)
    | Some c ->
      (* "code" (the positional model) has no standalone compressor to
         measure, so compress only takes real registry codecs *)
      fail "unknown codec %S for op \"compress\" (expected %s)" c
        (String.concat ", " (Compress.Registry.names ()))
  in
  Ok (Compress { workload; codec })

let parse_request line =
  match Json.parse line with
  | Error msg -> Error (Json.Null, err bad_json msg)
  | Ok json -> (
    let id = default Json.Null (Json.member "id" json) in
    let tag e = Error (id, e) in
    match
      let* () =
        match json with
        | Json.Obj _ -> Ok ()
        | _ -> fail "request must be a JSON object"
      in
      let* v = int_field json "v" in
      let* () =
        match v with
        | Some v when v <> protocol_version ->
          fail "protocol version %d not supported (this server speaks %d)" v
            protocol_version
        | _ -> Ok ()
      in
      let* timeout_ms = positive json "timeout_ms" in
      let* fuel = positive json "fuel" in
      let* op = str_field json "op" in
      let* request =
        match op with
        | None -> fail "missing field \"op\""
        | Some "health" -> Ok Health
        | Some "stats" -> Ok Stats
        | Some "sim" -> parse_sim json
        | Some "sweep" -> parse_sweep json
        | Some "compress" -> parse_compress json
        | Some other ->
          Error
            (err unknown_op
               (Printf.sprintf
                  "unknown op %S (known: health, stats, sim, sweep, compress)"
                  other))
      in
      Ok { id; timeout_ms; fuel; request }
    with
    | Ok envelope -> Ok envelope
    | Error e -> tag e)

(* ------------------------------------------------------------------ *)
(* Fast-path scanner                                                   *)

type fast_op =
  | Fast_health
  | Fast_stats

exception Bail

(* Recognizes exactly the hot read-only requests —
   [{"op":"health"}]-shaped lines whose only members are [op], a
   scalar [id] and [v] equal to 1 — without allocating. Anything
   else (escapes, duplicate members, extra fields, nested ids, other
   protocol versions) bails to the full parser, so the fast path can
   never accept a request the slow path would reject or vice versa.
   The returned id span points into [buf] and is valid only until the
   caller consumes the line. *)
let scan_fast buf ~pos ~len =
  let stop = pos + len in
  let i = ref pos in
  let peek () = if !i < stop then Bytes.unsafe_get buf !i else raise Bail in
  let ws () =
    while
      !i < stop
      &&
      match Bytes.unsafe_get buf !i with
      | ' ' | '\t' | '\r' -> true
      | _ -> false
    do
      incr i
    done
  in
  let expect c =
    if peek () = c then incr i else raise Bail
  in
  let literal s =
    String.iter
      (fun c ->
        if peek () = c then incr i else raise Bail)
      s
  in
  (* a quoted string with no escapes; returns (start, length) of the
     whole token including the quotes *)
  let quoted () =
    let s0 = !i in
    expect '"';
    let rec go () =
      match peek () with
      | '"' -> incr i
      | '\\' -> raise Bail
      | c when Char.code c < 0x20 -> raise Bail
      | _ ->
        incr i;
        go ()
    in
    go ();
    (s0, !i - s0)
  in
  let number () =
    (match peek () with
    | '-' -> incr i
    | _ -> ());
    (match peek () with '0' .. '9' -> incr i | _ -> raise Bail);
    while
      !i < stop
      &&
      match Bytes.unsafe_get buf !i with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      incr i
    done
  in
  let scalar () =
    let s0 = !i in
    (match peek () with
    | '"' -> ignore (quoted ())
    | '-' | '0' .. '9' -> number ()
    | 't' -> literal "true"
    | 'f' -> literal "false"
    | 'n' -> literal "null"
    | _ -> raise Bail);
    (s0, !i - s0)
  in
  let key_is s (k0, klen) =
    klen = String.length s + 2
    &&
    let ok = ref true in
    String.iteri
      (fun j c -> if Bytes.unsafe_get buf (k0 + 1 + j) <> c then ok := false)
      s;
    !ok
  in
  try
    ws ();
    expect '{';
    let op = ref None and id = ref None and v_seen = ref false in
    let rec members () =
      ws ();
      let k = quoted () in
      ws ();
      expect ':';
      ws ();
      if key_is "op" k then begin
        if !op <> None then raise Bail;
        let v0, vlen = quoted () in
        if key_is "health" (v0, vlen) then op := Some Fast_health
        else if key_is "stats" (v0, vlen) then op := Some Fast_stats
        else raise Bail
      end
      else if key_is "id" k then begin
        if !id <> None then raise Bail;
        id := Some (scalar ())
      end
      else if key_is "v" k then begin
        if !v_seen then raise Bail;
        v_seen := true;
        expect '1';
        match if !i < stop then Bytes.unsafe_get buf !i else ',' with
        | '0' .. '9' | '.' | 'e' | 'E' -> raise Bail (* 10, 1.5, 1e2 *)
        | _ -> ()
      end
      else raise Bail;
      ws ();
      match peek () with
      | ',' ->
        incr i;
        members ()
      | '}' -> incr i
      | _ -> raise Bail
    in
    ws ();
    (match peek () with
    | '}' -> raise Bail (* no op: the slow path owns the error *)
    | _ -> members ());
    ws ();
    if !i <> stop then raise Bail;
    match !op with Some o -> Some (o, !id) | None -> raise Bail
  with Bail -> None

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let ok_line ~id payload = Json.to_string (Json.Obj [ ("id", id); ("ok", payload) ])

let error_line ~id { code; msg; retry_after_ms } =
  let fields =
    [ ("code", Json.Str code); ("msg", Json.Str msg) ]
    @
    match retry_after_ms with
    | Some ms -> [ ("retry_after_ms", Json.Int ms) ]
    | None -> []
  in
  Json.to_string (Json.Obj [ ("id", id); ("error", Json.Obj fields) ])

let parse_response line =
  match Json.parse line with
  | Error msg -> Error (Printf.sprintf "unparseable response: %s" msg)
  | Ok json -> (
    let id = default Json.Null (Json.member "id" json) in
    match (Json.member "ok" json, Json.member "error" json) with
    | Some payload, None -> Ok (id, Ok payload)
    | None, Some e ->
      let str name = Option.bind (Json.member name e) Json.to_str in
      let code = default "internal" (str "code") in
      let msg = default "" (str "msg") in
      let retry_after_ms =
        Option.bind (Json.member "retry_after_ms" e) Json.to_int
      in
      Ok (id, Error { code; msg; retry_after_ms })
    | _ -> Error "response has neither \"ok\" nor \"error\"")

let metrics_to_json (m : Core.Metrics.t) =
  Json.Obj
    [
      ("total_cycles", Json.Int m.total_cycles);
      ("exec_cycles", Json.Int m.exec_cycles);
      ("exception_cycles", Json.Int m.exception_cycles);
      ("patch_cycles", Json.Int m.patch_cycles);
      ("demand_dec_cycles", Json.Int m.demand_dec_cycles);
      ("stall_cycles", Json.Int m.stall_cycles);
      ("baseline_cycles", Json.Int m.baseline_cycles);
      ("exceptions", Json.Int m.exceptions);
      ("patches", Json.Int m.patches);
      ("demand_decompressions", Json.Int m.demand_decompressions);
      ("prefetch_decompressions", Json.Int m.prefetch_decompressions);
      ("useful_prefetches", Json.Int m.useful_prefetches);
      ("wasted_prefetches", Json.Int m.wasted_prefetches);
      ("discards", Json.Int m.discards);
      ("evictions", Json.Int m.evictions);
      ("budget_overflows", Json.Int m.budget_overflows);
      ("dec_thread_busy_cycles", Json.Int m.dec_thread_busy_cycles);
      ("comp_thread_busy_cycles", Json.Int m.comp_thread_busy_cycles);
      ("energy_nj", Json.Int m.energy_nj);
      ("exec_energy_nj", Json.Int m.exec_energy_nj);
      ("exception_energy_nj", Json.Int m.exception_energy_nj);
      ("patch_energy_nj", Json.Int m.patch_energy_nj);
      ("dec_energy_nj", Json.Int m.dec_energy_nj);
      ("comp_energy_nj", Json.Int m.comp_energy_nj);
      ("ram_static_energy_nj", Json.Int m.ram_static_energy_nj);
      ("baseline_energy_nj", Json.Int m.baseline_energy_nj);
      ("original_bytes", Json.Int m.original_bytes);
      ("compressed_area_bytes", Json.Int m.compressed_area_bytes);
      ("peak_decompressed_bytes", Json.Int m.peak_decompressed_bytes);
      ("avg_decompressed_bytes", Json.Float m.avg_decompressed_bytes);
      ("peak_footprint_bytes", Json.Int m.peak_footprint_bytes);
      ("avg_footprint_bytes", Json.Float m.avg_footprint_bytes);
      ("trace_length", Json.Int m.trace_length);
      ("blocks", Json.Int m.blocks);
      ("overhead_ratio", Json.Float (Core.Metrics.overhead_ratio m));
      ("peak_memory_saving", Json.Float (Core.Metrics.peak_memory_saving m));
      ("avg_memory_saving", Json.Float (Core.Metrics.avg_memory_saving m));
      ( "energy_overhead_ratio",
        Json.Float (Core.Metrics.energy_overhead_ratio m) );
    ]

let job_to_json (j : Fleet.Job.t) =
  let strategy, lookahead, predictor =
    match j.strategy with
    | Fleet.Job.On_demand -> ("on-demand", None, None)
    | Fleet.Job.Pre_all { lookahead } -> ("pre-all", Some lookahead, None)
    | Fleet.Job.Pre_single { lookahead; predictor } ->
      ("pre-single", Some lookahead, Some predictor)
  in
  let retention, weight, fraction =
    match j.retention with
    | Fleet.Job.Kedge -> ("kedge", None, None)
    | Fleet.Job.Loop_aware { weight } -> ("loop-aware", Some weight, None)
    | Fleet.Job.Clock -> ("clock", None, None)
    | Fleet.Job.Pin_hot { fraction } -> ("pin-hot", None, Some fraction)
  in
  let optional name f v =
    match v with Some v -> [ (name, f v) ] | None -> []
  in
  Json.Obj
    ([
       ("workload", Json.Str j.scenario);
       ("codec", Json.Str j.codec);
       ("k", Json.Int j.k);
       ("strategy", Json.Str strategy);
     ]
    @ optional "lookahead" (fun v -> Json.Int v) lookahead
    @ optional "predictor" (fun v -> Json.Str v) predictor
    @ [
        ( "mode",
          Json.Str
            (match j.mode with
            | Fleet.Job.Discard -> "discard"
            | Fleet.Job.Recompress -> "recompress") );
      ]
    @ optional "budget" (fun v -> Json.Int v) j.budget
    @ [ ("retention", Json.Str retention) ]
    @ optional "weight" (fun v -> Json.Int v) weight
    @ optional "fraction" (fun v -> Json.Float v) fraction
    @ [ ("profile", Json.Str j.profile) ]
    @ optional "line_size" (fun v -> Json.Int v) j.line_size)

let outcome_to_json (o : Fleet.Sweep.outcome) =
  Json.Obj
    ([
       ("job", job_to_json o.job);
       ("key", Json.Str (Fleet.Job.key o.job));
       ("cached", Json.Bool o.cached);
     ]
    @
    match o.result with
    | Ok m -> [ ("metrics", metrics_to_json m) ]
    | Error msg ->
      [
        ( "error",
          Json.Obj
            [
              ("code", Json.Str (classify_run_error msg));
              ("msg", Json.Str msg);
            ] );
      ])
