type t = {
  drain : bool Atomic.t;
  cancel : bool Atomic.t;
  last_activity : float Atomic.t;  (* Unix.gettimeofday *)
  drain_at : float Atomic.t;  (* 0.0 until the first request_drain *)
}

let create () =
  {
    drain = Atomic.make false;
    cancel = Atomic.make false;
    last_activity = Atomic.make (Unix.gettimeofday ());
    drain_at = Atomic.make 0.0;
  }

let request_drain t =
  if Atomic.compare_and_set t.drain false true then
    Atomic.set t.drain_at (Unix.gettimeofday ())

let draining t = Atomic.get t.drain

let draining_since t =
  match Atomic.get t.drain_at with 0.0 -> None | at -> Some at

let force_cancel t =
  request_drain t;
  Atomic.set t.cancel true

let cancel_requested t = Atomic.get t.cancel

let install_signal_handlers t =
  (* EPIPE over SIGPIPE: socket writes to a gone client must be an
     exception on that connection's thread, not process death. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let handle _ = if draining t then force_cancel t else request_drain t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handle);
  Sys.set_signal Sys.sigint (Sys.Signal_handle handle)

let touch t = Atomic.set t.last_activity (Unix.gettimeofday ())
let idle_for t = Float.max 0.0 (Unix.gettimeofday () -. Atomic.get t.last_activity)
