type t = {
  drain : bool Atomic.t;
  cancel : bool Atomic.t;
  last_activity : float Atomic.t;  (* Unix.gettimeofday *)
}

let create () =
  {
    drain = Atomic.make false;
    cancel = Atomic.make false;
    last_activity = Atomic.make (Unix.gettimeofday ());
  }

let request_drain t = Atomic.set t.drain true
let draining t = Atomic.get t.drain

let force_cancel t =
  Atomic.set t.drain true;
  Atomic.set t.cancel true

let cancel_requested t = Atomic.get t.cancel

let install_signal_handlers t =
  (* EPIPE over SIGPIPE: socket writes to a gone client must be an
     exception on that connection's thread, not process death. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let handle _ = if draining t then force_cancel t else request_drain t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handle);
  Sys.set_signal Sys.sigint (Sys.Signal_handle handle)

let touch t = Atomic.set t.last_activity (Unix.gettimeofday ())
let idle_for t = Float.max 0.0 (Unix.gettimeofday () -. Atomic.get t.last_activity)
