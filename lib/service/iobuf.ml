(* A growable byte buffer specialised for the event loop: data is
   appended at the tail, consumed from the head, and moved in and out
   of nonblocking fds in bulk. The live region is [off, off + len);
   consuming everything resets [off] to 0 so steady-state traffic
   never memmoves, and a partially-consumed buffer compacts lazily
   only when an append would otherwise grow it. *)

type t = { mutable buf : Bytes.t; mutable off : int; mutable len : int }

let create ?(initial = 4096) () =
  { buf = Bytes.create (max 16 initial); off = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let clear t =
  t.off <- 0;
  t.len <- 0

let bytes t = t.buf
let offset t = t.off

let compact t =
  if t.off > 0 then begin
    if t.len > 0 then Bytes.blit t.buf t.off t.buf 0 t.len;
    t.off <- 0
  end

let reserve t n =
  if t.off + t.len + n > Bytes.length t.buf then begin
    compact t;
    if t.len + n > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while t.len + n > !cap do
        cap := !cap * 2
      done;
      let grown = Bytes.create !cap in
      Bytes.blit t.buf 0 grown 0 t.len;
      t.buf <- grown
    end
  end

let add_subbytes t src pos n =
  reserve t n;
  Bytes.blit src pos t.buf (t.off + t.len) n;
  t.len <- t.len + n

let add_string t s =
  let n = String.length s in
  reserve t n;
  Bytes.blit_string s 0 t.buf (t.off + t.len) n;
  t.len <- t.len + n

let add_char t c =
  reserve t 1;
  Bytes.set t.buf (t.off + t.len) c;
  t.len <- t.len + 1

let consume t n =
  if n < 0 || n > t.len then
    invalid_arg "Service.Iobuf.consume: out of range";
  t.off <- t.off + n;
  t.len <- t.len - n;
  if t.len = 0 then t.off <- 0

(* Bounded to the live region: a '\n' lurking in the dead tail of the
   backing store must not count. *)
let find_newline t ~from =
  let stop = t.off + t.len in
  let rec go i =
    if i >= stop then None
    else if Bytes.unsafe_get t.buf i = '\n' then Some (i - t.off)
    else go (i + 1)
  in
  if from < 0 || from > t.len then None else go (t.off + from)

type fill =
  | Filled of int
  | Fill_eof
  | Fill_blocked

let rec fill_from t fd ~max =
  reserve t max;
  match Unix.read fd t.buf (t.off + t.len) max with
  | 0 -> Fill_eof
  | n ->
    t.len <- t.len + n;
    Filled n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    Fill_blocked
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill_from t fd ~max

type drain =
  | Drained
  | Drain_blocked

let rec drain_to t fd =
  if t.len = 0 then Drained
  else
    match Unix.write fd t.buf t.off t.len with
    | n ->
      consume t n;
      drain_to t fd
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain_to t fd
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Drain_blocked
