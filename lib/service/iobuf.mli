(** Growable I/O buffers for the event loop.

    One [t] per direction per connection: the read buffer accumulates
    raw socket bytes until complete JSONL lines can be carved out of
    it in place; the write buffer holds response bytes waiting for the
    socket to accept them. Appends go at the tail, consumption at the
    head; draining the buffer fully resets it, so a connection that
    keeps up never copies.

    Not thread-safe — buffers are owned by the loop. *)

type t

val create : ?initial:int -> unit -> t
(** [initial] is the starting capacity (default 4096, minimum 16).
    The buffer doubles as needed and never shrinks. *)

val length : t -> int
(** Bytes currently buffered (appended and not yet consumed). *)

val is_empty : t -> bool
val clear : t -> unit

(** {1 Zero-copy access}

    [bytes]/[offset] expose the live region directly:
    [Bytes.sub (bytes t) (offset t) (length t)] is the buffered data.
    Any [add_*], [consume], [fill_from] or [drain_to] call invalidates
    previously-read positions. *)

val bytes : t -> Bytes.t
val offset : t -> int

val find_newline : t -> from:int -> int option
(** Position (relative to the live region's start) of the first ['\n']
    at or after offset [from], if any — the incremental line framer.
    Out-of-range [from] returns [None]. *)

(** {1 Appending and consuming} *)

val add_subbytes : t -> Bytes.t -> int -> int -> unit
val add_string : t -> string -> unit
val add_char : t -> char -> unit

val consume : t -> int -> unit
(** Drops [n] bytes from the head.
    @raise Invalid_argument when [n] is outside [0, length t]. *)

(** {1 Nonblocking fd transfer} *)

type fill =
  | Filled of int  (** that many bytes appended *)
  | Fill_eof  (** orderly shutdown from the peer *)
  | Fill_blocked  (** [EAGAIN]: nothing ready *)

val fill_from : t -> Unix.file_descr -> max:int -> fill
(** One [read(2)] of at most [max] bytes appended at the tail.
    Retries [EINTR]; other I/O errors (connection reset, bad fd)
    propagate as [Unix.Unix_error] for the caller's close path. *)

type drain =
  | Drained  (** buffer now empty *)
  | Drain_blocked  (** kernel buffer full; bytes remain *)

val drain_to : t -> Unix.file_descr -> drain
(** Writes from the head until empty or [EAGAIN]. Retries [EINTR];
    [EPIPE] and friends propagate. *)
