(** Load generator for the service event loop.

    Each client is a {!Domain} (systhreads share one runtime lock, so
    threads could not generate load in parallel) running a blocking
    socket with a sliding window of [pipeline] requests in flight;
    writes are batched so a window refill is one syscall. Requests
    carry [id = 0..requests-1] and responses are re-associated by
    that id, so the measured latency of a request is its own
    send-to-receive time even when the server answers out of order.

    Throughput is total responses over the union wall-clock of all
    clients (first send to last receive); latency quantiles are over
    the merged per-request samples. *)

type result = {
  clients : int;
  pipeline : int;
  total : int;  (** responses received *)
  errors : int;  (** non-[ok] responses + responses that never came *)
  wall_s : float;
  req_per_s : float;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
}

val run_load :
  ?tcp:bool ->
  ?op:string ->
  ?jobs:int ->
  clients:int ->
  requests:int ->
  pipeline:int ->
  unit ->
  result
(** Spins up an in-process {!Server} (on a throwaway Unix socket
    under the temp dir, or an ephemeral loopback TCP port when [tcp]),
    runs [clients] generator domains of [requests] requests each
    against it, then drains the server. [op] defaults to ["health"]
    (the fast path); [jobs] sizes the server pool (default 1 — light
    ops never touch it).
    @raise Invalid_argument when a knob is < 1. *)

val run_against :
  addr:Unix.sockaddr ->
  ?op:string ->
  clients:int ->
  requests:int ->
  pipeline:int ->
  unit ->
  result
(** The client half only, against a server someone else runs. *)
