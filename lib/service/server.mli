(** The resident simulation daemon.

    A single-threaded event loop multiplexes every connection over
    nonblocking sockets and [Unix.select]: one readiness pass reads
    whatever arrived, carves complete JSONL requests out of per-
    connection buffers ({!Iobuf}), answers [health]/[stats] inline
    from preformatted bytes ({!Wire.scan_fast}), and hands heavy
    requests to worker threads that run them on the shared
    {!Fleet.Pool} — completions funnel back over a self-pipe and are
    written out by the loop. Concurrent clients share the worker
    domains, the scenario memo and the content-addressed result cache
    instead of each paying cold-start cost, which is the whole point
    of serving from warm state.

    Clients may pipeline: many requests in flight per connection,
    light ops answered in order, heavy ops completing out of order
    and re-associated by [id] (see {!Wire}). A connection whose
    buffered output exceeds [max_buffer_bytes] is shed with a
    [slow_consumer] error; one whose output sits above half that cap
    simply stops being read until it drains (backpressure).

    [select]'s [FD_SETSIZE] (1024 on Linux) bounds the loop to ~1000
    concurrent descriptors — far above the default [max_conns] of 64;
    raise [max_conns] past that and the kernel, not this server, will
    complain.

    Per-request guards reuse the fleet's budget machinery
    ([timeout_ms]/[fuel] from the request, capped by the server
    defaults); admission control is {!Admission} (loop-owned);
    shutdown is {!Lifecycle}'s drain contract. *)

type config = {
  socket_path : string option;  (** Unix-domain endpoint *)
  tcp_port : int option;  (** loopback TCP endpoint *)
  jobs : int;  (** shared pool size *)
  queue : int;
      (** admission capacity on top of the executing requests: at
          most [jobs + queue] heavy requests in flight *)
  max_conns : int;
  cache : Fleet.Cache.t option;
  fuel : int option;  (** default per-request fuel *)
  timeout_ms : int option;  (** default per-request deadline *)
  idle_timeout_s : float option;
      (** self-drain after this much full idleness (no connections,
          no requests) *)
  drain_grace_s : float;
      (** how long a drain waits for in-flight work before escalating
          to the pool's cancel hook *)
  max_request_bytes : int;
  max_buffer_bytes : int;
      (** shed a connection ([slow_consumer]) once its buffered
          output exceeds this; reads pause at half of it *)
}

val default_config : config
(** No endpoints (callers must set at least one), [jobs = 1],
    [queue = 64], [max_conns = 64], no cache, no default guards, no
    idle timeout, 10s drain grace,
    {!Wire.default_max_request_bytes}, 4 MiB write-buffer cap. *)

type t

val create :
  ?telemetry:Telemetry.t -> ?lifecycle:Lifecycle.t -> config -> t
(** Binds and listens on every configured endpoint and spawns the
    worker pool. A stale Unix socket file (left by a crashed server)
    is unlinked and rebound; a path that exists but is not a socket
    is an error. Binding [tcp_port = Some 0] picks an ephemeral port;
    {!endpoints} reports the real one.
    @raise Invalid_argument if no endpoint is configured or a knob is
    out of range.
    @raise Unix.Unix_error when binding fails (path not writable,
    port taken). *)

val endpoints : t -> string list
(** Human-readable bound endpoints, e.g. ["unix:/tmp/ccomp.sock"]. *)

val telemetry : t -> Telemetry.t
val lifecycle : t -> Lifecycle.t

val run : t -> unit
(** Serves until drained: runs the event loop, then — once
    {!Lifecycle.request_drain} fires (signal, {!stop}, or the idle
    timeout) — stops accepting and unlinks the Unix socket, keeps
    serving open connections until every in-flight request (including
    pipelined ones) has been answered, escalates to cooperative
    cancellation if [drain_grace_s] expires, then stops reading,
    flushes every write buffer, disconnects remaining clients and
    shuts the pool down. Returns normally; the caller owns the exit
    code. *)

val stop : t -> unit
(** {!Lifecycle.request_drain} on the server's lifecycle — the
    programmatic equivalent of SIGTERM. Callable from any thread;
    {!run} notices within one select tick. *)
