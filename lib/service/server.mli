(** The resident simulation daemon.

    One accept loop over a Unix-domain socket (and optionally a
    loopback TCP port), one reader/writer thread per connection, and
    every heavy request dispatched onto a single shared
    {!Fleet.Pool} through {!Fleet.Sweep.run} — so concurrent clients
    share the worker domains, the scenario memo and the
    content-addressed result cache instead of each paying cold-start
    cost, which is the whole point of serving from warm state.

    Per-request guards reuse the fleet's budget machinery
    ([timeout_ms]/[fuel] from the request, capped by the server
    defaults); admission control is {!Admission}; shutdown is
    {!Lifecycle}'s drain contract. *)

type config = {
  socket_path : string option;  (** Unix-domain endpoint *)
  tcp_port : int option;  (** loopback TCP endpoint *)
  jobs : int;  (** shared pool size *)
  queue : int;
      (** admission capacity on top of the executing requests: at
          most [jobs + queue] heavy requests in flight *)
  max_conns : int;
  cache : Fleet.Cache.t option;
  fuel : int option;  (** default per-request fuel *)
  timeout_ms : int option;  (** default per-request deadline *)
  idle_timeout_s : float option;
      (** self-drain after this much full idleness (no connections,
          no requests) *)
  drain_grace_s : float;
      (** how long a drain waits for in-flight work before escalating
          to the pool's cancel hook *)
  max_request_bytes : int;
}

val default_config : config
(** No endpoints (callers must set at least one), [jobs = 1],
    [queue = 64], [max_conns = 64], no cache, no default guards, no
    idle timeout, 10s drain grace,
    {!Wire.default_max_request_bytes}. *)

type t

val create :
  ?telemetry:Telemetry.t -> ?lifecycle:Lifecycle.t -> config -> t
(** Binds and listens on every configured endpoint and spawns the
    worker pool. A stale Unix socket file (left by a crashed server)
    is unlinked and rebound; a path that exists but is not a socket
    is an error.
    @raise Invalid_argument if no endpoint is configured or a knob is
    out of range.
    @raise Unix.Unix_error when binding fails (path not writable,
    port taken). *)

val endpoints : t -> string list
(** Human-readable bound endpoints, e.g. ["unix:/tmp/ccomp.sock"]. *)

val telemetry : t -> Telemetry.t
val lifecycle : t -> Lifecycle.t

val run : t -> unit
(** Serves until drained: accepts connections, then — once
    {!Lifecycle.request_drain} fires (signal, {!stop}, or the idle
    timeout) — stops accepting, waits up to [drain_grace_s] for
    in-flight requests, escalates to cooperative cancellation if the
    grace expires, disconnects every remaining client, joins all
    threads, shuts the pool down and unlinks the Unix socket.
    Returns normally; the caller owns the exit code. *)

val stop : t -> unit
(** {!Lifecycle.request_drain} on the server's lifecycle — the
    programmatic equivalent of SIGTERM. Callable from any thread;
    {!run} notices within one accept-poll tick. *)
