type result = {
  clients : int;
  pipeline : int;
  total : int;
  errors : int;
  wall_s : float;
  req_per_s : float;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
}

type client_result = {
  lat_ms : float array;  (* one entry per received response *)
  started : float;
  finished : float;
  errs : int;
}

(* One generator client: blocking socket, a sliding window of
   [pipeline] requests in flight, writes batched through one buffer
   so a refill is a single syscall. Requests are [{"op":OP,"id":N}]
   and responses are re-associated by that id, so out-of-order
   completion still times every request against its own send. *)
let client ~addr ~op ~requests ~pipeline =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd addr;
      (match addr with
      | Unix.ADDR_INET _ -> (
        try Unix.setsockopt fd Unix.TCP_NODELAY true
        with Unix.Unix_error _ -> ())
      | _ -> ());
      let ic = Unix.in_channel_of_descr fd in
      let prefix = Printf.sprintf "{\"op\":%s,\"id\":" (Json.to_string (Json.Str op)) in
      let sent_at = Array.make requests 0.0 in
      let lat_ms = Array.make requests 0.0 in
      let sent = ref 0 in
      let received = ref 0 in
      let errs = ref 0 in
      let batch = Buffer.create (pipeline * 32) in
      let send_upto target =
        let target = min target requests in
        if !sent < target then begin
          Buffer.clear batch;
          let t = Unix.gettimeofday () in
          while !sent < target do
            Buffer.add_string batch prefix;
            Buffer.add_string batch (string_of_int !sent);
            Buffer.add_string batch "}\n";
            sent_at.(!sent) <- t;
            incr sent
          done;
          let line = Buffer.contents batch in
          let n = String.length line in
          let off = ref 0 in
          while !off < n do
            off := !off + Unix.write_substring fd line !off (n - !off)
          done
        end
      in
      (* response head is always [{"id":N,"ok":...] on success *)
      let parse line =
        let n = String.length line in
        if n > 6 && String.sub line 0 6 = "{\"id\":" then begin
          let i = ref 6 in
          let v = ref 0 in
          let any = ref false in
          while
            !i < n
            && match line.[!i] with '0' .. '9' -> true | _ -> false
          do
            v := (!v * 10) + (Char.code line.[!i] - 48);
            incr i;
            any := true
          done;
          if !any && !i + 6 <= n && String.sub line !i 6 = ",\"ok\":" then
            Some !v
          else None
        end
        else None
      in
      let started = Unix.gettimeofday () in
      send_upto pipeline;
      (try
         while !received < requests do
           let line = input_line ic in
           let t1 = Unix.gettimeofday () in
           (match parse line with
           | Some id when id >= 0 && id < requests ->
             lat_ms.(!received) <- (t1 -. sent_at.(id)) *. 1000.0
           | _ -> incr errs);
           incr received;
           if !sent < requests && !sent - !received <= pipeline / 2 then
             send_upto (!received + pipeline)
         done
       with End_of_file ->
         (* server shed or died; whatever never arrived is an error *)
         errs := !errs + (requests - !received));
      let finished = Unix.gettimeofday () in
      {
        lat_ms = (if !received = requests then lat_ms
                  else Array.sub lat_ms 0 !received);
        started;
        finished;
        errs = !errs;
      })

let sockaddr_of_endpoint ep =
  match String.index_opt ep ':' with
  | Some i when String.sub ep 0 i = "unix" ->
    Unix.ADDR_UNIX (String.sub ep (i + 1) (String.length ep - i - 1))
  | Some i when String.sub ep 0 i = "tcp" -> (
    let rest = String.sub ep (i + 1) (String.length ep - i - 1) in
    match String.rindex_opt rest ':' with
    | Some j ->
      Unix.ADDR_INET
        ( Unix.inet_addr_of_string (String.sub rest 0 j),
          int_of_string (String.sub rest (j + 1) (String.length rest - j - 1))
        )
    | None -> invalid_arg ("Service.Bench: bad endpoint " ^ ep))
  | _ -> invalid_arg ("Service.Bench: bad endpoint " ^ ep)

let summarize ~clients ~pipeline per =
  let per = Array.to_list per in
  let all = Array.concat (List.map (fun r -> r.lat_ms) per) in
  Array.sort Float.compare all;
  let n = Array.length all in
  let q p =
    if n = 0 then 0.0 else all.(int_of_float (p *. float_of_int (n - 1)))
  in
  let errors = List.fold_left (fun a r -> a + r.errs) 0 per in
  let started =
    List.fold_left (fun a r -> Float.min a r.started) infinity per
  in
  let finished =
    List.fold_left (fun a r -> Float.max a r.finished) neg_infinity per
  in
  let wall_s = Float.max 1e-9 (finished -. started) in
  {
    clients;
    pipeline;
    total = n;
    errors;
    wall_s;
    req_per_s = float_of_int n /. wall_s;
    p50_ms = q 0.50;
    p99_ms = q 0.99;
    max_ms = (if n = 0 then 0.0 else all.(n - 1));
  }

let run_against ~addr ?(op = "health") ~clients ~requests ~pipeline () =
  if clients < 1 then invalid_arg "Service.Bench: clients must be >= 1";
  if requests < 1 then invalid_arg "Service.Bench: requests must be >= 1";
  if pipeline < 1 then invalid_arg "Service.Bench: pipeline must be >= 1";
  let domains =
    Array.init clients (fun _ ->
        Domain.spawn (fun () -> client ~addr ~op ~requests ~pipeline))
  in
  summarize ~clients ~pipeline (Array.map Domain.join domains)

let fresh_socket_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ccomp-bench-%d-%d.sock" (Unix.getpid ()) !counter)
    in
    (match Unix.lstat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
    | _ -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    path

let run_load ?(tcp = false) ?(op = "health") ?(jobs = 1) ~clients ~requests
    ~pipeline () =
  let socket_path = if tcp then None else Some (fresh_socket_path ()) in
  let config =
    {
      Server.default_config with
      socket_path;
      tcp_port = (if tcp then Some 0 (* ephemeral *) else None);
      jobs;
      max_conns = clients + 8;
    }
  in
  let server = Server.create config in
  let runner = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join runner)
    (fun () ->
      let addr = sockaddr_of_endpoint (List.hd (Server.endpoints server)) in
      run_against ~addr ~op ~clients ~requests ~pipeline ())
