(** On-disk content-addressed result cache.

    Maps a {!Job.key} to a serialized {!Core.Metrics.t}: one file per
    entry under the cache directory, named by the key. Writes go
    through a temp file in the same directory followed by an atomic
    rename, so a crashed or concurrent writer can never leave a
    half-entry behind — at worst the rename loser overwrites the
    winner with identical content. Reads are paranoid: an entry that
    is unreadable, truncated, corrupt, or written by a different
    format version is a {e miss}, never an exception — the job simply
    re-runs and the entry is rewritten. *)

type t

val entry_version : int
(** Bumped whenever the serialized entry format (or the meaning of
    any metrics field) changes; entries from other versions are
    ignored. *)

val default_dir : string
(** [".ccomp-cache"] — the conventional location, listed in
    [.gitignore]. *)

val open_dir : string -> t
(** Creates the directory (and missing parents) if needed.
    @raise Sys_error if the path exists but is not a directory, or
    cannot be created. *)

val dir : t -> string

val find : t -> string -> Core.Metrics.t option
(** [None] on missing, corrupt or version-mismatched entries. *)

val store : t -> string -> Core.Metrics.t -> unit
(** Atomic tmp+rename write. Best-effort: an I/O failure (disk full,
    permissions) raises [Sys_error]; the entry is either fully
    written or absent. *)

(** {1 Housekeeping}

    A long-lived server writes one entry per distinct job forever, so
    the directory needs an eviction story. *)

type stats = { entries : int; bytes : int }

val stats : t -> stats
(** Entry count and total bytes currently on disk (only [.metrics]
    files are counted). Concurrent writers are tolerated; the answer
    is a point-in-time snapshot. *)

val gc : t -> max_bytes:int -> stats
(** Evicts oldest-mtime-first until the surviving entries total at
    most [max_bytes]; returns what was removed. Each removal is a
    single atomic unlink, so concurrent readers see either a hit or a
    clean miss, never a torn entry; entries stored concurrently with
    the scan may survive over nominally older ones (they are simply
    not in the snapshot). [max_bytes = 0] empties the cache.
    @raise Invalid_argument if [max_bytes < 0]. *)

(** {1 Entry serialization} (exposed for tests) *)

val metrics_to_string : Core.Metrics.t -> string
(** Versioned [field=value] text; floats rendered in hexadecimal so
    they round-trip bit-exactly. *)

val metrics_of_string : string -> (Core.Metrics.t, string) result
(** Strict inverse: every field required exactly once, no unknown
    fields, version must match {!entry_version}. *)
