type outcome = {
  job : Job.t;
  result : (Core.Metrics.t, string) result;
  cached : bool;
}

let counter_names =
  [
    "fleet_jobs_submitted";
    "fleet_jobs_completed";
    "fleet_cache_hits";
    "fleet_cache_misses";
    "fleet_engine_runs";
    "fleet_jobs_errored";
  ]

let run ?(jobs = 1) ?pool ?cache ?registry ?progress ?fuel ?timeout_ms ?cancel
    ~resolve specs =
  let specs = Array.of_list specs in
  let n = Array.length specs in
  (* Content-address dedup: equal keys are one engine run (or one
     cache hit), fanned back out to every submission slot. *)
  let rep_of_key = Hashtbl.create (2 * n) in
  let reps = ref [] in
  let nreps = ref 0 in
  let slot_rep = Array.make n (-1) in
  Array.iteri
    (fun i spec ->
      let key = Job.key spec in
      match Hashtbl.find_opt rep_of_key key with
      | Some r -> slot_rep.(i) <- r
      | None ->
        Hashtbl.add rep_of_key key !nreps;
        reps := (key, spec) :: !reps;
        slot_rep.(i) <- !nreps;
        incr nreps)
    specs;
  let reps = Array.of_list (List.rev !reps) in
  let results = Array.make (Array.length reps) None in
  (* Cache pass (calling domain): hits never reach the pool. *)
  let misses = ref [] in
  Array.iteri
    (fun r (key, _spec) ->
      match Option.bind cache (fun c -> Cache.find c key) with
      | Some m -> results.(r) <- Some (Ok m, true)
      | None -> misses := r :: !misses)
    reps;
  let misses = List.rev !misses in
  (* Scenario resolution (calling domain): once per distinct
     (scenario, codec) pair among the misses. Workers only ever read
     the prebuilt scenarios; a failed resolve fails exactly the jobs
     that needed it, without touching the pool. *)
  let scenarios = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let _, (spec : Job.t) = reps.(r) in
      let sk = (spec.scenario, spec.codec) in
      if not (Hashtbl.mem scenarios sk) then
        Hashtbl.replace scenarios sk
          (match resolve ~scenario:spec.scenario ~codec:spec.codec with
          | sc -> Ok sc
          | exception e ->
            Error
              (Printf.sprintf "cannot resolve scenario %s (codec %s): %s"
                 spec.scenario spec.codec (Printexc.to_string e))))
    misses;
  let resolvable, unresolvable =
    List.partition
      (fun r ->
        let _, (spec : Job.t) = reps.(r) in
        Result.is_ok (Hashtbl.find scenarios (spec.scenario, spec.codec)))
      misses
  in
  (* Progress: one JSONL object per completed job, emitted under a
     mutex (workers call this concurrently). *)
  let pmutex = Mutex.create () in
  let pseq = ref 0 in
  let emit key spec status =
    match progress with
    | None -> ()
    | Some p ->
      Mutex.lock pmutex;
      incr pseq;
      let line =
        Printf.sprintf
          {|{"kind": "fleet_job", "at": %d, "key": "%s", "job": "%s", "scenario": "%s", "status": "%s"}|}
          !pseq
          (Report.Table.json_escape key)
          (Report.Table.json_escape (Job.describe spec))
          (Report.Table.json_escape spec.Job.scenario)
          status
      in
      (try p line with e -> Mutex.unlock pmutex; raise e);
      Mutex.unlock pmutex
  in
  Array.iteri
    (fun r (key, spec) ->
      match results.(r) with
      | Some (_, true) -> emit key spec "cache-hit"
      | _ -> ())
    reps;
  List.iter
    (fun r ->
      let key, (spec : Job.t) = reps.(r) in
      let msg =
        match Hashtbl.find scenarios (spec.scenario, spec.codec) with
        | Error msg -> msg
        | Ok _ -> assert false (* partitioned into [resolvable] *)
      in
      results.(r) <- Some (Error msg, false);
      emit key spec "error")
    unresolvable;
  (* Engine runs: through the pool when jobs > 1, inline otherwise —
     identical guard and isolation semantics either way. *)
  let exec b r =
    let key, (spec : Job.t) = reps.(r) in
    let sc =
      match Hashtbl.find scenarios (spec.scenario, spec.codec) with
      | Ok sc -> sc
      | Error _ -> assert false (* filtered into [unresolvable] *)
    in
    let sink = Sim.Events.callback (fun _ -> Pool.tick b) in
    match Job.execute ~sink sc spec with
    | m ->
      emit key spec "ok";
      m
    | exception e ->
      emit key spec "error";
      raise e
  in
  let miss_results =
    match pool with
    | Some p -> Pool.map ?fuel ?timeout_ms ?cancel p exec resolvable
    | None ->
      if jobs <= 1 then
        Pool.run_sequential ?fuel ?timeout_ms ?cancel exec resolvable
      else
        Pool.with_pool ~jobs (fun p ->
            Pool.map ?fuel ?timeout_ms ?cancel p exec resolvable)
  in
  (* Write-back and result fan-out on the calling domain. *)
  List.iter2
    (fun r res ->
      let key, _spec = reps.(r) in
      (match (res, cache) with
      | Ok m, Some c -> Cache.store c key m
      | _ -> ());
      results.(r) <- Some (res, false))
    resolvable miss_results;
  let outcomes =
    Array.to_list
      (Array.mapi
         (fun i spec ->
           let result, cached =
             match results.(slot_rep.(i)) with
             | Some rc -> rc
             | None -> (Error "job never ran", false)
           in
           { job = spec; result; cached })
         specs)
  in
  (match registry with
  | None -> ()
  | Some reg ->
    let bump name by =
      if by > 0 then Sim.Metrics.incr ~by (Sim.Metrics.counter reg name)
      else ignore (Sim.Metrics.counter reg name)
    in
    let count p = List.length (List.filter p outcomes) in
    bump "fleet_jobs_submitted" n;
    bump "fleet_jobs_completed" (count (fun o -> Result.is_ok o.result));
    bump "fleet_cache_hits" (count (fun o -> o.cached));
    bump "fleet_cache_misses" (count (fun o -> not o.cached));
    bump "fleet_engine_runs" (List.length resolvable);
    bump "fleet_jobs_errored" (count (fun o -> Result.is_error o.result)));
  outcomes

let matrix ?(codecs = [ "code" ]) ?(strategies = [ Job.On_demand ])
    ?(modes = [ Job.Discard ]) ?(budgets = [ None ])
    ?(retentions = [ Job.Kedge ]) ?(profiles = [ Job.default_profile ])
    ?(line_sizes = [ None ]) ~scenarios ~ks () =
  List.concat_map
    (fun scenario ->
      List.concat_map
        (fun k ->
          List.concat_map
            (fun codec ->
              List.concat_map
                (fun strategy ->
                  List.concat_map
                    (fun mode ->
                      List.concat_map
                        (fun budget ->
                          List.concat_map
                            (fun retention ->
                              List.concat_map
                                (fun profile ->
                                  List.map
                                    (fun line_size ->
                                      Job.make ~codec ~strategy ~mode ?budget
                                        ~retention ~profile ?line_size
                                        ~scenario ~k ())
                                    line_sizes)
                                profiles)
                            retentions)
                        budgets)
                    modes)
                strategies)
            codecs)
        ks)
    scenarios

let normalize_ks ks = List.sort_uniq compare ks

let shard ~shards ~index xs =
  if shards < 1 || index < 0 || index >= shards then
    invalid_arg
      (Printf.sprintf "Fleet.Sweep.shard: index %d not in [0, %d)" index
         shards);
  List.filteri (fun i _ -> i mod shards = index) xs
