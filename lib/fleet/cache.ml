(* v2: per-dimension energy totals joined Core.Metrics.t; v1 entries
   lack them and must read as misses, never as stale hits. *)
let entry_version = 2
let default_dir = ".ccomp-cache"
let header = Printf.sprintf "ccomp-fleet-entry %d" entry_version

type t = { dir : string }

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then begin
    if path <> "" && Sys.file_exists path && not (Sys.is_directory path) then
      raise (Sys_error (path ^ ": exists and is not a directory"))
  end
  else begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.is_directory path -> ()
    (* lost a race to a concurrent creator: fine *)
  end

let open_dir dir =
  mkdir_p dir;
  { dir }

let dir t = t.dir

(* ------------------------------------------------------------------ *)
(* Entry serialization                                                 *)

(* Field order is fixed and the parser is strict (every field exactly
   once, nothing else), so any drift between this list and
   Core.Metrics.t shows up as a parse failure in tests, not a silently
   wrong cache hit. Floats use %h: hexadecimal round-trips the exact
   bits, which the determinism guarantee needs. *)

let metrics_to_string (m : Core.Metrics.t) =
  let b = Buffer.create 1024 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  let int k v = Buffer.add_string b (Printf.sprintf "%s=%d\n" k v) in
  let flt k v = Buffer.add_string b (Printf.sprintf "%s=%h\n" k v) in
  int "total_cycles" m.total_cycles;
  int "exec_cycles" m.exec_cycles;
  int "exception_cycles" m.exception_cycles;
  int "patch_cycles" m.patch_cycles;
  int "demand_dec_cycles" m.demand_dec_cycles;
  int "stall_cycles" m.stall_cycles;
  int "baseline_cycles" m.baseline_cycles;
  int "exceptions" m.exceptions;
  int "patches" m.patches;
  int "demand_decompressions" m.demand_decompressions;
  int "prefetch_decompressions" m.prefetch_decompressions;
  int "useful_prefetches" m.useful_prefetches;
  int "wasted_prefetches" m.wasted_prefetches;
  int "discards" m.discards;
  int "evictions" m.evictions;
  int "budget_overflows" m.budget_overflows;
  int "dec_thread_busy_cycles" m.dec_thread_busy_cycles;
  int "comp_thread_busy_cycles" m.comp_thread_busy_cycles;
  int "energy_nj" m.energy_nj;
  int "exec_energy_nj" m.exec_energy_nj;
  int "exception_energy_nj" m.exception_energy_nj;
  int "patch_energy_nj" m.patch_energy_nj;
  int "dec_energy_nj" m.dec_energy_nj;
  int "comp_energy_nj" m.comp_energy_nj;
  int "ram_static_energy_nj" m.ram_static_energy_nj;
  int "baseline_energy_nj" m.baseline_energy_nj;
  int "original_bytes" m.original_bytes;
  int "compressed_area_bytes" m.compressed_area_bytes;
  int "peak_decompressed_bytes" m.peak_decompressed_bytes;
  flt "avg_decompressed_bytes" m.avg_decompressed_bytes;
  int "peak_footprint_bytes" m.peak_footprint_bytes;
  flt "avg_footprint_bytes" m.avg_footprint_bytes;
  int "trace_length" m.trace_length;
  int "blocks" m.blocks;
  Buffer.contents b

let metrics_of_string s =
  let ( let* ) = Result.bind in
  match String.split_on_char '\n' s with
  | [] -> Error "empty entry"
  | h :: _ when h <> header ->
    Error (Printf.sprintf "version/header mismatch %S" h)
  | _ :: rest ->
    let fields = Hashtbl.create 32 in
    let* () =
      List.fold_left
        (fun acc line ->
          let* () = acc in
          if String.trim line = "" then Ok ()
          else
            match String.index_opt line '=' with
            | None -> Error (Printf.sprintf "bad entry line %S" line)
            | Some i ->
              let k = String.sub line 0 i in
              let v = String.sub line (i + 1) (String.length line - i - 1) in
              if Hashtbl.mem fields k then
                Error (Printf.sprintf "duplicate field %S" k)
              else begin
                Hashtbl.replace fields k v;
                Ok ()
              end)
        (Ok ()) rest
    in
    let taken = ref 0 in
    let raw k =
      match Hashtbl.find_opt fields k with
      | Some v ->
        incr taken;
        Ok v
      | None -> Error (Printf.sprintf "missing field %S" k)
    in
    let int k =
      let* v = raw k in
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "bad integer %S for %S" v k)
    in
    let flt k =
      let* v = raw k in
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "bad float %S for %S" v k)
    in
    let* total_cycles = int "total_cycles" in
    let* exec_cycles = int "exec_cycles" in
    let* exception_cycles = int "exception_cycles" in
    let* patch_cycles = int "patch_cycles" in
    let* demand_dec_cycles = int "demand_dec_cycles" in
    let* stall_cycles = int "stall_cycles" in
    let* baseline_cycles = int "baseline_cycles" in
    let* exceptions = int "exceptions" in
    let* patches = int "patches" in
    let* demand_decompressions = int "demand_decompressions" in
    let* prefetch_decompressions = int "prefetch_decompressions" in
    let* useful_prefetches = int "useful_prefetches" in
    let* wasted_prefetches = int "wasted_prefetches" in
    let* discards = int "discards" in
    let* evictions = int "evictions" in
    let* budget_overflows = int "budget_overflows" in
    let* dec_thread_busy_cycles = int "dec_thread_busy_cycles" in
    let* comp_thread_busy_cycles = int "comp_thread_busy_cycles" in
    let* energy_nj = int "energy_nj" in
    let* exec_energy_nj = int "exec_energy_nj" in
    let* exception_energy_nj = int "exception_energy_nj" in
    let* patch_energy_nj = int "patch_energy_nj" in
    let* dec_energy_nj = int "dec_energy_nj" in
    let* comp_energy_nj = int "comp_energy_nj" in
    let* ram_static_energy_nj = int "ram_static_energy_nj" in
    let* baseline_energy_nj = int "baseline_energy_nj" in
    let* original_bytes = int "original_bytes" in
    let* compressed_area_bytes = int "compressed_area_bytes" in
    let* peak_decompressed_bytes = int "peak_decompressed_bytes" in
    let* avg_decompressed_bytes = flt "avg_decompressed_bytes" in
    let* peak_footprint_bytes = int "peak_footprint_bytes" in
    let* avg_footprint_bytes = flt "avg_footprint_bytes" in
    let* trace_length = int "trace_length" in
    let* blocks = int "blocks" in
    if !taken <> Hashtbl.length fields then
      Error "unknown extra fields in entry"
    else
      Ok
        {
          Core.Metrics.total_cycles;
          exec_cycles;
          exception_cycles;
          patch_cycles;
          demand_dec_cycles;
          stall_cycles;
          baseline_cycles;
          exceptions;
          patches;
          demand_decompressions;
          prefetch_decompressions;
          useful_prefetches;
          wasted_prefetches;
          discards;
          evictions;
          budget_overflows;
          dec_thread_busy_cycles;
          comp_thread_busy_cycles;
          energy_nj;
          exec_energy_nj;
          exception_energy_nj;
          patch_energy_nj;
          dec_energy_nj;
          comp_energy_nj;
          ram_static_energy_nj;
          baseline_energy_nj;
          original_bytes;
          compressed_area_bytes;
          peak_decompressed_bytes;
          avg_decompressed_bytes;
          peak_footprint_bytes;
          avg_footprint_bytes;
          trace_length;
          blocks;
        }

(* ------------------------------------------------------------------ *)
(* Store                                                               *)

let path_of t key = Filename.concat t.dir (key ^ ".metrics")

let find t key =
  let path = path_of t key in
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ -> None
  | contents -> (
    match metrics_of_string contents with
    | Ok m -> Some m
    | Error _ -> None)

(* ------------------------------------------------------------------ *)
(* Stats and eviction                                                  *)

type stats = { entries : int; bytes : int }

(* Every [(name, size, mtime)] for the entries currently on disk.
   Races with concurrent writers/removers are benign: a file that
   vanishes between readdir and stat is simply skipped. *)
let scan t =
  let names = try Sys.readdir t.dir with Sys_error _ -> [||] in
  Array.fold_left
    (fun acc name ->
      if Filename.check_suffix name ".metrics" then
        match Unix.stat (Filename.concat t.dir name) with
        | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
          (name, st_size, st_mtime) :: acc
        | _ | (exception Unix.Unix_error _) -> acc
      else acc)
    [] names

let stats t =
  List.fold_left
    (fun acc (_, size, _) -> { entries = acc.entries + 1; bytes = acc.bytes + size })
    { entries = 0; bytes = 0 }
    (scan t)

let gc t ~max_bytes =
  if max_bytes < 0 then
    invalid_arg
      (Printf.sprintf "Fleet.Cache.gc: max_bytes must be >= 0 (got %d)"
         max_bytes);
  (* Oldest mtime first; name as tie-break so the victim order is
     deterministic when a burst of stores lands in the same second. *)
  let entries =
    List.sort
      (fun (n1, _, t1) (n2, _, t2) -> compare (t1, n1) (t2, n2))
      (scan t)
  in
  let total = List.fold_left (fun acc (_, size, _) -> acc + size) 0 entries in
  let removed = ref { entries = 0; bytes = 0 } in
  let live = ref total in
  List.iter
    (fun (name, size, _) ->
      if !live > max_bytes then begin
        (* Sys.remove of one file is atomic; a reader that already
           opened it keeps its contents, a later reader just misses. *)
        match Sys.remove (Filename.concat t.dir name) with
        | () ->
          live := !live - size;
          removed :=
            { entries = !removed.entries + 1; bytes = !removed.bytes + size }
        | exception Sys_error _ -> ()
      end)
    entries;
  !removed

let store t key m =
  let tmp = Filename.temp_file ~temp_dir:t.dir ".entry" ".tmp" in
  match
    Out_channel.with_open_text tmp (fun oc ->
        Out_channel.output_string oc (metrics_to_string m))
  with
  | () -> Sys.rename tmp (path_of t key)
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e
