exception Fuel_exhausted
exception Timed_out
exception Cancelled

type budget = {
  fuel : int option;
  deadline : float option;  (* absolute, Unix.gettimeofday *)
  cancel : (unit -> bool) option;
  mutable used : int;
}

let tick b =
  b.used <- b.used + 1;
  (match b.fuel with
  | Some f when b.used > f -> raise Fuel_exhausted
  | _ -> ());
  (match b.cancel with
  | Some cancelled when b.used land 255 = 0 && cancelled () -> raise Cancelled
  | _ -> ());
  match b.deadline with
  | Some d when b.used land 1023 = 0 && Unix.gettimeofday () > d ->
    raise Timed_out
  | _ -> ()

let run_guarded ?fuel ?timeout_ms ?cancel f x =
  let deadline =
    Option.map
      (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0))
      timeout_ms
  in
  let b = { fuel; deadline; cancel; used = 0 } in
  match
    (* A task already cancelled when its slot comes up never starts. *)
    match cancel with
    | Some cancelled when cancelled () -> raise Cancelled
    | _ -> f b x
  with
  | v -> Ok v
  | exception Fuel_exhausted ->
    Error
      (Printf.sprintf "fuel exhausted after %d ticks" (Option.get fuel))
  | exception Timed_out ->
    Error (Printf.sprintf "timed out after %dms" (Option.get timeout_ms))
  | exception Cancelled -> Error "cancelled"
  | exception e -> Error (Printexc.to_string e)

let run_sequential ?fuel ?timeout_ms ?cancel f xs =
  List.map (run_guarded ?fuel ?timeout_ms ?cancel f) xs

type t = {
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable alive : bool;
  mutable workers : unit Domain.t list;
}

(* Workers drain the queue even after [stop] is raised, so a shutdown
   never abandons submitted work; they exit once the queue is empty
   and the stop flag is up. Tasks never raise: [map] wraps each in
   its own result slot. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.work_available t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task ();
    worker_loop t
  end

let create ~jobs =
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Fleet.Pool.create: jobs must be >= 1 (got %d)" jobs);
  let t =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stop = false;
      alive = true;
      workers = [];
    }
  in
  t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = List.length t.workers

let check_alive t fn =
  if not t.alive then invalid_arg ("Fleet.Pool." ^ fn ^ ": pool is shut down")

let map ?fuel ?timeout_ms ?cancel t f xs =
  check_alive t "map";
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let results = Array.make n (Error "task never ran") in
    let remaining = ref n in
    let all_done = Condition.create () in
    let task i () =
      results.(i) <- run_guarded ?fuel ?timeout_ms ?cancel f items.(i);
      Mutex.lock t.mutex;
      decr remaining;
      if !remaining = 0 then Condition.broadcast all_done;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.work_available;
    while !remaining > 0 do
      Condition.wait all_done t.mutex
    done;
    Mutex.unlock t.mutex;
    Array.to_list results
  end

let shutdown t =
  if t.alive then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.alive <- false
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
