(** Self-describing sweep jobs.

    A job names one policy-engine run — workload scenario, codec,
    policy knobs — using only serializable data (strings and numbers,
    no closures), so the same spec can be expanded from a CLI matrix,
    shipped to a worker domain, and hashed into a stable content key
    for the {!Cache}. Everything a run needs that is not in the spec
    (the predictor's profile, the pin-hot pinned set) is derived
    deterministically from the scenario inside {!execute}, so equal
    keys really do mean equal results. *)

type strategy =
  | On_demand
  | Pre_all of { lookahead : int }
  | Pre_single of { lookahead : int; predictor : string }
      (** predictor is ["first"], ["last-taken"] or ["profile"] *)

type mode =
  | Discard
  | Recompress

type retention =
  | Kedge
  | Loop_aware of { weight : int }
  | Clock
  | Pin_hot of { fraction : float }
      (** pinned set = the profile-hot blocks covering [fraction] of
          visits, recomputed from the scenario's own trace *)

type t = {
  scenario : string;  (** workload name, resolved by the caller *)
  codec : string;  (** registry codec name, or ["code"] *)
  k : int;
  strategy : strategy;
  mode : mode;
  budget : int option;
  retention : retention;
  profile : string;  (** device profile naming the cost coefficients *)
  line_size : int option;
      (** [Some bytes] runs the scenario through {!Core.Lineview} —
          line-granular residency — instead of block-granular
          {!Core.Scenario.run} *)
}

val default_profile : string
(** ["paper-2005"]. *)

val make :
  ?codec:string ->
  ?strategy:strategy ->
  ?mode:mode ->
  ?budget:int ->
  ?retention:retention ->
  ?profile:string ->
  ?line_size:int ->
  scenario:string ->
  k:int ->
  unit ->
  t
(** Defaults: codec ["code"], [On_demand], [Discard], no budget,
    [Kedge], profile {!default_profile}, block granularity (no
    [line_size]). The profile and line size are part of the content
    key — the same sweep under two device profiles, or at two line
    granularities, never shares cache entries. *)

val canonical : t -> string
(** Canonical one-line serialization: every field rendered in a fixed
    order (floats in hexadecimal so the text round-trips exactly).
    Two specs are the same job iff their canonical strings are
    equal. *)

val key : t -> string
(** Hex digest of {!canonical}, prefixed with the spec format
    version — the content address used by {!Cache}. Filesystem-safe
    ([a-z0-9-] only). *)

val describe : t -> string
(** Human-readable one-liner for progress output. *)

val execute : ?sink:Sim.Events.sink -> Core.Scenario.t -> t -> Core.Metrics.t
(** Runs the job against [scenario] (which the caller resolved from
    [t.scenario]/[t.codec]). Deterministic: no clocks, no global
    state, safe to call from any domain as long as the scenario is
    not mutated concurrently.
    @raise Invalid_argument on malformed specs (bad k, lookahead,
    predictor or retention parameters) — the pool turns this into a
    per-job [Error]. *)
