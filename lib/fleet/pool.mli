(** A fixed-size domain worker pool.

    Workers are OCaml 5 domains pulling tasks from a mutex/condition
    work queue. One pool can serve many {!map} calls; each call blocks
    the submitting thread until every one of its tasks finished, and
    returns results in submission order regardless of completion
    order.

    Per-job guards: every task gets a {!budget} tracking its fuel
    (cooperative tick count) and wall-clock deadline. The task
    function calls {!tick} at natural checkpoints — the fleet's sweep
    wires it into the engine's event sink, so a simulation burns one
    fuel unit per emitted event — and a blown budget raises, which the
    pool catches like any other task exception: the job becomes an
    [Error], the worker survives. *)

type t

val create : jobs:int -> t
(** Spawns [jobs] worker domains (at least 1).
    @raise Invalid_argument if [jobs < 1]. *)

val size : t -> int

exception Fuel_exhausted
exception Timed_out

exception Cancelled
(** Raised out of {!tick} when the caller's [cancel] hook fires — the
    cooperative cancellation path a draining server uses to abandon
    work it no longer has a client for. *)

type budget

val tick : budget -> unit
(** Burns one fuel unit; checks the cancel hook every 256 ticks and
    the deadline every 1024.
    @raise Fuel_exhausted / @raise Timed_out / @raise Cancelled when
    the budget is blown (caught by the pool's per-job isolation). *)

val map :
  ?fuel:int ->
  ?timeout_ms:int ->
  ?cancel:(unit -> bool) ->
  t ->
  (budget -> 'a -> 'b) ->
  'a list ->
  ('b, string) result list
(** Runs [f budget x] for every [x], spread over the pool's workers.
    The result list is in submission order; a task that raises any
    exception (including a blown budget) yields [Error message]
    instead of killing its worker or the pool. Tasks must not
    themselves call {!map} on the same pool (the call would deadlock
    waiting for its own worker).

    [cancel] is polled from worker domains — before each task starts
    and every 256 {!tick}s — so it must be cheap and thread-safe (an
    [Atomic.get] is the intended shape). Once it returns [true],
    running tasks abort at their next poll and queued tasks never
    start; each yields [Error "cancelled"]. *)

val run_sequential :
  ?fuel:int ->
  ?timeout_ms:int ->
  ?cancel:(unit -> bool) ->
  (budget -> 'a -> 'b) ->
  'a list ->
  ('b, string) result list
(** {!map} semantics — same guards, same crash isolation, same result
    order — executed inline on the calling domain, with no pool. The
    reference implementation parallel runs must match. *)

val shutdown : t -> unit
(** Signals every worker to exit and joins them. Idempotent; using
    the pool after shutdown raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exceptions). *)
