(** A fixed-size domain worker pool.

    Workers are OCaml 5 domains pulling tasks from a mutex/condition
    work queue. One pool can serve many {!map} calls; each call blocks
    the submitting thread until every one of its tasks finished, and
    returns results in submission order regardless of completion
    order.

    Per-job guards: every task gets a {!budget} tracking its fuel
    (cooperative tick count) and wall-clock deadline. The task
    function calls {!tick} at natural checkpoints — the fleet's sweep
    wires it into the engine's event sink, so a simulation burns one
    fuel unit per emitted event — and a blown budget raises, which the
    pool catches like any other task exception: the job becomes an
    [Error], the worker survives. *)

type t

val create : jobs:int -> t
(** Spawns [jobs] worker domains (at least 1).
    @raise Invalid_argument if [jobs < 1]. *)

val size : t -> int

exception Fuel_exhausted
exception Timed_out

type budget

val tick : budget -> unit
(** Burns one fuel unit; checks the deadline every 1024 ticks.
    @raise Fuel_exhausted / @raise Timed_out when the budget is
    blown (caught by the pool's per-job isolation). *)

val map :
  ?fuel:int ->
  ?timeout_ms:int ->
  t ->
  (budget -> 'a -> 'b) ->
  'a list ->
  ('b, string) result list
(** Runs [f budget x] for every [x], spread over the pool's workers.
    The result list is in submission order; a task that raises any
    exception (including a blown budget) yields [Error message]
    instead of killing its worker or the pool. Tasks must not
    themselves call {!map} on the same pool (the call would deadlock
    waiting for its own worker). *)

val run_sequential :
  ?fuel:int ->
  ?timeout_ms:int ->
  (budget -> 'a -> 'b) ->
  'a list ->
  ('b, string) result list
(** {!map} semantics — same guards, same crash isolation, same result
    order — executed inline on the calling domain, with no pool. The
    reference implementation parallel runs must match. *)

val shutdown : t -> unit
(** Signals every worker to exit and joins them. Idempotent; using
    the pool after shutdown raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exceptions). *)
