(** Sweep orchestration: matrix expansion, sharding, and the
    cache-then-pool execution loop the experiments and the [ccomp
    sweep] subcommand share.

    The correctness contract: for any pool size and any cache state,
    {!run} returns the same metrics in the same (submission) order as
    a sequential uncached execution of the same job list. Cache
    lookups and writes, deduplication, and all {!Sim.Metrics} counter
    updates happen on the calling domain; worker domains only execute
    engine runs against scenarios the caller resolved up front. *)

type outcome = {
  job : Job.t;
  result : (Core.Metrics.t, string) result;
      (** [Error] = the job raised, blew its fuel/timeout, or its
          scenario could not be resolved. *)
  cached : bool;  (** satisfied from the cache, no engine run *)
}

val run :
  ?jobs:int ->
  ?pool:Pool.t ->
  ?cache:Cache.t ->
  ?registry:Sim.Metrics.t ->
  ?progress:(string -> unit) ->
  ?fuel:int ->
  ?timeout_ms:int ->
  ?cancel:(unit -> bool) ->
  resolve:(scenario:string -> codec:string -> Core.Scenario.t) ->
  Job.t list ->
  outcome list
(** Executes the jobs and returns outcomes in submission order.

    [jobs] (default 1) is the worker-pool size; 1 runs inline with no
    domains. [pool] overrides [jobs] with a caller-owned pool shared
    across calls — the resident service dispatches every request's
    engine runs onto one such pool, so concurrent {!run} calls from
    different threads queue fairly instead of spawning domains per
    request (the pool supports exactly this; the caller must not
    invoke {!run} from inside one of that pool's own tasks). [cancel]
    is the cooperative abort hook threaded into every engine run's
    {!Pool.budget}. Duplicate jobs (equal {!Job.key}) are executed once and
    fanned back out to every submission slot. With [cache], hits skip
    the engine entirely and fresh results are written back (atomic,
    see {!Cache}). [resolve] is called on the {e calling} domain,
    once per distinct (scenario, codec) pair that actually needs an
    engine run; a raising [resolve] fails only the jobs that needed
    it. [fuel]/[timeout_ms] bound each engine run via {!Pool.tick}
    wired into the run's event sink (one tick per simulation event).

    [registry] gains the pool's counters (names
    [fleet_jobs_submitted], [fleet_jobs_completed],
    [fleet_cache_hits], [fleet_cache_misses], [fleet_engine_runs],
    [fleet_jobs_errored]); totals accumulate across calls sharing a
    registry. [progress] receives one JSONL object per job
    completion — same shape discipline as [--trace-out] lines: a
    ["kind"] tag, an ["at"] sequence number, then job key, spec, the
    job's ["scenario"] name (so corpus-generated sweeps can be grouped
    by shape without re-parsing the spec string) and status. Called
    from worker domains under a mutex; keep it cheap. *)

val counter_names : string list
(** The registry counter names {!run} maintains, in a stable order
    (for rendering and tests). *)

val matrix :
  ?codecs:string list ->
  ?strategies:Job.strategy list ->
  ?modes:Job.mode list ->
  ?budgets:int option list ->
  ?retentions:Job.retention list ->
  ?profiles:string list ->
  ?line_sizes:int option list ->
  scenarios:string list ->
  ks:int list ->
  unit ->
  Job.t list
(** Cartesian expansion in deterministic row order: scenarios
    outermost, then ks, codecs, strategies, modes, budgets,
    retentions, device profiles, line sizes innermost. Defaults are
    singleton lists (["code"], [On_demand], [Discard], [None],
    [Kedge], [{!Job.default_profile}], [None] = block granularity),
    so [matrix ~scenarios ~ks ()] is the classic E6 grid. *)

val normalize_ks : int list -> int list
(** Sorted deduplication of a sweep's k axis. Duplicate or unsorted
    [--ks] values would expand to duplicate jobs that the cache then
    masks (the dedup above makes them one engine run, but every table
    row repeats); callers compare the result against their input to
    warn the user. *)

val shard : shards:int -> index:int -> 'a list -> 'a list
(** Round-robin slice [index] of [shards] (for splitting one matrix
    across processes/machines): element [i] goes to shard
    [i mod shards]. Preserves relative order.
    @raise Invalid_argument unless [0 <= index < shards]. *)
