type strategy =
  | On_demand
  | Pre_all of { lookahead : int }
  | Pre_single of { lookahead : int; predictor : string }

type mode =
  | Discard
  | Recompress

type retention =
  | Kedge
  | Loop_aware of { weight : int }
  | Clock
  | Pin_hot of { fraction : float }

type t = {
  scenario : string;
  codec : string;
  k : int;
  strategy : strategy;
  mode : mode;
  budget : int option;
  retention : retention;
  profile : string;
  line_size : int option;
}

let default_profile = "paper-2005"

let make ?(codec = "code") ?(strategy = On_demand) ?(mode = Discard) ?budget
    ?(retention = Kedge) ?(profile = default_profile) ?line_size ~scenario ~k
    () =
  { scenario; codec; k; strategy; mode; budget; retention; profile; line_size }

(* Bump when the canonical rendering below (or the meaning of any
   field) changes: old cache entries must stop matching.
   v2: device profile joined the spec.
   v3: line_size joined the spec (line-granular residency runs).
   v4: scenario may be a corpus spec (gen:/multi:), canonicalized at
   parse time — the same shape always renders the same key. *)
let spec_version = 4

let strategy_to_string = function
  | On_demand -> "on-demand"
  | Pre_all { lookahead } -> Printf.sprintf "pre-all:%d" lookahead
  | Pre_single { lookahead; predictor } ->
    Printf.sprintf "pre-single:%d:%s" lookahead predictor

let mode_to_string = function
  | Discard -> "discard"
  | Recompress -> "recompress"

let retention_to_string = function
  | Kedge -> "kedge"
  | Loop_aware { weight } -> Printf.sprintf "loop-aware:%d" weight
  | Clock -> "clock"
  (* %h renders the float exactly (hexadecimal), so equal fractions
     always canonicalize identically. *)
  | Pin_hot { fraction } -> Printf.sprintf "pin-hot:%h" fraction

let canonical t =
  Printf.sprintf
    "ccomp-job \
     %d|scenario=%s|codec=%s|k=%d|strategy=%s|mode=%s|budget=%s|retention=%s|profile=%s|line_size=%s"
    spec_version t.scenario t.codec t.k
    (strategy_to_string t.strategy)
    (mode_to_string t.mode)
    (match t.budget with None -> "none" | Some b -> string_of_int b)
    (retention_to_string t.retention)
    t.profile
    (match t.line_size with None -> "none" | Some l -> string_of_int l)

let key t =
  Printf.sprintf "v%d-%s" spec_version (Digest.to_hex (Digest.string (canonical t)))

let describe t =
  Printf.sprintf "%s codec=%s k=%d %s %s%s retention=%s%s" t.scenario t.codec
    t.k
    (strategy_to_string t.strategy)
    (mode_to_string t.mode)
    (match t.budget with
    | None -> ""
    | Some b -> Printf.sprintf " budget=%dB" b)
    (retention_to_string t.retention)
    ((if t.profile = default_profile then ""
      else Printf.sprintf " profile=%s" t.profile)
    ^
    match t.line_size with
    | None -> ""
    | Some l -> Printf.sprintf " line=%dB" l)

let predictor_of sc = function
  | "first" -> Core.Predictor.First_successor
  | "last-taken" -> Core.Predictor.Last_taken
  | "profile" -> Core.Predictor.By_profile (Core.Scenario.profile sc)
  | other -> invalid_arg (Printf.sprintf "Fleet.Job: unknown predictor %S" other)

let execute ?sink sc t =
  let strategy =
    match t.strategy with
    | On_demand -> Core.Policy.On_demand
    | Pre_all { lookahead } -> Core.Policy.Pre_all { lookahead }
    | Pre_single { lookahead; predictor } ->
      Core.Policy.Pre_single
        { lookahead; predictor = predictor_of sc predictor }
  in
  let mode =
    match t.mode with
    | Discard -> Core.Policy.Discard
    | Recompress -> Core.Policy.Recompress
  in
  let retention =
    match t.retention with
    | Kedge -> Residency.Policy.Kedge
    | Loop_aware { weight } -> Residency.Policy.Loop_aware { weight }
    | Clock -> Residency.Policy.Clock
    | Pin_hot { fraction } ->
      let profile = Core.Scenario.profile sc in
      Residency.Policy.Pin_hot
        { pinned = Cfg.Profile.hot_blocks profile ~fraction }
  in
  let policy =
    Core.Policy.make ~mode ~strategy ?budget:t.budget ~retention
      ~compress_k:t.k ()
  in
  match t.line_size with
  | None -> Core.Scenario.run ~profile:t.profile ?sink sc policy
  | Some line_size ->
    Core.Lineview.run ~profile:t.profile ?sink ~line_size sc policy
