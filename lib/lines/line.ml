exception Corrupt of string

let sizes = [ 16; 32; 64 ]

let check_slice b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Lines: slice out of bounds"
