(** Shared definitions for the fixed-size-line codec kernels.

    The kernels in this library ({!Bdi}, {!Cpack}) compress one cache
    line at a time, the way a hardware compressed cache would: each
    line is encoded independently (no state leaks between lines), and
    the per-line metadata a real tag array would hold is accounted
    bit-exactly. The library is dependency-free so the [compress]
    layer can wrap the kernels into registry codecs without a cycle. *)

exception Corrupt of string
(** Raised by the decompressors on any malformed input — unknown
    encodings, payload size mismatches, out-of-range indices. The
    [compress] adapter translates it into [Compress.Codec.Corrupt]. *)

val sizes : int list
(** The line sizes exposed through the registry: [16; 32; 64] bytes. *)

val check_slice : bytes -> pos:int -> len:int -> unit
(** @raise Invalid_argument unless [pos, len] is a valid slice. *)
