(* All word arithmetic runs in Int64 regardless of the word size:
   deltas wrap exactly like the 8/4/2-byte two's-complement hardware
   adders would, so [base + delta] on decode inverts [word - base]
   from encode even across overflow. *)

let tag_bits = 11
let segments ~payload_bytes = (payload_bytes + 7) / 8

(* (word-size, delta-size) per base+delta encoding, indexed 2..7. *)
let base_delta = [| (8, 1); (8, 2); (8, 4); (4, 1); (4, 2); (2, 1) |]

let encoding_name = function
  | 0 -> "zeros"
  | 1 -> "repeat"
  | e when e >= 2 && e <= 7 ->
    let k, d = base_delta.(e - 2) in
    Printf.sprintf "base%d-d%d" k d
  | 15 -> "immediate"
  | e -> Printf.sprintf "invalid-%d" e

let payload_bytes ~encoding ~len =
  match encoding with
  | 0 -> Some 0
  | 1 -> if len > 0 && len mod 8 = 0 then Some 8 else None
  | e when e >= 2 && e <= 7 ->
    let k, d = base_delta.(e - 2) in
    if len > 0 && len mod k = 0 then Some (k + (d * (len / k))) else None
  | 15 -> Some len
  | _ -> None

let get_word b pos k =
  match k with
  | 8 -> Bytes.get_int64_le b pos
  | 4 -> Int64.of_int32 (Bytes.get_int32_le b pos)
  | 2 -> Int64.of_int (Bytes.get_uint16_le b pos)
  | _ -> invalid_arg "Bdi.get_word"

let set_word b pos k v =
  match k with
  | 8 -> Bytes.set_int64_le b pos v
  | 4 -> Bytes.set_int32_le b pos (Int64.to_int32 v)
  | 2 -> Bytes.set_uint16_le b pos (Int64.to_int v land 0xFFFF)
  | _ -> invalid_arg "Bdi.set_word"

let fits_signed v d =
  let half = Int64.shift_left 1L ((8 * d) - 1) in
  Int64.compare v (Int64.neg half) >= 0
  && Int64.compare v (Int64.sub half 1L) < 1

(* d <= 4, so the delta's low bytes fit a native int. *)
let set_delta b pos d v =
  let v = Int64.to_int v in
  for j = 0 to d - 1 do
    Bytes.unsafe_set b (pos + j) (Char.unsafe_chr ((v lsr (8 * j)) land 0xFF))
  done

let get_delta b pos d =
  let v = ref 0 in
  for j = d - 1 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b (pos + j))
  done;
  let half = 1 lsl ((8 * d) - 1) in
  Int64.of_int (if !v >= half then !v - (half lsl 1) else !v)

let all_zero b ~pos ~len =
  let i = ref 0 in
  while !i < len && Bytes.get b (pos + !i) = '\000' do
    incr i
  done;
  !i = len

let try_repeat b ~pos ~len =
  if len mod 8 <> 0 || len = 0 then None
  else begin
    let w0 = Bytes.get_int64_le b pos in
    let ok = ref true in
    let off = ref 8 in
    while !ok && !off < len do
      if not (Int64.equal (Bytes.get_int64_le b (pos + !off)) w0) then
        ok := false;
      off := !off + 8
    done;
    if !ok then begin
      let payload = Bytes.create 8 in
      Bytes.set_int64_le payload 0 w0;
      Some payload
    end
    else None
  end

let try_base_delta b ~pos ~len ~k ~d =
  if len mod k <> 0 || len = 0 then None
  else begin
    let words = len / k in
    let size = k + (d * words) in
    if size >= len then None
    else begin
      let base = get_word b pos k in
      let ok = ref true in
      let i = ref 0 in
      while !ok && !i < words do
        let delta = Int64.sub (get_word b (pos + (k * !i)) k) base in
        if not (fits_signed delta d) then ok := false;
        incr i
      done;
      if not !ok then None
      else begin
        let payload = Bytes.create size in
        set_word payload 0 k base;
        for w = 0 to words - 1 do
          let delta = Int64.sub (get_word b (pos + (k * w)) k) base in
          set_delta payload (k + (d * w)) d delta
        done;
        Some payload
      end
    end
  end

let compress b ~pos ~len =
  Line.check_slice b ~pos ~len;
  if all_zero b ~pos ~len then (0, Bytes.empty)
  else
    match try_repeat b ~pos ~len with
    | Some p -> (1, p)
    | None ->
      let rec try_enc e =
        if e > 7 then (15, Bytes.sub b pos len)
        else
          let k, d = base_delta.(e - 2) in
          match try_base_delta b ~pos ~len ~k ~d with
          | Some p -> (e, p)
          | None -> try_enc (e + 1)
      in
      try_enc 2

let decompress ~encoding ~len payload =
  if len < 0 then raise (Line.Corrupt "Bdi: negative line length");
  (match payload_bytes ~encoding ~len with
  | None ->
    raise
      (Line.Corrupt
         (Printf.sprintf "Bdi: encoding %d invalid for a %d-byte line"
            encoding len))
  | Some expect ->
    if Bytes.length payload <> expect then
      raise
        (Line.Corrupt
           (Printf.sprintf "Bdi: encoding %d wants %d payload bytes, got %d"
              encoding expect (Bytes.length payload))));
  match encoding with
  | 0 -> Bytes.make len '\000'
  | 1 ->
    let out = Bytes.create len in
    let w = Bytes.get_int64_le payload 0 in
    for i = 0 to (len / 8) - 1 do
      Bytes.set_int64_le out (8 * i) w
    done;
    out
  | 15 -> Bytes.sub payload 0 len
  | e ->
    let k, d = base_delta.(e - 2) in
    let out = Bytes.create len in
    let base = get_word payload 0 k in
    for w = 0 to (len / k) - 1 do
      set_word out (k * w) k (Int64.add base (get_delta payload (k + (d * w)) d))
    done;
    out

let cost_bits b ~pos ~len =
  let _, payload = compress b ~pos ~len in
  tag_bits + (8 * Bytes.length payload)
