(** Base-delta-immediate line compression (Pekhimenko et al.), after
    the bluelove8939/MEmory-Compression-Algorithms reference: a line
    is stored as one base word plus narrow per-word deltas when every
    word sits close to the first, with dedicated encodings for
    all-zero and single-repeated-value lines and an uncompressed
    (immediate) fallback.

    Encodings (words are little-endian):
    - [0]  zeros — empty payload;
    - [1]  repeat — one 8-byte word, the line is that word repeated;
    - [2..4]  8-byte base + 1/2/4-byte signed deltas;
    - [5..6]  4-byte base + 1/2-byte signed deltas;
    - [7]  2-byte base + 1-byte signed deltas;
    - [15] immediate — the raw line bytes.

    A base-[k] encoding applies only when the line length is a
    multiple of [k]; the payload is the [k]-byte base followed by one
    [d]-byte delta per word. The per-line tag is {!tag_bits} wide:
    4 encoding bits plus a 7-bit segment pointer counting the payload
    in 8-byte segments, exactly the metadata the reference charges. *)

val tag_bits : int
(** 11 = 4 encoding bits + 7 segment-pointer bits. *)

val segments : payload_bytes:int -> int
(** Segment-pointer value for a payload: [ceil (payload / 8)]. *)

val payload_bytes : encoding:int -> len:int -> int option
(** Exact payload size of [encoding] over a [len]-byte line, or [None]
    if the encoding does not apply (unknown number, or [len] not a
    multiple of the word size). *)

val compress : bytes -> pos:int -> len:int -> int * bytes
(** [compress b ~pos ~len] encodes the line [b.[pos .. pos+len-1]],
    returning [(encoding, payload)]. Deterministic: the first
    applicable encoding in the order 0..7 whose payload is strictly
    smaller than the line wins, else immediate (15).
    @raise Invalid_argument on an out-of-bounds slice. *)

val decompress : encoding:int -> len:int -> bytes -> bytes
(** Rebuilds the [len]-byte line from [(encoding, payload)].
    @raise Line.Corrupt on an unknown or inapplicable encoding or a
    payload whose size is not exactly [payload_bytes]. *)

val cost_bits : bytes -> pos:int -> len:int -> int
(** Wire cost of the line in bits, tag included:
    [tag_bits + 8 * payload]. *)

val encoding_name : int -> string
(** Short human name ("zeros", "base8-d2", "immediate", ...). *)
