(** CPack (cache packer) line compression (Chen et al.), after the
    etip00123/DSCC reference: each 4-byte word is matched against a
    16-entry FIFO dictionary of recent words and emitted as one of six
    patterns, cheapest first:

    {v
    pattern  code    bits  meaning
    zzzz     00        2   all-zero word
    mmmm     10        6   full dictionary match (4-bit index)
    zzzx     1101     12   three zero bytes + literal low byte
    mmmx     1110     16   3-byte prefix match + literal low byte
    mmxx     1100     24   2-byte prefix match + 2 literal bytes
    xxxx     01       34   no match, 32-bit literal
    v}

    Words are taken in stream order; "prefix" means the first bytes of
    the word as stored. Unmatched and partially matched words (xxxx,
    mmxx, mmmx) are pushed into the dictionary FIFO. The dictionary
    starts zeroed and is reset for every line, so lines decode
    independently. Trailing bytes of a line that is not a multiple of
    4 are emitted as raw 8-bit literals.

    The kernel is bit-format agnostic: compression yields the code
    stream as (value, width) pairs (widths at most 16 — 32-bit
    literals are split), decompression pulls bits through a caller
    callback. The per-line tag a compressed cache would hold is a
    {!tag_bits}-wide segment pointer, accounted by the adapter. *)

val tag_bits : int
(** 7: the per-line segment pointer (payload byte count). *)

val dict_size : int
(** 16 entries of 4 bytes. *)

val compress : bytes -> pos:int -> len:int -> (int * int) list
(** [compress b ~pos ~len] encodes the line as a code stream of
    [(value, width)] pairs, MSB-first, widths at most 16.
    @raise Invalid_argument on an out-of-bounds slice. *)

val compressed_bits : bytes -> pos:int -> len:int -> int
(** Total width of {!compress}'s code stream, without the tag. *)

val decompress : len:int -> read:(int -> int) -> bytes
(** Rebuilds a [len]-byte line, pulling [read w] for the next [w] bits
    (MSB-first) of the code stream. [read] may raise to signal
    exhaustion; {!Line.Corrupt} is raised on an invalid code.
    @raise Line.Corrupt on malformed input. *)

val cost_bits : bytes -> pos:int -> len:int -> int
(** Wire cost of the line in bits: [tag_bits] + the code stream
    rounded up to a whole byte (lines are byte-addressable on the
    wire). *)
