(* Words are kept as 32-bit ints with the line's first byte in the
   high bits, so "the first k bytes match" is a compare of the top
   k*8 bits. *)

let tag_bits = 7
let dict_size = 16

type dict = { entries : int array; mutable next : int }

let dict_create () = { entries = Array.make dict_size 0; next = 0 }

let dict_push d w =
  d.entries.(d.next) <- w;
  d.next <- (d.next + 1) mod dict_size

(* First (lowest-index) entry whose top [bytes] bytes match. *)
let dict_find d w ~bytes =
  let shift = 8 * (4 - bytes) in
  let target = w lsr shift in
  let rec go i =
    if i >= dict_size then None
    else if d.entries.(i) lsr shift = target then Some i
    else go (i + 1)
  in
  go 0

let word b pos =
  (Char.code (Bytes.get b pos) lsl 24)
  lor (Char.code (Bytes.get b (pos + 1)) lsl 16)
  lor (Char.code (Bytes.get b (pos + 2)) lsl 8)
  lor Char.code (Bytes.get b (pos + 3))

let encode_word d w =
  if w = 0 then [ (0b00, 2) ]
  else
    match dict_find d w ~bytes:4 with
    | Some i -> [ (0b10, 2); (i, 4) ]
    | None ->
      if w land 0xFFFFFF00 = 0 then [ (0b1101, 4); (w, 8) ]
      else begin
        let codes =
          match dict_find d w ~bytes:3 with
          | Some i -> [ (0b1110, 4); (i, 4); (w land 0xFF, 8) ]
          | None -> (
            match dict_find d w ~bytes:2 with
            | Some i -> [ (0b1100, 4); (i, 4); (w land 0xFFFF, 16) ]
            | None -> [ (0b01, 2); (w lsr 16, 16); (w land 0xFFFF, 16) ])
        in
        dict_push d w;
        codes
      end

let compress b ~pos ~len =
  Line.check_slice b ~pos ~len;
  let d = dict_create () in
  let out = ref [] in
  for w = 0 to (len / 4) - 1 do
    out := List.rev_append (encode_word d (word b (pos + (4 * w)))) !out
  done;
  for t = 4 * (len / 4) to len - 1 do
    out := (Char.code (Bytes.get b (pos + t)), 8) :: !out
  done;
  List.rev !out

let compressed_bits b ~pos ~len =
  List.fold_left (fun a (_, w) -> a + w) 0 (compress b ~pos ~len)

(* [read] calls are sequenced by lets: OCaml's operand order is
   unspecified, and the bit stream cares. *)
let decode_word d read =
  match read 2 with
  | 0b00 -> 0
  | 0b01 ->
    let hi = read 16 in
    let lo = read 16 in
    let w = (hi lsl 16) lor lo in
    dict_push d w;
    w
  | 0b10 -> d.entries.(read 4)
  | _ -> (
    match read 2 with
    | 0b00 ->
      let i = read 4 in
      let lo = read 16 in
      let w = (d.entries.(i) land 0xFFFF0000) lor lo in
      dict_push d w;
      w
    | 0b01 -> read 8
    | 0b10 ->
      let i = read 4 in
      let lo = read 8 in
      let w = (d.entries.(i) land 0xFFFFFF00) lor lo in
      dict_push d w;
      w
    | _ -> raise (Line.Corrupt "Cpack: invalid code 1111"))

let decompress ~len ~read =
  if len < 0 then raise (Line.Corrupt "Cpack: negative line length");
  let d = dict_create () in
  let out = Bytes.create len in
  for w = 0 to (len / 4) - 1 do
    let v = decode_word d read in
    let pos = 4 * w in
    Bytes.set out pos (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set out (pos + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set out (pos + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set out (pos + 3) (Char.chr (v land 0xFF))
  done;
  for t = 4 * (len / 4) to len - 1 do
    Bytes.set out t (Char.chr (read 8 land 0xFF))
  done;
  out

let cost_bits b ~pos ~len =
  tag_bits + (8 * ((compressed_bits b ~pos ~len + 7) / 8))
