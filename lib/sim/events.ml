type t =
  | Exec of { block : int; at : int }
  | Exception of { block : int; at : int }
  | Demand_decompress of { block : int; at : int; cycles : int }
  | Prefetch_issue of { block : int; at : int; ready_at : int }
  | Stall of { block : int; at : int; cycles : int }
  | Patch of { target : int; site : int; at : int }
  | Unpatch of { target : int; site : int; at : int }
  | Discard of { block : int; at : int; patched_back : int; wasted : bool }
  | Evict of { block : int; at : int }
  | Recompress_queued of { block : int; at : int; done_at : int }
  | Flush of { at : int; copies : int }

let time = function
  | Exec { at; _ }
  | Exception { at; _ }
  | Demand_decompress { at; _ }
  | Prefetch_issue { at; _ }
  | Stall { at; _ }
  | Patch { at; _ }
  | Unpatch { at; _ }
  | Discard { at; _ }
  | Evict { at; _ }
  | Recompress_queued { at; _ }
  | Flush { at; _ } -> at

(* Dense tags double as the JSONL discriminator and the counter index;
   keep [kind_index] and [kinds] in sync with the constructor order. *)
let kind_index = function
  | Exec _ -> 0
  | Exception _ -> 1
  | Demand_decompress _ -> 2
  | Prefetch_issue _ -> 3
  | Stall _ -> 4
  | Patch _ -> 5
  | Unpatch _ -> 6
  | Discard _ -> 7
  | Evict _ -> 8
  | Recompress_queued _ -> 9
  | Flush _ -> 10

let kind_names =
  [|
    "exec";
    "exception";
    "demand_decompress";
    "prefetch_issue";
    "stall";
    "patch";
    "unpatch";
    "discard";
    "evict";
    "recompress_queued";
    "flush";
  |]

let num_kinds = Array.length kind_names
let kind ev = kind_names.(kind_index ev)
let kinds = Array.to_list kind_names

let describe = function
  | Exec { block; _ } -> Printf.sprintf "execute B%d" block
  | Exception { block; _ } -> Printf.sprintf "exception entering B%d" block
  | Demand_decompress { block; cycles; _ } ->
    Printf.sprintf "demand-decompress B%d (%d cycles)" block cycles
  | Prefetch_issue { block; ready_at; _ } ->
    Printf.sprintf "pre-decompress B%d (ready at %d)" block ready_at
  | Stall { block; cycles; _ } ->
    Printf.sprintf "stall %d cycles waiting for B%d" cycles block
  | Patch { target; site; _ } ->
    Printf.sprintf "patch branch in B%d -> B%d'" site target
  | Unpatch { target; site; _ } ->
    Printf.sprintf "patch branch in B%d' back -> B%d" site target
  | Discard { block; patched_back; wasted; _ } ->
    Printf.sprintf "discard B%d' (%d sites patched back%s)" block patched_back
      (if wasted then ", wasted prefetch" else "")
  | Evict { block; _ } -> Printf.sprintf "evict B%d' (budget)" block
  | Recompress_queued { block; done_at; _ } ->
    Printf.sprintf "recompress B%d (done at %d)" block done_at
  | Flush { copies; _ } ->
    Printf.sprintf "flush copy area (%d copies retired)" copies

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)

let to_json ev =
  let f = Printf.sprintf in
  match ev with
  | Exec { block; at } -> f {|{"ev":"exec","block":%d,"at":%d}|} block at
  | Exception { block; at } ->
    f {|{"ev":"exception","block":%d,"at":%d}|} block at
  | Demand_decompress { block; at; cycles } ->
    f
      {|{"ev":"demand_decompress","block":%d,"at":%d,"cycles":%d}|}
      block at cycles
  | Prefetch_issue { block; at; ready_at } ->
    f
      {|{"ev":"prefetch_issue","block":%d,"at":%d,"ready_at":%d}|}
      block at ready_at
  | Stall { block; at; cycles } ->
    f {|{"ev":"stall","block":%d,"at":%d,"cycles":%d}|} block at cycles
  | Patch { target; site; at } ->
    f {|{"ev":"patch","target":%d,"site":%d,"at":%d}|} target site at
  | Unpatch { target; site; at } ->
    f {|{"ev":"unpatch","target":%d,"site":%d,"at":%d}|} target site at
  | Discard { block; at; patched_back; wasted } ->
    f
      {|{"ev":"discard","block":%d,"at":%d,"patched_back":%d,"wasted":%b}|}
      block at patched_back wasted
  | Evict { block; at } -> f {|{"ev":"evict","block":%d,"at":%d}|} block at
  | Recompress_queued { block; at; done_at } ->
    f
      {|{"ev":"recompress_queued","block":%d,"at":%d,"done_at":%d}|}
      block at done_at
  | Flush { at; copies } -> f {|{"ev":"flush","at":%d,"copies":%d}|} at copies

exception Bad_json of string

(* Flat-object parser covering exactly what [to_json] writes: string,
   int and bool values, no nesting, no commas inside strings. *)
let fields_of_json line =
  let s = String.trim line in
  let n = String.length s in
  if n < 2 || s.[0] <> '{' || s.[n - 1] <> '}' then
    raise (Bad_json "not an object");
  let body = String.trim (String.sub s 1 (n - 2)) in
  if body = "" then []
  else
    String.split_on_char ',' body
    |> List.map (fun field ->
           match String.index_opt field ':' with
           | None -> raise (Bad_json ("missing ':' in " ^ field))
           | Some i ->
             let key = String.trim (String.sub field 0 i) in
             let value =
               String.trim
                 (String.sub field (i + 1) (String.length field - i - 1))
             in
             let unquote v =
               let vn = String.length v in
               if vn >= 2 && v.[0] = '"' && v.[vn - 1] = '"' then
                 String.sub v 1 (vn - 2)
               else raise (Bad_json ("unquoted key " ^ v))
             in
             (unquote key, value))

let int_field fields name =
  match List.assoc_opt name fields with
  | None -> raise (Bad_json ("missing field " ^ name))
  | Some v -> (
    match int_of_string_opt v with
    | Some i -> i
    | None -> raise (Bad_json ("field " ^ name ^ " is not an int")))

let bool_field fields name =
  match List.assoc_opt name fields with
  | Some "true" -> true
  | Some "false" -> false
  | Some _ -> raise (Bad_json ("field " ^ name ^ " is not a bool"))
  | None -> raise (Bad_json ("missing field " ^ name))

let str_field fields name =
  match List.assoc_opt name fields with
  | None -> raise (Bad_json ("missing field " ^ name))
  | Some v ->
    let n = String.length v in
    if n >= 2 && v.[0] = '"' && v.[n - 1] = '"' then String.sub v 1 (n - 2)
    else raise (Bad_json ("field " ^ name ^ " is not a string"))

let of_json line =
  match
    let fields = fields_of_json line in
    let i = int_field fields and b = bool_field fields in
    match str_field fields "ev" with
    | "exec" -> Exec { block = i "block"; at = i "at" }
    | "exception" -> Exception { block = i "block"; at = i "at" }
    | "demand_decompress" ->
      Demand_decompress
        { block = i "block"; at = i "at"; cycles = i "cycles" }
    | "prefetch_issue" ->
      Prefetch_issue { block = i "block"; at = i "at"; ready_at = i "ready_at" }
    | "stall" -> Stall { block = i "block"; at = i "at"; cycles = i "cycles" }
    | "patch" -> Patch { target = i "target"; site = i "site"; at = i "at" }
    | "unpatch" -> Unpatch { target = i "target"; site = i "site"; at = i "at" }
    | "discard" ->
      Discard
        {
          block = i "block";
          at = i "at";
          patched_back = i "patched_back";
          wasted = b "wasted";
        }
    | "evict" -> Evict { block = i "block"; at = i "at" }
    | "recompress_queued" ->
      Recompress_queued
        { block = i "block"; at = i "at"; done_at = i "done_at" }
    | "flush" -> Flush { at = i "at"; copies = i "copies" }
    | other -> raise (Bad_json ("unknown event kind " ^ other))
  with
  | ev -> Ok ev
  | exception Bad_json msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Packed representation                                               *)

module Packed = struct
  (* Struct-of-arrays chunk: the hot loops push events as a kind tag
     plus up to three int fields into preallocated arrays, so emitting
     an event costs a few stores and no heap allocation. The field
     mapping below is the only place that knows which record field
     lands in which slot; [get] is its exact inverse. *)
  type chunk = {
    cap : int;
    mutable len : int;
    kind : Bytes.t;  (** tag per event, same numbering as [kind_index] *)
    at : int array;
    a : int array;
    b : int array;
    c : int array;
  }

  let default_capacity = 4096

  let create ?(capacity = default_capacity) () =
    if capacity <= 0 then
      invalid_arg "Sim.Events.Packed.create: capacity must be positive";
    {
      cap = capacity;
      len = 0;
      kind = Bytes.create capacity;
      at = Array.make capacity 0;
      a = Array.make capacity 0;
      b = Array.make capacity 0;
      c = Array.make capacity 0;
    }

  let capacity ch = ch.cap
  let length ch = ch.len
  let is_full ch = ch.len >= ch.cap
  let clear ch = ch.len <- 0

  let push ch k at a b c =
    let i = ch.len in
    if i >= ch.cap then invalid_arg "Sim.Events.Packed.push: chunk full";
    Bytes.unsafe_set ch.kind i (Char.unsafe_chr k);
    Array.unsafe_set ch.at i at;
    Array.unsafe_set ch.a i a;
    Array.unsafe_set ch.b i b;
    Array.unsafe_set ch.c i c;
    ch.len <- i + 1

  (* Field mapping, one pusher per constructor. *)
  let push_exec ch ~at ~block = push ch 0 at block 0 0
  let push_exception ch ~at ~block = push ch 1 at block 0 0
  let push_demand ch ~at ~block ~cycles = push ch 2 at block cycles 0
  let push_prefetch ch ~at ~block ~ready_at = push ch 3 at block ready_at 0
  let push_stall ch ~at ~block ~cycles = push ch 4 at block cycles 0
  let push_patch ch ~at ~target ~site = push ch 5 at target site 0
  let push_unpatch ch ~at ~target ~site = push ch 6 at target site 0

  let push_discard ch ~at ~block ~patched_back ~wasted =
    push ch 7 at block patched_back (if wasted then 1 else 0)

  let push_evict ch ~at ~block = push ch 8 at block 0 0
  let push_recompress_queued ch ~at ~block ~done_at = push ch 9 at block done_at 0
  let push_flush ch ~at ~copies = push ch 10 at copies 0 0

  (* Low-level writer plane: a reserve-then-write protocol for fused
     producers. [unsafe_push_*] skip the capacity check (the caller
     has checked [room]) and only store the fields their kind defines
     — [get] never reads the others for that kind, so the stale slots
     are unobservable. *)
  let room ch = ch.cap - ch.len

  let unsafe_push_ka ch ~kind ~at ~a =
    let i = ch.len in
    Bytes.unsafe_set ch.kind i (Char.unsafe_chr kind);
    Array.unsafe_set ch.at i at;
    Array.unsafe_set ch.a i a;
    ch.len <- i + 1

  let unsafe_push_kab ch ~kind ~at ~a ~b =
    let i = ch.len in
    Bytes.unsafe_set ch.kind i (Char.unsafe_chr kind);
    Array.unsafe_set ch.at i at;
    Array.unsafe_set ch.a i a;
    Array.unsafe_set ch.b i b;
    ch.len <- i + 1

  let unsafe_push_kabc ch ~kind ~at ~a ~b ~c =
    let i = ch.len in
    Bytes.unsafe_set ch.kind i (Char.unsafe_chr kind);
    Array.unsafe_set ch.at i at;
    Array.unsafe_set ch.a i a;
    Array.unsafe_set ch.b i b;
    Array.unsafe_set ch.c i c;
    ch.len <- i + 1

  let push_event ch ev =
    match ev with
    | Exec { block; at } -> push_exec ch ~at ~block
    | Exception { block; at } -> push_exception ch ~at ~block
    | Demand_decompress { block; at; cycles } ->
      push_demand ch ~at ~block ~cycles
    | Prefetch_issue { block; at; ready_at } ->
      push_prefetch ch ~at ~block ~ready_at
    | Stall { block; at; cycles } -> push_stall ch ~at ~block ~cycles
    | Patch { target; site; at } -> push_patch ch ~at ~target ~site
    | Unpatch { target; site; at } -> push_unpatch ch ~at ~target ~site
    | Discard { block; at; patched_back; wasted } ->
      push_discard ch ~at ~block ~patched_back ~wasted
    | Evict { block; at } -> push_evict ch ~at ~block
    | Recompress_queued { block; at; done_at } ->
      push_recompress_queued ch ~at ~block ~done_at
    | Flush { at; copies } -> push_flush ch ~at ~copies

  let kind_tag ch i =
    if i < 0 || i >= ch.len then invalid_arg "Sim.Events.Packed.kind_tag";
    Char.code (Bytes.unsafe_get ch.kind i)

  let time_at ch i =
    if i < 0 || i >= ch.len then invalid_arg "Sim.Events.Packed.time_at";
    Array.unsafe_get ch.at i

  let get ch i =
    if i < 0 || i >= ch.len then invalid_arg "Sim.Events.Packed.get";
    let at = ch.at.(i) and a = ch.a.(i) and b = ch.b.(i) and c = ch.c.(i) in
    match Char.code (Bytes.unsafe_get ch.kind i) with
    | 0 -> Exec { block = a; at }
    | 1 -> Exception { block = a; at }
    | 2 -> Demand_decompress { block = a; at; cycles = b }
    | 3 -> Prefetch_issue { block = a; at; ready_at = b }
    | 4 -> Stall { block = a; at; cycles = b }
    | 5 -> Patch { target = a; site = b; at }
    | 6 -> Unpatch { target = a; site = b; at }
    | 7 -> Discard { block = a; at; patched_back = b; wasted = c <> 0 }
    | 8 -> Evict { block = a; at }
    | 9 -> Recompress_queued { block = a; at; done_at = b }
    | 10 -> Flush { at; copies = a }
    | k ->
      invalid_arg
        (Printf.sprintf "Sim.Events.Packed.get: bad kind tag %d" k)

  let iter f ch =
    for i = 0 to ch.len - 1 do
      f (get ch i)
    done
end

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

type sink = {
  emit : t -> unit;
  emit_chunk : Packed.chunk -> unit;
  close : unit -> unit;
}

(* Default chunk delivery for sinks that only understand boxed events:
   decode each packed slot and feed the per-event path. *)
let chunk_via f ch = Packed.iter f ch

let null =
  { emit = (fun _ -> ()); emit_chunk = (fun _ -> ()); close = (fun () -> ()) }

let callback f =
  { emit = f; emit_chunk = chunk_via f; close = (fun () -> ()) }

let tee sinks =
  {
    emit = (fun ev -> List.iter (fun s -> s.emit ev) sinks);
    emit_chunk = (fun ch -> List.iter (fun s -> s.emit_chunk ch) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks);
  }

type collector = { mutable rev_events : t list }

let collector () = { rev_events = [] }

let collecting c =
  let emit ev = c.rev_events <- ev :: c.rev_events in
  { emit; emit_chunk = chunk_via emit; close = (fun () -> ()) }

let collected c = List.rev c.rev_events

type counters = { per_kind : int array; mutable last_at : int }

let counters () = { per_kind = Array.make num_kinds 0; last_at = 0 }

let counting c =
  {
    emit =
      (fun ev ->
        let k = kind_index ev in
        c.per_kind.(k) <- c.per_kind.(k) + 1;
        let at = time ev in
        if at > c.last_at then c.last_at <- at);
    emit_chunk =
      (* Batched path: tally kinds straight off the tag bytes, no
         boxed events materialized; the running max stays in a
         register across the chunk. *)
      (fun ch ->
        let n = Packed.length ch in
        let per_kind = c.per_kind in
        let kind = ch.Packed.kind and at = ch.Packed.at in
        let rec tally i last =
          if i >= n then last
          else begin
            let k = Char.code (Bytes.unsafe_get kind i) in
            Array.unsafe_set per_kind k (Array.unsafe_get per_kind k + 1);
            let a = Array.unsafe_get at i in
            tally (i + 1) (if a > last then a else last)
          end
        in
        c.last_at <- tally 0 c.last_at);
    close = (fun () -> ());
  }

let counts c =
  Array.to_list (Array.mapi (fun i n -> (kind_names.(i), n)) c.per_kind)

let count c name =
  let rec find i =
    if i >= num_kinds then
      invalid_arg (Printf.sprintf "Sim.Events.count: unknown kind %S" name)
    else if kind_names.(i) = name then c.per_kind.(i)
    else find (i + 1)
  in
  find 0

let total c = Array.fold_left ( + ) 0 c.per_kind
let last_time c = c.last_at

let jsonl oc =
  let emit ev =
    output_string oc (to_json ev);
    output_char oc '\n'
  in
  { emit; emit_chunk = chunk_via emit; close = (fun () -> flush oc) }

let to_file path =
  let oc = open_out path in
  let inner = jsonl oc in
  {
    emit = inner.emit;
    emit_chunk = inner.emit_chunk;
    close = (fun () -> close_out oc);
  }

(* Shown in parse errors: enough of the line to recognize it, not
   enough to flood a terminal when the "line" is a megabyte of junk. *)
let truncate_line line =
  let limit = 80 in
  if String.length line <= limit then line
  else String.sub line 0 limit ^ "..."

let read_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let rec go lineno acc =
      match input_line ic with
      | exception End_of_file ->
        close_in ic;
        Ok (List.rev acc)
      | line when String.trim line = "" -> go (lineno + 1) acc
      | line -> (
        match of_json line with
        | Ok ev -> go (lineno + 1) (ev :: acc)
        | Error msg ->
          close_in ic;
          Error
            (Printf.sprintf "%s:%d: %s in %S" path lineno msg
               (truncate_line line)))
    in
    go 1 []

let observing registry =
  let by_kind =
    Array.map
      (fun k -> Metrics.counter registry ~labels:[ ("kind", k) ] "events_total")
      kind_names
  in
  (* [event_] prefix keeps these clear of the same-named engine totals
     (Core.Metrics publishes a [stall_cycles] counter, for one). *)
  let stalls = Metrics.histogram registry "event_stall_cycles" in
  let demand = Metrics.histogram registry "event_demand_dec_cycles" in
  let scratch = Array.make num_kinds 0 in
  {
    emit =
      (fun ev ->
        Metrics.incr by_kind.(kind_index ev);
        match ev with
        | Stall { cycles; _ } -> Metrics.observe stalls cycles
        | Demand_decompress { cycles; _ } -> Metrics.observe demand cycles
        | Exec _ | Exception _ | Prefetch_issue _ | Patch _ | Unpatch _
        | Discard _ | Evict _ | Recompress_queued _ | Flush _ -> ());
    emit_chunk =
      (* Batched path: one registry update per kind per chunk instead
         of one per event; only the (rare) cost-bearing kinds touch
         their histograms per event. *)
      (fun ch ->
        Array.fill scratch 0 num_kinds 0;
        let n = Packed.length ch in
        for i = 0 to n - 1 do
          let k = Char.code (Bytes.unsafe_get ch.Packed.kind i) in
          Array.unsafe_set scratch k (Array.unsafe_get scratch k + 1);
          if k = 4 then Metrics.observe stalls ch.Packed.b.(i)
          else if k = 2 then Metrics.observe demand ch.Packed.b.(i)
        done;
        for k = 0 to num_kinds - 1 do
          if scratch.(k) > 0 then Metrics.incr ~by:scratch.(k) by_kind.(k)
        done);
    close = (fun () -> ());
  }
