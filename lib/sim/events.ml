type t =
  | Exec of { block : int; at : int }
  | Exception of { block : int; at : int }
  | Demand_decompress of { block : int; at : int; cycles : int }
  | Prefetch_issue of { block : int; at : int; ready_at : int }
  | Stall of { block : int; at : int; cycles : int }
  | Patch of { target : int; site : int; at : int }
  | Unpatch of { target : int; site : int; at : int }
  | Discard of { block : int; at : int; patched_back : int; wasted : bool }
  | Evict of { block : int; at : int }
  | Recompress_queued of { block : int; at : int; done_at : int }
  | Flush of { at : int; copies : int }

let time = function
  | Exec { at; _ }
  | Exception { at; _ }
  | Demand_decompress { at; _ }
  | Prefetch_issue { at; _ }
  | Stall { at; _ }
  | Patch { at; _ }
  | Unpatch { at; _ }
  | Discard { at; _ }
  | Evict { at; _ }
  | Recompress_queued { at; _ }
  | Flush { at; _ } -> at

(* Dense tags double as the JSONL discriminator and the counter index;
   keep [kind_index] and [kinds] in sync with the constructor order. *)
let kind_index = function
  | Exec _ -> 0
  | Exception _ -> 1
  | Demand_decompress _ -> 2
  | Prefetch_issue _ -> 3
  | Stall _ -> 4
  | Patch _ -> 5
  | Unpatch _ -> 6
  | Discard _ -> 7
  | Evict _ -> 8
  | Recompress_queued _ -> 9
  | Flush _ -> 10

let kind_names =
  [|
    "exec";
    "exception";
    "demand_decompress";
    "prefetch_issue";
    "stall";
    "patch";
    "unpatch";
    "discard";
    "evict";
    "recompress_queued";
    "flush";
  |]

let num_kinds = Array.length kind_names
let kind ev = kind_names.(kind_index ev)
let kinds = Array.to_list kind_names

let describe = function
  | Exec { block; _ } -> Printf.sprintf "execute B%d" block
  | Exception { block; _ } -> Printf.sprintf "exception entering B%d" block
  | Demand_decompress { block; cycles; _ } ->
    Printf.sprintf "demand-decompress B%d (%d cycles)" block cycles
  | Prefetch_issue { block; ready_at; _ } ->
    Printf.sprintf "pre-decompress B%d (ready at %d)" block ready_at
  | Stall { block; cycles; _ } ->
    Printf.sprintf "stall %d cycles waiting for B%d" cycles block
  | Patch { target; site; _ } ->
    Printf.sprintf "patch branch in B%d -> B%d'" site target
  | Unpatch { target; site; _ } ->
    Printf.sprintf "patch branch in B%d' back -> B%d" site target
  | Discard { block; patched_back; wasted; _ } ->
    Printf.sprintf "discard B%d' (%d sites patched back%s)" block patched_back
      (if wasted then ", wasted prefetch" else "")
  | Evict { block; _ } -> Printf.sprintf "evict B%d' (budget)" block
  | Recompress_queued { block; done_at; _ } ->
    Printf.sprintf "recompress B%d (done at %d)" block done_at
  | Flush { copies; _ } ->
    Printf.sprintf "flush copy area (%d copies retired)" copies

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)

let to_json ev =
  let f = Printf.sprintf in
  match ev with
  | Exec { block; at } -> f {|{"ev":"exec","block":%d,"at":%d}|} block at
  | Exception { block; at } ->
    f {|{"ev":"exception","block":%d,"at":%d}|} block at
  | Demand_decompress { block; at; cycles } ->
    f
      {|{"ev":"demand_decompress","block":%d,"at":%d,"cycles":%d}|}
      block at cycles
  | Prefetch_issue { block; at; ready_at } ->
    f
      {|{"ev":"prefetch_issue","block":%d,"at":%d,"ready_at":%d}|}
      block at ready_at
  | Stall { block; at; cycles } ->
    f {|{"ev":"stall","block":%d,"at":%d,"cycles":%d}|} block at cycles
  | Patch { target; site; at } ->
    f {|{"ev":"patch","target":%d,"site":%d,"at":%d}|} target site at
  | Unpatch { target; site; at } ->
    f {|{"ev":"unpatch","target":%d,"site":%d,"at":%d}|} target site at
  | Discard { block; at; patched_back; wasted } ->
    f
      {|{"ev":"discard","block":%d,"at":%d,"patched_back":%d,"wasted":%b}|}
      block at patched_back wasted
  | Evict { block; at } -> f {|{"ev":"evict","block":%d,"at":%d}|} block at
  | Recompress_queued { block; at; done_at } ->
    f
      {|{"ev":"recompress_queued","block":%d,"at":%d,"done_at":%d}|}
      block at done_at
  | Flush { at; copies } -> f {|{"ev":"flush","at":%d,"copies":%d}|} at copies

exception Bad_json of string

(* Flat-object parser covering exactly what [to_json] writes: string,
   int and bool values, no nesting, no commas inside strings. *)
let fields_of_json line =
  let s = String.trim line in
  let n = String.length s in
  if n < 2 || s.[0] <> '{' || s.[n - 1] <> '}' then
    raise (Bad_json "not an object");
  let body = String.trim (String.sub s 1 (n - 2)) in
  if body = "" then []
  else
    String.split_on_char ',' body
    |> List.map (fun field ->
           match String.index_opt field ':' with
           | None -> raise (Bad_json ("missing ':' in " ^ field))
           | Some i ->
             let key = String.trim (String.sub field 0 i) in
             let value =
               String.trim
                 (String.sub field (i + 1) (String.length field - i - 1))
             in
             let unquote v =
               let vn = String.length v in
               if vn >= 2 && v.[0] = '"' && v.[vn - 1] = '"' then
                 String.sub v 1 (vn - 2)
               else raise (Bad_json ("unquoted key " ^ v))
             in
             (unquote key, value))

let int_field fields name =
  match List.assoc_opt name fields with
  | None -> raise (Bad_json ("missing field " ^ name))
  | Some v -> (
    match int_of_string_opt v with
    | Some i -> i
    | None -> raise (Bad_json ("field " ^ name ^ " is not an int")))

let bool_field fields name =
  match List.assoc_opt name fields with
  | Some "true" -> true
  | Some "false" -> false
  | Some _ -> raise (Bad_json ("field " ^ name ^ " is not a bool"))
  | None -> raise (Bad_json ("missing field " ^ name))

let str_field fields name =
  match List.assoc_opt name fields with
  | None -> raise (Bad_json ("missing field " ^ name))
  | Some v ->
    let n = String.length v in
    if n >= 2 && v.[0] = '"' && v.[n - 1] = '"' then String.sub v 1 (n - 2)
    else raise (Bad_json ("field " ^ name ^ " is not a string"))

let of_json line =
  match
    let fields = fields_of_json line in
    let i = int_field fields and b = bool_field fields in
    match str_field fields "ev" with
    | "exec" -> Exec { block = i "block"; at = i "at" }
    | "exception" -> Exception { block = i "block"; at = i "at" }
    | "demand_decompress" ->
      Demand_decompress
        { block = i "block"; at = i "at"; cycles = i "cycles" }
    | "prefetch_issue" ->
      Prefetch_issue { block = i "block"; at = i "at"; ready_at = i "ready_at" }
    | "stall" -> Stall { block = i "block"; at = i "at"; cycles = i "cycles" }
    | "patch" -> Patch { target = i "target"; site = i "site"; at = i "at" }
    | "unpatch" -> Unpatch { target = i "target"; site = i "site"; at = i "at" }
    | "discard" ->
      Discard
        {
          block = i "block";
          at = i "at";
          patched_back = i "patched_back";
          wasted = b "wasted";
        }
    | "evict" -> Evict { block = i "block"; at = i "at" }
    | "recompress_queued" ->
      Recompress_queued
        { block = i "block"; at = i "at"; done_at = i "done_at" }
    | "flush" -> Flush { at = i "at"; copies = i "copies" }
    | other -> raise (Bad_json ("unknown event kind " ^ other))
  with
  | ev -> Ok ev
  | exception Bad_json msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

type sink = { emit : t -> unit; close : unit -> unit }

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }
let callback f = { emit = f; close = (fun () -> ()) }

let tee sinks =
  {
    emit = (fun ev -> List.iter (fun s -> s.emit ev) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks);
  }

type collector = { mutable rev_events : t list }

let collector () = { rev_events = [] }

let collecting c =
  { emit = (fun ev -> c.rev_events <- ev :: c.rev_events);
    close = (fun () -> ()) }

let collected c = List.rev c.rev_events

type counters = { per_kind : int array; mutable last_at : int }

let counters () = { per_kind = Array.make num_kinds 0; last_at = 0 }

let counting c =
  {
    emit =
      (fun ev ->
        let k = kind_index ev in
        c.per_kind.(k) <- c.per_kind.(k) + 1;
        let at = time ev in
        if at > c.last_at then c.last_at <- at);
    close = (fun () -> ());
  }

let counts c =
  Array.to_list (Array.mapi (fun i n -> (kind_names.(i), n)) c.per_kind)

let count c name =
  let rec find i =
    if i >= num_kinds then
      invalid_arg (Printf.sprintf "Sim.Events.count: unknown kind %S" name)
    else if kind_names.(i) = name then c.per_kind.(i)
    else find (i + 1)
  in
  find 0

let total c = Array.fold_left ( + ) 0 c.per_kind
let last_time c = c.last_at

let jsonl oc =
  {
    emit =
      (fun ev ->
        output_string oc (to_json ev);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let to_file path =
  let oc = open_out path in
  let inner = jsonl oc in
  { emit = inner.emit; close = (fun () -> close_out oc) }

let read_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let rec go lineno acc =
      match input_line ic with
      | exception End_of_file ->
        close_in ic;
        Ok (List.rev acc)
      | line when String.trim line = "" -> go (lineno + 1) acc
      | line -> (
        match of_json line with
        | Ok ev -> go (lineno + 1) (ev :: acc)
        | Error msg ->
          close_in ic;
          Error (Printf.sprintf "%s:%d: %s" path lineno msg))
    in
    go 1 []

let observing registry =
  let by_kind =
    Array.map
      (fun k -> Metrics.counter registry ~labels:[ ("kind", k) ] "events_total")
      kind_names
  in
  (* [event_] prefix keeps these clear of the same-named engine totals
     (Core.Metrics publishes a [stall_cycles] counter, for one). *)
  let stalls = Metrics.histogram registry "event_stall_cycles" in
  let demand = Metrics.histogram registry "event_demand_dec_cycles" in
  {
    emit =
      (fun ev ->
        Metrics.incr by_kind.(kind_index ev);
        match ev with
        | Stall { cycles; _ } -> Metrics.observe stalls cycles
        | Demand_decompress { cycles; _ } -> Metrics.observe demand cycles
        | Exec _ | Exception _ | Prefetch_issue _ | Patch _ | Unpatch _
        | Discard _ | Evict _ | Recompress_queued _ | Flush _ -> ());
    close = (fun () -> ());
  }
