(** The one cost vocabulary every simulation layer shares.

    A cost model prices events in a small vector of named
    {!dimension}s — wall-clock [Cycles] on the execution thread and
    [Energy_nj] drawn from the battery — and a named device
    {!profile} selects the coefficients. Decompression cost scales
    with the {e compressed} size (that is what the decompressor
    reads); compression cost scales with the {e uncompressed} size.
    {!Core.Config} wraps a value of this type, so the timing engine,
    the baselines and the experiment harness all price the same
    operation identically.

    Under the default [paper-2005] profile every energy coefficient
    is zero and the cycle coefficients are the historical defaults,
    so cycle arithmetic is bit-for-bit what it was before energy
    existed. *)

(** Energy coefficients, all in integer nanojoules. Flash is read per
    compressed byte; RAM is written per decompressed byte produced
    and read back per byte recompressed; [ram_static_nj_per_kb_cycle]
    prices holding decompressed copies resident (leakage), per 1024
    byte-cycles of occupancy. *)
type energy_model = {
  flash_read_nj_per_byte : int;
  ram_read_nj_per_byte : int;
  ram_write_nj_per_byte : int;
  dec_compute_nj_per_byte : int;
  comp_compute_nj_per_byte : int;
  exception_nj : int;
  patch_nj : int;
  exec_nj_per_cycle : int;
  ram_static_nj_per_kb_cycle : int;
}

type t = {
  exception_cycles : int;
      (** taking the memory-protection exception that §5 uses to
          trigger the handler *)
  patch_cycles : int;  (** updating one branch target *)
  dec_setup_cycles : int;
  dec_cycles_per_byte : int;
  comp_setup_cycles : int;
  comp_cycles_per_byte : int;
  energy : energy_model;
  profile : string;  (** the device profile these coefficients came from *)
}

(** {1 Dimensions and charge vectors} *)

type dimension =
  | Cycles
  | Energy_nj

val dimensions : dimension list
val dimension_name : dimension -> string

(** One priced event: how much of each dimension it consumed. *)
type vector = { cycles : int; energy_nj : int }

val zero : vector
val add : vector -> vector -> vector
val get : vector -> dimension -> int

(** {1 Profiles} *)

val default : t
(** The [paper-2005] profile: exception 40, patch 4, decompression
    30 + 4/byte, compression 30 + 8/byte, all energy coefficients 0. *)

val profile : string -> t
(** Look up a named device profile ([paper-2005], [cortex-m-flash],
    [sram-heavy]).
    @raise Invalid_argument on an unknown name, listing the known
    profiles. *)

val profile_names : string list
(** In registration order; head is the default. *)

val validate : t -> t
(** Returns [t] unchanged after checking every coefficient: fixed
    costs and energy coefficients must be >= 0, per-byte cycle rates
    must be >= 1.
    @raise Invalid_argument in the style
    ["dec_cycles_per_byte must be >= 1 (got 0)"]. *)

val with_rates : dec_cycles_per_byte:int -> comp_cycles_per_byte:int -> t -> t
(** Same fixed costs, different per-byte rates (typically a codec's
    advertised speeds).
    @raise Invalid_argument if either rate is < 1. *)

val dec_cycles : t -> compressed_bytes:int -> int
(** [dec_setup_cycles + dec_cycles_per_byte * compressed_bytes]. *)

val comp_cycles : t -> uncompressed_bytes:int -> int
(** [comp_setup_cycles + comp_cycles_per_byte * uncompressed_bytes]. *)

(** {1 Charge constructors}

    Each returns the full vector for one event. Charges on the
    helper threads (prefetch decompression, recompression,
    patch-back on discard) cost no wall-clock cycles — only the
    execution thread advances the clock — but their energy is real. *)

val exec_charge : t -> cycles:int -> vector
val exception_charge : t -> vector
val patch_charge : t -> vector
val demand_dec_charge : t -> compressed_bytes:int -> uncompressed_bytes:int -> vector
val prefetch_dec_charge : t -> compressed_bytes:int -> uncompressed_bytes:int -> vector
val recompress_charge : t -> uncompressed_bytes:int -> vector
val patch_back_charge : t -> sites:int -> vector
val stall_charge : t -> cycles:int -> vector

val ram_static_charge : t -> byte_cycles:int -> vector
(** Leakage of the decompressed copy area over the whole run:
    [byte_cycles] is {!Memsim.Accounting.integral}. Charged once at
    end of run. @raise Invalid_argument if [byte_cycles] < 0. *)

(** {1 Accumulator} *)

(** Where a charge came from, for per-source breakdowns. *)
type source =
  | Exec
  | Exception
  | Patch
  | Demand_dec
  | Prefetch_dec
  | Recompress
  | Patch_back
  | Stall
  | Ram_static

val source_name : source -> string

(** Per-dimension, per-source accumulation of charge vectors. Every
    charging site routes its vector through one of these instead of
    hand-summing cycles, so the per-dimension totals are the sum of
    per-event charges by construction — the property the test suite
    pins. *)
module Acc : sig
  type acc

  val create : ?journal:(source -> vector -> unit) -> unit -> acc
  (** [journal] observes every charge as it lands. *)

  val charge : acc -> source -> vector -> unit

  val charge_raw : acc -> source -> cycles:int -> energy_nj:int -> unit
  (** [charge] without building the vector — the hot loops' form. The
      journal (if any) still observes the charge as a vector. *)

  val total : acc -> vector
  val total_of : acc -> source -> vector

  val dimension_totals : acc -> (string * int) list
  (** [(dimension_name, total)] for every dimension, in
      {!dimensions} order. *)
end
