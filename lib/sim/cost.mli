(** The one cost model every simulation layer shares.

    All costs are in cycles. Decompression cost scales with the
    {e compressed} size (that is what the decompressor reads);
    compression cost scales with the {e uncompressed} size.
    {!Core.Config} wraps a value of this type, so the timing engine,
    the baselines and the experiment harness all price the same
    operation identically. *)

type t = {
  exception_cycles : int;
      (** taking the memory-protection exception that §5 uses to
          trigger the handler *)
  patch_cycles : int;  (** updating one branch target *)
  dec_setup_cycles : int;
  dec_cycles_per_byte : int;
  comp_setup_cycles : int;
  comp_cycles_per_byte : int;
}

val default : t
(** exception 40, patch 4, decompression 30 + 4/byte,
    compression 30 + 8/byte. *)

val with_rates : dec_cycles_per_byte:int -> comp_cycles_per_byte:int -> t -> t
(** Same fixed costs, different per-byte rates (typically a codec's
    advertised speeds). *)

val dec_cycles : t -> compressed_bytes:int -> int
(** [dec_setup_cycles + dec_cycles_per_byte * compressed_bytes]. *)

val comp_cycles : t -> uncompressed_bytes:int -> int
(** [comp_setup_cycles + comp_cycles_per_byte * uncompressed_bytes]. *)
