(** The shared simulation event vocabulary and the streaming sink bus.

    Every layer that simulates (or really performs) the paper's scheme
    — {!Core.Engine}'s timing model, the executable {!Runtime}, and
    the baseline schemes — narrates its run as a stream of these
    events, pushed one at a time into a {!sink}. Sinks are
    constant-memory unless they choose otherwise, so a 10⁶-step trace
    costs the same memory as a 10-step one; two runs can be diffed
    event-by-event by streaming both through {!to_json}.

    [at] is simulated cycles for the timing engine and executed
    instructions for the runtime; within one stream it is monotone
    except where noted in the producer's documentation. *)

type t =
  | Exec of { block : int; at : int }  (** block body executes *)
  | Exception of { block : int; at : int }
      (** memory-protection exception on entering [block] *)
  | Demand_decompress of { block : int; at : int; cycles : int }
      (** decompression on the critical path *)
  | Prefetch_issue of { block : int; at : int; ready_at : int }
      (** pre-decompression queued on the decompression thread *)
  | Stall of { block : int; at : int; cycles : int }
      (** execution waited for an in-flight decompression *)
  | Patch of { target : int; site : int; at : int }
      (** branch in [site] rewritten to target the copy of [target] *)
  | Unpatch of { target : int; site : int; at : int }
      (** remember-set patch-back on deletion (runtime) *)
  | Discard of { block : int; at : int; patched_back : int; wasted : bool }
      (** k-edge deletion of a decompressed copy *)
  | Evict of { block : int; at : int }  (** budget-forced LRU deletion *)
  | Recompress_queued of { block : int; at : int; done_at : int }
      (** copy queued on the compression thread (recompress mode) *)
  | Flush of { at : int; copies : int }
      (** runtime address-space recycle: all [copies] retired at once *)

val time : t -> int
(** The event's [at] field. *)

val kind : t -> string
(** Stable lower-snake-case tag, e.g. ["demand_decompress"]. *)

val kinds : string list
(** Every tag, in declaration order. *)

val describe : t -> string
(** Human one-liner (the experiment tables' event column). *)

val to_json : t -> string
(** One JSON object, no trailing newline — a JSONL row. *)

val of_json : string -> (t, string) result
(** Parses exactly the objects {!to_json} emits. *)

(** {1 Packed events}

    The hot loops (the timing engine steps a million-entry trace, the
    runtime executes real instructions) do not build one boxed {!t}
    per event. They push events into a preallocated {!Packed.chunk} —
    a kind tag plus up to three int fields, struct-of-arrays — and
    hand whole chunks to the sink. Boxed events are reconstructed only
    at sink boundaries that need them (collection, JSONL); counting
    sinks tally straight off the tag bytes. *)

module Packed : sig
  type chunk
  (** A bounded batch of packed events. Not thread-safe; producers
      reuse one chunk, flushing it into a sink whenever it fills. *)

  val default_capacity : int

  val create : ?capacity:int -> unit -> chunk
  (** @raise Invalid_argument when [capacity <= 0]. *)

  val capacity : chunk -> int
  val length : chunk -> int
  val is_full : chunk -> bool

  val clear : chunk -> unit
  (** Resets [length] to 0; the producer's reuse point after a flush. *)

  (** Pushers, one per constructor of {!type:t}. All raise
      [Invalid_argument] on a full chunk — flush first. *)

  val push_exec : chunk -> at:int -> block:int -> unit
  val push_exception : chunk -> at:int -> block:int -> unit
  val push_demand : chunk -> at:int -> block:int -> cycles:int -> unit
  val push_prefetch : chunk -> at:int -> block:int -> ready_at:int -> unit
  val push_stall : chunk -> at:int -> block:int -> cycles:int -> unit
  val push_patch : chunk -> at:int -> target:int -> site:int -> unit
  val push_unpatch : chunk -> at:int -> target:int -> site:int -> unit

  val push_discard :
    chunk -> at:int -> block:int -> patched_back:int -> wasted:bool -> unit

  val push_evict : chunk -> at:int -> block:int -> unit
  val push_recompress_queued : chunk -> at:int -> block:int -> done_at:int -> unit
  val push_flush : chunk -> at:int -> copies:int -> unit

  val push_event : chunk -> t -> unit
  (** Packs a boxed event (the boundary-to-hot-path direction). *)

  (** {2 Reserve-then-write plane}

      For fused producers that emit several events per step: check
      {!room} once, then push without per-event capacity checks. The
      [unsafe_push_*] variants only store the fields their kind
      defines ({!get} never reads the rest for that kind); the caller
      is responsible for using the arity matching the constructor's
      field map (see the pushers above). Pushing beyond capacity is
      undefined behaviour. *)

  val room : chunk -> int
  (** Free slots left ([capacity - length]). *)

  val unsafe_push_ka : chunk -> kind:int -> at:int -> a:int -> unit
  val unsafe_push_kab : chunk -> kind:int -> at:int -> a:int -> b:int -> unit

  val unsafe_push_kabc :
    chunk -> kind:int -> at:int -> a:int -> b:int -> c:int -> unit

  val kind_tag : chunk -> int -> int
  (** Tag of the [i]th event, numbered like {!kinds} (declaration
      order). @raise Invalid_argument out of bounds. *)

  val time_at : chunk -> int -> int
  (** [at] field of the [i]th event. @raise Invalid_argument out of
      bounds. *)

  val get : chunk -> int -> t
  (** Reconstructs the [i]th event; exact inverse of the pushers.
      @raise Invalid_argument out of bounds. *)

  val iter : (t -> unit) -> chunk -> unit
  (** [get] over every slot in push order. *)
end

(** {1 Sinks} *)

type sink = {
  emit : t -> unit;
  emit_chunk : Packed.chunk -> unit;
      (** Consumes a whole packed batch. Equivalent to [Packed.iter
          emit], but batching sinks override it to skip boxing. The
          producer still owns the chunk and may [clear] and refill it
          after the call returns — sinks must not retain it. *)
  close : unit -> unit;
      (** Flushes and releases whatever the sink holds; further
          [emit]s are a programming error with undefined behaviour. *)
}

val null : sink
val callback : (t -> unit) -> sink

val tee : sink list -> sink
(** Broadcasts every event to all sinks; [close] closes each once. *)

(** {2 In-memory collection (back-compat with event-list consumers)} *)

type collector

val collector : unit -> collector

val collecting : collector -> sink
(** O(events) memory, by design — for short illustrative traces. *)

val collected : collector -> t list
(** Events in emission order. *)

(** {2 Constant-memory counting} *)

type counters

val counters : unit -> counters

val counting : counters -> sink
(** One integer cell per event kind: memory independent of trace
    length. *)

val counts : counters -> (string * int) list
(** [(kind, count)] for every kind, declaration order. *)

val count : counters -> string -> int
(** @raise Invalid_argument on an unknown kind. *)

val total : counters -> int

val last_time : counters -> int
(** Largest [at] observed; 0 if nothing was emitted. *)

(** {2 JSONL streaming} *)

val jsonl : out_channel -> sink
(** Writes one {!to_json} row per event. [close] flushes but leaves
    the channel open (the caller owns it). *)

val to_file : string -> sink
(** Opens [path] for writing; [close] closes the file. *)

val read_file : string -> (t list, string) result
(** Reads a JSONL stream back line by line (the file is never loaded
    whole), skipping blank lines. Returns the first parse error as
    [Error] carrying the line number and the offending line's content
    (truncated to 80 characters). *)

(** {2 Metrics bridge} *)

val observing : Metrics.t -> sink
(** Publishes the stream into a registry: an [events_total] counter
    labelled by kind, plus [event_stall_cycles] /
    [event_demand_dec_cycles] histograms over the per-event costs
    (prefixed so they never collide with the engine's same-named
    scalar totals). *)
