(** A labelled counter/histogram registry shared by every simulation
    layer.

    One registry collects whatever a run wants to report —
    {!Core.Metrics} totals, {!Memsim.Accounting} occupancy, runtime
    trap counts, per-event tallies from {!Events.observing} — and
    renders it uniformly as a table or JSONL. Registration is
    idempotent: asking again for the same name and label set returns
    the same cell, so independent layers can bump shared counters. *)

type t

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> ?labels:(string * string) list -> string -> counter
(** Registers (or finds) the counter [name] with [labels]. Label
    order does not matter for identity. *)

val incr : ?by:int -> counter -> unit
val set : counter -> int -> unit
val value : counter -> int

(** {1 Histograms} *)

type histogram

val histogram :
  t -> ?labels:(string * string) list -> ?buckets:int list -> string -> histogram
(** [buckets] are inclusive upper bounds, sorted ascending (defaults
    to powers of four up to 65536); an implicit +Inf bucket catches
    the rest. @raise Invalid_argument if [buckets] is unsorted, or if
    re-registering an existing histogram with different buckets. *)

val observe : histogram -> int -> unit
val observations : histogram -> int
val sum : histogram -> int
val max_value : histogram -> int
(** 0 when empty. *)

val mean : histogram -> float
(** 0.0 when empty. *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0.0 <= q <= 1.0]) by
    linear interpolation inside the first bucket whose cumulative
    count reaches the rank — the Prometheus [histogram_quantile]
    estimate. Ranks landing in the +Inf bucket report the exact
    observed maximum; the estimate is clamped to that maximum. 0.0
    when empty. @raise Invalid_argument when [q] is out of range. *)

val bucket_counts : histogram -> (int option * int) list
(** Cumulative counts per upper bound, [None] = +Inf, Prometheus
    style. *)

(** {1 Rendering} *)

type value_view =
  | Counter_value of int
  | Histogram_value of {
      n : int;
      total : int;
      max_v : int;
      cumulative : (int option * int) list;
    }

val snapshot : t -> (string * (string * string) list * value_view) list
(** Every registered cell, in registration order. *)

val render_name : string -> (string * string) list -> string
(** [name\{k="v",...\}], label-less names unchanged. *)

val to_table : ?title:string -> t -> Report.Table.t
(** One row per counter; histograms expand to [_count], [_sum],
    [_max] and cumulative [_bucket] rows. *)

val to_jsonl : ?title:string -> t -> string
(** {!to_table} serialized through {!Report.Table.to_jsonl} — one
    JSON object per metric row. *)
